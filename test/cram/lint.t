spine-lint drives off compiled .cmt files, so build a tiny library
tree with ocamlc directly (a nested dune project is not possible from
inside a cram test).  Compiling from the tree root makes ocamlc record
the dune-style relative source path in the cmt.

  $ mkdir -p lib/demo
  $ cat > lib/demo/bad.ml <<'EOF'
  > let cast (x : int) : string = Obj.magic x
  > let first xs = List.hd xs
  > let swallow f = try f () with _ -> ()
  > EOF
  $ ocamlc -bin-annot -w -a -c lib/demo/bad.ml

  $ spine-lint check --build-dir lib/demo --source-root .
    RULE          SEVERITY  WHERE                 MESSAGE
    obj-magic     error     lib/demo/bad.ml:1:30  Obj.magic defeats the type system
    partial-call  warning   lib/demo/bad.ml:2:15  List.hd raises Failure on []; match the shape explicitly
    catch-all     error     lib/demo/bad.ml:3:30  catch-all handler swallows every exception, including the ones that signal bugs (match the specific exceptions)
  spine-lint: 3 finding(s) in 1 files scanned
  [1]

The rule list:

  $ spine-lint rules
  poly-compare   error   no polymorphic compare/=/Hashtbl.hash or polymorphic Hashtbl on hot-path libraries (lib/spine, lib/pagestore, lib/bioseq)
  obj-magic      error   no Obj.magic/Obj.repr/Obj.obj in library code
  catch-all      error   no catch-all `try ... with _ ->` swallowing exceptions
  stdout         warning no direct stdout printing from library code; route through lib/report or lib/telemetry
  missing-mli    error   every module in lib/spine and lib/pagestore has a .mli interface
  partial-call   warning no partial stdlib calls (List.hd, List.tl, Option.get) in library code
  raw-clock      error   no raw clock reads (Unix.gettimeofday, Unix.time, Sys.time) in library code; time through Xutil.Stopwatch's monotonic clock
  bare-failwith  error   no bare failwith/Failure raises in the typed-error storage stack (lib/pagestore, lib/spine persistent/serialize); raise a typed Spine_error instead

The typed-error rule is scoped to the storage stack: a stringly failure
in lib/pagestore is an error, the identical code elsewhere is not.

  $ mkdir -p lib/pagestore
  $ cat > lib/pagestore/bad_store.ml <<'EOF'
  > let explode () = failwith "page gone"
  > let explode2 () = raise (Failure "page gone")
  > EOF
  $ cat > lib/pagestore/bad_store.mli <<'EOF'
  > val explode : unit -> 'a
  > val explode2 : unit -> 'a
  > EOF
  $ ocamlc -bin-annot -w -a -c lib/pagestore/bad_store.mli
  $ ocamlc -bin-annot -w -a -I lib/pagestore -c lib/pagestore/bad_store.ml
  $ spine-lint check --build-dir lib/pagestore --source-root .
    RULE           SEVERITY  WHERE                            MESSAGE
    bare-failwith  error     lib/pagestore/bad_store.ml:1:17  failwith raises a stringly Failure callers cannot match on (raise a typed Spine_error.Error instead)
    bare-failwith  error     lib/pagestore/bad_store.ml:2:24  constructing the stringly Failure exception (raise a typed Spine_error.Error instead)
  spine-lint: 2 finding(s) in 1 files scanned
  [1]

JSONL output:

  $ spine-lint check --build-dir lib/demo --source-root . --format jsonl
  {"rule":"obj-magic","severity":"error","file":"lib/demo/bad.ml","line":1,"col":30,"message":"Obj.magic defeats the type system"}
  {"rule":"partial-call","severity":"warning","file":"lib/demo/bad.ml","line":2,"col":15,"message":"List.hd raises Failure on []; match the shape explicitly"}
  {"rule":"catch-all","severity":"error","file":"lib/demo/bad.ml","line":3,"col":30,"message":"catch-all handler swallows every exception, including the ones that signal bugs (match the specific exceptions)"}
  [1]

The errors-only gate: partial-call is warning severity, so once the
error-severity findings are waived the run passes while still listing
the waivers.

  $ cat > lib/demo/bad.ml <<'EOF'
  > (* spine-lint: allow-file obj-magic catch-all *)
  > let cast (x : int) : string = Obj.magic x
  > let first xs = List.hd xs
  > let swallow f = try f () with _ -> ()
  > EOF
  $ spine-lint check --build-dir lib/demo --source-root . --errors-only --show-suppressed
    RULE          SEVERITY  WHERE                 MESSAGE
    partial-call  warning   lib/demo/bad.ml:2:15  List.hd raises Failure on []; match the shape explicitly
  spine-lint: 1 finding(s) in 1 files scanned
  suppressed:
    RULE       SEVERITY  WHERE                 MESSAGE
    obj-magic  error     lib/demo/bad.ml:1:30  Obj.magic defeats the type system
    catch-all  error     lib/demo/bad.ml:3:30  catch-all handler swallows every exception, including the ones that signal bugs (match the specific exceptions)
