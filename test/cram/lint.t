spine-lint drives off compiled .cmt files, so build a tiny library
tree with ocamlc directly (a nested dune project is not possible from
inside a cram test).  Compiling from the tree root makes ocamlc record
the dune-style relative source path in the cmt.

  $ mkdir -p lib/demo
  $ cat > lib/demo/bad.ml <<'EOF'
  > let cast (x : int) : string = Obj.magic x
  > let first xs = List.hd xs
  > let swallow f = try f () with _ -> ()
  > EOF
  $ ocamlc -bin-annot -w -a -c lib/demo/bad.ml

  $ spine-lint check --build-dir lib/demo --source-root .
    RULE          SEVERITY  WHERE                 MESSAGE
    obj-magic     error     lib/demo/bad.ml:1:30  Obj.magic defeats the type system
    partial-call  warning   lib/demo/bad.ml:2:15  List.hd raises Failure on []; match the shape explicitly
    catch-all     error     lib/demo/bad.ml:3:30  catch-all handler swallows every exception, including the ones that signal bugs (match the specific exceptions)
  spine-lint: 3 finding(s) in 1 files scanned
  [1]

The rule list:

  $ spine-lint rules
  poly-compare      error   no polymorphic compare/=/Hashtbl.hash or polymorphic Hashtbl on hot-path libraries (lib/spine, lib/pagestore, lib/bioseq)
  obj-magic         error   no Obj.magic/Obj.repr/Obj.obj in library code
  catch-all         error   no catch-all `try ... with _ ->` swallowing exceptions
  stdout            warning no direct stdout printing from library code; route through lib/report or lib/telemetry
  missing-mli       error   every module in lib/spine and lib/pagestore has a .mli interface
  partial-call      warning no partial stdlib calls (List.hd, List.tl, Option.get) in library code
  raw-clock         error   no raw clock reads (Unix.gettimeofday, Unix.time, Sys.time) in library code; time through Xutil.Stopwatch's monotonic clock
  bare-failwith     error   no bare failwith/Failure raises in the typed-error storage stack (lib/pagestore, lib/spine persistent/serialize); raise a typed Spine_error instead
  shared-mutation   error   no write reachable from the engine's query surface may touch state that outlives the call (module-level values, fields of the shared store argument, stored closures) unless guarded by Mutex/Atomic/Domain.DLS or annotated [@spine.domain_safe]
  global-mutable    error   no module-level mutable value in lib/spine or lib/pagestore without a Mutex/Atomic guard or a [@spine.domain_safe "reason"] annotation
  unguarded-unsafe  error   no Array.unsafe_*/Bytes.unsafe_* outside modules that declare themselves a checked boundary with [@@@spine.checked_boundary "reason"]

The typed-error rule is scoped to the storage stack: a stringly failure
in lib/pagestore is an error, the identical code elsewhere is not.

  $ mkdir -p lib/pagestore
  $ cat > lib/pagestore/bad_store.ml <<'EOF'
  > let explode () = failwith "page gone"
  > let explode2 () = raise (Failure "page gone")
  > EOF
  $ cat > lib/pagestore/bad_store.mli <<'EOF'
  > val explode : unit -> 'a
  > val explode2 : unit -> 'a
  > EOF
  $ ocamlc -bin-annot -w -a -c lib/pagestore/bad_store.mli
  $ ocamlc -bin-annot -w -a -I lib/pagestore -c lib/pagestore/bad_store.ml
  $ spine-lint check --build-dir lib/pagestore --source-root .
    RULE           SEVERITY  WHERE                            MESSAGE
    bare-failwith  error     lib/pagestore/bad_store.ml:1:17  failwith raises a stringly Failure callers cannot match on (raise a typed Spine_error.Error instead)
    bare-failwith  error     lib/pagestore/bad_store.ml:2:24  constructing the stringly Failure exception (raise a typed Spine_error.Error instead)
  spine-lint: 2 finding(s) in 1 files scanned
  [1]

JSONL output:

  $ spine-lint check --build-dir lib/demo --source-root . --format jsonl
  {"rule":"obj-magic","severity":"error","file":"lib/demo/bad.ml","line":1,"col":30,"message":"Obj.magic defeats the type system"}
  {"rule":"partial-call","severity":"warning","file":"lib/demo/bad.ml","line":2,"col":15,"message":"List.hd raises Failure on []; match the shape explicitly"}
  {"rule":"catch-all","severity":"error","file":"lib/demo/bad.ml","line":3,"col":30,"message":"catch-all handler swallows every exception, including the ones that signal bugs (match the specific exceptions)"}
  [1]

The errors-only gate: partial-call is warning severity, so once the
error-severity findings are waived the run passes while still listing
the waivers.

  $ cat > lib/demo/bad.ml <<'EOF'
  > (* spine-lint: allow-file obj-magic catch-all *)
  > let cast (x : int) : string = Obj.magic x
  > let first xs = List.hd xs
  > let swallow f = try f () with _ -> ()
  > EOF
  $ spine-lint check --build-dir lib/demo --source-root . --errors-only --show-suppressed
    RULE          SEVERITY  WHERE                 MESSAGE
    partial-call  warning   lib/demo/bad.ml:2:15  List.hd raises Failure on []; match the shape explicitly
  spine-lint: 1 finding(s) in 1 files scanned
  suppressed:
    RULE       SEVERITY  WHERE                 MESSAGE
    obj-magic  error     lib/demo/bad.ml:1:30  Obj.magic defeats the type system
    catch-all  error     lib/demo/bad.ml:3:30  catch-all handler swallows every exception, including the ones that signal bugs (match the specific exceptions)

--only restricts the run to the listed rules; --except drops them.

  $ spine-lint check --build-dir lib/demo --source-root . --only partial-call
    RULE          SEVERITY  WHERE                 MESSAGE
    partial-call  warning   lib/demo/bad.ml:2:15  List.hd raises Failure on []; match the shape explicitly
  spine-lint: 1 finding(s) in 1 files scanned
  [1]
  $ spine-lint check --build-dir lib/demo --source-root . --except partial-call
  spine-lint: 1 files scanned, no findings (2 suppressed)
  $ spine-lint check --build-dir lib/demo --source-root . --only no-such-rule
  spine-lint: unknown rule "no-such-rule" in --only (ignored)
  spine-lint: --only matched no known rules
  [2]

The interprocedural domain-safety pass (--domains): a query-surface
root that mutates its shared store argument certifies UNSAFE — the
witness names the write and the call chain that reaches it — and the
run fails even though the finding sits in a helper.

  $ mkdir -p lib/spine
  $ cat > lib/spine/qsurf.ml <<'EOF'
  > type store = { mutable hits : int; lock : Mutex.t }
  > let bump t = t.hits <- t.hits + 1
  > let occurrences t (_pat : string) = bump t; t.hits
  > EOF
  $ cat > lib/spine/qsurf.mli <<'EOF'
  > type store = { mutable hits : int; lock : Mutex.t }
  > val bump : store -> unit
  > val occurrences : store -> string -> int
  > EOF
  $ ocamlc -bin-annot -w -a -c lib/spine/qsurf.mli
  $ ocamlc -bin-annot -w -a -I lib/spine -c lib/spine/qsurf.ml
  $ spine-lint check --build-dir lib/spine --source-root . --domains
    RULE             SEVERITY  WHERE                   MESSAGE
    shared-mutation  error     lib/spine/qsurf.ml:2:0  assignment to mutable field hits of argument 0 (mutates the shared store argument 0) escapes the query surface: reachable from query root Qsurf.occurrences via Qsurf.occurrences (lib/spine/qsurf.ml:3) -> Qsurf.bump (lib/spine/qsurf.ml:2); a store shared across domains would race here (guard with Mutex/Atomic, keep the state per-domain, or annotate the binding [@spine.domain_safe "reason"])
  spine-lint: 1 finding(s) in 1 files scanned
  domain-safety certification:
    MODULE  VERDICT  WITNESS
    Qsurf   UNSAFE   assignment to mutable field hits of argument 0 (mutates the shared store argument 0) via Qsurf.occurrences (lib/spine/qsurf.ml:3) -> Qsurf.bump (lib/spine/qsurf.ml:2)
  spine-lint: 0 module(s) certified, 1 unsafe
  [1]

Guard the write with the store's Mutex and the same module certifies;
the certification rows also export as JSONL for the CI artifact.

  $ cat > lib/spine/qsurf.ml <<'EOF'
  > type store = { mutable hits : int; lock : Mutex.t }
  > let bump t = Mutex.protect t.lock (fun () -> t.hits <- t.hits + 1)
  > let occurrences t (_pat : string) = bump t; t.hits
  > EOF
  $ ocamlc -bin-annot -w -a -I lib/spine -c lib/spine/qsurf.ml
  $ spine-lint check --build-dir lib/spine --source-root . --domains --out cert.jsonl
  spine-lint: 1 files scanned, no findings
  domain-safety certification:
    MODULE  VERDICT              WITNESS
    Qsurf   certified (guarded)  mutex-guarded region
  spine-lint: 1 module(s) certified, 0 unsafe
  $ cat cert.jsonl
  {"module":"Qsurf","verdict":"certified (guarded)","witness":"mutex-guarded region"}

The unguarded-unsafe rule (L11) is how the word-packed sequence core
keeps its unchecked accessors honest: Array.unsafe_* and the Bigarray
Array1.unsafe_* word loads are errors in an ordinary module —

  $ mkdir -p lib/bioseq
  $ cat > lib/bioseq/packed_demo.ml <<'EOF'
  > type row = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
  > let load_word (w : row) i = Bigarray.Array1.unsafe_get w i
  > let code (c : int array) i = Array.unsafe_get c i
  > EOF
  $ cat > lib/bioseq/packed_demo.mli <<'EOF'
  > type row = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
  > val load_word : row -> int -> int
  > val code : int array -> int -> int
  > EOF
  $ ocamlc -bin-annot -w -a -c lib/bioseq/packed_demo.mli
  $ ocamlc -bin-annot -w -a -I lib/bioseq -c lib/bioseq/packed_demo.ml
  $ spine-lint check --build-dir lib/bioseq --source-root . --only unguarded-unsafe
    RULE              SEVERITY  WHERE                           MESSAGE
    unguarded-unsafe  error     lib/bioseq/packed_demo.ml:2:28  Array1.unsafe_get bypasses bounds checks outside a checked boundary (mark the module [@@@spine.checked_boundary "reason"] after auditing, or use the checked accessor)
    unguarded-unsafe  error     lib/bioseq/packed_demo.ml:3:29  Array.unsafe_get bypasses bounds checks outside a checked boundary (mark the module [@@@spine.checked_boundary "reason"] after auditing, or use the checked accessor)
  spine-lint: 2 finding(s) in 1 files scanned
  [1]

— and waived file-wide once the module declares itself a checked
boundary, the same contract lib/bioseq/packed_seq.ml ships under (the
.mli must re-check every index before the unsafe read):

  $ cat > lib/bioseq/packed_demo.ml <<'EOF'
  > [@@@spine.checked_boundary "every caller goes through the .mli, which bounds-checks"]
  > type row = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
  > let load_word (w : row) i = Bigarray.Array1.unsafe_get w i
  > let code (c : int array) i = Array.unsafe_get c i
  > EOF
  $ ocamlc -bin-annot -w -a -I lib/bioseq -c lib/bioseq/packed_demo.ml
  $ spine-lint check --build-dir lib/bioseq --source-root . --only unguarded-unsafe
  spine-lint: 1 files scanned, no findings
