The spine CLI end to end: build an index from a tiny text file, inspect
it, query it exactly and approximately, and run the matching operation.

  $ printf 'aaccacaaca' > data.txt
  $ spine build --alphabet dna --text data.txt -o paper.idx | sed 's/in [0-9.]*s/in Xs/'
  indexed 10 chars in Xs -> paper.idx

  $ spine stats -i paper.idx
  characters        10
  nodes             11
  vertebras         10
  ribs              4
  extribs           2
  links             10
  max PT            3
  max LEL           3
  max PRT           1
  model bytes/char  11.70

The paper's Section 4 example: "ac" occurs at positions 1, 4, 7.

  $ spine query -i paper.idx ac
  3 occurrence(s)
    position 1
    position 4
    position 7

The paper's false-positive example must be rejected.

  $ spine query -i paper.idx accaa
  0 occurrence(s)

Approximate search: "agca" is within one substitution of "acca" (pos 1)
and "aaca" (pos 6).

  $ spine approx -i paper.idx agca -k 1
  2 hit(s) within 1 mismatch(es)
    position 1 (1 error(s), 4 chars)
    position 6 (1 error(s), 4 chars)

Maximal matching against a FASTA query.

  $ printf '>q\nttaccacaat\n' > query.fa
  $ spine match -i paper.idx -q query.fa --threshold 3
  1 maximal match(es) >= 3 chars (checked 13 nodes, 3 suffix sets)
    query 2..8  data: 1..7

Telemetry via --stats: construction CASE frequencies for the running
example, then per-edge-family traversal counts.  The pattern "acaaca"
walks vertebras, takes a rib and chases an extrib chain; the matching
operation additionally follows backward links.

  $ spine build --alphabet dna --text data.txt -o paper.idx --stats | sed 's/in [0-9.]*s/in Xs/'
  indexed 10 chars in Xs -> paper.idx
  
  telemetry
  ---------
    metric                 kind       value  detail           
    ---------------------  ---------  -----  -----------------
    build.case1            counter        4                   
    build.case2            counter        2                   
    build.case3            counter        4                   
    build.case4            counter        2                   
    build.extribs_created  counter        2                   
    build.links_created    counter       10                   
    build.ribs_created     counter        4                   
    build.upstream_hops    histogram      9  sum=12  1:6 2-3:3

  $ spine query -i paper.idx acaaca --stats
  1 occurrence(s)
    position 4
  
  telemetry
  ---------
    metric                    kind     value  detail
    ------------------------  -------  -----  ------
    engine.batch_patterns     counter      1        
    engine.batches            counter      1        
    search.extrib_hops        counter      1        
    search.occurrences_found  counter      1        
    search.rib_hops           counter      1        
    search.scalar_steps       counter      6        
    search.vertebra_hops      counter      4        

  $ spine match -i paper.idx -q query.fa --threshold 3 --stats
  1 maximal match(es) >= 3 chars (checked 13 nodes, 3 suffix sets)
    query 2..8  data: 1..7
  
  telemetry
  ---------
    metric                    kind     value  detail
    ------------------------  -------  -----  ------
    search.link_hops          counter      3        
    search.occurrences_found  counter      1        
    search.rib_hops           counter      1        
    search.scalar_steps       counter     10        
    search.scan_nodes         counter      2        
    search.vertebra_hops      counter      6        

Synthetic corpus build round-trip.

  $ spine build --synthetic ECO --scale 0.001 -o eco.idx | sed 's/in [0-9.]*s/in Xs/'
  indexed 3500 chars in Xs -> eco.idx

Unknown inputs fail cleanly.

  $ spine build --synthetic NOPE -o x.idx
  unknown corpus "NOPE"
  [1]
  $ spine query -i paper.idx zz
  pattern contains characters outside the alphabet
  [1]

Alignment between two small FASTA sequences.

  $ printf '>r\nacgtacgtacgggttacgatacgaa\n' > ref.fa
  $ printf '>q\nacgtacctacgggttacgttacgaa\n' > qry.fa
  $ spine align -r ref.fa -q qry.fa --threshold 5
  anchors 6  unique 4  chained 2  bases 17  coverage 68.0%
    ref 7..17 = query 7..17 (11)
    ref 19..24 = query 19..24 (6)
