Per-query execution profiles, the query log, and trace-driven replay.

  $ printf 'acgtacgtacgt' > data.txt

spine explain runs each pattern as its own attributed query.  The
deterministic cost fields — traversal steps by edge family, descent
depth, scan length, occurrence count — agree across all four backends;
only the paging and timing columns differ:

  $ for b in fast compact disk persistent; do
  >   spine explain --text data.txt --backend $b acgt --jsonl - |
  >     grep -o '"backend":"[a-z]*","occurrences":3,"vertebra_steps":4,"rib_steps":0,"extrib_steps":0,"link_steps":0,"descent_depth":4,"scan_nodes":8,"found":3'
  > done
  "backend":"fast","occurrences":3,"vertebra_steps":4,"rib_steps":0,"extrib_steps":0,"link_steps":0,"descent_depth":4,"scan_nodes":8,"found":3
  "backend":"compact","occurrences":3,"vertebra_steps":4,"rib_steps":0,"extrib_steps":0,"link_steps":0,"descent_depth":4,"scan_nodes":8,"found":3
  "backend":"disk","occurrences":3,"vertebra_steps":4,"rib_steps":0,"extrib_steps":0,"link_steps":0,"descent_depth":4,"scan_nodes":8,"found":3
  "backend":"persistent","occurrences":3,"vertebra_steps":4,"rib_steps":0,"extrib_steps":0,"link_steps":0,"descent_depth":4,"scan_nodes":8,"found":3

The human-readable table carries the same columns:

  $ spine explain --text data.txt --backend fast acgt gg | head -5
  
  explain (fast)
  --------------
    pattern  occ  steps v/r/e/l  descent  scan  pool h/m/e  dev r/w B  alloc B  wall ms
    -------  ---  -------------  -------  ----  ----------  ---------  -------  -------


A pattern outside the alphabet is reported and fails the command:

  $ spine explain --text data.txt --backend fast xyz 2>&1 >/dev/null
  pattern "xyz" is outside the alphabet
  [1]

On the disk backend a starved buffer pool makes the query page; the
faults are attributed to the query itself through the scoped
attribution hook, not recovered from global counter diffs:

  $ python3 -c "print('acgtacgtacgt'*300, end='')" > big.txt 2>/dev/null \
  >   || awk 'BEGIN { for (i = 0; i < 300; i++) printf "acgtacgtacgt" }' > big.txt
  $ spine explain --text big.txt --backend disk --frames 8 --page-size 512 \
  >     acgt --jsonl explain.jsonl > /dev/null
  $ misses=$(grep -o '"pool_misses":[0-9]*' explain.jsonl | cut -d: -f2)
  $ test "$misses" -gt 0 && echo "page faults attributed"
  page faults attributed
  $ reads=$(grep -o '"device_read_bytes":[0-9]*' explain.jsonl | cut -d: -f2)
  $ test "$reads" -gt 0 && echo "device bytes attributed"
  device bytes attributed

A pattern spanning at least one packed word (31 DNA characters per
62-bit word) descends by whole-word comparisons.  The profile splits
the comparison work into word_steps and scalar_steps — deterministic
across every backend: one 31-character word compare plus one scalar
boundary character for this 32-character pattern:

  $ p=acgtacgtacgtacgtacgtacgtacgtacgt
  $ for b in fast compact disk persistent; do
  >   spine explain --text big.txt --backend $b $p --jsonl - |
  >     grep -o '"backend":"[a-z]*".*"descent_depth":32,.*"word_steps":1,"scalar_steps":1' |
  >     cut -d, -f1
  > done
  "backend":"fast"
  "backend":"compact"
  "backend":"disk"
  "backend":"persistent"

SPINE_QLOG turns on the append-only query log; every engine request
becomes one JSON line.  Explain queries are recorded too:

  $ SPINE_QLOG=q.jsonl spine explain --text data.txt --backend compact \
  >     acgt acg > /dev/null
  $ grep -c '"qlog":1' q.jsonl
  2
  $ grep -o '"op":"single","backend":"compact","patterns":\["acgt"\]' q.jsonl
  "op":"single","backend":"compact","patterns":["acgt"]

The log rotates when it would exceed SPINE_QLOG_MAX_BYTES — the full
file moves aside to .1 and a fresh one continues:

  $ rm -f q.jsonl
  $ SPINE_QLOG=q.jsonl SPINE_QLOG_MAX_BYTES=600 spine workload \
  >     --text big.txt --backend compact -n 10 --seed 3 > /dev/null
  $ test -f q.jsonl && test -f q.jsonl.1 && echo "rotated"
  rotated

Replay re-drives a recorded log through the workload runner and gates
on the recorded-vs-replayed delta.  Same engine, same requests: the
deterministic costs match exactly and the gate passes.  Latency
comparisons are floored well above this machine's scheduling noise —
the cost rows (unit "count") are never floored, so any divergence in
traversal work still fails the gate:

  $ rm -f q.jsonl q.jsonl.1
  $ SPINE_QLOG=q.jsonl spine workload --text big.txt --backend compact \
  >     -n 30 --seed 5 > /dev/null
  $ spine replay q.jsonl --text big.txt --backend compact --closed-loop \
  >     --latency-floor-ns=50000000 > replay.out
  $ tail -1 replay.out
  replay: ok (30 request(s), 51 comparison(s))

An impossible tolerance turns every non-trivial comparison into a
regression — exit 1, with the failures listed:

  $ spine replay q.jsonl --text big.txt --backend compact --closed-loop \
  >     --tolerance=-1 > regress.out; echo "exit $?"
  exit 1
  $ grep -c 'REGRESSED' regress.out | awk '{ print ($1 > 0) ? "regressions listed" : "none" }'
  regressions listed

A malformed log is an operational error — exit 2:

  $ echo 'garbage' > bad.jsonl
  $ spine replay bad.jsonl --text data.txt --backend compact
  replay: bad.jsonl: line 1: at offset 0: bad number ""
  [2]
