The engine layer from the command line: `spine query --backend` drives
all four storage backends through the same Engine code path, so the
paper's Section 4 example answers identically whether the index lives
in the in-memory hashtable, the Section 5 packed layout, a paged file,
or the simulated disk stack.

  $ for b in fast compact persistent disk; do
  >   echo "== $b"
  >   spine query --backend $b --seq aaccacaaca ac
  > done
  == fast
  3 occurrence(s)
    position 1
    position 4
    position 7
  == compact
  3 occurrence(s)
    position 1
    position 4
    position 7
  == persistent
  3 occurrence(s)
    position 1
    position 4
    position 7
  == disk
  3 occurrence(s)
    position 1
    position 4
    position 7

Several patterns share one batched backbone scan (the paper's
target-node-buffer strategy); absent patterns report zero.

  $ spine query --backend compact --seq aaccacaaca ac ca gg
  ac: 3 occurrence(s)
    position 1
    position 4
    position 7
  ca: 3 occurrence(s)
    position 3
    position 5
    position 8
  gg: 0 occurrence(s)

An out-of-alphabet pattern is rejected on every backend.

  $ spine query --backend disk --seq aaccacaaca zz
  pattern contains characters outside the alphabet
  [1]

A persistent index file built once can be reopened by later queries.

  $ printf 'aaccacaaca' > data.txt
  $ spine build --alphabet dna --text data.txt -o paper.idx | sed 's/in [0-9.]*s/in Xs/'
  indexed 10 chars in Xs -> paper.idx
  $ spine query --backend fast -i paper.idx ac caca
  ac: 3 occurrence(s)
    position 1
    position 4
    position 7
  caca: 1 occurrence(s)
    position 3

The batch path is instrumented: one engine batch, three patterns.

  $ spine query --backend fast --seq aaccacaaca --stats ac ca gg 2>&1 | grep 'engine\.'
    engine.batch_patterns     counter        3                   
    engine.batches            counter        1                   

Backends that build from an input source refuse --index.

  $ spine query --backend compact -i paper.idx ac
  --backend compact/disk builds from an input source (--text, --fasta, --synthetic, --seq), not --index
  [1]
