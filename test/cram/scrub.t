`spine scrub` walks every page of a persistent index file, validating
per-page checksums, epoch stamps and the double-buffered metadata
slots, and reports damage per on-disk region.

  $ printf 'aaccacaacaaccacaacaaccacaaca' > data.txt
  $ spine build --text data.txt --backend persistent -o spine.db | sed 's/in [0-9.]*s/in Xs/'
  indexed 28 chars in Xs -> spine.db
  $ spine scrub -i spine.db
  scrub spine.db: generation 1, commit epoch 1 (clean shutdown)
    slot A: slot never written
    slot B: generation 1, commit epoch 1, clean
  
  page regions
  ------------
    region       scanned  ok  unwritten  damaged  stale
    -----------  -------  --  ---------  -------  -----
    meta/slot-a       65   0         65        0      0
    meta/slot-b       66   1         65        0      0
    meta/epoch         1   1          0        0      0
    lt                66   1         65        0      0
    rt0               66   1         65        0      0
    rt1               66   1         65        0      0
    rt2               65   0         65        0      0
    rt3               65   0         65        0      0
    seq                1   1          0        0      0
    journal            0   0          0        0      0
  scrub: clean


A flipped byte in the Link Table (page 16384 is the LT region base;
each physical page is 4096 data bytes plus a 16-byte trailer) is
pinned to its page and region.

  $ printf 'X' | dd of=spine.db bs=1 seek=$((16384 * 4112 + 100)) conv=notrunc status=none
  $ spine scrub -i spine.db | grep -E 'damaged|scrub:'
    region       scanned  ok  unwritten  damaged  stale
    damaged lt page 16384: checksum mismatch
  scrub: 1 damaged, 0 stale page(s)

Queries over the damaged file fail with the same typed diagnosis the
moment the bad page is read -- never a silently wrong answer.

  $ spine query --backend persistent -i spine.db acca
  spine: corrupt lt (page 16384): checksum mismatch
  [1]

The machine-readable report mirrors the table.

  $ spine scrub -i spine.db --jsonl report.jsonl > /dev/null; grep '"region":"lt"' report.jsonl
  {"region":"lt","scanned":66,"ok":0,"unwritten":65,"damaged":[{"page":16384,"detail":"checksum mismatch"}],"stale":[]}
