The perf observatory surface: space accounting, the workload runner with
its metrics exposition, and the bench trajectory regression gate.

  $ printf 'aaccacaacaaccacaacaaccacaaca' > data.txt

Space accounting attributes the measured footprint to named components on
any backend.  The fast store is pure in-memory structure:

  $ spine stats --space --text data.txt --backend fast
  
  space (fast, 28 chars)
  ----------------------
    component  bytes  bytes/char  share 
    ---------  -----  ----------  ------
    vertebrae      8        0.29    1.0%
    links        464       16.57   59.8%
    ribs         160        5.71   20.6%
    extribs      144        5.14   18.6%
    total        776       27.71  100.0%
    index footprint 27.71 bytes/char

The disk backend adds its storage overlays (device pages, buffer-pool
frames); overlays count toward the total but not the index footprint.
A small pool keeps the numbers readable:

  $ spine stats --space --text data.txt --backend disk --frames 8 --page-size 512
  
  space (disk, 28 chars)
  ----------------------
    component          bytes  bytes/char  share 
    -----------------  -----  ----------  ------
    vertebrae              8        0.29    0.1%
    links                174        6.21    2.9%
    ribs                  84        3.00    1.4%
    rib_slack              0        0.00    0.0%
    extribs               16        0.57    0.3%
    pagestore_pages     1536       54.86   26.0%
    bufferpool_frames   4096      146.29   69.3%
    total               5914      211.21  100.0%
    index footprint 10.07 bytes/char

The same report as one JSON line:

  $ spine stats --space --text data.txt --backend compact --jsonl - | tail -1
  {"backend":"compact","chars":28,"total_bytes":282,"index_bytes":282,"bytes_per_char":10.0714,"components":{"vertebrae":8,"links":174,"ribs":84,"rib_slack":0,"extribs":16}}

The workload runner drives a deterministic request mix and reports
per-operation latency quantiles; timings vary, the shape does not:

  $ spine workload --text data.txt --backend fast -n 40 --seed 3 \
  >   --metrics metrics.prom --report-jsonl report.jsonl > workload.out
  $ grep -o 'workload: 40 requests on fast (closed loop)' workload.out
  workload: 40 requests on fast (closed loop)
  $ grep -c 'Latency by operation' workload.out
  1
  $ grep -c 'Slowest requests (trace slow-op log)' workload.out
  1
  $ sed -n 's/^  \(single\|batch\|cursor\) .*/\1/p' workload.out | sort
  batch
  cursor
  single

The JSONL report carries the counts (deterministic in the seed) and the
quantile fields:

  $ grep -o '"workload_op":"single","backend":"fast","count":28,"hits":27' report.jsonl
  "workload_op":"single","backend":"fast","count":28,"hits":27
  $ grep -o '"p50_ns"\|"p90_ns"\|"p99_ns"\|"max_ns"' report.jsonl | sort -u
  "max_ns"
  "p50_ns"
  "p90_ns"
  "p99_ns"

The Prometheus exposition carries the workload histograms with their
cumulative buckets and quantile companions:

  $ grep -c '^# TYPE spine_workload_fast_single_ns histogram' metrics.prom
  1
  $ grep -c 'spine_workload_fast_single_ns_bucket{le="+Inf"} 28' metrics.prom
  1
  $ grep -o 'spine_workload_fast_single_ns_quantile{q="0.99"}' metrics.prom
  spine_workload_fast_single_ns_quantile{q="0.99"}

The space gauges published during the run are exposed too:

  $ grep -o '^spine_space_fast_total_bytes' metrics.prom
  spine_space_fast_total_bytes

The JSONL metrics format exposes the same snapshot:

  $ spine workload --text data.txt --backend disk --frames 8 -n 20 --seed 3 \
  >   --metrics metrics.jsonl --metrics-format jsonl > /dev/null
  $ grep -o '"metric":"workload.disk.single.ns","kind":"histogram"' metrics.jsonl
  "metric":"workload.disk.single.ns","kind":"histogram"
  $ grep -o '"p99":' metrics.jsonl | sort -u
  "p99":

The regression gate: identical trajectories pass...

  $ cat > old.json <<'EOF'
  > {"schema": "spine-bench/1",
  >  "experiments": [{"name": "table2", "wall_s": 1.0},
  >                  {"name": "table3", "wall_s": 0.4}],
  >  "micro": [{"name": "construct/fast", "ns_per_run": 1500}]}
  > EOF
  $ spine bench-compare old.json old.json --tolerance 0.25
  
  bench trajectory (tolerance 25%)
  --------------------------------
    group        name            unit        old   new   ratio  verdict
    -----------  --------------  ----------  ----  ----  -----  -------
    experiments  table2          wall_s         1     1  1.00x  ok     
    experiments  table3          wall_s       0.4   0.4  1.00x  ok     
    micro        construct/fast  ns_per_run  1500  1500  1.00x  ok     
  bench-compare: ok (3 benchmark(s))

...an injected slowdown beyond the tolerance fails with exit 1...

  $ sed 's/"wall_s": 0.4/"wall_s": 1.4/' old.json > new.json
  $ spine bench-compare old.json new.json --tolerance 0.25
  
  bench trajectory (tolerance 25%)
  --------------------------------
    group        name            unit        old   new   ratio  verdict  
    -----------  --------------  ----------  ----  ----  -----  ---------
    experiments  table2          wall_s         1     1  1.00x  ok       
    experiments  table3          wall_s       0.4   1.4  3.50x  REGRESSED
    micro        construct/fast  ns_per_run  1500  1500  1.00x  ok       
  bench-compare: 1 failure(s)
    experiments/table3: REGRESSED
  [1]

...a benchmark that silently disappears also fails...

  $ cat > shrunk.json <<'EOF'
  > {"schema": "spine-bench/1",
  >  "experiments": [{"name": "table2", "wall_s": 1.0}],
  >  "micro": [{"name": "construct/fast", "ns_per_run": 1500}]}
  > EOF
  $ spine bench-compare old.json shrunk.json --tolerance 0.25 | tail -2
  bench-compare: 1 failure(s)
    experiments/table3: REMOVED
  $ spine bench-compare old.json shrunk.json --tolerance 0.25 > /dev/null
  [1]

...and a malformed artifact exits 2.

  $ echo '{not json' > bad.json
  $ spine bench-compare old.json bad.json
  bench-compare: bad.json: at offset 1: expected '"'
  [2]
