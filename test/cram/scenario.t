Chaos scenarios: composable fault/latency/load stages with named
end-of-stage expectations, deterministic in one seed.  A scenario that
composes a transient-fault storm, injected device latency, a resilient
live workload and a kill -9 crash point must pass all its
expectations and exit 0.

  $ cat > pass.scenario <<'EOF'
  > {"scenario": "cram-pass", "seed": 11}
  > {"stage": "build", "chars": 6000, "chunks": 2, "frames": 8}
  > {"stage": "faults", "spec": "read_error:times=6"}
  > {"stage": "latency", "read_us": 5, "jitter_us": 5}
  > {"stage": "workload", "requests": 40, "mix": {"single": 1, "batch": 0, "cursor": 0}, "resilience": {"deadline_ms": 5000}}
  > {"stage": "crash", "chars": 2000, "after_writes": 10}
  > {"stage": "expect", "parity": 40, "scrub": "clean", "reconcile": true}
  > EOF
  $ spine scenario run pass.scenario
  
  scenario cram-pass (seed 11)
  ----------------------------
    expectation           verdict  detail                                                                     
    --------------------  -------  ---------------------------------------------------------------------------
    parity                pass     40 probes agree with the oracle                                            
    scrub-clean           pass     0 damaged, 0 stale page(s)                                                 
    resilience-reconcile  pass     calls=40 completed=40 timeouts=0 shed=0 failures=0 vs report 40/0/0/0 of 40
    stages: build(6000) -> faults(read_error:times=6) -> latency -> workload(40) -> crash(@10) -> expect(3)
  resilience: calls=40 completed=40 retries=1 timeouts=0 shed=0 failures=0 trips=0 recoveries=0
  scenario: cram-pass: ok (3 expectation(s))

A deliberately injected violation exits 1 and names the failed
expectation: here the breaker is expected open on a run that saw no
faults at all.

  $ cat > fail.scenario <<'EOF'
  > {"scenario": "cram-fail", "seed": 11}
  > {"stage": "build", "chars": 4000, "chunks": 2}
  > {"stage": "workload", "requests": 20, "mix": {"single": 1, "batch": 0, "cursor": 0}, "resilience": {}}
  > {"stage": "expect", "breaker": "open"}
  > EOF
  $ spine scenario run fail.scenario | tail -2
  scenario: cram-fail: 1 expectation(s) failed
    breaker=open: breaker is closed

A malformed scenario is a usage error (exit 2), pinned to its line.

  $ printf '{"scenario": "bad"}\n{"stage": "nope"}\n' > bad.scenario
  $ spine scenario run bad.scenario
  scenario: bad.scenario: line 2: unknown stage "nope"
  [2]

The SPINE_FAULTS environment grammar is parsed by the same shared
module the scenario DSL uses; its legacy diagnostics are preserved
byte for byte.

  $ printf 'aaccacaacaaccacaacaacc' > data.txt
  $ SPINE_FAULTS=bogus spine build --text data.txt --backend persistent -o t.db
  Fatal error: exception Invalid_argument("SPINE_FAULTS: unknown fault kind \"bogus\" (in \"bogus\")")
  [2]
  $ SPINE_FAULTS='read_error:page=9-3' spine build --text data.txt --backend persistent -o t.db
  Fatal error: exception Invalid_argument("SPINE_FAULTS: empty page range \"9-3\" (in \"read_error:page=9-3\")")
  [2]
