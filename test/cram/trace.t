Per-operation tracing end to end: build the paper's worked example
under the trace subcommand and check the exported Chrome trace carries
events from the builder and the traversal.

  $ spine trace --seq aaccacaaca -q aca -q ca -o trace.json
  query aca: 2 occurrence(s)
  query ca: 3 occurrence(s)
  trace: 35 event(s), 0 dropped -> trace.json

The artifact is one Chrome trace-event JSON object; the builder's case
events and the per-edge-family steps are both present.

  $ grep -c 'traceEvents' trace.json
  1
  $ grep -o 'build.case1' trace.json | sort -u
  build.case1
  $ grep -o 'step.rib' trace.json | sort -u
  step.rib
  $ grep -o 'search.scan' trace.json | sort -u
  search.scan

With --disk and a tiny buffer pool the same queries fault pages in, so
the disk stack shows up in the very same trace.

  $ spine trace --seq aaccacaaca -q aca --disk --frames 2 --page-size 512 -o disk.json
  query aca: 2 occurrence(s)
  trace: 153 event(s), 0 dropped -> disk.json
  $ grep -o 'pool.fault' disk.json | sort -u
  pool.fault
  $ grep -o 'device.read' disk.json | sort -u
  device.read
  $ grep -o 'router.access' disk.json | sort -u
  router.access

The JSONL exporter writes one event per line.

  $ spine trace --seq aaccacaaca --format jsonl -o trace.jsonl
  trace: 22 event(s), 0 dropped -> trace.jsonl
  $ head -1 trace.jsonl | grep -o '"ph":"B","name":"build"'
  "ph":"B","name":"build"

Sampling rate 0 keeps operations out of the ring entirely.

  $ spine trace --seq aaccacaaca -q aca --sample 0 -o empty.json
  query aca: 2 occurrence(s)
  trace: 0 event(s), 0 dropped -> empty.json
