(* Tests for the engine-level resilience layer (Spine.Resilient):
   bounded retry with deterministic jitter, cooperative deadlines,
   circuit-breaker transitions, exact parity after a transient-fault
   storm — plus the open-loop pacing fix (injected clock end to end),
   the typed SPINE_FAULTS parser, latency-injection attribution, and
   the scenario DSL parser. *)

module VC = Xutil.Virtual_clock
module R = Spine.Resilient
module FS = Pagestore.Fault_spec
module FD = Pagestore.Fault_device
module P = Spine.Persistent

let dna = Bioseq.Alphabet.dna

let seq_of ?(seed = 4242) n =
  Bioseq.Synthetic.genomic dna (Bioseq.Rng.create seed) n

let tiny_engine () = Spine.Compact.engine (Spine.Compact.of_seq (seq_of 500))

let with_tmp f =
  let path = Filename.temp_file "spine_resil" ".db" in
  let result =
    try f path with e -> (try Sys.remove path with _ -> ()); raise e
  in
  (try Sys.remove path with _ -> ());
  result

let no_breaker =
  {
    R.default_config with
    R.deadline_ns = None;
    breaker_failures = 1000;
    backoff_base_ns = 1_000_000;
    backoff_max_ns = 100_000_000;
    seed = 7;
  }

(* a call that fails transiently [k] times, then succeeds *)
let flaky k =
  let calls = ref 0 in
  ( calls,
    fun _e ->
      incr calls;
      if !calls <= k then
        Spine_error.io_failed ~op:Spine_error.Read ~page:0 ~transient:true
          "injected transient"
      else 42 )

let make_virtual config =
  let vc = VC.create () in
  let sleeps = ref [] in
  let sleep ns =
    sleeps := ns :: !sleeps;
    VC.sleep vc ns
  in
  let r k =
    R.create ~clock:(VC.now vc) ~sleep_ns:sleep ~config (tiny_engine ())
    |> fun t -> (t, k)
  in
  (vc, sleeps, r)

(* --- retry/backoff --------------------------------------------------- *)

let test_retry_bounded () =
  let vc, sleeps, mk = make_virtual no_breaker in
  ignore vc;
  let t, _ = mk () in
  let calls, f = flaky 2 in
  let v = R.call t ~op:"q" f in
  Alcotest.(check int) "result through retries" 42 v;
  Alcotest.(check int) "attempts = failures + 1" 3 !calls;
  Alcotest.(check int) "two backoff sleeps" 2 (List.length !sleeps);
  let c = R.counts t in
  Alcotest.(check int) "retries counted" 2 c.R.retries;
  Alcotest.(check int) "no failures recorded (it recovered)" 0 c.R.failures;
  Alcotest.(check int) "completed" 1 c.R.completed;
  (* exhaustion: the budget is a hard bound *)
  let calls, f = flaky 100 in
  (match R.call t ~op:"q" f with
   | _ -> Alcotest.fail "persistent fault must escape after the budget"
   | exception Spine_error.Error (Spine_error.Io_failed _) -> ());
  Alcotest.(check int) "exactly max_attempts tries"
    no_breaker.R.max_attempts !calls;
  Alcotest.(check int) "one typed failure" 1 (R.counts t).R.failures

let test_backoff_deterministic () =
  let run seed =
    let vc, sleeps, _ = make_virtual no_breaker in
    ignore vc;
    let sleep ns =
      sleeps := ns :: !sleeps
    in
    let t =
      R.create ~clock:(fun () -> 0) ~sleep_ns:sleep
        ~config:{ no_breaker with R.seed } (tiny_engine ())
    in
    let _, f = flaky 3 in
    ignore (R.call t ~op:"q" f);
    List.rev !sleeps
  in
  let a = run 7 and b = run 7 and c = run 8 in
  Alcotest.(check (list int)) "same seed, same jitter schedule" a b;
  Alcotest.(check bool) "different seed, different schedule" true (a <> c);
  List.iteri
    (fun i ns ->
      let cap =
        min no_breaker.R.backoff_max_ns (no_breaker.R.backoff_base_ns lsl i)
      in
      Alcotest.(check bool)
        (Printf.sprintf "backoff %d within [base, 1.5*cap]" i)
        true
        (ns >= cap && ns <= cap + (cap / 2)))
    a

let test_deadline_inside_call () =
  let vc = VC.create () in
  let config =
    { no_breaker with R.deadline_ns = Some 10_000_000 (* 10 ms *) }
  in
  let t =
    R.create ~clock:(VC.now vc) ~sleep_ns:(VC.sleep vc) ~config
      (tiny_engine ())
  in
  (* the engine work overruns the budget and hits a cooperative check,
     the way Buffer_pool.with_page and the latency injector do *)
  let f _e =
    VC.advance vc 20_000_000;
    Pagestore.Deadline.check ();
    ()
  in
  (match R.call t ~op:"slow" f with
   | () -> Alcotest.fail "deadline overrun must raise"
   | exception Spine_error.Error (Spine_error.Timeout { op; _ }) ->
     Alcotest.(check string) "timeout names the op" "slow" op);
  Alcotest.(check int) "timeout counted" 1 (R.counts t).R.timeouts;
  Alcotest.(check bool) "deadline disarmed after the call" false
    (Pagestore.Deadline.armed ())

let test_backoff_crossing_deadline () =
  let vc = VC.create () in
  let config =
    {
      no_breaker with
      R.deadline_ns = Some 1_000_000;
      (* any backoff (>= 10 ms) overshoots the 1 ms budget *)
      backoff_base_ns = 10_000_000;
    }
  in
  let t =
    R.create ~clock:(VC.now vc) ~sleep_ns:(VC.sleep vc) ~config
      (tiny_engine ())
  in
  let calls, f = flaky 100 in
  (match R.call t ~op:"q" (fun e -> ignore (f e)) with
   | () -> Alcotest.fail "must time out"
   | exception Spine_error.Error (Spine_error.Timeout _) -> ());
  Alcotest.(check int) "no second attempt after a doomed backoff" 1 !calls

(* --- circuit breaker ------------------------------------------------- *)

let test_breaker_transitions () =
  let vc = VC.create () in
  let config =
    {
      R.default_config with
      R.deadline_ns = None;
      max_attempts = 1;
      breaker_failures = 3;
      breaker_cooldown_ns = 100_000_000;
      breaker_probes = 2;
      seed = 5;
    }
  in
  let t =
    R.create ~clock:(VC.now vc) ~sleep_ns:(VC.sleep vc) ~config
      (tiny_engine ())
  in
  let boom _e =
    Spine_error.io_failed ~op:Spine_error.Read ~page:0 ~transient:true "boom"
  in
  let ok _e = () in
  Alcotest.(check bool) "starts closed" true (R.breaker_state t = R.Closed);
  for _ = 1 to 3 do
    match R.call t ~op:"q" boom with
    | () -> Alcotest.fail "must fail"
    | exception Spine_error.Error (Spine_error.Io_failed _) -> ()
  done;
  Alcotest.(check bool) "trips open at the threshold" true
    (R.breaker_state t = R.Open);
  (* open: shed without touching the engine *)
  let touched = ref false in
  (match R.call t ~op:"q" (fun _ -> touched := true) with
   | () -> Alcotest.fail "must shed"
   | exception Spine_error.Error (Spine_error.Overloaded { state; _ }) ->
     Alcotest.(check string) "overloaded names the state" "open" state);
  Alcotest.(check bool) "shed call never reached the engine" false !touched;
  Alcotest.(check int) "shed counted" 1 (R.counts t).R.shed;
  (* cooldown elapses: half-open admits probes *)
  VC.advance vc 150_000_000;
  R.call t ~op:"q" ok;
  Alcotest.(check bool) "half-open after the first probe" true
    (R.breaker_state t = R.Half_open);
  R.call t ~op:"q" ok;
  Alcotest.(check bool) "closes after breaker_probes successes" true
    (R.breaker_state t = R.Closed);
  Alcotest.(check int) "recovery counted" 1 (R.counts t).R.recoveries;
  (* a half-open failure re-trips immediately *)
  for _ = 1 to 3 do
    try R.call t ~op:"q" boom with Spine_error.Error _ -> ()
  done;
  VC.advance vc 150_000_000;
  (try R.call t ~op:"q" boom with Spine_error.Error _ -> ());
  Alcotest.(check bool) "half-open failure re-trips" true
    (R.breaker_state t = R.Open);
  Alcotest.(check int) "three trips total" 3 (R.counts t).R.breaker_trips

(* --- storm parity on a real persistent engine ------------------------ *)

let test_storm_parity () =
  with_tmp (fun path ->
      let seq = seq_of 4_000 in
      let p = P.create ~frames:8 ~path dna in
      for i = 0 to Bioseq.Packed_seq.length seq - 1 do
        P.append p (Bioseq.Packed_seq.get seq i)
      done;
      P.flush p;
      let oracle = Spine.Index.of_seq seq in
      let fd = FD.create ~seed:9 [ FD.arm ~times:9 FD.Read_error ] in
      FD.attach fd (P.device p);
      let t =
        R.create
          ~config:{ R.default_config with R.backoff_base_ns = 10_000 }
          (P.engine p)
      in
      let rng = Bioseq.Rng.create 77 in
      for _ = 1 to 40 do
        let len = 3 + Bioseq.Rng.int rng 8 in
        let pos = Bioseq.Rng.int rng (4_000 - len) in
        let pat =
          Array.init len (fun k -> Bioseq.Packed_seq.get seq (pos + k))
        in
        let got =
          R.call t ~op:"occurrences" (fun e ->
              Spine.Engine.occurrences e pat)
        in
        Alcotest.(check (list int)) "storm parity"
          (Spine.Index.occurrences oracle pat)
          got
      done;
      let c = R.counts t in
      Alcotest.(check int) "every query completed" 40 c.R.completed;
      Alcotest.(check int) "zero failures after recovery" 0 c.R.failures;
      Alcotest.(check bool) "the storm actually forced retries" true
        (c.R.retries > 0);
      Alcotest.(check bool) "the storm is spent" true
        ((FD.stats fd).FD.read_errors > 0);
      P.close p)

(* --- open-loop pacing on the injected clock -------------------------- *)

let test_open_loop_injected_clock () =
  let vc = VC.create () in
  (* an adversarial sleeper: always undersleeps by half — the pacer
     must re-wait instead of starting early and recording negative
     latency against the schedule *)
  let under ns = VC.advance vc (max 1 (ns / 2)) in
  let seq = seq_of 2_000 in
  let engine = Spine.Compact.engine (Spine.Compact.of_seq seq) in
  let config =
    {
      Workload.default_config with
      Workload.requests = 20;
      rate = Some 1000.0;
      mix = { Workload.single = 1; batch = 0; cursor = 0 };
      slowest = 20;
    }
  in
  let requests = Workload.plan ~config seq in
  let report, _ =
    Workload.drive ~clock:(VC.now vc) ~sleep_ns:under ~config engine requests
  in
  (* last request is due at 19 ms on the virtual clock: the run cannot
     have finished before the schedule it was paced against *)
  Alcotest.(check bool) "clock reached the last scheduled start" true
    (VC.now vc () >= 19_000_000);
  (* engine work costs no virtual time, so every latency measured from
     its scheduled start must be exactly zero — an early start would
     have shown up as a negative mean *)
  List.iter
    (fun (o : Workload.op_report) ->
      if o.Workload.count > 0 then begin
        Alcotest.(check (float 0.0001)) "no schedule skew in the mean" 0.0
          o.Workload.mean_ns;
        Alcotest.(check int) "no schedule skew in the max" 0 o.Workload.max_ns
      end)
    report.Workload.ops

(* --- typed SPINE_FAULTS parser --------------------------------------- *)

let test_fault_spec_parse () =
  (match FS.parse "seed=77;read_error:page=3-9:after=2:times=5;crash" with
   | Error e -> Alcotest.failf "parse failed: %s" (FS.error_to_string e)
   | Ok s ->
     Alcotest.(check bool) "seed" true (s.FS.seed = Some 77);
     (match s.FS.arms with
      | [ a; b ] ->
        Alcotest.(check bool) "kind" true (a.FS.s_kind = FS.Read_error);
        Alcotest.(check bool) "pages" true (a.FS.s_pages = Some (3, 9));
        Alcotest.(check int) "after" 2 a.FS.s_after;
        Alcotest.(check int) "times" 5 a.FS.s_times;
        Alcotest.(check bool) "crash" true (b.FS.s_kind = FS.Crash)
      | _ -> Alcotest.fail "expected two arms"));
  let err spec =
    match FS.parse spec with
    | Ok _ -> Alcotest.failf "%S must not parse" spec
    | Error e -> (e, FS.error_to_string e)
  in
  let e, msg = err "bogus" in
  Alcotest.(check bool) "typed unknown kind" true (e = FS.Unknown_kind "bogus");
  Alcotest.(check string) "legacy message preserved" "unknown fault kind \"bogus\"" msg;
  let e, _ = err "read_error:keep=2" in
  Alcotest.(check bool) "typed misplaced keep" true (e = FS.Misplaced_keep);
  let e, _ = err "read_error:page=9-3" in
  Alcotest.(check bool) "typed empty range" true
    (e = FS.Empty_page_range "9-3");
  let e, _ = err "read_error:times=x" in
  Alcotest.(check bool) "typed not-a-number" true (e = FS.Not_a_number "x")

let test_fault_spec_roundtrip () =
  let specs =
    [ "read_error"; "seed=3;flip:page=1-8:times=2;torn:keep=1:after=4";
      "write_error:times=3;crash:after=10" ]
  in
  List.iter
    (fun spec ->
      match FS.parse spec with
      | Error e -> Alcotest.failf "%S: %s" spec (FS.error_to_string e)
      | Ok s -> (
        let printed = FS.to_string s in
        match FS.parse printed with
        | Error e ->
          Alcotest.failf "round trip %S -> %S: %s" spec printed
            (FS.error_to_string e)
        | Ok s' ->
          Alcotest.(check bool)
            (Printf.sprintf "round trip %S" spec)
            true (s = s')))
    specs

(* --- latency injection charged to the query -------------------------- *)

let test_latency_attribution () =
  with_tmp (fun path ->
      let seq = seq_of 3_000 in
      (let p = P.create ~path dna in
       for i = 0 to Bioseq.Packed_seq.length seq - 1 do
         P.append p (Bioseq.Packed_seq.get seq i)
       done;
       P.close p);
      (* reopen with a cold starved pool so the query actually reads *)
      let p = P.open_ ~frames:4 ~path () in
      let slept = ref 0 in
      let l =
        Pagestore.Latency_device.create
          ~sleep_ns:(fun ns -> slept := !slept + ns)
          { Pagestore.Latency_device.read_ns = 5_000; write_ns = 0;
            jitter_ns = 1_000; seed = 5 }
      in
      Pagestore.Latency_device.attach l (P.device p);
      let pat = Array.init 6 (fun k -> Bioseq.Packed_seq.get seq k) in
      let occ, prof =
        Spine.Engine.profiled (P.engine p) (fun () -> P.occurrences p pat)
      in
      Alcotest.(check bool) "query found its planted pattern" true (occ <> []);
      let stats = Pagestore.Latency_device.stats l in
      Alcotest.(check bool) "delays were injected" true (stats.Pagestore.Latency_device.ops > 0);
      Alcotest.(check int) "profile charged with every injected ns"
        stats.Pagestore.Latency_device.total_ns prof.Profile.injected_delay_ns;
      Alcotest.(check int) "injected sleep went through the hook"
        stats.Pagestore.Latency_device.total_ns !slept;
      P.close p)

(* --- scenario DSL parser --------------------------------------------- *)

let test_scenario_parse () =
  let text =
    String.concat "\n"
      [ "# comment";
        "{\"scenario\": \"t\", \"seed\": 7}";
        "{\"stage\": \"build\", \"chars\": 1000}";
        "{\"stage\": \"faults\", \"spec\": \"read_error:times=2\"}";
        "{\"stage\": \"latency\", \"read_us\": 10}";
        "{\"stage\": \"workload\", \"requests\": 5, \"resilience\": {}}";
        "{\"stage\": \"crash\", \"chars\": 200, \"after_writes\": 3}";
        "{\"stage\": \"expect\", \"parity\": 10, \"scrub\": \"clean\"}" ]
  in
  (match Scenario.parse text with
   | Error e -> Alcotest.failf "parse failed: %s" e
   | Ok sc ->
     Alcotest.(check string) "name" "t" sc.Scenario.sc_name;
     Alcotest.(check int) "seed" 7 sc.Scenario.sc_seed;
     Alcotest.(check int) "six stages" 6 (List.length sc.Scenario.sc_stages));
  (match Scenario.parse "{\"scenario\":\"t\"}\n{\"stage\":\"nope\"}" with
   | Ok _ -> Alcotest.fail "unknown stage must not parse"
   | Error e ->
     let contains s sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     Alcotest.(check bool) "error names the line" true (contains e "line 2"))

let suite =
  [ Alcotest.test_case "retry bounded + budget exhaustion" `Quick
      test_retry_bounded
  ; Alcotest.test_case "backoff jitter deterministic per seed" `Quick
      test_backoff_deterministic
  ; Alcotest.test_case "cooperative deadline inside a call" `Quick
      test_deadline_inside_call
  ; Alcotest.test_case "backoff crossing the deadline" `Quick
      test_backoff_crossing_deadline
  ; Alcotest.test_case "breaker trip / half-open / close" `Quick
      test_breaker_transitions
  ; Alcotest.test_case "storm parity through retries (disk)" `Quick
      test_storm_parity
  ; Alcotest.test_case "open-loop pacing on the injected clock" `Quick
      test_open_loop_injected_clock
  ; Alcotest.test_case "fault spec typed errors" `Quick test_fault_spec_parse
  ; Alcotest.test_case "fault spec round trip" `Quick
      test_fault_spec_roundtrip
  ; Alcotest.test_case "latency injection charged to the query" `Quick
      test_latency_attribution
  ; Alcotest.test_case "scenario DSL parser" `Quick test_scenario_parse
  ]
