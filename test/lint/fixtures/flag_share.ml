(* L9 fixture: a query-surface root mutating its shared store
   argument through a helper — the interprocedural pass must chase
   [occurrences -> bump] and flag the write site in [bump]. *)

type store = { mutable hits : int; data : string }

let bump t = t.hits <- t.hits + 1

let occurrences t (_pat : string) =
  bump t;
  [ t.hits ]
