val add : int -> int -> int
val same : string -> string -> bool
val safe_head : 'a list -> 'a option
