(* L2 fixture: Obj.magic. *)

let cast (x : int) : string = Obj.magic x
