(* L11 fixture: raw unsafe accessors outside a checked boundary. *)

let get (a : int array) i = Array.unsafe_get a i
let set (b : Bytes.t) i c = Bytes.unsafe_set b i c
