(* L10 fixture: module-level mutable state in every flavour the rule
   judges.  [table] and [counter] must be flagged; [guarded] is Atomic
   (shareable by construction) and [annotated] carries the waiver. *)

let table = Array.make 4 0
let counter = ref 0
let guarded = Atomic.make 0

let[@spine.domain_safe "fixture: written only before domains spawn"]
    annotated =
  ref 0

let use () =
  ignore table;
  ignore counter;
  ignore guarded;
  ignore annotated
