(* L9 functor-alias fixture: the write hides behind a functor
   parameter — the basename devirtualiser must find [Impl.poke] from
   the [P.poke] call inside [Make] and still flag the escape. *)

module Impl = struct
  type t = { mutable n : int }

  let poke t = t.n <- t.n + 1
end

module type POKE = sig
  type t

  val poke : t -> unit
end

module Make (P : POKE) = struct
  let occurrences (t : P.t) (_pat : string) =
    P.poke t;
    0
end

module M = Make (Impl)

let use (t : Impl.t) = ignore (M.occurrences t "x")
