(* L4 fixture: direct stdout printing. *)

let hello () = print_endline "hello"
let greet name = Printf.printf "hi %s\n" name
