(* Fixture: raw clock reads the linter must flag (L7). *)

let wall () = Unix.gettimeofday ()

let wall_seconds () = Unix.time ()

let cpu () = Sys.time ()
