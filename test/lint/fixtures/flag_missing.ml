(* L5 fixture: deliberately has no .mli. *)

let answer = 42
