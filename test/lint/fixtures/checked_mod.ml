(* L11 waiver fixture: the module declares itself an audited bounds
   boundary, so the same unsafe accessor is not flagged. *)

[@@@spine.checked_boundary "fixture: bounds audited by the tests"]

let get (a : int array) i = Array.unsafe_get a i
