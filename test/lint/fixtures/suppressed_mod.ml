(* Suppression fixture: every violation here carries a waiver, so the
   linter must report them as suppressed, not as findings. *)
(* spine-lint: allow-file missing-mli *)

(* spine-lint: allow obj-magic *)
let cast (x : int) : float = Obj.magic x

let swallow f = try f () with _ -> () (* spine-lint: allow catch-all *)
