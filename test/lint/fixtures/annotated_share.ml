(* L9-waived fixture: the escaping write carries a reviewed
   [@spine.domain_safe] reason, so the module certifies as
   annotated. *)

type store = { mutable hits : int }

let[@spine.domain_safe "fixture: stats cell is per-test, never shared"]
    bump t =
  t.hits <- t.hits + 1

let occurrences t (_pat : string) =
  bump t;
  t.hits
