(* L9-guarded fixture: the shared write runs under the store's own
   Mutex via [Mutex.protect], so the effect is absorbed and the module
   certifies as guarded. *)

type store = { lock : Mutex.t; mutable hits : int }

let occurrences t (_pat : string) =
  Mutex.protect t.lock (fun () ->
      t.hits <- t.hits + 1;
      t.hits)
