(* L1 fixture: polymorphic comparison at a non-specialisable type,
   first-class polymorphic hash, and a polymorphic hashtable. *)

type pair = { a : int; b : int }

let eq (x : pair) (y : pair) = x = y
let ok (x : int) (y : int) = x = y
let hash = Hashtbl.hash
let table () : (pair, int) Hashtbl.t = Hashtbl.create 8
