(* L9-clean fixture: the query root mutates only call-local scratch,
   so the module certifies with no guard or waiver. *)

type store = { data : string }

let occurrences t (pat : string) =
  let count = ref 0 in
  let n = String.length t.data and m = String.length pat in
  for i = 0 to n - m do
    if String.sub t.data i m = pat then incr count
  done;
  !count
