(* L3 fixture: a catch-all handler next to a specific one that the
   linter must not flag. *)

let swallow f = try f () with _ -> ()
let specific f = try f () with Not_found -> ()
