(* Clean fixture: nothing here should trip any rule. *)

let add (a : int) (b : int) = a + b
let same (a : string) (b : string) = a = b

let safe_head = function
  | [] -> None
  | x :: _ -> Some x
