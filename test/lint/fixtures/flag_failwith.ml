(* L8 fixture: stringly failures in code that is required to raise
   typed Spine_error values instead. *)

let boom () = failwith "nope"
let also_boom () = raise (Failure "still nope")
