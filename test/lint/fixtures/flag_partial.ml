(* L6 fixture: partial stdlib calls. *)

let first xs = List.hd xs
let rest xs = List.tl xs
let force x = Option.get x
