(* Per-rule coverage for spine-lint, driven over the compiled fixture
   library in ./fixtures: every rule must fire on its flagged fixture,
   stay quiet on the clean one, and respect suppression comments. *)

let result =
  lazy
    (match
       Lint.run ~all_paths:true ~build_dir:"fixtures" ~source_root:"../.." ()
     with
    | Ok r -> r
    | Error e -> Alcotest.failf "lint run failed: %s" e)

(* the interprocedural pass is opt-in, so the domain rules get their
   own lazy run (same fixtures, [~domains:true]) *)
let dresult =
  lazy
    (match
       Lint.run ~all_paths:true ~domains:true ~build_dir:"fixtures"
         ~source_root:"../.." ()
     with
    | Ok r -> r
    | Error e -> Alcotest.failf "domains lint run failed: %s" e)

let in_file file f = Filename.basename f.Lint.file = file

let findings_in file rule =
  List.filter
    (fun f -> f.Lint.rule = rule && in_file file f)
    (Lazy.force result).Lint.findings

let count file rule = List.length (findings_in file rule)

let check_int what expected actual = Alcotest.(check int) what expected actual

let test_poly_compare () =
  check_int "record =, first-class hash and Hashtbl.create flagged" 3
    (count "flag_poly.ml" Lint.Poly_compare);
  Alcotest.(check bool)
    "int = on line 7 is specialised, not flagged" false
    (List.exists (fun f -> f.Lint.line = 7)
       (findings_in "flag_poly.ml" Lint.Poly_compare))

let test_obj_magic () =
  check_int "Obj.magic flagged" 1 (count "flag_obj.ml" Lint.Obj_magic)

let test_catch_all () =
  let fs = findings_in "flag_catch.ml" Lint.Catch_all in
  check_int "only the catch-all handler flagged" 1 (List.length fs);
  check_int "flagged on the catch-all line" 4 (List.hd fs).Lint.line

let test_stdout () =
  check_int "print_endline and Printf.printf flagged" 2
    (count "flag_stdout.ml" Lint.Direct_stdout)

let test_partial_call () =
  check_int "List.hd, List.tl and Option.get flagged" 3
    (count "flag_partial.ml" Lint.Partial_call)

let test_raw_clock () =
  check_int "Unix.gettimeofday, Unix.time and Sys.time flagged" 3
    (count "flag_clock.ml" Lint.Raw_clock);
  check_int "monotonic fixture code not flagged" 0
    (count "clean_mod.ml" Lint.Raw_clock)

let test_bare_failwith () =
  check_int "failwith and raise Failure flagged" 2
    (count "flag_failwith.ml" Lint.Bare_failwith);
  check_int "typed-error-free fixture not flagged" 0
    (count "clean_mod.ml" Lint.Bare_failwith)

let test_missing_mli () =
  check_int "mli-less module flagged" 1
    (count "flag_missing.ml" Lint.Missing_mli);
  check_int "module with an mli not flagged" 0
    (count "clean_mod.ml" Lint.Missing_mli)

let test_global_mutable () =
  check_int "array and ref at module level flagged" 2
    (count "flag_global.ml" Lint.Global_mutable);
  check_int "Atomic and annotated bindings not flagged" 0
    (List.length
       (List.filter
          (fun f -> f.Lint.line > 6)
          (findings_in "flag_global.ml" Lint.Global_mutable)))

let test_unguarded_unsafe () =
  check_int "Array.unsafe_get and Bytes.unsafe_set flagged" 2
    (count "flag_unsafe.ml" Lint.Unguarded_unsafe);
  check_int "checked-boundary module not flagged" 0
    (count "checked_mod.ml" Lint.Unguarded_unsafe)

let dfindings_in file =
  List.filter
    (fun f -> f.Lint.rule = Lint.Shared_mutation && in_file file f)
    (Lazy.force dresult).Lint.findings

let test_shared_mutation () =
  check_int "escape through a helper flagged at the write site" 1
    (List.length (dfindings_in "flag_share.ml"));
  check_int "escape behind a functor alias flagged" 1
    (List.length (dfindings_in "functor_share.ml"));
  check_int "call-local mutation not flagged" 0
    (List.length (dfindings_in "clean_share.ml"));
  check_int "Mutex.protect-guarded write not flagged" 0
    (List.length (dfindings_in "guarded_share.ml"));
  check_int "annotated write not flagged" 0
    (List.length (dfindings_in "annotated_share.ml"));
  Alcotest.(check bool)
    "no L9 findings without ~domains" true
    (List.for_all
       (fun f -> f.Lint.rule <> Lint.Shared_mutation)
       (Lazy.force result).Lint.findings)

let test_certification () =
  let rows = (Lazy.force dresult).Lint.certification in
  let verdict m =
    match
      List.find_opt
        (fun (r : Lint.Domain_safety.cert_row) ->
          r.Lint.Domain_safety.cm_module = m)
        rows
    with
    | Some r -> r.Lint.Domain_safety.cm_verdict
    | None -> Alcotest.failf "no certification row for %s" m
  in
  Alcotest.(check string) "escaping module" "UNSAFE" (verdict "Flag_share");
  Alcotest.(check string) "functor alias" "UNSAFE" (verdict "Functor_share");
  Alcotest.(check string) "local-only module" "certified"
    (verdict "Clean_share");
  Alcotest.(check string) "mutex-guarded module" "certified (guarded)"
    (verdict "Guarded_share");
  Alcotest.(check string) "annotated module" "certified (annotated)"
    (verdict "Annotated_share");
  Alcotest.(check bool)
    "no certification rows without ~domains" true
    ((Lazy.force result).Lint.certification = [])

let test_only_except () =
  (match
     Lint.run ~all_paths:true ~only:[ Lint.Obj_magic ] ~build_dir:"fixtures"
       ~source_root:"../.." ()
   with
  | Error e -> Alcotest.failf "lint run failed: %s" e
  | Ok r ->
    Alcotest.(check bool)
      "--only restricts to the listed rule" true
      (r.Lint.findings <> []
      && List.for_all (fun f -> f.Lint.rule = Lint.Obj_magic) r.Lint.findings));
  match
    Lint.run ~all_paths:true ~except:[ Lint.Obj_magic ] ~build_dir:"fixtures"
      ~source_root:"../.." ()
  with
  | Error e -> Alcotest.failf "lint run failed: %s" e
  | Ok r ->
    Alcotest.(check bool)
      "--except drops the listed rule" true
      (r.Lint.findings <> []
      && List.for_all (fun f -> f.Lint.rule <> Lint.Obj_magic) r.Lint.findings)

let test_clean () =
  let offending =
    List.filter (in_file "clean_mod.ml") (Lazy.force result).Lint.findings
  in
  check_int "clean fixture has no findings" 0 (List.length offending)

let test_suppressed () =
  let r = Lazy.force result in
  let hits rule l =
    List.length
      (List.filter
         (fun f -> f.Lint.rule = rule && in_file "suppressed_mod.ml" f)
         l)
  in
  check_int "no unsuppressed findings in the suppression fixture" 0
    (List.length (List.filter (in_file "suppressed_mod.ml") r.Lint.findings));
  check_int "line waiver recorded as suppressed" 1
    (hits Lint.Obj_magic r.Lint.suppressed);
  check_int "same-line waiver recorded as suppressed" 1
    (hits Lint.Catch_all r.Lint.suppressed);
  check_int "file-wide waiver recorded as suppressed" 1
    (hits Lint.Missing_mli r.Lint.suppressed)

let test_demote () =
  match
    Lint.run ~all_paths:true ~demote:[ Lint.Obj_magic ]
      ~build_dir:"fixtures" ~source_root:"../.." ()
  with
  | Error e -> Alcotest.failf "lint run failed: %s" e
  | Ok r ->
    List.iter
      (fun f ->
        if f.Lint.rule = Lint.Obj_magic then
          Alcotest.(check string)
            "demoted rule reports as warning" "warning"
            (Lint.severity_id f.Lint.severity))
      r.Lint.findings

let test_rule_ids () =
  List.iter
    (fun r ->
      match Lint.rule_of_id (Lint.rule_id r) with
      | Some r' when r' = r -> ()
      | _ -> Alcotest.failf "rule id %s does not round-trip" (Lint.rule_id r))
    Lint.all_rules;
  Alcotest.(check bool)
    "unknown id rejected" true
    (Lint.rule_of_id "no-such-rule" = None)

let test_exporters () =
  let f =
    { Lint.rule = Lint.Obj_magic; severity = Lint.Error;
      file = "lib/x.ml"; line = 3; col = 10; message = "say \"hi\"" }
  in
  (match Lint.jsonl [ f ] with
  | [ line ] ->
    Alcotest.(check string)
      "jsonl line"
      "{\"rule\":\"obj-magic\",\"severity\":\"error\",\"file\":\"lib/x.ml\",\"line\":3,\"col\":10,\"message\":\"say \\\"hi\\\"\"}"
      line
  | l -> Alcotest.failf "expected one jsonl line, got %d" (List.length l));
  match Lint.table_rows [ f ] with
  | [ [ rule; sev; where; _msg ] ] ->
    Alcotest.(check string) "rule cell" "obj-magic" rule;
    Alcotest.(check string) "severity cell" "error" sev;
    Alcotest.(check string) "where cell" "lib/x.ml:3:10" where
  | _ -> Alcotest.fail "expected one 4-column row"

let () =
  Alcotest.run "spine_lint"
    [ ( "rules",
        [ Alcotest.test_case "poly-compare" `Quick test_poly_compare;
          Alcotest.test_case "obj-magic" `Quick test_obj_magic;
          Alcotest.test_case "catch-all" `Quick test_catch_all;
          Alcotest.test_case "stdout" `Quick test_stdout;
          Alcotest.test_case "partial-call" `Quick test_partial_call;
          Alcotest.test_case "raw-clock" `Quick test_raw_clock;
          Alcotest.test_case "missing-mli" `Quick test_missing_mli;
          Alcotest.test_case "bare-failwith" `Quick test_bare_failwith;
          Alcotest.test_case "global-mutable" `Quick test_global_mutable;
          Alcotest.test_case "unguarded-unsafe" `Quick test_unguarded_unsafe;
          Alcotest.test_case "shared-mutation" `Quick test_shared_mutation ] );
      ( "behaviour",
        [ Alcotest.test_case "clean module" `Quick test_clean;
          Alcotest.test_case "suppressions" `Quick test_suppressed;
          Alcotest.test_case "demotion" `Quick test_demote;
          Alcotest.test_case "rule ids" `Quick test_rule_ids;
          Alcotest.test_case "certification" `Quick test_certification;
          Alcotest.test_case "only/except" `Quick test_only_except;
          Alcotest.test_case "exporters" `Quick test_exporters ] ) ]
