(* Tests for the disk substrate: device cost model, buffer pool
   replacement/pinning, paged arrays and the trace router. *)

let mk_device ?(sync_writes = false) () =
  Pagestore.Device.create ~sync_writes ~page_size:256 ()

let page_of_byte b = Bytes.make 256 b

let test_device_roundtrip () =
  let d = mk_device () in
  Pagestore.Device.write d 3 (page_of_byte 'x');
  Pagestore.Device.write d 99 (page_of_byte 'y');
  Alcotest.(check char) "page 3" 'x' (Bytes.get (Pagestore.Device.read d 3) 0);
  Alcotest.(check char) "page 99" 'y' (Bytes.get (Pagestore.Device.read d 99) 0);
  Alcotest.(check char) "unwritten page is zero" '\000'
    (Bytes.get (Pagestore.Device.read d 7) 10);
  Alcotest.(check int) "pages allocated" 2 (Pagestore.Device.pages_allocated d)

let test_device_counters () =
  let d = mk_device () in
  for i = 0 to 9 do Pagestore.Device.write d i (page_of_byte 'a') done;
  for _ = 1 to 5 do ignore (Pagestore.Device.read d 0) done;
  let s = Pagestore.Device.stats d in
  Alcotest.(check int) "writes" 10 s.Pagestore.Device.writes;
  Alcotest.(check int) "reads" 5 s.Pagestore.Device.reads;
  (* sequential writes 1..9 plus repeated reads of page 0 *)
  if s.Pagestore.Device.sequential < 9 then
    Alcotest.failf "expected sequential accesses, got %d"
      s.Pagestore.Device.sequential;
  Pagestore.Device.reset_stats d;
  Alcotest.(check int) "reset" 0 (Pagestore.Device.stats d).Pagestore.Device.reads

let test_device_sync_cost () =
  let plain = mk_device () in
  let sync = mk_device ~sync_writes:true () in
  (* interleave non-adjacent pages so no write takes the sequential
     fast path on either device *)
  Pagestore.Device.write plain 0 (page_of_byte 'a');
  Pagestore.Device.write plain 100 (page_of_byte 'a');
  Pagestore.Device.write sync 0 (page_of_byte 'a');
  Pagestore.Device.write sync 100 (page_of_byte 'a');
  let pe = (Pagestore.Device.stats plain).Pagestore.Device.elapsed_us in
  let se = (Pagestore.Device.stats sync).Pagestore.Device.elapsed_us in
  if se <= pe then Alcotest.fail "sync writes must cost more"

let test_device_bad_write () =
  let d = mk_device () in
  Alcotest.check_raises "short page"
    (Invalid_argument "Device.write: data is not exactly one page")
    (fun () -> Pagestore.Device.write d 0 (Bytes.create 8))

let test_device_checksums () =
  let d = Pagestore.Device.create ~checksums:true ~page_size:256 () in
  Pagestore.Device.set_epoch d 5;
  Pagestore.Device.write d 2 (page_of_byte 'q');
  Alcotest.(check char) "roundtrip through the trailer" 'q'
    (Bytes.get (Pagestore.Device.read d 2) 0);
  (match Pagestore.Device.verify_page d 2 with
   | `Ok 5 -> ()
   | _ -> Alcotest.fail "written page should verify at its epoch");
  (match Pagestore.Device.verify_page d 9 with
   | `Unwritten -> ()
   | _ -> Alcotest.fail "unwritten page must classify as unwritten");
  (* an epoch beyond the committed ceiling is crash debris *)
  Pagestore.Device.set_max_valid_epoch d 3;
  Pagestore.Device.set_epoch d 7;
  (match Pagestore.Device.verify_page d 2 with
   | `Stale 5 -> ()
   | _ -> Alcotest.fail "epoch-5 page must be stale under ceiling 3");
  (match Pagestore.Device.read d 2 with
   | _ -> Alcotest.fail "stale page read must raise"
   | exception Spine_error.Error (Spine_error.Corrupt _) -> ());
  (* the session's own (current-epoch) writes always validate *)
  Pagestore.Device.write d 4 (page_of_byte 'r');
  Alcotest.(check char) "current-epoch page readable" 'r'
    (Bytes.get (Pagestore.Device.read d 4) 0)

let test_device_bit_flip_detected () =
  let d = Pagestore.Device.create ~checksums:true ~page_size:256 () in
  let f =
    Pagestore.Fault_device.create ~seed:3
      [ Pagestore.Fault_device.arm Pagestore.Fault_device.Bit_flip ]
  in
  Pagestore.Fault_device.attach f d;
  Pagestore.Device.write d 1 (page_of_byte 's');
  Pagestore.Fault_device.detach d;
  Alcotest.(check int) "flip fired" 1
    (Pagestore.Fault_device.stats f).Pagestore.Fault_device.bit_flips;
  (match Pagestore.Device.read d 1 with
   | _ -> Alcotest.fail "flipped page read must raise"
   | exception Spine_error.Error (Spine_error.Corrupt _) -> ());
  (match Pagestore.Device.verify_page d 1 with
   | `Damaged _ -> ()
   | _ -> Alcotest.fail "flipped page must verify as damaged")

let test_device_crash_freeze () =
  let d = Pagestore.Device.create ~checksums:true ~page_size:256 () in
  Pagestore.Device.write d 0 (page_of_byte 'a');
  let f =
    Pagestore.Fault_device.create
      [ Pagestore.Fault_device.arm ~after:1 Pagestore.Fault_device.Crash ]
  in
  Pagestore.Fault_device.attach f d;
  Pagestore.Device.write d 1 (page_of_byte 'b');  (* lands *)
  Pagestore.Device.write d 2 (page_of_byte 'c');  (* crash point: dropped *)
  Pagestore.Device.write d 0 (page_of_byte 'z');  (* frozen: dropped *)
  Alcotest.(check bool) "image frozen" true (Pagestore.Fault_device.frozen f);
  Alcotest.(check int) "post-crash write dropped" 1
    (Pagestore.Fault_device.stats f).Pagestore.Fault_device.dropped_writes;
  Pagestore.Fault_device.detach d;
  Alcotest.(check char) "pre-crash page intact" 'b'
    (Bytes.get (Pagestore.Device.read d 1) 0);
  Alcotest.(check char) "frozen page keeps its old content" 'a'
    (Bytes.get (Pagestore.Device.read d 0) 0);
  (match Pagestore.Device.verify_page d 2 with
   | `Unwritten -> ()
   | _ -> Alcotest.fail "the crashed-away page never landed")

let test_device_torn_clamp () =
  (* out-of-range tear lengths from a hook (or a hostile SPINE_FAULTS
     spec) must clamp, not blow up in Bytes.blit *)
  let d = Pagestore.Device.create ~checksums:true ~page_size:256 () in
  Pagestore.Device.write d 0 (page_of_byte 'a');
  let tearing keep =
    Some
      { Pagestore.Device.on_read = (fun ~page:_ -> ())
      ; on_write = (fun ~page:_ ~phys:_ -> Pagestore.Device.Torn keep)
      }
  in
  Pagestore.Device.set_hooks d (tearing (-5));
  Pagestore.Device.write d 0 (page_of_byte 'b');
  Alcotest.(check char) "negative keep tears the whole write away" 'a'
    (Bytes.get (Pagestore.Device.read d 0) 0);
  Pagestore.Device.set_hooks d (tearing 1_000_000);
  Pagestore.Device.write d 0 (page_of_byte 'c');
  Pagestore.Device.set_hooks d None;
  Alcotest.(check char) "oversized keep lands the whole write" 'c'
    (Bytes.get (Pagestore.Device.read d 0) 0)

let test_pool_hit_miss () =
  let d = mk_device () in
  let p = Pagestore.Buffer_pool.create ~frames:4 d in
  (* touch 4 distinct pages, then re-touch: all hits *)
  for i = 0 to 3 do
    Pagestore.Buffer_pool.with_page p i ~dirty:false (fun _ -> ())
  done;
  for i = 0 to 3 do
    Pagestore.Buffer_pool.with_page p i ~dirty:false (fun _ -> ())
  done;
  let s = Pagestore.Buffer_pool.stats p in
  Alcotest.(check int) "misses" 4 s.Pagestore.Buffer_pool.misses;
  Alcotest.(check int) "hits" 4 s.Pagestore.Buffer_pool.hits

let test_pool_lru_eviction () =
  let d = mk_device () in
  let p = Pagestore.Buffer_pool.create ~frames:3 d in
  let touch i = Pagestore.Buffer_pool.with_page p i ~dirty:false (fun _ -> ()) in
  touch 0; touch 1; touch 2;
  touch 0;          (* 1 is now least-recently used *)
  touch 3;          (* evicts 1 *)
  touch 0;          (* must still be resident: hit *)
  let before = (Pagestore.Buffer_pool.stats p).Pagestore.Buffer_pool.misses in
  touch 1;          (* must miss: it was evicted *)
  let after = (Pagestore.Buffer_pool.stats p).Pagestore.Buffer_pool.misses in
  Alcotest.(check int) "page 1 was evicted" (before + 1) after

let test_pool_fifo_vs_lru () =
  (* under FIFO, re-touching a page does not protect it *)
  let run replacement =
    let d = mk_device () in
    let p = Pagestore.Buffer_pool.create ~replacement ~frames:2 d in
    let touch i = Pagestore.Buffer_pool.with_page p i ~dirty:false (fun _ -> ()) in
    touch 0; touch 1;
    touch 0;        (* LRU: protects 0; FIFO: no effect *)
    touch 2;        (* LRU evicts 1; FIFO evicts 0 *)
    touch 0;
    (Pagestore.Buffer_pool.stats p).Pagestore.Buffer_pool.misses
  in
  (* LRU: misses 0,1,2 = 3. FIFO: misses 0,1,2,0 = 4. *)
  Alcotest.(check int) "lru misses" 3 (run `Lru);
  Alcotest.(check int) "fifo misses" 4 (run `Fifo)

let test_pool_pinning () =
  let d = mk_device () in
  let p = Pagestore.Buffer_pool.create ~pin:(fun page -> page = 0) ~frames:2 d in
  let touch i = Pagestore.Buffer_pool.with_page p i ~dirty:false (fun _ -> ()) in
  touch 0;
  (* stream many pages through; page 0 must survive *)
  for i = 1 to 20 do touch i done;
  let before = (Pagestore.Buffer_pool.stats p).Pagestore.Buffer_pool.misses in
  touch 0;
  let after = (Pagestore.Buffer_pool.stats p).Pagestore.Buffer_pool.misses in
  Alcotest.(check int) "pinned page survived streaming" before after

let test_pool_writeback () =
  let d = mk_device () in
  let p = Pagestore.Buffer_pool.create ~frames:2 d in
  Pagestore.Buffer_pool.with_page p 5 ~dirty:true (fun b -> Bytes.set b 0 'z');
  (* not yet on the device *)
  Alcotest.(check char) "not written yet" '\000'
    (Bytes.get (Pagestore.Device.read d 5) 0);
  Pagestore.Buffer_pool.flush p;
  Alcotest.(check char) "after flush" 'z'
    (Bytes.get (Pagestore.Device.read d 5) 0);
  (* eviction also writes back *)
  Pagestore.Buffer_pool.with_page p 6 ~dirty:true (fun b -> Bytes.set b 1 'q');
  Pagestore.Buffer_pool.with_page p 7 ~dirty:false (fun _ -> ());
  Pagestore.Buffer_pool.with_page p 8 ~dirty:false (fun _ -> ());
  Alcotest.(check char) "after eviction" 'q'
    (Bytes.get (Pagestore.Device.read d 6) 1)

let test_pool_pinned_eviction () =
  let d = mk_device () in
  (* every page the workload touches is pinned: the policy's fallback
     must sacrifice a pinned page and say so *)
  let p = Pagestore.Buffer_pool.create ~pin:(fun page -> page < 2) ~frames:2 d in
  let touch i = Pagestore.Buffer_pool.with_page p i ~dirty:false (fun _ -> ()) in
  touch 0; touch 1;
  Alcotest.(check int) "no pinned evictions while frames free" 0
    (Pagestore.Buffer_pool.stats p).Pagestore.Buffer_pool.pinned_evictions;
  touch 2;
  let s = Pagestore.Buffer_pool.stats p in
  Alcotest.(check int) "pinned eviction counted" 1
    s.Pagestore.Buffer_pool.pinned_evictions;
  Alcotest.(check int) "still counted as an eviction" 1
    s.Pagestore.Buffer_pool.evictions;
  (* page 2 is unpinned and is now the preferred victim: evicting it
     must not touch the pinned counter *)
  touch 10;
  let s = Pagestore.Buffer_pool.stats p in
  Alcotest.(check int) "unpinned eviction not pinned-counted" 1
    s.Pagestore.Buffer_pool.pinned_evictions;
  Alcotest.(check int) "eviction still counted" 2
    s.Pagestore.Buffer_pool.evictions

let test_pool_reset_stats () =
  let d = mk_device () in
  let p = Pagestore.Buffer_pool.create ~frames:2 d in
  let touch ?(dirty = false) i =
    Pagestore.Buffer_pool.with_page p i ~dirty (fun _ -> ())
  in
  touch ~dirty:true 0; touch 1; touch 0;
  touch 2; touch 3;            (* evicts both, writing back dirty page 0 *)
  let s = Pagestore.Buffer_pool.stats p in
  if s.Pagestore.Buffer_pool.hits = 0 || s.Pagestore.Buffer_pool.misses = 0
     || s.Pagestore.Buffer_pool.evictions = 0
     || s.Pagestore.Buffer_pool.writebacks = 0
  then Alcotest.fail "expected every stat class to be exercised";
  Pagestore.Buffer_pool.reset_stats p;
  let z = Pagestore.Buffer_pool.stats p in
  Alcotest.(check int) "hits reset" 0 z.Pagestore.Buffer_pool.hits;
  Alcotest.(check int) "misses reset" 0 z.Pagestore.Buffer_pool.misses;
  Alcotest.(check int) "evictions reset" 0 z.Pagestore.Buffer_pool.evictions;
  Alcotest.(check int) "pinned evictions reset" 0
    z.Pagestore.Buffer_pool.pinned_evictions;
  Alcotest.(check int) "writebacks reset" 0 z.Pagestore.Buffer_pool.writebacks;
  (* counting resumes from zero after a reset *)
  touch 0;
  Alcotest.(check int) "fresh miss after reset" 1
    (Pagestore.Buffer_pool.stats p).Pagestore.Buffer_pool.misses

let test_pool_telemetry_consistency () =
  (* the global telemetry mirror advances in lockstep with the pool's
     own counters *)
  let prev = Telemetry.is_enabled () in
  Telemetry.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Telemetry.set_enabled prev)
    (fun () ->
      let count name =
        match Telemetry.find (Telemetry.snapshot ()) name with
        | Some (Telemetry.Count n) -> n
        | _ -> 0
      in
      let h0 = count "pool.hits" and m0 = count "pool.misses" in
      let e0 = count "pool.evictions" in
      let d = mk_device () in
      let p = Pagestore.Buffer_pool.create ~frames:2 d in
      let touch i =
        Pagestore.Buffer_pool.with_page p i ~dirty:false (fun _ -> ())
      in
      touch 0; touch 1; touch 0; touch 2; touch 3;
      let s = Pagestore.Buffer_pool.stats p in
      Alcotest.(check int) "hits mirrored" s.Pagestore.Buffer_pool.hits
        (count "pool.hits" - h0);
      Alcotest.(check int) "misses mirrored" s.Pagestore.Buffer_pool.misses
        (count "pool.misses" - m0);
      Alcotest.(check int) "evictions mirrored"
        s.Pagestore.Buffer_pool.evictions
        (count "pool.evictions" - e0))

let test_pool_drop_rereads () =
  let d = mk_device () in
  let p = Pagestore.Buffer_pool.create ~frames:4 d in
  Pagestore.Buffer_pool.with_page p 1 ~dirty:true (fun b -> Bytes.set b 0 'k');
  Pagestore.Buffer_pool.drop p;
  (* contents must persist through the drop *)
  Pagestore.Buffer_pool.with_page p 1 ~dirty:false (fun b ->
      Alcotest.(check char) "reread after drop" 'k' (Bytes.get b 0))

let test_paged_array_fields () =
  let d = mk_device () in
  let p = Pagestore.Buffer_pool.create ~frames:8 d in
  let a = Pagestore.Paged_array.create p ~base_page:0 ~record_size:12 in
  Alcotest.(check int) "records per page" (256 / 12)
    (Pagestore.Paged_array.records_per_page a);
  for i = 0 to 99 do
    Pagestore.Paged_array.set_u32 a i 0 (i * 1000);
    Pagestore.Paged_array.set_u16 a i 4 (i * 3);
    Pagestore.Paged_array.set_u8 a i 6 (i mod 256)
  done;
  for i = 0 to 99 do
    Alcotest.(check int) "u32" (i * 1000) (Pagestore.Paged_array.get_u32 a i 0);
    Alcotest.(check int) "u16" (i * 3) (Pagestore.Paged_array.get_u16 a i 4);
    Alcotest.(check int) "u8" (i mod 256) (Pagestore.Paged_array.get_u8 a i 6)
  done;
  Alcotest.(check int) "length" 100 (Pagestore.Paged_array.length a);
  (* fields must stay within the record *)
  Alcotest.check_raises "field outside record"
    (Invalid_argument "Paged_array: field outside record") (fun () ->
      ignore (Pagestore.Paged_array.get_u32 a 0 10))

let test_paged_array_persistence () =
  let d = mk_device () in
  let p = Pagestore.Buffer_pool.create ~frames:2 d in
  let a = Pagestore.Paged_array.create p ~base_page:10 ~record_size:8 in
  for i = 0 to 199 do
    Pagestore.Paged_array.set_u32 a i 0 (i * 7)
  done;
  Pagestore.Buffer_pool.flush p;
  Pagestore.Buffer_pool.drop p;
  for i = 0 to 199 do
    Alcotest.(check int) "persisted" (i * 7) (Pagestore.Paged_array.get_u32 a i 0)
  done

let test_trace_router () =
  let d = mk_device () in
  let p = Pagestore.Buffer_pool.create ~frames:8 d in
  let r =
    Pagestore.Trace_router.create p
      [ { Pagestore.Trace_router.structure = 0; base_page = 0; record_bytes = 8 }
      ; { Pagestore.Trace_router.structure = 1; base_page = 1000; record_bytes = 32 }
      ]
  in
  (* 256-byte pages: 32 records of 8B per page; 8 records of 32B *)
  Alcotest.(check int) "structure 0 record 0" 0
    (Pagestore.Trace_router.page_of r ~structure:0 ~index:0);
  Alcotest.(check int) "structure 0 record 33" 1
    (Pagestore.Trace_router.page_of r ~structure:0 ~index:33);
  Alcotest.(check int) "structure 1 record 9" 1001
    (Pagestore.Trace_router.page_of r ~structure:1 ~index:9);
  (* unknown structures are ignored, not fatal *)
  Pagestore.Trace_router.route r ~structure:5 ~index:0 ~write:false;
  Pagestore.Trace_router.route r ~structure:0 ~index:0 ~write:true;
  Alcotest.(check int) "one pool access" 1
    ((Pagestore.Buffer_pool.stats p).Pagestore.Buffer_pool.misses)

let suite =
  [ Alcotest.test_case "device read/write roundtrip" `Quick test_device_roundtrip
  ; Alcotest.test_case "device counters" `Quick test_device_counters
  ; Alcotest.test_case "device sync-write cost" `Quick test_device_sync_cost
  ; Alcotest.test_case "device rejects bad writes" `Quick test_device_bad_write
  ; Alcotest.test_case "device checksum trailers and epoch ceiling" `Quick
      test_device_checksums
  ; Alcotest.test_case "device detects injected bit flips" `Quick
      test_device_bit_flip_detected
  ; Alcotest.test_case "device crash point freezes the image" `Quick
      test_device_crash_freeze
  ; Alcotest.test_case "device clamps out-of-range torn-write lengths" `Quick
      test_device_torn_clamp
  ; Alcotest.test_case "pool hits and misses" `Quick test_pool_hit_miss
  ; Alcotest.test_case "pool LRU eviction order" `Quick test_pool_lru_eviction
  ; Alcotest.test_case "pool FIFO vs LRU" `Quick test_pool_fifo_vs_lru
  ; Alcotest.test_case "pool pinning" `Quick test_pool_pinning
  ; Alcotest.test_case "pool writeback on flush/evict" `Quick test_pool_writeback
  ; Alcotest.test_case "pool pinned eviction counter" `Quick
      test_pool_pinned_eviction
  ; Alcotest.test_case "pool reset_stats" `Quick test_pool_reset_stats
  ; Alcotest.test_case "pool telemetry mirror" `Quick
      test_pool_telemetry_consistency
  ; Alcotest.test_case "pool drop rereads device" `Quick test_pool_drop_rereads
  ; Alcotest.test_case "paged array fields" `Quick test_paged_array_fields
  ; Alcotest.test_case "paged array persistence" `Quick
      test_paged_array_persistence
  ; Alcotest.test_case "trace router mapping" `Quick test_trace_router
  ]
