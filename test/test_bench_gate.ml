(* Tests for the bench trajectory regression gate: the hand-rolled JSON
   parser, artifact schema extraction, and the tolerance classifier. *)

let artifact ?(t3 = "0.41") ?(extra = "") ?(micro = true) () =
  Printf.sprintf
    {|{
  "schema": "spine-bench/1",
  "config": {"scale": 0.002, "disk_scale": 0.0005, "bench_scale": 0.01},
  "experiments": [
    {"name": "table2", "wall_s": 1.25},
    {"name": "table3", "wall_s": %s}%s
  ],
  "micro": [
    {"name": "construct/fast", "ns_per_run": %s},
    {"name": "match/compact", "ns_per_run": null}
  ]
}|}
    t3 extra
    (if micro then "1520.5" else "null")

(* --- parser --- *)

let test_json_values () =
  let open Bench_gate.Json in
  Alcotest.(check bool) "null" true (parse_exn "null" = Null);
  Alcotest.(check bool) "true" true (parse_exn " true " = Bool true);
  Alcotest.(check bool) "int" true (parse_exn "42" = Num 42.0);
  Alcotest.(check bool) "negative float" true
    (parse_exn "-2.5e2" = Num (-250.0));
  Alcotest.(check bool) "string escapes" true
    (parse_exn {|"a\"b\\c\ndA"|} = Str "a\"b\\c\ndA");
  Alcotest.(check bool) "empty containers" true
    (parse_exn {|{"a": [], "b": {}}|}
     = Obj [ ("a", List []); ("b", Obj []) ]);
  Alcotest.(check bool) "nested" true
    (parse_exn {|[1, {"x": [true, null]}]|}
     = List [ Num 1.0; Obj [ ("x", List [ Bool true; Null ]) ] ])

let test_json_errors () =
  let fails s =
    match Bench_gate.Json.parse s with
    | Ok _ -> Alcotest.failf "parse %S should fail" s
    | Error _ -> ()
  in
  fails "";
  fails "{";
  fails "[1,]";
  fails {|{"a" 1}|};
  fails "1 2";
  fails {|"unterminated|};
  fails "nulle"

let test_artifact_entries () =
  match Bench_gate.of_string (artifact ()) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok b ->
    Alcotest.(check string) "schema" "spine-bench/1" b.Bench_gate.schema;
    let names =
      List.map
        (fun e -> (e.Bench_gate.group, e.Bench_gate.name))
        b.Bench_gate.entries
    in
    Alcotest.(check bool) "experiments present" true
      (List.mem ("experiments", "table2") names
       && List.mem ("experiments", "table3") names);
    Alcotest.(check bool) "micro present" true
      (List.mem ("micro", "construct/fast") names);
    let find name =
      List.find (fun e -> e.Bench_gate.name = name) b.Bench_gate.entries
    in
    Alcotest.(check bool) "wall_s unit" true
      ((find "table2").Bench_gate.unit_ = "wall_s");
    Alcotest.(check bool) "value read" true
      ((find "table2").Bench_gate.value = Some 1.25);
    Alcotest.(check bool) "null value maps to None" true
      ((find "match/compact").Bench_gate.value = None)

let test_missing_schema () =
  match Bench_gate.of_string {|{"experiments": []}|} with
  | Ok _ -> Alcotest.fail "missing schema should be rejected"
  | Error _ -> ()

(* --- comparison --- *)

let baseline s =
  match Bench_gate.of_string s with
  | Ok b -> b
  | Error e -> Alcotest.failf "baseline parse failed: %s" e

let verdicts comparisons =
  List.map
    (fun c ->
      ((c.Bench_gate.c_group, c.Bench_gate.c_name), c.Bench_gate.c_verdict))
    comparisons

let test_identical_passes () =
  let b = baseline (artifact ()) in
  let cmp = Bench_gate.compare_baselines ~tolerance:0.0 b b in
  Alcotest.(check int) "no failures" 0
    (List.length (Bench_gate.failures cmp));
  Alcotest.(check bool) "null vs null is incomparable, not a failure" true
    (List.assoc ("micro", "match/compact") (verdicts cmp)
     = Bench_gate.Incomparable)

let test_injected_regression_detected () =
  let old_b = baseline (artifact ()) in
  (* inject a 3x slowdown on one experiment *)
  let new_b = baseline (artifact ~t3:"1.23" ()) in
  let cmp = Bench_gate.compare_baselines ~tolerance:0.25 old_b new_b in
  Alcotest.(check bool) "table3 regressed" true
    (List.assoc ("experiments", "table3") (verdicts cmp)
     = Bench_gate.Regressed);
  Alcotest.(check bool) "table2 unaffected" true
    (List.assoc ("experiments", "table2") (verdicts cmp)
     = Bench_gate.Ok_within);
  Alcotest.(check int) "exactly one failure" 1
    (List.length (Bench_gate.failures cmp))

let test_tolerance_bounds () =
  let old_b = baseline (artifact ()) in
  let new_b = baseline (artifact ~t3:"0.49" ()) in
  (* 0.41 -> 0.49 is ~19.5% slower: inside 25%, outside 10% *)
  let loose = Bench_gate.compare_baselines ~tolerance:0.25 old_b new_b in
  Alcotest.(check int) "within 25%" 0
    (List.length (Bench_gate.failures loose));
  let tight = Bench_gate.compare_baselines ~tolerance:0.10 old_b new_b in
  Alcotest.(check int) "outside 10%" 1
    (List.length (Bench_gate.failures tight));
  (* an improvement never fails, whatever the tolerance *)
  let faster = baseline (artifact ~t3:"0.01" ()) in
  Alcotest.(check int) "improvement passes" 0
    (List.length
       (Bench_gate.failures
          (Bench_gate.compare_baselines ~tolerance:0.0 old_b faster)))

let test_removed_fails_added_informs () =
  let old_b = baseline (artifact ()) in
  let shrunk =
    baseline
      {|{"schema": "spine-bench/1",
         "experiments": [{"name": "table2", "wall_s": 1.25}],
         "micro": []}|}
  in
  let cmp = Bench_gate.compare_baselines ~tolerance:0.5 old_b shrunk in
  Alcotest.(check bool) "table3 removed" true
    (List.assoc ("experiments", "table3") (verdicts cmp) = Bench_gate.Removed);
  Alcotest.(check bool) "removed is a failure" true
    (List.length (Bench_gate.failures cmp) >= 1);
  let grown =
    baseline (artifact ~extra:{|, {"name": "table9", "wall_s": 0.5}|} ())
  in
  let cmp = Bench_gate.compare_baselines ~tolerance:0.5 old_b grown in
  Alcotest.(check bool) "table9 added" true
    (List.assoc ("experiments", "table9") (verdicts cmp) = Bench_gate.Added);
  Alcotest.(check int) "added is not a failure" 0
    (List.length (Bench_gate.failures cmp))

let test_null_transitions () =
  let old_b = baseline (artifact ()) in
  (* a fit that starts failing (value -> null) is incomparable, not a
     regression: the measurement is missing, not worse *)
  let new_b = baseline (artifact ~micro:false ()) in
  let cmp = Bench_gate.compare_baselines ~tolerance:0.25 old_b new_b in
  Alcotest.(check bool) "num -> null incomparable" true
    (List.assoc ("micro", "construct/fast") (verdicts cmp)
     = Bench_gate.Incomparable);
  Alcotest.(check int) "no failures" 0
    (List.length (Bench_gate.failures cmp))

let test_noise_floor () =
  let old_b =
    baseline
      {|{"schema": "spine-bench/1",
         "experiments": [{"name": "tiny", "wall_s": 0.0001},
                         {"name": "big", "wall_s": 2.0}]}|}
  in
  let new_b =
    baseline
      {|{"schema": "spine-bench/1",
         "experiments": [{"name": "tiny", "wall_s": 0.0009},
                         {"name": "big", "wall_s": 9.0}]}|}
  in
  (* both 4.5-9x slower; the floor forgives only the sub-millisecond one *)
  let cmp =
    Bench_gate.compare_baselines
      ~floors:[ ("wall_s", 0.01) ]
      ~tolerance:0.25 old_b new_b
  in
  Alcotest.(check bool) "tiny forgiven below the floor" true
    (List.assoc ("experiments", "tiny") (verdicts cmp)
     = Bench_gate.Ok_within);
  Alcotest.(check bool) "big still regresses" true
    (List.assoc ("experiments", "big") (verdicts cmp) = Bench_gate.Regressed);
  (* without the floor, both regress *)
  let strict = Bench_gate.compare_baselines ~tolerance:0.25 old_b new_b in
  Alcotest.(check int) "no floor: both fail" 2
    (List.length (Bench_gate.failures strict))

let test_rows_shape () =
  let b = baseline (artifact ()) in
  let rows = Bench_gate.rows (Bench_gate.compare_baselines ~tolerance:0.1 b b) in
  Alcotest.(check int) "one row per benchmark" 4 (List.length rows);
  List.iter
    (fun row -> Alcotest.(check int) "7 columns" 7 (List.length row))
    rows

let suite =
  [ Alcotest.test_case "json values" `Quick test_json_values
  ; Alcotest.test_case "json errors" `Quick test_json_errors
  ; Alcotest.test_case "artifact entries" `Quick test_artifact_entries
  ; Alcotest.test_case "missing schema" `Quick test_missing_schema
  ; Alcotest.test_case "identical passes" `Quick test_identical_passes
  ; Alcotest.test_case "injected regression detected" `Quick
      test_injected_regression_detected
  ; Alcotest.test_case "tolerance bounds" `Quick test_tolerance_bounds
  ; Alcotest.test_case "removed fails, added informs" `Quick
      test_removed_fails_added_informs
  ; Alcotest.test_case "null transitions" `Quick test_null_transitions
  ; Alcotest.test_case "noise floor" `Quick test_noise_floor
  ; Alcotest.test_case "rows shape" `Quick test_rows_shape
  ]
