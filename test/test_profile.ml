(* Tests for per-query execution profiles: the scoped-attribution
   reconciliation the ISSUE demands (per-query buffer-pool and device
   counters summed over a multi-query batch equal the global telemetry
   deltas exactly, single-domain), plus scope shadowing and the
   fields round trip. *)

let seq_of n =
  let rng = Bioseq.Rng.create 4242 in
  Bioseq.Synthetic.markov ~order:1 Bioseq.Alphabet.dna rng n

let with_telemetry f =
  let prev = Telemetry.is_enabled () in
  Telemetry.set_enabled true;
  Fun.protect ~finally:(fun () -> Telemetry.set_enabled prev) f

let counter_of snap name =
  match Telemetry.find snap name with
  | Some (Telemetry.Count v) -> v
  | Some _ -> Alcotest.failf "%s is not a counter" name
  | None -> 0

(* Global counters whose deltas the per-query profiles must explain,
   paired with the profile field that attributes them. *)
let reconciled =
  [ ("search.vertebra_hops", fun (p : Profile.t) -> p.Profile.vertebra_steps)
  ; ("search.rib_hops", fun p -> p.Profile.rib_steps)
  ; ("search.extrib_hops", fun p -> p.Profile.extrib_steps)
  ; ("search.link_hops", fun p -> p.Profile.link_steps)
  ; ("search.scan_nodes", fun p -> p.Profile.scan_nodes)
  ; ("search.occurrences_found", fun p -> p.Profile.found)
  ; ("pool.hits", fun p -> p.Profile.pool_hits)
  ; ("pool.misses", fun p -> p.Profile.pool_misses)
  ; ("pool.evictions", fun p -> p.Profile.pool_evictions)
  ; ("device.read_bytes", fun p -> p.Profile.device_read_bytes)
  ; ("device.write_bytes", fun p -> p.Profile.device_write_bytes)
  ]

(* The acceptance test: a multi-query batch on the disk backend with a
   starved pool (so faults and evictions actually happen), every query
   wrapped in Engine.profiled.  For each reconciled counter the sum of
   the per-query attributions equals the global before/after delta
   exactly — the profile explains ALL the work, not a sample of it. *)
let test_attribution_sums () =
  with_telemetry (fun () ->
      let seq = seq_of 20_000 in
      let config = { Spine.Disk.default_config with Spine.Disk.frames = 8 } in
      let engine = Spine.Disk.engine (Spine.Disk.build ~config seq) in
      let rng = Bioseq.Rng.create 11 in
      let n = Bioseq.Packed_seq.length seq in
      let patterns =
        List.init 40 (fun _ ->
            let len = 3 + Bioseq.Rng.int rng 10 in
            let pos = Bioseq.Rng.int rng (n - len) in
            Array.init len (fun k -> Bioseq.Packed_seq.get seq (pos + k)))
      in
      let before = Telemetry.snapshot () in
      let profs =
        List.map
          (fun pat ->
            let occ, prof =
              Spine.Engine.profiled engine (fun () ->
                  Spine.Engine.occurrences engine pat)
            in
            (* planted patterns must be found, and the profile must
               agree with the query's own answer *)
            Alcotest.(check bool) "planted pattern found" true (occ <> []);
            Alcotest.(check int) "profile.found = occurrences"
              (List.length occ) prof.Profile.found;
            prof)
          patterns
      in
      let after = Telemetry.snapshot () in
      List.iter
        (fun (name, field) ->
          let delta = counter_of after name - counter_of before name in
          let attributed =
            List.fold_left (fun acc p -> acc + field p) 0 profs
          in
          Alcotest.(check int)
            (Printf.sprintf "%s delta fully attributed" name)
            delta attributed)
        reconciled;
      (* the starved pool must have made the disk counters non-trivial,
         otherwise this reconciliation proves nothing about paging *)
      let faults =
        List.fold_left (fun acc p -> acc + p.Profile.pool_misses) 0 profs
      in
      Alcotest.(check bool) "page faults attributed (starved pool)" true
        (faults > 0))

let test_scopes_shadow () =
  let seq = seq_of 2_000 in
  let engine = Spine.Compact.engine (Spine.Compact.of_seq seq) in
  let pat = Array.init 4 (fun k -> Bioseq.Packed_seq.get seq k) in
  let (inner_occ, inner), outer =
    Spine.Engine.profiled engine (fun () ->
        Spine.Engine.profiled engine (fun () ->
            Spine.Engine.occurrences engine pat))
  in
  Alcotest.(check bool) "inner did work" true (inner_occ <> []);
  Alcotest.(check bool) "inner profile charged" true
    (Profile.total_steps inner > 0 || inner.Profile.scan_nodes > 0);
  (* the nested scope shadowed the outer one: the outer profile holds
     only the work done outside the inner scope, which is none *)
  Alcotest.(check int) "outer not double-charged" 0
    (Profile.total_steps outer + outer.Profile.scan_nodes
     + outer.Profile.found)

let test_fields_roundtrip () =
  let seq = seq_of 2_000 in
  let engine = Spine.Compact.engine (Spine.Compact.of_seq seq) in
  let pat = Array.init 5 (fun k -> Bioseq.Packed_seq.get seq k) in
  let _, prof =
    Spine.Engine.profiled engine (fun () ->
        Spine.Engine.occurrences engine pat)
  in
  let back = Profile.of_fields (Profile.fields prof) in
  Alcotest.(check bool) "fields/of_fields round trip" true
    (Profile.fields back = Profile.fields prof);
  Alcotest.(check int) "deterministic drops alloc+wall+resilience pair"
    (List.length (Profile.fields prof) - 4)
    (List.length (Profile.deterministic_fields prof));
  Alcotest.(check bool) "wall clock measured" true (prof.Profile.wall_ns >= 0)

let test_absorb () =
  let a = Profile.make () and b = Profile.make () in
  a.Profile.rib_steps <- 3;
  a.Profile.device_read_bytes <- 100;
  b.Profile.rib_steps <- 4;
  b.Profile.found <- 2;
  Profile.absorb a b;
  Alcotest.(check int) "absorb sums" 7 a.Profile.rib_steps;
  Alcotest.(check int) "absorb keeps dst-only" 100 a.Profile.device_read_bytes;
  Alcotest.(check int) "absorb adds src-only" 2 a.Profile.found

let suite =
  [ Alcotest.test_case "attribution sums reconcile (disk)" `Quick
      test_attribution_sums
  ; Alcotest.test_case "nested scopes shadow" `Quick test_scopes_shadow
  ; Alcotest.test_case "fields round trip" `Quick test_fields_roundtrip
  ; Alcotest.test_case "absorb" `Quick test_absorb
  ]
