(* Tests for the telemetry core: counter/histogram determinism,
   snapshot-diff-reset round trips, disabled-mode no-op behaviour and
   exporter golden output. *)

let with_enabled b f =
  let prev = Telemetry.is_enabled () in
  Telemetry.set_enabled b;
  Fun.protect ~finally:(fun () -> Telemetry.set_enabled prev) f

let count_of name =
  match Telemetry.find (Telemetry.snapshot ()) name with
  | Some (Telemetry.Count n) -> n
  | _ -> Alcotest.failf "no counter %s in snapshot" name

let test_counter () =
  with_enabled true (fun () ->
      let c = Telemetry.counter "test.counter" in
      let base = Telemetry.counter_value c in
      Telemetry.incr c;
      Telemetry.incr c;
      Telemetry.add c 40;
      Alcotest.(check int) "value" (base + 42) (Telemetry.counter_value c);
      (* registration is idempotent: the same metric comes back *)
      let c' = Telemetry.counter "test.counter" in
      Telemetry.incr c';
      Alcotest.(check int) "shared instance" (base + 43)
        (Telemetry.counter_value c);
      Alcotest.(check int) "snapshot agrees" (base + 43)
        (count_of "test.counter"))

let test_kind_clash () =
  with_enabled true (fun () ->
      let _ = Telemetry.counter "test.kind_clash" in
      Alcotest.check_raises "histogram over counter"
        (Invalid_argument
           "Telemetry: \"test.kind_clash\" already registered as another kind")
        (fun () -> ignore (Telemetry.histogram "test.kind_clash")))

let test_disabled_noop () =
  with_enabled false (fun () ->
      let c = Telemetry.counter "test.disabled_counter" in
      let g = Telemetry.gauge "test.disabled_gauge" in
      let h = Telemetry.histogram "test.disabled_hist" in
      let s = Telemetry.span "test.disabled_span" in
      Telemetry.incr c;
      Telemetry.add c 10;
      Telemetry.set g 3.5;
      Telemetry.observe h 7;
      let r = Telemetry.with_span s (fun () -> 42) in
      Alcotest.(check int) "with_span is a pass-through" 42 r;
      let snap = Telemetry.snapshot () in
      Alcotest.(check bool) "counter untouched" true
        (Telemetry.find snap "test.disabled_counter" = Some (Telemetry.Count 0));
      Alcotest.(check bool) "gauge untouched" true
        (Telemetry.find snap "test.disabled_gauge" = Some (Telemetry.Level 0.0));
      (match Telemetry.find snap "test.disabled_hist" with
      | Some (Telemetry.Dist { total = 0; sum = 0; _ }) -> ()
      | _ -> Alcotest.fail "histogram untouched");
      match Telemetry.find snap "test.disabled_span" with
      | Some (Telemetry.Timing { calls = 0; total_ns = 0 }) -> ()
      | _ -> Alcotest.fail "span untouched")

let test_histogram_buckets () =
  with_enabled true (fun () ->
      let h = Telemetry.histogram "test.hist_buckets" in
      Telemetry.reset ();
      List.iter (Telemetry.observe h) [ 0; 1; 2; 3; 4; 7; 8; 100 ];
      match Telemetry.find (Telemetry.snapshot ()) "test.hist_buckets" with
      | Some (Telemetry.Dist { counts; total; sum }) ->
        Alcotest.(check int) "total" 8 total;
        Alcotest.(check int) "sum" 125 sum;
        Alcotest.(check int) "bucket 0 (v=0)" 1 counts.(0);
        Alcotest.(check int) "bucket 1 (v=1)" 1 counts.(1);
        Alcotest.(check int) "bucket 2 (v=2,3)" 2 counts.(2);
        Alcotest.(check int) "bucket 3 (v=4..7)" 2 counts.(3);
        Alcotest.(check int) "bucket 4 (v=8)" 1 counts.(4);
        Alcotest.(check int) "bucket 7 (v=100)" 1 counts.(7);
        Alcotest.(check (pair int int)) "bounds of bucket 3" (4, 7)
          (Telemetry.bucket_bounds 3);
        Alcotest.(check (pair int int)) "bounds of bucket 0" (0, 0)
          (Telemetry.bucket_bounds 0)
      | _ -> Alcotest.fail "histogram missing from snapshot")

let test_snapshot_diff_reset () =
  with_enabled true (fun () ->
      let c = Telemetry.counter "test.diff_counter" in
      let h = Telemetry.histogram "test.diff_hist" in
      Telemetry.add c 5;
      Telemetry.observe h 2;
      let before = Telemetry.snapshot () in
      Telemetry.add c 3;
      Telemetry.observe h 4;
      Telemetry.observe h 4;
      let delta = Telemetry.diff (Telemetry.snapshot ()) before in
      Alcotest.(check bool) "counter delta" true
        (Telemetry.find delta "test.diff_counter" = Some (Telemetry.Count 3));
      (match Telemetry.find delta "test.diff_hist" with
      | Some (Telemetry.Dist { total = 2; sum = 8; counts }) ->
        Alcotest.(check int) "delta bucket 3" 2 counts.(3);
        Alcotest.(check int) "delta bucket 2" 0 counts.(2)
      | _ -> Alcotest.fail "histogram delta wrong");
      Telemetry.reset ();
      Alcotest.(check int) "reset zeroes counters" 0
        (count_of "test.diff_counter");
      Alcotest.(check int) "reset keeps registration" 0
        (Telemetry.counter_value (Telemetry.counter "test.diff_counter")))

let test_span () =
  with_enabled true (fun () ->
      let outer = Telemetry.span "test.span_outer" in
      let inner = Telemetry.span "test.span_inner" in
      Telemetry.reset ();
      let r =
        Telemetry.with_span outer (fun () ->
            Telemetry.with_span inner (fun () -> ignore (Sys.opaque_identity 1));
            "done")
      in
      Alcotest.(check string) "result" "done" r;
      (* a span records even when its body raises *)
      (try
         Telemetry.with_span inner (fun () -> failwith "boom")
       with Failure _ -> ());
      let snap = Telemetry.snapshot () in
      let timing name =
        match Telemetry.find snap name with
        | Some (Telemetry.Timing { calls; total_ns }) -> (calls, total_ns)
        | _ -> Alcotest.failf "no span %s" name
      in
      let o_calls, o_ns = timing "test.span_outer" in
      let i_calls, i_ns = timing "test.span_inner" in
      Alcotest.(check int) "outer calls" 1 o_calls;
      Alcotest.(check int) "inner calls (incl. raising body)" 2 i_calls;
      Alcotest.(check bool) "monotonic durations" true (o_ns >= 0 && i_ns >= 0))

let test_jsonl_golden () =
  let counts = Array.make 63 0 in
  counts.(1) <- 2;
  counts.(3) <- 1;
  let snap =
    [ ("a.count", Telemetry.Count 3);
      ("b.dist", Telemetry.Dist { counts; total = 3; sum = 7 });
      ("c.span", Telemetry.Timing { calls = 2; total_ns = 1500 }) ]
  in
  Alcotest.(check (list string)) "jsonl"
    [ {|{"metric":"a.count","kind":"counter","value":3}|};
      {|{"metric":"b.dist","kind":"histogram","total":3,"sum":7,"p50":1,"p90":7,"p99":7,"max":7,"buckets":[[1,1,2],[4,7,1]]}|};
      {|{"metric":"c.span","kind":"span","calls":2,"total_ns":1500}|} ]
    (Telemetry.jsonl snap)

let test_quantiles () =
  (* empty: everything is 0 *)
  let empty = Array.make 63 0 in
  Alcotest.(check (float 0.0)) "empty p50" 0.0
    (Telemetry.quantile ~counts:empty ~total:0 0.5);
  (* single-value buckets (0 and 1) are exact at every quantile *)
  let ones = Array.make 63 0 in
  ones.(1) <- 5;
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "all-ones q=%g" q)
        1.0
        (Telemetry.quantile ~counts:ones ~total:5 q))
    [ 0.01; 0.5; 0.99; 1.0 ];
  (* interpolation inside one wide bucket: 10 observations in [4, 7]
     spread linearly across the bucket's range *)
  let wide = Array.make 63 0 in
  wide.(3) <- 10;
  Alcotest.(check (float 1e-9)) "wide p50 interpolates" (4.0 +. (0.5 *. 3.0))
    (Telemetry.quantile ~counts:wide ~total:10 0.5);
  Alcotest.(check (float 1e-9)) "wide q=1 is the ceiling" 7.0
    (Telemetry.quantile ~counts:wide ~total:10 1.0);
  (* two buckets: rank selection crosses the boundary *)
  let two = Array.make 63 0 in
  two.(1) <- 2;
  two.(3) <- 1;
  Alcotest.(check (float 0.0)) "two-bucket p50 stays low" 1.0
    (Telemetry.quantile ~counts:two ~total:3 0.5);
  Alcotest.(check (float 0.0)) "two-bucket p99 reaches the top" 7.0
    (Telemetry.quantile ~counts:two ~total:3 0.99);
  (* out-of-range q clamps instead of raising *)
  Alcotest.(check (float 0.0)) "q clamps below" 1.0
    (Telemetry.quantile ~counts:two ~total:3 (-1.0));
  Alcotest.(check (float 0.0)) "q clamps above" 7.0
    (Telemetry.quantile ~counts:two ~total:3 2.0)

let test_hist_accessors () =
  with_enabled true (fun () ->
      let h = Telemetry.histogram "test.hist_accessors" in
      Telemetry.reset ();
      Alcotest.(check int) "empty total" 0 (Telemetry.hist_total h);
      Alcotest.(check int) "empty max" 0 (Telemetry.hist_max h);
      List.iter (Telemetry.observe h) [ 1; 1; 6; 100 ];
      Alcotest.(check int) "total" 4 (Telemetry.hist_total h);
      Alcotest.(check int) "sum" 108 (Telemetry.hist_sum h);
      (* 100 lives in bucket [64, 127]: the max accessor reports the
         bucket ceiling, an upper bound on the true maximum *)
      Alcotest.(check int) "max is the bucket ceiling" 127
        (Telemetry.hist_max h);
      Alcotest.(check (float 0.0)) "p50 exact in bucket 1" 1.0
        (Telemetry.hist_quantile h 0.5))

let test_prometheus_golden () =
  let counts = Array.make 63 0 in
  counts.(1) <- 2;
  counts.(3) <- 1;
  let snap =
    [ ("a.count", Telemetry.Count 3);
      ("b.dist", Telemetry.Dist { counts; total = 3; sum = 7 });
      ("c.span", Telemetry.Timing { calls = 2; total_ns = 1500 });
      ("g.level", Telemetry.Level 2.5) ]
  in
  Alcotest.(check (list string)) "prometheus"
    [ "# HELP spine_a_count a.count (counter)";
      "# TYPE spine_a_count counter";
      "spine_a_count 3";
      "# HELP spine_b_dist b.dist (log2-bucketed histogram)";
      "# TYPE spine_b_dist histogram";
      "spine_b_dist_bucket{le=\"1\"} 2";
      "spine_b_dist_bucket{le=\"7\"} 3";
      "spine_b_dist_bucket{le=\"+Inf\"} 3";
      "spine_b_dist_sum 7";
      "spine_b_dist_count 3";
      "# HELP spine_b_dist_quantile b.dist (interpolated quantiles)";
      "# TYPE spine_b_dist_quantile gauge";
      "spine_b_dist_quantile{q=\"0.5\"} 1";
      "spine_b_dist_quantile{q=\"0.9\"} 7";
      "spine_b_dist_quantile{q=\"0.99\"} 7";
      "spine_b_dist_quantile{q=\"1\"} 7";
      "# HELP spine_c_span_calls c.span (span call count)";
      "# TYPE spine_c_span_calls counter";
      "spine_c_span_calls 2";
      "# HELP spine_c_span_ns_total c.span (span total nanoseconds)";
      "# TYPE spine_c_span_ns_total counter";
      "spine_c_span_ns_total 1500";
      "# HELP spine_g_level g.level (gauge)";
      "# TYPE spine_g_level gauge";
      "spine_g_level 2.5" ]
    (Telemetry.prometheus snap)

let test_instrumented_build () =
  (* end-to-end determinism: constructing the paper's running example
     twice yields identical construction counters *)
  with_enabled true (fun () ->
      let build () =
        Telemetry.reset ();
        ignore (Spine.Index.of_string Bioseq.Alphabet.dna "aaccacaaca");
        List.filter
          (fun (name, _) -> String.length name >= 6 && String.sub name 0 6 = "build.")
          (Telemetry.snapshot ())
      in
      let first = build () and second = build () in
      Alcotest.(check bool) "deterministic" true (first = second);
      Alcotest.(check bool) "case1 seen" true
        (List.assoc "build.case1" first = Telemetry.Count 4);
      Alcotest.(check bool) "ribs created" true
        (List.assoc "build.ribs_created" first = Telemetry.Count 4);
      Alcotest.(check bool) "extribs created" true
        (List.assoc "build.extribs_created" first = Telemetry.Count 2))

let suite =
  [ Alcotest.test_case "counter" `Quick test_counter
  ; Alcotest.test_case "kind clash" `Quick test_kind_clash
  ; Alcotest.test_case "disabled no-op" `Quick test_disabled_noop
  ; Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets
  ; Alcotest.test_case "snapshot diff reset" `Quick test_snapshot_diff_reset
  ; Alcotest.test_case "span" `Quick test_span
  ; Alcotest.test_case "jsonl golden" `Quick test_jsonl_golden
  ; Alcotest.test_case "quantiles" `Quick test_quantiles
  ; Alcotest.test_case "hist accessors" `Quick test_hist_accessors
  ; Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden
  ; Alcotest.test_case "instrumented build" `Quick test_instrumented_build
  ]
