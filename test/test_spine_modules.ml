(* Tests for the modules layered on the core index: generalized
   multi-string indexing, serialization, the disk driver, the space
   model, and the suffix trie yardstick. *)

let dna = Bioseq.Alphabet.dna

(* --- Generalized --- *)

let test_generalized_basic () =
  let g = Spine.Generalized.create dna in
  let id0 = Spine.Generalized.add_string g ~name:"alpha" "acgtacgt" in
  let id1 = Spine.Generalized.add_string g ~name:"beta" "ttttacgt" in
  let id2 = Spine.Generalized.add_string g "cgcgcg" in
  Alcotest.(check (list int)) "ids" [ 0; 1; 2 ] [ id0; id1; id2 ];
  Alcotest.(check int) "count" 3 (Spine.Generalized.count g);
  Alcotest.(check string) "auto name" "s2" (Spine.Generalized.name g 2);
  Alcotest.(check int) "length" 8 (Spine.Generalized.string_length g 1);
  let codes s = Array.init (String.length s) (fun i -> Bioseq.Alphabet.encode dna s.[i]) in
  let hits = Spine.Generalized.occurrences g (codes "acgt") in
  Alcotest.(check (list (pair int int))) "acgt across strings"
    [ (0, 0); (0, 4); (1, 4) ]
    (List.map (fun { Spine.Generalized.string_id; pos } -> (string_id, pos)) hits);
  (* no match may span the separator: "gttt" straddles alpha|beta *)
  Alcotest.(check (list (pair int int))) "no cross-string match" []
    (List.map (fun { Spine.Generalized.string_id; pos } -> (string_id, pos))
       (Spine.Generalized.occurrences g (codes "gttt")))

let test_generalized_vs_individual () =
  let rng = Bioseq.Rng.create 61 in
  for _ = 1 to 10 do
    let strings =
      List.init (1 + Bioseq.Rng.int rng 4) (fun _ ->
          Oracles.random_string rng 4 (10 + Bioseq.Rng.int rng 60)
          |> String.map (fun c -> "acgt".[Char.code c - Char.code 'a']))
    in
    let g = Spine.Generalized.create dna in
    List.iter (fun s -> ignore (Spine.Generalized.add_string g s)) strings;
    for _ = 1 to 20 do
      let pat_src = List.nth strings (Bioseq.Rng.int rng (List.length strings)) in
      let len = 1 + Bioseq.Rng.int rng (min 5 (String.length pat_src)) in
      let p = Bioseq.Rng.int rng (String.length pat_src - len + 1) in
      let pat = String.sub pat_src p len in
      let codes =
        Array.init len (fun i -> Bioseq.Alphabet.encode dna pat.[i])
      in
      let expected =
        List.concat (List.mapi
          (fun id s ->
            List.map (fun pos -> (id, pos)) (Oracles.occurrences s pat))
          strings)
        |> List.sort compare
      in
      let got =
        Spine.Generalized.occurrences g codes
        |> List.map (fun { Spine.Generalized.string_id; pos } -> (string_id, pos))
        |> List.sort compare
      in
      Alcotest.(check (list (pair int int))) "generalized = per-string" expected got
    done
  done

let test_generalized_locate_errors () =
  let g = Spine.Generalized.create dna in
  ignore (Spine.Generalized.add_string g "acgt");
  ignore (Spine.Generalized.add_string g "tt");
  (* global layout: a c g t # t t -> position 4 is the separator *)
  Alcotest.(check (pair int int)) "locate start of second" (1, 0)
    (let h = Spine.Generalized.locate g 5 in (h.Spine.Generalized.string_id, h.Spine.Generalized.pos));
  (match Spine.Generalized.locate g 4 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "separator position must be rejected")

(* --- Serialize --- *)

let test_serialize_roundtrip () =
  let rng = Bioseq.Rng.create 62 in
  List.iter
    (fun alphabet ->
      for _ = 1 to 5 do
        let n = 50 + Bioseq.Rng.int rng 500 in
        let seq = Bioseq.Synthetic.genomic alphabet (Bioseq.Rng.split rng) n in
        let idx = Spine.Index.of_seq seq in
        let loaded = Spine.Serialize.of_bytes (Spine.Serialize.to_bytes idx) in
        Alcotest.(check int) "length" (Spine.Index.length idx)
          (Spine.Index.length loaded);
        (* structural identity: links, ribs, extribs *)
        for node = 1 to Spine.Index.length idx do
          Alcotest.(check (pair int int)) "link"
            (Spine.Index.link idx node) (Spine.Index.link loaded node)
        done;
        for node = 0 to Spine.Index.length idx do
          for code = 0 to Bioseq.Alphabet.size alphabet - 1 do
            Alcotest.(check (option (pair int int))) "rib"
              (Spine.Index.rib idx node code) (Spine.Index.rib loaded node code)
          done;
          Alcotest.(check (option (triple int int int))) "extrib"
            (Spine.Index.extrib idx node) (Spine.Index.extrib loaded node)
        done;
        (* behavioural identity *)
        let q = Bioseq.Synthetic.mutate ~rate:0.2 (Bioseq.Rng.split rng) seq in
        let ms1, _ = Spine.Index.matching_statistics idx q in
        let ms2, _ = Spine.Index.matching_statistics loaded q in
        Alcotest.(check (array int)) "ms" ms1 ms2
      done)
    [ dna; Bioseq.Alphabet.protein ]

let test_serialize_bad_input () =
  (match Spine.Serialize.of_bytes (Bytes.of_string "NOPE.....") with
   | exception Spine_error.Error (Spine_error.Corrupt _) -> ()
   | _ -> Alcotest.fail "bad magic accepted");
  let idx = Spine.Index.of_string dna "acgt" in
  let b = Spine.Serialize.to_bytes idx in
  let truncated = Bytes.sub b 0 (Bytes.length b - 3) in
  (match Spine.Serialize.of_bytes truncated with
   | exception Spine_error.Error (Spine_error.Corrupt _) -> ()
   | _ -> Alcotest.fail "truncated input accepted")

let test_serialize_file () =
  let idx = Spine.Index.of_string dna "acgtacgtgacgt" in
  let tmp = Filename.temp_file "spine_test" ".idx" in
  Spine.Serialize.to_file tmp idx;
  let loaded = Spine.Serialize.of_file tmp in
  Sys.remove tmp;
  Alcotest.(check bool) "query parity" true
    (Spine.Index.contains loaded "gtgac")

(* --- Disk --- *)

let test_disk_build_and_search () =
  let rng = Bioseq.Rng.create 63 in
  let seq = Bioseq.Synthetic.genomic dna rng 20_000 in
  let d = Spine.Disk.build seq in
  (* the disk index answers exactly like an in-memory one *)
  let plain = Spine.Compact.of_seq seq in
  for _ = 1 to 30 do
    let len = 3 + Bioseq.Rng.int rng 8 in
    let pos = Bioseq.Rng.int rng (20_000 - len) in
    let pat = Array.init len (fun k -> Bioseq.Packed_seq.get seq (pos + k)) in
    Alcotest.(check (list int)) "disk = memory"
      (Spine.Compact.occurrences plain pat)
      (Spine.Compact.occurrences d.Spine.Disk.index pat)
  done;
  (* construction generated real device traffic *)
  let s = Pagestore.Device.stats d.Spine.Disk.device in
  if s.Pagestore.Device.writes = 0 then Alcotest.fail "no device writes";
  Alcotest.(check bool) "positive simulated time" true
    (Spine.Disk.simulated_seconds d > 0.0)

let test_disk_pinning_config () =
  let rng = Bioseq.Rng.create 64 in
  let seq = Bioseq.Synthetic.genomic dna rng 20_000 in
  let config =
    { Spine.Disk.default_config with
      Spine.Disk.frames = 8; pin_top_lt_pages = 4 }
  in
  let d = Spine.Disk.build ~config seq in
  (* still correct under a tiny, partially pinned pool *)
  let pat = Array.init 10 (fun k -> Bioseq.Packed_seq.get seq (5_000 + k)) in
  Alcotest.(check bool) "found" true
    (Spine.Compact.occurrences d.Spine.Disk.index pat <> [])

(* --- Space --- *)

let test_space_table2 () =
  let total = Spine.Space.naive_node_bytes dna in
  Alcotest.(check (float 0.001)) "Table 2 total" 48.25 total;
  Alcotest.(check int) "field count" 9
    (List.length (Spine.Space.naive_node_fields dna))

let test_space_measured () =
  (* the paper reports "up to 12 bytes per indexed character"; our
     measured figures are 12.2-13.2 across the synthetic corpus — the
     ~4% overhead is the extrib anchor side table (the correctness
     correction of DESIGN.md 1.1) plus the synthetic strings' slightly
     higher rib density. Anything at or above the suffix tree's 17
     would falsify the paper's claim; we bound well below that. *)
  let seq = Bioseq.Corpus.load ~scale:0.1 Bioseq.Corpus.eco in
  let c = Spine.Compact.of_seq seq in
  let b = Spine.Space.measure c in
  if b.Spine.Space.bytes_per_char >= 13.5 then
    Alcotest.failf "bytes/char too high: %.2f" b.Spine.Space.bytes_per_char;
  if b.Spine.Space.bytes_per_char <= 8.0 then
    Alcotest.failf "bytes/char suspiciously low: %.2f" b.Spine.Space.bytes_per_char;
  Alcotest.(check int) "components sum" b.Spine.Space.total_bytes
    (b.Spine.Space.lt_bytes + b.Spine.Space.rt_bytes
     + b.Spine.Space.overflow_bytes + b.Spine.Space.string_bytes)

(* --- Suffix trie yardstick --- *)

let test_trie_counts () =
  let trie = Suffix_trie.of_string dna "acgtacgt" in
  (* nodes = distinct substrings + 1 *)
  Alcotest.(check int) "distinct substrings" (Suffix_trie.node_count trie - 1)
    (Suffix_trie.distinct_substrings trie);
  Alcotest.(check bool) "contains" true (Suffix_trie.contains trie "gtac");
  Alcotest.(check bool) "absent" false (Suffix_trie.contains trie "gg");
  Alcotest.(check bool) "foreign chars" false (Suffix_trie.contains trie "xyz");
  (* SPINE's node count beats the trie's by construction *)
  let spine_idx = Spine.Index.of_string dna "acgtacgt" in
  Alcotest.(check int) "spine nodes" 9 (Spine.Index.node_count spine_idx);
  Alcotest.(check bool) "trie much larger" true
    (Suffix_trie.node_count trie > 9)

let test_trie_unary () =
  (* in "aaaa" every internal node is unary *)
  let trie = Suffix_trie.of_string dna "aaaa" in
  Alcotest.(check int) "nodes" 5 (Suffix_trie.node_count trie);
  Alcotest.(check int) "unary nodes" 4 (Suffix_trie.count_unary trie)

let suite =
  [ Alcotest.test_case "generalized: basics" `Quick test_generalized_basic
  ; Alcotest.test_case "generalized: vs individual indexes" `Quick
      test_generalized_vs_individual
  ; Alcotest.test_case "generalized: locate errors" `Quick
      test_generalized_locate_errors
  ; Alcotest.test_case "serialize: structural roundtrip" `Quick
      test_serialize_roundtrip
  ; Alcotest.test_case "serialize: bad input rejected" `Quick
      test_serialize_bad_input
  ; Alcotest.test_case "serialize: file roundtrip" `Quick test_serialize_file
  ; Alcotest.test_case "disk: build and search parity" `Quick
      test_disk_build_and_search
  ; Alcotest.test_case "disk: pinned tiny pool" `Quick test_disk_pinning_config
  ; Alcotest.test_case "space: Table 2 = 48.25" `Quick test_space_table2
  ; Alcotest.test_case "space: measured < 12 B/char" `Quick test_space_measured
  ; Alcotest.test_case "trie: counts and membership" `Quick test_trie_counts
  ; Alcotest.test_case "trie: unary nodes" `Quick test_trie_unary
  ]
