(* The file-backed index: parity with the in-memory implementations,
   durability across close/open cycles, and behaviour under tiny buffer
   pools (true disk residency). *)

let dna = Bioseq.Alphabet.dna

let with_tmp f =
  let path = Filename.temp_file "spine_persistent" ".db" in
  let result = try f path with e -> (try Sys.remove path with _ -> ()); raise e in
  (try Sys.remove path with _ -> ());
  result

let test_parity_with_memory () =
  with_tmp (fun path ->
      let rng = Bioseq.Rng.create 201 in
      let seq = Bioseq.Synthetic.genomic dna rng 15_000 in
      let p = Spine.Persistent.create ~path dna in
      Spine.Persistent.append_seq p seq;
      let m = Spine.Index.of_seq seq in
      Alcotest.(check int) "length" (Spine.Index.length m)
        (Spine.Persistent.length p);
      for _ = 1 to 50 do
        let len = 2 + Bioseq.Rng.int rng 10 in
        let pos = Bioseq.Rng.int rng (15_000 - len) in
        let pat = Array.init len (fun k -> Bioseq.Packed_seq.get seq (pos + k)) in
        Alcotest.(check (list int)) "occurrences parity"
          (Spine.Index.occurrences m pat) (Spine.Persistent.occurrences p pat)
      done;
      Alcotest.(check (array int)) "rib distribution parity"
        (Spine.Index.rib_distribution m) (Spine.Persistent.rib_distribution p);
      let q = Bioseq.Synthetic.mutate ~rate:0.15 rng seq in
      let ms_m, _ = Spine.Index.matching_statistics m q in
      let ms_p, _ = Spine.Persistent.matching_statistics p q in
      Alcotest.(check (array int)) "ms parity" ms_m ms_p;
      Spine.Persistent.close p)

let test_close_reopen () =
  with_tmp (fun path ->
      let rng = Bioseq.Rng.create 202 in
      let seq = Bioseq.Synthetic.genomic dna rng 8_000 in
      let p = Spine.Persistent.create ~path dna in
      Spine.Persistent.append_seq p seq;
      let pat = Array.init 10 (fun k -> Bioseq.Packed_seq.get seq (3_000 + k)) in
      let before = Spine.Persistent.occurrences p pat in
      let bpc_before = Spine.Persistent.bytes_per_char p in
      Spine.Persistent.close p;
      (* everything must come back from the file alone *)
      let p2 = Spine.Persistent.open_ ~path () in
      Alcotest.(check int) "length after reopen" 8_000
        (Spine.Persistent.length p2);
      Alcotest.(check (list int)) "occurrences after reopen" before
        (Spine.Persistent.occurrences p2 pat);
      Alcotest.(check (float 0.01)) "space accounting after reopen"
        bpc_before (Spine.Persistent.bytes_per_char p2);
      (* and the index must still be extensible online *)
      Spine.Persistent.append_string p2 "acgtacgt";
      Alcotest.(check int) "extended" 8_008 (Spine.Persistent.length p2);
      Alcotest.(check bool) "new content queryable" true
        (Spine.Persistent.contains p2 "acgtacgt");
      Spine.Persistent.close p2)

let test_reopen_extend_reopen () =
  with_tmp (fun path ->
      let p = Spine.Persistent.create ~path dna in
      Spine.Persistent.append_string p "aaccacaaca";
      Spine.Persistent.close p;
      let p2 = Spine.Persistent.open_ ~path () in
      Spine.Persistent.append_string p2 "aaccacaaca";
      Spine.Persistent.close p2;
      let p3 = Spine.Persistent.open_ ~path () in
      Alcotest.(check int) "two appends" 20 (Spine.Persistent.length p3);
      (* the doubled string has the pattern across the seam *)
      Alcotest.(check bool) "seam substring" true
        (Spine.Persistent.contains p3 "aacaaacc");
      Alcotest.(check bool) "paper false positive still rejected" false
        (Spine.Persistent.contains p3 "accaa");
      Spine.Persistent.close p3)

let test_tiny_pool () =
  (* a pool of 8 pages = 32 kB holding an index several times larger:
     genuine paging, same answers *)
  with_tmp (fun path ->
      let rng = Bioseq.Rng.create 203 in
      let seq = Bioseq.Synthetic.genomic dna rng 30_000 in
      let p = Spine.Persistent.create ~frames:8 ~path dna in
      Spine.Persistent.append_seq p seq;
      let stats = Pagestore.Buffer_pool.stats (Spine.Persistent.pool p) in
      if stats.Pagestore.Buffer_pool.evictions = 0 then
        Alcotest.fail "expected evictions under a tiny pool";
      let m = Spine.Index.of_seq seq in
      for _ = 1 to 20 do
        let len = 3 + Bioseq.Rng.int rng 8 in
        let pos = Bioseq.Rng.int rng (30_000 - len) in
        let pat = Array.init len (fun k -> Bioseq.Packed_seq.get seq (pos + k)) in
        Alcotest.(check (list int)) "paged occurrences"
          (Spine.Index.occurrences m pat) (Spine.Persistent.occurrences p pat)
      done;
      Spine.Persistent.close p)

let test_errors () =
  (match Spine.Persistent.open_ ~path:"/nonexistent/nope.db" () with
   | exception Failure _ -> ()
   | _ -> Alcotest.fail "open of missing file must fail");
  with_tmp (fun path ->
      let p = Spine.Persistent.create ~path dna in
      Spine.Persistent.append_string p "acgt";
      Spine.Persistent.close p;
      (match Spine.Persistent.length p with
       | exception Invalid_argument _ -> ()
       | _ -> Alcotest.fail "use after close must be rejected"));
  (* a file without metadata is rejected *)
  with_tmp (fun path ->
      let oc = open_out_bin path in
      output_string oc (String.make 8192 'x');
      close_out oc;
      match Spine.Persistent.open_ ~path () with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "garbage file accepted")

(* A valid index whose metadata blob is then damaged: every corruption
   mode must surface as the documented [Failure], never a crash or a
   silently wrong index. *)
let test_corrupt_metadata () =
  let patch_length path v =
    (* the blob header is a 4-byte LE total length at file offset 0 *)
    let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
    let b = Bytes.create 4 in
    Bytes.set_int32_le b 0 (Int32.of_int v);
    ignore (Unix.write fd b 0 4);
    Unix.close fd
  in
  let expect_failure what path =
    match Spine.Persistent.open_ ~path () with
    | exception Failure _ -> ()
    | p ->
      Spine.Persistent.close p;
      Alcotest.failf "%s accepted" what
  in
  let fresh f =
    with_tmp (fun path ->
        let p = Spine.Persistent.create ~path dna in
        Spine.Persistent.append_string p "acgtacgtacgt";
        Spine.Persistent.close p;
        f path)
  in
  (* control: untouched file reopens *)
  fresh (fun path ->
      let p = Spine.Persistent.open_ ~path () in
      Alcotest.(check int) "control reopens" 12 (Spine.Persistent.length p);
      Spine.Persistent.close p);
  (* blob cut short: parsing runs off the end *)
  fresh (fun path ->
      patch_length path 9;
      expect_failure "undersized metadata blob" path);
  (* zero length: never written *)
  fresh (fun path ->
      patch_length path 0;
      expect_failure "zero-length metadata blob" path);
  (* absurd length: rejected before allocation *)
  fresh (fun path ->
      patch_length path 0x7FFFFFFF;
      expect_failure "oversized metadata blob" path);
  (* physical truncation: the device zero-fills past EOF *)
  fresh (fun path ->
      Unix.truncate path 6;
      expect_failure "physically truncated file" path)

let suite =
  [ Alcotest.test_case "parity with the in-memory index" `Quick
      test_parity_with_memory
  ; Alcotest.test_case "close / reopen durability" `Quick test_close_reopen
  ; Alcotest.test_case "reopen, extend online, reopen again" `Quick
      test_reopen_extend_reopen
  ; Alcotest.test_case "tiny pool pages for real" `Quick test_tiny_pool
  ; Alcotest.test_case "error handling" `Quick test_errors
  ; Alcotest.test_case "corrupt metadata rejected" `Quick
      test_corrupt_metadata
  ]
