(* The file-backed index: parity with the in-memory implementations,
   durability across close/open cycles, and behaviour under tiny buffer
   pools (true disk residency). *)

let dna = Bioseq.Alphabet.dna

let with_tmp f =
  let path = Filename.temp_file "spine_persistent" ".db" in
  let result = try f path with e -> (try Sys.remove path with _ -> ()); raise e in
  (try Sys.remove path with _ -> ());
  result

let test_parity_with_memory () =
  with_tmp (fun path ->
      let rng = Bioseq.Rng.create 201 in
      let seq = Bioseq.Synthetic.genomic dna rng 15_000 in
      let p = Spine.Persistent.create ~path dna in
      Spine.Persistent.append_seq p seq;
      let m = Spine.Index.of_seq seq in
      Alcotest.(check int) "length" (Spine.Index.length m)
        (Spine.Persistent.length p);
      for _ = 1 to 50 do
        let len = 2 + Bioseq.Rng.int rng 10 in
        let pos = Bioseq.Rng.int rng (15_000 - len) in
        let pat = Array.init len (fun k -> Bioseq.Packed_seq.get seq (pos + k)) in
        Alcotest.(check (list int)) "occurrences parity"
          (Spine.Index.occurrences m pat) (Spine.Persistent.occurrences p pat)
      done;
      Alcotest.(check (array int)) "rib distribution parity"
        (Spine.Index.rib_distribution m) (Spine.Persistent.rib_distribution p);
      let q = Bioseq.Synthetic.mutate ~rate:0.15 rng seq in
      let ms_m, _ = Spine.Index.matching_statistics m q in
      let ms_p, _ = Spine.Persistent.matching_statistics p q in
      Alcotest.(check (array int)) "ms parity" ms_m ms_p;
      Spine.Persistent.close p)

let test_close_reopen () =
  with_tmp (fun path ->
      let rng = Bioseq.Rng.create 202 in
      let seq = Bioseq.Synthetic.genomic dna rng 8_000 in
      let p = Spine.Persistent.create ~path dna in
      Spine.Persistent.append_seq p seq;
      let pat = Array.init 10 (fun k -> Bioseq.Packed_seq.get seq (3_000 + k)) in
      let before = Spine.Persistent.occurrences p pat in
      let bpc_before = Spine.Persistent.bytes_per_char p in
      Spine.Persistent.close p;
      (* everything must come back from the file alone *)
      let p2 = Spine.Persistent.open_ ~path () in
      Alcotest.(check int) "length after reopen" 8_000
        (Spine.Persistent.length p2);
      Alcotest.(check (list int)) "occurrences after reopen" before
        (Spine.Persistent.occurrences p2 pat);
      Alcotest.(check (float 0.01)) "space accounting after reopen"
        bpc_before (Spine.Persistent.bytes_per_char p2);
      (* and the index must still be extensible online *)
      Spine.Persistent.append_string p2 "acgtacgt";
      Alcotest.(check int) "extended" 8_008 (Spine.Persistent.length p2);
      Alcotest.(check bool) "new content queryable" true
        (Spine.Persistent.contains p2 "acgtacgt");
      Spine.Persistent.close p2)

let test_reopen_extend_reopen () =
  with_tmp (fun path ->
      let p = Spine.Persistent.create ~path dna in
      Spine.Persistent.append_string p "aaccacaaca";
      Spine.Persistent.close p;
      let p2 = Spine.Persistent.open_ ~path () in
      Spine.Persistent.append_string p2 "aaccacaaca";
      Spine.Persistent.close p2;
      let p3 = Spine.Persistent.open_ ~path () in
      Alcotest.(check int) "two appends" 20 (Spine.Persistent.length p3);
      (* the doubled string has the pattern across the seam *)
      Alcotest.(check bool) "seam substring" true
        (Spine.Persistent.contains p3 "aacaaacc");
      Alcotest.(check bool) "paper false positive still rejected" false
        (Spine.Persistent.contains p3 "accaa");
      Spine.Persistent.close p3)

let test_tiny_pool () =
  (* a pool of 8 pages = 32 kB holding an index several times larger:
     genuine paging, same answers *)
  with_tmp (fun path ->
      let rng = Bioseq.Rng.create 203 in
      let seq = Bioseq.Synthetic.genomic dna rng 30_000 in
      let p = Spine.Persistent.create ~frames:8 ~path dna in
      Spine.Persistent.append_seq p seq;
      let stats = Pagestore.Buffer_pool.stats (Spine.Persistent.pool p) in
      if stats.Pagestore.Buffer_pool.evictions = 0 then
        Alcotest.fail "expected evictions under a tiny pool";
      let m = Spine.Index.of_seq seq in
      for _ = 1 to 20 do
        let len = 3 + Bioseq.Rng.int rng 8 in
        let pos = Bioseq.Rng.int rng (30_000 - len) in
        let pat = Array.init len (fun k -> Bioseq.Packed_seq.get seq (pos + k)) in
        Alcotest.(check (list int)) "paged occurrences"
          (Spine.Index.occurrences m pat) (Spine.Persistent.occurrences p pat)
      done;
      Spine.Persistent.close p)

let test_errors () =
  (match Spine.Persistent.open_ ~path:"/nonexistent/nope.db" () with
   | exception Spine_error.Error (Spine_error.Io_failed _) -> ()
   | exception e ->
     Alcotest.failf "missing file: wrong exception %s" (Printexc.to_string e)
   | _ -> Alcotest.fail "open of missing file must fail");
  with_tmp (fun path ->
      let p = Spine.Persistent.create ~path dna in
      Spine.Persistent.append_string p "acgt";
      Spine.Persistent.close p;
      (match Spine.Persistent.length p with
       | exception Spine_error.Error (Spine_error.Closed _) -> ()
       | _ -> Alcotest.fail "use after close must be rejected"));
  (* a file without metadata is rejected *)
  with_tmp (fun path ->
      let oc = open_out_bin path in
      output_string oc (String.make 8192 'x');
      close_out oc;
      match Spine.Persistent.open_ ~path () with
      | exception Spine_error.Error (Spine_error.Corrupt _) -> ()
      | _ -> Alcotest.fail "garbage file accepted")

(* Physical geometry of the file: every logical page carries a 16-byte
   checksum trailer, and metadata lives in two 4096-page shadow slots. *)
let phys_page = 4096 + 16
let slot_off slot = slot * 4096 * phys_page

let flip_byte path off =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  ignore (Unix.LargeFile.lseek fd (Int64.of_int off) Unix.SEEK_SET);
  let b = Bytes.create 1 in
  let got = Unix.read fd b 0 1 in
  let v = if got = 1 then Char.code (Bytes.get b 0) else 0 in
  Bytes.set b 0 (Char.chr (v lxor 0x41));
  ignore (Unix.LargeFile.lseek fd (Int64.of_int off) Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd

(* A valid index whose on-disk image is then damaged: every corruption
   mode must surface as a typed [Spine_error.Error], never a crash or a
   silently wrong index. *)
let test_corrupt_metadata () =
  let expect_corrupt what path =
    match Spine.Persistent.open_ ~path () with
    | exception Spine_error.Error (Spine_error.Corrupt _) -> ()
    | exception e ->
      Alcotest.failf "%s: wrong exception %s" what (Printexc.to_string e)
    | p ->
      Spine.Persistent.close p;
      Alcotest.failf "%s accepted" what
  in
  let fresh f =
    with_tmp (fun path ->
        let p = Spine.Persistent.create ~path dna in
        Spine.Persistent.append_string p "acgtacgtacgt";
        Spine.Persistent.close p;
        (* close committed generation 1, which lives in shadow slot B *)
        f path)
  in
  (* control: untouched file reopens *)
  fresh (fun path ->
      let p = Spine.Persistent.open_ ~path () in
      Alcotest.(check int) "control reopens" 12 (Spine.Persistent.length p);
      Alcotest.(check int) "generation recovered" 1
        (Spine.Persistent.generation p);
      Spine.Persistent.close p);
  (* the only committed metadata slot damaged: nothing to recover *)
  fresh (fun path ->
      flip_byte path (slot_off 1);
      expect_corrupt "index with damaged sole metadata slot" path);
  (* physical truncation: the device zero-fills past EOF *)
  fresh (fun path ->
      Unix.truncate path 6;
      expect_corrupt "physically truncated file" path);
  (* a damaged sequence page is caught during recovery's mirror rebuild *)
  fresh (fun path ->
      let seq_base = 16384 + (5 * 262144) in
      flip_byte path ((seq_base * phys_page) + 100);
      expect_corrupt "index with bit-flipped sequence page" path);
  (* a damaged Link-Table page is caught at first query, not silently
     decoded *)
  fresh (fun path ->
      flip_byte path ((16384 * phys_page) + 100);
      let p = Spine.Persistent.open_ ~path () in
      (match Spine.Persistent.occurrences p [| 0; 1; 2; 3 |] with
       | exception Spine_error.Error (Spine_error.Corrupt _) -> ()
       | occs ->
         Alcotest.failf "query over flipped LT page returned %d hits"
           (List.length occs));
      Spine.Persistent.close p)

(* Shadow-slot fallback: if the newest metadata generation is torn, the
   previous one is recovered instead of failing. *)
let test_shadow_fallback () =
  with_tmp (fun path ->
      let p = Spine.Persistent.create ~path dna in
      Spine.Persistent.append_string p "acgtacgtacgt";
      Spine.Persistent.flush p;  (* generation 1 -> slot B *)
      Spine.Persistent.close p;  (* generation 2 -> slot A *)
      flip_byte path (slot_off 0);
      let p2 = Spine.Persistent.open_ ~path () in
      Alcotest.(check int) "fell back one generation" 1
        (Spine.Persistent.generation p2);
      Alcotest.(check int) "previous generation length" 12
        (Spine.Persistent.length p2);
      Alcotest.(check bool) "previous generation queryable" true
        (Spine.Persistent.contains p2 "gtacgt");
      Spine.Persistent.close p2)

let suite =
  [ Alcotest.test_case "parity with the in-memory index" `Quick
      test_parity_with_memory
  ; Alcotest.test_case "close / reopen durability" `Quick test_close_reopen
  ; Alcotest.test_case "reopen, extend online, reopen again" `Quick
      test_reopen_extend_reopen
  ; Alcotest.test_case "tiny pool pages for real" `Quick test_tiny_pool
  ; Alcotest.test_case "error handling" `Quick test_errors
  ; Alcotest.test_case "corrupt metadata rejected" `Quick
      test_corrupt_metadata
  ; Alcotest.test_case "shadow-slot fallback recovers previous generation"
      `Quick test_shadow_fallback
  ]
