(* Tests for the sequence substrate: alphabets, packed sequences,
   FASTA, deterministic RNG, and the synthetic generators. *)

let test_alphabet_roundtrip () =
  List.iter
    (fun a ->
      for code = 0 to Bioseq.Alphabet.size a - 1 do
        let c = Bioseq.Alphabet.decode a code in
        Alcotest.(check int)
          (Printf.sprintf "%s roundtrip %d" (Bioseq.Alphabet.name a) code)
          code (Bioseq.Alphabet.encode a c)
      done)
    [ Bioseq.Alphabet.dna; Bioseq.Alphabet.protein; Bioseq.Alphabet.byte ]

let test_alphabet_bits () =
  (* 4 symbols + separator needs 3 bits; the paper's 2-bit figure is the
     payload width used in space accounting *)
  Alcotest.(check int) "dna bits" 3 (Bioseq.Alphabet.bits Bioseq.Alphabet.dna);
  Alcotest.(check int) "dna payload bits" 2
    (Bioseq.Alphabet.payload_bits Bioseq.Alphabet.dna);
  Alcotest.(check int) "protein bits" 5
    (Bioseq.Alphabet.bits Bioseq.Alphabet.protein);
  Alcotest.(check int) "protein payload bits" 5
    (Bioseq.Alphabet.payload_bits Bioseq.Alphabet.protein);
  Alcotest.(check int) "separator code" 4
    (Bioseq.Alphabet.separator Bioseq.Alphabet.dna)

let test_alphabet_errors () =
  Alcotest.check_raises "duplicate symbols"
    (Invalid_argument "Alphabet.make: duplicate symbol") (fun () ->
      ignore (Bioseq.Alphabet.make "aa"));
  Alcotest.check_raises "empty"
    (Invalid_argument "Alphabet.make: empty alphabet") (fun () ->
      ignore (Bioseq.Alphabet.make ""));
  (match Bioseq.Alphabet.encode_opt Bioseq.Alphabet.dna 'z' with
   | None -> ()
   | Some _ -> Alcotest.fail "z should not encode")

let test_packed_roundtrip () =
  let rng = Bioseq.Rng.create 3 in
  List.iter
    (fun a ->
      for _ = 1 to 20 do
        let n = Bioseq.Rng.int rng 200 in
        let codes =
          Array.init n (fun _ -> Bioseq.Rng.int rng (Bioseq.Alphabet.size a))
        in
        let seq = Bioseq.Packed_seq.of_codes a codes in
        Alcotest.(check int) "length" n (Bioseq.Packed_seq.length seq);
        Array.iteri
          (fun i c -> Alcotest.(check int) "get" c (Bioseq.Packed_seq.get seq i))
          codes;
        (* string roundtrip *)
        let s = Bioseq.Packed_seq.to_string seq in
        Alcotest.(check bool) "string roundtrip" true
          (Bioseq.Packed_seq.equal seq (Bioseq.Packed_seq.of_string a s));
        (* word-packed roundtrip: the serialized form is the raw words *)
        let packed = Bioseq.Packed_seq.packed_bits seq in
        Alcotest.(check int) "packed length" (Bytes.length packed)
          (Bioseq.Packed_seq.packed_byte_length seq);
        let back =
          Bioseq.Packed_seq.of_packed_bits a ~len:n
            ~width:(Bioseq.Packed_seq.width seq) packed
        in
        Alcotest.(check bool) "bit roundtrip" true
          (Bioseq.Packed_seq.equal seq back)
      done)
    [ Bioseq.Alphabet.dna; Bioseq.Alphabet.protein ]

let test_packed_growth () =
  let seq = Bioseq.Packed_seq.create ~capacity:1 Bioseq.Alphabet.dna in
  for i = 0 to 9999 do
    Bioseq.Packed_seq.append seq (i mod 4)
  done;
  Alcotest.(check int) "length after growth" 10000 (Bioseq.Packed_seq.length seq);
  Alcotest.(check int) "spot check" 3 (Bioseq.Packed_seq.get seq 4003)

let test_packed_bounds () =
  (* the checked boundary: safe [get] raises on out-of-range instead of
     reading the raw word buffer *)
  let seq = Bioseq.Packed_seq.of_string Bioseq.Alphabet.dna "acgt" in
  List.iter
    (fun i ->
      match Bioseq.Packed_seq.get seq i with
      | exception Invalid_argument _ -> ()
      | v -> Alcotest.failf "get %d should raise, got %d" i v)
    [ -1; 4; 100; max_int ];
  let empty = Bioseq.Packed_seq.create Bioseq.Alphabet.dna in
  (match Bioseq.Packed_seq.get empty 0 with
   | exception Invalid_argument _ -> ()
   | v -> Alcotest.failf "get on empty should raise, got %d" v)

let test_packed_widening () =
  let a = Bioseq.Alphabet.dna in
  let seq = Bioseq.Packed_seq.create a in
  for i = 0 to 99 do Bioseq.Packed_seq.append seq (i mod 4) done;
  Alcotest.(check int) "dna starts 2-bit" 2 (Bioseq.Packed_seq.width seq);
  Alcotest.(check int) "31 codes per word" 31
    (Bioseq.Packed_seq.codes_per_word seq);
  Bioseq.Packed_seq.append seq (Bioseq.Alphabet.separator a);
  Alcotest.(check int) "separator widens to 4-bit" 4
    (Bioseq.Packed_seq.width seq);
  for i = 0 to 99 do
    Alcotest.(check int) "repack preserves codes" (i mod 4)
      (Bioseq.Packed_seq.get seq i)
  done;
  Alcotest.(check int) "separator stored" (Bioseq.Alphabet.separator a)
    (Bioseq.Packed_seq.get seq 100);
  (* cross-width comparison falls back to scalar steps and still
     agrees: seq starts with the same 8 codes as the narrow row *)
  let narrow = Bioseq.Packed_seq.of_string a "acgtacgt" in
  let m, words, scalars =
    Bioseq.Packed_seq.mismatch narrow ~apos:0 seq ~bpos:0 ~len:8
  in
  Alcotest.(check int) "cross-width match" 8 m;
  Alcotest.(check int) "cross-width word steps" 0 words;
  Alcotest.(check int) "cross-width scalar steps" 8 scalars

let test_packed_mismatch_oracle () =
  (* differential property: word-at-a-time [mismatch] against a
     per-code oracle, over random spans at every word offset *)
  let a = Bioseq.Alphabet.dna in
  let rng = Bioseq.Rng.create 11 in
  for _ = 1 to 400 do
    let n = 2 + Bioseq.Rng.int rng 200 in
    let s = Bioseq.Synthetic.uniform a (Bioseq.Rng.split rng) n in
    let codes = Array.init n (fun i -> Bioseq.Packed_seq.get s i) in
    let flip = Bioseq.Rng.int rng n in
    codes.(flip) <- (codes.(flip) + 1 + Bioseq.Rng.int rng 3) mod 4;
    let t = Bioseq.Packed_seq.of_codes a codes in
    let apos = Bioseq.Rng.int rng n in
    let bpos = Bioseq.Rng.int rng n in
    let len = Bioseq.Rng.int rng (min (n - apos) (n - bpos) + 1) in
    let m, words, scalars = Bioseq.Packed_seq.mismatch s ~apos t ~bpos ~len in
    let oracle = ref 0 in
    while
      !oracle < len
      && Bioseq.Packed_seq.get s (apos + !oracle)
         = Bioseq.Packed_seq.get t (bpos + !oracle)
    do
      incr oracle
    done;
    Alcotest.(check int) "mismatch vs oracle" !oracle m;
    (* step accounting covers every matched position *)
    let cpw = Bioseq.Packed_seq.codes_per_word s in
    Alcotest.(check bool) "steps cover the match" true
      ((words * cpw) + scalars >= m)
  done

let test_packed_pattern_oracle () =
  (* every pattern length 1..65 (straddling word boundaries both in the
     pattern and at every text offset) extends exactly as far as the
     per-code oracle says *)
  let a = Bioseq.Alphabet.dna in
  let rng = Bioseq.Rng.create 12 in
  let n = 400 in
  let s = Bioseq.Synthetic.uniform a (Bioseq.Rng.split rng) n in
  for plen = 1 to 65 do
    for _ = 1 to 4 do
      let pos = Bioseq.Rng.int rng (n - plen) in
      let codes =
        Array.init plen (fun i -> Bioseq.Packed_seq.get s (pos + i))
      in
      let p = Bioseq.Packed_seq.Pattern.of_codes a codes in
      let m, _, _ =
        Bioseq.Packed_seq.mismatch_pattern s ~pos p ~ppos:0 ~len:plen
      in
      Alcotest.(check int) "substring fully matches" plen m;
      let codes' = Array.copy codes in
      codes'.(plen - 1) <- (codes'.(plen - 1) + 1) mod 4;
      let p' = Bioseq.Packed_seq.Pattern.of_codes a codes' in
      let m', _, _ =
        Bioseq.Packed_seq.mismatch_pattern s ~pos p' ~ppos:0 ~len:plen
      in
      Alcotest.(check int) "flipped tail stops early" (plen - 1) m'
    done
  done;
  (* out-of-alphabet pattern codes never match but never raise *)
  let p = Bioseq.Packed_seq.Pattern.of_codes a [| 99; -1 |] in
  let m, _, _ = Bioseq.Packed_seq.mismatch_pattern s ~pos:0 p ~ppos:0 ~len:2 in
  Alcotest.(check int) "unpackable codes match nothing" 0 m

let test_rng_determinism () =
  let a = Bioseq.Rng.create 42 and b = Bioseq.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Bioseq.Rng.int a 1000)
      (Bioseq.Rng.int b 1000)
  done;
  let c = Bioseq.Rng.create 43 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Bioseq.Rng.int a 1000 <> Bioseq.Rng.int c 1000 then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_rng_bounds () =
  let rng = Bioseq.Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Bioseq.Rng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.failf "out of bounds: %d" v;
    let f = Bioseq.Rng.float rng 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.failf "float out of bounds: %f" f
  done

let test_fasta_roundtrip () =
  let dna = Bioseq.Alphabet.dna in
  let records =
    [ { Bioseq.Fasta.header = "chr1 test";
        seq = Bioseq.Packed_seq.of_string dna "acgtacgtacgt" }
    ; { Bioseq.Fasta.header = "chr2";
        seq = Bioseq.Packed_seq.of_string dna (String.make 200 'g') }
    ]
  in
  let text = Bioseq.Fasta.to_string records in
  let parsed = Bioseq.Fasta.parse_string dna text in
  Alcotest.(check int) "record count" 2 (List.length parsed);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "header" a.Bioseq.Fasta.header b.Bioseq.Fasta.header;
      Alcotest.(check bool) "seq" true
        (Bioseq.Packed_seq.equal a.Bioseq.Fasta.seq b.Bioseq.Fasta.seq))
    records parsed

let test_fasta_tolerance () =
  let dna = Bioseq.Alphabet.dna in
  (* upper case, Ns, CRLF line endings *)
  let text = ">x desc\r\nACGT\r\nNNacgtNN\r\n" in
  match Bioseq.Fasta.parse_string dna text with
  | [ { Bioseq.Fasta.header; seq } ] ->
    Alcotest.(check string) "header" "x desc" header;
    Alcotest.(check string) "normalised seq" "acgtacgt"
      (Bioseq.Packed_seq.to_string seq)
  | _ -> Alcotest.fail "expected one record"

let test_fasta_errors () =
  (match Bioseq.Fasta.parse_string Bioseq.Alphabet.dna "acgt\n" with
   | exception Failure _ -> ()
   | _ -> Alcotest.fail "data before header must be rejected")

let test_generators_deterministic () =
  let mk seed = Bioseq.Synthetic.genomic Bioseq.Alphabet.dna (Bioseq.Rng.create seed) 5000 in
  Alcotest.(check bool) "same seed same string" true
    (Bioseq.Packed_seq.equal (mk 9) (mk 9));
  Alcotest.(check bool) "different seed different string" false
    (Bioseq.Packed_seq.equal (mk 9) (mk 10))

let test_generator_lengths () =
  let rng = Bioseq.Rng.create 4 in
  List.iter
    (fun n ->
      let u = Bioseq.Synthetic.uniform Bioseq.Alphabet.dna (Bioseq.Rng.split rng) n in
      let m = Bioseq.Synthetic.markov Bioseq.Alphabet.dna (Bioseq.Rng.split rng) n in
      let g = Bioseq.Synthetic.genomic Bioseq.Alphabet.dna (Bioseq.Rng.split rng) n in
      Alcotest.(check int) "uniform length" n (Bioseq.Packed_seq.length u);
      Alcotest.(check int) "markov length" n (Bioseq.Packed_seq.length m);
      Alcotest.(check int) "genomic length" n (Bioseq.Packed_seq.length g))
    [ 0; 1; 100; 12345 ]

let test_fibonacci_and_periodic () =
  let fib = Bioseq.Synthetic.fibonacci Bioseq.Alphabet.dna 13 in
  (* the fibonacci word begins a b a a b a b a a b a a b *)
  Alcotest.(check string) "fibonacci prefix" "acaacacaacaac"
    (Bioseq.Packed_seq.to_string fib);
  let p = Bioseq.Synthetic.periodic Bioseq.Alphabet.dna ~period:"acg" 8 in
  Alcotest.(check string) "periodic" "acgacgac" (Bioseq.Packed_seq.to_string p)

let test_mutate_rate () =
  let rng = Bioseq.Rng.create 6 in
  let s = Bioseq.Synthetic.uniform Bioseq.Alphabet.dna (Bioseq.Rng.split rng) 20000 in
  let m = Bioseq.Synthetic.mutate ~rate:0.1 (Bioseq.Rng.split rng) s in
  let diffs = ref 0 in
  Bioseq.Packed_seq.iteri s ~f:(fun i c ->
      if Bioseq.Packed_seq.get m i <> c then incr diffs);
  (* expected ~ rate * (1 - 1/sigma) * n = 1500; allow wide tolerance *)
  if !diffs < 1000 || !diffs > 2000 then
    Alcotest.failf "unexpected mutation count %d" !diffs

let test_corpus () =
  Alcotest.(check bool) "find eco" true (Bioseq.Corpus.find "eco" <> None);
  Alcotest.(check bool) "find unknown" true (Bioseq.Corpus.find "nope" = None);
  let s = Bioseq.Corpus.load ~scale:0.001 Bioseq.Corpus.eco in
  Alcotest.(check int) "scaled length" 3500 (Bioseq.Packed_seq.length s);
  let s2 = Bioseq.Corpus.load ~scale:0.001 Bioseq.Corpus.eco in
  Alcotest.(check bool) "deterministic" true (Bioseq.Packed_seq.equal s s2);
  Alcotest.(check int) "clamped minimum" 1000
    (Bioseq.Corpus.scaled_length ~scale:0.0000001 Bioseq.Corpus.eco)

let suite =
  [ Alcotest.test_case "alphabet roundtrip" `Quick test_alphabet_roundtrip
  ; Alcotest.test_case "alphabet bits/separator" `Quick test_alphabet_bits
  ; Alcotest.test_case "alphabet error handling" `Quick test_alphabet_errors
  ; Alcotest.test_case "packed seq roundtrips" `Quick test_packed_roundtrip
  ; Alcotest.test_case "packed seq growth" `Quick test_packed_growth
  ; Alcotest.test_case "packed safe-get bounds" `Quick test_packed_bounds
  ; Alcotest.test_case "packed cell widening" `Quick test_packed_widening
  ; Alcotest.test_case "packed mismatch vs oracle" `Quick
      test_packed_mismatch_oracle
  ; Alcotest.test_case "packed pattern vs oracle" `Quick
      test_packed_pattern_oracle
  ; Alcotest.test_case "rng determinism" `Quick test_rng_determinism
  ; Alcotest.test_case "rng bounds" `Quick test_rng_bounds
  ; Alcotest.test_case "fasta roundtrip" `Quick test_fasta_roundtrip
  ; Alcotest.test_case "fasta tolerance (case, N, CRLF)" `Quick
      test_fasta_tolerance
  ; Alcotest.test_case "fasta malformed input" `Quick test_fasta_errors
  ; Alcotest.test_case "generators deterministic" `Quick
      test_generators_deterministic
  ; Alcotest.test_case "generator exact lengths" `Quick test_generator_lengths
  ; Alcotest.test_case "fibonacci & periodic words" `Quick
      test_fibonacci_and_periodic
  ; Alcotest.test_case "mutation rate" `Quick test_mutate_rate
  ; Alcotest.test_case "corpus profiles" `Quick test_corpus
  ]
