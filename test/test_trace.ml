(* Tests for the trace core: ring wraparound with head-drop, disabled
   no-op behaviour, deterministic sampling under a seeded RNG, span
   nesting, slow-op retention and exporter golden output.  Every test
   runs under [with_trace] so the process-global state (enabled flag,
   clock, sampling, capacity) is restored afterwards. *)

let with_trace f =
  Trace.set_enabled true;
  Trace.set_sample_rate 1.0;
  Trace.set_slow_us 0;
  Trace.set_seed 0x5eed;
  Trace.set_capacity 1024;
  Trace.reset ();
  Fun.protect f ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.set_clock Xutil.Stopwatch.now_ns;
      Trace.set_sample_rate 1.0;
      Trace.set_slow_us 0;
      Trace.set_capacity 65536;
      Trace.reset ())

(* a deterministic clock advancing [step] ns per read *)
let fake_clock step =
  let t = ref (-step) in
  Trace.set_clock (fun () ->
      t := !t + step;
      !t)

let names () = List.map (fun e -> e.Trace.name) (Trace.events ())

let test_ring_wraparound () =
  with_trace (fun () ->
      Trace.set_capacity 4;
      for i = 1 to 6 do
        Trace.instant (Printf.sprintf "e%d" i) []
      done;
      Alcotest.(check (list string))
        "newest window survives a full ring" [ "e3"; "e4"; "e5"; "e6" ]
        (names ());
      Alcotest.(check int) "overwrites counted" 2 (Trace.dropped ());
      Trace.reset ();
      Alcotest.(check int) "reset clears the drop count" 0 (Trace.dropped ()))

let test_disabled_noop () =
  with_trace (fun () ->
      Trace.set_enabled false;
      Alcotest.(check bool) "not recording" false (Trace.on ());
      Trace.instant "i" [];
      Trace.begin_span "b" [];
      Trace.end_span ();
      let r = Trace.span "s" [] (fun () -> 41) in
      let r' = Trace.with_op "o" [] (fun () -> r + 1) in
      Alcotest.(check int) "span and with_op pass through" 42 r';
      Alcotest.(check int) "nothing recorded" 0
        (List.length (Trace.events ())))

let sampling_pattern seed =
  Trace.set_seed seed;
  Trace.set_sample_rate 0.5;
  Trace.reset ();
  List.init 32 (fun _ ->
      let before = List.length (Trace.events ()) in
      Trace.with_op "op" [] (fun () -> Trace.instant "x" []);
      List.length (Trace.events ()) > before)

let test_sampling_determinism () =
  with_trace (fun () ->
      let first = sampling_pattern 42 in
      let second = sampling_pattern 42 in
      Alcotest.(check (list bool))
        "same seed, same keep/drop pattern" first second;
      Alcotest.(check bool) "some operations kept" true
        (List.mem true first);
      Alcotest.(check bool) "some operations dropped" true
        (List.mem false first);
      let other = sampling_pattern 43 in
      Alcotest.(check bool) "different seed, different pattern" true
        (first <> other))

let test_span_nesting () =
  with_trace (fun () ->
      Trace.span "outer" [] (fun () ->
          Trace.span "inner" [] (fun () -> Trace.instant "leaf" []));
      Trace.begin_span "pair" [];
      Trace.end_span ();
      let shape =
        List.map (fun e -> (e.Trace.phase, e.Trace.name)) (Trace.events ())
      in
      Alcotest.(check bool)
        "begin/end pairs nest properly" true
        (shape
        = [ (Trace.Begin, "outer"); (Trace.Begin, "inner");
            (Trace.Instant, "leaf"); (Trace.End, "inner");
            (Trace.End, "outer"); (Trace.Begin, "pair");
            (Trace.End, "pair") ]))

let test_slow_op_retention () =
  with_trace (fun () ->
      (* every clock read advances 1 ms, so any with_op "lasts" 1 ms *)
      fake_clock 1_000_000;
      Trace.set_slow_us 500;
      Trace.with_op "slow" [ Trace.Int ("k", 7) ] (fun () -> ());
      (* sampled-out operations are still caught by the slow log *)
      Trace.set_sample_rate 0.0;
      Trace.with_op "slow_unsampled" [] (fun () -> ());
      Trace.set_sample_rate 1.0;
      (* raise the threshold: a 1 ms op is no longer slow *)
      Trace.set_slow_us 2_000;
      Trace.with_op "fast_enough" [] (fun () -> ());
      match Trace.slow_ops () with
      | [ a; b ] ->
        Alcotest.(check string) "first slow op" "slow" a.Trace.so_name;
        Alcotest.(check bool) "its events were recorded" true
          a.Trace.so_sampled;
        Alcotest.(check bool) "duration kept" true (a.Trace.so_ns >= 500_000);
        Alcotest.(check string) "sampled-out op retained" "slow_unsampled"
          b.Trace.so_name;
        Alcotest.(check bool) "marked as sampled out" false
          b.Trace.so_sampled
      | l -> Alcotest.failf "expected 2 slow ops, got %d" (List.length l))

let test_chrome_golden () =
  with_trace (fun () ->
      fake_clock 1_000;
      Trace.with_op "op" [ Trace.Int ("k", 1) ] (fun () ->
          Trace.instant "evt" [ Trace.Str ("s", "x") ]);
      Alcotest.(check string) "chrome trace-event JSON"
        ("{\"traceEvents\":["
        ^ "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\
           \"args\":{\"name\":\"op #1\"}},"
        ^ "{\"name\":\"op\",\"cat\":\"spine\",\"ph\":\"B\",\"ts\":0.000,\
           \"pid\":1,\"tid\":1,\"args\":{\"k\":1}},"
        ^ "{\"name\":\"evt\",\"cat\":\"spine\",\"ph\":\"i\",\"ts\":2.000,\
           \"pid\":1,\"tid\":1,\"s\":\"t\",\"args\":{\"s\":\"x\"}},"
        ^ "{\"name\":\"op\",\"cat\":\"spine\",\"ph\":\"E\",\"ts\":4.000,\
           \"pid\":1,\"tid\":1}]}")
        (Trace.chrome_json ()))

let test_jsonl_golden () =
  with_trace (fun () ->
      fake_clock 10;
      Trace.with_op "q" [] (fun () ->
          Trace.instant "step.rib" [ Trace.Int ("node", 3) ]);
      Alcotest.(check (list string)) "one JSON object per event"
        [ "{\"ts_ns\":0,\"ph\":\"B\",\"name\":\"q\",\"op\":1}";
          "{\"ts_ns\":20,\"ph\":\"i\",\"name\":\"step.rib\",\"op\":1,\
           \"args\":{\"node\":3}}";
          "{\"ts_ns\":40,\"ph\":\"E\",\"name\":\"q\",\"op\":1}" ]
        (Trace.jsonl ()))

let test_instrumented_build () =
  with_trace (fun () ->
      let count name =
        List.length
          (List.filter (fun e -> e.Trace.name = name) (Trace.events ()))
      in
      let seq = Bioseq.Packed_seq.of_string Bioseq.Alphabet.dna "aaccacaaca" in
      let idx = Spine.Index.of_seq seq in
      (* the paper's worked example: 4 case-1 closings, 4 ribs, 2 extribs *)
      Alcotest.(check int) "case1 events" 4 (count "build.case1");
      Alcotest.(check int) "rib events" 4 (count "build.rib");
      Alcotest.(check int) "extrib events" 2 (count "build.extrib");
      ignore (Spine.Index.occurrences idx [| 0; 1; 0 |]);
      Alcotest.(check bool) "traversal steps recorded" true
        (count "step.vertebra" > 0 || count "step.rib" > 0);
      Alcotest.(check bool) "occurrence scan bracketed" true
        (count "search.scan" = 2))

let suite =
  [ Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound
  ; Alcotest.test_case "disabled no-op" `Quick test_disabled_noop
  ; Alcotest.test_case "sampling determinism" `Quick test_sampling_determinism
  ; Alcotest.test_case "span nesting" `Quick test_span_nesting
  ; Alcotest.test_case "slow-op retention" `Quick test_slow_op_retention
  ; Alcotest.test_case "chrome golden" `Quick test_chrome_golden
  ; Alcotest.test_case "jsonl golden" `Quick test_jsonl_golden
  ; Alcotest.test_case "instrumented build" `Quick test_instrumented_build
  ]
