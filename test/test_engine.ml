(* The capability-aware Engine layer: every backend packed as an
   Engine.t must answer the whole query surface identically — the
   differential harness that justifies defining the API once. *)

let byte = Bioseq.Alphabet.byte

let codes_of s = Array.init (String.length s) (fun i -> Char.code s.[i])

(* Build all four backends over [s], pack each as an engine, run [f]
   over the (name, engine) list, then tear the persistent file down. *)
let with_engines_of alphabet s f =
  let seq = Bioseq.Packed_seq.of_string alphabet s in
  let idx = Spine.Index.of_seq seq in
  let compact = Spine.Compact.of_seq seq in
  let disk = Spine.Disk.build seq in
  let path = Filename.temp_file "spine_engine" ".db" in
  let p = Spine.Persistent.create ~path alphabet in
  Spine.Persistent.append_string p s;
  Fun.protect
    ~finally:(fun () ->
      (try Spine.Persistent.close p with Spine_error.Error (Spine_error.Closed _) -> ());
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      f
        [ ("fast", Spine.Index.engine idx)
        ; ("compact", Spine.Compact.engine compact)
        ; ("persistent", Spine.Persistent.engine p)
        ; ("disk", Spine.Disk.engine disk) ])

let with_engines s f = with_engines_of byte s f

let test_caps () =
  with_engines "aaccacaaca" (fun engines ->
      List.iter
        (fun (name, e) ->
          Alcotest.(check string) "backend name" name (Spine.Engine.backend e);
          let caps = Spine.Engine.caps e in
          Alcotest.(check bool) (name ^ " persistent")
            (name = "persistent") caps.Spine.Engine.persistent;
          Alcotest.(check bool) (name ^ " paged")
            (name = "persistent" || name = "disk") caps.Spine.Engine.paged;
          Alcotest.(check int) (name ^ " length") 10 (Spine.Engine.length e))
        engines)

(* Random sequences and patterns: contains / occurrences /
   matching_statistics must agree across all four engines and with the
   brute-force oracle. *)
let test_differential () =
  let rng = Bioseq.Rng.create 20260805 in
  for _ = 1 to 8 do
    let s = Oracles.random_string rng 3 (60 + Bioseq.Rng.int rng 180) in
    let patterns =
      (* substrings of s (present) plus random ones (often absent) *)
      List.init 6 (fun _ ->
          let len = 1 + Bioseq.Rng.int rng 8 in
          let start = Bioseq.Rng.int rng (String.length s - len) in
          String.sub s start len)
      @ List.init 5 (fun _ ->
            Oracles.random_string rng 4 (1 + Bioseq.Rng.int rng 6))
    in
    let query = Oracles.random_string rng 3 40 in
    with_engines s (fun engines ->
        List.iter
          (fun (name, e) ->
            List.iter
              (fun pat ->
                let label what =
                  Printf.sprintf "%s %s %S in %S" name what pat s
                in
                Alcotest.(check bool) (label "contains")
                  (Oracles.contains s pat) (Spine.Engine.contains e pat);
                Alcotest.(check (list int)) (label "occurrences")
                  (Oracles.occurrences s pat)
                  (Spine.Engine.occurrences e (codes_of pat));
                Alcotest.(check (option int)) (label "first")
                  (Oracles.first_occurrence s pat)
                  (Spine.Engine.first_occurrence e (codes_of pat)))
              patterns;
            let ms, _ =
              Spine.Engine.matching_statistics e
                (Bioseq.Packed_seq.of_string byte query)
            in
            Alcotest.(check (array int))
              (Printf.sprintf "%s matching_statistics" name)
              (Oracles.matching_statistics s query) ms)
          engines)
  done

(* run_batch: one shared scan must give exactly the per-pattern
   results, in input order, including absent patterns. *)
let test_run_batch () =
  let s = "aaccacaacaccaacacaac" in
  let pats = [ "ac"; "caac"; "zz"; "a"; "ccc"; "aaccacaacaccaacacaac" ] in
  with_engines s (fun engines ->
      List.iter
        (fun (name, e) ->
          let items = Spine.Engine.run_batch e (List.map codes_of pats) in
          Alcotest.(check int) (name ^ " item count") (List.length pats)
            (List.length items);
          List.iter2
            (fun pat { Spine.Engine.pattern; count; positions } ->
              Alcotest.(check (array int)) (name ^ " pattern echo")
                (codes_of pat) pattern;
              let expect = Oracles.occurrences s pat in
              Alcotest.(check (list int))
                (Printf.sprintf "%s batch occurrences of %S" name pat)
                expect positions;
              Alcotest.(check int) (name ^ " count") (List.length expect)
                count)
            pats items)
        engines)

(* Satellite: the raw deferred-scan machinery is public on Compact and
   Persistent, and occurrences_many matches Index.occurrences_many. *)
let test_occurrences_batch_exposed () =
  let s = "aaccacaaca" in
  let seq = Bioseq.Packed_seq.of_string byte s in
  let idx = Spine.Index.of_seq seq in
  let compact = Spine.Compact.of_seq seq in
  let path = Filename.temp_file "spine_engine" ".db" in
  let p = Spine.Persistent.create ~path byte in
  Spine.Persistent.append_string p s;
  Fun.protect
    ~finally:(fun () ->
      Spine.Persistent.close p;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (* "ac": first occurrence starts at 1, so its end node is 3; the
         deferred scan must surface end nodes 3, 6, 9. *)
      let expect_ends = [ 3; 6; 9 ] in
      let ends_of buffers =
        Xutil.Int_vec.fold buffers.(0) ~init:[] ~f:(fun acc e -> e :: acc)
        |> List.rev
      in
      Alcotest.(check (list int)) "compact batch ends" expect_ends
        (ends_of (Spine.Compact.occurrences_batch compact [| (3, 2) |]));
      Alcotest.(check (list int)) "persistent batch ends" expect_ends
        (ends_of (Spine.Persistent.occurrences_batch p [| (3, 2) |]));
      let pats = List.map codes_of [ "ac"; "aa"; "zz"; "caca" ] in
      let reference = Spine.Index.occurrences_many idx pats in
      Alcotest.(check (array (list int))) "compact occurrences_many"
        reference (Spine.Compact.occurrences_many compact pats);
      Alcotest.(check (array (list int))) "persistent occurrences_many"
        reference (Spine.Persistent.occurrences_many p pats))

(* Engine cursors over compact / persistent / disk: random
   advance/drop_front walks checked against an explicit window model —
   the capability the fast store had and the others gain. *)
let test_engine_cursors () =
  let rng = Bioseq.Rng.create 4242 in
  for _ = 1 to 6 do
    let s = Oracles.random_string rng 3 (30 + Bioseq.Rng.int rng 80) in
    with_engines s (fun engines ->
        List.iter
          (fun (name, e) ->
            let c = Spine.Engine.cursor e in
            let buf = ref "" in
            let check () =
              Alcotest.(check int) (name ^ " cursor length")
                (String.length !buf) (c.Spine.Engine.length ());
              if !buf = "" then
                Alcotest.(check int) (name ^ " cursor root") 0
                  (c.Spine.Engine.node ())
              else begin
                Alcotest.(check (option int)) (name ^ " cursor first")
                  (Oracles.first_occurrence s !buf)
                  (c.Spine.Engine.first_occurrence ());
                Alcotest.(check (list int)) (name ^ " cursor occurrences")
                  (Oracles.occurrences s !buf)
                  (c.Spine.Engine.occurrences ())
              end
            in
            for _ = 1 to 80 do
              (match Bioseq.Rng.int rng 4 with
               | 0 | 1 ->
                 let ch = Char.chr (Char.code 'a' + Bioseq.Rng.int rng 3) in
                 let expected =
                   Oracles.contains s (!buf ^ String.make 1 ch)
                 in
                 let ok = c.Spine.Engine.advance_char ch in
                 Alcotest.(check bool) (name ^ " advance") expected ok;
                 if ok then buf := !buf ^ String.make 1 ch
               | 2 ->
                 if !buf <> "" then begin
                   c.Spine.Engine.drop_front ();
                   buf := String.sub !buf 1 (String.length !buf - 1)
                 end
               | _ ->
                 let ch = Char.chr (Char.code 'a' + Bioseq.Rng.int rng 3) in
                 c.Spine.Engine.longest_extension (Char.code ch);
                 (* longest suffix of buf+ch present in s *)
                 let w = !buf ^ String.make 1 ch in
                 let rec suffix w =
                   if Oracles.contains s w then w
                   else suffix (String.sub w 1 (String.length w - 1))
                 in
                 buf := suffix w);
              check ()
            done)
          engines)
  done

(* The packed-pattern entry points against the per-char oracle, on a
   2-bit DNA row where one 62-bit word holds 31 codes.  Pattern lengths
   1..65 cover everything from "shorter than a word" through "straddles
   two word boundaries"; the start sweep puts occurrences at in-word
   offsets on both sides of each boundary (0, 29..32, 61, 62 — plus
   [plen] and [n - plen], which vary the offset with the length).  A
   flipped final character makes the word compare disagree mid-span, so
   the boundary scalar fallback is exercised on every shape too. *)
let test_packed_pattern_differential () =
  let rng = Bioseq.Rng.create 20260808 in
  let n = 200 in
  let s = String.init n (fun _ -> "acgt".[Bioseq.Rng.int rng 4]) in
  let flip_last pat =
    let b = Bytes.of_string pat in
    let i = Bytes.length b - 1 in
    let c = Bytes.get b i in
    Bytes.set b i (if c = 'a' then 'c' else 'a');
    Bytes.to_string b
  in
  with_engines_of Bioseq.Alphabet.dna s (fun engines ->
      List.iter
        (fun (name, e) ->
          let check_pattern pat =
            let label what =
              Printf.sprintf "%s %s %S (len %d)" name what pat
                (String.length pat)
            in
            let p =
              match Spine.Engine.pattern_of_string e pat with
              | Some p -> p
              | None -> Alcotest.fail (label "encodes")
            in
            let occ = Oracles.occurrences s pat in
            Alcotest.(check bool) (label "contains_pattern")
              (Oracles.contains s pat) (Spine.Engine.contains_pattern e p);
            Alcotest.(check (option int)) (label "find_first_pattern")
              (Oracles.first_occurrence s pat)
              (Option.map
                 (fun last -> last - String.length pat)
                 (Spine.Engine.find_first_pattern e p));
            Alcotest.(check (list int)) (label "occurrences_pattern")
              occ (Spine.Engine.occurrences_pattern e p);
            Alcotest.(check (list int)) (label "end_nodes_pattern")
              (List.map (fun o -> o + String.length pat) occ)
              (Spine.Engine.end_nodes_pattern e p)
          in
          for plen = 1 to 65 do
            List.iter
              (fun start ->
                if start >= 0 && start + plen <= n then begin
                  let pat = String.sub s start plen in
                  check_pattern pat;
                  check_pattern (flip_last pat)
                end)
              [ 0; 29; 30; 31; 32; 61; 62; plen; n - plen ]
          done;
          (* cursor advance_pattern: consumes exactly the longest prefix
             of the pattern present in the data, leaving the cursor on
             that match *)
          List.iter
            (fun (start, plen) ->
              let pat = String.sub s start plen ^ "acgtacgt" in
              let p =
                match Spine.Engine.pattern_of_string e pat with
                | Some p -> p
                | None -> Alcotest.fail "cursor pattern encodes"
              in
              let expect =
                let k = ref (String.length pat) in
                while
                  !k > 0 && not (Oracles.contains s (String.sub pat 0 !k))
                do
                  decr k
                done;
                !k
              in
              let c = Spine.Engine.cursor e in
              let consumed = c.Spine.Engine.advance_pattern p in
              Alcotest.(check int)
                (Printf.sprintf "%s cursor consumed (start %d len %d)" name
                   start plen)
                expect consumed;
              Alcotest.(check int)
                (Printf.sprintf "%s cursor length (start %d len %d)" name
                   start plen)
                expect (c.Spine.Engine.length ()))
            [ (0, 40); (17, 33); (30, 2); (100, 64); (n - 65, 65) ];
          (* matching statistics over a word-crossing DNA query drive
             the matcher's bulk vertebra runs; the oracle is per-char *)
          let query = String.init 100 (fun _ -> "acgt".[Bioseq.Rng.int rng 4]) in
          let ms, _ =
            Spine.Engine.matching_statistics e
              (Bioseq.Packed_seq.of_string Bioseq.Alphabet.dna query)
          in
          Alcotest.(check (array int))
            (Printf.sprintf "%s dna matching_statistics" name)
            (Oracles.matching_statistics s query) ms)
        engines)

(* A closed persistent index must refuse queries through its engine and
   through live cursors, instead of reading freed pages. *)
let test_guard () =
  let path = Filename.temp_file "spine_engine" ".db" in
  let p = Spine.Persistent.create ~path byte in
  Spine.Persistent.append_string p "abracadabra";
  let e = Spine.Persistent.engine p in
  let c = Spine.Engine.cursor e in
  Alcotest.(check bool) "live engine answers" true
    (Spine.Engine.contains e "bra");
  Alcotest.(check bool) "live cursor advances" true
    (c.Spine.Engine.advance_char 'a');
  Spine.Persistent.close p;
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let closed = Spine_error.Error (Spine_error.Closed "persistent index") in
      Alcotest.check_raises "closed engine" closed (fun () ->
          ignore (Spine.Engine.contains e "bra"));
      Alcotest.check_raises "closed run_batch" closed (fun () ->
          ignore (Spine.Engine.run_batch e [ codes_of "bra" ]));
      Alcotest.check_raises "closed cursor" closed (fun () ->
          ignore (c.Spine.Engine.advance_char 'b')))

let suite =
  [ Alcotest.test_case "capability records" `Quick test_caps
  ; Alcotest.test_case "cross-backend differential" `Quick test_differential
  ; Alcotest.test_case "run_batch parity" `Quick test_run_batch
  ; Alcotest.test_case "occurrences_batch exposed" `Quick
      test_occurrences_batch_exposed
  ; Alcotest.test_case "packed-pattern differential" `Quick
      test_packed_pattern_differential
  ; Alcotest.test_case "cursors on paged backends" `Quick test_engine_cursors
  ; Alcotest.test_case "guard after close" `Quick test_guard
  ]
