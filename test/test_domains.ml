(* Two domains share one post-build store: the query surface that
   spine-lint --domains certifies must actually be reentrant — every
   answer computed in a spawned domain has to equal the single-domain
   oracle's, with no cross-domain interference through matcher state,
   telemetry or trace.  This is the runtime half of the static
   certification. *)

let byte = Bioseq.Alphabet.byte

let codes_of s = Array.init (String.length s) (fun i -> Char.code s.[i])

(* a deterministic text plus patterns that are present, absent and
   partially present *)
let text =
  let rng = Bioseq.Rng.create 20260808 in
  Oracles.random_string rng 4 600

let patterns =
  let rng = Bioseq.Rng.create 95014 in
  List.init 12 (fun i ->
      if i mod 3 = 0 then
        Oracles.random_string rng 4 (1 + Bioseq.Rng.int rng 6)
      else
        let len = 1 + Bioseq.Rng.int rng 8 in
        let start = Bioseq.Rng.int rng (String.length text - len) in
        String.sub text start len)

let query = Oracles.random_string (Bioseq.Rng.create 777) 4 50

(* run the whole read surface once; the result is a plain comparable
   value so domain answers can be checked against the oracle *)
let snapshot e =
  let ms_seq = Bioseq.Packed_seq.of_string byte query in
  let ms, stats = Spine.Engine.matching_statistics e ms_seq in
  List.map
    (fun p ->
      let codes = codes_of p in
      ( Spine.Engine.contains e p,
        Spine.Engine.occurrences e codes |> List.sort compare,
        Spine.Engine.first_occurrence e codes ))
    patterns
  |> fun per_pattern ->
  ( per_pattern,
    Array.to_list ms,
    stats.Spine.Engine.nodes_checked,
    Spine.Engine.length e,
    Spine.Engine.node_count e )

let check_backend name e =
  let oracle = snapshot e in
  let domains =
    List.init 2 (fun _ -> Domain.spawn (fun () -> snapshot e))
  in
  List.iteri
    (fun i d ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: domain %d answers equal the oracle" name i)
        true
        (Domain.join d = oracle))
    domains

let test_fast () =
  let seq = Bioseq.Packed_seq.of_string byte text in
  let idx = Spine.Index.of_seq seq in
  check_backend "fast" (Spine.Index.engine idx)

let test_compact () =
  let seq = Bioseq.Packed_seq.of_string byte text in
  let compact = Spine.Compact.of_seq seq in
  check_backend "compact" (Spine.Compact.engine compact)

let suite =
  [ Alcotest.test_case "fast store shared across two domains" `Quick test_fast;
    Alcotest.test_case "compact store shared across two domains" `Quick
      test_compact ]
