(* Tests for the workload runner and the engine space accounting it
   reports: deterministic request generation, report shape, slow-op
   capture, and component attribution across every backend. *)

let seq_of n =
  let rng = Bioseq.Rng.create 99 in
  Bioseq.Synthetic.markov ~order:1 Bioseq.Alphabet.dna rng n

(* Every backend over the same sequence; persistent gets a scratch
   file which the cleanup removes. *)
let with_engines n f =
  let seq = seq_of n in
  let fast = Spine.Index.engine (Spine.Index.of_seq seq) in
  let compact = Spine.Compact.engine (Spine.Compact.of_seq seq) in
  let disk = Spine.Disk.engine (Spine.Disk.build seq) in
  let path = Filename.temp_file "test_workload" ".db" in
  let p = Spine.Persistent.create ~path (Bioseq.Packed_seq.alphabet seq) in
  Spine.Persistent.append_seq p seq;
  Fun.protect
    ~finally:(fun () ->
      Spine.Persistent.close p;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      f seq
        [ ("fast", fast); ("compact", compact); ("disk", disk);
          ("persistent", Spine.Persistent.engine p) ])

let small_config =
  { Workload.default_config with
    Workload.requests = 60; batch_size = 4; cursor_steps = 8 }

let test_runner_shape () =
  with_engines 600 (fun seq engines ->
      List.iter
        (fun (name, engine) ->
          let r = Workload.run ~config:small_config engine seq in
          Alcotest.(check string) (name ^ " backend") name r.Workload.backend;
          Alcotest.(check int) (name ^ " requests") 60
            r.Workload.total_requests;
          let total_ops =
            List.fold_left (fun acc o -> acc + o.Workload.count) 0
              r.Workload.ops
          in
          Alcotest.(check int) (name ^ " op counts sum") 60 total_ops;
          List.iter
            (fun (o : Workload.op_report) ->
              if o.Workload.count > 0 then begin
                Alcotest.(check bool)
                  (Printf.sprintf "%s/%s quantiles ordered" name o.Workload.op)
                  true
                  (o.Workload.p50_ns <= o.Workload.p90_ns
                   && o.Workload.p90_ns <= o.Workload.p99_ns);
                Alcotest.(check bool)
                  (Printf.sprintf "%s/%s positive mean" name o.Workload.op)
                  true (o.Workload.mean_ns > 0.0)
              end)
            r.Workload.ops)
        engines)

let test_determinism () =
  with_engines 600 (fun seq engines ->
      let engine = List.assoc "compact" engines in
      let shape (r : Workload.report) =
        List.map
          (fun (o : Workload.op_report) ->
            (o.Workload.op, o.Workload.count, o.Workload.hits))
          r.Workload.ops
      in
      let a = Workload.run ~config:small_config engine seq in
      let b = Workload.run ~config:small_config engine seq in
      (* same seed: same request stream, so op counts and hit counts
         replay exactly (latencies of course differ) *)
      Alcotest.(check bool) "same op/hit shape" true (shape a = shape b);
      let c =
        Workload.run
          ~config:{ small_config with Workload.seed = 7 }
          engine seq
      in
      Alcotest.(check bool) "hits present" true
        (List.exists (fun (_, _, h) -> h > 0) (shape c)))

let test_slow_ops_captured () =
  with_engines 400 (fun seq engines ->
      let engine = List.assoc "fast" engines in
      let r =
        Workload.run
          ~config:{ small_config with Workload.slowest = 5 }
          engine seq
      in
      (* the threshold is forced >= 1us, so some request slower than
         1us always exists on a real machine *)
      Alcotest.(check bool) "slowest non-empty" true (r.Workload.slowest <> []);
      Alcotest.(check bool) "at most K" true
        (List.length r.Workload.slowest <= 5);
      let rec sorted = function
        | a :: (b :: _ as rest) ->
          a.Workload.s_ns >= b.Workload.s_ns && sorted rest
        | _ -> true
      in
      Alcotest.(check bool) "descending" true (sorted r.Workload.slowest);
      List.iter
        (fun s ->
          Alcotest.(check bool) "request id recovered" true
            (s.Workload.s_request >= 0 && s.Workload.s_request < 60))
        r.Workload.slowest)

let test_tick_hook () =
  with_engines 300 (fun seq engines ->
      let engine = List.assoc "compact" engines in
      let ticks = ref [] in
      let config =
        { small_config with Workload.requests = 50; tick_every = 20 }
      in
      let r =
        Workload.run ~config
          ~on_tick:(fun n -> ticks := n :: !ticks)
          engine seq
      in
      Alcotest.(check (list int)) "ticks at every 20 requests" [ 20; 40 ]
        (List.rev !ticks);
      Alcotest.(check int) "jsonl lines" 4 (List.length (Workload.jsonl r)))

let test_space_attribution () =
  (* ISSUE acceptance: >= 95% of the measured footprint attributed to
     named components on all four backends (the built-in stores name
     everything, so this is exactly 1.0) *)
  with_engines 800 (fun _seq engines ->
      List.iter
        (fun (name, engine) ->
          let report = Spine.Engine.space engine in
          Alcotest.(check string) (name ^ " backend name") name
            report.Spine.Space_report.backend;
          Alcotest.(check int) (name ^ " chars") 800
            report.Spine.Space_report.chars;
          Alcotest.(check bool) (name ^ " non-empty") true
            (Spine.Space_report.total_bytes report > 0);
          Alcotest.(check bool) (name ^ " attribution >= 0.95") true
            (Spine.Space_report.attributed_fraction report >= 0.95);
          Alcotest.(check bool) (name ^ " index <= total") true
            (Spine.Space_report.index_bytes report
             <= Spine.Space_report.total_bytes report);
          Alcotest.(check bool) (name ^ " bytes/char positive") true
            (Spine.Space_report.bytes_per_char report > 0.0))
        engines)

let test_space_overlays () =
  with_engines 800 (fun _seq engines ->
      let components name =
        let r = Spine.Engine.space (List.assoc name engines) in
        List.map
          (fun c -> c.Spine.Space_report.comp)
          r.Spine.Space_report.components
      in
      (* paged backends report their storage overlays; in-memory ones
         don't *)
      Alcotest.(check bool) "disk has pagestore overlay" true
        (List.mem "pagestore_pages" (components "disk"));
      Alcotest.(check bool) "disk has pool overlay" true
        (List.mem "bufferpool_frames" (components "disk"));
      Alcotest.(check bool) "persistent has pagestore overlay" true
        (List.mem "pagestore_pages" (components "persistent"));
      Alcotest.(check bool) "fast has no overlay" false
        (List.mem "pagestore_pages" (components "fast"));
      (* overlays are excluded from the index footprint *)
      let disk = Spine.Engine.space (List.assoc "disk" engines) in
      Alcotest.(check bool) "disk index < total" true
        (Spine.Space_report.index_bytes disk
         < Spine.Space_report.total_bytes disk))

let test_space_gauges () =
  let prev = Telemetry.is_enabled () in
  Telemetry.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Telemetry.set_enabled prev)
    (fun () ->
      let seq = seq_of 200 in
      let engine = Spine.Compact.engine (Spine.Compact.of_seq seq) in
      let report = Spine.Engine.space engine in
      match
        Telemetry.find (Telemetry.snapshot ()) "space.compact.total_bytes"
      with
      | Some (Telemetry.Level v) ->
        Alcotest.(check (float 0.0)) "gauge mirrors the report"
          (float_of_int (Spine.Space_report.total_bytes report))
          v
      | _ -> Alcotest.fail "space gauge missing")

let test_qlog_roundtrip () =
  with_engines 600 (fun seq engines ->
      let engine = List.assoc "compact" engines in
      let path = Filename.temp_file "test_qlog" ".jsonl" in
      Fun.protect
        ~finally:(fun () ->
          Qlog.set_path None;
          try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          Qlog.set_path (Some path);
          let r = Workload.run ~config:small_config engine seq in
          Qlog.set_path None;
          Alcotest.(check int) "driver saw all requests" 60
            r.Workload.total_requests;
          match Qlog.read_file ~path with
          | Error e -> Alcotest.failf "qlog parse: %s" e
          | Ok records ->
            Alcotest.(check int) "one record per request" 60
              (List.length records);
            List.iteri
              (fun i (rec_ : Qlog.record) ->
                Alcotest.(check int) "sequential seq" i rec_.Qlog.q_seq;
                Alcotest.(check string) "backend recorded" "compact"
                  rec_.Qlog.q_backend;
                Alcotest.(check bool) "patterns recorded" true
                  (rec_.Qlog.q_patterns <> []))
              records;
            let offsets =
              List.map (fun (r : Qlog.record) -> r.Qlog.q_offset_ns) records
            in
            Alcotest.(check bool) "offsets monotone" true
              (List.sort compare offsets = offsets)))

(* Replay determinism (ISSUE satellite): with an injected clock and
   no-op sleeper, the same log against the same engine yields a
   byte-identical schedule and a byte-identical comparison report. *)
let test_replay_determinism () =
  with_engines 600 (fun seq engines ->
      let engine = List.assoc "compact" engines in
      let path = Filename.temp_file "test_replay" ".jsonl" in
      Fun.protect
        ~finally:(fun () ->
          Qlog.set_path None;
          try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          Qlog.set_path (Some path);
          ignore (Workload.run ~config:small_config engine seq);
          Qlog.set_path None;
          let records =
            match Qlog.read_file ~path with
            | Ok rs -> rs
            | Error e -> Alcotest.failf "qlog parse: %s" e
          in
          let alphabet = Spine.Engine.alphabet engine in
          (* schedule determinism: re-deriving the request stream from
             the same log is byte-identical *)
          let reqs r =
            match Replay.of_records ~alphabet r with
            | Ok v -> v
            | Error e -> Alcotest.failf "of_records: %s" e
          in
          Alcotest.(check bool) "identical schedule" true
            (reqs records = reqs records);
          (* report determinism: fake nanosecond clock, no sleeping —
             two replays render the exact same comparison rows *)
          let mk_clock () =
            let t = ref 0 in
            fun () ->
              t := !t + 1000;
              !t
          in
          let outcome () =
            match
              Replay.drive_records ~clock:(mk_clock ())
                ~sleep_ns:(fun _ -> ())
                ~closed_loop:true ~engine records
            with
            | Ok o -> o
            | Error e -> Alcotest.failf "drive_records: %s" e
          in
          let a = outcome () and b = outcome () in
          Alcotest.(check int) "all records replayed" 60 a.Replay.rp_requests;
          Alcotest.(check (list (list string))) "identical comparison report"
            (Bench_gate.rows a.Replay.rp_comparisons)
            (Bench_gate.rows b.Replay.rp_comparisons);
          (* same engine, same stream: the deterministic cost entries
             match the recording exactly, so the gate passes *)
          Alcotest.(check (list string)) "no cost drift vs recording" []
            (List.filter_map
               (fun (c : Bench_gate.comparison) ->
                 if c.Bench_gate.c_group = "cost"
                    && List.mem c
                         (Bench_gate.failures a.Replay.rp_comparisons)
                 then Some c.Bench_gate.c_name
                 else None)
               a.Replay.rp_comparisons)))

let suite =
  [ Alcotest.test_case "runner shape (all backends)" `Quick test_runner_shape
  ; Alcotest.test_case "determinism" `Quick test_determinism
  ; Alcotest.test_case "slow ops captured" `Quick test_slow_ops_captured
  ; Alcotest.test_case "tick hook" `Quick test_tick_hook
  ; Alcotest.test_case "space attribution" `Quick test_space_attribution
  ; Alcotest.test_case "space overlays" `Quick test_space_overlays
  ; Alcotest.test_case "space gauges" `Quick test_space_gauges
  ; Alcotest.test_case "qlog roundtrip" `Quick test_qlog_roundtrip
  ; Alcotest.test_case "replay determinism" `Quick test_replay_determinism
  ]
