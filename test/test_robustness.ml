(* Robustness: the fault-injection suite.

   - serializer fuzzing: with the whole-snapshot checksum, ANY byte
     change must be rejected with a typed error, never decoded;
   - a crash-point matrix: the persistent index is killed (writes
     frozen) at every single device write of a multi-flush workload and
     reopened — each reopen must recover a flushed generation exactly
     or fail with a typed [Corrupt], never answer from garbage;
   - seeded bit-flip trials over every written on-disk region: scrub
     must see the damage and queries must stay right or fail typed;
   - typed buffer-pool exhaustion, transient-I/O retries, torn
     metadata writes and the [SPINE_FAULTS] environment grammar;
   - data-race freedom of concurrent read-only queries. *)

module P = Spine.Persistent
module FD = Pagestore.Fault_device

let dna = Bioseq.Alphabet.dna

let with_tmp f =
  let path = Filename.temp_file "spine_robust" ".db" in
  let result = try f path with e -> (try Sys.remove path with _ -> ()); raise e in
  (try Sys.remove path with _ -> ());
  result

(* Physical geometry (mirrors lib/spine/persistent.ml): 4096-byte pages
   with a 16-byte trailer, of which the last 4 bytes are reserved and
   not covered by the checksum. *)
let phys_page = 4096 + 16

let flip_bit path off mask =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  ignore (Unix.LargeFile.lseek fd (Int64.of_int off) Unix.SEEK_SET);
  let b = Bytes.create 1 in
  let got = Unix.read fd b 0 1 in
  let v = if got = 1 then Char.code (Bytes.get b 0) else 0 in
  Bytes.set b 0 (Char.chr (v lxor mask));
  ignore (Unix.LargeFile.lseek fd (Int64.of_int off) Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd

(* --- serializer fuzzing --------------------------------------------- *)

let test_serializer_fuzz () =
  let rng = Bioseq.Rng.create 401 in
  let seq = Bioseq.Synthetic.genomic dna (Bioseq.Rng.split rng) 600 in
  let idx = Spine.Index.of_seq seq in
  let original = Spine.Serialize.to_bytes idx in
  for _ = 1 to 600 do
    let data = Bytes.copy original in
    (* corrupt 1-4 random bytes *)
    for _ = 0 to Bioseq.Rng.int rng 4 do
      Bytes.set data
        (Bioseq.Rng.int rng (Bytes.length data))
        (Char.chr (Bioseq.Rng.int rng 256))
    done;
    if Bytes.equal data original then
      (* the mutation happened to write the bytes already there *)
      ignore (Spine.Serialize.of_bytes data)
    else
      match Spine.Serialize.of_bytes data with
      | _ ->
        Alcotest.fail
          "corrupted snapshot accepted: the whole-image checksum missed it"
      | exception Spine_error.Error (Spine_error.Corrupt _) -> ()
      | exception e ->
        Alcotest.failf "unexpected exception from corrupted input: %s"
          (Printexc.to_string e)
  done;
  (* truncations at every length must fail typed *)
  for len = 0 to min 120 (Bytes.length original - 1) do
    match Spine.Serialize.of_bytes (Bytes.sub original 0 len) with
    | _ -> Alcotest.failf "truncation to %d bytes accepted" len
    | exception Spine_error.Error (Spine_error.Corrupt _) -> ()
    | exception e ->
      Alcotest.failf "unexpected exception on truncation: %s"
        (Printexc.to_string e)
  done

(* --- crash-point recovery matrix ------------------------------------ *)

(* Deterministic multi-flush workloads; the crash matrix freezes the
   file image at every single device write of one.  [frames] controls
   buffer-pool pressure: the default pool never evicts between flushes,
   a tiny pool constantly writes dirty committed pages back in place —
   the case the preimage journal exists for. *)
let crash_seq total =
  Bioseq.Synthetic.genomic dna (Bioseq.Rng.create 4040) total

let run_crash_workload ?frames ~chunks ~seq path fault =
  let p = P.create ?frames ~path dna in
  let frozen () =
    match fault with Some f -> FD.frozen f | None -> false
  in
  (match fault with
   | Some f -> FD.attach f (P.device p)
   | None -> ());
  (* Once a [Crash] arm freezes the image the simulated process is
     dead: nothing it would do afterwards can reach the disk, and under
     a small pool it may even trip over its own stale re-reads.  Stop
     at the first sign of the freeze and abandon the handle — exactly
     what kill -9 leaves behind. *)
  let pos = ref 0 in
  match
    List.iter
      (fun n ->
        for _ = 1 to n do
          if frozen () then raise Exit;
          P.append p (Bioseq.Packed_seq.get seq !pos);
          incr pos
        done;
        P.flush p)
      chunks
  with
  | () -> P.close p
  | exception _ when frozen () -> Pagestore.Device.close (P.device p)

(* Freeze the image at every write of the workload, reopen, and demand
   recovery of a flushed prefix with exact query parity.  A typed
   [Corrupt] on reopen is tolerated only for crashes that can destroy
   the sole metadata slot (nothing was ever fully committed); once
   [open_] succeeds, the journal rollback must have put the committed
   prefix back byte for byte, so queries may never fail OR lie. *)
let crash_matrix ?frames ~chunks ~require_evictions () =
  let total = List.fold_left ( + ) 0 chunks in
  let seq = crash_seq total in
  (* flushed lengths and their in-memory oracles *)
  let flush_points =
    List.rev
      (List.fold_left (fun acc n -> (List.hd acc + n) :: acc) [ 0 ] chunks)
  in
  let flush_points = List.filter (fun l -> l > 0) flush_points in
  let oracles =
    List.map
      (fun l ->
        let prefix =
          Bioseq.Packed_seq.of_codes dna
            (Array.init l (fun k -> Bioseq.Packed_seq.get seq k))
        in
        (l, Spine.Index.of_seq prefix))
      flush_points
  in
  (* count the workload's device writes once, fault-free *)
  let total_writes, evictions =
    with_tmp (fun path ->
        let p = P.create ?frames ~path dna in
        let count = ref 0 in
        Pagestore.Device.set_hooks (P.device p)
          (Some
             { Pagestore.Device.on_read = (fun ~page:_ -> ())
             ; on_write =
                 (fun ~page:_ ~phys:_ ->
                   incr count;
                   Pagestore.Device.Write_through)
             });
        let pos = ref 0 in
        List.iter
          (fun n ->
            for _ = 1 to n do
              P.append p (Bioseq.Packed_seq.get seq !pos);
              incr pos
            done;
            P.flush p)
          chunks;
        let evictions =
          (Pagestore.Buffer_pool.stats (P.pool p)).Pagestore.Buffer_pool
          .evictions
        in
        P.close p;
        (!count, evictions))
  in
  Alcotest.(check bool) "workload writes enough pages to matter" true
    (total_writes > 10);
  if require_evictions then
    Alcotest.(check bool)
      "pool pressure causes evictions between flushes" true (evictions > 0);
  let rng = Bioseq.Rng.create 4041 in
  let clean_failures = ref 0 in
  let recovered_full = ref 0 in
  let recovered_partial = ref 0 in
  for k = 0 to total_writes - 1 do
    with_tmp (fun path ->
        let f = FD.create [ FD.arm ~after:k FD.Crash ] in
        run_crash_workload ?frames ~chunks ~seq path (Some f);
        Alcotest.(check bool)
          (Printf.sprintf "crash %d froze the image" k)
          true (FD.frozen f);
        match P.open_ ?frames ~path () with
        | exception Spine_error.Error (Spine_error.Corrupt _) ->
          incr clean_failures
        | exception e ->
          Alcotest.failf "crash at write %d: untyped exception on reopen: %s"
            k (Printexc.to_string e)
        | p ->
          let len = P.length p in
          (match List.assoc_opt len oracles with
           | None ->
             Alcotest.failf
               "crash at write %d: recovered length %d is not a flushed state"
               k len
           | Some oracle ->
             if len = total then incr recovered_full
             else incr recovered_partial;
             (* the journal rollback restored the committed prefix, so
                every answer must match the oracle — no typed-failure
                escape hatch, and certainly no silent lie *)
             for _ = 1 to 4 do
               let plen = 3 + Bioseq.Rng.int rng 6 in
               let pos = Bioseq.Rng.int rng (len - plen) in
               let pat =
                 Array.init plen (fun j -> Bioseq.Packed_seq.get seq (pos + j))
               in
               Alcotest.(check (list int))
                 (Printf.sprintf "crash %d: query parity" k)
                 (Spine.Index.occurrences oracle pat)
                 (P.occurrences p pat)
             done);
          (try P.close p with Spine_error.Error _ -> ()))
  done;
  (* the matrix must have exercised both full recovery and shadow-slot
     fallback to an earlier generation *)
  Alcotest.(check bool) "some crash points recover the final flush" true
    (!recovered_full >= 1);
  Alcotest.(check bool) "some crash points fall back to an earlier flush"
    true (!recovered_partial >= 1);
  Alcotest.(check bool) "recovery is not universally impossible" true
    (!clean_failures < total_writes)

let test_crash_matrix () =
  crash_matrix ~chunks:[ 500; 400; 300 ] ~require_evictions:false ()

let test_crash_matrix_evictions () =
  (* 2500 chars against 8 frames: the build keeps writing dirty
     committed pages back in place between flushes *)
  crash_matrix ~frames:8 ~chunks:[ 850; 850; 800 ] ~require_evictions:true ()

(* --- eviction overwrite of committed pages + crash ------------------- *)

(* The scenario the preimage journal exists for, without any fault
   injection: flush, keep appending under a tiny pool so dirty
   committed tail/rib pages are written back in place, then simulate a
   kill -9 by reopening the path while the dirty handle is simply
   abandoned.  The reopen must restore the flushed state exactly. *)
let test_eviction_overwrite_recovery () =
  with_tmp (fun path ->
      let total = 7000 and committed = 5000 in
      let seq = crash_seq total in
      let code i = Bioseq.Packed_seq.get seq i in
      let oracle_at l =
        Spine.Index.of_seq
          (Bioseq.Packed_seq.of_codes dna (Array.init l code))
      in
      let p = P.create ~frames:8 ~path dna in
      for i = 0 to 2999 do P.append p (code i) done;
      P.flush p;
      for i = 3000 to committed - 1 do P.append p (code i) done;
      P.flush p;
      (* window 3: overwrite committed pages via evictions, never commit *)
      for i = committed to total - 1 do P.append p (code i) done;
      let evicted =
        (Pagestore.Buffer_pool.stats (P.pool p)).Pagestore.Buffer_pool
        .evictions
      in
      Alcotest.(check bool) "committed pages were rewritten in place" true
        (evicted > 0);
      (* the on-disk image now carries post-flush debris over committed
         pages; the journal must have captured their preimages *)
      let r = P.verify p in
      (match
         List.find_opt (fun reg -> String.equal reg.P.region "journal")
           r.P.regions
       with
       | Some reg ->
         Alcotest.(check bool) "journal holds captured preimages" true
           (reg.P.ok > 0)
       | None -> Alcotest.fail "no journal region in the scrub report");
      (* abandon the dirty handle (kill -9): no flush, no close *)
      Pagestore.Device.close (P.device p);
      let p2 = P.open_ ~frames:8 ~path () in
      Alcotest.(check int) "recovered the last flushed generation" 2
        (P.generation p2);
      Alcotest.(check int) "recovered the last flushed length" committed
        (P.length p2);
      let oracle = oracle_at committed in
      let rng = Bioseq.Rng.create 4242 in
      for _ = 1 to 40 do
        let plen = 3 + Bioseq.Rng.int rng 8 in
        let pos = Bioseq.Rng.int rng (committed - plen) in
        let pat = Array.init plen (fun j -> code (pos + j)) in
        Alcotest.(check (list int)) "parity after rollback"
          (Spine.Index.occurrences oracle pat)
          (P.occurrences p2 pat)
      done;
      (* the recovered index keeps working: extend and commit again *)
      for i = committed to total - 1 do P.append p2 (code i) done;
      P.close p2;
      let p3 = P.open_ ~path () in
      Alcotest.(check int) "full length after re-append" total (P.length p3);
      let oracle_full = oracle_at total in
      for _ = 1 to 20 do
        let plen = 3 + Bioseq.Rng.int rng 8 in
        let pos = Bioseq.Rng.int rng (total - plen) in
        let pat = Array.init plen (fun j -> code (pos + j)) in
        Alcotest.(check (list int)) "parity after re-append"
          (Spine.Index.occurrences oracle_full pat)
          (P.occurrences p3 pat)
      done;
      P.close p3)

(* --- a failed metadata write must not burn a generation -------------- *)

let test_flush_retry_generation () =
  with_tmp (fun path ->
      let p = P.create ~path dna in
      P.append_string p "acgtacgtacgtacgt";
      P.flush p;  (* generation 1 -> slot B *)
      Alcotest.(check int) "first flush commits generation 1" 1
        (P.generation p);
      (* exhaust dev_write's 4 retries on every slot page: the next
         flush must fail without consuming generation 2 — otherwise the
         retry would target generation 3's slot, which is the one
         holding the last valid metadata *)
      let f =
        FD.create [ FD.arm ~pages:(0, 8191) ~times:20 FD.Write_error ]
      in
      FD.attach f (P.device p);
      (match P.flush p with
       | () -> Alcotest.fail "flush must fail under a write-error storm"
       | exception Spine_error.Error (Spine_error.Io_failed _) -> ()
       | exception e ->
         Alcotest.failf "wrong exception from failed flush: %s"
           (Printexc.to_string e));
      Alcotest.(check int) "failed flush does not bump the generation" 1
        (P.generation p);
      FD.detach (P.device p);
      (* the retry writes generation 2 into the same inactive slot A *)
      P.flush p;
      Alcotest.(check int) "retried flush commits generation 2" 2
        (P.generation p);
      P.close p;  (* generation 3 -> slot B *)
      let r = P.scrub ~path () in
      Alcotest.(check int) "newest generation recovered" 3
        r.P.report_generation;
      Alcotest.(check int) "no damage from the failed attempt" 0
        r.P.damaged_pages;
      let p2 = P.open_ ~path () in
      Alcotest.(check int) "reopen sees generation 3" 3 (P.generation p2);
      Alcotest.(check bool) "content intact" true
        (P.contains p2 "gtacgtacgt");
      P.close p2)

(* --- snapshot legacy-version back-compatibility ---------------------- *)

(* The current writer emits v3 (the packed row's raw words), so legacy
   v1/v2 images — [Alphabet.bits] bits per symbol, MSB-first, v2 with a
   CRC-32C trailer — are reconstructed here byte for byte. *)
let legacy_image ~version idx =
  let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff)) in
  let put_u32 buf v =
    for k = 0 to 3 do put_u8 buf ((v lsr (8 * k)) land 0xff) done
  in
  let put_u64 buf v =
    for k = 0 to 7 do put_u8 buf ((v lsr (8 * k)) land 0xff) done
  in
  let s = Spine.Index.store idx in
  let n = Spine.Index.length idx in
  let alphabet = Spine.Index.alphabet idx in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "SPNE";
  put_u8 buf version;
  let symbols =
    String.init (Bioseq.Alphabet.size alphabet) (fun c ->
        Bioseq.Alphabet.decode alphabet c)
  in
  put_u32 buf (String.length symbols);
  Buffer.add_string buf symbols;
  put_u64 buf n;
  let bits = Bioseq.Alphabet.bits alphabet in
  let packed = Bytes.make ((n * bits + 7) / 8) '\000' in
  Bioseq.Packed_seq.iteri (Spine.Index.sequence idx) ~f:(fun i code ->
      for b = 0 to bits - 1 do
        if code land (1 lsl (bits - 1 - b)) <> 0 then begin
          let pos = (i * bits) + b in
          let byte = pos / 8 and off = pos mod 8 in
          Bytes.set packed byte
            (Char.chr (Char.code (Bytes.get packed byte) lor (0x80 lsr off)))
        end
      done);
  put_u32 buf (Bytes.length packed);
  Buffer.add_bytes buf packed;
  for node = 1 to n do
    let dest, lel = Spine.Index.link idx node in
    put_u32 buf dest;
    put_u32 buf lel
  done;
  put_u32 buf (Spine.Fast_store.rib_count s);
  for node = 0 to n do
    Spine.Fast_store.fold_ribs s node ~init:() ~f:(fun () code dest pt ->
        put_u32 buf node;
        put_u8 buf code;
        put_u32 buf dest;
        put_u32 buf pt)
  done;
  put_u32 buf (Spine.Fast_store.extrib_count s);
  for node = 0 to n do
    match Spine.Fast_store.find_extrib s node with
    | None -> ()
    | Some (dest, pt, prt, anchor) ->
      put_u32 buf node;
      put_u32 buf dest;
      put_u32 buf pt;
      put_u32 buf prt;
      put_u32 buf anchor
  done;
  let body = Buffer.to_bytes buf in
  if version = 1 then body
  else begin
    let out = Bytes.create (Bytes.length body + 4) in
    Bytes.blit body 0 out 0 (Bytes.length body);
    let crc = Xutil.Crc32c.bytes body in
    for k = 0 to 3 do
      Bytes.set out
        (Bytes.length body + k)
        (Char.chr ((crc lsr (8 * k)) land 0xff))
    done;
    out
  end

let test_serialize_v1_compat () =
  let rng = Bioseq.Rng.create 405 in
  let seq = Bioseq.Synthetic.genomic dna (Bioseq.Rng.split rng) 400 in
  let idx = Spine.Index.of_seq seq in
  let v1 = legacy_image ~version:1 idx in
  let v2 = legacy_image ~version:2 idx in
  let check_parity tag loaded =
    Alcotest.(check int) (tag ^ " length") (Spine.Index.length idx)
      (Spine.Index.length loaded);
    for _ = 1 to 20 do
      let len = 3 + Bioseq.Rng.int rng 6 in
      let pos = Bioseq.Rng.int rng (400 - len) in
      let pat =
        Array.init len (fun j -> Bioseq.Packed_seq.get seq (pos + j))
      in
      Alcotest.(check (list int)) (tag ^ " query parity")
        (Spine.Index.occurrences idx pat)
        (Spine.Index.occurrences loaded pat)
    done
  in
  check_parity "v1" (Spine.Serialize.of_bytes v1);
  check_parity "v2" (Spine.Serialize.of_bytes v2);
  check_parity "v3" (Spine.Serialize.of_bytes (Spine.Serialize.to_bytes idx));
  (* flipping a v2 image's version byte to 1 must NOT bypass the CRC:
     the unconsumed trailer is rejected as trailing garbage *)
  let masquerade = Bytes.copy v2 in
  Bytes.set masquerade 4 '\001';
  (match Spine.Serialize.of_bytes masquerade with
   | _ -> Alcotest.fail "v2 image accepted as v1 (CRC bypassed)"
   | exception Spine_error.Error (Spine_error.Corrupt _) -> ());
  (* truncated v1 images still fail typed *)
  (match Spine.Serialize.of_bytes (Bytes.sub v1 0 (Bytes.length v1 - 3)) with
   | _ -> Alcotest.fail "truncated v1 image accepted"
   | exception Spine_error.Error (Spine_error.Corrupt _) -> ());
  (* versions beyond the current one are still rejected *)
  let future = Spine.Serialize.to_bytes idx in
  Bytes.set future 4 '\007';
  match Spine.Serialize.of_bytes future with
  | _ -> Alcotest.fail "future version accepted"
  | exception Spine_error.Error (Spine_error.Corrupt _) -> ()

(* --- seeded bit-flip trials over every written region ---------------- *)

let test_bitflip_trials () =
  let rng = Bioseq.Rng.create 404 in
  let seq = Bioseq.Synthetic.genomic dna (Bioseq.Rng.split rng) 600 in
  let oracle = Spine.Index.of_seq seq in
  (* region base pages (see lib/spine/persistent.ml) *)
  let meta_span = 16384 and data_span = 262144 in
  let base_of = function
    | "meta/slot-a" -> 0
    | "meta/slot-b" -> 4096
    | "meta/epoch" -> 2 * 4096
    | "lt" -> meta_span
    | "rt0" -> meta_span + (1 * data_span)
    | "rt1" -> meta_span + (2 * data_span)
    | "rt2" -> meta_span + (3 * data_span)
    | "rt3" -> meta_span + (4 * data_span)
    | "seq" -> meta_span + (5 * data_span)
    | "journal" -> meta_span + (6 * data_span)
    | r -> Alcotest.failf "unexpected region %S in scrub report" r
  in
  let build path =
    let p = P.create ~path dna in
    P.append_seq p seq;
    P.close p
  in
  (* learn the written extent from one clean build: the workload is
     deterministic, so every trial's file has the identical layout *)
  let candidates =
    with_tmp (fun path ->
        build path;
        let r = P.scrub ~path () in
        Alcotest.(check int) "clean build scrubs clean" 0
          (r.P.damaged_pages + r.P.stale_pages);
        Alcotest.(check bool) "clean build is a clean shutdown" true
          r.P.report_clean;
        List.concat_map
          (fun reg -> List.init reg.P.ok (fun i -> base_of reg.P.region + i))
          r.P.regions)
  in
  Alcotest.(check bool) "several written pages to attack" true
    (List.length candidates > 3);
  let candidates = Array.of_list candidates in
  let trials = 120 in
  for trial = 1 to trials do
    with_tmp (fun path ->
        build path;
        let page = candidates.(Bioseq.Rng.int rng (Array.length candidates)) in
        (* anywhere in the page except its 4 reserved (unchecksummed)
           trailer bytes *)
        let off = (page * phys_page) + Bioseq.Rng.int rng (4096 + 12) in
        flip_bit path off (1 lsl Bioseq.Rng.int rng 8);
        let r = P.scrub ~path () in
        if r.P.damaged_pages + r.P.stale_pages < 1 then
          Alcotest.failf "trial %d: bit flip on page %d invisible to scrub"
            trial page;
        (* and no silent lies: reopen + query must agree with the
           oracle or fail typed *)
        match P.open_ ~path () with
        | exception Spine_error.Error (Spine_error.Corrupt _) -> ()
        | exception e ->
          Alcotest.failf "trial %d: untyped exception on reopen: %s" trial
            (Printexc.to_string e)
        | p ->
          for _ = 1 to 5 do
            let len = 3 + Bioseq.Rng.int rng 6 in
            let pos = Bioseq.Rng.int rng (600 - len) in
            let pat =
              Array.init len (fun j -> Bioseq.Packed_seq.get seq (pos + j))
            in
            match P.occurrences p pat with
            | occs ->
              Alcotest.(check (list int))
                (Printf.sprintf "trial %d: query parity" trial)
                (Spine.Index.occurrences oracle pat)
                occs
            | exception Spine_error.Error (Spine_error.Corrupt _) -> ()
          done;
          (try P.close p with Spine_error.Error _ -> ()))
  done

(* --- typed pool exhaustion ------------------------------------------- *)

let test_pool_exhausted () =
  let dev = Pagestore.Device.create ~page_size:256 () in
  let pool = Pagestore.Buffer_pool.create ~frames:2 dev in
  match
    Pagestore.Buffer_pool.with_page pool 0 ~dirty:false (fun _ ->
        Pagestore.Buffer_pool.with_page pool 1 ~dirty:false (fun _ ->
            Pagestore.Buffer_pool.with_page pool 2 ~dirty:false (fun _ -> ())))
  with
  | () -> Alcotest.fail "third latch over two frames must fail"
  | exception Spine_error.Error (Spine_error.Pool_exhausted { frames; latched })
    ->
    Alcotest.(check int) "frames reported" 2 frames;
    Alcotest.(check int) "latched reported" 2 latched
  | exception e ->
    Alcotest.failf "wrong exception on exhaustion: %s" (Printexc.to_string e)

(* --- transient I/O retries ------------------------------------------- *)

let test_transient_retry () =
  let dev = Pagestore.Device.create ~checksums:true ~page_size:256 () in
  let pool = Pagestore.Buffer_pool.create ~frames:4 dev in
  Pagestore.Buffer_pool.with_page pool 3 ~dirty:true (fun b ->
      Bytes.set b 0 'x');
  Pagestore.Buffer_pool.flush pool;
  Pagestore.Buffer_pool.drop pool;
  (* two consecutive injected errors: inside the retry budget *)
  let f = FD.create [ FD.arm ~times:2 FD.Read_error ] in
  FD.attach f dev;
  let c = Pagestore.Buffer_pool.with_page pool 3 ~dirty:false (fun b ->
      Bytes.get b 0)
  in
  Alcotest.(check char) "read survives two transient errors" 'x' c;
  Alcotest.(check int) "both injected errors were consumed" 2
    (FD.stats f).FD.read_errors;
  (* a persistent error storm: the typed failure must escape *)
  Pagestore.Buffer_pool.drop pool;
  let f2 = FD.create [ FD.arm ~times:100 FD.Read_error ] in
  FD.attach f2 dev;
  (match
     Pagestore.Buffer_pool.with_page pool 3 ~dirty:false (fun b ->
         Bytes.get b 0)
   with
   | _ -> Alcotest.fail "unrecoverable read error swallowed"
   | exception Spine_error.Error (Spine_error.Io_failed { transient; _ }) ->
     Alcotest.(check bool) "error marked transient" true transient
   | exception e ->
     Alcotest.failf "wrong exception: %s" (Printexc.to_string e));
  FD.detach dev;
  (* after the storm clears, the pool still works *)
  let c2 = Pagestore.Buffer_pool.with_page pool 3 ~dirty:false (fun b ->
      Bytes.get b 0)
  in
  Alcotest.(check char) "pool usable after failed read" 'x' c2

(* --- torn metadata write: shadow-slot fallback ----------------------- *)

let test_torn_metadata () =
  with_tmp (fun path ->
      let p = P.create ~path dna in
      P.append_string p "acgtacgtacgtacgt";
      P.flush p;  (* generation 1 -> slot B, intact *)
      (* tear the next metadata write (generation 2 -> slot A pages) *)
      let f = FD.create [ FD.arm ~pages:(0, 4095) (FD.Torn_write 80) ] in
      FD.attach f (P.device p);
      P.close p;
      Alcotest.(check bool) "torn write froze the image" true (FD.frozen f);
      Alcotest.(check int) "exactly one torn write" 1
        (FD.stats f).FD.torn_writes;
      (* scrub sees the torn slot page and still identifies the good
         generation *)
      let r = P.scrub ~path () in
      Alcotest.(check int) "scrub recovers the flushed generation" 1
        r.P.report_generation;
      Alcotest.(check bool) "torn page flagged as damage" true
        (r.P.damaged_pages >= 1);
      (match List.assoc_opt 0 r.P.slots with
       | Some (P.Slot_invalid _) -> ()
       | _ -> Alcotest.fail "torn slot A not reported invalid");
      (match List.assoc_opt 1 r.P.slots with
       | Some (P.Slot_valid { generation = 1; _ }) -> ()
       | _ -> Alcotest.fail "slot B should hold valid generation 1");
      (* reopen falls back to the flushed generation *)
      let p2 = P.open_ ~path () in
      Alcotest.(check int) "fell back to generation 1" 1 (P.generation p2);
      Alcotest.(check int) "flushed length recovered" 16 (P.length p2);
      Alcotest.(check bool) "flushed content queryable" true
        (P.contains p2 "gtacgtacgt");
      P.close p2;
      (* the repaired commit overwrites the torn slot *)
      let r2 = P.scrub ~path () in
      Alcotest.(check int) "damage gone after a fresh commit" 0
        r2.P.damaged_pages)

(* --- the SPINE_FAULTS environment grammar ---------------------------- *)

let test_env_faults () =
  (match FD.parse "seed=7;flip:after=3;read_error:page=0-16:times=2" with
   | Ok f -> Alcotest.(check int) "seed parsed" 7 (FD.seed f)
   | Error e -> Alcotest.failf "valid spec rejected: %s" e);
  (match FD.parse "torn:keep=100;crash:after=9" with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "valid spec rejected: %s" e);
  List.iter
    (fun bad ->
      match FD.parse bad with
      | Ok _ -> Alcotest.failf "malformed spec %S accepted" bad
      | Error _ -> ())
    [ "bogus"; "seed=x"; "flip:page="; "torn:keep=nope"; "crash:wat=1"
    ; "read_error:page=9-3"; "torn:keep=-1"; "flip:after=-2"
    ; "crash:times=-1"; "read_error:page=-3" ];
  (* a plan armed purely through the environment corrupts a build, and
     scrub catches it *)
  Unix.putenv FD.env_var "seed=11;flip:after=2";
  Fun.protect
    ~finally:(fun () -> Unix.putenv FD.env_var "")
    (fun () ->
      with_tmp (fun path ->
          let p = P.create ~path dna in
          P.append_string p "acgtacgtacgtacgtacgtacgt";
          P.close p;
          Unix.putenv FD.env_var "";  (* scrub itself runs fault-free *)
          let r = P.scrub ~path () in
          if r.P.damaged_pages + r.P.stale_pages < 1 then
            Alcotest.fail "environment-armed bit flip invisible to scrub"))

(* --- concurrent read-only queries ------------------------------------ *)

let test_parallel_queries () =
  (* read-only queries never mutate the index, so concurrent domains
     must all see correct answers *)
  let rng = Bioseq.Rng.create 402 in
  let seq = Bioseq.Synthetic.genomic dna (Bioseq.Rng.split rng) 20_000 in
  let idx = Spine.Index.of_seq seq in
  let queries =
    Array.init 64 (fun _ ->
        let len = 3 + Bioseq.Rng.int rng 10 in
        let pos = Bioseq.Rng.int rng (20_000 - len) in
        Array.init len (fun k -> Bioseq.Packed_seq.get seq (pos + k)))
  in
  let expected = Array.map (fun q -> Spine.Index.occurrences idx q) queries in
  let worker seed () =
    let r = Bioseq.Rng.create seed in
    let ok = ref true in
    for _ = 1 to 300 do
      let i = Bioseq.Rng.int r (Array.length queries) in
      if Spine.Index.occurrences idx queries.(i) <> expected.(i) then
        ok := false
    done;
    !ok
  in
  let domains = List.init 4 (fun d -> Domain.spawn (worker (500 + d))) in
  List.iteri
    (fun d dom ->
      Alcotest.(check bool) (Printf.sprintf "domain %d" d) true
        (Domain.join dom))
    domains

let suite =
  [ Alcotest.test_case "serializer fuzz: corrupt input fails loudly" `Quick
      test_serializer_fuzz
  ; Alcotest.test_case "crash-point recovery matrix" `Quick test_crash_matrix
  ; Alcotest.test_case "crash-point matrix under eviction pressure" `Quick
      test_crash_matrix_evictions
  ; Alcotest.test_case "eviction overwrite of committed pages + crash" `Quick
      test_eviction_overwrite_recovery
  ; Alcotest.test_case "failed metadata write does not burn a generation"
      `Quick test_flush_retry_generation
  ; Alcotest.test_case "snapshot v1 back-compat (and no CRC bypass)" `Quick
      test_serialize_v1_compat
  ; Alcotest.test_case "seeded bit-flip trials: scrub + query safety" `Quick
      test_bitflip_trials
  ; Alcotest.test_case "typed pool exhaustion" `Quick test_pool_exhausted
  ; Alcotest.test_case "transient I/O errors are retried" `Quick
      test_transient_retry
  ; Alcotest.test_case "torn metadata write falls back to the shadow slot"
      `Quick test_torn_metadata
  ; Alcotest.test_case "SPINE_FAULTS grammar and auto-arming" `Quick
      test_env_faults
  ; Alcotest.test_case "concurrent read-only queries across domains" `Quick
      test_parallel_queries
  ]
