(* SPINE is "general in its applicability" (Section 5): index plain
   text over the byte alphabet — here, this repository's own README —
   and drive the streaming cursor the way a database LIKE-operator
   would, feeding characters one at a time.

     dune exec examples/text_search.exe
*)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let () =
  let path =
    (* run from the repo root via dune exec; fall back to a built-in
       snippet elsewhere *)
    if Sys.file_exists "README.md" then "README.md"
    else if Sys.file_exists "../README.md" then "../README.md"
    else ""
  in
  let text =
    if path = "" then
      "SPINE consists of a backbone formed by a linear chain of nodes \
       representing the underlying string, with the nodes connected by \
       a rich set of edges for fast forward and backward traversals."
    else read_file path
  in
  let idx = Spine.Index.of_string Bioseq.Alphabet.byte text in
  Printf.printf "indexed %s (%d bytes) -> %d nodes\n"
    (if path = "" then "built-in snippet" else path)
    (String.length text) (Spine.Index.node_count idx);

  (* word queries through the plain API *)
  List.iter
    (fun word ->
      let codes =
        Array.init (String.length word) (fun i -> Char.code word.[i])
      in
      Printf.printf "%-12s %d occurrence(s)\n" word
        (List.length (Spine.Index.occurrences idx codes)))
    [ "SPINE"; "suffix"; "backbone"; "zebra" ];

  (* streaming: feed a noisy "query document" through the cursor and
     report the longest region it shares with the indexed text — no
     per-character restart from the root *)
  let query = "the paper's backbone formed by a linear chain of springs" in
  let cursor = Spine.Cursor.create idx in
  let best = ref (0, 0) in
  String.iteri
    (fun i ch ->
      Spine.Cursor.longest_extension cursor (Char.code ch);
      let len = Spine.Cursor.length cursor in
      if len > fst !best then best := (len, i))
    query;
  let len, at = !best in
  Printf.printf
    "longest shared region with %S: %d chars, ending at query offset %d:\n"
    query len at;
  Printf.printf "  %S\n" (String.sub query (at - len + 1) len);
  (match
     (* reposition the cursor on that best match to list where it is in
        the text *)
     let c2 = Spine.Cursor.create idx in
     String.iter
       (fun ch -> ignore (Spine.Cursor.advance_char c2 ch))
       (String.sub query (at - len + 1) len);
     Spine.Cursor.occurrences c2
   with
   | [] -> ()
   | ps ->
     Printf.printf "  found in the text at byte offset(s): %s\n"
       (String.concat ", " (List.map string_of_int ps)))
