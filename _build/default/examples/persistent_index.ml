(* A SPINE index that lives in a file: build it, close the process'
   state away, reopen, query, and keep appending — the disk-resident
   deployment of the paper's Section 6.2, with real durability.

     dune exec examples/persistent_index.exe
*)

let () =
  let path = Filename.temp_file "spine_demo" ".db" in
  let rng = Bioseq.Rng.create 31 in
  let genome = Bioseq.Synthetic.genomic Bioseq.Alphabet.dna rng 60_000 in

  (* session 1: build with a modest buffer pool and close *)
  let p =
    Spine.Persistent.create ~frames:64 ~pin_top_lt_pages:8 ~path
      Bioseq.Alphabet.dna
  in
  Spine.Persistent.append_seq p genome;
  Printf.printf "built %d bp into %s (%.2f B/char on disk)\n"
    (Spine.Persistent.length p) path (Spine.Persistent.bytes_per_char p);
  let pool_stats = Pagestore.Buffer_pool.stats (Spine.Persistent.pool p) in
  Printf.printf "construction: %d pool hits, %d misses, %d evictions\n"
    pool_stats.Pagestore.Buffer_pool.hits pool_stats.Pagestore.Buffer_pool.misses
    pool_stats.Pagestore.Buffer_pool.evictions;
  Spine.Persistent.close p;
  Printf.printf "closed; file size %d bytes (sparse)\n"
    (let ic = open_in_bin path in
     let n = in_channel_length ic in
     close_in ic; n);

  (* session 2: reopen and query without rebuilding anything *)
  let p = Spine.Persistent.open_ ~frames:64 ~path () in
  let probe = Array.init 14 (fun i -> Bioseq.Packed_seq.get genome (25_000 + i)) in
  Printf.printf "reopened: %d bp; probe 14-mer found at %s\n"
    (Spine.Persistent.length p)
    (String.concat ", "
       (List.map string_of_int (Spine.Persistent.occurrences p probe)));

  (* and it is still an online index *)
  Spine.Persistent.append_string p "acgtacgtacgtacgt";
  Printf.printf "appended 16 bp online; new length %d; new content found: %b\n"
    (Spine.Persistent.length p)
    (Spine.Persistent.contains p "acgtacgtacgtacgt");
  Spine.Persistent.close p;
  Sys.remove path
