examples/disk_index.mli:
