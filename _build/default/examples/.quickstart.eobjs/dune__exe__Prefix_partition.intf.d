examples/prefix_partition.mli:
