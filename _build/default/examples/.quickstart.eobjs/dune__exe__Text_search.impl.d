examples/text_search.ml: Array Bioseq Char List Printf Spine String Sys
