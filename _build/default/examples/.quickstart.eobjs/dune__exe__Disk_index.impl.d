examples/disk_index.ml: Array Bioseq List Pagestore Printf Spine
