examples/genome_alignment.mli:
