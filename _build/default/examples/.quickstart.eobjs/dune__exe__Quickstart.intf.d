examples/quickstart.mli:
