examples/persistent_index.ml: Array Bioseq Filename List Pagestore Printf Spine String Sys
