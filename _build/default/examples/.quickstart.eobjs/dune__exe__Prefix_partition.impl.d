examples/prefix_partition.ml: Array Bioseq Filename Printf Spine Sys
