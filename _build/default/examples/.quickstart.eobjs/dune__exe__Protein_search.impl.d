examples/protein_search.ml: Array Bioseq List Printf Spine String
