examples/genome_alignment.ml: Align Bioseq List Printf
