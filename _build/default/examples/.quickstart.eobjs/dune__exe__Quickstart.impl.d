examples/quickstart.ml: Array Bioseq List Printf Spine String
