(* Disk-resident SPINE: build an index through a bounded buffer pool
   over a simulated synchronous disk (the paper's Section 6.2 set-up)
   and study the I/O behaviour of construction and search.

     dune exec examples/disk_index.exe
*)

let pr_device label d =
  let s = Pagestore.Device.stats d in
  Printf.printf "  %-14s %6d reads  %6d writes  (%d sequential)  ~%.2f s simulated\n"
    label s.Pagestore.Device.reads s.Pagestore.Device.writes
    s.Pagestore.Device.sequential (s.Pagestore.Device.elapsed_us /. 1e6)

let pr_pool label p =
  let s = Pagestore.Buffer_pool.stats p in
  let total = s.Pagestore.Buffer_pool.hits + s.Pagestore.Buffer_pool.misses in
  Printf.printf "  %-14s %d hits / %d accesses (%.1f%% hit rate), %d evictions\n"
    label s.Pagestore.Buffer_pool.hits total
    (100.0 *. float_of_int s.Pagestore.Buffer_pool.hits
     /. float_of_int (max 1 total))
    s.Pagestore.Buffer_pool.evictions

let () =
  let rng = Bioseq.Rng.create 7 in
  let genome = Bioseq.Synthetic.genomic Bioseq.Alphabet.dna rng 120_000 in
  Printf.printf "genome: %d bp\n" (Bioseq.Packed_seq.length genome);

  (* a pool holding roughly a third of the Link Table, with the paper's
     pin-the-top policy *)
  let lt_pages = Bioseq.Packed_seq.length genome * 8 / 4096 in
  let config =
    { Spine.Disk.default_config with
      Spine.Disk.frames = max 16 (lt_pages / 3);
      pin_top_lt_pages = max 4 (lt_pages / 10) }
  in
  Printf.printf "buffer pool: %d frames of %d B, top %d LT pages pinned\n"
    config.Spine.Disk.frames config.Spine.Disk.page_size
    config.Spine.Disk.pin_top_lt_pages;

  let d = Spine.Disk.build ~config genome in
  print_endline "construction I/O:";
  pr_device "device" d.Spine.Disk.device;
  pr_pool "pool" d.Spine.Disk.pool;

  (* cold search: drop the pool, then query *)
  Spine.Disk.reset_io d;
  let pattern =
    Array.init 12 (fun i -> Bioseq.Packed_seq.get genome (50_000 + i))
  in
  let occs = Spine.Compact.occurrences d.Spine.Disk.index pattern in
  Printf.printf "cold search for a 12-mer: %d occurrence(s)\n"
    (List.length occs);
  print_endline "search I/O:";
  pr_device "device" d.Spine.Disk.device;
  pr_pool "pool" d.Spine.Disk.pool;
  Printf.printf "simulated search latency: %.3f s\n"
    (Spine.Disk.simulated_seconds d)
