(* Whole-genome alignment skeleton, the paper's motivating application
   (Section 1 cites MUMmer): find maximal matches between a reference
   genome and a diverged relative, filter to unique anchors, and chain
   them into an alignment backbone.

     dune exec examples/genome_alignment.exe
*)

let () =
  let rng = Bioseq.Rng.create 2024 in

  (* a 200 kb synthetic reference and a relative at ~8 % divergence *)
  let reference =
    Bioseq.Synthetic.genomic Bioseq.Alphabet.dna (Bioseq.Rng.split rng) 200_000
  in
  let query = Bioseq.Synthetic.mutate ~rate:0.08 (Bioseq.Rng.split rng) reference in
  Printf.printf "reference: %d bp, query: %d bp (~8%% divergence)\n"
    (Bioseq.Packed_seq.length reference) (Bioseq.Packed_seq.length query);

  let threshold = 24 in
  let chained, summary =
    Align.align ~engine:`Spine ~threshold reference query
  in
  Printf.printf
    "anchors >= %d bp: %d  |  unique (MUMs): %d  |  chained: %d\n"
    threshold summary.Align.anchors summary.Align.unique summary.Align.chained;
  Printf.printf "chained bases: %d (%.1f%% of the query)\n"
    summary.Align.chained_bases (100.0 *. summary.Align.coverage);

  (* show the first few chain segments *)
  List.iteri
    (fun i { Align.ref_pos; query_pos; len } ->
      if i < 8 then
        Printf.printf "  segment %d: ref %7d..%7d  =  query %7d..%7d (%d bp)\n"
          i ref_pos (ref_pos + len - 1) query_pos (query_pos + len - 1) len)
    chained;
  if List.length chained > 8 then
    Printf.printf "  ... and %d more segments\n" (List.length chained - 8);

  (* the two engines must agree anchor-for-anchor *)
  let spine_anchors =
    Align.maximal_match_anchors ~engine:`Spine ~threshold reference query
  in
  let st_anchors =
    Align.maximal_match_anchors ~engine:`Suffix_tree ~threshold reference query
  in
  Printf.printf "engine parity: SPINE %d anchors, suffix tree %d anchors -> %s\n"
    (List.length spine_anchors) (List.length st_anchors)
    (if spine_anchors = st_anchors then "identical" else "MISMATCH")
