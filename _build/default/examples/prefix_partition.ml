(* Online construction and prefix-partitionability — the two structural
   properties the paper highlights in Section 1: SPINE grows only at
   the tail, so (a) the index is usable after every appended character
   and (b) the index of a prefix is literally the initial fragment of
   the index. Also demonstrates serialization round-trips.

     dune exec examples/prefix_partition.exe
*)

let () =
  let rng = Bioseq.Rng.create 5 in
  let dna = Bioseq.Alphabet.dna in
  let stream = Bioseq.Synthetic.genomic dna rng 50_000 in

  (* online: feed characters one by one, querying as we go *)
  let idx = Spine.Index.create dna in
  let probe = Array.init 8 (fun i -> Bioseq.Packed_seq.get stream i) in
  let first_hit = ref (-1) in
  Bioseq.Packed_seq.iteri stream ~f:(fun pos code ->
      Spine.Index.append idx code;
      if !first_hit < 0 && pos >= 7 then
        if Spine.Index.contains_codes idx probe then first_hit := pos);
  Printf.printf
    "online build of %d bp; the first 8-mer became queryable after \
     character %d (no rebuild, no batch step)\n"
    (Spine.Index.length idx) !first_hit;

  (* prefix partitioning: the index of the first half is the first half
     of the index *)
  let half = Spine.Index.length idx / 2 in
  let prefix_seq =
    Bioseq.Packed_seq.of_string dna
      (Bioseq.Packed_seq.sub_string stream ~pos:0 ~len:half)
  in
  let prefix_idx = Spine.Index.of_seq prefix_seq in
  let agree = ref true in
  for node = 1 to half do
    if Spine.Index.link prefix_idx node <> Spine.Index.link idx node then
      agree := false
  done;
  Printf.printf
    "links of the %d-node prefix index == first %d links of the full \
     index: %b\n"
    half half !agree;

  (* a suffix tree cannot be truncated this way: node creation order is
     not logical order. SPINE's property falls out of tail-only growth. *)

  (* serialization round-trip *)
  let tmp = Filename.temp_file "spine" ".idx" in
  Spine.Serialize.to_file tmp idx;
  let loaded = Spine.Serialize.of_file tmp in
  let pat = Array.init 10 (fun i -> Bioseq.Packed_seq.get stream (1000 + i)) in
  Printf.printf "serialized to %s (%d bytes); reloaded index agrees on a \
                 10-mer query: %b\n"
    tmp (let ic = open_in_bin tmp in let n = in_channel_length ic in
         close_in ic; n)
    (Spine.Index.occurrences idx pat = Spine.Index.occurrences loaded pat);
  Sys.remove tmp
