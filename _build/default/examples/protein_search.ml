(* Protein strings (Section 5.2): index several synthetic proteomes in
   ONE generalized SPINE index and search motifs across all of them.

     dune exec examples/protein_search.exe
*)

let () =
  let rng = Bioseq.Rng.create 99 in
  let protein = Bioseq.Alphabet.protein in

  (* three small synthetic proteomes *)
  let make n = Bioseq.Synthetic.genomic protein (Bioseq.Rng.split rng) n in
  let proteomes =
    [ ("ecoli-like", make 30_000);
      ("yeast-like", make 50_000);
      ("fly-like", make 40_000) ]
  in

  let g = Spine.Generalized.create protein in
  List.iter
    (fun (name, seq) -> ignore (Spine.Generalized.add g ~name seq))
    proteomes;
  Printf.printf "generalized index over %d proteomes, %d residues total\n"
    (Spine.Generalized.count g)
    (Spine.Index.length (Spine.Generalized.index g));

  (* pull a real motif out of one proteome and search across all *)
  let _, yeast = List.nth proteomes 1 in
  let motif = Array.init 6 (fun i -> Bioseq.Packed_seq.get yeast (12_345 + i)) in
  let motif_str =
    String.init 6 (fun i -> Bioseq.Alphabet.decode protein motif.(i))
  in
  let hits = Spine.Generalized.occurrences g motif in
  Printf.printf "motif %s occurs %d time(s):\n" motif_str (List.length hits);
  List.iteri
    (fun i { Spine.Generalized.string_id; pos } ->
      if i < 10 then
        Printf.printf "  %-12s position %d\n"
          (Spine.Generalized.name g string_id) pos)
    hits;

  (* Section 5.2's structural observations on protein strings *)
  let idx = Spine.Generalized.index g in
  let m = Spine.Index.label_maxima idx in
  let dist = Spine.Index.rib_distribution idx in
  let total = Array.fold_left ( + ) 0 dist in
  Printf.printf
    "label maxima: PT %d, LEL %d (far below the 2-byte limit)\n"
    m.Spine.Index.max_pt m.Spine.Index.max_lel;
  Printf.printf "nodes with downstream edges: %.1f%% (paper: under 30%%)\n"
    (100.0 *. float_of_int (total - dist.(0)) /. float_of_int total)
