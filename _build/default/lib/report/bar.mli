(** ASCII bar series for the reproduced figures.

    The paper's figures are bar/line charts; the harness renders each as
    a labelled horizontal bar series so the shape (ordering, rough
    ratios, monotone decay) is visible directly in terminal output. *)

val print :
  ?title:string -> ?unit_label:string -> (string * float) list -> unit
(** One bar per (label, value); bars are scaled to the maximum value. *)

val print_grouped :
  ?title:string -> ?unit_label:string ->
  group_names:string * string ->
  (string * float * float) list -> unit
(** Two bars per row, for side-by-side comparisons such as SPINE vs ST. *)
