lib/report/bar.mli:
