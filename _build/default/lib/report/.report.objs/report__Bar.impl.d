lib/report/bar.ml: List Printf String
