lib/report/table.mli:
