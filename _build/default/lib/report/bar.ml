let bar_width = 44

let render_bar value vmax =
  let w =
    if vmax <= 0.0 then 0
    else int_of_float (float_of_int bar_width *. value /. vmax +. 0.5)
  in
  String.make (max 0 (min bar_width w)) '#'

let print ?title ?(unit_label = "") series =
  (match title with
   | Some t ->
     print_newline ();
     print_endline t;
     print_endline (String.make (String.length t) '-')
   | None -> ());
  let vmax = List.fold_left (fun acc (_, v) -> max acc v) 0.0 series in
  let lwidth =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 series
  in
  List.iter
    (fun (label, v) ->
      Printf.printf "  %-*s | %-*s %.3g %s\n" lwidth label bar_width
        (render_bar v vmax) v unit_label)
    series

let print_grouped ?title ?(unit_label = "") ~group_names series =
  (match title with
   | Some t ->
     print_newline ();
     print_endline t;
     print_endline (String.make (String.length t) '-')
   | None -> ());
  let na, nb = group_names in
  let vmax =
    List.fold_left (fun acc (_, a, b) -> max acc (max a b)) 0.0 series
  in
  let lwidth =
    List.fold_left (fun acc (l, _, _) -> max acc (String.length l))
      (max (String.length na) (String.length nb))
      series
  in
  List.iter
    (fun (label, a, b) ->
      Printf.printf "  %-*s %-*s | %-*s %.3g %s\n" lwidth label lwidth na
        bar_width (render_bar a vmax) a unit_label;
      Printf.printf "  %-*s %-*s | %-*s %.3g %s\n" lwidth "" lwidth nb
        bar_width (render_bar b vmax) b unit_label)
    series
