let is_numeric s =
  s <> ""
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || String.contains "+-.,%xKMG" c)
       s

let print ?title ?note ~headers rows =
  let all = headers :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let render_row row =
    let cells =
      List.mapi
        (fun c w ->
          let cell = Option.value ~default:"" (List.nth_opt row c) in
          if is_numeric cell && c > 0 then
            Printf.sprintf "%*s" w cell
          else Printf.sprintf "%-*s" w cell)
        widths
    in
    print_endline ("  " ^ String.concat "  " cells)
  in
  (match title with
   | Some t ->
     print_newline ();
     print_endline t;
     print_endline (String.make (String.length t) '-')
   | None -> ());
  render_row headers;
  render_row (List.map (fun w -> String.make w '-') widths);
  List.iter render_row rows;
  (match note with
   | Some n -> print_endline ("  " ^ n)
   | None -> ())

let fmt_float ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v

let fmt_pct v = Printf.sprintf "%.1f%%" (100.0 *. v)

let fmt_int v =
  let s = string_of_int (abs v) in
  let n = String.length s in
  let buf = Buffer.create (n + (n / 3)) in
  if v < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (n - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf
