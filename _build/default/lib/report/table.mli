(** Fixed-width text tables for the experiment harness.

    Every reproduced paper table is printed through this module so the
    output of [bench/main.exe] lines up visually with the paper's own
    tables in EXPERIMENTS.md. *)

val print :
  ?title:string -> ?note:string -> headers:string list ->
  string list list -> unit
(** Render rows under right-padded headers; numeric-looking cells are
    right-aligned. [note] prints beneath the table. *)

val fmt_float : ?decimals:int -> float -> string
val fmt_pct : float -> string
(** [fmt_pct 0.153] is ["15.3%"]. *)

val fmt_int : int -> string
(** Thousands-separated: [fmt_int 3500000 = "3,500,000"]. *)
