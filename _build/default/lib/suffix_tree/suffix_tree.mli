(** Suffix tree baseline (the paper's "ST").

    A vertically-compacted suffix trie built online with Ukkonen's
    algorithm, including the suffix links that the paper's search
    comparison (Section 4.1) depends on.  The paper used MUMmer's
    industrial-strength implementation; this module provides the same
    algorithmic content — linear-time online construction, suffix-link
    driven matching statistics, subtree occurrence enumeration — in an
    array-based layout comparable to SPINE's.

    {2 Access tracing}

    Both this index and SPINE accept an optional [trace] callback invoked
    on every logical node-record access ([~structure:0 ~index:node
    ~write]).  The disk experiments (Figure 7, Table 7) route these
    traces through a {!Pagestore.Buffer_pool}, reproducing the paper's
    methodology of measuring each structure's locality on a synchronous
    disk rather than its CPU cost. *)

type t

type trace = structure:int -> index:int -> write:bool -> unit

val build : ?trace:trace -> Bioseq.Packed_seq.t -> t
(** Build the suffix tree of the whole sequence (with a unique virtual
    terminator, so every suffix ends at a leaf). *)

val of_string : ?trace:trace -> Bioseq.Alphabet.t -> string -> t

val sequence : t -> Bioseq.Packed_seq.t

(** {2 Structure metrics} *)

val node_count : t -> int
(** All nodes: root + internal + leaves.  Up to [2n + 1], the paper's
    "number of nodes may go up to double the length of the string". *)

val internal_count : t -> int
val leaf_count : t -> int

val model_bytes_per_char : t -> float
(** Space model: bytes per indexed character of a MUMmer-era C layout
    (16-byte internal nodes, 4-byte leaf entries). Lands near the
    17 bytes/char the paper quotes for standard suffix tree
    implementations; used by the memory-budget experiment of
    Figure 6. *)

(** {2 Search} *)

val contains : t -> string -> bool

val contains_codes : t -> int array -> bool

val find_codes : t -> int array -> (int * int) option
(** Locus of a pattern: [(node, below)]. When [below = 0] the match ends
    exactly at [node]; otherwise it ends [below] characters into the
    edge label entering [node]. [None] if the pattern is not a
    substring. *)

val occurrences : t -> int array -> int list
(** Sorted starting positions of every occurrence of the pattern,
    obtained by enumerating the leaves under the pattern's locus. *)

val first_occurrence : t -> int array -> int option
(** Smallest starting position, [None] if absent. *)

(** {2 Matching statistics & maximal matches} *)

type match_stats = {
  nodes_checked : int;
  (** nodes examined while walking edges and following suffix links —
      the paper's Table 6 metric *)
  suffixes_checked : int;
  (** suffix-link follows, i.e. individual suffix candidates tested on
      mismatch (SPINE processes these "on a set basis", ST one by one) *)
}

val matching_statistics :
  ?trace:trace -> t -> Bioseq.Packed_seq.t -> int array * match_stats
(** [matching_statistics t q] returns [ms] where [ms.(i)] is the length
    of the longest substring of the indexed string ending at query
    position [i] (inclusive), computed with the suffix-link walk. *)

type mmatch = {
  query_end : int;     (** 0-based inclusive end position in the query *)
  length : int;        (** length of the matching substring *)
  data_ends : int list;
  (** 0-based inclusive end positions of every occurrence in the data
      string, ascending — the "including repetitions" part of the
      paper's matching operation *)
}

val maximal_matches :
  ?trace:trace -> t -> threshold:int -> Bioseq.Packed_seq.t ->
  mmatch list * match_stats
(** The paper's Section 4 matching operation: all right-maximal matching
    substrings of length >= [threshold] between the indexed string and
    the query, with all their data-side occurrences.  A match is
    reported at query position [i] when the matching-statistics value
    cannot be extended by the next query character (or the query ends),
    exactly the paper's "as soon as the first mismatch is found, the
    length matched till now is reported". *)

val raw_bytes_per_char : t -> float
(** Bytes per character of this OCaml implementation's own node layout
    (six 4-byte fields per node), for the honest-accounting ablation. *)
