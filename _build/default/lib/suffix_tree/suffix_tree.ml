module Int_vec = Xutil.Int_vec

type trace = structure:int -> index:int -> write:bool -> unit

(* Per-node record fields, one growable vector each. Edge into node [v]
   is codes[start.(v) .. start.(v) + elen.(v) - 1]; leaves use an
   "infinite" elen that is clamped against the current end. *)
type t = {
  seq : Bioseq.Packed_seq.t;
  codes : int array;            (* data codes plus terminator *)
  n : int;                      (* data length, excluding terminator *)
  start : Int_vec.t;
  elen : Int_vec.t;
  slink : Int_vec.t;
  child : Int_vec.t;            (* first child, -1 = none *)
  sibling : Int_vec.t;          (* next sibling, -1 = none *)
  leafpos : Int_vec.t;          (* suffix start for leaves, -1 internal *)
  mutable internal_nodes : int;
  mutable leaves : int;
  trace : trace option;
}

let inf = max_int / 4
let root = 0

let touch t ~index ~write =
  match t.trace with
  | None -> ()
  | Some f -> f ~structure:0 ~index ~write

let new_node t ~start ~elen ~leafpos =
  let v = Int_vec.length t.start in
  Int_vec.push t.start start;
  Int_vec.push t.elen elen;
  Int_vec.push t.slink root;
  Int_vec.push t.child (-1);
  Int_vec.push t.sibling (-1);
  Int_vec.push t.leafpos leafpos;
  if leafpos >= 0 then t.leaves <- t.leaves + 1
  else t.internal_nodes <- t.internal_nodes + 1;
  touch t ~index:v ~write:true;
  v

let edge_length t v ~pos =
  min (Int_vec.get t.elen v) (pos + 1 - Int_vec.get t.start v)

let first_code t v = t.codes.(Int_vec.get t.start v)

(* Walk the sibling chain of [v]'s children looking for the child whose
   edge starts with [c]. Fanout is bounded by the alphabet size. *)
let find_child t v c =
  touch t ~index:v ~write:false;
  let rec go u =
    if u < 0 then -1
    else begin
      touch t ~index:u ~write:false;
      if first_code t u = c then u else go (Int_vec.get t.sibling u)
    end
  in
  go (Int_vec.get t.child v)

let add_child t v u =
  Int_vec.set t.sibling u (Int_vec.get t.child v);
  Int_vec.set t.child v u;
  touch t ~index:v ~write:true;
  touch t ~index:u ~write:true

(* Replace child [old_u] of [v] by [new_u] in place in the sibling
   chain. *)
let replace_child t v old_u new_u =
  touch t ~index:v ~write:true;
  if Int_vec.get t.child v = old_u then Int_vec.set t.child v new_u
  else begin
    let rec go u =
      if u < 0 then assert false
      else if Int_vec.get t.sibling u = old_u then begin
        Int_vec.set t.sibling u new_u;
        touch t ~index:u ~write:true
      end
      else go (Int_vec.get t.sibling u)
    in
    go (Int_vec.get t.child v)
  end;
  Int_vec.set t.sibling new_u (Int_vec.get t.sibling old_u)

type ukk_state = {
  mutable active_node : int;
  mutable active_edge : int;    (* index into codes *)
  mutable active_len : int;
  mutable remainder : int;
  mutable need_slink : int;     (* pending suffix-link source, -1 none *)
}

let set_slink t st v =
  if st.need_slink > 0 then begin
    Int_vec.set t.slink st.need_slink v;
    touch t ~index:st.need_slink ~write:true
  end;
  st.need_slink <- v

let extend t st pos =
  let c = t.codes.(pos) in
  st.need_slink <- -1;
  st.remainder <- st.remainder + 1;
  let continue = ref true in
  while !continue && st.remainder > 0 do
    if st.active_len = 0 then st.active_edge <- pos;
    let nxt = find_child t st.active_node t.codes.(st.active_edge) in
    let stepped =
      if nxt < 0 then begin
        let leaf =
          new_node t ~start:pos ~elen:inf ~leafpos:(pos - st.remainder + 1)
        in
        add_child t st.active_node leaf;
        set_slink t st st.active_node;
        true
      end
      else begin
        let el = edge_length t nxt ~pos in
        if st.active_len >= el then begin
          (* walk down: the active point lies beyond this edge *)
          st.active_edge <- st.active_edge + el;
          st.active_len <- st.active_len - el;
          st.active_node <- nxt;
          false
        end
        else if t.codes.(Int_vec.get t.start nxt + st.active_len) = c then begin
          (* the character is already present: rule 3, stop early *)
          st.active_len <- st.active_len + 1;
          set_slink t st st.active_node;
          continue := false;
          false
        end
        else begin
          (* split the edge and hang a fresh leaf off the split node *)
          let split =
            new_node t ~start:(Int_vec.get t.start nxt) ~elen:st.active_len
              ~leafpos:(-1)
          in
          replace_child t st.active_node nxt split;
          let leaf =
            new_node t ~start:pos ~elen:inf ~leafpos:(pos - st.remainder + 1)
          in
          Int_vec.set t.child split leaf;
          Int_vec.set t.sibling leaf (-1);
          Int_vec.set t.start nxt (Int_vec.get t.start nxt + st.active_len);
          if Int_vec.get t.elen nxt < inf then
            Int_vec.set t.elen nxt (Int_vec.get t.elen nxt - st.active_len);
          Int_vec.set t.sibling nxt (Int_vec.get t.child split);
          Int_vec.set t.child split nxt;
          touch t ~index:split ~write:true;
          touch t ~index:nxt ~write:true;
          set_slink t st split;
          true
        end
      end
    in
    if !continue && stepped then begin
      st.remainder <- st.remainder - 1;
      if st.active_node = root && st.active_len > 0 then begin
        st.active_len <- st.active_len - 1;
        st.active_edge <- pos - st.remainder + 1
      end
      else if st.active_node <> root then begin
        st.active_node <- Int_vec.get t.slink st.active_node;
        touch t ~index:st.active_node ~write:false
      end
    end
  done

let build ?trace seq =
  let n = Bioseq.Packed_seq.length seq in
  let alphabet = Bioseq.Packed_seq.alphabet seq in
  let codes =
    Array.init (n + 1) (fun i ->
        if i = n then Bioseq.Alphabet.separator alphabet
        else Bioseq.Packed_seq.get seq i)
  in
  let t =
    { seq; codes; n;
      start = Int_vec.create ~capacity:1024 ();
      elen = Int_vec.create ~capacity:1024 ();
      slink = Int_vec.create ~capacity:1024 ();
      child = Int_vec.create ~capacity:1024 ();
      sibling = Int_vec.create ~capacity:1024 ();
      leafpos = Int_vec.create ~capacity:1024 ();
      internal_nodes = 0; leaves = 0; trace }
  in
  let r = new_node t ~start:(-1) ~elen:0 ~leafpos:(-1) in
  assert (r = root);
  t.internal_nodes <- 0;  (* do not count the root as internal *)
  let st =
    { active_node = root; active_edge = 0; active_len = 0;
      remainder = 0; need_slink = -1 }
  in
  for pos = 0 to n do extend t st pos done;
  t

let of_string ?trace alphabet s = build ?trace (Bioseq.Packed_seq.of_string alphabet s)

let sequence t = t.seq

let node_count t = Int_vec.length t.start
let internal_count t = t.internal_nodes
let leaf_count t = t.leaves

let model_bytes_per_char t =
  (* MUMmer-era C layouts pack an internal node into 16 bytes (child,
     sibling, suffix link, edge info) and a leaf into a single 4-byte
     entry of the leaf array; with the observed ~0.8 internal nodes per
     character this lands at the ~17 bytes/char the paper quotes for
     standard suffix tree implementations. *)
  if t.n = 0 then 0.0
  else
    float_of_int ((16 * internal_count t) + (4 * leaf_count t))
    /. float_of_int t.n

let raw_bytes_per_char t =
  (* what THIS array-of-int-vectors implementation costs per character
     with 4-byte fields: six fields per node *)
  if t.n = 0 then 0.0
  else float_of_int (node_count t * 24) /. float_of_int t.n

(* Walk the pattern from the root; returns the locus. *)
let find_codes t pattern =
  let m = Array.length pattern in
  let pos = t.n in (* tree is complete; edge lengths clamp against n+1 *)
  let rec go v i =
    if i >= m then Some (v, 0)
    else begin
      let u = find_child t v pattern.(i) in
      if u < 0 then None
      else begin
        let el = edge_length t u ~pos in
        let estart = Int_vec.get t.start u in
        let rec walk j =
          (* compare pattern.(i + j) against edge char j *)
          if i + j >= m then Some (u, j)
          else if j >= el then go u (i + el)
          else if t.codes.(estart + j) = pattern.(i + j) then walk (j + 1)
          else None
        in
        match walk 1 with
        | Some (u, j) when j = el -> Some (u, 0)
        | other -> other
      end
    end
  in
  if m = 0 then Some (root, 0) else go root 0

let contains_codes t pattern = find_codes t pattern <> None

let encode_pattern t s =
  let alphabet = Bioseq.Packed_seq.alphabet t.seq in
  try
    Some (Array.init (String.length s)
            (fun i -> Bioseq.Alphabet.encode alphabet s.[i]))
  with Invalid_argument _ -> None

let contains t s =
  match encode_pattern t s with
  | Some p -> contains_codes t p
  | None -> false

(* Enumerate leaf positions under [v] with an explicit stack: recursion
   depth equals tree depth, which adversarial (periodic) strings make
   linear. *)
let leaves_under t v =
  let acc = ref [] in
  let stack = Int_vec.create () in
  Int_vec.push stack v;
  while Int_vec.length stack > 0 do
    let u = Int_vec.pop stack in
    touch t ~index:u ~write:false;
    let lp = Int_vec.get t.leafpos u in
    if lp >= 0 then acc := lp :: !acc
    else begin
      let rec push_children w =
        if w >= 0 then begin
          Int_vec.push stack w;
          push_children (Int_vec.get t.sibling w)
        end
      in
      push_children (Int_vec.get t.child u)
    end
  done;
  !acc

let occurrences t pattern =
  match find_codes t pattern with
  | None -> []
  | Some (v, _below) -> List.sort compare (leaves_under t v)

let first_occurrence t pattern =
  match occurrences t pattern with
  | [] -> None
  | p :: _ -> Some p

type match_stats = {
  nodes_checked : int;
  suffixes_checked : int;
}

(* Matching-statistics walker: the current match of length [len] is
   query[i - len + 1 .. i]; its position in the tree is node [v] of
   string depth [dv], plus [off] characters down the edge into [below]
   when [off > 0]. On a failed extension the walker follows [v]'s suffix
   link (one suffix candidate checked, the paper's per-suffix cost) and
   rescans with skip/count. *)
type walker = {
  tree : t;
  mutable v : int;
  mutable dv : int;
  mutable below : int;
  mutable off : int;
  mutable len : int;
  mutable w_nodes : int;
  mutable w_suffixes : int;
  wtrace : trace option;
}

let wtouch w ~index =
  (match w.wtrace with
   | None -> ()
   | Some f -> f ~structure:0 ~index ~write:false);
  w.w_nodes <- w.w_nodes + 1

let wfind_child w v c =
  wtouch w ~index:v;
  let t = w.tree in
  let rec go u =
    if u < 0 then -1
    else begin
      wtouch w ~index:u;
      if first_code t u = c then u else go (Int_vec.get t.sibling u)
    end
  in
  go (Int_vec.get t.child v)

(* Rescan: descend from (w.v, w.dv) along the known-present string
   query[qfirst ..] for [remaining] characters using skip/count. *)
let rescan w (q : Bioseq.Packed_seq.t) qfirst remaining =
  let t = w.tree in
  let pos = t.n in
  let qfirst = ref qfirst and remaining = ref remaining in
  w.below <- -1;
  w.off <- 0;
  while !remaining > 0 do
    let u = wfind_child w w.v (Bioseq.Packed_seq.get q !qfirst) in
    assert (u >= 0);
    let el = edge_length t u ~pos in
    if !remaining >= el then begin
      w.v <- u;
      w.dv <- w.dv + el;
      qfirst := !qfirst + el;
      remaining := !remaining - el
    end
    else begin
      w.below <- u;
      w.off <- !remaining;
      remaining := 0
    end
  done

(* Try to consume [c]; true on success. *)
let try_extend w c =
  let t = w.tree in
  let pos = t.n in
  if w.off = 0 then begin
    let u = wfind_child w w.v c in
    if u < 0 then false
    else begin
      let el = edge_length t u ~pos in
      if el = 1 then begin w.v <- u; w.dv <- w.dv + 1 end
      else begin w.below <- u; w.off <- 1 end;
      w.len <- w.len + 1;
      true
    end
  end
  else begin
    let estart = Int_vec.get t.start w.below in
    if t.codes.(estart + w.off) = c then begin
      let el = edge_length t w.below ~pos in
      w.off <- w.off + 1;
      if w.off = el then begin
        w.v <- w.below;
        w.dv <- w.dv + el;
        w.below <- -1;
        w.off <- 0
      end;
      w.len <- w.len + 1;
      true
    end
    else false
  end

(* One suffix-link hop: drop the first character of the current match
   and re-locate the remainder. The suffix-link target of [v] has string
   depth [dv - 1], so only the below-node part of the match needs
   rescanning. *)
let follow_suffix w (q : Bioseq.Packed_seq.t) i =
  let t = w.tree in
  w.w_suffixes <- w.w_suffixes + 1;
  let below_len = w.len - w.dv in
  w.len <- w.len - 1;
  if w.v = root then begin
    (* the match lived entirely below the root: re-walk all of it *)
    w.dv <- 0;
    rescan w q (i - w.len) w.len
  end
  else begin
    w.v <- Int_vec.get t.slink w.v;
    wtouch w ~index:w.v;
    w.dv <- w.dv - 1;
    rescan w q (i - below_len) below_len
  end

let matching_statistics ?trace t q =
  let m = Bioseq.Packed_seq.length q in
  let ms = Array.make (max m 1) 0 in
  let w =
    { tree = t; v = root; dv = 0; below = -1; off = 0; len = 0;
      w_nodes = 0; w_suffixes = 0; wtrace = trace }
  in
  for i = 0 to m - 1 do
    let c = Bioseq.Packed_seq.get q i in
    let extended = ref (try_extend w c) in
    while (not !extended) && w.len > 0 do
      follow_suffix w q i;
      extended := try_extend w c
    done;
    ms.(i) <- w.len
  done;
  (ms, { nodes_checked = w.w_nodes; suffixes_checked = w.w_suffixes })

type mmatch = {
  query_end : int;
  length : int;
  data_ends : int list;
}

let maximal_matches ?trace t ~threshold q =
  let m = Bioseq.Packed_seq.length q in
  let ms = Array.make (max m 1) 0 in
  let locus = Array.make (max m 1) (-1) in
  let w =
    { tree = t; v = root; dv = 0; below = -1; off = 0; len = 0;
      w_nodes = 0; w_suffixes = 0; wtrace = trace }
  in
  for i = 0 to m - 1 do
    let c = Bioseq.Packed_seq.get q i in
    let extended = ref (try_extend w c) in
    while (not !extended) && w.len > 0 do
      follow_suffix w q i;
      extended := try_extend w c
    done;
    ms.(i) <- w.len;
    locus.(i) <- (if w.off > 0 then w.below else w.v)
  done;
  let matches = ref [] in
  for i = m - 1 downto 0 do
    let right_maximal = i = m - 1 || ms.(i + 1) <= ms.(i) in
    if right_maximal && ms.(i) >= threshold && threshold > 0 then begin
      let starts = leaves_under t locus.(i) in
      let ends =
        starts
        |> List.filter (fun p -> p + ms.(i) <= t.n)
        |> List.map (fun p -> p + ms.(i) - 1)
        |> List.sort compare
      in
      matches := { query_end = i; length = ms.(i); data_ends = ends } :: !matches
    end
  done;
  (!matches, { nodes_checked = w.w_nodes; suffixes_checked = w.w_suffixes })
