(** Directed Acyclic Word Graph (suffix automaton) baseline.

    The paper's related work (Section 7) identifies DAWGs as the only
    prior approach to {e horizontal} trie compaction, at around 34 bytes
    per indexed character for DNA — and notes two shortcomings SPINE
    fixes: incomplete compaction (DAWG state counts still exceed the
    string length) and the loss of position information (DAWG states do
    not correspond to character positions).

    This module implements the classic online suffix-automaton
    construction (Blumer et al.), used by the space experiment to place
    SPINE among its horizontal-compaction relatives and by the test
    suite as yet another independent membership oracle. *)

type t

val build : Bioseq.Packed_seq.t -> t
(** Online construction, O(n * alphabet) with the sibling-list
    transition representation used here. *)

val of_string : Bioseq.Alphabet.t -> string -> t

val length : t -> int
(** Characters indexed. *)

val state_count : t -> int
(** Between [n + 1] and [2n - 1] — more than SPINE's [n + 1], the
    paper's "unable to achieve complete horizontal compaction". *)

val transition_count : t -> int

val contains : t -> string -> bool

val contains_codes : t -> int array -> bool

val count_occurrences : t -> int array -> int
(** Number of occurrences of the pattern, from endpos-set sizes — note
    that unlike SPINE the automaton cannot {e locate} them without
    auxiliary structures, the paper's "they lack position
    information". *)

val model_bytes_per_char : t -> float
(** The paper quotes ~34 bytes per indexed character for DNA DAWGs;
    this model prices our state records at C field widths
    (length, suffix link, 4 transition slots). *)

val paper_dawg_bytes_per_char : float
(** 34.0 — the figure the paper cites from Kurtz. *)

val paper_cdawg_bytes_per_char : float
(** 22.0 — compact DAWGs, also cited. *)
