module Int_vec = Xutil.Int_vec

(* Suffix automaton with transitions in per-state association lists
   packed into parallel vectors: [trans_head.(v)] is the first cell of
   state [v]'s transition list; each cell stores (code, target, next).

   [primary.(v)] is 1 for states created as the new "last" of an
   extension step (each corresponds to exactly one end position of the
   text) and 0 for clones — the seed values of occurrence counting. *)
type t = {
  alphabet : Bioseq.Alphabet.t;
  n : int;
  len : Int_vec.t;            (* longest string length per state *)
  link : Int_vec.t;           (* suffix link, -1 at the initial state *)
  trans_head : Int_vec.t;     (* first transition cell, -1 = none *)
  primary : Int_vec.t;
  cell_code : Int_vec.t;
  cell_target : Int_vec.t;
  cell_next : Int_vec.t;
  mutable occ : int array option;  (* occurrence counts, computed lazily *)
}

let init_state = 0

let new_state t ~len ~link ~primary =
  let v = Int_vec.length t.len in
  Int_vec.push t.len len;
  Int_vec.push t.link link;
  Int_vec.push t.trans_head (-1);
  Int_vec.push t.primary (if primary then 1 else 0);
  v

let find_transition t v c =
  let rec go cell =
    if cell < 0 then -1
    else if Int_vec.get t.cell_code cell = c then Int_vec.get t.cell_target cell
    else go (Int_vec.get t.cell_next cell)
  in
  go (Int_vec.get t.trans_head v)

let set_transition t v c target =
  let rec go cell =
    if cell < 0 then begin
      let cell = Int_vec.length t.cell_code in
      Int_vec.push t.cell_code c;
      Int_vec.push t.cell_target target;
      Int_vec.push t.cell_next (Int_vec.get t.trans_head v);
      Int_vec.set t.trans_head v cell
    end
    else if Int_vec.get t.cell_code cell = c then
      Int_vec.set t.cell_target cell target
    else go (Int_vec.get t.cell_next cell)
  in
  go (Int_vec.get t.trans_head v)

let copy_transitions t ~src ~dst =
  let rec go cell =
    if cell >= 0 then begin
      set_transition t dst (Int_vec.get t.cell_code cell)
        (Int_vec.get t.cell_target cell);
      go (Int_vec.get t.cell_next cell)
    end
  in
  go (Int_vec.get t.trans_head src)

let extend t last c =
  let cur =
    new_state t ~len:(Int_vec.get t.len last + 1) ~link:(-1) ~primary:true
  in
  let p = ref last in
  while !p >= 0 && find_transition t !p c < 0 do
    set_transition t !p c cur;
    p := Int_vec.get t.link !p
  done;
  if !p < 0 then Int_vec.set t.link cur init_state
  else begin
    let q = find_transition t !p c in
    if Int_vec.get t.len q = Int_vec.get t.len !p + 1 then
      Int_vec.set t.link cur q
    else begin
      (* split: clone q at the shorter length *)
      let clone =
        new_state t ~len:(Int_vec.get t.len !p + 1)
          ~link:(Int_vec.get t.link q) ~primary:false
      in
      copy_transitions t ~src:q ~dst:clone;
      Int_vec.set t.link q clone;
      Int_vec.set t.link cur clone;
      let p2 = ref !p in
      while !p2 >= 0 && find_transition t !p2 c = q do
        set_transition t !p2 c clone;
        p2 := Int_vec.get t.link !p2
      done
    end
  end;
  cur

let build seq =
  let t =
    { alphabet = Bioseq.Packed_seq.alphabet seq;
      n = Bioseq.Packed_seq.length seq;
      len = Int_vec.create ();
      link = Int_vec.create ();
      trans_head = Int_vec.create ();
      primary = Int_vec.create ();
      cell_code = Int_vec.create ();
      cell_target = Int_vec.create ();
      cell_next = Int_vec.create ();
      occ = None }
  in
  ignore (new_state t ~len:0 ~link:(-1) ~primary:false);
  let last = ref init_state in
  Bioseq.Packed_seq.iteri seq ~f:(fun _ c -> last := extend t !last c);
  t

let of_string alphabet s = build (Bioseq.Packed_seq.of_string alphabet s)

let length t = t.n
let state_count t = Int_vec.length t.len
let transition_count t = Int_vec.length t.cell_code

let walk t codes =
  let m = Array.length codes in
  let rec go v i =
    if i >= m then v
    else
      let nxt = find_transition t v codes.(i) in
      if nxt < 0 then -1 else go nxt (i + 1)
  in
  go init_state 0

let contains_codes t codes = walk t codes >= 0

let contains t s =
  match
    Array.init (String.length s)
      (fun i -> Bioseq.Alphabet.encode t.alphabet s.[i])
  with
  | codes -> contains_codes t codes
  | exception Invalid_argument _ -> false

(* occurrence counts: seed 1 at primary states, then propagate along
   suffix links in decreasing order of [len] (counting sort by len) *)
let occurrence_table t =
  match t.occ with
  | Some occ -> occ
  | None ->
    let states = state_count t in
    let occ = Array.make states 0 in
    for v = 0 to states - 1 do occ.(v) <- Int_vec.get t.primary v done;
    let order = Array.init states (fun v -> v) in
    Array.sort
      (fun a b -> compare (Int_vec.get t.len b) (Int_vec.get t.len a))
      order;
    Array.iter
      (fun v ->
        let l = Int_vec.get t.link v in
        if l >= 0 then occ.(l) <- occ.(l) + occ.(v))
      order;
    t.occ <- Some occ;
    occ

let count_occurrences t codes =
  if Array.length codes = 0 then 0
  else
    let v = walk t codes in
    if v < 0 then 0 else (occurrence_table t).(v)

let model_bytes_per_char t =
  (* per state: length u32, suffix link u32, 4 x (target u32 + 2-bit
     label packed into one shared byte) — 25 bytes, times the measured
     states-per-character ratio; lands in the paper's quoted ballpark *)
  if t.n = 0 then 0.0
  else float_of_int (state_count t * 25) /. float_of_int t.n

let paper_dawg_bytes_per_char = 34.0
let paper_cdawg_bytes_per_char = 22.0
