(** Replay index access traces against a buffer pool.

    Both index implementations emit logical record accesses
    [(structure, index, write)].  A router assigns each structure a
    disjoint page region on the device and turns every record access
    into a buffer-pool page touch, which is exactly how a disk-resident
    implementation of the same layout would behave.  The paper's
    Figure 7 / Table 7 experiments are runs of the in-memory algorithms
    with their traces routed through one of these. *)

type region = {
  structure : int;     (** structure id used by the index's trace *)
  base_page : int;     (** first device page of the region *)
  record_bytes : int;  (** bytes per logical record *)
}

type t

val create : Buffer_pool.t -> region list -> t
(** Regions must have distinct structure ids; accesses to unknown
    structure ids are ignored (e.g. an overflow table that the caller
    chooses to keep memory-resident). *)

val route : t -> structure:int -> index:int -> write:bool -> unit
(** Touch the page holding record [index] of [structure]. *)

val page_of : t -> structure:int -> index:int -> int
(** The device page a record maps to; exposed so pinning policies can
    be phrased in terms of records ("the top of the Link Table"). *)

val pool : t -> Buffer_pool.t
