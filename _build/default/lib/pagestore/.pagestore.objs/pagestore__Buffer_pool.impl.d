lib/pagestore/buffer_pool.ml: Array Bytes Device Hashtbl List
