lib/pagestore/device.ml: Bytes Hashtbl Unix
