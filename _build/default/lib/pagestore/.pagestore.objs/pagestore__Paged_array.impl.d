lib/pagestore/paged_array.ml: Buffer_pool Bytes Char Device Int32
