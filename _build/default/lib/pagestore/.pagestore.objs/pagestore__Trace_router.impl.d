lib/pagestore/trace_router.ml: Array Buffer_pool Device List
