lib/pagestore/trace_router.mli: Buffer_pool
