lib/pagestore/buffer_pool.mli: Bytes Device
