lib/pagestore/paged_array.mli: Buffer_pool
