lib/pagestore/device.mli: Bytes
