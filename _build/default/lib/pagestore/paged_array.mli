(** Array of fixed-size records stored through a {!Buffer_pool}.

    The disk layouts of both indexes (SPINE's Link Table and Rib Tables,
    the suffix tree's node table) are arrays of fixed-width records.
    Records never straddle pages: each page holds
    [page_size / record_size] records, as a real slotted layout would.

    Integer fields are little-endian and unsigned; the all-ones value of
    a field's width is conventionally used as a "none" sentinel by
    callers ({!none32}, {!none16}). *)

type t

val create : Buffer_pool.t -> base_page:int -> record_size:int -> t
(** [create pool ~base_page ~record_size] lays records out starting at
    device page [base_page].  Several paged arrays can share one pool by
    using disjoint page ranges.
    @raise Invalid_argument if [record_size] exceeds the page size or is
    not positive. *)

val record_size : t -> int
val records_per_page : t -> int

val length : t -> int
(** Highest record index written so far + 1 (0 when untouched). *)

val pages_spanned : t -> int
(** Pages covered by the records written so far. *)

val page_of_record : t -> int -> int
(** Device page holding a record; exposed so buffering policies can pin
    by record position (e.g. "top of the Link Table"). *)

val get_u8 : t -> int -> int -> int
(** [get_u8 a i off] reads the byte at offset [off] of record [i]. *)

val set_u8 : t -> int -> int -> int -> unit

val get_u16 : t -> int -> int -> int
val set_u16 : t -> int -> int -> int -> unit

val get_u32 : t -> int -> int -> int
val set_u32 : t -> int -> int -> int -> unit

val none16 : int
(** 0xFFFF *)

val none32 : int
(** 0xFFFF_FFFF *)
