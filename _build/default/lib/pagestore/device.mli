(** Simulated block device.

    The paper's disk experiments (Figure 7, Table 7) were run on an IDE
    disk with synchronous writes ([O_SYNC]) precisely so that the measured
    times reflect each index's {e access locality} rather than OS caching.
    This module reproduces that methodology deterministically: a device
    is an in-memory page map plus counters and a latency cost model.  The
    "time" an experiment reports is the accumulated simulated latency,
    which depends only on the I/O trace — identical across machines and
    runs, unlike wall-clock disk timings.

    Cost model: a page read costs [cost.read_us] microseconds, a page
    write [cost.write_us]; when [sync_writes] is set every write also
    pays [cost.sync_us], mirroring the paper's [O_SYNC] setup.
    Sequential accesses (page adjacent to the previous access) cost
    [cost.sequential_us] instead of the full seek, which is what rewards
    SPINE's append-mostly, top-skewed access pattern. *)

type cost = {
  read_us : float;        (** random page read *)
  write_us : float;       (** random page write *)
  sequential_us : float;  (** read or write adjacent to previous access *)
  sync_us : float;        (** extra cost per synchronous write *)
}

val default_cost : cost
(** Calibrated to an early-2000s IDE disk: 8 ms random, 0.1 ms
    sequential, 4 ms sync overhead. Absolute values only scale the
    reported times; relative results depend only on the trace. *)

type t

val create : ?cost:cost -> ?sync_writes:bool -> page_size:int -> unit -> t
(** Fresh in-memory device; pages are [page_size] bytes. [sync_writes]
    defaults to [false]. *)

val create_file :
  ?cost:cost -> ?sync_writes:bool -> page_size:int -> path:string ->
  unit -> t
(** A device backed by a real file (created if absent, reopened
    otherwise): page [p] lives at byte offset [p * page_size].  The
    simulated-latency counters still run — they model the 2004 testbed
    regardless of the actual storage — but the data is durable, which
    is what {!Spine.Persistent} builds on.  Page ids must stay below
    2^40 (sparse files handle the gaps). *)

val close : t -> unit
(** Release the backing file descriptor (no-op for in-memory devices). *)

val page_size : t -> int

val read : t -> int -> Bytes.t
(** [read dev p] returns a copy of page [p]'s contents (zero-filled if
    never written). Counts one read. *)

val write : t -> int -> Bytes.t -> unit
(** [write dev p data] stores a copy of [data] as page [p]. Counts one
    write (plus sync cost when enabled).
    @raise Invalid_argument if [data] is not exactly one page. *)

type stats = {
  reads : int;
  writes : int;
  sequential : int;   (** accesses that hit the sequential fast path *)
  elapsed_us : float; (** accumulated simulated latency *)
}

val stats : t -> stats
val reset_stats : t -> unit

val pages_allocated : t -> int
(** Number of distinct pages ever written. *)
