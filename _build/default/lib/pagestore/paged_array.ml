type t = {
  pool : Buffer_pool.t;
  base_page : int;
  record_size : int;
  records_per_page : int;
  mutable length : int;
}

let create pool ~base_page ~record_size =
  let page_size = Device.page_size (Buffer_pool.device pool) in
  if record_size <= 0 || record_size > page_size then
    invalid_arg "Paged_array.create: bad record size";
  { pool; base_page; record_size;
    records_per_page = page_size / record_size;
    length = 0 }

let record_size t = t.record_size
let records_per_page t = t.records_per_page
let length t = t.length

let page_of_record t i = t.base_page + (i / t.records_per_page)

let pages_spanned t =
  if t.length = 0 then 0 else (t.length + t.records_per_page - 1) / t.records_per_page

let locate t i off width =
  if i < 0 then invalid_arg "Paged_array: negative index";
  if off < 0 || off + width > t.record_size then
    invalid_arg "Paged_array: field outside record";
  (page_of_record t i, ((i mod t.records_per_page) * t.record_size) + off)

let note_write t i = if i >= t.length then t.length <- i + 1

let get_u8 t i off =
  let page, pos = locate t i off 1 in
  Buffer_pool.with_page t.pool page ~dirty:false (fun b ->
      Char.code (Bytes.get b pos))

let set_u8 t i off v =
  let page, pos = locate t i off 1 in
  Buffer_pool.with_page t.pool page ~dirty:true (fun b ->
      Bytes.set b pos (Char.chr (v land 0xFF)));
  note_write t i

let get_u16 t i off =
  let page, pos = locate t i off 2 in
  Buffer_pool.with_page t.pool page ~dirty:false (fun b ->
      Bytes.get_uint16_le b pos)

let set_u16 t i off v =
  let page, pos = locate t i off 2 in
  Buffer_pool.with_page t.pool page ~dirty:true (fun b ->
      Bytes.set_uint16_le b pos (v land 0xFFFF));
  note_write t i

let get_u32 t i off =
  let page, pos = locate t i off 4 in
  Buffer_pool.with_page t.pool page ~dirty:false (fun b ->
      Int32.to_int (Bytes.get_int32_le b pos) land 0xFFFF_FFFF)

let set_u32 t i off v =
  let page, pos = locate t i off 4 in
  Buffer_pool.with_page t.pool page ~dirty:true (fun b ->
      Bytes.set_int32_le b pos (Int32.of_int (v land 0xFFFF_FFFF)));
  note_write t i

let none16 = 0xFFFF
let none32 = 0xFFFF_FFFF
