type t = {
  seq : Bioseq.Packed_seq.t;
  sa : int array;            (* rank -> suffix start *)
  rank : int array;          (* suffix start -> rank *)
  mutable lcp_cache : int array option;
}

(* Manber–Myers prefix doubling: sort suffixes by their first k
   characters, doubling k, using rank pairs as sort keys. *)
let build seq =
  let n = Bioseq.Packed_seq.length seq in
  let sa = Array.init n (fun i -> i) in
  let rank = Array.init n (fun i -> Bioseq.Packed_seq.get seq i) in
  let tmp = Array.make (max n 1) 0 in
  let k = ref 1 in
  (* at least one pass even for n = 1, so ranks are normalised from raw
     symbol codes to dense ranks *)
  let continue = ref (n > 0) in
  while !continue do
    let key i =
      (rank.(i), if i + !k < n then rank.(i + !k) else -1)
    in
    Array.sort (fun a b -> compare (key a) (key b)) sa;
    if n > 0 then begin
      tmp.(sa.(0)) <- 0;
      for r = 1 to n - 1 do
        tmp.(sa.(r)) <-
          tmp.(sa.(r - 1)) + (if key sa.(r) = key sa.(r - 1) then 0 else 1)
      done;
      Array.blit tmp 0 rank 0 n
    end;
    if n = 0 || rank.(sa.(n - 1)) = n - 1 then continue := false
    else k := !k * 2
  done;
  { seq; sa; rank; lcp_cache = None }

let of_string alphabet s = build (Bioseq.Packed_seq.of_string alphabet s)

let length t = Array.length t.sa

let suffix_at t r = t.sa.(r)

let lcp t =
  match t.lcp_cache with
  | Some l -> l
  | None ->
    (* Kasai's algorithm *)
    let n = length t in
    let l = Array.make (max n 1) 0 in
    let h = ref 0 in
    for i = 0 to n - 1 do
      let r = t.rank.(i) in
      if r > 0 then begin
        let j = t.sa.(r - 1) in
        while
          i + !h < n && j + !h < n
          && Bioseq.Packed_seq.get t.seq (i + !h)
             = Bioseq.Packed_seq.get t.seq (j + !h)
        do incr h done;
        l.(r) <- !h;
        if !h > 0 then decr h
      end
      else h := 0
    done;
    t.lcp_cache <- Some l;
    l

(* compare pattern against suffix starting at [p]; <0, 0, >0 like
   [compare pattern suffix-prefix] *)
let compare_at t pattern p =
  let n = length t and m = Array.length pattern in
  let rec go k =
    if k >= m then 0
    else if p + k >= n then 1           (* suffix exhausted: pattern greater *)
    else
      let c = compare pattern.(k) (Bioseq.Packed_seq.get t.seq (p + k)) in
      if c <> 0 then c else go (k + 1)
  in
  go 0

let occurrences t pattern =
  let n = length t in
  let m = Array.length pattern in
  if m = 0 || n = 0 then []
  else begin
    (* lowest rank with suffix >= pattern *)
    let lo =
      let a = ref 0 and b = ref n in
      while !a < !b do
        let mid = (!a + !b) / 2 in
        if compare_at t pattern t.sa.(mid) > 0 then a := mid + 1 else b := mid
      done;
      !a
    in
    (* lowest rank with suffix-prefix > pattern *)
    let hi =
      let a = ref lo and b = ref n in
      while !a < !b do
        let mid = (!a + !b) / 2 in
        if compare_at t pattern t.sa.(mid) >= 0 then a := mid + 1 else b := mid
      done;
      !a
    in
    let out = ref [] in
    for r = lo to hi - 1 do out := t.sa.(r) :: !out done;
    List.sort compare !out
  end

let contains t s =
  let alphabet = Bioseq.Packed_seq.alphabet t.seq in
  match
    Array.init (String.length s)
      (fun i -> Bioseq.Alphabet.encode alphabet s.[i])
  with
  | pattern -> occurrences t pattern <> []
  | exception Invalid_argument _ -> false

let model_bytes_per_char t =
  if length t = 0 then 0.0 else 6.0
