(** Suffix array baseline (Manber–Myers).

    The paper's related-work section positions suffix arrays as the
    space-frugal alternative (about 6 bytes per indexed character) that
    pays with supra-linear construction and slower individual queries
    (binary search instead of edge walking).  This module provides the
    classic prefix-doubling construction plus Kasai's LCP array, used by
    the space/ablation benches to complete the index landscape SPINE is
    compared against. *)

type t

val build : Bioseq.Packed_seq.t -> t
(** O(n log n) prefix-doubling construction. *)

val of_string : Bioseq.Alphabet.t -> string -> t

val length : t -> int

val suffix_at : t -> int -> int
(** [suffix_at t r] is the start position of the rank-[r] suffix. *)

val lcp : t -> int array
(** Kasai LCP array: [lcp.(r)] is the longest common prefix length of
    the rank-[r] and rank-[r-1] suffixes ([lcp.(0) = 0]). Computed
    lazily and cached. *)

val occurrences : t -> int array -> int list
(** Start positions of all occurrences, ascending, by binary search for
    the pattern's rank range. O(m log n + occ). *)

val contains : t -> string -> bool

val model_bytes_per_char : t -> float
(** 4-byte suffix array entry plus 2-byte bucketed LCP per character —
    the ~6 bytes/char figure the paper quotes. *)
