(** Table 4 — rib distribution across nodes: percentage of nodes with
    1, 2, 3 and 4 downstream edges (ribs + extrib). The paper's
    observation that only ~30-35 % of nodes carry any downstream edge is
    what justifies moving ribs out of the Link Table into separate,
    fanout-segregated Rib Tables. *)

let paper =
  [ ("ECO", (15, 9, 6, 4, 33)); ("CEL", (15, 8, 6, 4, 33));
    ("HC21", (14, 8, 6, 4, 32)); ("HC19", (13, 7, 5, 3, 28)) ]

let run (cfg : Config.t) =
  let rows =
    List.map
      (fun corpus ->
        let seq = Data.load ~scale:cfg.Config.scale corpus in
        let idx = Spine.Compact.of_seq seq in
        let dist = Spine.Compact.rib_distribution idx in
        let total_nodes = Array.fold_left ( + ) 0 dist in
        let pct f =
          let c =
            if f < 4 then dist.(f)
            else Array.fold_left ( + ) 0 (Array.sub dist 4 (Array.length dist - 4))
          in
          100.0 *. float_of_int c /. float_of_int total_nodes
        in
        let total = pct 1 +. pct 2 +. pct 3 +. pct 4 in
        let p1, p2, p3, p4, pt = List.assoc corpus.Bioseq.Corpus.name paper in
        [ corpus.Bioseq.Corpus.name;
          Report.Table.fmt_pct (pct 1 /. 100.0);
          Report.Table.fmt_pct (pct 2 /. 100.0);
          Report.Table.fmt_pct (pct 3 /. 100.0);
          Report.Table.fmt_pct (pct 4 /. 100.0);
          Report.Table.fmt_pct (total /. 100.0);
          Printf.sprintf "%d/%d/%d/%d=%d%%" p1 p2 p3 p4 pt ])
      Bioseq.Corpus.dna
  in
  Report.Table.print
    ~title:
      (Printf.sprintf "Table 4: Rib distribution across nodes (scale %g)"
         cfg.Config.scale)
    ~headers:[ "Genome"; "1"; "2"; "3"; "4"; "Total"; "Paper" ]
    rows
    ~note:
      "Shape check: percentages decay with fanout and the total stays \
       around 30%, decreasing for the more repetitive human chromosomes."
