lib/experiments/exp_proteins.ml: Array Bioseq Config Data List Printf Report Spine Xutil
