lib/experiments/exp_table2.ml: Bioseq Config List Report Spine
