lib/experiments/exp_fig7.ml: Bioseq Config Data Disk_util List Option Pagestore Printf Report Spine
