lib/experiments/disk_util.ml: Pagestore Spine Suffix_tree
