lib/experiments/exp_ablation.ml: Bioseq Config Data List Option Pagestore Printf Report Spine Xutil
