lib/experiments/exp_fig8.ml: Array Bioseq Config Data List Option Printf Report Spine
