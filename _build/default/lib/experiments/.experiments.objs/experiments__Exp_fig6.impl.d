lib/experiments/exp_fig6.ml: Bioseq Config Data List Printf Report Spine Suffix_tree Xutil
