lib/experiments/exp_space.ml: Bioseq Config Data Dawg List Printf Report Spine Suffix_array Suffix_tree Suffix_trie
