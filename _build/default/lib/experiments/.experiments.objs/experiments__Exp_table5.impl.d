lib/experiments/exp_table5.ml: Bioseq Config Data List Printf Report Spine Suffix_tree Xutil
