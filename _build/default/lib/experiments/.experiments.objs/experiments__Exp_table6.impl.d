lib/experiments/exp_table6.ml: Bioseq Config Data List Option Printf Report Spine Suffix_tree
