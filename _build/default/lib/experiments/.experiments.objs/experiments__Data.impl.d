lib/experiments/data.ml: Bioseq Hashtbl
