lib/experiments/config.ml: Sys
