lib/experiments/exp_sensitivity.ml: Array Bioseq Config List Printf Report Spine Xutil
