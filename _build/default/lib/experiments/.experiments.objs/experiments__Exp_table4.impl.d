lib/experiments/exp_table4.ml: Array Bioseq Config Data List Printf Report Spine
