lib/experiments/exp_table7.ml: Bioseq Config Data Disk_util Exp_fig7 List Option Printf Report Spine Suffix_tree
