lib/experiments/exp_table3.ml: Bioseq Config Data List Printf Report Spine
