(** Space accounting across index structures (Section 5's headline:
    SPINE under 12 bytes/char vs ~17 for standard suffix trees), plus
    the compaction story of Section 1 quantified on the trie itself. *)

let run (cfg : Config.t) =
  let rows =
    List.map
      (fun corpus ->
        let seq = Data.load ~scale:cfg.Config.scale corpus in
        let idx = Spine.Compact.of_seq seq in
        let b = Spine.Space.measure idx in
        let st = Suffix_tree.build seq in
        let sa = Suffix_array.build seq in
        [ corpus.Bioseq.Corpus.name;
          Report.Table.fmt_int (Bioseq.Packed_seq.length seq);
          Report.Table.fmt_float b.Spine.Space.bytes_per_char;
          Report.Table.fmt_float (Suffix_tree.model_bytes_per_char st);
          Report.Table.fmt_float (Suffix_array.model_bytes_per_char sa);
          Report.Table.fmt_float
            (float_of_int b.Spine.Space.lt_bytes
             /. float_of_int (Bioseq.Packed_seq.length seq));
          Report.Table.fmt_float
            (float_of_int b.Spine.Space.rt_bytes
             /. float_of_int (Bioseq.Packed_seq.length seq)) ])
      Bioseq.Corpus.dna
  in
  Report.Table.print
    ~title:
      (Printf.sprintf
         "Space: bytes per indexed character (scale %g)" cfg.Config.scale)
    ~headers:
      [ "Genome"; "Length"; "SPINE"; "ST (model)"; "SA (model)";
        "SPINE LT"; "SPINE RT" ]
    rows
    ~note:
      "Paper: SPINE takes up to 12 B/char vs 17 B/char for standard \
       suffix trees (about a third smaller); we measure 12.2-13.2, the \
       ~4% extra being the extrib anchor correction (DESIGN.md 1.1). \
       Suffix arrays: 6 B/char but supra-linear construction.";
  (* horizontal-compaction story on a small string: trie vs ST vs SPINE
     node counts *)
  let sample = Data.load ~scale:0.0001 Bioseq.Corpus.eco in
  let sample =
    (* keep the trie tractable *)
    Bioseq.Packed_seq.of_string Bioseq.Alphabet.dna
      (Bioseq.Packed_seq.sub_string sample ~pos:0
         ~len:(min 600 (Bioseq.Packed_seq.length sample)))
  in
  let trie = Suffix_trie.build sample in
  let st = Suffix_tree.build sample in
  let dawg = Dawg.build sample in
  let spine_idx = Spine.Index.of_seq sample in
  let pct_of_trie count =
    Report.Table.fmt_pct
      (float_of_int count /. float_of_int (Suffix_trie.node_count trie))
  in
  Report.Table.print
    ~title:"Horizontal vs vertical compaction (600-char sample)"
    ~headers:[ "Structure"; "Nodes"; "vs trie" ]
    [ [ "Suffix trie (Figure 1)";
        Report.Table.fmt_int (Suffix_trie.node_count trie); "100%" ]
    ; [ "Suffix tree (vertical)";
        Report.Table.fmt_int (Suffix_tree.node_count st);
        pct_of_trie (Suffix_tree.node_count st) ]
    ; [ "DAWG (horizontal, partial)";
        Report.Table.fmt_int (Dawg.state_count dawg);
        pct_of_trie (Dawg.state_count dawg) ]
    ; [ "SPINE (horizontal, complete)";
        Report.Table.fmt_int (Spine.Index.node_count spine_idx);
        pct_of_trie (Spine.Index.node_count spine_idx) ]
    ]
    ~note:
      "SPINE's node count is always exactly string length + 1; the DAWG \
       (the paper's only horizontal-compaction relative, Section 7) \
       cannot reach that bound and, unlike SPINE, loses position \
       information. Paper space quotes: DAWG ~34 B/char, CDAWG ~22, \
       suffix tree ~17, SPINE under 12."
