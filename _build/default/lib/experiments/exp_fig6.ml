(** Figure 6 — in-memory index construction times, SPINE vs suffix
    tree, plus the memory-budget observation: under the paper's 1 GB
    budget the suffix tree could not index HC19 while SPINE could
    (SPINE handles ~30 % more string for a given budget).

    The budget is scaled with the strings so the OOM crossover lands on
    the same genome as in the paper. *)

let paper_budget_bytes = 1024 * 1024 * 1024

let run (cfg : Config.t) =
  let budget =
    float_of_int paper_budget_bytes *. cfg.Config.scale
  in
  let rows =
    List.map
      (fun corpus ->
        let seq = Data.load ~scale:cfg.Config.scale corpus in
        let n = Bioseq.Packed_seq.length seq in
        let spine_idx, spine_time =
          Xutil.Stopwatch.time (fun () -> Spine.Compact.of_seq seq)
        in
        (* peak construction footprint: Ukkonen grows a node pool of a
           priori unknown size (up to 2n) geometrically, so its peak is
           well above the final structure; SPINE's append-only Link
           Table dominates its footprint and grows smoothly. *)
        let spine_bytes =
          Spine.Compact.bytes_per_char spine_idx *. float_of_int n *. 1.05
        in
        let st, st_time =
          Xutil.Stopwatch.time (fun () -> Suffix_tree.build seq)
        in
        let st_bytes =
          Suffix_tree.model_bytes_per_char st *. float_of_int n *. 1.25
        in
        let fits b = if b <= budget then "fits" else "OOM" in
        ( corpus.Bioseq.Corpus.name, n, spine_time, st_time,
          spine_bytes, st_bytes, fits spine_bytes, fits st_bytes ))
      Bioseq.Corpus.dna
  in
  Report.Bar.print_grouped
    ~title:
      (Printf.sprintf
         "Figure 6: In-memory construction times (scale %g)" cfg.Config.scale)
    ~unit_label:"s" ~group_names:("SPINE", "ST")
    (List.map (fun (name, _, st', st, _, _, _, _) -> (name, st', st)) rows);
  Report.Table.print
    ~headers:
      [ "Genome"; "Length"; "SPINE (s)"; "ST (s)"; "SPINE MB"; "ST MB";
        "SPINE@budget"; "ST@budget" ]
    (List.map
       (fun (name, n, t1, t2, b1, b2, f1, f2) ->
         [ name;
           Report.Table.fmt_int n;
           Report.Table.fmt_float t1;
           Report.Table.fmt_float t2;
           Report.Table.fmt_float (b1 /. 1e6);
           Report.Table.fmt_float (b2 /. 1e6);
           f1; f2 ])
       rows)
    ~note:
      (Printf.sprintf
         "Budget = 1 GB scaled by %g = %.0f MB. Paper: construction \
          within ~2 s/Mbp for both, SPINE marginally faster; ST runs out \
          of memory on HC19."
         cfg.Config.scale (budget /. 1e6))
