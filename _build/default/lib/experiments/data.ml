(** Memoized corpus loading: several experiments share the same
    synthetic genomes, and generation (while fast) should not pollute
    construction timings. *)

let cache : (string * int, Bioseq.Packed_seq.t) Hashtbl.t = Hashtbl.create 16

let key corpus scale = (corpus.Bioseq.Corpus.name, int_of_float (scale *. 1e6))

let load ~scale corpus =
  match Hashtbl.find_opt cache (key corpus scale) with
  | Some seq -> seq
  | None ->
    let seq = Bioseq.Corpus.load ~scale corpus in
    Hashtbl.replace cache (key corpus scale) seq;
    seq

let clear () = Hashtbl.reset cache

(* The paper's matching experiments pair related genomes, which share
   substantial homology; synthetic cross-corpus strings share none. A
   homologous query is the data string cycled to the query corpus's
   length with point mutations — the same structure a related genome
   presents to the matcher: long diverged stretches broken by exact
   matches well above the reporting threshold. *)
let homologous_query ?(divergence = 0.12) ~scale ~data_corpus query_corpus =
  let k =
    ( "HQ:" ^ data_corpus.Bioseq.Corpus.name ^ ">"
      ^ query_corpus.Bioseq.Corpus.name,
      int_of_float (scale *. 1e6) )
  in
  match Hashtbl.find_opt cache k with
  | Some seq -> seq
  | None ->
    let data = load ~scale data_corpus in
    let n = Bioseq.Packed_seq.length data in
    let target = Bioseq.Corpus.scaled_length ~scale query_corpus in
    let alphabet = Bioseq.Packed_seq.alphabet data in
    let size = Bioseq.Alphabet.size alphabet in
    let rng =
      Bioseq.Rng.create
        ((data_corpus.Bioseq.Corpus.seed * 131)
         + query_corpus.Bioseq.Corpus.seed)
    in
    let out = Bioseq.Packed_seq.create ~capacity:target alphabet in
    for i = 0 to target - 1 do
      let sym = Bioseq.Packed_seq.get data (i mod n) in
      let sym =
        if Bioseq.Rng.float rng 1.0 < divergence then Bioseq.Rng.int rng size
        else sym
      in
      Bioseq.Packed_seq.append out sym
    done;
    Hashtbl.replace cache k out;
    out
