(** Extension (not in the paper): input-sensitivity sweep.

    SPINE's structure is driven by how repetitive the input is; this
    sweep runs construction over inputs from pathological (unary,
    periodic, Fibonacci) through biological (repeat-injected Markov) to
    incompressible (uniform random), all at the same length, and
    reports construction rate, rib density, label maxima and space.
    It demonstrates the robustness claims implicit in Section 5's
    "mechanism in place to handle even those rare cases" (the overflow
    table fires on the pathological inputs). *)

let run (cfg : Config.t) =
  let n = max 70_000 (int_of_float (1_000_000.0 *. cfg.Config.scale)) in
  let dna = Bioseq.Alphabet.dna in
  let inputs =
    [ ("unary (aaaa...)", Bioseq.Synthetic.periodic dna ~period:"a" n)
    ; ("periodic (acgt)", Bioseq.Synthetic.periodic dna ~period:"acgt" n)
    ; ("fibonacci word", Bioseq.Synthetic.fibonacci dna n)
    ; ("genomic (calibrated)",
       Bioseq.Synthetic.genomic dna (Bioseq.Rng.create 7) n)
    ; ("markov order-2",
       Bioseq.Synthetic.markov ~order:2 ~skew:0.5 dna (Bioseq.Rng.create 8) n)
    ; ("uniform random", Bioseq.Synthetic.uniform dna (Bioseq.Rng.create 9) n)
    ]
  in
  let rows =
    List.map
      (fun (name, seq) ->
        let idx, secs =
          Xutil.Stopwatch.time (fun () -> Spine.Compact.of_seq seq)
        in
        let m = Spine.Compact.label_maxima idx in
        let dist = Spine.Compact.rib_distribution idx in
        let total_nodes = Array.fold_left ( + ) 0 dist in
        let with_ribs = total_nodes - dist.(0) in
        [ name;
          Report.Table.fmt_float (secs /. float_of_int n *. 1e6) ^ " us/char";
          Report.Table.fmt_pct
            (float_of_int with_ribs /. float_of_int total_nodes);
          Report.Table.fmt_int m.Spine.Compact.max_lel;
          Report.Table.fmt_int (Spine.Compact.overflow_count idx);
          Report.Table.fmt_float (Spine.Compact.bytes_per_char idx) ])
      inputs
  in
  Report.Table.print
    ~title:
      (Printf.sprintf
         "Sensitivity sweep (extension): %s-char inputs across \
          repetitiveness" (Report.Table.fmt_int n))
    ~headers:
      [ "Input"; "Build rate"; "Nodes w/ ribs"; "Max LEL"; "Overflow";
        "Bytes/char" ]
    rows
    ~note:
      "Highly repetitive inputs have almost no downstream edges (and \
       LELs up to n-1, exercising the overflow table); incompressible \
       inputs maximise rib density. Construction stays linear across \
       the whole range."
