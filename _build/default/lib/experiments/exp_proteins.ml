(** Section 5.2 — protein strings.  The paper reports that proteomes
    (alphabet size 20, 5-bit labels) behave like genomes: label values
    even smaller, under 30 % of nodes with downstream edges, linear
    construction scaling. *)

let run (cfg : Config.t) =
  (* one fixed query for all proteomes: the paper observes that search
     times are independent of the data string length *)
  let fixed_query =
    let base = Data.load ~scale:cfg.Config.scale Bioseq.Corpus.eco_r in
    let rng = Bioseq.Rng.create 4242 in
    let out =
      Bioseq.Packed_seq.create ~capacity:20_000 Bioseq.Alphabet.protein
    in
    for i = 0 to 19_999 do
      let sym =
        Bioseq.Packed_seq.get base (i mod Bioseq.Packed_seq.length base)
      in
      let sym =
        if Bioseq.Rng.float rng 1.0 < 0.3 then Bioseq.Rng.int rng 20 else sym
      in
      Bioseq.Packed_seq.append out sym
    done;
    out
  in
  let rows =
    List.map
      (fun corpus ->
        let seq = Data.load ~scale:cfg.Config.scale corpus in
        let n = Bioseq.Packed_seq.length seq in
        let idx, secs =
          Xutil.Stopwatch.time (fun () -> Spine.Compact.of_seq seq)
        in
        let m = Spine.Compact.label_maxima idx in
        let dist = Spine.Compact.rib_distribution idx in
        let total_nodes = Array.fold_left ( + ) 0 dist in
        let with_ribs = total_nodes - dist.(0) in
        let _, search_secs =
          Xutil.Stopwatch.median_of 3 (fun () ->
              Spine.Compact.maximal_matches idx ~threshold:8 fixed_query)
        in
        [ corpus.Bioseq.Corpus.name;
          Report.Table.fmt_int n;
          Report.Table.fmt_float secs;
          Report.Table.fmt_float (secs /. float_of_int n *. 1e6) ^ " us/char";
          Report.Table.fmt_float ~decimals:3 search_secs;
          Report.Table.fmt_int
            (max m.Spine.Compact.max_pt m.Spine.Compact.max_lel);
          Report.Table.fmt_pct
            (float_of_int with_ribs /. float_of_int total_nodes);
          Report.Table.fmt_float (Spine.Compact.bytes_per_char idx) ])
      Bioseq.Corpus.proteins
  in
  Report.Table.print
    ~title:
      (Printf.sprintf "Proteins (Section 5.2), scale %g" cfg.Config.scale)
    ~headers:
      [ "Proteome"; "Length"; "Build (s)"; "Rate"; "Search (s)"; "Max label";
        "Nodes w/ ribs"; "Bytes/char" ]
    rows
    ~note:
      "Shape check: construction scales linearly (flat us/char); the \
       fixed-query search time is independent of the data string length \
       (paper Section 6.2); label maxima small; under ~30% of nodes \
       carry downstream edges. Bytes/char is higher than DNA because \
       the sigma=20 alphabet widens RT4 rows (the paper's node-size \
       discussion is DNA-specific)."
