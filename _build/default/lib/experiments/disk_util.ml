(** Shared plumbing for the disk-resident experiments: the suffix-tree
    counterpart of {!Spine.Disk} (node records routed through a buffer
    pool over the synchronous simulated device). *)

type st_disk = {
  tree : Suffix_tree.t;
  device : Pagestore.Device.t;
  pool : Pagestore.Buffer_pool.t;
  trace : Suffix_tree.trace;
}

(* MUMmer-era C suffix trees pack a node into ~16 bytes; using the same
   figure for every node keeps the disk comparison aligned with the
   in-memory space model. *)
let st_record_bytes = 16

let build_st_on_disk ?(config = Spine.Disk.default_config) seq =
  let device =
    Pagestore.Device.create ~cost:config.Spine.Disk.cost
      ~sync_writes:config.Spine.Disk.sync_writes
      ~page_size:config.Spine.Disk.page_size ()
  in
  let pool =
    Pagestore.Buffer_pool.create ~replacement:config.Spine.Disk.replacement
      ~frames:config.Spine.Disk.frames device
  in
  let router =
    Pagestore.Trace_router.create pool
      [ { Pagestore.Trace_router.structure = 0;
          base_page = 0;
          record_bytes = st_record_bytes } ]
  in
  let trace ~structure ~index ~write =
    Pagestore.Trace_router.route router ~structure ~index ~write
  in
  let tree = Suffix_tree.build ~trace seq in
  Pagestore.Buffer_pool.flush pool;
  { tree; device; pool; trace }

let reset_io d =
  Pagestore.Buffer_pool.drop d.pool;
  Pagestore.Buffer_pool.reset_stats d.pool;
  Pagestore.Device.reset_stats d.device

let simulated_seconds device =
  (Pagestore.Device.stats device).Pagestore.Device.elapsed_us /. 1e6
