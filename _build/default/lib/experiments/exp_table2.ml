(** Table 2 — index node content of the naive one-record-per-node SPINE
    layout (48.25 bytes for DNA), motivating the Section 5
    optimisations. Static accounting; no workload. *)

let run (_cfg : Config.t) =
  let alphabet = Bioseq.Alphabet.dna in
  let fields = Spine.Space.naive_node_fields alphabet in
  let rows =
    List.map
      (fun { Spine.Space.name; bytes; count } ->
        [ name;
          Report.Table.fmt_float bytes;
          string_of_int count;
          Report.Table.fmt_float (bytes *. float_of_int count) ])
      fields
  in
  let total = Spine.Space.naive_node_bytes alphabet in
  Report.Table.print
    ~title:"Table 2: Index node content (naive layout, DNA alphabet)"
    ~headers:[ "Field Name"; "Space (Bytes)"; "Count"; "Total (Bytes)" ]
    (rows
     @ [ [ "TOTAL (paper: 48.25)"; ""; "";
           Report.Table.fmt_float total ] ])
    ~note:
      "Section 5's optimisations (implicit vertebras, 2-byte labels, \
       fanout-segregated rib tables) bring the measured cost under 12 \
       bytes/char; see the `space` experiment."
