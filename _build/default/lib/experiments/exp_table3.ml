(** Table 3 — maximum numeric label values (PT/LEL/PRT) per genome.
    The paper's point: even for human chromosomes the maxima stay far
    below 65536, so 2-byte label fields plus a small overflow table
    suffice. *)

let paper = [ ("ECO", 1785); ("CEL", 8187); ("HC21", 21844); ("HC19", 12371) ]

let run (cfg : Config.t) =
  let rows =
    List.map
      (fun corpus ->
        let seq = Data.load ~scale:cfg.Config.scale corpus in
        let idx = Spine.Compact.of_seq seq in
        let m = Spine.Compact.label_maxima idx in
        let measured = max m.Spine.Compact.max_pt m.Spine.Compact.max_lel in
        [ corpus.Bioseq.Corpus.name;
          Report.Table.fmt_int (Bioseq.Packed_seq.length seq);
          Report.Table.fmt_int measured;
          Report.Table.fmt_int m.Spine.Compact.max_pt;
          Report.Table.fmt_int m.Spine.Compact.max_lel;
          Report.Table.fmt_int m.Spine.Compact.max_prt;
          Report.Table.fmt_int
            (List.assoc corpus.Bioseq.Corpus.name paper) ])
      Bioseq.Corpus.dna
  in
  Report.Table.print
    ~title:
      (Printf.sprintf
         "Table 3: Maximum label values (synthetic genomes at scale %g)"
         cfg.Config.scale)
    ~headers:
      [ "Genome"; "Length"; "Max Value"; "max PT"; "max LEL"; "max PRT";
        "Paper (full length)" ]
    rows
    ~note:
      "Shape check: maxima are orders of magnitude below 65536 and grow \
       sublinearly with string length, as in the paper."
