lib/bioseq/fasta.mli: Alphabet Packed_seq
