lib/bioseq/synthetic.mli: Alphabet Packed_seq Rng
