lib/bioseq/corpus.mli: Alphabet Packed_seq Synthetic
