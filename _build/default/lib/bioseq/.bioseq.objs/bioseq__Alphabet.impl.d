lib/bioseq/alphabet.ml: Array Bytes Char Printf String
