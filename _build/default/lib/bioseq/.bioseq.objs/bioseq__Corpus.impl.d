lib/bioseq/corpus.ml: Alphabet List Rng String Synthetic
