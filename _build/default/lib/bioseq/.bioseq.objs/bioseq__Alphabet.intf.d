lib/bioseq/alphabet.mli:
