lib/bioseq/packed_seq.ml: Alphabet Array Array1 Bigarray Bytes Char String
