lib/bioseq/synthetic.ml: Alphabet Array Packed_seq Rng String
