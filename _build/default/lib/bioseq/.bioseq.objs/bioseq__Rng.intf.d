lib/bioseq/rng.mli:
