lib/bioseq/packed_seq.mli: Alphabet Bytes
