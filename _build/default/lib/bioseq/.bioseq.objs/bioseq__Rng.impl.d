lib/bioseq/rng.ml: Int64
