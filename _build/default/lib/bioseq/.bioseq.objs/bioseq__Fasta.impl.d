lib/bioseq/fasta.ml: Alphabet Buffer Char List Packed_seq String
