(** Alphabets over which strings are indexed.

    The paper's prototype targets DNA (4 symbols, 2 bits each) and protein
    residues (20 symbols, 5 bits each); this module additionally supports
    arbitrary byte alphabets so the index can be exercised on plain text
    and on adversarial test inputs.

    Symbols are manipulated as small integer {e codes} in [\[0, size)].
    Code [size] is reserved by {!Generalized} indexing as a separator and
    is never produced by {!encode}. *)

type t

val dna : t
(** [A C G T], 2 bits per symbol. *)

val protein : t
(** The 20 standard amino-acid one-letter codes, 5 bits per symbol. *)

val byte : t
(** All 256 byte values; mainly for tests and text workloads. *)

val make : string -> t
(** [make symbols] builds a custom alphabet whose code [i] renders as
    [symbols.[i]].  @raise Invalid_argument on empty or duplicated
    symbols, or if more than 255 symbols are given. *)

val size : t -> int
(** Number of symbols (excluding the reserved separator code). *)

val bits : t -> int
(** Bits needed to store one symbol code {e including} the reserved
    separator (3 for DNA, 5 for protein, 8 for bytes); this is the
    width used by bit-packed storage that must round-trip generalized
    (multi-string) sequences. *)

val payload_bits : t -> int
(** Bits needed for the plain symbols only — the paper's space
    accounting figure (2 for DNA, 5 for protein, 8 for bytes; Table 2's
    0.25-byte CharacterLabel row is [payload_bits / 8] for DNA). *)

val name : t -> string
(** Human-readable name used in reports. *)

val encode : t -> char -> int
(** [encode a c] is the code of character [c].
    @raise Invalid_argument if [c] is not in the alphabet. *)

val encode_opt : t -> char -> int option
(** Non-raising variant of {!encode}. *)

val decode : t -> int -> char
(** Inverse of {!encode}. The separator code [size a] renders as ['#'].
    @raise Invalid_argument on out-of-range codes. *)

val separator : t -> int
(** The reserved separator code, equal to [size a]. *)

val equal : t -> t -> bool
(** Structural equality of alphabets. *)

val fold_symbols : t -> init:'a -> f:('a -> int -> 'a) -> 'a
(** Fold over all symbol codes in increasing order. *)
