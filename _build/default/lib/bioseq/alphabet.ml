type t = {
  name : string;
  symbols : string;            (* code i renders as symbols.[i] *)
  codes : int array;           (* char -> code, or -1 *)
  bits : int;
  payload_bits : int;
}

let compute_bits n =
  let rec go b = if 1 lsl b >= n then b else go (b + 1) in
  go 1

let make_named name symbols =
  let n = String.length symbols in
  if n = 0 then invalid_arg "Alphabet.make: empty alphabet";
  if n > 255 then invalid_arg "Alphabet.make: more than 255 symbols";
  let codes = Array.make 256 (-1) in
  String.iteri
    (fun i c ->
      if codes.(Char.code c) >= 0 then
        invalid_arg "Alphabet.make: duplicate symbol";
      codes.(Char.code c) <- i)
    symbols;
  (* one extra value is reserved for the separator, hence [n + 1] *)
  { name; symbols; codes;
    bits = compute_bits (n + 1);
    payload_bits = compute_bits n }

let make symbols = make_named "custom" symbols

let dna = make_named "dna" "acgt"

let protein = make_named "protein" "ACDEFGHIKLMNPQRSTVWY"

let byte =
  let b = Bytes.create 255 in
  (* 255 symbols so that code 255 stays free for the separator *)
  for i = 0 to 254 do Bytes.set b i (Char.chr i) done;
  make_named "byte" (Bytes.to_string b)

let size t = String.length t.symbols
let bits t = t.bits
let payload_bits t = t.payload_bits
let name t = t.name
let separator t = size t

let encode_opt t c =
  let v = t.codes.(Char.code c) in
  if v < 0 then None else Some v

let encode t c =
  match encode_opt t c with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Alphabet.encode: %C not in %s" c t.name)

let decode t code =
  if code = size t then '#'
  else if code < 0 || code > size t then
    invalid_arg (Printf.sprintf "Alphabet.decode: code %d out of range" code)
  else t.symbols.[code]

let equal a b = a.symbols = b.symbols

let fold_symbols t ~init ~f =
  let acc = ref init in
  for code = 0 to size t - 1 do acc := f !acc code done;
  !acc
