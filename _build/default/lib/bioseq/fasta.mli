(** Minimal FASTA reader/writer.

    Real genome distributions (the paper uses E.coli, C.elegans and two
    human chromosomes) ship as FASTA; this module lets the CLI and the
    examples index user-supplied FASTA files.  Characters are normalised
    to lower case for DNA; characters outside the target alphabet (e.g.
    the ambiguity code [N]) are skipped, matching how MUMmer-era tools
    preprocessed chromosomes. *)

type record = {
  header : string;        (** text after ['>'], without the newline *)
  seq : Packed_seq.t;
}

val parse_string : Alphabet.t -> string -> record list
(** Parse a full FASTA document. Data before the first header is
    rejected. @raise Failure on malformed input. *)

val read_file : Alphabet.t -> string -> record list
(** Read and parse a file. *)

val to_string : record list -> string
(** Render records back to FASTA, wrapping sequence lines at 70
    characters. *)

val write_file : string -> record list -> unit
