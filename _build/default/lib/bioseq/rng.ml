type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let copy t = { state = t.state }

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Mask to 62 bits so the conversion to int is non-negative on 64-bit
     platforms, then reduce. The modulo bias is negligible for the bounds
     used in this code base (all far below 2^32). *)
  let raw = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  raw mod bound

let float t bound =
  let raw = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  bound *. (raw /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next64 t) 1L = 1L

let split t = { state = mix (next64 t) }
