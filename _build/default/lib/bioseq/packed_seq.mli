(** Growable sequences of alphabet codes.

    A [Packed_seq.t] is the in-memory representation of a data string: a
    sequence of small integer codes over an {!Alphabet.t}.  Codes are kept
    one-per-byte in a Bigarray for O(1) unboxed access (construction
    touches every character once per link-chain step, so access must be
    cheap), while {!packed_bits} exposes the bit-packed rendering used for
    serialization and for the paper's space accounting (2 bits per DNA
    character — the 0.25 bytes/char "CharacterLabel" row of Table 2). *)

type t

val create : ?capacity:int -> Alphabet.t -> t
(** Fresh empty sequence. *)

val of_string : Alphabet.t -> string -> t
(** [of_string a s] encodes every character of [s].
    @raise Invalid_argument if a character is not in [a]. *)

val of_codes : Alphabet.t -> int array -> t
(** Build from raw codes. @raise Invalid_argument on out-of-range codes
    (the separator code is allowed). *)

val alphabet : t -> Alphabet.t
val length : t -> int

val get : t -> int -> int
(** [get t i] is the code at position [i] (0-based). Unchecked beyond an
    assertion: callers index with trusted positions. *)

val append : t -> int -> unit
(** Append one code (separator allowed), growing the buffer as needed. *)

val append_string : t -> string -> unit
(** Encode and append every character of the argument. *)

val sub_string : t -> pos:int -> len:int -> string
(** Decode a slice back to characters. *)

val to_string : t -> string
(** Decode the whole sequence. *)

val packed_bits : t -> Bytes.t
(** Bit-packed rendering: [Alphabet.bits] bits per symbol, big-endian
    within bytes, zero-padded at the tail. *)

val of_packed_bits : Alphabet.t -> len:int -> Bytes.t -> t
(** Inverse of {!packed_bits} given the symbol count. *)

val packed_bytes_per_char : t -> float
(** Space accounting: bytes per indexed character of the packed form. *)

val equal : t -> t -> bool
(** Same alphabet and same code sequence. *)

val copy : t -> t

val iteri : t -> f:(int -> int -> unit) -> unit
(** [iteri t ~f] calls [f pos code] for each position in order. *)
