(** Deterministic pseudo-random number generation.

    All synthetic workloads in this repository are generated through this
    module rather than [Stdlib.Random] so that every experiment is exactly
    reproducible from a seed.  The generator is SplitMix64, which is fast,
    has a 64-bit state, and passes BigCrush. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator deterministically derived from
    [seed]. Two generators with the same seed produce identical streams. *)

val copy : t -> t
(** [copy t] duplicates the state so the copy can diverge from [t]. *)

val next64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]; used to
    give sub-tasks their own streams without coupling their consumption. *)
