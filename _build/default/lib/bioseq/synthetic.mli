(** Synthetic string workloads.

    The paper evaluates on real genomes and proteomes, which are not
    available in this environment.  SPINE's measured characteristics —
    sparse rib distribution (Table 4), small numeric labels (Table 3) and
    top-skewed link destinations (Figure 8) — are driven by one property
    of biological sequence: local compositional bias plus long-range
    approximate repeats.  The generators here reproduce exactly that:

    - {!uniform}: i.i.d. symbols, the {e least} repetitive baseline;
    - {!markov}: order-[k] Markov text with skewed transition tables,
      modelling compositional bias;
    - {!genomic}: Markov text interleaved with copy events that duplicate
      an earlier segment and apply point mutations, modelling repeat
      families (SINEs/LINEs, gene duplications).

    All generators are deterministic given their {!Rng.t}. *)

val uniform : Alphabet.t -> Rng.t -> int -> Packed_seq.t
(** [uniform a rng n] draws [n] symbols independently and uniformly. *)

val markov :
  ?order:int -> ?skew:float -> Alphabet.t -> Rng.t -> int -> Packed_seq.t
(** [markov a rng n] generates order-[order] Markov text (default 2).
    [skew] in [\[0, 1\]] (default 0.6) controls how biased each context's
    transition distribution is: 0 degenerates to uniform, values near 1
    concentrate most mass on one successor. *)

type repeat_profile = {
  repeat_prob : float;      (** probability of starting a copy event at
                                each emitted position *)
  mean_repeat_len : int;    (** geometric mean length of copied segments *)
  mutation_rate : float;    (** per-symbol substitution rate inside copies *)
  order : int;              (** Markov order of the background text *)
  skew : float;             (** background transition skew *)
  clean_copy_prob : float;  (** fraction of copies left mutation-free,
                                modelling recent duplications (these set
                                the maximum exact-repeat length, i.e.
                                the Table 3 label maxima) *)
  long_copy_prob : float;   (** fraction of copies drawn with a
                                [long_copy_factor] times longer mean,
                                modelling segmental duplications *)
  long_copy_factor : int;
}

val default_repeats : repeat_profile
(** A profile calibrated so the resulting SPINE statistics fall in the
    paper's reported ranges (28–35 % of nodes carrying downstream edges,
    label maxima a few thousand at the megabase scale). *)

val genomic :
  ?profile:repeat_profile -> Alphabet.t -> Rng.t -> int -> Packed_seq.t
(** Repeat-injected Markov text of the requested length. *)

val mutate :
  rate:float -> Rng.t -> Packed_seq.t -> Packed_seq.t
(** [mutate ~rate rng s] substitutes each symbol independently with
    probability [rate]; used to derive "related genome" query strings for
    the cross-matching experiments (Tables 5–7). *)

val fibonacci : Alphabet.t -> int -> Packed_seq.t
(** The Fibonacci word over the first two alphabet symbols, truncated to
    the requested length — a classic adversarial, highly repetitive
    input for suffix structures. *)

val periodic : Alphabet.t -> period:string -> int -> Packed_seq.t
(** [periodic a ~period n] repeats [period] up to length [n]. *)
