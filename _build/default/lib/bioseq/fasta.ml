type record = { header : string; seq : Packed_seq.t }

(* Residues are matched case-insensitively: DNA alphabets are lower case,
   protein alphabets upper case, and FASTA files use either. Characters
   that match in no case (ambiguity codes such as N) are skipped. *)
let add_char seq c =
  let alphabet = Packed_seq.alphabet seq in
  let try_code c = Alphabet.encode_opt alphabet c in
  match try_code c with
  | Some code -> Packed_seq.append seq code
  | None ->
    match try_code (Char.lowercase_ascii c) with
    | Some code -> Packed_seq.append seq code
    | None ->
      match try_code (Char.uppercase_ascii c) with
      | Some code -> Packed_seq.append seq code
      | None -> ()

let parse_string alphabet text =
  let records = ref [] in
  let current : (string * Packed_seq.t) option ref = ref None in
  let flush () =
    match !current with
    | None -> ()
    | Some (header, seq) ->
      records := { header; seq } :: !records;
      current := None
  in
  let handle_line line =
    let line =
      let n = String.length line in
      if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
    in
    if String.length line = 0 then ()
    else if line.[0] = '>' then begin
      flush ();
      current := Some (String.sub line 1 (String.length line - 1),
                       Packed_seq.create alphabet)
    end
    else
      match !current with
      | None -> failwith "Fasta.parse_string: sequence data before first header"
      | Some (_, seq) -> String.iter (add_char seq) line
  in
  String.split_on_char '\n' text |> List.iter handle_line;
  flush ();
  List.rev !records

let read_file alphabet path =
  let ic = open_in_bin path in
  let contents =
    try
      let n = in_channel_length ic in
      really_input_string ic n
    with e -> close_in ic; raise e
  in
  close_in ic;
  parse_string alphabet contents

let to_string records =
  let buf = Buffer.create 4096 in
  List.iter
    (fun { header; seq } ->
      Buffer.add_char buf '>';
      Buffer.add_string buf header;
      Buffer.add_char buf '\n';
      let len = Packed_seq.length seq in
      let pos = ref 0 in
      while !pos < len do
        let chunk = min 70 (len - !pos) in
        Buffer.add_string buf (Packed_seq.sub_string seq ~pos:!pos ~len:chunk);
        Buffer.add_char buf '\n';
        pos := !pos + chunk
      done)
    records;
  Buffer.contents buf

let write_file path records =
  let oc = open_out_bin path in
  (try output_string oc (to_string records)
   with e -> close_out oc; raise e);
  close_out oc
