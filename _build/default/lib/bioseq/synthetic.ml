let uniform alphabet rng n =
  let size = Alphabet.size alphabet in
  let seq = Packed_seq.create ~capacity:(max 1 n) alphabet in
  for _ = 1 to n do Packed_seq.append seq (Rng.int rng size) done;
  seq

(* A transition table maps a context id to a cumulative distribution over
   successor symbols. Distributions are drawn by taking [size] exponential
   weights raised to a power controlled by [skew], which interpolates
   between uniform (skew = 0) and near-deterministic (skew -> 1). *)
let make_transitions alphabet rng ~order ~skew =
  let size = Alphabet.size alphabet in
  let contexts = int_of_float (float_of_int size ** float_of_int order) in
  let table = Array.make_matrix contexts size 0.0 in
  for ctx = 0 to contexts - 1 do
    let weights =
      Array.init size (fun _ ->
          let u = max 1e-9 (Rng.float rng 1.0) in
          (* heavier skew -> heavier tail *)
          u ** (1.0 /. max 1e-6 (1.0 -. skew)))
    in
    let total = Array.fold_left ( +. ) 0.0 weights in
    let acc = ref 0.0 in
    for sym = 0 to size - 1 do
      acc := !acc +. (weights.(sym) /. total);
      table.(ctx).(sym) <- !acc
    done;
    (* guard against rounding leaving the last bucket short *)
    table.(ctx).(size - 1) <- 1.0
  done;
  table

let sample_row rng row =
  let u = Rng.float rng 1.0 in
  let n = Array.length row in
  let rec go i = if i >= n - 1 || u < row.(i) then i else go (i + 1) in
  go 0

let markov ?(order = 2) ?(skew = 0.6) alphabet rng n =
  if order < 0 then invalid_arg "Synthetic.markov: negative order";
  let size = Alphabet.size alphabet in
  let table = make_transitions alphabet rng ~order ~skew in
  let contexts = Array.length table in
  let seq = Packed_seq.create ~capacity:(max 1 n) alphabet in
  let ctx = ref 0 in
  for _ = 1 to n do
    let sym = sample_row rng table.(!ctx) in
    Packed_seq.append seq sym;
    ctx := ((!ctx * size) + sym) mod contexts
  done;
  seq

type repeat_profile = {
  repeat_prob : float;
  mean_repeat_len : int;
  mutation_rate : float;
  order : int;
  skew : float;
  clean_copy_prob : float;
  long_copy_prob : float;
  long_copy_factor : int;
}

(* Calibrated against the paper's Table 4 (see Corpus): ~30 % of SPINE
   nodes end up carrying downstream edges, decaying with fanout. *)
let default_repeats =
  { repeat_prob = 0.0005;
    mean_repeat_len = 200;
    mutation_rate = 0.03;
    order = 2;
    skew = 0.0;
    clean_copy_prob = 0.15;
    long_copy_prob = 0.04;
    long_copy_factor = 12 }

let geometric rng mean =
  (* mean of a geometric with success prob p is 1/p *)
  let p = 1.0 /. float_of_int (max 1 mean) in
  let rec go n =
    if n > 50 * mean then n
    else if Rng.float rng 1.0 < p then n
    else go (n + 1)
  in
  1 + go 0

let genomic ?(profile = default_repeats) alphabet rng n =
  let size = Alphabet.size alphabet in
  let table =
    make_transitions alphabet rng ~order:profile.order ~skew:profile.skew
  in
  let contexts = Array.length table in
  let seq = Packed_seq.create ~capacity:(max 1 n) alphabet in
  let ctx = ref 0 in
  let emit sym =
    Packed_seq.append seq sym;
    ctx := ((!ctx * size) + sym) mod contexts
  in
  while Packed_seq.length seq < n do
    let len_so_far = Packed_seq.length seq in
    if len_so_far > 64 && Rng.float rng 1.0 < profile.repeat_prob then begin
      (* copy event: duplicate an earlier segment with point mutations.
         A small fraction of events are long (segmental duplications)
         and a fraction are mutation-free (recent duplications) — both
         needed to reproduce the paper's Table 3 label magnitudes. *)
      let mean =
        if Rng.float rng 1.0 < profile.long_copy_prob then
          profile.mean_repeat_len * profile.long_copy_factor
        else profile.mean_repeat_len
      in
      let mutation_rate =
        if Rng.float rng 1.0 < profile.clean_copy_prob then 0.0
        else profile.mutation_rate
      in
      let seg_len = min (geometric rng mean) len_so_far in
      let src = Rng.int rng (len_so_far - seg_len + 1) in
      let budget = n - len_so_far in
      let seg_len = min seg_len budget in
      for i = 0 to seg_len - 1 do
        let sym = Packed_seq.get seq (src + i) in
        let sym =
          if Rng.float rng 1.0 < mutation_rate then Rng.int rng size
          else sym
        in
        emit sym
      done
    end
    else emit (sample_row rng table.(!ctx))
  done;
  seq

let mutate ~rate rng s =
  let alphabet = Packed_seq.alphabet s in
  let size = Alphabet.size alphabet in
  let out = Packed_seq.create ~capacity:(max 1 (Packed_seq.length s)) alphabet in
  Packed_seq.iteri s ~f:(fun _ code ->
      let code =
        if code < size && Rng.float rng 1.0 < rate then Rng.int rng size
        else code
      in
      Packed_seq.append out code);
  out

let fibonacci alphabet n =
  if Alphabet.size alphabet < 2 then
    invalid_arg "Synthetic.fibonacci: alphabet too small";
  let seq = Packed_seq.create ~capacity:(max 1 n) alphabet in
  (* iterative fibonacci-word morphism: 0 -> 01, 1 -> 0, grown in memory *)
  let prev = ref [| 0 |] and cur = ref [| 0; 1 |] in
  while Array.length !cur < n do
    let next = Array.append !cur !prev in
    prev := !cur;
    cur := next
  done;
  for i = 0 to min n (Array.length !cur) - 1 do
    Packed_seq.append seq !cur.(i)
  done;
  seq

let periodic alphabet ~period n =
  if String.length period = 0 then invalid_arg "Synthetic.periodic: empty period";
  let seq = Packed_seq.create ~capacity:(max 1 n) alphabet in
  for i = 0 to n - 1 do
    let c = period.[i mod String.length period] in
    Packed_seq.append seq (Alphabet.encode alphabet c)
  done;
  seq
