lib/spine/cursor.mli: Index
