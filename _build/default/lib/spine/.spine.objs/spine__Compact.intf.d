lib/spine/compact.mli: Bioseq Compact_store Matcher Stats
