lib/spine/cursor.ml: Array Bioseq Fast_store Index List Matcher Search Xutil
