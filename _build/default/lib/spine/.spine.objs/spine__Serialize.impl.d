lib/spine/serialize.ml: Bioseq Buffer Bytes Char Fast_store Index List Printf String
