lib/spine/serialize.mli: Bytes Index
