lib/spine/generalized.mli: Bioseq Index
