lib/spine/persistent.ml: Array Bioseq Buffer Builder Bytes Char Compact Compact_store Hashtbl Int32 List Matcher Pagestore Printf Search Stats String Sys
