lib/spine/generalized.ml: Array Bioseq Index List Printf
