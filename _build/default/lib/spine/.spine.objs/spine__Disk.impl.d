lib/spine/disk.ml: Array Bioseq Compact List Pagestore
