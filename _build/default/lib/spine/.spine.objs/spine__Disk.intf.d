lib/spine/disk.mli: Bioseq Compact Pagestore
