lib/spine/store_sig.ml: Bioseq
