lib/spine/validate.mli: Index
