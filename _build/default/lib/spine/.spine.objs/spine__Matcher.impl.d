lib/spine/matcher.ml: Array Bioseq List Search Store_sig Xutil
