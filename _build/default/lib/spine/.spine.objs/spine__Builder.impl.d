lib/spine/builder.ml: Bioseq Store_sig String
