lib/spine/persistent.mli: Bioseq Compact Pagestore
