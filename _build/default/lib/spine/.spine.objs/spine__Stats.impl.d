lib/spine/stats.ml: Array Bioseq Store_sig
