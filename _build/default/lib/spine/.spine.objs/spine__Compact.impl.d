lib/spine/compact.ml: Bioseq Builder Compact_store Matcher Search Stats String
