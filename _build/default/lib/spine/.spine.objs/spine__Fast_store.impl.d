lib/spine/fast_store.ml: Bioseq Hashtbl Xutil
