lib/spine/index.mli: Bioseq Fast_store Matcher Stats
