lib/spine/index.ml: Array Bioseq Builder Fast_store List Matcher Option Search Stats String Xutil
