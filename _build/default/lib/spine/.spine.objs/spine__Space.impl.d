lib/spine/space.ml: Bioseq Compact List
