lib/spine/validate.ml: Bioseq Fast_store Index List Printf String
