lib/spine/compact_store.ml: Array Bioseq Bytes Char Hashtbl Int32
