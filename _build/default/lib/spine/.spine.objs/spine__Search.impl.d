lib/spine/search.ml: Array Bioseq Hashtbl List Option Store_sig String Xutil
