lib/spine/space.mli: Bioseq Compact
