(** Structural invariant checker for SPINE indexes.

    Verifies, without any external oracle, every invariant the paper's
    structure guarantees by construction:

    - node count = string length + 1; every non-root node has a link;
    - links point strictly upstream; LEL values are bounded by the
      source node's depth and by [LEL(dest) < LEL] chains;
    - ribs point strictly downstream of their source, never duplicate a
      vertebra label, and at most one rib per (node, character);
    - PT of a rib is below its destination (a suffix cannot be longer
      than the prefix it ends); extrib PTs exceed their parent rib's PT
      and PRT equals the parent rib's PT; extrib chains are acyclic;
    - every rib/extrib destination's incoming path is consistent: the
      characters spelled by the edge match the backbone at the
      destination ([char at dest - 1] equals the edge's label).

    O(n * alphabet) — cheap enough to run after a bulk load or a
    deserialize in production ([spine stats --check] in the CLI). *)

type violation = {
  where : string;   (** e.g. "link(42)", "rib(7,'c')" *)
  what : string;    (** human-readable description *)
}

val check : Index.t -> violation list
(** Empty when the structure is sound. *)

val check_exn : Index.t -> unit
(** @raise Failure listing the first violations if any. *)
