module S = Compact_store
module B = Builder.Make (S)
module Q = Search.Make (S)
module M = Matcher.Make (S)
module St = Stats.Make (S)

type t = S.t
type trace = S.trace

let create ?capacity ?trace alphabet = S.create ?capacity ?trace alphabet
let append = B.append
let append_string = B.append_string

let of_seq ?trace seq =
  let t =
    create ~capacity:(max 16 (Bioseq.Packed_seq.length seq)) ?trace
      (Bioseq.Packed_seq.alphabet seq)
  in
  B.append_seq t seq;
  t

let of_string ?trace alphabet s =
  let t = create ~capacity:(max 16 (String.length s)) ?trace alphabet in
  append_string t s;
  t

let alphabet = S.alphabet
let length = S.length
let node_count t = S.length t + 1

let contains = Q.contains
let contains_codes = Q.contains_codes
let find_first = Q.find_first
let first_occurrence = Q.first_occurrence
let occurrences = Q.occurrences
let end_nodes = Q.end_nodes

type match_stats = M.stats = {
  nodes_checked : int;
  suffixes_checked : int;
}

type mmatch = M.mmatch = {
  query_end : int;
  length : int;
  data_ends : int list;
}

let matching_statistics = M.matching_statistics
let maximal_matches = M.maximal_matches

type label_maxima = St.label_maxima = {
  max_pt : int;
  max_lel : int;
  max_prt : int;
}

let label_maxima = St.label_maxima
let rib_distribution = St.rib_distribution
let link_histogram = St.link_histogram

type space = S.space = {
  lt_bytes : int;
  rt_bytes : int;
  rt_slack_bytes : int;
  overflow_bytes : int;
  string_bytes : int;
  migrations : int;
}

let space = S.space
let bytes_per_char = S.bytes_per_char
let live_rows = S.live_rows
let row_bytes = S.row_bytes
let overflow_count = S.overflow_count
let store t = t
