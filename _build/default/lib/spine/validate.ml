type violation = {
  where : string;
  what : string;
}

let check idx =
  let out = ref [] in
  let add where what = out := { where; what } :: !out in
  let n = Index.length idx in
  let store = Index.store idx in
  let char_at = Fast_store.char_at store in
  let same_suffix ~end1 ~end2 ~len =
    (* the [len] characters ending at nodes end1 and end2 coincide *)
    let rec go k =
      k >= len || (char_at (end1 - len + k) = char_at (end2 - len + k) && go (k + 1))
    in
    end1 >= len && end2 >= len && go 0
  in
  (* links *)
  for i = 1 to n do
    let where = Printf.sprintf "link(%d)" i in
    let dest, lel = Index.link idx i in
    if dest < 0 || dest >= i then
      add where (Printf.sprintf "destination %d not strictly upstream" dest);
    if lel < 0 || lel > dest || lel >= i then
      add where (Printf.sprintf "LEL %d out of range for dest %d" lel dest);
    if lel = 0 && dest <> 0 then
      add where "LEL 0 must point at the root";
    if lel > 0 && not (same_suffix ~end1:i ~end2:dest ~len:lel) then
      add where
        (Printf.sprintf "the %d characters above %d and %d differ" lel i dest)
  done;
  (* ribs *)
  let sigma = Bioseq.Alphabet.size (Index.alphabet idx) in
  for m = 0 to n do
    for c = 0 to sigma do
      match Index.rib idx m c with
      | None -> ()
      | Some (dest, pt) ->
        let where = Printf.sprintf "rib(%d,%d)" m c in
        if dest <= m then add where "destination not strictly downstream";
        if dest < 1 || dest > n then add where "destination out of range"
        else begin
          if char_at (dest - 1) <> c then
            add where "destination's incoming character differs from CL";
          if m < n && char_at m = c then
            add where "duplicates the vertebra label";
          if pt > m then add where "PT exceeds the source node's depth";
          if pt >= dest then add where "PT not below the destination";
          (* the PT-suffix really extends: chars above m and above
             dest - 1 must agree on pt characters *)
          if pt > 0 && not (same_suffix ~end1:m ~end2:(dest - 1) ~len:pt) then
            add where "PT-suffix does not match the destination context"
        end
    done;
    (* extribs *)
    match Fast_store.find_extrib store m with
    | None -> ()
    | Some (dest, pt, prt, anchor) ->
      let where = Printf.sprintf "extrib(%d)" m in
      if dest <= m then add where "destination not strictly downstream";
      if dest < 1 || dest > n then add where "destination out of range"
      else begin
        if prt >= pt then add where "PRT must be below PT";
        if anchor < 1 || anchor > n then add where "anchor out of range"
        else if char_at (dest - 1) <> char_at (anchor - 1) then
          add where
            "represented character differs from the parent rib's";
        if pt >= dest then add where "PT not below the destination"
      end
  done;
  List.rev !out

let check_exn idx =
  match check idx with
  | [] -> ()
  | violations ->
    let head =
      violations
      |> List.filteri (fun i _ -> i < 5)
      |> List.map (fun v -> Printf.sprintf "%s: %s" v.where v.what)
      |> String.concat "; "
    in
    failwith
      (Printf.sprintf "Spine.Validate: %d violation(s): %s"
         (List.length violations) head)
