(** Binary persistence for SPINE indexes.

    A SPINE index is fully determined by its vertebra labels (the data
    string), links, ribs and extribs; this module writes them in a
    compact little-endian format and reads them back without
    re-running construction.  The format is self-describing (magic,
    version, alphabet) and is what {!Disk} images and the CLI's
    [index save/load] commands use. *)

val to_bytes : Index.t -> Bytes.t

val of_bytes : Bytes.t -> Index.t
(** @raise Failure on magic/version mismatch or truncated input. *)

val to_file : string -> Index.t -> unit

val of_file : string -> Index.t

val header_size : int
(** Fixed bytes before the payload; exposed for format tests. *)
