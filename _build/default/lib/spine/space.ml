type field = {
  name : string;
  bytes : float;
  count : int;
}

let naive_node_fields alphabet =
  let rib_slots = Bioseq.Alphabet.size alphabet - 1 in
  [ { name = "CharacterLabel";
      bytes = float_of_int (Bioseq.Alphabet.payload_bits alphabet) /. 8.0;
      count = 1 }
  ; { name = "Vertebra Dest"; bytes = 4.0; count = 1 }
  ; { name = "Link Dest"; bytes = 4.0; count = 1 }
  ; { name = "Link LEL"; bytes = 4.0; count = 1 }
  ; { name = "Rib Dest"; bytes = 4.0; count = rib_slots }
  ; { name = "Rib PT"; bytes = 4.0; count = rib_slots }
  ; { name = "ExtRib Dest"; bytes = 4.0; count = 1 }
  ; { name = "ExtRib PT"; bytes = 4.0; count = 1 }
  ; { name = "ExtRib PRT"; bytes = 4.0; count = 1 }
  ]

let naive_node_bytes alphabet =
  List.fold_left
    (fun acc f -> acc +. (f.bytes *. float_of_int f.count))
    0.0 (naive_node_fields alphabet)

type breakdown = {
  total_bytes : int;
  bytes_per_char : float;
  lt_bytes : int;
  rt_bytes : int;
  overflow_bytes : int;
  string_bytes : int;
}

let measure c =
  let s = Compact.space c in
  let total =
    s.Compact.lt_bytes + s.Compact.rt_bytes + s.Compact.overflow_bytes
    + s.Compact.string_bytes
  in
  { total_bytes = total;
    bytes_per_char = Compact.bytes_per_char c;
    lt_bytes = s.Compact.lt_bytes;
    rt_bytes = s.Compact.rt_bytes;
    overflow_bytes = s.Compact.overflow_bytes;
    string_bytes = s.Compact.string_bytes }

let suffix_tree_model_bytes_per_char = 17.0
