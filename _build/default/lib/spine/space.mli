(** The paper's space accounting (Section 5, Table 2).

    Table 2 prices the naive one-record-per-node layout at 48.25 bytes
    per node for DNA; the optimisations of Section 5 (implicit vertebra
    destinations, 2-byte labels, fanout-segregated rib tables) bring the
    measured cost below 12 bytes per character.  This module exposes the
    static Table 2 model and the per-component breakdown of a built
    {!Compact} index. *)

type field = {
  name : string;
  bytes : float;   (** per instance *)
  count : int;     (** instances per node in the naive layout *)
}

val naive_node_fields : Bioseq.Alphabet.t -> field list
(** The rows of Table 2 for a given alphabet: character label
    ([bits/8] bytes), vertebra destination, link dest/LEL, one rib
    dest + PT per non-vertebra symbol, extrib dest/PT/PRT. *)

val naive_node_bytes : Bioseq.Alphabet.t -> float
(** Total of {!naive_node_fields} — 48.25 for DNA, as in Table 2. *)

type breakdown = {
  total_bytes : int;
  bytes_per_char : float;
  lt_bytes : int;
  rt_bytes : int;
  overflow_bytes : int;
  string_bytes : int;
}

val measure : Compact.t -> breakdown
(** Component breakdown of a built compact index. *)

val suffix_tree_model_bytes_per_char : float
(** The 17 bytes/char the paper attributes to standard suffix tree
    implementations, used when relating measured sizes back to the
    paper's claims. *)
