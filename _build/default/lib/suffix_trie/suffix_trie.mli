(** The uncompacted suffix trie of the paper's Figure 1.

    This is the structure both compaction strategies start from: the trie
    holding every suffix of the data string.  It is quadratic in the
    string length and therefore only suitable for short strings; it
    exists as (a) the ground-truth oracle for the compacted indexes and
    (b) the yardstick for quantifying compaction (node counts in the
    trie vs the suffix tree vs SPINE). *)

type t

val build : Bioseq.Packed_seq.t -> t
(** Build the trie of all suffixes. O(n^2) time and space. *)

val of_string : Bioseq.Alphabet.t -> string -> t

val node_count : t -> int
(** Number of nodes including the root. *)

val edge_count : t -> int

val contains : t -> string -> bool
(** Substring test: does a root path spell the argument? *)

val contains_codes : t -> int array -> bool

val count_unary : t -> int
(** Nodes with exactly one child — the nodes vertical compaction (suffix
    trees) merges away. *)

val distinct_substrings : t -> int
(** Number of distinct non-empty substrings of the data string, which is
    exactly [node_count - 1]: every trie node's root path spells a
    distinct substring. Horizontal compaction collapses all of these
    onto a backbone of only [length + 1] nodes. *)
