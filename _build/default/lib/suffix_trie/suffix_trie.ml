type node = {
  mutable children : (int * node) list;  (* code -> child; fanout is tiny *)
}

type t = {
  root : node;
  alphabet : Bioseq.Alphabet.t;
  mutable nodes : int;
}

let new_node () = { children = [] }

let child node code = List.assoc_opt code node.children

let insert_suffix t seq pos =
  let len = Bioseq.Packed_seq.length seq in
  let rec go node i =
    if i < len then begin
      let code = Bioseq.Packed_seq.get seq i in
      match child node code with
      | Some next -> go next (i + 1)
      | None ->
        let next = new_node () in
        node.children <- (code, next) :: node.children;
        t.nodes <- t.nodes + 1;
        go next (i + 1)
    end
  in
  go t.root pos

let build seq =
  let t =
    { root = new_node (); alphabet = Bioseq.Packed_seq.alphabet seq; nodes = 1 }
  in
  for pos = 0 to Bioseq.Packed_seq.length seq - 1 do
    insert_suffix t seq pos
  done;
  t

let of_string alphabet s = build (Bioseq.Packed_seq.of_string alphabet s)

let node_count t = t.nodes
let edge_count t = t.nodes - 1

let contains_codes t codes =
  let rec go node i =
    if i >= Array.length codes then true
    else
      match child node codes.(i) with
      | Some next -> go next (i + 1)
      | None -> false
  in
  go t.root 0

let contains t s =
  match
    Array.init (String.length s) (fun i -> Bioseq.Alphabet.encode t.alphabet s.[i])
  with
  | codes -> contains_codes t codes
  | exception Invalid_argument _ -> false

let count_unary t =
  let rec go acc node =
    let acc = if List.length node.children = 1 then acc + 1 else acc in
    List.fold_left (fun acc (_, child) -> go acc child) acc node.children
  in
  go 0 t.root

let distinct_substrings t = t.nodes - 1
