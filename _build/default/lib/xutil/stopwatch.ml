let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let median_of k f =
  if k < 1 then invalid_arg "Stopwatch.median_of";
  let times = Array.make k 0.0 in
  let result = ref None in
  for i = 0 to k - 1 do
    let r, dt = time f in
    times.(i) <- dt;
    result := Some r
  done;
  Array.sort compare times;
  match !result with
  | Some r -> (r, times.(k / 2))
  | None -> assert false
