(** Wall-clock timing helper for the experiment harness. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with the elapsed wall
    time in seconds. *)

val median_of : int -> (unit -> 'a) -> 'a * float
(** [median_of k f] runs [f] [k] times and returns the last result with
    the median elapsed time — the aggregation the timing tables use to
    resist scheduler noise. *)
