lib/xutil/int_vec.mli:
