lib/xutil/stopwatch.mli:
