lib/xutil/int_vec.ml: Array
