lib/xutil/stopwatch.ml: Array Unix
