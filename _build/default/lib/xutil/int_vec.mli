(** Growable vectors of unboxed integers.

    Both index implementations are array-based for cache behaviour and
    GC friendliness (a pointer-per-node representation would triple the
    footprint and defeat the space comparison); this is the shared
    growable backing store. *)

type t

val create : ?capacity:int -> unit -> t

val make : int -> int -> t
(** [make n v] is a vector of length [n] filled with [v]. *)

val length : t -> int

val get : t -> int -> int
(** Bounds-checked by assertion only; hot path. *)

val set : t -> int -> int -> unit

val push : t -> int -> unit
(** Append, growing capacity geometrically. *)

val pop : t -> int
(** Remove and return the last element. @raise Invalid_argument if empty. *)

val truncate : t -> int -> unit
(** [truncate t n] shortens the vector to [n] elements.
    @raise Invalid_argument if [n] exceeds the current length. *)

val clear : t -> unit

val blit_to_array : t -> int array
(** Copy out the contents. *)

val iter : t -> f:(int -> unit) -> unit

val fold : t -> init:'a -> f:('a -> int -> 'a) -> 'a

val binary_search : t -> int -> int option
(** [binary_search t v] finds the index of [v] assuming the vector is
    sorted ascending; [None] if absent. Used by the target-node-buffer
    lookup of the paper's all-occurrences search. *)
