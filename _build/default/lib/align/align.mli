(** Genome-alignment pipeline on top of the string indexes.

    The paper motivates SPINE with MUMmer-style whole-genome alignment:
    find the maximal matching substrings between two long sequences,
    keep the significant ones, and chain a consistent subset into an
    alignment skeleton.  This module implements that pipeline —
    maximal-match enumeration (via either index), uniqueness filtering
    (MUMs proper), and longest-increasing-subsequence chaining — and is
    what the [genome_alignment] example runs. *)

type anchor = {
  ref_pos : int;     (** 0-based start in the reference *)
  query_pos : int;   (** 0-based start in the query *)
  len : int;
}

type engine = [ `Spine | `Suffix_tree ]

val maximal_match_anchors :
  engine:engine -> threshold:int ->
  Bioseq.Packed_seq.t -> Bioseq.Packed_seq.t -> anchor list
(** All (reference, query) occurrence pairs of right-maximal matches of
    length >= [threshold] between the two sequences, sorted by query
    position. The [engine] selects which index implementation does the
    work; both return identical anchor sets (tested). *)

val unique_anchors : anchor list -> anchor list
(** MUM filtering: keep anchors whose matched substring occurs exactly
    once on each side among the reported anchors (unique ref position
    AND unique query position). *)

val chain : anchor list -> anchor list
(** Heaviest consistent chain: the subset of anchors strictly
    increasing in both coordinates that maximises total matched length,
    via patience/LIS dynamic programming in O(k log k). This is the
    alignment skeleton MUMmer builds from MUMs. *)

type summary = {
  anchors : int;
  unique : int;
  chained : int;
  chained_bases : int;
  coverage : float;   (** chained bases / query length *)
}

val align :
  ?engine:engine -> threshold:int ->
  Bioseq.Packed_seq.t -> Bioseq.Packed_seq.t -> anchor list * summary
(** Full pipeline: anchors -> unique -> chain, with a summary. *)

(** Approximate (k-mismatch / k-edit) pattern matching over a SPINE
    index; see {!module:Approx}. *)
module Approx = Approx
