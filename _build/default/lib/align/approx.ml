type hit = {
  pos : int;
  errors : int;
  match_len : int;
}

(* Split the pattern into [parts] contiguous seeds of near-equal
   length; returns (offset, length) pairs. *)
let seeds pattern parts =
  let m = Array.length pattern in
  let base = m / parts and extra = m mod parts in
  let out = ref [] in
  let off = ref 0 in
  for j = 0 to parts - 1 do
    let len = base + (if j < extra then 1 else 0) in
    out := (!off, len) :: !out;
    off := !off + len
  done;
  List.rev !out

(* Exact occurrences of the pattern slice [off, off+len) as data start
   positions, via the index. *)
let seed_hits idx pattern (off, len) =
  let seed = Array.sub pattern off len in
  Spine.Index.occurrences idx seed

let validate pattern k =
  if k < 0 then invalid_arg "Approx: negative error budget";
  if Array.length pattern = 0 then invalid_arg "Approx: empty pattern"

(* candidate start positions from the pigeonhole seeds, deduplicated
   and sorted; [slack] widens the window for indels *)
let candidates idx pattern ~k ~slack =
  let m = Array.length pattern in
  let n = Spine.Index.length idx in
  let set = Hashtbl.create 64 in
  List.iter
    (fun ((off, len) as seed) ->
      if len > 0 then
        List.iter
          (fun o ->
            let base = o - off in
            for s = base - slack to base + slack do
              if s >= 0 && s <= n - (m - k) then Hashtbl.replace set s ()
            done)
          (seed_hits idx pattern seed))
    (seeds pattern (k + 1));
  let out = Hashtbl.fold (fun s () acc -> s :: acc) set [] in
  List.sort compare out

let hamming_hits idx ~pattern ~k =
  validate pattern k;
  let m = Array.length pattern in
  let n = Spine.Index.length idx in
  let seq = Spine.Index.sequence idx in
  let verify s =
    if s < 0 || s + m > n then None
    else begin
      let errors = ref 0 in
      (try
         for j = 0 to m - 1 do
           if Bioseq.Packed_seq.get seq (s + j) <> pattern.(j) then begin
             incr errors;
             if !errors > k then raise Exit
           end
         done;
         Some { pos = s; errors = !errors; match_len = m }
       with Exit -> None)
    end
  in
  let starts =
    if k >= m then List.init (max 0 (n - m + 1)) (fun s -> s)
    else candidates idx pattern ~k ~slack:0
  in
  List.filter_map verify starts

let hamming idx ~pattern ~k = hamming_hits idx ~pattern ~k

let hamming_count idx ~pattern ~k = List.length (hamming_hits idx ~pattern ~k)

(* Banded edit-distance verification: the best (distance, data length)
   over alignments of the whole pattern against data starting at [s]. *)
let banded_edit seq n pattern s k =
  let m = Array.length pattern in
  let inf = max_int / 2 in
  (* dp over pattern prefix i (rows), data length j in the band
     [i - k, i + k]; dp.(j - (i - k)) after row i *)
  let width = (2 * k) + 1 in
  let prev = Array.make width inf in
  let cur = Array.make width inf in
  (* row 0: aligning empty pattern prefix against j data chars costs j *)
  for b = 0 to width - 1 do
    let j = b - k in
    prev.(b) <- (if j >= 0 && s + j <= n then j else inf)
  done;
  for i = 1 to m do
    for b = 0 to width - 1 do
      let j = i - k + b in
      if j < 0 || s + j > n then cur.(b) <- inf
      else begin
        let sub =
          (* diagonal: j-1 in row i-1 is the same band index b *)
          if j = 0 then inf
          else
            let d = prev.(b) in
            if d >= inf then inf
            else
              d
              + (if s + j - 1 < n
                    && Bioseq.Packed_seq.get seq (s + j - 1) = pattern.(i - 1)
                 then 0
                 else 1)
        in
        let del =
          (* skip a pattern char: row i-1, same j = band b + 1 *)
          if b + 1 < width && prev.(b + 1) < inf then prev.(b + 1) + 1 else inf
        in
        let ins =
          (* consume a data char: same row, j-1 = band b - 1 *)
          if b > 0 && cur.(b - 1) < inf then cur.(b - 1) + 1 else inf
        in
        cur.(b) <- min sub (min del ins)
      end
    done;
    Array.blit cur 0 prev 0 width
  done;
  (* best over data lengths j = m - k .. m + k *)
  let best = ref None in
  for b = 0 to width - 1 do
    let j = m - k + b in
    if j >= 0 && s + j <= n && prev.(b) <= k then
      match !best with
      | Some (d, _) when d <= prev.(b) -> ()
      | _ -> best := Some (prev.(b), j)
  done;
  !best

let edit idx ~pattern ~k =
  validate pattern k;
  let m = Array.length pattern in
  let n = Spine.Index.length idx in
  let seq = Spine.Index.sequence idx in
  let starts =
    if k >= m then List.init (max 0 (n - (m - k) + 1)) (fun s -> s)
    else candidates idx pattern ~k ~slack:k
  in
  List.filter_map
    (fun s ->
      match banded_edit seq n pattern s k with
      | Some (errors, match_len) -> Some { pos = s; errors; match_len }
      | None -> None)
    starts
