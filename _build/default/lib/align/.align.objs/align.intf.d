lib/align/align.mli: Approx Bioseq
