lib/align/approx.mli: Spine
