lib/align/approx.ml: Array Bioseq Hashtbl List Spine
