lib/align/align.ml: Approx Array Bioseq Hashtbl List Option Spine Suffix_tree
