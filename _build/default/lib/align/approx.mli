(** Approximate pattern matching over a SPINE index.

    The paper motivates string indexes with applications that need
    "exact or approximate matches" (Section 1) and positions complete
    indexes like SPINE as the exact-and-fast layer that approximate
    pipelines build on (the Section 7 discussion of the MRS filter).
    This module provides that layer's classic construction: pigeonhole
    {e seed-and-extend}.  A pattern tolerating [k] errors is split into
    [k + 1] seeds, at least one of which must occur exactly; exact seed
    hits come from the SPINE index, and candidate positions are verified
    by direct comparison (Hamming) or banded dynamic programming
    (edit distance) against the backbone's vertebra labels — SPINE keeps
    the text, so no external copy is needed. *)

type hit = {
  pos : int;        (** 0-based start of the match in the data string *)
  errors : int;     (** mismatches (Hamming) or edits (Levenshtein) *)
  match_len : int;  (** data-side length: pattern length for Hamming,
                        possibly shorter/longer for edits *)
}

val hamming : Spine.Index.t -> pattern:int array -> k:int -> hit list
(** All positions where the pattern occurs with at most [k]
    substitutions, ascending, each with its exact mismatch count.
    @raise Invalid_argument if [k < 0] or the pattern is empty. *)

val edit : Spine.Index.t -> pattern:int array -> k:int -> hit list
(** All start positions where some substring within edit distance [k]
    of the pattern begins, ascending by position, keeping for each
    position the smallest edit distance (and the shortest such
    data-side length). Verification is banded DP of width [2k + 1].
    @raise Invalid_argument if [k < 0] or the pattern is empty. *)

val hamming_count : Spine.Index.t -> pattern:int array -> k:int -> int
(** [List.length (hamming ...)] without building the list. *)
