type anchor = {
  ref_pos : int;
  query_pos : int;
  len : int;
}

type engine = [ `Spine | `Suffix_tree ]

let anchors_of_matches matches =
  (* one anchor per (match, reference occurrence) pair *)
  List.concat_map
    (fun (query_end, len, data_ends) ->
      List.map
        (fun data_end ->
          { ref_pos = data_end - len + 1;
            query_pos = query_end - len + 1;
            len })
        data_ends)
    matches

let maximal_match_anchors ~engine ~threshold reference query =
  let matches =
    match engine with
    | `Spine ->
      let idx = Spine.Index.of_seq reference in
      let ms, _ = Spine.Index.maximal_matches idx ~threshold query in
      List.map
        (fun { Spine.Index.query_end; length; data_ends } ->
          (query_end, length, data_ends))
        ms
    | `Suffix_tree ->
      let st = Suffix_tree.build reference in
      let ms, _ = Suffix_tree.maximal_matches st ~threshold query in
      List.map
        (fun { Suffix_tree.query_end; length; data_ends } ->
          (query_end, length, data_ends))
        ms
  in
  anchors_of_matches matches

let unique_anchors anchors =
  let count_by f =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun a ->
        let k = f a in
        Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
      anchors;
    tbl
  in
  let by_ref = count_by (fun a -> a.ref_pos) in
  let by_query = count_by (fun a -> a.query_pos) in
  List.filter
    (fun a ->
      Hashtbl.find by_ref a.ref_pos = 1 && Hashtbl.find by_query a.query_pos = 1)
    anchors

(* Heaviest chain of anchors strictly increasing in both coordinates.
   Sort by query position, then compute for each anchor the best chain
   weight ending at it. O(k^2) in the worst case but k (unique anchors)
   is small; a segment tree would be overkill here. *)
let chain anchors =
  let arr =
    Array.of_list
      (List.sort
         (fun a b ->
           match compare a.query_pos b.query_pos with
           | 0 -> compare a.ref_pos b.ref_pos
           | c -> c)
         anchors)
  in
  let k = Array.length arr in
  if k = 0 then []
  else begin
    let best = Array.make k 0 in
    let prev = Array.make k (-1) in
    for i = 0 to k - 1 do
      best.(i) <- arr.(i).len;
      for j = 0 to i - 1 do
        let a = arr.(j) and b = arr.(i) in
        let compatible =
          a.query_pos + a.len <= b.query_pos && a.ref_pos + a.len <= b.ref_pos
        in
        if compatible && best.(j) + b.len > best.(i) then begin
          best.(i) <- best.(j) + b.len;
          prev.(i) <- j
        end
      done
    done;
    let top = ref 0 in
    for i = 1 to k - 1 do
      if best.(i) > best.(!top) then top := i
    done;
    let rec collect i acc =
      if i < 0 then acc else collect prev.(i) (arr.(i) :: acc)
    in
    collect !top []
  end

type summary = {
  anchors : int;
  unique : int;
  chained : int;
  chained_bases : int;
  coverage : float;
}

let align ?(engine = `Spine) ~threshold reference query =
  let anchors = maximal_match_anchors ~engine ~threshold reference query in
  let unique = unique_anchors anchors in
  let chained = chain unique in
  let chained_bases = List.fold_left (fun acc a -> acc + a.len) 0 chained in
  let qlen = Bioseq.Packed_seq.length query in
  ( chained,
    { anchors = List.length anchors;
      unique = List.length unique;
      chained = List.length chained;
      chained_bases;
      coverage =
        (if qlen = 0 then 0.0 else float_of_int chained_bases /. float_of_int qlen)
    } )

module Approx = Approx
