(* Repeat-heavy stress tests with a suffix-tree-based oracle.

   These exist because of a real bug class the small-string property
   tests cannot reach: extrib chains from different parent ribs merge
   physically (one extrib per node), and when two parent ribs share a PT
   value, PRT alone misattributes chain elements. The fix records each
   extrib's anchor (parent rib destination); see Store_sig.find_extrib
   and DESIGN.md. The [regression_string] below is the 400-character
   input that first exposed the bug (node 302 received link LEL 5
   instead of 4, which later produced search false positives). *)

module I = Spine.Index

let regression_string =
  "aggggaccccttgcatgggcgggcgcccatggcgcccagctaattgttttatttatggggccagga\
   atggcggcgtgcgcagtgctcttctaccatataccatctatagtagacccgtactgaatcccccgc\
   gtcttggcgtgttccatacctatcgtctatgcccagggactaccccaaatggggccatggcccagt\
   gtcgaataccagtagtgttatggggccaggaatggcggcgtgcgcagtgctcttctaccatatacc\
   atctatagtagacccgtactgaatcccccgcgtcttgtctttccagtacgggggcgtctaggggcc\
   agctaattgttttatttatggggcccgtactagggccagctaattgttttatttcgcctggggcgc\
   cccc"

(* Oracle via the (independently validated) suffix tree: the LET suffix
   of node i is the longest l whose l-suffix of s[0..i-1] has an
   occurrence ending strictly before i; monotone in l, so binary
   searchable. *)
let check_all_links seq =
  let n = Bioseq.Packed_seq.length seq in
  let idx = I.of_seq seq in
  Spine.Validate.check_exn idx;
  let st = Suffix_tree.build seq in
  let subcodes lo len =
    Array.init len (fun k -> Bioseq.Packed_seq.get seq (lo + k))
  in
  for i = 1 to n do
    let ends_early l =
      match Suffix_tree.occurrences st (subcodes (i - l) l) with
      | [] -> false
      | p :: _ -> p + l < i
    in
    let rec bs lo hi best =
      if lo > hi then best
      else
        let mid = (lo + hi) / 2 in
        if mid >= 1 && ends_early mid then bs (mid + 1) hi mid
        else bs lo (mid - 1) best
    in
    let lel = bs 1 (i - 1) 0 in
    let dest =
      if lel = 0 then 0
      else
        match Suffix_tree.first_occurrence st (subcodes (i - lel) lel) with
        | Some p -> p + lel
        | None -> assert false
    in
    let got_dest, got_lel = I.link idx i in
    if (got_dest, got_lel) <> (dest, lel) then
      Alcotest.failf "link mismatch at node %d: got (dest %d, lel %d), \
                      oracle (dest %d, lel %d)" i got_dest got_lel dest lel
  done

(* Matching statistics of SPINE vs suffix tree on repeat-heavy inputs
   (the condition that exposed the bug at genome scale). *)
let check_ms_parity rng seq =
  let idx = I.of_seq seq in
  let st = Suffix_tree.build seq in
  let alphabet = Bioseq.Packed_seq.alphabet seq in
  let query =
    Bioseq.Synthetic.mutate ~rate:0.15 rng seq
  in
  ignore alphabet;
  let ms_spine, _ = I.matching_statistics idx query in
  let ms_st, _ = Suffix_tree.matching_statistics st query in
  Alcotest.(check (array int)) "ms parity on repeat-heavy input"
    ms_st ms_spine

let genomic_profile =
  { Bioseq.Synthetic.default_repeats with
    Bioseq.Synthetic.repeat_prob = 0.01;
    mean_repeat_len = 30;
    clean_copy_prob = 0.3 }

let test_regression_links () =
  check_all_links (Bioseq.Packed_seq.of_string Bioseq.Alphabet.dna regression_string)

let test_regression_search () =
  (* the concrete false positive the bug produced: construct analogous
     situations by exhaustive membership testing against the tree *)
  let seq = Bioseq.Packed_seq.of_string Bioseq.Alphabet.dna regression_string in
  let idx = I.of_seq seq in
  let st = Suffix_tree.build seq in
  let rng = Bioseq.Rng.create 11 in
  for _ = 1 to 3000 do
    let len = 1 + Bioseq.Rng.int rng 14 in
    let pat = Array.init len (fun _ -> Bioseq.Rng.int rng 4) in
    let expected = Suffix_tree.contains_codes st pat in
    let got = I.contains_codes idx pat in
    if expected <> got then
      Alcotest.failf "membership mismatch (len %d): tree %b, spine %b"
        len expected got
  done

let test_genomic_links () =
  let rng = Bioseq.Rng.create 21 in
  for _ = 1 to 12 do
    let n = 300 + Bioseq.Rng.int rng 900 in
    check_all_links
      (Bioseq.Synthetic.genomic ~profile:genomic_profile Bioseq.Alphabet.dna
         (Bioseq.Rng.split rng) n)
  done

let test_genomic_ms_parity () =
  let rng = Bioseq.Rng.create 22 in
  for _ = 1 to 8 do
    let n = 2000 + Bioseq.Rng.int rng 4000 in
    let seq =
      Bioseq.Synthetic.genomic ~profile:genomic_profile Bioseq.Alphabet.dna
        (Bioseq.Rng.split rng) n
    in
    check_ms_parity (Bioseq.Rng.split rng) seq
  done

let test_genomic_occurrences () =
  let rng = Bioseq.Rng.create 23 in
  for _ = 1 to 8 do
    let n = 1000 + Bioseq.Rng.int rng 2000 in
    let seq =
      Bioseq.Synthetic.genomic ~profile:genomic_profile Bioseq.Alphabet.dna
        (Bioseq.Rng.split rng) n
    in
    let idx = I.of_seq seq in
    let st = Suffix_tree.build seq in
    for _ = 1 to 30 do
      let len = 2 + Bioseq.Rng.int rng 10 in
      let pos = Bioseq.Rng.int rng (n - len) in
      let pat = Array.init len (fun k -> Bioseq.Packed_seq.get seq (pos + k)) in
      Alcotest.(check (list int)) "occurrences parity"
        (Suffix_tree.occurrences st pat) (I.occurrences idx pat)
    done
  done

let suite =
  [ Alcotest.test_case "regression: links of the anchor-bug string" `Quick
      test_regression_links
  ; Alcotest.test_case "regression: no search false positives" `Quick
      test_regression_search
  ; Alcotest.test_case "links vs oracle on repeat-heavy strings" `Slow
      test_genomic_links
  ; Alcotest.test_case "ms parity on repeat-heavy strings" `Slow
      test_genomic_ms_parity
  ; Alcotest.test_case "occurrences parity on repeat-heavy strings" `Slow
      test_genomic_occurrences
  ]
