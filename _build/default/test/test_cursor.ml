(* The streaming cursor: state after arbitrary advance/drop_front
   sequences must describe exactly the explicit character window, with
   the node at the window's first-occurrence end. *)

let byte = Bioseq.Alphabet.byte

let codes_of s = Array.init (String.length s) (fun i -> Char.code s.[i])

(* explicit reference window *)
type model = { mutable buf : string }

let check_against_oracle s cursor model =
  let w = model.buf in
  Alcotest.(check int) (Printf.sprintf "length of %S" w) (String.length w)
    (Spine.Cursor.length cursor);
  if w = "" then Alcotest.(check int) "root" 0 (Spine.Cursor.node cursor)
  else begin
    match Oracles.first_occurrence s w with
    | None -> Alcotest.failf "model window %S not a substring of %S" w s
    | Some p ->
      Alcotest.(check (option int)) (Printf.sprintf "first occ of %S" w)
        (Some p) (Spine.Cursor.first_occurrence cursor);
      Alcotest.(check int) "node" (p + String.length w)
        (Spine.Cursor.node cursor)
  end

let test_random_walks () =
  let rng = Bioseq.Rng.create 111 in
  for _ = 1 to 25 do
    let s = Oracles.random_string rng 3 (20 + Bioseq.Rng.int rng 120) in
    let idx = Spine.Index.of_string byte s in
    let cursor = Spine.Cursor.create idx in
    let model = { buf = "" } in
    for _ = 1 to 150 do
      match Bioseq.Rng.int rng 3 with
      | 0 | 1 ->
        (* try to advance with a random character *)
        let ch = Char.chr (Char.code 'a' + Bioseq.Rng.int rng 3) in
        let expected = Oracles.contains s (model.buf ^ String.make 1 ch) in
        let ok = Spine.Cursor.advance_char cursor ch in
        Alcotest.(check bool)
          (Printf.sprintf "advance %C after %S" ch model.buf) expected ok;
        if ok then model.buf <- model.buf ^ String.make 1 ch;
        check_against_oracle s cursor model
      | _ ->
        if model.buf <> "" then begin
          Spine.Cursor.drop_front cursor;
          model.buf <- String.sub model.buf 1 (String.length model.buf - 1);
          check_against_oracle s cursor model
        end
    done
  done

let test_longest_extension_is_matching_statistics () =
  let rng = Bioseq.Rng.create 112 in
  for _ = 1 to 20 do
    let s = Oracles.random_string rng 3 (20 + Bioseq.Rng.int rng 100) in
    let q = Oracles.random_string rng 3 (10 + Bioseq.Rng.int rng 60) in
    let idx = Spine.Index.of_string byte s in
    let cursor = Spine.Cursor.create idx in
    let ms = Oracles.matching_statistics s q in
    String.iteri
      (fun i ch ->
        Spine.Cursor.longest_extension cursor (Char.code ch);
        Alcotest.(check int)
          (Printf.sprintf "ms at %d of %S vs %S" i q s)
          ms.(i) (Spine.Cursor.length cursor))
      q
  done

let test_occurrences_at_cursor () =
  let s = "aaccacaaca" in
  let idx = Spine.Index.of_string byte s in
  let cursor = Spine.Cursor.create idx in
  Alcotest.(check (list int)) "empty match" [] (Spine.Cursor.occurrences cursor);
  assert (Spine.Cursor.advance_char cursor 'a');
  assert (Spine.Cursor.advance_char cursor 'c');
  Alcotest.(check (list int)) "ac occurrences" [ 1; 4; 7 ]
    (Spine.Cursor.occurrences cursor);
  Spine.Cursor.drop_front cursor;
  Alcotest.(check (list int)) "c occurrences"
    (Oracles.occurrences s "c") (Spine.Cursor.occurrences cursor);
  Spine.Cursor.reset cursor;
  Alcotest.(check int) "reset" 0 (Spine.Cursor.length cursor)

let test_errors () =
  let idx = Spine.Index.of_string byte "abc" in
  let cursor = Spine.Cursor.create idx in
  Alcotest.check_raises "drop on empty"
    (Invalid_argument "Cursor.drop_front: empty match") (fun () ->
      Spine.Cursor.drop_front cursor);
  ignore (Spine.Index.contains idx "x");
  Alcotest.(check bool) "advance outside alphabet is false (byte alphabet \
                         accepts all chars, so use a missing char)" false
    (Spine.Cursor.advance_char cursor 'z')

let suite =
  [ Alcotest.test_case "random advance/drop walks vs oracle" `Quick
      test_random_walks
  ; Alcotest.test_case "longest_extension = matching statistics" `Quick
      test_longest_extension_is_matching_statistics
  ; Alcotest.test_case "occurrences at the cursor" `Quick
      test_occurrences_at_cursor
  ; Alcotest.test_case "error handling" `Quick test_errors
  ]
