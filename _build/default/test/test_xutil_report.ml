(* Tests for the small substrates: Int_vec, Stopwatch, table/bar
   formatting — plus a qcheck model test of the buffer pool (random
   access traces vs a naive reference cache model). *)

let test_int_vec_basics () =
  let v = Xutil.Int_vec.create ~capacity:1 () in
  for i = 0 to 999 do Xutil.Int_vec.push v (i * 2) done;
  Alcotest.(check int) "length" 1000 (Xutil.Int_vec.length v);
  Alcotest.(check int) "get" 500 (Xutil.Int_vec.get v 250);
  Xutil.Int_vec.set v 250 7;
  Alcotest.(check int) "set" 7 (Xutil.Int_vec.get v 250);
  Alcotest.(check int) "pop" 1998 (Xutil.Int_vec.pop v);
  Alcotest.(check int) "length after pop" 999 (Xutil.Int_vec.length v);
  Xutil.Int_vec.truncate v 10;
  Alcotest.(check int) "truncate" 10 (Xutil.Int_vec.length v);
  Alcotest.(check int) "fold" 90 (Xutil.Int_vec.fold v ~init:0 ~f:( + ));
  ignore (Xutil.Int_vec.blit_to_array v);
  Xutil.Int_vec.clear v;
  Alcotest.(check int) "clear" 0 (Xutil.Int_vec.length v)

let test_int_vec_binary_search () =
  let v = Xutil.Int_vec.create () in
  List.iter (Xutil.Int_vec.push v) [ 2; 5; 9; 14; 77 ];
  List.iter
    (fun (x, expect) ->
      Alcotest.(check (option int)) (Printf.sprintf "search %d" x) expect
        (Xutil.Int_vec.binary_search v x))
    [ (2, Some 0); (5, Some 1); (77, Some 4); (3, None); (100, None);
      (0, None) ];
  let empty = Xutil.Int_vec.create () in
  Alcotest.(check (option int)) "empty" None
    (Xutil.Int_vec.binary_search empty 1)

let test_int_vec_errors () =
  let v = Xutil.Int_vec.create () in
  Alcotest.check_raises "pop empty" (Invalid_argument "Int_vec.pop: empty")
    (fun () -> ignore (Xutil.Int_vec.pop v));
  Alcotest.check_raises "truncate beyond" (Invalid_argument "Int_vec.truncate")
    (fun () -> Xutil.Int_vec.truncate v 5)

let test_stopwatch () =
  let x, dt = Xutil.Stopwatch.time (fun () -> 21 * 2) in
  Alcotest.(check int) "result" 42 x;
  Alcotest.(check bool) "non-negative" true (dt >= 0.0);
  let x, _ = Xutil.Stopwatch.median_of 5 (fun () -> "ok") in
  Alcotest.(check string) "median result" "ok" x

let test_table_formatting () =
  Alcotest.(check string) "fmt_int small" "999" (Report.Table.fmt_int 999);
  Alcotest.(check string) "fmt_int grouped" "3,500,000"
    (Report.Table.fmt_int 3_500_000);
  Alcotest.(check string) "fmt_int negative" "-1,234"
    (Report.Table.fmt_int (-1234));
  Alcotest.(check string) "fmt_pct" "15.3%" (Report.Table.fmt_pct 0.153);
  Alcotest.(check string) "fmt_float" "2.50" (Report.Table.fmt_float 2.5);
  Alcotest.(check string) "fmt_float decimals" "2.500"
    (Report.Table.fmt_float ~decimals:3 2.5)

(* Reference cache model: LRU over an association list. Compared
   against Buffer_pool on random traces (hits/misses must agree). *)
let qcheck_pool_model =
  let gen =
    QCheck.Gen.(
      pair (int_range 1 6)
        (list_size (int_bound 300) (pair (int_bound 12) bool)))
  in
  let arb =
    QCheck.make
      ~print:(fun (frames, ops) ->
        Printf.sprintf "frames=%d ops=%d" frames (List.length ops))
      gen
  in
  QCheck.Test.make ~count:100 ~name:"buffer pool matches LRU model" arb
    (fun (frames, ops) ->
      let dev = Pagestore.Device.create ~page_size:64 () in
      let pool = Pagestore.Buffer_pool.create ~frames dev in
      (* model: most-recent-first list of resident pages *)
      let model = ref [] in
      let model_hits = ref 0 and model_misses = ref 0 in
      List.iter
        (fun (page, dirty) ->
          Pagestore.Buffer_pool.with_page pool page ~dirty (fun _ -> ());
          if List.mem page !model then begin
            incr model_hits;
            model := page :: List.filter (fun p -> p <> page) !model
          end
          else begin
            incr model_misses;
            let resident = page :: !model in
            model :=
              (if List.length resident > frames then
                 List.filteri (fun i _ -> i < frames) resident
               else resident)
          end)
        ops;
      let s = Pagestore.Buffer_pool.stats pool in
      s.Pagestore.Buffer_pool.hits = !model_hits
      && s.Pagestore.Buffer_pool.misses = !model_misses)

(* pool contents must always round-trip through eviction: write
   distinct bytes to many pages through a tiny pool, then read back *)
let qcheck_pool_integrity =
  let gen = QCheck.Gen.(pair (int_range 1 4) (int_range 1 40)) in
  let arb = QCheck.make ~print:(fun (f, p) -> Printf.sprintf "f=%d p=%d" f p) gen in
  QCheck.Test.make ~count:100 ~name:"buffer pool preserves page contents" arb
    (fun (frames, pages) ->
      let dev = Pagestore.Device.create ~page_size:64 () in
      let pool = Pagestore.Buffer_pool.create ~frames dev in
      for p = 0 to pages - 1 do
        Pagestore.Buffer_pool.with_page pool p ~dirty:true (fun b ->
            Bytes.set b 0 (Char.chr (p land 0xFF)))
      done;
      let ok = ref true in
      for p = 0 to pages - 1 do
        Pagestore.Buffer_pool.with_page pool p ~dirty:false (fun b ->
            if Bytes.get b 0 <> Char.chr (p land 0xFF) then ok := false)
      done;
      !ok)

let suite =
  [ Alcotest.test_case "int_vec basics" `Quick test_int_vec_basics
  ; Alcotest.test_case "int_vec binary search" `Quick
      test_int_vec_binary_search
  ; Alcotest.test_case "int_vec errors" `Quick test_int_vec_errors
  ; Alcotest.test_case "stopwatch" `Quick test_stopwatch
  ; Alcotest.test_case "table formatting" `Quick test_table_formatting
  ; QCheck_alcotest.to_alcotest qcheck_pool_model
  ; QCheck_alcotest.to_alcotest qcheck_pool_integrity
  ]
