(* Approximate matching (seed-and-extend over SPINE) vs naive DP
   oracles. *)

let byte = Bioseq.Alphabet.byte

let codes_of s = Array.init (String.length s) (fun i -> Char.code s.[i])

(* naive k-mismatch positions with their error counts *)
let naive_hamming s pat k =
  let n = String.length s and m = String.length pat in
  let out = ref [] in
  for pos = n - m downto 0 do
    let errors = ref 0 in
    for j = 0 to m - 1 do
      if s.[pos + j] <> pat.[j] then incr errors
    done;
    if !errors <= k then out := (pos, !errors) :: !out
  done;
  !out

(* full (unbanded) edit distance of pat against every data prefix
   starting at pos, minimised over end lengths *)
let naive_edit_at s pat pos k =
  let n = String.length s and m = String.length pat in
  let maxlen = min (m + k) (n - pos) in
  let dp = Array.make_matrix (m + 1) (maxlen + 1) 0 in
  for i = 0 to m do dp.(i).(0) <- i done;
  for j = 0 to maxlen do dp.(0).(j) <- j done;
  for i = 1 to m do
    for j = 1 to maxlen do
      let sub =
        dp.(i - 1).(j - 1) + (if s.[pos + j - 1] = pat.[i - 1] then 0 else 1)
      in
      dp.(i).(j) <- min sub (min (dp.(i - 1).(j) + 1) (dp.(i).(j - 1) + 1))
    done
  done;
  let best = ref None in
  for j = max 0 (m - k) to maxlen do
    if dp.(m).(j) <= k then
      match !best with
      | Some (d, _) when d <= dp.(m).(j) -> ()
      | _ -> best := Some (dp.(m).(j), j)
  done;
  !best

let naive_edit s pat k =
  let n = String.length s in
  let out = ref [] in
  for pos = n - 1 downto 0 do
    match naive_edit_at s pat pos k with
    | Some (d, len) -> out := (pos, d, len) :: !out
    | None -> ()
  done;
  !out

let test_hamming_oracle () =
  let rng = Bioseq.Rng.create 91 in
  for _ = 1 to 25 do
    let s = Oracles.random_string rng 3 (30 + Bioseq.Rng.int rng 150) in
    let idx = Spine.Index.of_string byte s in
    for _ = 1 to 15 do
      let m = 4 + Bioseq.Rng.int rng 10 in
      let pat =
        if Bioseq.Rng.bool rng && String.length s > m then begin
          (* a mutated slice of the data, so hits exist *)
          let p = Bioseq.Rng.int rng (String.length s - m) in
          String.mapi
            (fun _ c ->
              if Bioseq.Rng.int rng 10 = 0 then
                Char.chr (Char.code 'a' + Bioseq.Rng.int rng 3)
              else c)
            (String.sub s p m)
        end
        else Oracles.random_string rng 3 m
      in
      let k = Bioseq.Rng.int rng 3 in
      let expected = naive_hamming s pat k in
      let got =
        Align.Approx.hamming idx ~pattern:(codes_of pat) ~k
        |> List.map (fun { Align.Approx.pos; errors; _ } -> (pos, errors))
      in
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "hamming %S in %S k=%d" pat s k) expected got
    done
  done

let test_edit_oracle () =
  let rng = Bioseq.Rng.create 92 in
  for _ = 1 to 15 do
    let s = Oracles.random_string rng 3 (30 + Bioseq.Rng.int rng 80) in
    let idx = Spine.Index.of_string byte s in
    for _ = 1 to 10 do
      let m = 5 + Bioseq.Rng.int rng 8 in
      let pat = Oracles.random_string rng 3 m in
      let k = 1 + Bioseq.Rng.int rng 2 in
      let expected = naive_edit s pat k in
      let got =
        Align.Approx.edit idx ~pattern:(codes_of pat) ~k
        |> List.map (fun { Align.Approx.pos; errors; match_len } ->
               (pos, errors, match_len))
      in
      Alcotest.(check (list (triple int int int)))
        (Printf.sprintf "edit %S in %S k=%d" pat s k) expected got
    done
  done

let test_exact_is_k0 () =
  let rng = Bioseq.Rng.create 93 in
  for _ = 1 to 10 do
    let s = Oracles.random_string rng 3 (50 + Bioseq.Rng.int rng 100) in
    let idx = Spine.Index.of_string byte s in
    let m = 3 + Bioseq.Rng.int rng 5 in
    let p = Bioseq.Rng.int rng (String.length s - m) in
    let pat = codes_of (String.sub s p m) in
    let exact = Spine.Index.occurrences idx pat in
    let approx =
      Align.Approx.hamming idx ~pattern:pat ~k:0
      |> List.map (fun h -> h.Align.Approx.pos)
    in
    Alcotest.(check (list int)) "k=0 equals exact search" exact approx
  done

let test_degenerate () =
  let idx = Spine.Index.of_string byte "abcabc" in
  Alcotest.check_raises "empty pattern"
    (Invalid_argument "Approx: empty pattern") (fun () ->
      ignore (Align.Approx.hamming idx ~pattern:[||] ~k:1));
  Alcotest.check_raises "negative k"
    (Invalid_argument "Approx: negative error budget") (fun () ->
      ignore (Align.Approx.hamming idx ~pattern:[| 97 |] ~k:(-1)));
  (* k >= pattern length: everything matches *)
  let hits = Align.Approx.hamming idx ~pattern:(codes_of "zz") ~k:2 in
  Alcotest.(check int) "k >= m matches every window" 5 (List.length hits)

let suite =
  [ Alcotest.test_case "hamming vs naive oracle" `Quick test_hamming_oracle
  ; Alcotest.test_case "edit distance vs naive DP" `Quick test_edit_oracle
  ; Alcotest.test_case "k = 0 equals exact search" `Quick test_exact_is_k0
  ; Alcotest.test_case "degenerate inputs" `Quick test_degenerate
  ]
