test/test_paper_claims.ml: Alcotest Array Bioseq Experiments List Option Pagestore Printf Spine Suffix_tree
