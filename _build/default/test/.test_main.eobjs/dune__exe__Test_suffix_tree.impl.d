test/test_suffix_tree.ml: Alcotest Array Bioseq Char List Oracles Printf String Suffix_tree
