test/test_approx.ml: Alcotest Align Array Bioseq Char List Oracles Printf Spine String
