test/test_xutil_report.ml: Alcotest Bytes Char List Pagestore Printf QCheck QCheck_alcotest Report Xutil
