test/test_robustness.ml: Alcotest Array Bioseq Bytes Char Domain List Printexc Printf Spine
