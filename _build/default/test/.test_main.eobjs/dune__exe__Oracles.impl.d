test/oracles.ml: Array Bioseq Char List String
