test/test_validate.ml: Alcotest Bioseq List Oracles Spine String
