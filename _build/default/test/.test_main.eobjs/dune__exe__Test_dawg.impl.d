test/test_dawg.ml: Alcotest Array Bioseq Char Dawg List Oracles Printf String
