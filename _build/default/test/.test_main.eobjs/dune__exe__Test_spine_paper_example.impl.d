test/test_spine_paper_example.ml: Alcotest Bioseq List Oracles Printf Spine String
