test/test_suffix_array.ml: Alcotest Array Bioseq Char List Oracles Printf Spine String Suffix_array Suffix_tree
