test/test_pagestore.ml: Alcotest Bytes Pagestore
