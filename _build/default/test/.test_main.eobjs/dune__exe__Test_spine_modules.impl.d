test/test_spine_modules.ml: Alcotest Array Bioseq Bytes Char Filename List Oracles Pagestore Spine String Suffix_trie Sys
