test/test_spine_compact.ml: Alcotest Array Bioseq Char List Oracles Printf Spine String
