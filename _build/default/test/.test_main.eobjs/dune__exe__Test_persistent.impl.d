test/test_persistent.ml: Alcotest Array Bioseq Filename Pagestore Spine String Sys
