test/test_spine_stress.ml: Alcotest Array Bioseq Spine Suffix_tree
