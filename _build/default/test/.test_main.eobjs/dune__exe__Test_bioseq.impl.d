test/test_bioseq.ml: Alcotest Array Bioseq List Printf String
