test/test_spine_properties.ml: Alcotest Array Bioseq Char Hashtbl List Oracles Printf QCheck QCheck_alcotest Spine String
