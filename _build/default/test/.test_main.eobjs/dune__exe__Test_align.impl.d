test/test_align.ml: Alcotest Align Bioseq List
