test/test_cursor.ml: Alcotest Array Bioseq Char Oracles Printf Spine String
