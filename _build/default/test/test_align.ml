(* Tests for the alignment pipeline: anchors, MUM filtering, chaining. *)

let dna = Bioseq.Alphabet.dna

let seq s = Bioseq.Packed_seq.of_string dna s

let test_engines_agree () =
  let rng = Bioseq.Rng.create 71 in
  for _ = 1 to 8 do
    let reference =
      Bioseq.Synthetic.genomic dna (Bioseq.Rng.split rng)
        (2000 + Bioseq.Rng.int rng 4000)
    in
    let query = Bioseq.Synthetic.mutate ~rate:0.1 (Bioseq.Rng.split rng) reference in
    let a = Align.maximal_match_anchors ~engine:`Spine ~threshold:15 reference query in
    let b =
      Align.maximal_match_anchors ~engine:`Suffix_tree ~threshold:15 reference query
    in
    Alcotest.(check int) "same anchor count" (List.length a) (List.length b);
    if a <> b then Alcotest.fail "anchor lists differ"
  done

let test_anchor_correctness () =
  (* every anchor must be a genuine exact match of the stated length *)
  let rng = Bioseq.Rng.create 72 in
  let reference = Bioseq.Synthetic.genomic dna (Bioseq.Rng.split rng) 3000 in
  let query = Bioseq.Synthetic.mutate ~rate:0.08 (Bioseq.Rng.split rng) reference in
  let anchors = Align.maximal_match_anchors ~engine:`Spine ~threshold:12 reference query in
  Alcotest.(check bool) "found anchors" true (anchors <> []);
  List.iter
    (fun { Align.ref_pos; query_pos; len } ->
      Alcotest.(check bool) "length >= threshold" true (len >= 12);
      for k = 0 to len - 1 do
        if Bioseq.Packed_seq.get reference (ref_pos + k)
           <> Bioseq.Packed_seq.get query (query_pos + k)
        then Alcotest.failf "anchor mismatch at ref %d + %d" ref_pos k
      done)
    anchors

let test_unique_filter () =
  let anchors =
    [ { Align.ref_pos = 0; query_pos = 0; len = 5 }
    ; { Align.ref_pos = 10; query_pos = 20; len = 5 }
    ; { Align.ref_pos = 10; query_pos = 30; len = 5 }  (* dup ref *)
    ; { Align.ref_pos = 40; query_pos = 50; len = 5 }
    ; { Align.ref_pos = 60; query_pos = 50; len = 5 }  (* dup query *)
    ]
  in
  let unique = Align.unique_anchors anchors in
  (* (10,20)/(10,30) share a reference position; (40,50)/(60,50) share a
     query position; only (0,0) is unambiguous on both sides *)
  Alcotest.(check int) "only unambiguous anchors survive" 1
    (List.length unique);
  Alcotest.(check int) "the survivor" 0 ((List.hd unique).Align.ref_pos)

let test_chain_monotone () =
  let anchors =
    [ { Align.ref_pos = 0; query_pos = 0; len = 10 }
    ; { Align.ref_pos = 50; query_pos = 40; len = 20 }
    ; { Align.ref_pos = 30; query_pos = 70; len = 5 }   (* crossing *)
    ; { Align.ref_pos = 100; query_pos = 90; len = 15 }
    ]
  in
  let chain = Align.chain anchors in
  (* the chain must be strictly increasing in both coordinates *)
  let rec check = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "monotone ref" true
        (a.Align.ref_pos + a.Align.len <= b.Align.ref_pos);
      Alcotest.(check bool) "monotone query" true
        (a.Align.query_pos + a.Align.len <= b.Align.query_pos);
      check rest
    | _ -> ()
  in
  check chain;
  (* the optimal chain here takes the three compatible anchors (45 bases) *)
  Alcotest.(check int) "chain weight" 45
    (List.fold_left (fun acc a -> acc + a.Align.len) 0 chain)

let test_chain_empty_and_single () =
  Alcotest.(check int) "empty" 0 (List.length (Align.chain []));
  let one = [ { Align.ref_pos = 3; query_pos = 4; len = 7 } ] in
  Alcotest.(check int) "single" 1 (List.length (Align.chain one))

let test_identical_strings () =
  (* aligning a string with itself: one full-length anchor chain *)
  let s = seq "acgtacgggtacgtacgacgt" in
  let chained, summary = Align.align ~threshold:5 s s in
  Alcotest.(check bool) "full coverage" true (summary.Align.coverage > 0.99);
  Alcotest.(check bool) "nonempty chain" true (chained <> [])

let test_unrelated_strings () =
  let rng = Bioseq.Rng.create 73 in
  let a = Bioseq.Synthetic.uniform dna (Bioseq.Rng.split rng) 2000 in
  let b = Bioseq.Synthetic.uniform dna (Bioseq.Rng.split rng) 2000 in
  let _, summary = Align.align ~threshold:20 a b in
  (* random 2 kb strings share no 20-mers with overwhelming probability *)
  Alcotest.(check int) "no anchors" 0 summary.Align.anchors

let suite =
  [ Alcotest.test_case "engines produce identical anchors" `Quick
      test_engines_agree
  ; Alcotest.test_case "anchors are real exact matches" `Quick
      test_anchor_correctness
  ; Alcotest.test_case "MUM uniqueness filter" `Quick test_unique_filter
  ; Alcotest.test_case "chain is monotone and optimal" `Quick
      test_chain_monotone
  ; Alcotest.test_case "chain degenerate inputs" `Quick
      test_chain_empty_and_single
  ; Alcotest.test_case "self alignment covers everything" `Quick
      test_identical_strings
  ; Alcotest.test_case "unrelated strings share nothing" `Quick
      test_unrelated_strings
  ]
