(* Suffix array baseline vs the naive oracles. *)

module SA = Suffix_array

let byte = Bioseq.Alphabet.byte

let codes_of s = Array.init (String.length s) (fun i -> Char.code s.[i])

let test_sorted_order () =
  List.iter
    (fun s ->
      let sa = SA.of_string byte s in
      let n = String.length s in
      Alcotest.(check int) "length" n (SA.length sa);
      (* successive suffixes must be in strictly increasing order *)
      for r = 1 to n - 1 do
        let a = SA.suffix_at sa (r - 1) and b = SA.suffix_at sa r in
        let sa_str = String.sub s a (n - a) and sb_str = String.sub s b (n - b) in
        if compare sa_str sb_str >= 0 then
          Alcotest.failf "unsorted at rank %d of %S" r s
      done;
      (* permutation check *)
      let seen = Array.make n false in
      for r = 0 to n - 1 do seen.(SA.suffix_at sa r) <- true done;
      if Array.exists not seen then Alcotest.failf "not a permutation: %S" s)
    Oracles.adversarial

let test_lcp () =
  List.iter
    (fun s ->
      let sa = SA.of_string byte s in
      let n = String.length s in
      let lcp = SA.lcp sa in
      for r = 1 to n - 1 do
        let a = SA.suffix_at sa (r - 1) and b = SA.suffix_at sa r in
        let rec common k =
          if a + k < n && b + k < n && s.[a + k] = s.[b + k] then common (k + 1)
          else k
        in
        Alcotest.(check int) (Printf.sprintf "lcp rank %d of %S" r s)
          (common 0) lcp.(r)
      done)
    Oracles.adversarial

let test_occurrences () =
  let rng = Bioseq.Rng.create 51 in
  List.iter
    (fun s ->
      let sa = SA.of_string byte s in
      for _ = 1 to 30 do
        let pat = Oracles.random_string rng 3 (1 + Bioseq.Rng.int rng 6) in
        Alcotest.(check (list int))
          (Printf.sprintf "occurrences of %S in %S" pat s)
          (Oracles.occurrences s pat)
          (SA.occurrences sa (codes_of pat))
      done)
    Oracles.adversarial;
  for _ = 1 to 20 do
    let s = Oracles.random_string rng 3 (10 + Bioseq.Rng.int rng 80) in
    let sa = SA.of_string byte s in
    for _ = 1 to 20 do
      let pat = Oracles.random_string rng 3 (1 + Bioseq.Rng.int rng 7) in
      Alcotest.(check (list int)) "random occurrences"
        (Oracles.occurrences s pat)
        (SA.occurrences sa (codes_of pat))
    done
  done

let test_three_way_agreement () =
  (* suffix array, suffix tree and SPINE agree on every query *)
  let rng = Bioseq.Rng.create 52 in
  for _ = 1 to 15 do
    let s = Oracles.random_string rng 4 (30 + Bioseq.Rng.int rng 100) in
    let sa = SA.of_string byte s in
    let st = Suffix_tree.of_string byte s in
    let spine_idx = Spine.Index.of_string byte s in
    for _ = 1 to 20 do
      let pat = Oracles.random_string rng 4 (1 + Bioseq.Rng.int rng 8) in
      let codes = codes_of pat in
      let a = SA.occurrences sa codes in
      let b = Suffix_tree.occurrences st codes in
      let c = Spine.Index.occurrences spine_idx codes in
      Alcotest.(check (list int)) "sa = st" a b;
      Alcotest.(check (list int)) "sa = spine" a c
    done
  done

let suite =
  [ Alcotest.test_case "sorted suffix order" `Quick test_sorted_order
  ; Alcotest.test_case "Kasai LCP" `Quick test_lcp
  ; Alcotest.test_case "occurrences vs oracle" `Quick test_occurrences
  ; Alcotest.test_case "three-index agreement" `Quick test_three_way_agreement
  ]
