(* The paper's evaluation claims, encoded as deterministic regression
   tests (counts, sizes, distributions — never wall time, which would
   flake in CI). Each test names the claim it pins. These run at small
   scale; the full-scale versions are bench/main.exe. *)

let scale = 0.005

let genome name = Experiments.Data.load ~scale (Option.get (Bioseq.Corpus.find name))

let homologous data_name query_name =
  Experiments.Data.homologous_query ~scale
    ~data_corpus:(Option.get (Bioseq.Corpus.find data_name))
    (Option.get (Bioseq.Corpus.find query_name))

(* Section 5 / space experiment: SPINE beats the suffix tree model on
   space; node count is exactly n + 1 while the tree approaches 2n. *)
let test_space_claim () =
  let seq = genome "ECO" in
  let n = Bioseq.Packed_seq.length seq in
  let spine_idx = Spine.Compact.of_seq seq in
  let st = Suffix_tree.build seq in
  let spine_bpc = Spine.Compact.bytes_per_char spine_idx in
  let st_bpc = Suffix_tree.model_bytes_per_char st in
  if spine_bpc >= st_bpc then
    Alcotest.failf "SPINE %.2f B/char must beat ST %.2f" spine_bpc st_bpc;
  Alcotest.(check int) "nodes = n + 1" (n + 1) (Spine.Compact.node_count spine_idx);
  if Suffix_tree.node_count st <= n + 1 then
    Alcotest.fail "suffix tree should exceed SPINE's node count"

(* Table 4: rib density in the paper's band, decaying with fanout *)
let test_rib_distribution_claim () =
  List.iter
    (fun name ->
      let idx = Spine.Compact.of_seq (genome name) in
      let dist = Spine.Compact.rib_distribution idx in
      let total = Array.fold_left ( + ) 0 dist in
      let frac f = float_of_int dist.(f) /. float_of_int total in
      let with_edges = 1.0 -. frac 0 in
      if with_edges < 0.18 || with_edges > 0.42 then
        Alcotest.failf "%s: %.1f%% of nodes carry edges, outside the band"
          name (100.0 *. with_edges);
      if not (frac 1 > frac 2 && frac 2 > frac 3) then
        Alcotest.failf "%s: fanout distribution does not decay" name)
    [ "ECO"; "HC21" ]

(* Table 3: label maxima far below the 2-byte limit *)
let test_label_claim () =
  List.iter
    (fun name ->
      let idx = Spine.Compact.of_seq (genome name) in
      let m = Spine.Compact.label_maxima idx in
      if m.Spine.Compact.max_lel >= 65_535 then
        Alcotest.failf "%s: LEL exceeds 2-byte labels" name;
      Alcotest.(check int) "no overflow entries needed" 0
        (Spine.Compact.overflow_count idx))
    [ "ECO"; "CEL" ]

(* Table 6 / Section 4.1: set-basis processing checks fewer suffixes *)
let test_nodes_checked_claim () =
  let data = genome "CEL" in
  let query = homologous "CEL" "ECO" in
  let spine_idx = Spine.Compact.of_seq data in
  let st = Suffix_tree.build data in
  let m1, s1 = Spine.Compact.maximal_matches spine_idx ~threshold:20 query in
  let m2, s2 = Suffix_tree.maximal_matches st ~threshold:20 query in
  Alcotest.(check int) "identical match counts" (List.length m2)
    (List.length m1);
  if s1.Spine.Compact.nodes_checked >= s2.Suffix_tree.nodes_checked then
    Alcotest.failf "SPINE checked %d nodes, ST %d — SPINE must check fewer"
      s1.Spine.Compact.nodes_checked s2.Suffix_tree.nodes_checked;
  if s1.Spine.Compact.suffixes_checked >= s2.Suffix_tree.suffixes_checked then
    Alcotest.fail "SPINE must dispatch fewer suffix candidates"

(* Figure 8: link destinations skew to the top, monotone decay *)
let test_link_distribution_claim () =
  let idx = Spine.Compact.of_seq (genome "CEL") in
  let hist = Spine.Compact.link_histogram idx ~buckets:10 in
  let total = Array.fold_left ( + ) 0 hist in
  if float_of_int hist.(0) /. float_of_int total < 0.30 then
    Alcotest.fail "top decile should hold at least 30% of links";
  for b = 1 to 9 do
    if hist.(b) > hist.(b - 1) then
      Alcotest.failf "histogram not monotone at bucket %d" b
  done

(* Figure 7 / Table 7: under the same buffer budget, SPINE's disk
   construction issues fewer device I/Os than the suffix tree *)
let test_disk_io_claim () =
  let seq = genome "ECO" in
  let frames =
    max 32 (2 * Bioseq.Packed_seq.length seq * 16 / 4096 / 4)
  in
  let config = { Spine.Disk.default_config with Spine.Disk.frames } in
  let spine = Spine.Disk.build ~config seq in
  let st = Experiments.Disk_util.build_st_on_disk ~config seq in
  let ios d =
    let s = Pagestore.Device.stats d in
    s.Pagestore.Device.reads + s.Pagestore.Device.writes
  in
  let spine_ios = ios spine.Spine.Disk.device in
  let st_ios = ios st.Experiments.Disk_util.device in
  if spine_ios >= st_ios then
    Alcotest.failf "SPINE %d I/Os vs ST %d — SPINE must do fewer"
      spine_ios st_ios

(* Figure 6: the memory-budget crossover — SPINE fits everywhere the
   tree fits, and strictly more *)
let test_memory_budget_claim () =
  let seq = genome "HC19" in
  let n = float_of_int (Bioseq.Packed_seq.length seq) in
  let spine_idx = Spine.Compact.of_seq seq in
  let st = Suffix_tree.build seq in
  let spine_peak = Spine.Compact.bytes_per_char spine_idx *. n *. 1.05 in
  let st_peak = Suffix_tree.model_bytes_per_char st *. n *. 1.25 in
  (* the paper's ~30% headroom: a budget exists that admits SPINE and
     rejects ST *)
  let budget = (spine_peak +. st_peak) /. 2.0 in
  Alcotest.(check bool) "SPINE fits" true (spine_peak <= budget);
  Alcotest.(check bool) "ST does not" true (st_peak > budget);
  if st_peak /. spine_peak < 1.2 then
    Alcotest.fail "expected at least ~20% space headroom for SPINE"

(* Section 4: batched dictionary search equals one-by-one search *)
let test_batch_search () =
  let seq = genome "ECO" in
  let idx = Spine.Index.of_seq seq in
  let rng = Bioseq.Rng.create 301 in
  let patterns =
    List.init 30 (fun _ ->
        let len = 2 + Bioseq.Rng.int rng 10 in
        let pos =
          Bioseq.Rng.int rng (Bioseq.Packed_seq.length seq - len)
        in
        if Bioseq.Rng.bool rng then
          Array.init len (fun k -> Bioseq.Packed_seq.get seq (pos + k))
        else Array.init len (fun _ -> Bioseq.Rng.int rng 4))
  in
  let batched = Spine.Index.occurrences_many idx patterns in
  List.iteri
    (fun i pat ->
      Alcotest.(check (list int)) (Printf.sprintf "pattern %d" i)
        (Spine.Index.occurrences idx pat) batched.(i))
    patterns

let suite =
  [ Alcotest.test_case "space: SPINE smaller than ST, nodes = n+1" `Slow
      test_space_claim
  ; Alcotest.test_case "Table 4 band: rib density ~30%, decaying" `Slow
      test_rib_distribution_claim
  ; Alcotest.test_case "Table 3: labels fit 2 bytes" `Slow test_label_claim
  ; Alcotest.test_case "Table 6: fewer nodes and suffixes checked" `Slow
      test_nodes_checked_claim
  ; Alcotest.test_case "Figure 8: top-skewed monotone links" `Slow
      test_link_distribution_claim
  ; Alcotest.test_case "Figure 7: fewer disk I/Os" `Slow test_disk_io_claim
  ; Alcotest.test_case "Figure 6: memory-budget headroom" `Slow
      test_memory_budget_claim
  ; Alcotest.test_case "batched dictionary search" `Quick test_batch_search
  ]
