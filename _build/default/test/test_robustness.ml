(* Robustness: serializer fuzzing (random corruption must fail loudly,
   never crash or hang) and data-race freedom of concurrent read-only
   queries across OCaml 5 domains. *)

let dna = Bioseq.Alphabet.dna

let test_serializer_fuzz () =
  let rng = Bioseq.Rng.create 401 in
  let seq = Bioseq.Synthetic.genomic dna (Bioseq.Rng.split rng) 600 in
  let idx = Spine.Index.of_seq seq in
  let original = Spine.Serialize.to_bytes idx in
  for _ = 1 to 600 do
    let data = Bytes.copy original in
    (* corrupt 1-4 random bytes *)
    for _ = 0 to Bioseq.Rng.int rng 4 do
      Bytes.set data
        (Bioseq.Rng.int rng (Bytes.length data))
        (Char.chr (Bioseq.Rng.int rng 256))
    done;
    match Spine.Serialize.of_bytes data with
    | _loaded ->
      (* corruption may go unnoticed when it hits payload fields that
         stay in range — that is acceptable; crashing is not *)
      ()
    | exception Failure _ -> ()
    | exception e ->
      Alcotest.failf "unexpected exception from corrupted input: %s"
        (Printexc.to_string e)
  done;
  (* truncations at every length must raise Failure *)
  for len = 0 to min 120 (Bytes.length original - 1) do
    match Spine.Serialize.of_bytes (Bytes.sub original 0 len) with
    | _ -> Alcotest.failf "truncation to %d bytes accepted" len
    | exception Failure _ -> ()
    | exception e ->
      Alcotest.failf "unexpected exception on truncation: %s"
        (Printexc.to_string e)
  done

let test_parallel_queries () =
  (* read-only queries never mutate the index, so concurrent domains
     must all see correct answers *)
  let rng = Bioseq.Rng.create 402 in
  let seq = Bioseq.Synthetic.genomic dna (Bioseq.Rng.split rng) 20_000 in
  let idx = Spine.Index.of_seq seq in
  let queries =
    Array.init 64 (fun _ ->
        let len = 3 + Bioseq.Rng.int rng 10 in
        let pos = Bioseq.Rng.int rng (20_000 - len) in
        Array.init len (fun k -> Bioseq.Packed_seq.get seq (pos + k)))
  in
  let expected = Array.map (fun q -> Spine.Index.occurrences idx q) queries in
  let worker seed () =
    let r = Bioseq.Rng.create seed in
    let ok = ref true in
    for _ = 1 to 300 do
      let i = Bioseq.Rng.int r (Array.length queries) in
      if Spine.Index.occurrences idx queries.(i) <> expected.(i) then
        ok := false
    done;
    !ok
  in
  let domains = List.init 4 (fun d -> Domain.spawn (worker (500 + d))) in
  List.iteri
    (fun d dom ->
      Alcotest.(check bool) (Printf.sprintf "domain %d" d) true
        (Domain.join dom))
    domains

let suite =
  [ Alcotest.test_case "serializer fuzz: corrupt input fails loudly" `Quick
      test_serializer_fuzz
  ; Alcotest.test_case "concurrent read-only queries across domains" `Quick
      test_parallel_queries
  ]
