(* Bit-rot guard: every registered experiment must run to completion at
   a tiny scale. Output is redirected away so the test log stays
   readable; correctness of the numbers is covered by the unit suites,
   this only asserts the harness keeps working end to end. *)

let tiny =
  { Experiments.Config.scale = 0.001;
    disk_scale = 0.0005;
    threshold = 12;
    buckets = 5 }

let with_silenced_stdout f =
  let saved = Unix.dup Unix.stdout in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  flush stdout;
  Unix.dup2 devnull Unix.stdout;
  let restore () =
    flush stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved;
    Unix.close devnull
  in
  match f () with
  | v -> restore (); v
  | exception e -> restore (); raise e

let test_experiment e () =
  with_silenced_stdout (fun () -> e.Experiments.Registry.run tiny)

let test_registry_complete () =
  (* every table and figure of the paper has a registered experiment *)
  let names =
    List.map (fun e -> e.Experiments.Registry.name) Experiments.Registry.all
  in
  List.iter
    (fun required ->
      if not (List.mem required names) then
        Alcotest.failf "experiment %s missing from the registry" required)
    [ "table2"; "table3"; "table4"; "table5"; "table6"; "table7";
      "fig6"; "fig7"; "fig8"; "space"; "proteins"; "ablations" ];
  (* lookups behave *)
  Alcotest.(check bool) "find known" true
    (Experiments.Registry.find "table5" <> None);
  Alcotest.(check bool) "find unknown" true
    (Experiments.Registry.find "table99" = None)

let suite =
  Alcotest.test_case "registry covers every table and figure" `Quick
    test_registry_complete
  :: List.map
       (fun e ->
         Alcotest.test_case
           (Printf.sprintf "harness: %s runs" e.Experiments.Registry.name)
           `Slow (test_experiment e))
       Experiments.Registry.all
