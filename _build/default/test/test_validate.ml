(* The invariant checker: clean on genuine indexes of every flavour,
   loud on corrupted ones (failure injection through the store). *)

let dna = Bioseq.Alphabet.dna

let test_clean_indexes () =
  let rng = Bioseq.Rng.create 101 in
  (* adversarial byte strings *)
  List.iter
    (fun s ->
      let idx = Spine.Index.of_string Bioseq.Alphabet.byte s in
      Spine.Validate.check_exn idx)
    Oracles.adversarial;
  (* genomic strings *)
  for _ = 1 to 10 do
    let seq =
      Bioseq.Synthetic.genomic dna (Bioseq.Rng.split rng)
        (500 + Bioseq.Rng.int rng 3000)
    in
    Spine.Validate.check_exn (Spine.Index.of_seq seq)
  done;
  (* proteins *)
  let seq =
    Bioseq.Synthetic.genomic Bioseq.Alphabet.protein (Bioseq.Rng.split rng) 3000
  in
  Spine.Validate.check_exn (Spine.Index.of_seq seq);
  (* generalized (contains separators) *)
  let g = Spine.Generalized.create dna in
  ignore (Spine.Generalized.add_string g "acgtacgggt");
  ignore (Spine.Generalized.add_string g "ttgacaccgt");
  Spine.Validate.check_exn (Spine.Generalized.index g);
  (* deserialized *)
  let idx = Spine.Index.of_string dna "acgtacgtgacgtt" in
  Spine.Validate.check_exn
    (Spine.Serialize.of_bytes (Spine.Serialize.to_bytes idx))

(* failure injection: corrupt one field through the raw store and make
   sure the checker notices *)
let corrupt_and_check mutate expected_substring =
  let idx = Spine.Index.of_string dna "acgtacgtgacgttacgacg" in
  mutate (Spine.Index.store idx);
  match Spine.Validate.check idx with
  | [] -> Alcotest.failf "corruption not detected (%s)" expected_substring
  | violations ->
    let found =
      List.exists
        (fun v ->
          let text = v.Spine.Validate.where ^ ": " ^ v.Spine.Validate.what in
          (* substring containment *)
          let n = String.length text
          and m = String.length expected_substring in
          let rec go i =
            i + m <= n
            && (String.sub text i m = expected_substring || go (i + 1))
          in
          go 0)
        violations
    in
    if not found then
      Alcotest.failf "expected a violation mentioning %S, got %s"
        expected_substring
        (String.concat "; "
           (List.map (fun v -> v.Spine.Validate.what) violations))

let test_detects_bad_link_dest () =
  corrupt_and_check
    (fun s -> Spine.Fast_store.set_link s 5 ~dest:9 ~lel:2)
    "not strictly upstream"

let test_detects_bad_lel () =
  corrupt_and_check
    (fun s ->
      let dest = Spine.Fast_store.link_dest s 10 in
      Spine.Fast_store.set_link s 10 ~dest ~lel:(dest + 3))
    "out of range"

let test_detects_wrong_suffix () =
  (* keep ranges legal but break the string equality the link asserts *)
  corrupt_and_check
    (fun s ->
      (* node 8's link with a dest whose context can't match: point the
         link at a node preceded by a different character *)
      Spine.Fast_store.set_link s 8 ~dest:3 ~lel:3)
    "differ"

let test_detects_bad_rib () =
  corrupt_and_check
    (fun s -> Spine.Fast_store.add_rib s 4 ~code:0 ~dest:2 ~pt:1)
    "downstream"

let test_detects_bad_extrib () =
  corrupt_and_check
    (fun s -> Spine.Fast_store.add_extrib s 6 ~dest:9 ~pt:2 ~prt:5 ~anchor:7)
    "PRT must be below PT"

let suite =
  [ Alcotest.test_case "clean on genuine indexes" `Quick test_clean_indexes
  ; Alcotest.test_case "detects corrupted link destination" `Quick
      test_detects_bad_link_dest
  ; Alcotest.test_case "detects out-of-range LEL" `Quick test_detects_bad_lel
  ; Alcotest.test_case "detects broken suffix equality" `Quick
      test_detects_wrong_suffix
  ; Alcotest.test_case "detects upstream rib" `Quick test_detects_bad_rib
  ; Alcotest.test_case "detects inconsistent extrib labels" `Quick
      test_detects_bad_extrib
  ]
