(* DAWG (suffix automaton) vs the naive oracles. *)

let byte = Bioseq.Alphabet.byte

let codes_of s = Array.init (String.length s) (fun i -> Char.code s.[i])

let test_membership () =
  List.iter
    (fun s ->
      let d = Dawg.of_string byte s in
      let n = String.length s in
      for i = 0 to n - 1 do
        for len = 1 to n - i do
          if not (Dawg.contains d (String.sub s i len)) then
            Alcotest.failf "missing substring of %S" s
        done
      done;
      Alcotest.(check bool) "absent" false (Dawg.contains d (s ^ "!")))
    Oracles.adversarial

let test_membership_random () =
  let rng = Bioseq.Rng.create 81 in
  for _ = 1 to 30 do
    let s = Oracles.random_string rng 3 (10 + Bioseq.Rng.int rng 120) in
    let d = Dawg.of_string byte s in
    for _ = 1 to 40 do
      let pat = Oracles.random_string rng 3 (1 + Bioseq.Rng.int rng 8) in
      Alcotest.(check bool) (Printf.sprintf "%S in %S" pat s)
        (Oracles.contains s pat) (Dawg.contains d pat)
    done
  done

let test_occurrence_counts () =
  let rng = Bioseq.Rng.create 82 in
  List.iter
    (fun s ->
      let d = Dawg.of_string byte s in
      for _ = 1 to 30 do
        let pat = Oracles.random_string rng 3 (1 + Bioseq.Rng.int rng 5) in
        Alcotest.(check int) (Printf.sprintf "count %S in %S" pat s)
          (List.length (Oracles.occurrences s pat))
          (Dawg.count_occurrences d (codes_of pat))
      done)
    Oracles.adversarial

let test_state_bounds () =
  let rng = Bioseq.Rng.create 83 in
  for _ = 1 to 20 do
    let n = 2 + Bioseq.Rng.int rng 200 in
    let s = Oracles.random_string rng 4 n in
    let d = Dawg.of_string byte s in
    let states = Dawg.state_count d in
    (* classic bounds: n + 1 <= states <= 2n - 1 for n >= 2 *)
    if states < n + 1 || states > max (n + 1) ((2 * n) - 1) then
      Alcotest.failf "state count %d out of bounds for n=%d" states n;
    (* SPINE's complete compaction always beats or matches it *)
    let spine_nodes = n + 1 in
    Alcotest.(check bool) "spine <= dawg" true (spine_nodes <= states)
  done

let test_incomplete_compaction_witness () =
  (* the paper's point: DAWGs do NOT reach the n + 1 lower bound in
     general — "abcbc" needs a clone *)
  let d = Dawg.of_string byte "abcbc" in
  Alcotest.(check bool) "clone created" true (Dawg.state_count d > 6)

let suite =
  [ Alcotest.test_case "membership (adversarial, exhaustive)" `Quick
      test_membership
  ; Alcotest.test_case "membership (random)" `Quick test_membership_random
  ; Alcotest.test_case "occurrence counts" `Quick test_occurrence_counts
  ; Alcotest.test_case "state-count bounds vs SPINE" `Quick test_state_bounds
  ; Alcotest.test_case "incomplete compaction witness" `Quick
      test_incomplete_compaction_witness
  ]
