(* Tests for the sequence substrate: alphabets, packed sequences,
   FASTA, deterministic RNG, and the synthetic generators. *)

let test_alphabet_roundtrip () =
  List.iter
    (fun a ->
      for code = 0 to Bioseq.Alphabet.size a - 1 do
        let c = Bioseq.Alphabet.decode a code in
        Alcotest.(check int)
          (Printf.sprintf "%s roundtrip %d" (Bioseq.Alphabet.name a) code)
          code (Bioseq.Alphabet.encode a c)
      done)
    [ Bioseq.Alphabet.dna; Bioseq.Alphabet.protein; Bioseq.Alphabet.byte ]

let test_alphabet_bits () =
  (* 4 symbols + separator needs 3 bits; the paper's 2-bit figure is the
     payload width used in space accounting *)
  Alcotest.(check int) "dna bits" 3 (Bioseq.Alphabet.bits Bioseq.Alphabet.dna);
  Alcotest.(check int) "dna payload bits" 2
    (Bioseq.Alphabet.payload_bits Bioseq.Alphabet.dna);
  Alcotest.(check int) "protein bits" 5
    (Bioseq.Alphabet.bits Bioseq.Alphabet.protein);
  Alcotest.(check int) "protein payload bits" 5
    (Bioseq.Alphabet.payload_bits Bioseq.Alphabet.protein);
  Alcotest.(check int) "separator code" 4
    (Bioseq.Alphabet.separator Bioseq.Alphabet.dna)

let test_alphabet_errors () =
  Alcotest.check_raises "duplicate symbols"
    (Invalid_argument "Alphabet.make: duplicate symbol") (fun () ->
      ignore (Bioseq.Alphabet.make "aa"));
  Alcotest.check_raises "empty"
    (Invalid_argument "Alphabet.make: empty alphabet") (fun () ->
      ignore (Bioseq.Alphabet.make ""));
  (match Bioseq.Alphabet.encode_opt Bioseq.Alphabet.dna 'z' with
   | None -> ()
   | Some _ -> Alcotest.fail "z should not encode")

let test_packed_roundtrip () =
  let rng = Bioseq.Rng.create 3 in
  List.iter
    (fun a ->
      for _ = 1 to 20 do
        let n = Bioseq.Rng.int rng 200 in
        let codes =
          Array.init n (fun _ -> Bioseq.Rng.int rng (Bioseq.Alphabet.size a))
        in
        let seq = Bioseq.Packed_seq.of_codes a codes in
        Alcotest.(check int) "length" n (Bioseq.Packed_seq.length seq);
        Array.iteri
          (fun i c -> Alcotest.(check int) "get" c (Bioseq.Packed_seq.get seq i))
          codes;
        (* string roundtrip *)
        let s = Bioseq.Packed_seq.to_string seq in
        Alcotest.(check bool) "string roundtrip" true
          (Bioseq.Packed_seq.equal seq (Bioseq.Packed_seq.of_string a s));
        (* bit-packed roundtrip *)
        let packed = Bioseq.Packed_seq.packed_bits seq in
        let back = Bioseq.Packed_seq.of_packed_bits a ~len:n packed in
        Alcotest.(check bool) "bit roundtrip" true
          (Bioseq.Packed_seq.equal seq back)
      done)
    [ Bioseq.Alphabet.dna; Bioseq.Alphabet.protein ]

let test_packed_growth () =
  let seq = Bioseq.Packed_seq.create ~capacity:1 Bioseq.Alphabet.dna in
  for i = 0 to 9999 do
    Bioseq.Packed_seq.append seq (i mod 4)
  done;
  Alcotest.(check int) "length after growth" 10000 (Bioseq.Packed_seq.length seq);
  Alcotest.(check int) "spot check" 3 (Bioseq.Packed_seq.get seq 4003)

let test_rng_determinism () =
  let a = Bioseq.Rng.create 42 and b = Bioseq.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Bioseq.Rng.int a 1000)
      (Bioseq.Rng.int b 1000)
  done;
  let c = Bioseq.Rng.create 43 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Bioseq.Rng.int a 1000 <> Bioseq.Rng.int c 1000 then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_rng_bounds () =
  let rng = Bioseq.Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Bioseq.Rng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.failf "out of bounds: %d" v;
    let f = Bioseq.Rng.float rng 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.failf "float out of bounds: %f" f
  done

let test_fasta_roundtrip () =
  let dna = Bioseq.Alphabet.dna in
  let records =
    [ { Bioseq.Fasta.header = "chr1 test";
        seq = Bioseq.Packed_seq.of_string dna "acgtacgtacgt" }
    ; { Bioseq.Fasta.header = "chr2";
        seq = Bioseq.Packed_seq.of_string dna (String.make 200 'g') }
    ]
  in
  let text = Bioseq.Fasta.to_string records in
  let parsed = Bioseq.Fasta.parse_string dna text in
  Alcotest.(check int) "record count" 2 (List.length parsed);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "header" a.Bioseq.Fasta.header b.Bioseq.Fasta.header;
      Alcotest.(check bool) "seq" true
        (Bioseq.Packed_seq.equal a.Bioseq.Fasta.seq b.Bioseq.Fasta.seq))
    records parsed

let test_fasta_tolerance () =
  let dna = Bioseq.Alphabet.dna in
  (* upper case, Ns, CRLF line endings *)
  let text = ">x desc\r\nACGT\r\nNNacgtNN\r\n" in
  match Bioseq.Fasta.parse_string dna text with
  | [ { Bioseq.Fasta.header; seq } ] ->
    Alcotest.(check string) "header" "x desc" header;
    Alcotest.(check string) "normalised seq" "acgtacgt"
      (Bioseq.Packed_seq.to_string seq)
  | _ -> Alcotest.fail "expected one record"

let test_fasta_errors () =
  (match Bioseq.Fasta.parse_string Bioseq.Alphabet.dna "acgt\n" with
   | exception Failure _ -> ()
   | _ -> Alcotest.fail "data before header must be rejected")

let test_generators_deterministic () =
  let mk seed = Bioseq.Synthetic.genomic Bioseq.Alphabet.dna (Bioseq.Rng.create seed) 5000 in
  Alcotest.(check bool) "same seed same string" true
    (Bioseq.Packed_seq.equal (mk 9) (mk 9));
  Alcotest.(check bool) "different seed different string" false
    (Bioseq.Packed_seq.equal (mk 9) (mk 10))

let test_generator_lengths () =
  let rng = Bioseq.Rng.create 4 in
  List.iter
    (fun n ->
      let u = Bioseq.Synthetic.uniform Bioseq.Alphabet.dna (Bioseq.Rng.split rng) n in
      let m = Bioseq.Synthetic.markov Bioseq.Alphabet.dna (Bioseq.Rng.split rng) n in
      let g = Bioseq.Synthetic.genomic Bioseq.Alphabet.dna (Bioseq.Rng.split rng) n in
      Alcotest.(check int) "uniform length" n (Bioseq.Packed_seq.length u);
      Alcotest.(check int) "markov length" n (Bioseq.Packed_seq.length m);
      Alcotest.(check int) "genomic length" n (Bioseq.Packed_seq.length g))
    [ 0; 1; 100; 12345 ]

let test_fibonacci_and_periodic () =
  let fib = Bioseq.Synthetic.fibonacci Bioseq.Alphabet.dna 13 in
  (* the fibonacci word begins a b a a b a b a a b a a b *)
  Alcotest.(check string) "fibonacci prefix" "acaacacaacaac"
    (Bioseq.Packed_seq.to_string fib);
  let p = Bioseq.Synthetic.periodic Bioseq.Alphabet.dna ~period:"acg" 8 in
  Alcotest.(check string) "periodic" "acgacgac" (Bioseq.Packed_seq.to_string p)

let test_mutate_rate () =
  let rng = Bioseq.Rng.create 6 in
  let s = Bioseq.Synthetic.uniform Bioseq.Alphabet.dna (Bioseq.Rng.split rng) 20000 in
  let m = Bioseq.Synthetic.mutate ~rate:0.1 (Bioseq.Rng.split rng) s in
  let diffs = ref 0 in
  Bioseq.Packed_seq.iteri s ~f:(fun i c ->
      if Bioseq.Packed_seq.get m i <> c then incr diffs);
  (* expected ~ rate * (1 - 1/sigma) * n = 1500; allow wide tolerance *)
  if !diffs < 1000 || !diffs > 2000 then
    Alcotest.failf "unexpected mutation count %d" !diffs

let test_corpus () =
  Alcotest.(check bool) "find eco" true (Bioseq.Corpus.find "eco" <> None);
  Alcotest.(check bool) "find unknown" true (Bioseq.Corpus.find "nope" = None);
  let s = Bioseq.Corpus.load ~scale:0.001 Bioseq.Corpus.eco in
  Alcotest.(check int) "scaled length" 3500 (Bioseq.Packed_seq.length s);
  let s2 = Bioseq.Corpus.load ~scale:0.001 Bioseq.Corpus.eco in
  Alcotest.(check bool) "deterministic" true (Bioseq.Packed_seq.equal s s2);
  Alcotest.(check int) "clamped minimum" 1000
    (Bioseq.Corpus.scaled_length ~scale:0.0000001 Bioseq.Corpus.eco)

let suite =
  [ Alcotest.test_case "alphabet roundtrip" `Quick test_alphabet_roundtrip
  ; Alcotest.test_case "alphabet bits/separator" `Quick test_alphabet_bits
  ; Alcotest.test_case "alphabet error handling" `Quick test_alphabet_errors
  ; Alcotest.test_case "packed seq roundtrips" `Quick test_packed_roundtrip
  ; Alcotest.test_case "packed seq growth" `Quick test_packed_growth
  ; Alcotest.test_case "rng determinism" `Quick test_rng_determinism
  ; Alcotest.test_case "rng bounds" `Quick test_rng_bounds
  ; Alcotest.test_case "fasta roundtrip" `Quick test_fasta_roundtrip
  ; Alcotest.test_case "fasta tolerance (case, N, CRLF)" `Quick
      test_fasta_tolerance
  ; Alcotest.test_case "fasta malformed input" `Quick test_fasta_errors
  ; Alcotest.test_case "generators deterministic" `Quick
      test_generators_deterministic
  ; Alcotest.test_case "generator exact lengths" `Quick test_generator_lengths
  ; Alcotest.test_case "fibonacci & periodic words" `Quick
      test_fibonacci_and_periodic
  ; Alcotest.test_case "mutation rate" `Quick test_mutate_rate
  ; Alcotest.test_case "corpus profiles" `Quick test_corpus
  ]
