(* Property tests of the SPINE index against the naive oracles, on
   random strings over several alphabet sizes plus the adversarial
   menagerie. QCheck generators drive the randomised cases; they are
   registered as alcotest cases via QCheck_alcotest. *)

module I = Spine.Index

let byte = Bioseq.Alphabet.byte

let build s = I.of_string byte s

let codes_of s = Array.init (String.length s) (fun i -> Char.code s.[i])

(* --- deterministic checks reused by both qcheck and direct cases --- *)

let check_membership s =
  let t = build s in
  let n = String.length s in
  (* all substrings present (no false negatives) *)
  for i = 0 to n - 1 do
    for len = 1 to n - i do
      let sub = String.sub s i len in
      if not (I.contains_codes t (codes_of sub)) then
        failwith (Printf.sprintf "false negative: %S in %S" sub s)
    done
  done;
  true

let check_membership_random_patterns rng sigma s =
  let t = build s in
  for _ = 1 to 50 do
    let pat = Oracles.random_string rng sigma (1 + Bioseq.Rng.int rng 8) in
    let expected = Oracles.contains s pat in
    let got = I.contains_codes t (codes_of pat) in
    if expected <> got then
      failwith
        (Printf.sprintf "membership mismatch: %S in %S (oracle %b, spine %b)"
           pat s expected got)
  done;
  true

let check_first_occurrence rng sigma s =
  let t = build s in
  for _ = 1 to 50 do
    let pat =
      if Bioseq.Rng.bool rng && String.length s > 2 then begin
        let len = 1 + Bioseq.Rng.int rng (min 8 (String.length s)) in
        let p = Bioseq.Rng.int rng (String.length s - len + 1) in
        String.sub s p len
      end
      else Oracles.random_string rng sigma (1 + Bioseq.Rng.int rng 6)
    in
    let expected = Oracles.first_occurrence s pat in
    let got = I.first_occurrence t (codes_of pat) in
    if expected <> got then
      failwith
        (Printf.sprintf "first occurrence mismatch for %S in %S" pat s)
  done;
  true

let check_all_occurrences rng sigma s =
  let t = build s in
  for _ = 1 to 40 do
    let pat =
      if Bioseq.Rng.bool rng && String.length s > 2 then begin
        let len = 1 + Bioseq.Rng.int rng (min 6 (String.length s)) in
        let p = Bioseq.Rng.int rng (String.length s - len + 1) in
        String.sub s p len
      end
      else Oracles.random_string rng sigma (1 + Bioseq.Rng.int rng 5)
    in
    let expected = Oracles.occurrences s pat in
    let got = I.occurrences t (codes_of pat) in
    if expected <> got then
      failwith
        (Printf.sprintf "occurrences mismatch for %S in %S: [%s] vs [%s]"
           pat s
           (String.concat ";" (List.map string_of_int expected))
           (String.concat ";" (List.map string_of_int got)))
  done;
  true

let check_links s =
  (* every node's link must record the LET-suffix: length and first
     occurrence end, per the naive definition *)
  let t = build s in
  for i = 1 to String.length s do
    let lel, dest = Oracles.let_suffix s i in
    let got_dest, got_lel = I.link t i in
    if (lel, dest) <> (got_lel, got_dest) then
      failwith
        (Printf.sprintf
           "link mismatch at node %d of %S: oracle (dest %d, lel %d), \
            spine (dest %d, lel %d)"
           i s dest lel got_dest got_lel)
  done;
  true

let check_matching_statistics rng sigma s =
  let t = build s in
  let q = Oracles.random_string rng sigma (5 + Bioseq.Rng.int rng 40) in
  let expected = Oracles.matching_statistics s q in
  let got, _ = I.matching_statistics t (Bioseq.Packed_seq.of_string byte q) in
  if expected <> got then
    failwith (Printf.sprintf "matching statistics mismatch: %S vs %S" s q);
  true

let check_maximal_matches rng sigma s =
  let t = build s in
  let q = Oracles.random_string rng sigma (5 + Bioseq.Rng.int rng 40) in
  let threshold = 2 + Bioseq.Rng.int rng 3 in
  let expected = Oracles.maximal_matches s q threshold in
  let got, _ =
    I.maximal_matches t ~threshold (Bioseq.Packed_seq.of_string byte q)
  in
  let got =
    List.map (fun { I.query_end; length; data_ends } ->
        (query_end, length, data_ends)) got
  in
  if expected <> got then
    failwith
      (Printf.sprintf "maximal matches mismatch: %S vs %S @%d" s q threshold);
  true

let check_prefix_partition s =
  (* the index of a prefix must be the initial fragment of the index:
     identical links, ribs restricted to nodes/destinations within the
     prefix... SPINE's prefix-partitionability says the prefix index
     equals the truncation, so compare the prefix index against the full
     index restricted to the first k nodes. Edges pointing beyond node k
     in the full index were created later and do not exist in the prefix
     index; the property is that everything in the prefix index appears
     identically in the full one. *)
  let full = build s in
  let n = String.length s in
  let k = max 1 (n / 2) in
  let prefix = build (String.sub s 0 k) in
  for i = 1 to k do
    if I.link prefix i <> I.link full i then
      failwith (Printf.sprintf "prefix link mismatch at %d of %S" i s)
  done;
  for node = 0 to k do
    for code = 0 to 255 do
      match I.rib prefix node code with
      | Some (dest, pt) ->
        (* every prefix rib exists unchanged in the full index *)
        if I.rib full node code <> Some (dest, pt) then
          failwith (Printf.sprintf "prefix rib mismatch at %d of %S" node s)
      | None ->
        (* a rib present in the full index but absent in the prefix one
           must point beyond the prefix *)
        (match I.rib full node code with
         | Some (dest, _) when dest <= k ->
           failwith
             (Printf.sprintf "full index has early rib missing in prefix \
                              index at %d of %S" node s)
         | _ -> ())
    done
  done;
  true

let check_binary_scan rng sigma s =
  (* the paper's binary-search target-node-buffer formulation must give
     exactly the same end nodes as the hashtable scan *)
  let t = build s in
  for _ = 1 to 20 do
    let pat =
      if String.length s > 3 && Bioseq.Rng.bool rng then begin
        let len = 1 + Bioseq.Rng.int rng (min 6 (String.length s)) in
        let p = Bioseq.Rng.int rng (String.length s - len + 1) in
        String.sub s p len
      end
      else Oracles.random_string rng sigma (1 + Bioseq.Rng.int rng 5)
    in
    let codes = codes_of pat in
    if I.end_nodes t codes <> I.end_nodes_binary t codes then
      failwith (Printf.sprintf "binary scan mismatch for %S in %S" pat s)
  done;
  true

let check_node_count s =
  let t = build s in
  I.node_count t = String.length s + 1

(* --- fixed adversarial cases --- *)

let test_adversarial name check () =
  List.iter
    (fun s ->
      if not (check s) then Alcotest.failf "%s failed on %S" name s)
    Oracles.adversarial

let test_adversarial_rng name check () =
  let rng = Bioseq.Rng.create 7 in
  List.iter
    (fun s ->
      if not (check rng 3 s) then Alcotest.failf "%s failed on %S" name s)
    Oracles.adversarial

(* --- qcheck properties --- *)

let arbitrary_string sigma max_len =
  let gen =
    QCheck.Gen.(
      map
        (fun (len, seed) ->
          let rng = Bioseq.Rng.create seed in
          Oracles.random_string rng sigma (1 + len))
        (pair (int_bound (max_len - 1)) (int_bound 1_000_000)))
  in
  QCheck.make ~print:(fun s -> s) gen

let qcheck_props =
  let mk name sigma max_len prop =
    QCheck.Test.make ~count:60 ~name (arbitrary_string sigma max_len) prop
  in
  let with_rng f s =
    let rng = Bioseq.Rng.create (Hashtbl.hash s) in
    f rng (max 2 (min 4 (String.length s))) s
  in
  [ mk "membership of all substrings (sigma=2)" 2 40 check_membership
  ; mk "membership of all substrings (sigma=4)" 4 40 check_membership
  ; mk "membership of random patterns" 3 60 (with_rng check_membership_random_patterns)
  ; mk "first occurrence (sigma=2)" 2 50 (with_rng check_first_occurrence)
  ; mk "first occurrence (sigma=8)" 8 50 (with_rng check_first_occurrence)
  ; mk "all occurrences (sigma=2)" 2 50 (with_rng check_all_occurrences)
  ; mk "all occurrences (sigma=4)" 4 50 (with_rng check_all_occurrences)
  ; mk "links record LET suffixes (sigma=2)" 2 35 check_links
  ; mk "links record LET suffixes (sigma=4)" 4 35 check_links
  ; mk "matching statistics (sigma=2)" 2 45 (with_rng check_matching_statistics)
  ; mk "matching statistics (sigma=4)" 4 45 (with_rng check_matching_statistics)
  ; mk "maximal matches (sigma=3)" 3 45 (with_rng check_maximal_matches)
  ; mk "prefix partitioning (sigma=2)" 2 40 check_prefix_partition
  ; mk "prefix partitioning (sigma=4)" 4 40 check_prefix_partition
  ; mk "node count = n + 1" 4 60 check_node_count
  ; mk "binary-search occurrence scan parity" 3 60 (with_rng check_binary_scan)
  ]

let suite =
  [ Alcotest.test_case "membership (adversarial)" `Quick
      (test_adversarial "membership" check_membership)
  ; Alcotest.test_case "links vs LET oracle (adversarial)" `Quick
      (test_adversarial "links" check_links)
  ; Alcotest.test_case "prefix partition (adversarial)" `Quick
      (test_adversarial "prefix" check_prefix_partition)
  ; Alcotest.test_case "occurrences (adversarial)" `Quick
      (test_adversarial_rng "occurrences" check_all_occurrences)
  ; Alcotest.test_case "matching statistics (adversarial)" `Quick
      (test_adversarial_rng "ms" check_matching_statistics)
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_props
