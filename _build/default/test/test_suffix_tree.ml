(* Suffix tree baseline vs the naive oracles. *)

module ST = Suffix_tree

let byte = Bioseq.Alphabet.byte

let build s = ST.of_string byte s

let codes_of s = Array.init (String.length s) (fun i -> Char.code s.[i])

let check_contains s =
  let t = build s in
  let n = String.length s in
  (* every substring present *)
  for i = 0 to n - 1 do
    for len = 1 to n - i do
      let sub = String.sub s i len in
      if not (ST.contains_codes t (codes_of sub)) then
        Alcotest.failf "missing substring %S of %S" sub s
    done
  done

let check_occurrences rng s =
  let t = build s in
  let n = String.length s in
  for _ = 1 to 30 do
    let len = 1 + Bioseq.Rng.int rng (min 6 n) in
    let pat =
      if Bioseq.Rng.bool rng && n >= len then
        let p = Bioseq.Rng.int rng (n - len + 1) in
        String.sub s p len
      else Oracles.random_string rng 3 len
    in
    let expected = Oracles.occurrences s pat in
    let got = ST.occurrences t (codes_of pat) in
    Alcotest.(check (list int))
      (Printf.sprintf "occurrences of %S in %S" pat s) expected got
  done

let check_ms rng s =
  let t = build s in
  let q =
    (* queries built from the same small alphabet so matches happen *)
    Oracles.random_string rng 3 (10 + Bioseq.Rng.int rng 30)
  in
  let expected = Oracles.matching_statistics s q in
  let got, _ = ST.matching_statistics t (Bioseq.Packed_seq.of_string byte q) in
  Alcotest.(check (array int))
    (Printf.sprintf "ms of %S against %S" q s) expected got

let test_adversarial_contains () = List.iter check_contains Oracles.adversarial

let test_adversarial_absent () =
  List.iter
    (fun s ->
      let t = build s in
      Alcotest.(check bool) "absent pattern" false
        (ST.contains t (s ^ "zzz"));
      Alcotest.(check bool) "absent char" false (ST.contains t "z"))
    Oracles.adversarial

let test_counts () =
  List.iter
    (fun s ->
      let t = build s in
      let n = String.length s in
      (* with a terminator every suffix (plus the empty one) is a leaf *)
      Alcotest.(check int) ("leaves of " ^ s) (n + 1) (ST.leaf_count t);
      if ST.node_count t > 2 * (n + 1) + 1 then
        Alcotest.failf "node count %d too large for %S" (ST.node_count t) s)
    Oracles.adversarial

let test_occurrences_random () =
  let rng = Bioseq.Rng.create 42 in
  List.iter (check_occurrences rng) Oracles.adversarial;
  for _ = 1 to 25 do
    let s = Oracles.random_string rng 3 (5 + Bioseq.Rng.int rng 60) in
    check_occurrences rng s
  done

let test_ms_random () =
  let rng = Bioseq.Rng.create 43 in
  List.iter (check_ms rng) Oracles.adversarial;
  for _ = 1 to 25 do
    let s = Oracles.random_string rng 3 (5 + Bioseq.Rng.int rng 60) in
    check_ms rng s
  done

let test_maximal_matches () =
  let rng = Bioseq.Rng.create 44 in
  for _ = 1 to 40 do
    let s = Oracles.random_string rng 3 (10 + Bioseq.Rng.int rng 50) in
    let q = Oracles.random_string rng 3 (10 + Bioseq.Rng.int rng 50) in
    let threshold = 2 + Bioseq.Rng.int rng 3 in
    let expected = Oracles.maximal_matches s q threshold in
    let t = build s in
    let got, _ =
      ST.maximal_matches t ~threshold (Bioseq.Packed_seq.of_string byte q)
    in
    let got =
      List.map (fun { ST.query_end; length; data_ends } ->
          (query_end, length, data_ends)) got
    in
    Alcotest.(check (list (triple int int (list int))))
      (Printf.sprintf "maximal matches %S / %S @%d" s q threshold)
      expected got
  done

let test_first_occurrence () =
  let rng = Bioseq.Rng.create 45 in
  for _ = 1 to 40 do
    let s = Oracles.random_string rng 2 (5 + Bioseq.Rng.int rng 40) in
    let t = build s in
    for _ = 1 to 10 do
      let pat = Oracles.random_string rng 2 (1 + Bioseq.Rng.int rng 6) in
      Alcotest.(check (option int)) "first occurrence"
        (Oracles.first_occurrence s pat)
        (ST.first_occurrence t (codes_of pat))
    done
  done

let suite =
  [ Alcotest.test_case "contains: all substrings (adversarial)" `Quick
      test_adversarial_contains
  ; Alcotest.test_case "contains: absent patterns" `Quick test_adversarial_absent
  ; Alcotest.test_case "leaf/node counts" `Quick test_counts
  ; Alcotest.test_case "occurrences vs oracle" `Quick test_occurrences_random
  ; Alcotest.test_case "matching statistics vs oracle" `Quick test_ms_random
  ; Alcotest.test_case "maximal matches vs oracle" `Quick test_maximal_matches
  ; Alcotest.test_case "first occurrence vs oracle" `Quick test_first_occurrence
  ]
