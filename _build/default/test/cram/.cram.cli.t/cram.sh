  $ printf 'aaccacaaca' > data.txt
  $ spine build --alphabet dna --text data.txt -o paper.idx | sed 's/in [0-9.]*s/in Xs/'
  $ spine stats -i paper.idx
  $ spine query -i paper.idx ac
  $ spine query -i paper.idx accaa
  $ spine approx -i paper.idx agca -k 1
  $ printf '>q\nttaccacaat\n' > query.fa
  $ spine match -i paper.idx -q query.fa --threshold 3
  $ spine build --synthetic ECO --scale 0.001 -o eco.idx | sed 's/in [0-9.]*s/in Xs/'
  $ spine build --synthetic NOPE -o x.idx
  $ spine query -i paper.idx zz
  $ printf '>r\nacgtacgtacgggttacgatacgaa\n' > ref.fa
  $ printf '>q\nacgtacctacgggttacgttacgaa\n' > qry.fa
  $ spine align -r ref.fa -q qry.fa --threshold 5
