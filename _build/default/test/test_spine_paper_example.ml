(* The paper's running example, string "aaccacaaca" (Figures 3 and the
   Section 3.1 construction walkthrough), checked edge-for-edge against
   the hand-validated construction trace. *)

module I = Spine.Index

let dna_like = Bioseq.Alphabet.make "ac"

let build () = I.of_string dna_like "aaccacaaca"

let a = 0 and c = 1

let test_links () =
  let t = build () in
  (* (node, dest, lel), derived by hand and cross-checked against every
     explicit value in the paper: link 2->1 LEL 1 (CASE 1 example),
     link 3->0 LEL 0 (CASE 3), link 4->3 LEL 1 (CASE 2), link 7->5
     LEL 2 (CASE 4), link 8->2 LEL 2 (Section 2.1). *)
  let expected =
    [ (1, 0, 0); (2, 1, 1); (3, 0, 0); (4, 3, 1); (5, 1, 1);
      (6, 3, 2); (7, 5, 2); (8, 2, 2); (9, 3, 3); (10, 7, 3) ]
  in
  List.iter
    (fun (node, dest, lel) ->
      Alcotest.(check (pair int int))
        (Printf.sprintf "link of node %d" node)
        (dest, lel) (I.link t node))
    expected

let test_ribs () =
  let t = build () in
  (* every rib in Figure 3: source, code, dest, PT. "The rib from Node 3
     has a PT of 1" is the (3, a, 5, 1) entry. *)
  let expected =
    [ (1, c, 3, 1); (0, c, 3, 0); (3, a, 5, 1); (5, a, 8, 2) ]
  in
  List.iter
    (fun (node, code, dest, pt) ->
      Alcotest.(check (option (pair int int)))
        (Printf.sprintf "rib (%d, %d)" node code)
        (Some (dest, pt)) (I.rib t node code))
    expected;
  (* and no others *)
  let total =
    List.fold_left
      (fun acc node ->
        List.fold_left
          (fun acc code -> if I.rib t node code <> None then acc + 1 else acc)
          acc [ a; c ])
      0
      [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
  in
  Alcotest.(check int) "rib count" 4 total

let test_extribs () =
  let t = build () in
  (* "the extrib from Node 5 to Node 7 has a PRT of 1 and PT of 2" and
     its chain continuation created when appending the final character *)
  Alcotest.(check (option (triple int int int))) "extrib at 5"
    (Some (7, 2, 1)) (I.extrib t 5);
  Alcotest.(check (option (triple int int int))) "extrib at 7"
    (Some (10, 3, 1)) (I.extrib t 7);
  List.iter
    (fun node ->
      Alcotest.(check (option (triple int int int)))
        (Printf.sprintf "no extrib at %d" node) None (I.extrib t node))
    [ 0; 1; 2; 3; 4; 6; 8; 9; 10 ]

let test_node_and_edge_counts () =
  let t = build () in
  Alcotest.(check int) "nodes" 11 (I.node_count t);
  let { I.vertebras; ribs; extribs; links } = I.edge_counts t in
  (* "it has 11 nodes and 26 edges" *)
  Alcotest.(check int) "total edges" 26 (vertebras + ribs + extribs + links);
  Alcotest.(check int) "vertebras" 10 vertebras;
  Alcotest.(check int) "ribs" 4 ribs;
  Alcotest.(check int) "extribs" 2 extribs;
  Alcotest.(check int) "links" 10 links

let test_false_positive_rejected () =
  let t = build () in
  (* Section 2.1/4: "accaa" appears to have a path but the PT labels
     must reject it *)
  Alcotest.(check bool) "accaa rejected" false (I.contains t "accaa");
  Alcotest.(check bool) "acca accepted" true (I.contains t "acca")

let test_all_occurrences_example () =
  let t = build () in
  (* Section 4's worked example: searching "ac" fills the target node
     buffer with nodes 3, 6, 9 *)
  Alcotest.(check (list int)) "end nodes of ac" [ 3; 6; 9 ]
    (I.end_nodes t [| a; c |]);
  Alcotest.(check (list int)) "start positions of ac" [ 1; 4; 7 ]
    (I.occurrences t [| a; c |])

let test_every_substring_present () =
  let t = build () in
  let s = "aaccacaaca" in
  for i = 0 to String.length s - 1 do
    for len = 1 to String.length s - i do
      let sub = String.sub s i len in
      if not (I.contains t sub) then Alcotest.failf "missing %S" sub
    done
  done

let test_no_false_positives_exhaustive () =
  let t = build () in
  let s = "aaccacaaca" in
  (* enumerate ALL strings over {a, c} up to length 6 and compare the
     membership decision with the oracle *)
  let rec strings len =
    if len = 0 then [ "" ]
    else
      List.concat_map (fun w -> [ w ^ "a"; w ^ "c" ]) (strings (len - 1))
  in
  List.iter
    (fun pat ->
      if pat <> "" then
        Alcotest.(check bool) (Printf.sprintf "membership of %S" pat)
          (Oracles.contains s pat) (I.contains t pat))
    (strings 6)

let suite =
  [ Alcotest.test_case "links of Figure 3" `Quick test_links
  ; Alcotest.test_case "ribs of Figure 3" `Quick test_ribs
  ; Alcotest.test_case "extribs of Figure 3" `Quick test_extribs
  ; Alcotest.test_case "11 nodes, 26 edges" `Quick test_node_and_edge_counts
  ; Alcotest.test_case "accaa false positive rejected" `Quick
      test_false_positive_rejected
  ; Alcotest.test_case "target node buffer for 'ac'" `Quick
      test_all_occurrences_example
  ; Alcotest.test_case "every substring present" `Quick
      test_every_substring_present
  ; Alcotest.test_case "exhaustive membership up to length 6" `Quick
      test_no_false_positives_exhaustive
  ]
