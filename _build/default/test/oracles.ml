(* Naive reference implementations every index is validated against.
   All are deliberately brute force: correctness is obvious by
   inspection, which is the whole point of an oracle. *)

(* All start positions of [pat] in [s], ascending. *)
let occurrences s pat =
  let n = String.length s and m = String.length pat in
  if m = 0 || m > n then []
  else begin
    let acc = ref [] in
    for i = n - m downto 0 do
      if String.sub s i m = pat then acc := i :: !acc
    done;
    !acc
  end

let contains s pat = pat = "" || occurrences s pat <> []

let first_occurrence s pat =
  match occurrences s pat with [] -> None | p :: _ -> Some p

(* Matching statistics: ms.(i) = length of the longest suffix of
   q[0..i] that is a substring of [s]. *)
let matching_statistics s q =
  let m = String.length q in
  Array.init m (fun i ->
      let rec longest len =
        if len > i + 1 then len - 1
        else if contains s (String.sub q (i + 1 - len) len) then longest (len + 1)
        else len - 1
      in
      longest 1)

(* The LET-suffix of each prefix: for prefix s[0..i-1] (node i of a
   SPINE), the longest suffix that also occurs ending strictly before
   position i, together with the end position (node id) of its first
   occurrence. Returns (lel, dest) with (0, 0) when no suffix
   re-occurs. *)
let let_suffix s i =
  let prefix = String.sub s 0 i in
  (* an occurrence starting at p (0-based) ends at node p + len; early
     termination means ending strictly before node i *)
  let rec try_len len =
    if len = 0 then (0, 0)
    else
      let suffix = String.sub prefix (i - len) len in
      match List.filter (fun p -> p + len < i) (occurrences prefix suffix) with
      | [] -> try_len (len - 1)
      | p :: _ -> (len, p + len)
  in
  try_len (i - 1)

(* Right-maximal matches of length >= threshold: (query_end, length,
   data end positions). *)
let maximal_matches s q threshold =
  let ms = matching_statistics s q in
  let m = String.length q in
  let out = ref [] in
  for i = m - 1 downto 0 do
    let right_maximal = i = m - 1 || ms.(i + 1) <= ms.(i) in
    if right_maximal && ms.(i) >= threshold && threshold > 0 then begin
      let pat = String.sub q (i + 1 - ms.(i)) ms.(i) in
      let ends = List.map (fun p -> p + ms.(i) - 1) (occurrences s pat) in
      out := (i, ms.(i), ends) :: !out
    end
  done;
  !out

(* Deterministic random strings for property tests. *)
let random_string rng alphabet_size len =
  String.init len (fun _ -> Char.chr (Char.code 'a' + Bioseq.Rng.int rng alphabet_size))

(* Fixed menagerie of adversarial inputs: high repetition, unary,
   Fibonacci, the paper's own example. *)
let adversarial =
  [ "aaccacaaca"                     (* the paper's running example *)
  ; "aaaaaaaaaaaaaaaa"
  ; "abababababababab"
  ; "abaababaabaababaababa"          (* fibonacci word prefix *)
  ; "abcabcabcabcabc"
  ; "a"
  ; "ab"
  ; "aa"
  ; "banana"
  ; "mississippi"
  ; "abcdefghijklmnop"               (* all distinct *)
  ; "aabbaabbaaabbb"
  ]
