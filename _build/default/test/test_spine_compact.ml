(* The compact Section 5 layout must behave identically to the
   reference index: same structure (links, ribs, extribs), same search
   answers, same statistics — plus its own space-accounting sanity. *)

module I = Spine.Index
module C = Spine.Compact

let byte = Bioseq.Alphabet.byte

let check_parity rng sigma s =
  let i = I.of_string byte s in
  let c = C.of_string byte s in
  (* structure-level parity via statistics *)
  Alcotest.(check int) "node count" (I.node_count i) (C.node_count c);
  let im = I.label_maxima i and cm = C.label_maxima c in
  Alcotest.(check (triple int int int)) ("label maxima of " ^ s)
    (im.I.max_pt, im.I.max_lel, im.I.max_prt)
    (cm.C.max_pt, cm.C.max_lel, cm.C.max_prt);
  Alcotest.(check (array int)) ("rib distribution of " ^ s)
    (I.rib_distribution i) (C.rib_distribution c);
  Alcotest.(check (array int)) ("link histogram of " ^ s)
    (I.link_histogram i ~buckets:8) (C.link_histogram c ~buckets:8);
  (* search parity on random patterns *)
  for _ = 1 to 40 do
    let pat = Oracles.random_string rng sigma (1 + Bioseq.Rng.int rng 8) in
    let codes = Array.init (String.length pat) (fun k -> Char.code pat.[k]) in
    Alcotest.(check (list int)) (Printf.sprintf "occurrences %S in %S" pat s)
      (I.occurrences i codes) (C.occurrences c codes)
  done;
  (* matching parity *)
  let q =
    Bioseq.Packed_seq.of_string byte
      (Oracles.random_string rng sigma (10 + Bioseq.Rng.int rng 40))
  in
  let ims, _ = I.matching_statistics i q in
  let cms, _ = C.matching_statistics c q in
  Alcotest.(check (array int)) ("ms parity on " ^ s) ims cms

let test_parity_random () =
  let rng = Bioseq.Rng.create 77 in
  List.iter (fun s -> check_parity rng 3 s) Oracles.adversarial;
  for _ = 1 to 20 do
    let s = Oracles.random_string rng 3 (20 + Bioseq.Rng.int rng 150) in
    check_parity rng 3 s
  done;
  (* wider alphabet exercises the wide RT4 and row migrations *)
  for _ = 1 to 10 do
    let s = Oracles.random_string rng 10 (50 + Bioseq.Rng.int rng 200) in
    check_parity rng 10 s
  done

let test_space_accounting () =
  let rng = Bioseq.Rng.create 78 in
  let s = Oracles.random_string rng 4 4000 in
  let c = C.of_string byte s in
  let sp = C.space c in
  Alcotest.(check int) "LT bytes = 6 per node (Figure 5's {LD/PTR, LEL})"
    (6 * (4000 + 1)) sp.C.lt_bytes;
  if sp.C.rt_bytes <= 0 then Alcotest.fail "no rib rows allocated";
  (* live rows must equal the number of nodes with each fanout *)
  let dist = C.rib_distribution c in
  let nodes_with_fanout f =
    if f < 4 then dist.(f)
    else Array.fold_left ( + ) 0 (Array.sub dist 4 (Array.length dist - 4))
  in
  for table = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "live rows in RT%d" (table + 1))
      (nodes_with_fanout (table + 1))
      (C.live_rows c table)
  done

let test_overflow_labels () =
  (* force labels beyond 65534: a unary string of length > 70000 has
     LELs growing to n - 1 *)
  let n = 70_000 in
  let s = String.make n 'a' in
  let c = C.of_string byte s in
  let i = I.of_string byte s in
  Alcotest.(check int) "max lel with overflow"
    (I.label_maxima i).I.max_lel (C.label_maxima c).C.max_lel;
  if C.overflow_count c = 0 then Alcotest.fail "expected overflow entries";
  (* search still exact *)
  let pat = Array.make 120 (Char.code 'a') in
  Alcotest.(check int) "occurrence count"
    (n - 120 + 1) (List.length (C.occurrences c pat))

let test_online_equals_batch () =
  let rng = Bioseq.Rng.create 79 in
  for _ = 1 to 10 do
    let s = Oracles.random_string rng 3 (50 + Bioseq.Rng.int rng 100) in
    (* build character by character, checking usability at every prefix *)
    let c = C.create byte in
    String.iteri
      (fun k ch ->
        C.append c (Char.code ch);
        if k mod 17 = 0 then begin
          let prefix = String.sub s 0 (k + 1) in
          let pat_len = min 3 (k + 1) in
          let pat = String.sub prefix (k + 1 - pat_len) pat_len in
          let codes =
            Array.init pat_len (fun j -> Char.code pat.[j])
          in
          if C.occurrences c codes = [] then
            Alcotest.failf "online index missing %S at prefix %d" pat k
        end)
      s;
    Alcotest.(check int) "final length" (String.length s) (C.length c)
  done

let suite =
  [ Alcotest.test_case "compact/reference parity" `Quick test_parity_random
  ; Alcotest.test_case "space accounting" `Quick test_space_accounting
  ; Alcotest.test_case "label overflow table" `Quick test_overflow_labels
  ; Alcotest.test_case "online construction usable at prefixes" `Quick
      test_online_equals_batch
  ]
