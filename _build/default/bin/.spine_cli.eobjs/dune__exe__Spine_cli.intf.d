bin/spine_cli.mli:
