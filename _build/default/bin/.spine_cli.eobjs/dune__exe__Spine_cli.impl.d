bin/spine_cli.ml: Align Arg Array Bioseq Cmd Cmdliner List Printf Result Spine String Term Xutil
