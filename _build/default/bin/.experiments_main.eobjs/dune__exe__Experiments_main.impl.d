bin/experiments_main.ml: Arg Cmd Cmdliner Experiments List Printf Term
