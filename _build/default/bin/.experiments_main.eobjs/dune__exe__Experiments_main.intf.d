bin/experiments_main.mli:
