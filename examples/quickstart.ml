(* Quickstart: build a SPINE index over a DNA string, run the three
   basic query types, and peek at the structure.

     dune exec examples/quickstart.exe
*)

let () =
  (* the paper's running example string *)
  let dna = Bioseq.Alphabet.dna in
  let idx = Spine.Index.of_string dna "aaccacaaca" in

  Printf.printf "indexed %d characters -> %d backbone nodes\n"
    (Spine.Index.length idx) (Spine.Index.node_count idx);

  (* 1. substring membership: SPINE answers without the original text *)
  List.iter
    (fun pat ->
      Printf.printf "contains %-6s = %b\n" pat (Spine.Index.contains idx pat))
    [ "cac"; "acca"; "accaa" (* the paper's false-positive example *) ];

  (* 2. all occurrences (the target-node-buffer scan of Section 4) *)
  let encode s =
    Array.init (String.length s) (fun i -> Bioseq.Alphabet.encode dna s.[i])
  in
  let occs = Spine.Index.occurrences idx (encode "ac") in
  Printf.printf "occurrences of \"ac\" start at: %s\n"
    (String.concat ", " (List.map string_of_int occs));

  (* 3. maximal matches against another string *)
  let query = Bioseq.Packed_seq.of_string dna "ttaccacaat" in
  let matches, stats = Spine.Index.maximal_matches idx ~threshold:3 query in
  List.iter
    (fun { Spine.Index.query_end; length; data_ends } ->
      Printf.printf
        "match of length %d ending at query %d, data ends: %s\n"
        length query_end
        (String.concat ", " (List.map string_of_int data_ends)))
    matches;
  Printf.printf "(%d nodes checked, %d suffix-set dispatches)\n"
    stats.Spine.Index.nodes_checked stats.Spine.Index.suffixes_checked;

  (* structure peek: the backward link of the last node *)
  let dest, lel = Spine.Index.link idx (Spine.Index.length idx) in
  Printf.printf
    "link of the tail node: the last %d characters first occurred ending \
     at node %d\n"
    lel dest;

  (* 4. the engine view: the same index as a capability-aware Engine.t,
     the uniform handle the CLI and cross-backend tests operate on.
     Compact.engine / Persistent.engine / Disk.engine answer the same
     calls. *)
  let e = Spine.Index.engine idx in
  assert (Spine.Engine.contains e "cac");
  assert ((Spine.Engine.caps e).Spine.Engine.backend = "fast");
  Printf.printf "engine backend = %s\n" (Spine.Engine.backend e);

  (* many patterns, ONE shared deferred backbone scan *)
  let items = Spine.Engine.run_batch e [ encode "ac"; encode "ca" ] in
  List.iter
    (fun { Spine.Engine.count; positions; _ } ->
      Printf.printf "batched pattern: %d occurrence(s) at %s\n" count
        (String.concat ", " (List.map string_of_int positions)))
    items;
  assert ((List.hd items).Spine.Engine.positions = [ 1; 4; 7 ]);

  (* incremental cursor (works on any backend, including paged ones) *)
  let c = Spine.Engine.cursor e in
  assert (c.Spine.Engine.advance_char 'c');
  Printf.printf "cursor at \"c\": occurrences at %s\n"
    (String.concat ", "
       (List.map string_of_int (c.Spine.Engine.occurrences ())));
  assert (c.Spine.Engine.occurrences () = [ 2; 3; 5; 8 ])
