(* CLI for the experiment harness: run one named experiment or all of
   them, at a chosen scale. *)

open Cmdliner

let scale =
  let doc = "Fraction of the paper's string lengths for in-memory runs." in
  Arg.(value & opt float Experiments.Config.default.Experiments.Config.scale
       & info [ "scale" ] ~docv:"FRACTION" ~doc)

let disk_scale =
  let doc = "Fraction of the paper's string lengths for disk (buffer-pool) runs." in
  Arg.(value
       & opt float Experiments.Config.default.Experiments.Config.disk_scale
       & info [ "disk-scale" ] ~docv:"FRACTION" ~doc)

let threshold =
  let doc = "Minimum maximal-match length for the matching experiments." in
  Arg.(value & opt int Experiments.Config.default.Experiments.Config.threshold
       & info [ "threshold" ] ~docv:"LEN" ~doc)

let names =
  let doc =
    "Experiments to run (table2 table3 table4 table5 table6 table7 fig6 \
     fig7 fig8 space proteins ablations); default: all."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let list_flag =
  let doc = "List available experiments and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let main scale disk_scale threshold names list_flag =
  let cfg =
    { Experiments.Config.scale; disk_scale; threshold;
      buckets = Experiments.Config.default.Experiments.Config.buckets }
  in
  if list_flag then begin
    List.iter
      (fun e ->
        Printf.printf "%-10s %s\n" e.Experiments.Registry.name
          e.Experiments.Registry.description)
      Experiments.Registry.all;
    0
  end
  else
    match names with
    | [] -> ignore (Experiments.Registry.run_all cfg); 0
    | names ->
      let ok = ref 0 in
      List.iter
        (fun name ->
          match Experiments.Registry.find name with
          | Some e -> ignore (Experiments.Registry.run_one cfg e)
          | None ->
            Printf.eprintf "unknown experiment %S (try --list)\n" name;
            ok := 1)
        names;
      !ok

let cmd =
  let doc = "regenerate the SPINE paper's tables and figures" in
  let info = Cmd.info "spine-experiments" ~doc in
  Cmd.v info
    Term.(const main $ scale $ disk_scale $ threshold $ names $ list_flag)

let () = exit (Cmd.eval' cmd)
