(* The `spine` command-line tool: build, persist, query and inspect
   SPINE indexes over FASTA, raw text, or the built-in synthetic
   corpora. *)

open Cmdliner

let alphabet_of_string = function
  | "dna" -> Ok Bioseq.Alphabet.dna
  | "protein" -> Ok Bioseq.Alphabet.protein
  | "byte" -> Ok Bioseq.Alphabet.byte
  | other -> Error (Printf.sprintf "unknown alphabet %S" other)

let alphabet_arg =
  let doc = "Alphabet: dna, protein or byte." in
  Arg.(value & opt string "dna" & info [ "alphabet"; "a" ] ~docv:"ALPHA" ~doc)

let load_sequence ~alphabet ~fasta ~synthetic ~scale ~text =
  match fasta, synthetic, text with
  | Some path, None, None ->
    (match Bioseq.Fasta.read_file alphabet path with
     | [] -> Error "FASTA file contains no records"
     | records ->
       (* concatenate multi-record files, as genome tools do *)
       let seq = Bioseq.Packed_seq.create alphabet in
       List.iter
         (fun { Bioseq.Fasta.seq = s; _ } ->
           Bioseq.Packed_seq.iteri s ~f:(fun _ c -> Bioseq.Packed_seq.append seq c))
         records;
       Ok seq)
  | None, Some name, None ->
    (match Bioseq.Corpus.find name with
     | Some corpus -> Ok (Bioseq.Corpus.load ~scale corpus)
     | None -> Error (Printf.sprintf "unknown corpus %S" name))
  | None, None, Some path ->
    let ic = open_in_bin path in
    let contents = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let seq = Bioseq.Packed_seq.create alphabet in
    String.iter
      (fun c ->
        match Bioseq.Alphabet.encode_opt alphabet c with
        | Some code -> Bioseq.Packed_seq.append seq code
        | None -> ())
      contents;
    Ok seq
  | _ ->
    Error "provide exactly one of --fasta, --synthetic, --text"

let fasta_arg =
  Arg.(value & opt (some string) None
       & info [ "fasta"; "f" ] ~docv:"FILE" ~doc:"Input FASTA file.")

let synthetic_arg =
  Arg.(value & opt (some string) None
       & info [ "synthetic"; "s" ] ~docv:"CORPUS"
           ~doc:"Built-in synthetic corpus (ECO, CEL, HC21, HC19, ECO-R, \
                 YEAST-R, DROS-R).")

let scale_arg =
  Arg.(value & opt float 0.01
       & info [ "scale" ] ~docv:"FRACTION"
           ~doc:"Scale for --synthetic corpora.")

let text_arg =
  Arg.(value & opt (some string) None
       & info [ "text"; "t" ] ~docv:"FILE" ~doc:"Input plain-text file.")

let index_arg ~doc =
  Arg.(required & opt (some string) None
       & info [ "index"; "i" ] ~docv:"FILE" ~doc)

(* --stats turns telemetry collection on for the run and prints every
   touched metric afterwards; SPINE_TELEMETRY=1 enables collection for
   callers that scrape the table themselves. *)
let stats_arg =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:"Collect telemetry during the run and print the touched \
                 counters, histograms and spans afterwards.")

let with_stats stats f =
  if stats then Telemetry.set_enabled true;
  let code = f () in
  if stats then
    Telemetry.print_table ~title:"telemetry" ~omit_zero:true
      (Telemetry.snapshot ());
  code

(* --- build --- *)

let build_cmd =
  let out =
    Arg.(required & opt (some string) None
         & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output index file.")
  in
  let backend =
    Arg.(value
         & opt (enum [ ("fast", `Fast); ("persistent", `Persistent) ]) `Fast
         & info [ "backend"; "b" ] ~docv:"BACKEND"
             ~doc:"Output format: fast (a checksummed snapshot for \
                   in-memory loading) or persistent (a paged, \
                   crash-consistent index file that `spine query \
                   --backend persistent -i` and `spine scrub` operate \
                   on).")
  in
  let run alphabet fasta synthetic scale text out backend stats =
    with_stats stats @@ fun () ->
    match Result.bind (alphabet_of_string alphabet) (fun alphabet ->
        load_sequence ~alphabet ~fasta ~synthetic ~scale ~text)
    with
    | Error e -> prerr_endline e; 1
    | Ok seq ->
      (match backend with
       | `Fast ->
         let idx, secs =
           Xutil.Stopwatch.time (fun () -> Spine.Index.of_seq seq)
         in
         Spine.Serialize.to_file out idx;
         Printf.printf "indexed %d chars in %.2fs -> %s\n"
           (Bioseq.Packed_seq.length seq) secs out;
         0
       | `Persistent ->
         let secs =
           Xutil.Stopwatch.time (fun () ->
               let p =
                 Spine.Persistent.create ~path:out
                   (Bioseq.Packed_seq.alphabet seq)
               in
               Spine.Persistent.append_seq p seq;
               Spine.Persistent.close p)
           |> snd
         in
         Printf.printf "indexed %d chars in %.2fs -> %s\n"
           (Bioseq.Packed_seq.length seq) secs out;
         0)
  in
  Cmd.v (Cmd.info "build" ~doc:"Build a SPINE index and save it.")
    Term.(const run $ alphabet_arg $ fasta_arg $ synthetic_arg $ scale_arg
          $ text_arg $ out $ backend $ stats_arg)

(* --- query --- *)

(* Every backend is driven through the same Engine code path: build (or
   open) the chosen backend, pack it, and resolve all patterns with one
   Engine.run_batch — a single shared backbone scan. *)

let backend_conv =
  Arg.enum
    [ ("fast", `Fast); ("compact", `Compact); ("persistent", `Persistent);
      ("disk", `Disk) ]

let backend_arg =
  Arg.(value & opt backend_conv `Fast
       & info [ "backend"; "b" ] ~docv:"BACKEND"
           ~doc:"Storage backend: fast (in-memory hashtable), compact \
                 (the paper's Section 5 packed layout), persistent \
                 (file-backed paged storage) or disk (packed layout \
                 through a bounded buffer pool over a simulated disk).")

let seq_literal_arg =
  Arg.(value & opt (some string) None
       & info [ "seq" ] ~docv:"STRING"
           ~doc:"Index this literal string (alternative to --fasta, \
                 --synthetic, --text).")

let seq_of_literal alphabet s =
  let seq = Bioseq.Packed_seq.create alphabet in
  String.iter
    (fun c ->
      match Bioseq.Alphabet.encode_opt alphabet c with
      | Some code -> Bioseq.Packed_seq.append seq code
      | None -> ())
    s;
  seq

(* Shared by query, stats --space and workload: build the chosen
   backend from an in-memory sequence and pack it into an engine,
   returning a cleanup to run when done (persistent uses a scratch
   file). *)
let engine_of_source ~backend ~frames ~page_size seq =
  match backend with
  | `Fast -> (Spine.Index.engine (Spine.Index.of_seq seq), ignore)
  | `Compact -> (Spine.Compact.engine (Spine.Compact.of_seq seq), ignore)
  | `Disk ->
    let config =
      { Spine.Disk.default_config with Spine.Disk.frames; page_size }
    in
    (Spine.Disk.engine (Spine.Disk.build ~config seq), ignore)
  | `Persistent ->
    (* a transient paged index in a scratch file, removed afterwards *)
    let path = Filename.temp_file "spine_query" ".db" in
    let p =
      Spine.Persistent.create ~frames ~page_size ~path
        (Bioseq.Packed_seq.alphabet seq)
    in
    Spine.Persistent.append_seq p seq;
    ( Spine.Persistent.engine p,
      fun () ->
        Spine.Persistent.close p;
        (try Sys.remove path with Sys_error _ -> ()) )

let frames_arg =
  Arg.(value & opt int Spine.Disk.default_config.Spine.Disk.frames
       & info [ "frames" ] ~docv:"N"
           ~doc:"Buffer-pool frames (persistent/disk backends).")

let page_size_arg =
  Arg.(value & opt int Spine.Disk.default_config.Spine.Disk.page_size
       & info [ "page-size" ] ~docv:"BYTES"
           ~doc:"Device page size (persistent/disk backends).")

let index_opt_arg =
  Arg.(value & opt (some string) None
       & info [ "index"; "i" ] ~docv:"FILE"
           ~doc:"Existing index file: a serialized index (backend fast) \
                 or a persistent index file (backend persistent). \
                 Alternative to the input sources.")

(* The full engine-acquisition story shared by query, stats --space,
   explain and replay: an existing index file (--index, fast or
   persistent) or any input source through [engine_of_source], with the
   incompatible combinations diagnosed. *)
let acquire_engine ~alphabet ~fasta ~synthetic ~scale ~text ~seq_str ~backend
    ~index ~frames ~page_size =
  let has_source =
    fasta <> None || synthetic <> None || text <> None || seq_str <> None
  in
  match index, has_source with
  | Some _, true ->
    Error "provide either --index or an input source, not both"
  | Some file, false ->
    (match backend with
     | `Fast -> Ok (Spine.Index.engine (Spine.Serialize.of_file file), ignore)
     | `Persistent ->
       (try
          let p = Spine.Persistent.open_ ~frames ~path:file () in
          Ok (Spine.Persistent.engine p,
              fun () -> Spine.Persistent.close p)
        with Spine_error.Error e -> Error (Spine_error.to_string e))
     | `Compact | `Disk ->
       Error "--backend compact/disk builds from an input source \
              (--text, --fasta, --synthetic, --seq), not --index")
  | None, _ ->
    Result.map
      (engine_of_source ~backend ~frames ~page_size)
      (Result.bind (alphabet_of_string alphabet) (fun alphabet ->
           match seq_str with
           | Some s -> Ok (seq_of_literal alphabet s)
           | None -> load_sequence ~alphabet ~fasta ~synthetic ~scale ~text))

let query_cmd =
  let patterns =
    Arg.(non_empty & pos_all string []
         & info [] ~docv:"PATTERN"
             ~doc:"Pattern(s) to search for; several patterns share one \
                   batched backbone scan.")
  in
  let index =
    Arg.(value & opt (some string) None
         & info [ "index"; "i" ] ~docv:"FILE"
             ~doc:"Existing index file: a serialized index (backend \
                   fast) or a persistent index file (backend \
                   persistent). Alternative to the input sources.")
  in
  let limit =
    Arg.(value & opt int 20
         & info [ "limit" ] ~docv:"N"
             ~doc:"Print at most N positions per pattern.")
  in
  let frames = frames_arg in
  let page_size = page_size_arg in
  let run alphabet fasta synthetic scale text seq_str backend index patterns
      limit frames page_size stats =
    with_stats stats @@ fun () ->
    match
      acquire_engine ~alphabet ~fasta ~synthetic ~scale ~text ~seq_str
        ~backend ~index ~frames ~page_size
    with
    | Error e -> prerr_endline e; 1
    | Ok (engine, cleanup) ->
      let finish code = cleanup (); code in
      let encoded =
        List.map (fun p -> (p, Spine.Engine.encode engine p)) patterns
      in
      if List.exists (fun (_, codes) -> codes = None) encoded then begin
        prerr_endline "pattern contains characters outside the alphabet";
        finish 1
      end
      else begin
        (* profile only when the qlog needs the costs: `spine explain`
           is the dedicated profiling surface, and an unconditional
           profile here would put wall-clock-dependent rollups into
           the deterministic --stats output *)
        let codes = List.filter_map (fun (_, codes) -> codes) encoded in
        let items =
          if Qlog.active () then begin
            let items, prof =
              Spine.Engine.profiled engine (fun () ->
                  Spine.Engine.run_batch engine codes)
            in
            let hits =
              List.fold_left
                (fun a it -> if it.Spine.Engine.count > 0 then a + 1 else a)
                0 items
            in
            let found =
              List.fold_left (fun a it -> a + it.Spine.Engine.count) 0 items
            in
            Qlog.emit ~op:"batch" ~backend:(Spine.Engine.backend engine)
              ~patterns ~hits ~found ~latency_ns:prof.Profile.wall_ns
              ~costs:prof;
            items
          end
          else Spine.Engine.run_batch engine codes
        in
        let many = List.length items > 1 in
        List.iter2
          (fun (pat, _) { Spine.Engine.count; positions; _ } ->
            if many then Printf.printf "%s: %d occurrence(s)\n" pat count
            else Printf.printf "%d occurrence(s)\n" count;
            List.iteri
              (fun k pos ->
                if k < limit then Printf.printf "  position %d\n" pos)
              positions;
            if count > limit then
              Printf.printf "  ... (%d more)\n" (count - limit))
          encoded items;
        finish 0
      end
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Find all occurrences of one or more patterns through any \
             storage backend (one batched backbone scan).")
    Term.(const run $ alphabet_arg $ fasta_arg $ synthetic_arg $ scale_arg
          $ text_arg $ seq_literal_arg $ backend_arg $ index $ patterns
          $ limit $ frames $ page_size $ stats_arg)

(* --- stats --- *)

let stats_cmd =
  let index =
    Arg.(value & opt (some string) None
         & info [ "index"; "i" ] ~docv:"FILE"
             ~doc:"Index file (serialized fast-backend snapshot). \
                   Required unless --space builds from an input source.")
  in
  let space =
    Arg.(value & flag
         & info [ "space" ]
             ~doc:"Report the measured space footprint attributed to \
                   components (vertebrae, links, ribs, extribs, pages, \
                   pool frames) instead of structure statistics; works \
                   on every --backend.")
  in
  let jsonl_out =
    Arg.(value & opt (some string) None
         & info [ "jsonl" ] ~docv:"FILE"
             ~doc:"With --space, also write the report as one JSON line \
                   (- for stdout).")
  in
  let space_run ~alphabet ~fasta ~synthetic ~scale ~text ~seq_str ~backend
      ~index ~jsonl_out ~frames ~page_size =
    match
      acquire_engine ~alphabet ~fasta ~synthetic ~scale ~text ~seq_str
        ~backend ~index ~frames ~page_size
    with
    | Error e -> prerr_endline e; 1
    | Ok (engine, cleanup) ->
      Fun.protect ~finally:cleanup (fun () ->
          let report = Spine.Engine.space engine in
          Report.Table.print
            ~title:
              (Printf.sprintf "space (%s, %d chars)"
                 report.Spine.Space_report.backend
                 report.Spine.Space_report.chars)
            ~note:
              (Printf.sprintf "index footprint %.2f bytes/char"
                 (Spine.Space_report.bytes_per_char report))
            ~headers:[ "component"; "bytes"; "bytes/char"; "share" ]
            (Spine.Space_report.rows report);
          (match jsonl_out with
           | Some "-" -> print_endline (Spine.Space_report.jsonl report)
           | Some path ->
             let oc = open_out path in
             output_string oc (Spine.Space_report.jsonl report ^ "\n");
             close_out oc
           | None -> ());
          0)
  in
  let structure_run index =
    let idx = Spine.Serialize.of_file index in
    let n = Spine.Index.length idx in
    let { Spine.Index.vertebras; ribs; extribs; links } =
      Spine.Index.edge_counts idx
    in
    let m = Spine.Index.label_maxima idx in
    Printf.printf "characters        %d\n" n;
    Printf.printf "nodes             %d\n" (Spine.Index.node_count idx);
    Printf.printf "vertebras         %d\n" vertebras;
    Printf.printf "ribs              %d\n" ribs;
    Printf.printf "extribs           %d\n" extribs;
    Printf.printf "links             %d\n" links;
    Printf.printf "max PT            %d\n" m.Spine.Index.max_pt;
    Printf.printf "max LEL           %d\n" m.Spine.Index.max_lel;
    Printf.printf "max PRT           %d\n" m.Spine.Index.max_prt;
    Printf.printf "model bytes/char  %.2f\n"
      (float_of_int (Spine.Index.model_bytes idx) /. float_of_int (max 1 n));
    0
  in
  let run alphabet fasta synthetic scale text seq_str backend index space
      jsonl_out frames page_size =
    if space then
      space_run ~alphabet ~fasta ~synthetic ~scale ~text ~seq_str ~backend
        ~index ~jsonl_out ~frames ~page_size
    else
      match index with
      | Some index -> structure_run index
      | None ->
        prerr_endline "provide --index FILE (or use --space with a source)";
        1
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Print structure statistics of an index, or (--space) its \
             measured per-component space footprint on any backend.")
    Term.(const run $ alphabet_arg $ fasta_arg $ synthetic_arg $ scale_arg
          $ text_arg $ seq_literal_arg $ backend_arg $ index $ space
          $ jsonl_out $ frames_arg $ page_size_arg)

(* --- workload --- *)

let workload_cmd =
  let requests =
    Arg.(value & opt int Workload.default_config.Workload.requests
         & info [ "requests"; "n" ] ~docv:"N" ~doc:"Number of requests.")
  in
  let seed =
    Arg.(value & opt int Workload.default_config.Workload.seed
         & info [ "seed" ] ~docv:"SEED" ~doc:"Workload generator seed.")
  in
  let min_len =
    Arg.(value & opt int Workload.default_config.Workload.min_len
         & info [ "min-len" ] ~docv:"N" ~doc:"Minimum pattern length.")
  in
  let max_len =
    Arg.(value & opt int Workload.default_config.Workload.max_len
         & info [ "max-len" ] ~docv:"N" ~doc:"Maximum pattern length.")
  in
  let batch_size =
    Arg.(value & opt int Workload.default_config.Workload.batch_size
         & info [ "batch-size" ] ~docv:"N" ~doc:"Patterns per batch request.")
  in
  let cursor_steps =
    Arg.(value & opt int Workload.default_config.Workload.cursor_steps
         & info [ "cursor-steps" ] ~docv:"N"
             ~doc:"Extensions per cursor request.")
  in
  let miss_fraction =
    Arg.(value & opt float Workload.default_config.Workload.miss_fraction
         & info [ "miss-fraction" ] ~docv:"P"
             ~doc:"Probability of a random (likely missing) pattern.")
  in
  let mix =
    Arg.(value & opt (t3 ~sep:',' int int int) (6, 2, 2)
         & info [ "mix" ] ~docv:"S,B,C"
             ~doc:"Relative weights of single,batch,cursor requests.")
  in
  let rate =
    Arg.(value & opt (some float) None
         & info [ "rate" ] ~docv:"RPS"
             ~doc:"Open-loop request rate (requests/second); latency is \
                   measured from each request's scheduled start.  \
                   Default: closed loop.")
  in
  let slowest =
    Arg.(value & opt int Workload.default_config.Workload.slowest
         & info [ "slowest" ] ~docv:"K"
             ~doc:"Report the K slowest requests from the trace slow-op \
                   log.")
  in
  let metrics =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"Write a full telemetry snapshot to FILE after the \
                   run (and periodically with --metrics-every).")
  in
  let metrics_format =
    Arg.(value & opt (enum [ ("prom", `Prom); ("jsonl", `Jsonl) ]) `Prom
         & info [ "metrics-format" ] ~docv:"FMT"
             ~doc:"Metrics exposition format: prom (Prometheus text) or \
                   jsonl.")
  in
  let metrics_every =
    Arg.(value & opt int 0
         & info [ "metrics-every" ] ~docv:"N"
             ~doc:"Rewrite the --metrics file every N completed requests \
                   (0: only at the end).")
  in
  let report_jsonl =
    Arg.(value & opt (some string) None
         & info [ "report-jsonl" ] ~docv:"FILE"
             ~doc:"Also write the per-operation latency report as JSON \
                   lines (- for stdout).")
  in
  let write_metrics path format =
    match format with
    | `Prom -> Telemetry.write_prometheus ~path (Telemetry.snapshot ())
    | `Jsonl -> Telemetry.write_jsonl ~path (Telemetry.snapshot ())
  in
  let run alphabet fasta synthetic scale text seq_str backend frames page_size
      requests seed min_len max_len batch_size cursor_steps miss_fraction
      (mix_s, mix_b, mix_c) rate slowest metrics metrics_format metrics_every
      report_jsonl =
    match
      Result.bind (alphabet_of_string alphabet) (fun alphabet ->
          match seq_str with
          | Some s -> Ok (seq_of_literal alphabet s)
          | None -> load_sequence ~alphabet ~fasta ~synthetic ~scale ~text)
    with
    | Error e -> prerr_endline e; 1
    | Ok seq ->
      let engine, cleanup = engine_of_source ~backend ~frames ~page_size seq in
      Fun.protect ~finally:cleanup (fun () ->
          let config =
            { Workload.requests; seed; min_len; max_len; batch_size;
              cursor_steps; miss_fraction;
              mix = { Workload.single = mix_s; batch = mix_b; cursor = mix_c };
              rate;
              slow_us = Workload.default_config.Workload.slow_us;
              slowest;
              tick_every = (if metrics = None then 0 else metrics_every) }
          in
          let on_tick =
            match metrics with
            | Some path when metrics_every > 0 ->
              Some (fun _done -> write_metrics path metrics_format)
            | _ -> None
          in
          (* an exposition sink was requested: collect for the whole
             command so the space gauges and the run's histograms land
             in the same snapshot *)
          if metrics <> None then Telemetry.set_enabled true;
          ignore (Spine.Engine.space engine);
          let report = Workload.run ~config ?on_tick engine seq in
          Workload.print report;
          (match metrics with
           | Some path -> write_metrics path metrics_format
           | None -> ());
          (match report_jsonl with
           | Some "-" -> List.iter print_endline (Workload.jsonl report)
           | Some path ->
             let oc = open_out path in
             List.iter (fun l -> output_string oc (l ^ "\n"))
               (Workload.jsonl report);
             close_out oc
           | None -> ());
          0)
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:"Drive a backend with a deterministic mix of single, \
             batched and cursor queries; report per-operation latency \
             quantiles, the slowest requests, and optionally a metrics \
             snapshot (Prometheus text or JSONL).")
    Term.(const run $ alphabet_arg $ fasta_arg $ synthetic_arg $ scale_arg
          $ text_arg $ seq_literal_arg $ backend_arg $ frames_arg
          $ page_size_arg $ requests $ seed $ min_len $ max_len $ batch_size
          $ cursor_steps $ miss_fraction $ mix $ rate $ slowest $ metrics
          $ metrics_format $ metrics_every $ report_jsonl)

(* --- explain --- *)

let qlog_json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let explain_cmd =
  let patterns =
    Arg.(non_empty & pos_all string []
         & info [] ~docv:"PATTERN"
             ~doc:"Pattern(s) to profile; each runs as its own \
                   individually-attributed query.")
  in
  let jsonl_out =
    Arg.(value & opt (some string) None
         & info [ "jsonl" ] ~docv:"FILE"
             ~doc:"Also write one JSON line per pattern with every \
                   profile field (- for stdout).")
  in
  let run alphabet fasta synthetic scale text seq_str backend index patterns
      jsonl_out frames page_size stats =
    with_stats stats @@ fun () ->
    match
      acquire_engine ~alphabet ~fasta ~synthetic ~scale ~text ~seq_str
        ~backend ~index ~frames ~page_size
    with
    | Error e -> prerr_endline e; 1
    | Ok (engine, cleanup) ->
      Fun.protect ~finally:cleanup (fun () ->
          let backend_name = Spine.Engine.backend engine in
          let bad = ref false in
          let results =
            List.filter_map
              (fun pat ->
                match Spine.Engine.encode engine pat with
                | None ->
                  Printf.eprintf "pattern %S is outside the alphabet\n" pat;
                  bad := true;
                  None
                | Some codes ->
                  let occs, prof =
                    Spine.Engine.profiled engine (fun () ->
                        Spine.Engine.occurrences engine codes)
                  in
                  let count = List.length occs in
                  if Qlog.active () then
                    Qlog.emit ~op:"single" ~backend:backend_name
                      ~patterns:[ pat ]
                      ~hits:(if count > 0 then 1 else 0)
                      ~found:count ~latency_ns:prof.Profile.wall_ns
                      ~costs:prof;
                  Some (pat, count, prof))
              patterns
          in
          Report.Table.print
            ~title:(Printf.sprintf "explain (%s)" backend_name)
            ~headers:
              [ "pattern"; "occ"; "steps v/r/e/l"; "descent"; "scan";
                "pool h/m/e"; "dev r/w B"; "alloc B"; "wall ms" ]
            (List.map
               (fun (pat, count, p) ->
                 [ pat; string_of_int count;
                   Printf.sprintf "%d/%d/%d/%d" p.Profile.vertebra_steps
                     p.Profile.rib_steps p.Profile.extrib_steps
                     p.Profile.link_steps;
                   string_of_int p.Profile.descent_depth;
                   string_of_int p.Profile.scan_nodes;
                   Printf.sprintf "%d/%d/%d" p.Profile.pool_hits
                     p.Profile.pool_misses p.Profile.pool_evictions;
                   Printf.sprintf "%d/%d" p.Profile.device_read_bytes
                     p.Profile.device_write_bytes;
                   string_of_int p.Profile.alloc_bytes;
                   Printf.sprintf "%.3f"
                     (float_of_int p.Profile.wall_ns /. 1e6) ])
               results);
          let jsonl_lines () =
            List.map
              (fun (pat, count, p) ->
                Printf.sprintf
                  "{\"explain\":\"%s\",\"backend\":\"%s\",\
                   \"occurrences\":%d,%s}"
                  (qlog_json_escape pat) (qlog_json_escape backend_name)
                  count
                  (String.concat ","
                     (List.map
                        (fun (k, v) -> Printf.sprintf "\"%s\":%d" k v)
                        (Profile.fields p))))
              results
          in
          (match jsonl_out with
           | Some "-" -> List.iter print_endline (jsonl_lines ())
           | Some path ->
             let oc = open_out path in
             List.iter (fun l -> output_string oc (l ^ "\n")) (jsonl_lines ());
             close_out oc
           | None -> ());
          if !bad then 1 else 0)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Run pattern queries with per-query cost attribution: \
             traversal steps by edge family, descent depth, \
             occurrence-scan length, buffer-pool and device traffic \
             caused by each individual query, allocation and wall \
             time.")
    Term.(const run $ alphabet_arg $ fasta_arg $ synthetic_arg $ scale_arg
          $ text_arg $ seq_literal_arg $ backend_arg $ index_opt_arg $ patterns
          $ jsonl_out $ frames_arg $ page_size_arg $ stats_arg)

(* --- replay --- *)

let replay_cmd =
  let log =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"LOG" ~doc:"Recorded query log (qlog JSONL).")
  in
  let closed_loop =
    Arg.(value & flag
         & info [ "closed-loop" ]
             ~doc:"Issue requests back-to-back instead of honoring the \
                   recorded inter-arrival gaps.")
  in
  let tolerance =
    Arg.(value & opt float 0.25
         & info [ "tolerance" ] ~docv:"FRACTION"
             ~doc:"Relative drift allowed before a latency quantile or \
                   cost counter counts as regressed.")
  in
  let latency_floor =
    Arg.(value & opt float 1e6
         & info [ "latency-floor-ns" ] ~docv:"NS"
             ~doc:"Noise floor for latency comparisons: when both sides \
                   are at or below this, the delta is timer noise and \
                   never fails the gate.")
  in
  let report_jsonl =
    Arg.(value & opt (some string) None
         & info [ "report-jsonl" ] ~docv:"FILE"
             ~doc:"Also write the replayed report and every comparison \
                   row as JSON lines (- for stdout).")
  in
  let run alphabet fasta synthetic scale text seq_str backend index frames
      page_size log closed_loop tolerance latency_floor report_jsonl =
    (* replay must never append to the log it is reading *)
    Qlog.set_path None;
    match Qlog.read_file ~path:log with
    | Error e -> Printf.eprintf "replay: %s: %s\n" log e; 2
    | Ok [] -> Printf.eprintf "replay: %s: empty log\n" log; 2
    | Ok records ->
      (match
         acquire_engine ~alphabet ~fasta ~synthetic ~scale ~text ~seq_str
           ~backend ~index ~frames ~page_size
       with
       | Error e -> prerr_endline e; 2
       | Ok (engine, cleanup) ->
         Fun.protect ~finally:cleanup (fun () ->
             let backend_name = Spine.Engine.backend engine in
             (match
                List.find_opt
                  (fun (r : Qlog.record) -> r.Qlog.q_backend <> backend_name)
                  records
              with
              | Some r ->
                Printf.eprintf
                  "replay: warning: log was recorded on backend %s, \
                   replaying on %s\n"
                  r.Qlog.q_backend backend_name
              | None -> ());
             match
               Replay.drive_records ~closed_loop ~tolerance
                 ~latency_floor_ns:latency_floor ~engine records
             with
             | Error e -> Printf.eprintf "replay: %s\n" e; 2
             | Ok outcome ->
               Replay.print outcome;
               (match report_jsonl with
                | Some "-" -> List.iter print_endline (Replay.jsonl outcome)
                | Some path ->
                  let oc = open_out path in
                  List.iter (fun l -> output_string oc (l ^ "\n"))
                    (Replay.jsonl outcome);
                  close_out oc
                | None -> ());
               (match Bench_gate.failures outcome.Replay.rp_comparisons with
                | [] ->
                  Printf.printf
                    "replay: ok (%d request(s), %d comparison(s))\n"
                    outcome.Replay.rp_requests
                    (List.length outcome.Replay.rp_comparisons);
                  0
                | failures ->
                  Printf.printf "replay: %d failure(s)\n"
                    (List.length failures);
                  List.iter
                    (fun c ->
                      Printf.printf "  %s/%s: %s\n" c.Bench_gate.c_group
                        c.Bench_gate.c_name
                        (Bench_gate.verdict_string c.Bench_gate.c_verdict))
                    failures;
                  1)))
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Re-drive a recorded query log against a backend and gate \
             on the recorded-vs-replayed delta: per-op latency \
             quantiles (noise-floored) and deterministic cost \
             counters.  Exit 0 on pass, 1 on regression, 2 on a \
             malformed log.")
    Term.(const run $ alphabet_arg $ fasta_arg $ synthetic_arg $ scale_arg
          $ text_arg $ seq_literal_arg $ backend_arg $ index_opt_arg $ frames_arg
          $ page_size_arg $ log $ closed_loop $ tolerance $ latency_floor
          $ report_jsonl)

(* --- bench-compare --- *)

let bench_compare_cmd =
  let old_path =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"OLD" ~doc:"Baseline BENCH_spine.json.")
  in
  let new_path =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"NEW" ~doc:"Candidate BENCH_spine.json.")
  in
  let tolerance =
    Arg.(value & opt float 0.25
         & info [ "tolerance" ] ~docv:"FRACTION"
             ~doc:"Relative slowdown allowed before a benchmark counts \
                   as regressed (0.25 = 25% slower).")
  in
  let floors =
    Arg.(value & opt_all (pair ~sep:'=' string float) []
         & info [ "floor" ] ~docv:"UNIT=VALUE"
             ~doc:"Noise floor for a unit (repeatable), e.g. \
                   wall_s=0.01: when both sides of a comparison are at \
                   or below the floor, the ratio is timer noise and \
                   never counts as a regression.")
  in
  let run old_path new_path tolerance floors =
    match Bench_gate.load ~path:old_path, Bench_gate.load ~path:new_path with
    | Error e, _ ->
      Printf.eprintf "bench-compare: %s: %s\n" old_path e; 2
    | _, Error e ->
      Printf.eprintf "bench-compare: %s: %s\n" new_path e; 2
    | Ok old_b, Ok new_b ->
      let comparisons =
        Bench_gate.compare_baselines ~floors ~tolerance old_b new_b
      in
      Report.Table.print
        ~title:
          (Printf.sprintf "bench trajectory (tolerance %.0f%%)"
             (100.0 *. tolerance))
        ~headers:[ "group"; "name"; "unit"; "old"; "new"; "ratio"; "verdict" ]
        (Bench_gate.rows comparisons);
      (match Bench_gate.failures comparisons with
       | [] ->
         Printf.printf "bench-compare: ok (%d benchmark(s))\n"
           (List.length comparisons);
         0
       | failures ->
         Printf.printf "bench-compare: %d failure(s)\n"
           (List.length failures);
         List.iter
           (fun c ->
             Printf.printf "  %s/%s: %s\n" c.Bench_gate.c_group
               c.Bench_gate.c_name
               (Bench_gate.verdict_string c.Bench_gate.c_verdict))
           failures;
         1)
  in
  Cmd.v
    (Cmd.info "bench-compare"
       ~doc:"Compare two bench trajectory artifacts; exit 1 when any \
             benchmark regressed beyond the tolerance or disappeared, \
             2 when an artifact cannot be parsed.")
    Term.(const run $ old_path $ new_path $ tolerance $ floors)

(* --- match --- *)

let match_cmd =
  let query_file =
    Arg.(required & opt (some string) None
         & info [ "query"; "q" ] ~docv:"FILE" ~doc:"Query FASTA file.")
  in
  let threshold =
    Arg.(value & opt int 20
         & info [ "threshold" ] ~docv:"LEN" ~doc:"Minimum match length.")
  in
  let run index query_file threshold stats =
    with_stats stats @@ fun () ->
    let idx = Spine.Serialize.of_file index in
    let alphabet = Spine.Index.alphabet idx in
    match Bioseq.Fasta.read_file alphabet query_file with
    | [] -> prerr_endline "query FASTA contains no records"; 1
    | { Bioseq.Fasta.seq = query; _ } :: _ ->
      let matches, stats =
        Spine.Index.maximal_matches idx ~threshold query
      in
      Printf.printf
        "%d maximal match(es) >= %d chars (checked %d nodes, %d suffix sets)\n"
        (List.length matches) threshold stats.Spine.Index.nodes_checked
        stats.Spine.Index.suffixes_checked;
      List.iter
        (fun { Spine.Index.query_end; length; data_ends } ->
          Printf.printf "  query %d..%d  data:"
            (query_end - length + 1) query_end;
          List.iter
            (fun e -> Printf.printf " %d..%d" (e - length + 1) e)
            data_ends;
          print_newline ())
        matches;
      0
  in
  Cmd.v
    (Cmd.info "match"
       ~doc:"Find maximal matching substrings between index and query.")
    Term.(const run $ index_arg ~doc:"Index file." $ query_file $ threshold
          $ stats_arg)

(* --- approx --- *)

let approx_cmd =
  let pattern =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"PATTERN" ~doc:"Pattern to search for.")
  in
  let errors =
    Arg.(value & opt int 1
         & info [ "errors"; "k" ] ~docv:"K" ~doc:"Error budget.")
  in
  let edit_flag =
    Arg.(value & flag
         & info [ "edit" ]
             ~doc:"Use edit distance (insertions/deletions/substitutions)                    instead of mismatches only.")
  in
  let limit =
    Arg.(value & opt int 20
         & info [ "limit" ] ~docv:"N" ~doc:"Print at most N hits.")
  in
  let run index pattern errors edit_flag limit =
    let idx = Spine.Serialize.of_file index in
    let alphabet = Spine.Index.alphabet idx in
    match
      Array.init (String.length pattern)
        (fun i -> Bioseq.Alphabet.encode alphabet pattern.[i])
    with
    | exception Invalid_argument _ ->
      prerr_endline "pattern contains characters outside the alphabet"; 1
    | codes ->
      let hits =
        if edit_flag then Align.Approx.edit idx ~pattern:codes ~k:errors
        else Align.Approx.hamming idx ~pattern:codes ~k:errors
      in
      Printf.printf "%d hit(s) within %d %s
" (List.length hits) errors
        (if edit_flag then "edit(s)" else "mismatch(es)");
      List.iteri
        (fun i { Align.Approx.pos; errors; match_len } ->
          if i < limit then
            Printf.printf "  position %d (%d error(s), %d chars)
"
              pos errors match_len)
        hits;
      0
  in
  Cmd.v
    (Cmd.info "approx"
       ~doc:"Approximate (k-mismatch / k-edit) pattern search.")
    Term.(const run $ index_arg ~doc:"Index file." $ pattern $ errors
          $ edit_flag $ limit)

(* --- align --- *)

let align_cmd =
  let reference =
    Arg.(required & opt (some string) None
         & info [ "reference"; "r" ] ~docv:"FILE"
             ~doc:"Reference FASTA file.")
  in
  let query_file =
    Arg.(required & opt (some string) None
         & info [ "query"; "q" ] ~docv:"FILE" ~doc:"Query FASTA file.")
  in
  let threshold =
    Arg.(value & opt int 20
         & info [ "threshold" ] ~docv:"LEN" ~doc:"Minimum anchor length.")
  in
  let alphabet_arg' = alphabet_arg in
  let run alphabet reference query_file threshold =
    match alphabet_of_string alphabet with
    | Error e -> prerr_endline e; 1
    | Ok alphabet ->
      (match Bioseq.Fasta.read_file alphabet reference,
             Bioseq.Fasta.read_file alphabet query_file with
       | [], _ | _, [] -> prerr_endline "empty FASTA input"; 1
       | { Bioseq.Fasta.seq = r; _ } :: _, { Bioseq.Fasta.seq = q; _ } :: _ ->
         let chained, summary = Align.align ~threshold r q in
         Printf.printf
           "anchors %d  unique %d  chained %d  bases %d  coverage %.1f%%
"
           summary.Align.anchors summary.Align.unique summary.Align.chained
           summary.Align.chained_bases (100.0 *. summary.Align.coverage);
         List.iteri
           (fun i { Align.ref_pos; query_pos; len } ->
             if i < 25 then
               Printf.printf "  ref %d..%d = query %d..%d (%d)
" ref_pos
                 (ref_pos + len - 1) query_pos (query_pos + len - 1) len)
           chained;
         if List.length chained > 25 then
           Printf.printf "  ... (%d more segments)
"
             (List.length chained - 25);
         0)
  in
  Cmd.v
    (Cmd.info "align"
       ~doc:"MUM-anchor alignment skeleton between two FASTA sequences.")
    Term.(const run $ alphabet_arg' $ reference $ query_file $ threshold)

(* --- trace --- *)

let trace_cmd =
  let seq_str =
    Arg.(value & opt (some string) None
         & info [ "seq" ] ~docv:"STRING"
             ~doc:"Index this literal string (alternative to --fasta, \
                   --synthetic, --text).")
  in
  let queries =
    Arg.(value & opt_all string []
         & info [ "query"; "q" ] ~docv:"PATTERN"
             ~doc:"Pattern to search after building (repeatable); each \
                   query is traced as its own operation.")
  in
  let disk =
    Arg.(value & flag
         & info [ "disk" ]
             ~doc:"Build and query through the simulated disk stack so \
                   the trace includes page faults, evictions and device \
                   transfers.")
  in
  let out =
    Arg.(value & opt string "spine_trace.json"
         & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Trace output file.")
  in
  let format =
    Arg.(value
         & opt (enum [ ("chrome", `Chrome); ("jsonl", `Jsonl) ]) `Chrome
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Trace format: chrome (trace-event JSON for Perfetto / \
                   chrome://tracing) or jsonl.")
  in
  let sample =
    Arg.(value & opt (some float) None
         & info [ "sample" ] ~docv:"RATE"
             ~doc:"Per-operation sampling probability in [0,1] \
                   (overrides SPINE_TRACE_SAMPLE).")
  in
  let slow_us =
    Arg.(value & opt (some int) None
         & info [ "slow-us" ] ~docv:"US"
             ~doc:"Slow-operation threshold in microseconds (overrides \
                   SPINE_TRACE_SLOW_US).")
  in
  let capacity =
    Arg.(value & opt (some int) None
         & info [ "capacity" ] ~docv:"N"
             ~doc:"Event ring capacity (overrides SPINE_TRACE_CAPACITY).")
  in
  let frames =
    Arg.(value & opt int Spine.Disk.default_config.Spine.Disk.frames
         & info [ "frames" ] ~docv:"N"
             ~doc:"Buffer-pool frames for --disk; small values make \
                   query-time page faults visible in the trace.")
  in
  let page_size =
    Arg.(value & opt int Spine.Disk.default_config.Spine.Disk.page_size
         & info [ "page-size" ] ~docv:"BYTES"
             ~doc:"Device page size for --disk.")
  in
  let encode_pattern alphabet pattern =
    match
      Array.init (String.length pattern)
        (fun i -> Bioseq.Alphabet.encode alphabet pattern.[i])
    with
    | codes -> Some codes
    | exception Invalid_argument _ -> None
  in
  let run alphabet fasta synthetic scale text seq_str queries disk out format
      sample slow_us capacity frames page_size =
    match
      Result.bind (alphabet_of_string alphabet) (fun alphabet ->
          match seq_str with
          | Some s ->
            let seq = Bioseq.Packed_seq.create alphabet in
            String.iter
              (fun c ->
                match Bioseq.Alphabet.encode_opt alphabet c with
                | Some code -> Bioseq.Packed_seq.append seq code
                | None -> ())
              s;
            Ok seq
          | None -> load_sequence ~alphabet ~fasta ~synthetic ~scale ~text)
    with
    | Error e -> prerr_endline e; 1
    | Ok seq ->
      Trace.set_enabled true;
      Option.iter Trace.set_sample_rate sample;
      Option.iter Trace.set_slow_us slow_us;
      Option.iter Trace.set_capacity capacity;
      Trace.reset ();
      let alphabet = Bioseq.Packed_seq.alphabet seq in
      let occurrences_of =
        if disk then begin
          let config =
            { Spine.Disk.default_config with
              Spine.Disk.frames; page_size }
          in
          let d =
            Trace.with_op "build"
              [ Trace.Int ("length", Bioseq.Packed_seq.length seq) ]
              (fun () -> Spine.Disk.build ~config seq)
          in
          fun codes -> Spine.Compact.occurrences d.Spine.Disk.index codes
        end
        else begin
          let idx =
            Trace.with_op "build"
              [ Trace.Int ("length", Bioseq.Packed_seq.length seq) ]
              (fun () -> Spine.Index.of_seq seq)
          in
          fun codes -> Spine.Index.occurrences idx codes
        end
      in
      let bad = ref false in
      List.iter
        (fun pattern ->
          match encode_pattern alphabet pattern with
          | None ->
            Printf.eprintf "pattern %S is outside the alphabet\n" pattern;
            bad := true
          | Some codes ->
            let occs =
              Trace.with_op "query" [ Trace.Str ("pattern", pattern) ]
                (fun () -> occurrences_of codes)
            in
            Printf.printf "query %s: %d occurrence(s)\n" pattern
              (List.length occs))
        queries;
      (match format with
       | `Chrome -> Trace.write_chrome ~path:out
       | `Jsonl -> Trace.write_jsonl ~path:out);
      Printf.printf "trace: %d event(s), %d dropped -> %s\n"
        (List.length (Trace.events ())) (Trace.dropped ()) out;
      (match Trace.slow_rows () with
       | [] -> ()
       | rows ->
         Report.Table.print ~title:"slow operations"
           ~headers:[ "op"; "name"; "ms"; "sampled"; "args" ] rows);
      if !bad then 1 else 0
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Build (and optionally query) under per-operation event \
             tracing and export the trace.")
    Term.(const run $ alphabet_arg $ fasta_arg $ synthetic_arg $ scale_arg
          $ text_arg $ seq_str $ queries $ disk $ out $ format $ sample
          $ slow_us $ capacity $ frames $ page_size)

(* --- scrub --- *)

let scrub_cmd =
  let module P = Spine.Persistent in
  let page_size =
    Arg.(value & opt int Spine.Disk.default_config.Spine.Disk.page_size
         & info [ "page-size" ] ~docv:"BYTES"
             ~doc:"Device page size the index was built with.")
  in
  let deep =
    Arg.(value & flag
         & info [ "deep" ]
             ~doc:"After the checksum walk, open the index, rebuild an \
                   in-memory oracle from the recovered sequence and \
                   cross-check the paged structure against it (touches \
                   every Link-Table and Rib-Table page). Opening \
                   commits a fresh metadata generation on close, so \
                   this also repairs a torn metadata slot.")
  in
  let jsonl_out =
    Arg.(value & opt (some string) None
         & info [ "jsonl" ] ~docv:"FILE"
             ~doc:"Also write the per-region report as JSON lines.")
  in
  let json_escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  in
  let write_jsonl path (r : P.report) =
    let oc = open_out path in
    let pages field =
      String.concat ","
        (List.map
           (fun (page, detail) ->
             Printf.sprintf "{\"page\":%d,\"detail\":\"%s\"}" page
               (json_escape detail))
           field)
    in
    Printf.fprintf oc
      "{\"path\":\"%s\",\"generation\":%d,\"commit_epoch\":%d,\
       \"clean\":%b,\"damaged_pages\":%d,\"stale_pages\":%d}\n"
      (json_escape r.P.report_path) r.P.report_generation
      r.P.report_commit_epoch r.P.report_clean r.P.damaged_pages
      r.P.stale_pages;
    List.iter
      (fun (slot, state) ->
        match state with
        | P.Slot_valid { generation; commit_epoch; clean } ->
          Printf.fprintf oc
            "{\"slot\":%d,\"valid\":true,\"generation\":%d,\
             \"commit_epoch\":%d,\"clean\":%b}\n"
            slot generation commit_epoch clean
        | P.Slot_invalid why ->
          Printf.fprintf oc "{\"slot\":%d,\"valid\":false,\"why\":\"%s\"}\n"
            slot (json_escape why))
      r.P.slots;
    List.iter
      (fun reg ->
        Printf.fprintf oc
          "{\"region\":\"%s\",\"scanned\":%d,\"ok\":%d,\"unwritten\":%d,\
           \"damaged\":[%s],\"stale\":[%s]}\n"
          (json_escape reg.P.region) reg.P.scanned reg.P.ok reg.P.unwritten
          (pages reg.P.damaged)
          (pages
             (List.map
                (fun (page, epoch) -> (page, Printf.sprintf "epoch %d" epoch))
                reg.P.stale)))
      r.P.regions;
    close_out oc
  in
  let deep_check path frames =
    match P.open_ ~frames ~path () with
    | exception Spine_error.Error e ->
      Printf.printf "deep: open failed: %s\n" (Spine_error.to_string e);
      1
    | p ->
      Fun.protect
        ~finally:(fun () -> try P.close p with Spine_error.Error _ -> ())
        (fun () ->
          try
            let seq = P.sequence p in
            let oracle = Spine.Index.of_seq seq in
            Spine.Validate.check_exn oracle;
            let n = P.length p in
            if Spine.Index.length oracle <> n then begin
              Printf.printf "deep: length mismatch (oracle %d, paged %d)\n"
                (Spine.Index.length oracle) n;
              1
            end
            else if
              P.rib_distribution p <> Spine.Index.rib_distribution oracle
            then begin
              print_endline
                "deep: rib distribution diverges from the oracle";
              1
            end
            else begin
              (* sampled query parity over the real sequence *)
              let rng = Bioseq.Rng.create 7 in
              let bad = ref 0 in
              let probes = if n >= 4 then 64 else 0 in
              for _ = 1 to probes do
                let len = 2 + Bioseq.Rng.int rng (min 10 (n - 1)) in
                let pos = Bioseq.Rng.int rng (n - len) in
                let pat =
                  Array.init len (fun k -> Bioseq.Packed_seq.get seq (pos + k))
                in
                if
                  P.occurrences p pat <> Spine.Index.occurrences oracle pat
                then incr bad
              done;
              if !bad > 0 then begin
                Printf.printf "deep: %d/%d probe queries diverge\n" !bad
                  probes;
                1
              end
              else begin
                Printf.printf
                  "deep: structure consistent with the oracle (%d probes)\n"
                  probes;
                0
              end
            end
          with Spine_error.Error e ->
            Printf.printf "deep: %s\n" (Spine_error.to_string e);
            1)
  in
  let run index page_size deep jsonl_out frames =
    match P.scrub ~page_size ~path:index () with
    | exception Spine_error.Error e ->
      prerr_endline (Spine_error.to_string e);
      2
    | r ->
      if r.P.report_generation < 0 then
        Printf.printf "scrub %s: no recoverable metadata\n" index
      else
        Printf.printf "scrub %s: generation %d, commit epoch %d (%s)\n"
          index r.P.report_generation r.P.report_commit_epoch
          (if r.P.report_clean then "clean shutdown" else "crash-recoverable");
      List.iter
        (fun (slot, state) ->
          let name = if slot = 0 then "A" else "B" in
          match state with
          | P.Slot_valid { generation; commit_epoch; clean } ->
            Printf.printf "  slot %s: generation %d, commit epoch %d%s\n"
              name generation commit_epoch
              (if clean then ", clean" else "")
          | P.Slot_invalid why -> Printf.printf "  slot %s: %s\n" name why)
        r.P.slots;
      Report.Table.print ~title:"page regions"
        ~headers:[ "region"; "scanned"; "ok"; "unwritten"; "damaged"; "stale" ]
        (List.map
           (fun reg ->
             [ reg.P.region; string_of_int reg.P.scanned;
               string_of_int reg.P.ok; string_of_int reg.P.unwritten;
               string_of_int (List.length reg.P.damaged);
               string_of_int (List.length reg.P.stale) ])
           r.P.regions);
      List.iter
        (fun reg ->
          List.iter
            (fun (page, detail) ->
              Printf.printf "  damaged %s page %d: %s\n" reg.P.region page
                detail)
            reg.P.damaged;
          List.iter
            (fun (page, epoch) ->
              Printf.printf
                "  stale %s page %d: epoch %d beyond the committed ceiling\n"
                reg.P.region page epoch)
            reg.P.stale)
        r.P.regions;
      Option.iter (fun path -> write_jsonl path r) jsonl_out;
      let deep_rc =
        if deep && r.P.report_generation >= 0 then deep_check index frames
        else 0
      in
      if r.P.damaged_pages + r.P.stale_pages > 0 || r.P.report_generation < 0
      then begin
        Printf.printf "scrub: %d damaged, %d stale page(s)\n"
          r.P.damaged_pages r.P.stale_pages;
        1
      end
      else begin
        print_endline "scrub: clean";
        deep_rc
      end
  in
  let frames =
    Arg.(value & opt int Spine.Disk.default_config.Spine.Disk.frames
         & info [ "frames" ] ~docv:"N"
             ~doc:"Buffer-pool frames for the --deep open.")
  in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:"Walk every page of a persistent index file, validate \
             checksums, epochs and metadata slots, and report damage \
             per region.")
    Term.(const run $ index_arg ~doc:"Persistent index file."
          $ page_size $ deep $ jsonl_out $ frames)

(* --- scenario --- *)

let scenario_run_cmd =
  let file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"Scenario file (JSONL stage list).")
  in
  let seed =
    Arg.(value & opt (some int) None
         & info [ "seed" ] ~docv:"N"
             ~doc:"Override the scenario's seed: the same stages and \
                   expectations against a different deterministic storm.")
  in
  let report_jsonl =
    Arg.(value & opt (some string) None
         & info [ "jsonl" ] ~docv:"FILE"
             ~doc:"Also write the run summary and every expectation \
                   result as JSON lines (- for stdout).")
  in
  let dir =
    Arg.(value & opt (some string) None
         & info [ "dir" ] ~docv:"DIR"
             ~doc:"Scratch directory for the scenario's index (kept \
                   afterwards); default is a removed temp directory.")
  in
  let run file seed report_jsonl dir =
    match Scenario.load ~path:file with
    | Error e -> Printf.eprintf "scenario: %s: %s\n" file e; 2
    | Ok sc ->
      (match Scenario.run ?seed ?dir sc with
       | Error e -> Printf.eprintf "scenario: %s: %s\n" sc.Scenario.sc_name e; 2
       | Ok result ->
         Scenario.print result;
         (match report_jsonl with
          | Some "-" -> List.iter print_endline (Scenario.jsonl result)
          | Some path ->
            let oc = open_out path in
            List.iter (fun l -> output_string oc (l ^ "\n"))
              (Scenario.jsonl result);
            close_out oc
          | None -> ());
         if Scenario.passed result then begin
           Printf.printf "scenario: %s: ok (%d expectation(s))\n"
             result.Scenario.r_name
             (List.length result.Scenario.r_checks);
           0
         end
         else begin
           let failed =
             List.filter
               (fun c -> not c.Scenario.c_pass)
               result.Scenario.r_checks
           in
           Printf.printf "scenario: %s: %d expectation(s) failed\n"
             result.Scenario.r_name (List.length failed);
           List.iter
             (fun c ->
               Printf.printf "  %s: %s\n" c.Scenario.c_name
                 c.Scenario.c_detail)
             failed;
           1
         end)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Execute a chaos scenario: composed fault/latency/load \
             stages with kill -9 crash points, then gate on its named \
             expectations (query parity, scrub, p99 bounds, replay, \
             breaker state, counter reconciliation).  Exit 0 on pass, \
             1 naming each failed expectation, 2 on a malformed \
             scenario.")
    Term.(const run $ file $ seed $ report_jsonl $ dir)

let scenario_cmd =
  Cmd.group
    (Cmd.info "scenario"
       ~doc:"Deterministic chaos scenarios (fault/latency/load \
             composition with expectations).")
    [ scenario_run_cmd ]

let main_cmd =
  let doc = "SPINE string index (ICDE 2004 reproduction)" in
  Cmd.group (Cmd.info "spine" ~doc)
    [ build_cmd; query_cmd; stats_cmd; workload_cmd; explain_cmd;
      replay_cmd; bench_compare_cmd; match_cmd; approx_cmd; align_cmd;
      trace_cmd; scrub_cmd; scenario_cmd ]

(* Typed storage errors can surface lazily (a damaged page is only read
   mid-query); render them as a diagnosis, not an "internal error". *)
let () =
  try exit (Cmd.eval' ~catch:false main_cmd)
  with Spine_error.Error e ->
    Printf.eprintf "spine: %s\n" (Spine_error.to_string e);
    exit 1
