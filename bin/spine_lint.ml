(* spine-lint entry point: scan the .cmt files under a build dir and
   report rule violations.  Exit 0 when clean, 1 on unsuppressed
   findings (or, with --domains, an UNSAFE certification verdict),
   2 on environmental failure (no build dir / no cmts). *)

open Cmdliner

let print_table ~header rows =
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w c -> max w (String.length c)) acc row)
      (List.map String.length header)
      rows
  in
  let pad w s = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let line row =
    Report.Say.line
      (String.concat "  " (List.map2 pad widths row) |> String.trim
      |> fun s -> "  " ^ s)
  in
  line header;
  List.iter line rows

let print_findings findings =
  print_table
    ~header:[ "RULE"; "SEVERITY"; "WHERE"; "MESSAGE" ]
    (Lint.table_rows findings)

let write_lines path lines =
  Out_channel.with_open_text path (fun oc ->
      List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) lines)

let run_lint build_dir source_root all_paths format errors_only demote
    only except domains out show_suppressed =
  let demote =
    if errors_only then
      List.filter
        (fun r -> Lint.default_severity r = Lint.Warning)
        Lint.all_rules
    else List.filter_map Lint.rule_of_id demote
  in
  let parse_rules what ids =
    List.filter_map
      (fun id ->
        match Lint.rule_of_id id with
        | Some r -> Some r
        | None ->
          Printf.eprintf "spine-lint: unknown rule %S in --%s (ignored)\n"
            id what;
          None)
      ids
  in
  let only_ids = only in
  let only = parse_rules "only" only in
  let except = parse_rules "except" except in
  if only_ids <> [] && only = [] then begin
    (* every id was unknown: running all rules here would silently
       invert the request *)
    prerr_endline "spine-lint: --only matched no known rules";
    2
  end
  else
  match
    Lint.run ~all_paths ~demote ~only ~except ~domains ~build_dir
      ~source_root ()
  with
  | Error msg ->
    prerr_endline ("spine-lint: " ^ msg);
    2
  | Ok res ->
    let blocking =
      if errors_only then
        List.filter (fun f -> f.Lint.severity = Lint.Error) res.findings
      else res.Lint.findings
    in
    let unsafe_modules =
      List.filter
        (fun (r : Lint.Domain_safety.cert_row) -> r.Lint.Domain_safety.cm_verdict = "UNSAFE")
        res.Lint.certification
    in
    (match format with
    | "jsonl" ->
      List.iter Report.Say.line (Lint.jsonl res.Lint.findings);
      if domains then
        List.iter Report.Say.line (Lint.cert_jsonl res.Lint.certification)
    | _ ->
      if res.Lint.findings = [] then
        Report.Say.printf "spine-lint: %d files scanned, no findings%s\n"
          res.Lint.files_scanned
          (match List.length res.Lint.suppressed with
          | 0 -> ""
          | n -> Printf.sprintf " (%d suppressed)" n)
      else begin
        print_findings res.Lint.findings;
        Report.Say.printf "spine-lint: %d finding(s) in %d files scanned\n"
          (List.length res.Lint.findings)
          res.Lint.files_scanned
      end;
      if domains then begin
        Report.Say.line "domain-safety certification:";
        print_table
          ~header:[ "MODULE"; "VERDICT"; "WITNESS" ]
          (Lint.cert_table_rows res.Lint.certification);
        Report.Say.printf
          "spine-lint: %d module(s) certified, %d unsafe\n"
          (List.length res.Lint.certification - List.length unsafe_modules)
          (List.length unsafe_modules)
      end;
      if show_suppressed && res.Lint.suppressed <> [] then begin
        Report.Say.line "suppressed:";
        print_findings res.Lint.suppressed
      end);
    (match out with
    | Some path -> write_lines path (Lint.cert_jsonl res.Lint.certification)
    | None -> ());
    if blocking = [] && unsafe_modules = [] then 0 else 1

let build_dir_arg =
  let doc = "Directory scanned (recursively) for .cmt files." in
  Arg.(value & opt string "_build/default" & info [ "build-dir" ] ~doc)

let source_root_arg =
  let doc =
    "Directory the source paths recorded in the .cmt files resolve \
     against; also where the .mli existence checks look."
  in
  Arg.(value & opt string "." & info [ "source-root" ] ~doc)

let all_paths_arg =
  let doc =
    "Disable path scoping and apply every rule to every scanned file \
     (used by the fixture tests)."
  in
  Arg.(value & flag & info [ "all-paths" ] ~doc)

let format_arg =
  let doc = "Output format: $(b,table) or $(b,jsonl)." in
  Arg.(
    value
    & opt (enum [ ("table", "table"); ("jsonl", "jsonl") ]) "table"
    & info [ "format" ] ~doc)

let errors_only_arg =
  let doc = "Only fail (exit 1) on error-severity findings." in
  Arg.(value & flag & info [ "errors-only" ] ~doc)

let demote_arg =
  let doc = "Downgrade $(docv) to warning severity (repeatable)." in
  Arg.(value & opt_all string [] & info [ "demote" ] ~docv:"RULE" ~doc)

let only_arg =
  let doc =
    "Run only $(docv) (repeatable; rule id or l1..l11 alias). \
     Default: every rule."
  in
  Arg.(value & opt_all string [] & info [ "only" ] ~docv:"RULE" ~doc)

let except_arg =
  let doc = "Skip $(docv) (repeatable; rule id or l1..l11 alias)." in
  Arg.(value & opt_all string [] & info [ "except" ] ~docv:"RULE" ~doc)

let domains_arg =
  let doc =
    "Run the interprocedural domain-safety pass: collect per-function \
     summaries from every library module, report writes escaping the \
     query surface (rule shared-mutation) and print the per-module \
     certification table.  Exit 1 if any module certifies UNSAFE."
  in
  Arg.(value & flag & info [ "domains" ] ~doc)

let out_arg =
  let doc =
    "Write the certification table as JSONL to $(docv) (with \
     --domains; the CI artifact)."
  in
  Arg.(
    value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)

let show_suppressed_arg =
  let doc = "Also list suppressed findings." in
  Arg.(value & flag & info [ "show-suppressed" ] ~doc)

let rules_cmd =
  let run_rules () =
    List.iter
      (fun r ->
        Report.Say.printf "%-17s %-7s %s\n" (Lint.rule_id r)
          (Lint.severity_id (Lint.default_severity r))
          (Lint.rule_doc r))
      Lint.all_rules;
    0
  in
  Cmd.v
    (Cmd.info "rules" ~doc:"List the rules, severities and what they enforce")
    Term.(const run_rules $ const ())

let lint_term =
  Term.(
    const run_lint $ build_dir_arg $ source_root_arg $ all_paths_arg
    $ format_arg $ errors_only_arg $ demote_arg $ only_arg $ except_arg
    $ domains_arg $ out_arg $ show_suppressed_arg)

let check_cmd =
  Cmd.v
    (Cmd.info "check" ~doc:"Scan a build dir's .cmt files for violations")
    lint_term

let main_cmd =
  let doc = "static analysis for the SPINE repo's typed ASTs" in
  Cmd.group ~default:lint_term
    (Cmd.info "spine-lint" ~doc)
    [ check_cmd; rules_cmd ]

let () = exit (Cmd.eval' main_cmd)
