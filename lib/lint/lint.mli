(** spine-lint: static analysis over the typed ASTs in [_build].

    The driver walks the [.cmt] files dune leaves next to every
    compiled module (via [compiler-libs]) and enforces the repo's
    hot-path and correctness invariants — the compile-time counterpart
    of the telemetry subsystem.  Rules are scoped by source path: the
    hot-path rules only fire inside [lib/spine], [lib/pagestore] and
    [lib/bioseq]; the hygiene rules cover all of [lib/].

    Any finding can be silenced at the offending line (or the line
    above it) with

    {v (* spine-lint: allow <rule> [<rule> ...] *) v}

    or for a whole file with [(* spine-lint: allow-file <rule> *)].
    Suppressed findings are still collected and reported separately so
    the waiver surface stays visible.  See docs/STATIC_ANALYSIS.md. *)

type severity = Error | Warning

type rule =
  | Poly_compare
      (** L1: no polymorphic [compare]/[=]/[Hashtbl.hash]/[Hashtbl] on
          hot-path libraries.  Comparisons whose argument type the
          compiler specialises (int, char, bool, unit, string, bytes,
          float, int32, int64, nativeint) are fine. *)
  | Obj_magic     (** L2: no [Obj.magic]/[Obj.repr]/[Obj.obj]. *)
  | Catch_all     (** L3: no [try ... with _ ->] swallowing exceptions. *)
  | Direct_stdout
      (** L4: no direct stdout printing from library code; route
          through [lib/report] or [lib/telemetry]. *)
  | Missing_mli
      (** L5: every module in [lib/spine] and [lib/pagestore] has a
          [.mli]. *)
  | Partial_call
      (** L6: no [List.hd]/[List.tl]/[Option.get] in library code. *)
  | Raw_clock
      (** L7: no [Unix.gettimeofday]/[Unix.time]/[Sys.time] in library
          code; timings come from [Xutil.Stopwatch]'s monotonic
          clock. *)
  | Bare_failwith
      (** L8: no bare [failwith]/[Failure] raises in the typed-error
          storage stack ([lib/pagestore], [lib/spine/persistent.ml],
          [lib/spine/serialize.ml]); failures there are typed
          [Spine_error.Error] values. *)

val all_rules : rule list

val rule_id : rule -> string
(** Stable kebab-case id used in output and suppression comments:
    ["poly-compare"], ["obj-magic"], ["catch-all"], ["stdout"],
    ["missing-mli"], ["partial-call"], ["raw-clock"],
    ["bare-failwith"]. *)

val rule_of_id : string -> rule option
val rule_doc : rule -> string
val default_severity : rule -> severity
val severity_id : severity -> string

type finding = {
  rule : rule;
  severity : severity;
  file : string;  (** source path relative to the repo root *)
  line : int;
  col : int;
  message : string;
}

type result = {
  findings : finding list;    (** unsuppressed, sorted by file/line *)
  suppressed : finding list;
  files_scanned : int;        (** [.cmt] files read *)
}

val run :
  ?all_paths:bool ->
  ?demote:rule list ->
  build_dir:string ->
  source_root:string ->
  unit ->
  (result, string) Stdlib.result
(** Scan every [.cmt] under [build_dir].  [source_root] is the
    directory the cmt-recorded source paths (and the [.mli] existence
    checks of rule L5) resolve against — with dune this is the build
    context root, since both cmts and copied sources live there.
    [all_paths] disables path scoping so fixture trees outside [lib/]
    can be linted (tests use this).  [demote] downgrades the listed
    rules to [Warning].  [Error _] is returned only for environmental
    failures (unreadable build dir), never for findings. *)

val jsonl : finding list -> string list
(** One JSON object per finding, in the style of the telemetry
    exporter:
    [{"rule":"poly-compare","severity":"error","file":"...","line":3,
      "col":10,"message":"..."}]. *)

val table_rows : finding list -> string list list
(** [[rule; severity; file:line:col; message]] rows for
    {!Report.Table.print}-style rendering. *)
