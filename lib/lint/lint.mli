(** spine-lint: static analysis over the typed ASTs in [_build].

    The driver walks the [.cmt] files dune leaves next to every
    compiled module (via [compiler-libs]) and enforces the repo's
    hot-path and correctness invariants — the compile-time counterpart
    of the telemetry subsystem.  Rules are scoped by source path: the
    hot-path rules only fire inside [lib/spine], [lib/pagestore] and
    [lib/bioseq]; the hygiene rules cover all of [lib/].

    Any finding can be silenced at the offending line (or the line
    above it) with

    {v (* spine-lint: allow <rule> [<rule> ...] *) v}

    or for a whole file with [(* spine-lint: allow-file <rule> *)].
    Suppressed findings are still collected and reported separately so
    the waiver surface stays visible.  See docs/STATIC_ANALYSIS.md. *)

module Domain_safety : module type of Domain_safety
(** The interprocedural domain-safety pass (rules L9/L10/L11), re-
    exported so callers can name its certification and site types. *)

type severity = Error | Warning

type rule =
  | Poly_compare
      (** L1: no polymorphic [compare]/[=]/[Hashtbl.hash]/[Hashtbl] on
          hot-path libraries.  Comparisons whose argument type the
          compiler specialises (int, char, bool, unit, string, bytes,
          float, int32, int64, nativeint) are fine. *)
  | Obj_magic     (** L2: no [Obj.magic]/[Obj.repr]/[Obj.obj]. *)
  | Catch_all     (** L3: no [try ... with _ ->] swallowing exceptions. *)
  | Direct_stdout
      (** L4: no direct stdout printing from library code; route
          through [lib/report] or [lib/telemetry]. *)
  | Missing_mli
      (** L5: every module in [lib/spine] and [lib/pagestore] has a
          [.mli]. *)
  | Partial_call
      (** L6: no [List.hd]/[List.tl]/[Option.get] in library code. *)
  | Raw_clock
      (** L7: no [Unix.gettimeofday]/[Unix.time]/[Sys.time] in library
          code; timings come from [Xutil.Stopwatch]'s monotonic
          clock. *)
  | Bare_failwith
      (** L8: no bare [failwith]/[Failure] raises in the typed-error
          storage stack ([lib/pagestore], [lib/spine/persistent.ml],
          [lib/spine/serialize.ml]); failures there are typed
          [Spine_error.Error] values. *)
  | Shared_mutation
      (** L9: no write reachable from the engine's query surface
          (the read operations rooted in [lib/spine]) may touch state
          that outlives the call — a module-level value, a field of
          the shared store argument, or state behind a stored closure
          — unless it goes through [Atomic]/[Domain.DLS], runs under
          a [Mutex], or the binding is annotated
          [@spine.domain_safe "reason"].  Interprocedural; only
          reported when {!run} is called with [~domains:true]. *)
  | Global_mutable
      (** L10: no module-level mutable value in [lib/spine] or
          [lib/pagestore] without a Mutex/Atomic guard or a
          [@spine.domain_safe "reason"] annotation. *)
  | Unguarded_unsafe
      (** L11: no [Array.unsafe_*]/[Bytes.unsafe_*]/
          [Bigarray...unsafe_*] in library code outside modules that
          declare [@@@spine.checked_boundary "reason"]. *)

val all_rules : rule list

val rule_id : rule -> string
(** Stable kebab-case id used in output and suppression comments:
    ["poly-compare"], ["obj-magic"], ["catch-all"], ["stdout"],
    ["missing-mli"], ["partial-call"], ["raw-clock"],
    ["bare-failwith"], ["shared-mutation"], ["global-mutable"],
    ["unguarded-unsafe"].  The short aliases ["l1"].["l11"] are
    accepted by {!rule_of_id}. *)

val rule_of_id : string -> rule option
val rule_doc : rule -> string
val default_severity : rule -> severity
val severity_id : severity -> string

type finding = {
  rule : rule;
  severity : severity;
  file : string;  (** source path relative to the repo root *)
  line : int;
  col : int;
  message : string;
}

type result = {
  findings : finding list;    (** unsuppressed, sorted by file/line *)
  suppressed : finding list;
  files_scanned : int;        (** [.cmt] files read *)
  certification : Domain_safety.cert_row list;
      (** per-module verdicts for the query surface; populated only
          when {!run} was called with [~domains:true] *)
}

val run :
  ?all_paths:bool ->
  ?demote:rule list ->
  ?only:rule list ->
  ?except:rule list ->
  ?domains:bool ->
  build_dir:string ->
  source_root:string ->
  unit ->
  (result, string) Stdlib.result
(** Scan every [.cmt] under [build_dir].  [source_root] is the
    directory the cmt-recorded source paths (and the [.mli] existence
    checks of rule L5) resolve against — with dune this is the build
    context root, since both cmts and copied sources live there.
    [all_paths] disables path scoping so fixture trees outside [lib/]
    can be linted (tests use this).  [demote] downgrades the listed
    rules to [Warning].  [only]/[except] restrict which rules run
    ([only = []] means all).  [domains] enables the interprocedural
    domain-safety pass: per-function summaries are collected from
    every library module, rule L9 fires on writes escaping the query
    surface, and [certification] is populated.  [Error _] is returned
    only for environmental failures (unreadable build dir), never for
    findings. *)

val jsonl : finding list -> string list
(** One JSON object per finding, in the style of the telemetry
    exporter:
    [{"rule":"poly-compare","severity":"error","file":"...","line":3,
      "col":10,"message":"..."}]. *)

val table_rows : finding list -> string list list
(** [[rule; severity; file:line:col; message]] rows for
    {!Report.Table.print}-style rendering. *)

val cert_table_rows : Domain_safety.cert_row list -> string list list
(** [[module; verdict; witness]] rows of the certification table. *)

val cert_jsonl : Domain_safety.cert_row list -> string list
(** One JSON object per certification row:
    [{"module":"Engine","verdict":"certified","witness":"..."}]. *)
