(* The driver reads the typed ASTs the compiler already produced
   ([.cmt] files, via compiler-libs) instead of re-parsing sources:
   every identifier below is a fully resolved [Path.t], so `open`
   tricks, aliases and shadowing cannot hide a violation, and the
   instantiated types at polymorphic-comparison call sites are
   available to tell an [int] equality (which the compiler
   specialises) from an [int option] one (which drops to the generic
   runtime walk). *)

(* the interprocedural pass lives in its own module; re-exported so
   CLI and tests can name its types through the library interface *)
module Domain_safety = Domain_safety

type severity = Error | Warning

type rule =
  | Poly_compare
  | Obj_magic
  | Catch_all
  | Direct_stdout
  | Missing_mli
  | Partial_call
  | Raw_clock
  | Bare_failwith
  | Shared_mutation
  | Global_mutable
  | Unguarded_unsafe

let all_rules =
  [ Poly_compare; Obj_magic; Catch_all; Direct_stdout; Missing_mli;
    Partial_call; Raw_clock; Bare_failwith; Shared_mutation;
    Global_mutable; Unguarded_unsafe ]

let rule_id = function
  | Poly_compare -> "poly-compare"
  | Obj_magic -> "obj-magic"
  | Catch_all -> "catch-all"
  | Direct_stdout -> "stdout"
  | Missing_mli -> "missing-mli"
  | Partial_call -> "partial-call"
  | Raw_clock -> "raw-clock"
  | Bare_failwith -> "bare-failwith"
  | Shared_mutation -> "shared-mutation"
  | Global_mutable -> "global-mutable"
  | Unguarded_unsafe -> "unguarded-unsafe"

let rule_of_id s =
  match String.lowercase_ascii s with
  | "poly-compare" | "l1" -> Some Poly_compare
  | "obj-magic" | "l2" -> Some Obj_magic
  | "catch-all" | "l3" -> Some Catch_all
  | "stdout" | "l4" -> Some Direct_stdout
  | "missing-mli" | "l5" -> Some Missing_mli
  | "partial-call" | "l6" -> Some Partial_call
  | "raw-clock" | "l7" -> Some Raw_clock
  | "bare-failwith" | "l8" -> Some Bare_failwith
  | "shared-mutation" | "l9" -> Some Shared_mutation
  | "global-mutable" | "l10" -> Some Global_mutable
  | "unguarded-unsafe" | "l11" -> Some Unguarded_unsafe
  | _ -> None

let rule_doc = function
  | Poly_compare ->
    "no polymorphic compare/=/Hashtbl.hash or polymorphic Hashtbl on \
     hot-path libraries (lib/spine, lib/pagestore, lib/bioseq)"
  | Obj_magic -> "no Obj.magic/Obj.repr/Obj.obj in library code"
  | Catch_all -> "no catch-all `try ... with _ ->` swallowing exceptions"
  | Direct_stdout ->
    "no direct stdout printing from library code; route through \
     lib/report or lib/telemetry"
  | Missing_mli ->
    "every module in lib/spine and lib/pagestore has a .mli interface"
  | Partial_call ->
    "no partial stdlib calls (List.hd, List.tl, Option.get) in library code"
  | Raw_clock ->
    "no raw clock reads (Unix.gettimeofday, Unix.time, Sys.time) in \
     library code; time through Xutil.Stopwatch's monotonic clock"
  | Bare_failwith ->
    "no bare failwith/Failure raises in the typed-error storage stack \
     (lib/pagestore, lib/spine persistent/serialize); raise a typed \
     Spine_error instead"
  | Shared_mutation ->
    "no write reachable from the engine's query surface may touch \
     state that outlives the call (module-level values, fields of the \
     shared store argument, stored closures) unless guarded by \
     Mutex/Atomic/Domain.DLS or annotated [@spine.domain_safe]"
  | Global_mutable ->
    "no module-level mutable value in lib/spine or lib/pagestore \
     without a Mutex/Atomic guard or a [@spine.domain_safe \
     \"reason\"] annotation"
  | Unguarded_unsafe ->
    "no Array.unsafe_*/Bytes.unsafe_* outside modules that declare \
     themselves a checked boundary with [@@@spine.checked_boundary \
     \"reason\"]"

let default_severity = function
  | Poly_compare | Obj_magic | Catch_all | Missing_mli | Raw_clock
  | Bare_failwith | Shared_mutation | Global_mutable | Unguarded_unsafe
    -> Error
  | Direct_stdout | Partial_call -> Warning

let severity_id = function Error -> "error" | Warning -> "warning"

type finding = {
  rule : rule;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
}

type result = {
  findings : finding list;
  suppressed : finding list;
  files_scanned : int;
  certification : Domain_safety.cert_row list;
      (* per-module query-surface verdicts; empty unless [domains] *)
}

(* ------------------------------------------------------------------ *)
(* Rule scoping by source path                                         *)

let hot_prefixes = [ "lib/spine/"; "lib/pagestore/"; "lib/bioseq/" ]
let stdout_exempt = [ "lib/report/"; "lib/telemetry/" ]
let mli_prefixes = [ "lib/spine/"; "lib/pagestore/" ]

(* the storage vertical that raises typed Spine_error values *)
let typed_error_prefixes =
  [ "lib/pagestore/"; "lib/spine/persistent.ml"; "lib/spine/serialize.ml" ]

let starts_with_any prefixes file =
  List.exists (fun p -> String.starts_with ~prefix:p file) prefixes

let rule_in_scope ~all_paths rule file =
  all_paths
  ||
  match rule with
  | Poly_compare -> starts_with_any hot_prefixes file
  | Obj_magic | Catch_all | Partial_call | Raw_clock ->
    String.starts_with ~prefix:"lib/" file
  | Direct_stdout ->
    String.starts_with ~prefix:"lib/" file
    && not (starts_with_any stdout_exempt file)
  | Missing_mli -> starts_with_any mli_prefixes file
  | Bare_failwith -> starts_with_any typed_error_prefixes file
  (* L9 roots live on the engine's query surface *)
  | Shared_mutation -> String.starts_with ~prefix:"lib/spine/" file
  | Global_mutable ->
    starts_with_any [ "lib/spine/"; "lib/pagestore/" ] file
  | Unguarded_unsafe -> String.starts_with ~prefix:"lib/" file

(* ------------------------------------------------------------------ *)
(* Identifier classification                                           *)

(* [Stdlib.Hashtbl.find] and friends flattened to ["Stdlib";"Hashtbl";
   "find"]; [None] for applications/extra-type paths we never match. *)
let path_parts p =
  let rec go p acc =
    match p with
    | Path.Pident id -> Some (Ident.name id :: acc)
    | Path.Pdot (q, s) -> go q (s :: acc)
    | _ -> None
  in
  go p []

let poly_ops = [ "="; "<>"; "<"; ">"; "<="; ">="; "compare" ]

let stdout_names =
  [ "print_string"; "print_bytes"; "print_char"; "print_int";
    "print_float"; "print_endline"; "print_newline" ]

let classify_partial = function
  | [ "Stdlib"; "List"; "hd" ] -> Some "List.hd raises Failure on []"
  | [ "Stdlib"; "List"; "tl" ] -> Some "List.tl raises Failure on []"
  | [ "Stdlib"; "Option"; "get" ] ->
    Some "Option.get raises Invalid_argument on None"
  | _ -> None

let classify_stdout = function
  | [ "Stdlib"; name ] when List.mem name stdout_names ->
    Some (Printf.sprintf "%s writes directly to stdout" name)
  | [ "Stdlib"; "Printf"; "printf" ] ->
    Some "Printf.printf writes directly to stdout"
  | [ "Stdlib"; "Format"; ("printf" | "print_string" | "print_newline") as f ]
    ->
    Some (Printf.sprintf "Format.%s writes directly to stdout" f)
  | _ -> None

let classify_obj = function
  | [ "Stdlib"; "Obj"; ("magic" | "repr" | "obj") as f ] ->
    Some (Printf.sprintf "Obj.%s defeats the type system" f)
  | _ -> None

(* wall clocks jump (NTP) and Sys.time measures CPU, not elapsed, time;
   every repro timing must come from the one monotonic source *)
let classify_raw_clock = function
  | [ "Unix"; ("gettimeofday" | "time") as f ]
  | [ "UnixLabels"; ("gettimeofday" | "time") as f ] ->
    Some
      (Printf.sprintf
         "Unix.%s reads the adjustable wall clock (use \
          Xutil.Stopwatch.now_ns)"
         f)
  | [ "Stdlib"; "Sys"; "time" ] ->
    Some
      "Sys.time measures processor time, not elapsed time (use \
       Xutil.Stopwatch.now_ns)"
  | _ -> None

(* every value of the polymorphic Hashtbl interface hashes or compares
   generically; the specialised [Hashtbl.Make] tables resolve to their
   own module path and sail through *)
let classify_hashtbl = function
  | [ "Stdlib"; "Hashtbl"; "hash" ] ->
    Some "Hashtbl.hash is the generic structural hash"
  | [ "Stdlib"; "Hashtbl"; f ] ->
    Some
      (Printf.sprintf
         "polymorphic Hashtbl.%s hashes keys generically (use a \
          Hashtbl.Make-specialised table, e.g. Xutil.Int_tbl)"
         f)
  | _ -> None

let is_poly_op p =
  match path_parts p with
  | Some [ "Stdlib"; op ] -> List.mem op poly_ops
  | _ -> false

(* stringly errors in the storage stack: both [failwith "..."] and the
   spelled-out [raise (Failure "...")] *)
let classify_failwith = function
  | [ "Stdlib"; "failwith" ] ->
    Some
      "failwith raises a stringly Failure callers cannot match on \
       (raise a typed Spine_error.Error instead)"
  | _ -> None

(* cmt files store environments as summaries; rebuild enough of the
   typing env (from the load path recorded at compile time) to expand
   aliases like [Xutil.Int_tbl.key = int] before judging a comparison *)
let expand_type env ty =
  match Envaux.env_of_only_summary env with
  | exception Envaux.Error _ -> ty
  | exception Env.Error _ -> ty
  | exception Persistent_env.Error _ -> ty
  | env -> (
    match Ctype.expand_head env ty with
    | ty' -> ty'
    | exception Ctype.Cannot_expand -> ty
    | exception Ctype.Escape _ -> ty
    | exception Env.Error _ -> ty
    | exception Persistent_env.Error _ -> ty)

(* argument types at which the compiler emits a specialised (non-
   generic) comparison: flagging [a = b] on ints would be noise *)
let specializable env ty =
  match Types.get_desc (expand_type env ty) with
  | Types.Tconstr (p, [], _) ->
    List.exists (Path.same p)
      [ Predef.path_int; Predef.path_char; Predef.path_bool;
        Predef.path_unit; Predef.path_string; Predef.path_bytes;
        Predef.path_float; Predef.path_int32; Predef.path_int64;
        Predef.path_nativeint ]
  | _ -> false

let type_to_string ty = Format.asprintf "%a" Printtyp.type_expr ty

(* ------------------------------------------------------------------ *)
(* Typedtree walk                                                      *)

type raw = { r_rule : rule; r_loc : Location.t; r_msg : string }

let collect_structure ~wants str =
  let found = ref [] in
  let record r_rule loc r_msg =
    if wants r_rule then found := { r_rule; r_loc = loc; r_msg } :: !found
  in
  (* comparison operators judged benign at their application site (the
     argument type is specialisable); the ident visit skips them *)
  let cleared : (Location.t, unit) Hashtbl.t = Hashtbl.create 16 in
  let open Typedtree in
  let expr sub e =
    (match e.exp_desc with
    | Texp_apply (f, args) -> (
      match f.exp_desc with
      | Texp_ident (p, _, _) when is_poly_op p ->
        Hashtbl.replace cleared f.exp_loc ();
        let first_arg =
          List.find_map
            (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
            args
        in
        (match first_arg with
        | Some a when specializable a.exp_env a.exp_type -> ()
        | Some a ->
          record Poly_compare f.exp_loc
            (Printf.sprintf
               "polymorphic %s at type %s drops to the generic runtime \
                comparison (compare via a monomorphic function)"
               (Path.last p)
               (type_to_string a.exp_type))
        | None ->
          record Poly_compare f.exp_loc
            (Printf.sprintf "polymorphic %s" (Path.last p)))
      | _ -> ())
    | Texp_ident (p, _, _) when not (Hashtbl.mem cleared e.exp_loc) -> (
      match path_parts p with
      | None -> ()
      | Some parts -> (
        (match classify_hashtbl parts with
        | Some msg -> record Poly_compare e.exp_loc msg
        | None ->
          if is_poly_op p then
            record Poly_compare e.exp_loc
              (Printf.sprintf
                 "polymorphic %s passed as a first-class function \
                  (hashes/compares generically at every call)"
                 (Path.last p)));
        (match classify_obj parts with
        | Some msg -> record Obj_magic e.exp_loc msg
        | None -> ());
        (match classify_stdout parts with
        | Some msg ->
          record Direct_stdout e.exp_loc
            (msg ^ " from library code (route through Report or Telemetry)")
        | None -> ());
        (match classify_raw_clock parts with
        | Some msg -> record Raw_clock e.exp_loc msg
        | None -> ());
        (match classify_failwith parts with
        | Some msg -> record Bare_failwith e.exp_loc msg
        | None -> ());
        match classify_partial parts with
        | Some msg ->
          record Partial_call e.exp_loc
            (msg ^ "; match the shape explicitly")
        | None -> ()))
    | Texp_construct (_, cd, _)
      when String.equal cd.Types.cstr_name "Failure"
           && (match Types.get_desc cd.Types.cstr_res with
              | Types.Tconstr (p, _, _) -> Path.same p Predef.path_exn
              | _ -> false) ->
      record Bare_failwith e.exp_loc
        "constructing the stringly Failure exception (raise a typed \
         Spine_error.Error instead)"
    | Texp_try (_, cases) ->
      List.iter
        (fun c ->
          match c.c_lhs.pat_desc with
          | Tpat_any ->
            record Catch_all c.c_lhs.pat_loc
              "catch-all handler swallows every exception, including \
               the ones that signal bugs (match the specific exceptions)"
          | _ -> ())
        cases
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let iter = { Tast_iterator.default_iterator with expr } in
  iter.structure iter str;
  List.rev !found

(* ------------------------------------------------------------------ *)
(* Suppression comments                                                *)

type suppressions = {
  by_line : (int, rule list) Hashtbl.t;
  file_wide : rule list;
}

let no_suppressions = { by_line = Hashtbl.create 1; file_wide = [] }

let find_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

let parse_directive line =
  match find_substring line "spine-lint:" with
  | None -> None
  | Some i ->
    let rest =
      let tail = String.sub line (i + 11) (String.length line - i - 11) in
      match find_substring tail "*)" with
      | Some j -> String.sub tail 0 j
      | None -> tail
    in
    let tokens =
      String.split_on_char ' ' rest
      |> List.concat_map (String.split_on_char ',')
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    (match tokens with
    | directive :: rules
      when directive = "allow" || directive = "allow-file" ->
      Some (directive, List.filter_map rule_of_id rules)
    | _ -> None)

let load_suppressions path =
  match In_channel.open_text path with
  | exception Sys_error _ -> no_suppressions
  | ic ->
    let by_line = Hashtbl.create 8 in
    let file_wide = ref [] in
    let rec go n =
      match In_channel.input_line ic with
      | None -> ()
      | Some line ->
        (match parse_directive line with
        | Some ("allow", rules) -> Hashtbl.replace by_line n rules
        | Some ("allow-file", rules) -> file_wide := rules @ !file_wide
        | _ -> ());
        go (n + 1)
    in
    go 1;
    In_channel.close ic;
    { by_line; file_wide = !file_wide }

(* a finding is waived by a directive on its own line or on the line
   directly above, or by a file-wide directive *)
let is_suppressed sup rule line =
  List.mem rule sup.file_wide
  || List.mem rule
       (Option.value ~default:[] (Hashtbl.find_opt sup.by_line line))
  || List.mem rule
       (Option.value ~default:[] (Hashtbl.find_opt sup.by_line (line - 1)))

(* ------------------------------------------------------------------ *)
(* The driver                                                          *)

let walk_cmts root =
  let out = ref [] in
  let rec go dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | entries ->
      Array.iter
        (fun entry ->
          let p = Filename.concat dir entry in
          match Sys.is_directory p with
          | exception Sys_error _ -> ()
          | true -> go p
          | false -> if Filename.check_suffix p ".cmt" then out := p :: !out)
        entries
  in
  go root;
  List.sort String.compare !out

let run ?(all_paths = false) ?(demote = []) ?(only = []) ?(except = [])
    ?(domains = false) ~build_dir ~source_root () =
  if not (Sys.file_exists build_dir && Sys.is_directory build_dir) then
    Stdlib.Error (Printf.sprintf "build dir %S does not exist" build_dir)
  else begin
    let cmts = walk_cmts build_dir in
    if cmts = [] then
      Stdlib.Error
        (Printf.sprintf
           "no .cmt files under %S (build first: dune build @check)"
           build_dir)
    else begin
      let flagged = ref [] and waived = ref [] and scanned = ref 0 in
      let rule_enabled r =
        (only = [] || List.mem r only) && not (List.mem r except)
      in
      (* interprocedural state shared across every scanned file *)
      let ds = Domain_safety.create () in
      (* suppressions are re-consulted after the cross-file fixpoint,
         when the L9 findings materialise *)
      let sups : (string, suppressions) Hashtbl.t = Hashtbl.create 64 in
      (* a module built in several modes leaves several cmts; scan once *)
      let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
      let emit sup rule (line, col) file message =
        let severity =
          if List.mem rule demote then Warning else default_severity rule
        in
        let f = { rule; severity; file; line; col; message } in
        if is_suppressed sup rule line then waived := f :: !waived
        else flagged := f :: !flagged
      in
      List.iter
        (fun cmt_path ->
          match Cmt_format.read_cmt cmt_path with
          | exception (Cmt_format.Error _ | Sys_error _ | Failure _) -> ()
          | cmt -> (
            match cmt.Cmt_format.cmt_sourcefile with
            | None -> ()
            | Some src ->
              let src_on_disk = Filename.concat source_root src in
              let wants r = rule_enabled r && rule_in_scope ~all_paths r src in
              (* L9 summaries come from every library module, even ones
                 no per-file rule applies to *)
              let feeds_summaries =
                domains
                && (all_paths || String.starts_with ~prefix:"lib/" src)
              in
              if
                (List.exists wants all_rules || feeds_summaries)
                && Sys.file_exists src_on_disk
                && not (Hashtbl.mem seen src)
              then begin
                Hashtbl.replace seen src ();
                incr scanned;
                let sup = load_suppressions src_on_disk in
                Hashtbl.replace sups src sup;
                (* L5 is a file-level property, not a tree walk *)
                if wants Missing_mli && Filename.check_suffix src ".ml" then begin
                  let mli =
                    Filename.chop_suffix src_on_disk ".ml" ^ ".mli"
                  in
                  if not (Sys.file_exists mli) then
                    emit sup Missing_mli (1, 0) src
                      (Printf.sprintf
                         "module %s has no .mli interface"
                         (Filename.basename src))
                end;
                match cmt.Cmt_format.cmt_annots with
                | Cmt_format.Implementation str ->
                  (* point cmi resolution at the load path recorded
                     when this module was compiled, so alias expansion
                     in [specializable] can see through .mli types;
                     dune records the entries relative to the build
                     context root, so anchor them to [build_dir] *)
                  Load_path.init ~auto_include:Load_path.no_auto_include
                    (List.map
                       (fun p ->
                         if Filename.is_relative p then
                           Filename.concat build_dir p
                         else p)
                       cmt.Cmt_format.cmt_loadpath);
                  Envaux.reset_cache ();
                  List.iter
                    (fun { r_rule; r_loc; r_msg } ->
                      let pos = r_loc.Location.loc_start in
                      emit sup r_rule
                        ( pos.Lexing.pos_lnum,
                          pos.Lexing.pos_cnum - pos.Lexing.pos_bol )
                        src r_msg)
                    (collect_structure ~wants str);
                  if
                    feeds_summaries || wants Global_mutable
                    || wants Unguarded_unsafe
                  then begin
                    let l10, l11 =
                      Domain_safety.scan_file ds ~source:src str
                    in
                    if wants Global_mutable then
                      List.iter
                        (fun (s : Domain_safety.site) ->
                          emit sup Global_mutable (s.st_line, s.st_col)
                            src s.st_msg)
                        l10;
                    if wants Unguarded_unsafe then
                      List.iter
                        (fun (s : Domain_safety.site) ->
                          emit sup Unguarded_unsafe (s.st_line, s.st_col)
                            src s.st_msg)
                        l11
                  end
                | _ -> ()
              end))
        cmts;
      (* the cross-file fixpoint: L9 findings and the certification
         table for every module exposing query-surface roots *)
      let certification =
        if not domains then []
        else begin
          let roots_in f =
            all_paths || String.starts_with ~prefix:"lib/spine/" f
          in
          let l9s, rows = Domain_safety.finalize ds ~roots_in in
          if rule_enabled Shared_mutation then
            List.iter
              (fun (f : Domain_safety.l9) ->
                let sup =
                  Option.value ~default:no_suppressions
                    (Hashtbl.find_opt sups f.l9_file)
                in
                emit sup Shared_mutation (f.l9_line, f.l9_col) f.l9_file
                  f.l9_msg)
              l9s;
          rows
        end
      in
      let order a b =
        match String.compare a.file b.file with
        | 0 -> (
          match compare a.line b.line with
          | 0 -> String.compare (rule_id a.rule) (rule_id b.rule)
          | c -> c)
        | c -> c
      in
      Stdlib.Ok
        {
          findings = List.sort order !flagged;
          suppressed = List.sort order !waived;
          files_scanned = !scanned;
          certification;
        }
    end
  end

(* ------------------------------------------------------------------ *)
(* Exporters (formatting only; printing is the caller's business)      *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jsonl findings =
  List.map
    (fun f ->
      Printf.sprintf
        "{\"rule\":\"%s\",\"severity\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"message\":\"%s\"}"
        (rule_id f.rule) (severity_id f.severity) (json_escape f.file)
        f.line f.col (json_escape f.message))
    findings

let table_rows findings =
  List.map
    (fun f ->
      [ rule_id f.rule; severity_id f.severity;
        Printf.sprintf "%s:%d:%d" f.file f.line f.col; f.message ])
    findings

let cert_table_rows rows =
  List.map
    (fun (r : Domain_safety.cert_row) ->
      [ r.cm_module; r.cm_verdict; r.cm_witness ])
    rows

let cert_jsonl rows =
  List.map
    (fun (r : Domain_safety.cert_row) ->
      Printf.sprintf
        "{\"module\":\"%s\",\"verdict\":\"%s\",\"witness\":\"%s\"}"
        (json_escape r.cm_module) (json_escape r.cm_verdict)
        (json_escape r.cm_witness))
    rows
