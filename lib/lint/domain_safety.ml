(* Interprocedural domain-safety analysis over the same .cmt typed
   ASTs the per-file rules walk.  Three questions are answered:

   - L10 (global-mutable): which module-level values have a mutable
     type and no guard?  A module-level [ref]/[Hashtbl.t]/[Bytes.t] is
     shared by every domain that touches the module, whether or not
     any current code path writes it.
   - L11 (unguarded-unsafe): which functions reach for
     [Array.unsafe_*]/[Bytes.unsafe_*] outside a module that declared
     itself a checked boundary with [@@@spine.checked_boundary]?
   - L9 (shared-mutation): starting from the read operations of the
     engine's query surface, does any reachable function write state
     that outlives the call — a module-level value, a field of the
     (potentially shared) store argument, or state behind a stored
     closure?  Writes under a [Mutex], through [Atomic] or through
     [Domain.DLS] are absorbed; so are functions annotated
     [@spine.domain_safe "reason"].

   The unit of summary is the structure-level function (including
   functions inside functor bodies).  Locally let-bound lambdas are
   walked inline where they are defined, so a closure handed to a
   same-file lock-runner (a function that itself takes a [Mutex]) has
   its writes absorbed at the hand-off site.

   Known approximations, chosen to keep the analysis quiet rather
   than complete (each is documented in docs/STATIC_ANALYSIS.md):
   function results are treated as freshly allocated; calls through
   module paths that resolve to nothing we scanned are assumed pure;
   calls through functor parameters devirtualise by basename over
   every scanned summary; a query root invoking a caller-supplied
   callback is the caller's responsibility. *)

(* ------------------------------------------------------------------ *)
(* Paths and attributes                                                *)

let path_parts p =
  let rec go p acc =
    match p with
    | Path.Pident id -> Some (Ident.name id :: acc)
    | Path.Pdot (q, s) -> go q (s :: acc)
    | _ -> None
  in
  go p []

let path_head p =
  let rec go = function
    | Path.Pident id -> Some id
    | Path.Pdot (q, _) -> go q
    | _ -> None
  in
  go p

(* dune name-mangles wrapped-library modules as [Lib__Mod]; the part
   after the last [__] is the name the source spells *)
let demangle s =
  match String.rindex_opt s '_' with
  | Some i when i > 0 && s.[i - 1] = '_' ->
    String.sub s (i + 1) (String.length s - i - 1)
  | _ -> s

let normalize parts =
  let parts = List.map demangle parts in
  match parts with "Stdlib" :: rest when rest <> [] -> rest | _ -> parts

(* last module component and value name: ["Stdlib";"Bigarray";"Array1";
   "set"] becomes [("Array1","set")]; a bare operator has no module *)
let mod_and_name parts =
  match List.rev (normalize parts) with
  | [ name ] -> ("", name)
  | name :: m :: _ -> (m, name)
  | [] -> ("", "")

let attr_string (a : Parsetree.attribute) =
  match a.Parsetree.attr_payload with
  | Parsetree.PStr
      [ {
          pstr_desc =
            Pstr_eval
              ( { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ },
                _ );
          _;
        } ] ->
    Some s
  | _ -> None

let find_attr name attrs =
  List.find_opt
    (fun a -> String.equal a.Parsetree.attr_name.Location.txt name)
    attrs

let domain_safe_attr attrs =
  match find_attr "spine.domain_safe" attrs with
  | Some a -> Some (Option.value ~default:"" (attr_string a))
  | None -> None

(* ------------------------------------------------------------------ *)
(* Type-level mutability                                               *)

type mutability =
  | Immutable
  | Mutable of string  (** why: the mutable constituent *)
  | Guarded of string  (** safely shareable: Atomic/Mutex/DLS *)
  | Unknown            (** abstract; not judged *)

(* tables from the stdlib plus the repo's own mutable abstract types
   (their .mli hides the representation from [Ctype.expand_head]) *)
let known_mutable = function
  | "Hashtbl", "t" -> Some "hash table"
  | "Buffer", "t" -> Some "buffer"
  | "Queue", "t" -> Some "queue"
  | "Stack", "t" -> Some "stack"
  | ("Array1" | "Array2" | "Genarray"), "t" -> Some "bigarray"
  | "Int_tbl", "t" -> Some "hash table (Xutil.Int_tbl)"
  | "Int_vec", "t" -> Some "growable array (Xutil.Int_vec)"
  | "Packed_seq", "t" -> Some "growable sequence (Bioseq.Packed_seq)"
  | _ -> None

let known_guarded = function
  | "Atomic", "t" -> Some "Atomic.t"
  | "Mutex", "t" -> Some "Mutex.t"
  | "Semaphore", _ -> Some "Semaphore"
  | "Condition", "t" -> Some "Condition.t"
  | "DLS", "key" -> Some "Domain.DLS.key"
  | _ -> None

let expand_type env ty =
  match Envaux.env_of_only_summary env with
  | exception Envaux.Error _ -> ty
  | exception Env.Error _ -> ty
  | exception Persistent_env.Error _ -> ty
  | env -> (
    match Ctype.expand_head env ty with
    | ty' -> ty'
    | exception Ctype.Cannot_expand -> ty
    | exception Ctype.Escape _ -> ty
    | exception Env.Error _ -> ty
    | exception Persistent_env.Error _ -> ty)

let join a b =
  match (a, b) with
  | Mutable _, _ -> a
  | _, Mutable _ -> b
  | Unknown, _ -> a
  | _, Unknown -> b
  | Guarded _, _ -> a
  | _, Guarded _ -> b
  | Immutable, Immutable -> Immutable

let immutable_predefs =
  [ Predef.path_int; Predef.path_char; Predef.path_bool; Predef.path_unit;
    Predef.path_string; Predef.path_float; Predef.path_int32;
    Predef.path_int64; Predef.path_nativeint; Predef.path_exn ]

let rec classify ~depth ~visited env ty =
  if depth > 4 then Unknown
  else
    let ty = expand_type env ty in
    match Types.get_desc ty with
    | Types.Tarrow _ -> Immutable (* closures are not judged here *)
    | Types.Ttuple tys -> classify_list ~depth ~visited env tys
    | Types.Tconstr (p, args, _) -> (
      if Path.same p Predef.path_array then Mutable "array"
      else if Path.same p Predef.path_bytes then Mutable "bytes"
      else if Path.same p Predef.path_lazy_t then Mutable "lazy thunk"
      else if List.exists (Path.same p) immutable_predefs then Immutable
      else if
        Path.same p Predef.path_list || Path.same p Predef.path_option
      then classify_list ~depth ~visited env args
      else
        match path_parts p with
        | None -> Unknown
        | Some parts -> (
          let mn = mod_and_name parts in
          match (fst mn, snd mn) with
          | _, "ref" | "ref", _ -> Mutable "ref cell"
          | _ -> (
            match known_mutable mn with
            | Some why -> Mutable why
            | None -> (
              match known_guarded mn with
              | Some why -> Guarded why
              | None ->
                let key = Path.name p in
                if List.mem key visited then Immutable
                else
                  let visited = key :: visited in
                  classify_decl ~depth ~visited env p args))))
    | Types.Tvar _ | Types.Tunivar _ -> Unknown
    | _ -> Unknown

and classify_list ~depth ~visited env tys =
  List.fold_left
    (fun acc ty -> join acc (classify ~depth:(depth + 1) ~visited env ty))
    Immutable tys

(* look through the declaration: a record with a [mutable] label is
   the canonical shared-state carrier *)
and classify_decl ~depth ~visited env p args =
  match Envaux.env_of_only_summary env with
  | exception _ -> Unknown
  | env -> (
    match Env.find_type p env with
    | exception _ -> Unknown
    | decl -> (
      match decl.Types.type_kind with
      | Types.Type_record (labels, _) ->
        let mut =
          List.find_opt
            (fun l -> l.Types.ld_mutable = Asttypes.Mutable)
            labels
        in
        (match mut with
        | Some l ->
          Mutable
            (Printf.sprintf "record with mutable field %s"
               (Ident.name l.Types.ld_id))
        | None ->
          classify_list ~depth ~visited env
            (List.map (fun l -> l.Types.ld_type) labels))
      | Types.Type_variant (cstrs, _) ->
        List.fold_left
          (fun acc c ->
            match c.Types.cd_args with
            | Types.Cstr_tuple tys ->
              join acc (classify_list ~depth ~visited env tys)
            | Types.Cstr_record lbls ->
              if
                List.exists
                  (fun l -> l.Types.ld_mutable = Asttypes.Mutable)
                  lbls
              then Mutable "constructor with mutable field"
              else
                join acc
                  (classify_list ~depth ~visited env
                     (List.map (fun l -> l.Types.ld_type) lbls)))
          Immutable cstrs
      | Types.Type_abstract -> (
        (* alias? expand through the manifest if there is one *)
        match decl.Types.type_manifest with
        | Some ty -> classify ~depth:(depth + 1) ~visited env ty
        | None -> Unknown)
      | Types.Type_open -> Unknown
      | exception _ -> ignore args; Unknown))

let classify_type env ty = classify ~depth:0 ~visited:[] env ty

let mutability_to_string = function
  | Immutable -> "immutable"
  | Mutable w -> "mutable (" ^ w ^ ")"
  | Guarded w -> "guarded (" ^ w ^ ")"
  | Unknown -> "unknown"

(* ------------------------------------------------------------------ *)
(* Value roots and effects                                             *)

type root =
  | Rlocal             (** allocated in this call; cannot be shared *)
  | Rparam of int      (** the n-th argument of the enclosing summary *)
  | Rglobal of string  (** a module-level value *)
  | Ropaque            (** provenance the analyzer cannot classify *)

type frame = { fr_fn : string; fr_file : string; fr_line : int }

type eff =
  | Eglobal of { path : string; desc : string; chain : frame list }
  | Eparam of { index : int; desc : string; chain : frame list }
  | Eopaque of { desc : string; chain : frame list }
  | Ecallsparam of { index : int; chain : frame list }

let eff_chain = function
  | Eglobal e -> e.chain
  | Eparam e -> e.chain
  | Eopaque e -> e.chain
  | Ecallsparam e -> e.chain

(* dedup key: site + what is written, ignoring the witness chain so
   the fixpoint terminates on cyclic call graphs *)
let eff_key e =
  let site =
    match List.rev (eff_chain e) with
    | { fr_file; fr_line; _ } :: _ -> Printf.sprintf "%s:%d" fr_file fr_line
    | [] -> ""
  in
  match e with
  | Eglobal { path; _ } -> "g:" ^ path ^ "@" ^ site
  | Eparam { index; _ } -> Printf.sprintf "p:%d@%s" index site
  | Eopaque _ -> "o:" ^ site
  | Ecallsparam { index; _ } -> Printf.sprintf "c:%d@%s" index site

type callee =
  | Exact of string * string  (** (module, name) global path *)
  | By_name of string         (** functor parameter / local alias *)

type call = {
  cl_callee : callee;
  cl_args : root array;
  cl_nargs : int;  (* syntactic args at the site, for By_name arity filtering *)
  cl_frame : frame;
}

type summary = {
  s_file_mod : string;   (* module named after the source file *)
  s_mod : string;        (* innermost enclosing module *)
  s_name : string;
  s_file : string;
  s_line : int;
  s_nparams : int;       (* syntactic (curried) parameter count *)
  s_own : eff list;
  s_calls : call list;
  s_annotated : string option;  (* [@spine.domain_safe] reason *)
  s_self_locks : bool;          (* body takes a Mutex directly *)
  s_own_notes : string list;    (* guard absorptions seen in the body *)
  (* fixpoint state *)
  mutable s_esc : eff list;
  mutable s_notes : string list;
}

type site = { st_line : int; st_col : int; st_msg : string }

type t = {
  mutable summaries : summary list;
  by_name : (string, summary list ref) Hashtbl.t;
}

let create () = { summaries = []; by_name = Hashtbl.create 64 }

(* ------------------------------------------------------------------ *)
(* Known externals                                                     *)

(* stdlib calls that mutate an argument in place: (module, fn) ->
   indices of the mutated positional arguments *)
let external_mutators = function
  | ( "Hashtbl",
      ( "add" | "replace" | "remove" | "reset" | "clear"
      | "filter_map_inplace" ) ) ->
    Some [ 0 ]
  | ( "Int_tbl",
      ( "add" | "replace" | "remove" | "reset" | "clear"
      | "filter_map_inplace" ) ) ->
    Some [ 0 ] (* Hashtbl.Make instance: same surface *)
  | "Array", ("set" | "unsafe_set" | "fill") -> Some [ 0 ]
  | "Array", ("sort" | "fast_sort" | "stable_sort") -> Some [ 1 ]
  | "Array", "blit" -> Some [ 2 ]
  | "Bytes", ("set" | "unsafe_set" | "fill" | "unsafe_fill") -> Some [ 0 ]
  | "Bytes", ("blit" | "blit_string" | "unsafe_blit") -> Some [ 2 ]
  | ( "Buffer",
      ( "add_char" | "add_string" | "add_bytes" | "add_substring"
      | "add_subbytes" | "add_buffer" | "clear" | "reset" | "truncate" ) )
    ->
    Some [ 0 ]
  | "Queue", ("push" | "add" | "pop" | "take" | "clear") -> Some [ 0 ]
  | "Queue", "transfer" -> Some [ 0; 1 ]
  | "Stack", "push" -> Some [ 1 ]
  | "Stack", ("pop" | "clear") -> Some [ 0 ]
  | "Array1", ("set" | "unsafe_set" | "fill") -> Some [ 0 ]
  | "Array1", "blit" -> Some [ 1 ]
  | "", (":=" | "incr" | "decr") -> Some [ 0 ]
  | _ -> None

(* modules whose operations are domain-safe by construction *)
let external_guarded = function
  | ("Atomic" | "DLS" | "Domain"), _ -> true
  | "Mutex", "unlock" -> true
  | _ -> false

let is_unsafe_access (m, name) =
  (match m with
  | "Array" | "Bytes" | "String" | "Array1" | "Array2" | "Genarray" ->
    true
  | _ -> false)
  && String.length name > 7
  && String.sub name 0 7 = "unsafe_"

(* stdlib/external module names we never try to resolve to scanned
   summaries: anything else with a global head falls through to Exact *)

(* ------------------------------------------------------------------ *)
(* Per-function walk                                                   *)

type wstate = {
  t : t;
  file : string;
  file_mod : string;
  (* idents of module-level values of this file -> dotted path *)
  file_globals : (string, string) Hashtbl.t;
  (* idents of same-file functions that take a Mutex in their body *)
  lock_runners : (string, unit) Hashtbl.t;
  (* same-file summary names, for Pident call resolution *)
  local_fns : (string, string) Hashtbl.t;  (* unique_name -> fn name *)
  renv : (string, root) Hashtbl.t;
  mutable guard_depth : int;
  mutable own : eff list;
  mutable calls : call list;
  mutable notes : string list;
  mutable self_locks : bool;
  mutable l11 : site list;
  cur_fn : string;
}

let note st n = if not (List.mem n st.notes) then st.notes <- n :: st.notes

let frame_of st (loc : Location.t) =
  {
    fr_fn = st.file_mod ^ "." ^ st.cur_fn;
    fr_file = st.file;
    fr_line = loc.Location.loc_start.Lexing.pos_lnum;
  }

let record_eff st loc mk =
  if st.guard_depth > 0 then note st "mutex-guarded write absorbed"
  else st.own <- mk (frame_of st loc) :: st.own

let record_site lst (loc : Location.t) msg =
  let pos = loc.Location.loc_start in
  { st_line = pos.Lexing.pos_lnum;
    st_col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
    st_msg = msg }
  :: lst

let lookup_root st id =
  let key = Ident.unique_name id in
  match Hashtbl.find_opt st.renv key with
  | Some r -> r
  | None -> (
    match Hashtbl.find_opt st.file_globals key with
    | Some path -> Rglobal path
    | None ->
      if Ident.global id then Rglobal (Ident.name id) else Rlocal)

let rank = function
  | Ropaque -> 3
  | Rglobal _ -> 2
  | Rparam _ -> 1
  | Rlocal -> 0

let worse a b = if rank a >= rank b then a else b

let head_ident e =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (p, _, _) -> Some p
  | _ -> None

let rec root_of st (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> lookup_root st id
  | Texp_ident (p, _, _) -> (
    match path_parts p with
    | Some parts -> Rglobal (String.concat "." (normalize parts))
    | None -> Ropaque)
  | Texp_field (e1, _, _) -> root_of st e1
  | Texp_apply (f, [ (_, Some a) ])
    when (match head_ident f with
         | Some p -> (
           match path_parts p with
           | Some parts -> mod_and_name parts = ("", "!")
           | None -> false)
         | None -> false) ->
    root_of st a (* !r aliases r's referent *)
  | Texp_apply _ -> Rlocal (* results treated as fresh (documented) *)
  | Texp_let (_, _, body) | Texp_sequence (_, body) -> root_of st body
  | Texp_ifthenelse (_, e1, Some e2) ->
    worse (root_of st e1) (root_of st e2)
  | _ -> Rlocal

let bind_pattern_vars st pat r =
  if r <> Rlocal then
    List.iter
      (fun id -> Hashtbl.replace st.renv (Ident.unique_name id) r)
      (Typedtree.pat_bound_idents pat)

let describe_root = function
  | Rglobal p -> "module-level value " ^ p
  | Rparam i -> Printf.sprintf "argument %d" i
  | Ropaque -> "a value of unknown provenance"
  | Rlocal -> "a local value"

let effect_for st loc desc r =
  match r with
  | Rlocal -> ()
  | Rparam index ->
    record_eff st loc (fun fr -> Eparam { index; desc; chain = [ fr ] })
  | Rglobal path ->
    record_eff st loc (fun fr -> Eglobal { path; desc; chain = [ fr ] })
  | Ropaque ->
    record_eff st loc (fun fr -> Eopaque { desc; chain = [ fr ] })

let rec walk st (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_let (_, vbs, body) ->
    List.iter
      (fun (vb : Typedtree.value_binding) ->
        match domain_safe_attr vb.vb_attributes with
        | Some reason ->
          note st
            (Printf.sprintf "[@spine.domain_safe %S] on a local binding"
               reason);
          st.guard_depth <- st.guard_depth + 1;
          walk st vb.vb_expr;
          st.guard_depth <- st.guard_depth - 1
        | None ->
          bind_pattern_vars st vb.vb_pat (root_of st vb.vb_expr);
          walk st vb.vb_expr)
      vbs;
    walk st body
  | Texp_match (scrut, cases, _) ->
    walk st scrut;
    let r = root_of st scrut in
    List.iter
      (fun (c : Typedtree.computation Typedtree.case) ->
        bind_pattern_vars st c.c_lhs r;
        Option.iter (walk st) c.c_guard;
        walk st c.c_rhs)
      cases
  | Texp_setfield (obj, _, lbl, v) ->
    effect_for st e.exp_loc
      (Printf.sprintf "assignment to mutable field %s of %s"
         lbl.Types.lbl_name
         (describe_root (root_of st obj)))
      (root_of st obj);
    walk st obj;
    walk st v
  | Texp_apply (f, args) -> walk_apply st e f args
  | _ -> default_walk st e

and default_walk st e =
  let sub =
    {
      Tast_iterator.default_iterator with
      expr = (fun _ e -> walk st e);
    }
  in
  Tast_iterator.default_iterator.expr sub e

and walk_args st args =
  List.iter (fun (_, a) -> Option.iter (walk st) a) args

and walk_apply st e f args =
  match head_ident f with
  | None -> (
    match f.exp_desc with
    | Texp_apply (g, inner) ->
      (* [x |> f] and [f @@ x] are desugared by the typechecker into a
         nested application whose head is the partial [f a1 .. ak];
         collapse so the real callee stays visible *)
      walk_apply st e g (inner @ args)
    | _ ->
      (* calling a computed function value: a hook stored in reachable
         state may close over anything *)
      effect_for st e.exp_loc "call through a stored function value"
        Ropaque;
      walk st f;
      walk_args st args)
  | Some p -> (
    let parts = Option.value ~default:[] (path_parts p) in
    let mn = mod_and_name parts in
    let head_global =
      match path_head p with Some id -> Ident.global id | None -> false
    in
    let head_key =
      match path_head p with
      | Some id -> Ident.unique_name id
      | None -> ""
    in
    (* same-file higher-order lock-runner, or Mutex.protect: the
       closure argument runs under the lock *)
    let is_lock_runner =
      mn = ("Mutex", "protect")
      || (match p with
         | Path.Pident _ -> Hashtbl.mem st.lock_runners head_key
         | _ -> false)
    in
    if is_lock_runner then begin
      note st "mutex-guarded region";
      st.guard_depth <- st.guard_depth + 1;
      walk_args st args;
      st.guard_depth <- st.guard_depth - 1
    end
    else if mn = ("Mutex", "lock") then begin
      st.self_locks <- true;
      walk_args st args
    end
    else begin
      if is_unsafe_access mn then
        st.l11 <-
          record_site st.l11 e.exp_loc
            (Printf.sprintf
               "%s.%s bypasses bounds checks outside a checked boundary \
                (mark the module [@@@spine.checked_boundary \"reason\"] \
                after auditing, or use the checked accessor)"
               (fst mn) (snd mn));
      (match external_mutators mn with
      | Some targets ->
        let vargs =
          List.filter_map (fun (_, a) -> a) args |> Array.of_list
        in
        List.iter
          (fun i ->
            if i < Array.length vargs then begin
              let tgt = vargs.(i) in
              effect_for st e.exp_loc
                (Printf.sprintf "%s on %s"
                   (if fst mn = "" then snd mn
                    else fst mn ^ "." ^ snd mn)
                   (describe_root (root_of st tgt)))
                (root_of st tgt)
            end)
          targets
      | None ->
        if external_guarded mn then
          (* Atomic/DLS traffic is the sanctioned way to share *)
          ()
        else begin
          (* a call to resolve during the fixpoint *)
          let vargs =
            List.filter_map (fun (_, a) -> a)
              args
            |> List.map (root_of st)
            |> Array.of_list
          in
          let record callee =
            if st.guard_depth > 0 then
              note st "mutex-guarded call absorbed"
            else
              st.calls <-
                {
                  cl_callee = callee;
                  cl_args = vargs;
                  cl_nargs = Array.length vargs;
                  cl_frame = frame_of st e.exp_loc;
                }
                :: st.calls
          in
          match p with
          | Path.Pident id -> (
            match Hashtbl.find_opt st.local_fns head_key with
            | Some fn_name -> record (Exact (st.file_mod, fn_name))
            | None -> (
              (* a let-bound closure or a parameter *)
              match lookup_root st id with
              | Rparam i ->
                if st.guard_depth = 0 then
                  st.own <-
                    Ecallsparam
                      { index = i; chain = [ frame_of st e.exp_loc ] }
                    :: st.own
              | Rlocal -> () (* effects attributed at its definition *)
              | Rglobal _ | Ropaque ->
                (* invoking a shared closure reads it; the closure's
                   own writes were attributed where it was defined *)
                ()))
          | _ ->
            if head_global then record (Exact (fst mn, snd mn))
            else record (By_name (snd mn))
        end);
      walk st f;
      walk_args st args
    end)

(* ------------------------------------------------------------------ *)
(* Structure traversal                                                 *)

let structure_of_modexpr me =
  let rec go (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_structure s -> Some s
    | Tmod_functor (_, body) -> go body
    | Tmod_constraint (m, _, _, _) -> go m
    | _ -> None
  in
  go me

let binding_name (vb : Typedtree.value_binding) =
  match vb.vb_pat.pat_desc with
  | Typedtree.Tpat_var (id, _) -> Some id
  | _ -> None

let is_function (vb : Typedtree.value_binding) =
  match vb.vb_expr.exp_desc with
  | Typedtree.Texp_function _ -> true
  | _ -> false

(* does this expression apply Mutex.lock/Mutex.protect anywhere? *)
let takes_mutex body =
  let found = ref false in
  let expr sub (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_apply (f, _) -> (
      match head_ident f with
      | Some p -> (
        match path_parts p with
        | Some parts -> (
          match mod_and_name parts with
          | "Mutex", ("lock" | "protect") -> found := true
          | _ -> ())
        | None -> ())
      | None -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let iter = { Tast_iterator.default_iterator with expr } in
  iter.expr iter body;
  !found

(* syntactic parameter count of the curried [fun p0 -> fun p1 -> ...]
   spine (mirrors [peel_params]'s recursion) *)
let rec count_params (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function { cases = [ c ]; _ } -> 1 + count_params c.c_rhs
  | Texp_function _ -> 1
  | _ -> 0

(* peel the curried [fun p0 -> fun p1 -> ...] spine, binding each
   parameter (and the variables its pattern destructures) to its
   index; returns the bodies to walk *)
let rec peel_params st idx (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function { param; cases; _ } -> (
    Hashtbl.replace st.renv (Ident.unique_name param) (Rparam idx);
    List.iter
      (fun (c : Typedtree.value Typedtree.case) ->
        List.iter
          (fun id ->
            Hashtbl.replace st.renv (Ident.unique_name id) (Rparam idx))
          (Typedtree.pat_bound_idents c.c_lhs))
      cases;
    match cases with
    | [ c ] -> peel_params st (idx + 1) c.c_rhs
    | _ -> List.map (fun c -> c.Typedtree.c_rhs) cases)
  | _ -> [ e ]

let register_module_binding t s =
  let r =
    match Hashtbl.find_opt t.by_name s.s_name with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace t.by_name s.s_name r;
      r
  in
  r := s :: !r;
  t.summaries <- s :: t.summaries

type scan_out = { mutable o_l10 : site list; mutable o_l11 : site list }

let scan_file t ~source str =
  let file_mod =
    String.capitalize_ascii
      (Filename.remove_extension (Filename.basename source))
  in
  let file_globals = Hashtbl.create 16 in
  let lock_runners = Hashtbl.create 4 in
  let local_fns = Hashtbl.create 16 in
  let out = { o_l10 = []; o_l11 = [] } in
  (* sweep 1: register every structure-level ident (values keep their
     dotted path for root classification; functions become call
     targets; Mutex-taking functions become lock-runners) *)
  let rec sweep1 mod_name (s : Typedtree.structure) =
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match binding_name vb with
              | None -> ()
              | Some id ->
                let key = Ident.unique_name id in
                if is_function vb then begin
                  Hashtbl.replace local_fns key (Ident.name id);
                  if takes_mutex vb.Typedtree.vb_expr then
                    Hashtbl.replace lock_runners key ()
                end
                else
                  Hashtbl.replace file_globals key
                    (mod_name ^ "." ^ Ident.name id))
            vbs
        | Tstr_module mb -> (
          match structure_of_modexpr mb.mb_expr with
          | Some s ->
            let name =
              match mb.mb_id with
              | Some id -> Ident.name id
              | None -> mod_name
            in
            sweep1 name s
          | None -> ())
        | Tstr_recmodule mbs ->
          List.iter
            (fun (mb : Typedtree.module_binding) ->
              match structure_of_modexpr mb.mb_expr with
              | Some s ->
                let name =
                  match mb.mb_id with
                  | Some id -> Ident.name id
                  | None -> mod_name
                in
                sweep1 name s
              | None -> ())
            mbs
        | _ -> ())
      s.str_items
  in
  sweep1 file_mod str;
  (* sweep 2: summaries for functions, L10 for module-level values,
     L11 sites from every body *)
  let boundary = ref None in
  let rec sweep2 mod_name (s : Typedtree.structure) =
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.str_desc with
        | Tstr_attribute a
          when String.equal a.Parsetree.attr_name.Location.txt
                 "spine.checked_boundary" ->
          boundary := Some (Option.value ~default:"" (attr_string a))
        | Tstr_value (_, vbs) ->
          List.iter
            (fun (vb : Typedtree.value_binding) ->
              match binding_name vb with
              | None -> ()
              | Some id ->
                let annotated = domain_safe_attr vb.vb_attributes in
                if is_function vb then begin
                  let st =
                    {
                      t;
                      file = source;
                      file_mod;
                      file_globals;
                      lock_runners;
                      local_fns;
                      renv = Hashtbl.create 32;
                      guard_depth = 0;
                      own = [];
                      calls = [];
                      notes = [];
                      self_locks =
                        Hashtbl.mem lock_runners (Ident.unique_name id);
                      l11 = [];
                      cur_fn = Ident.name id;
                    }
                  in
                  let bodies = peel_params st 0 vb.vb_expr in
                  List.iter (walk st) bodies;
                  out.o_l11 <- st.l11 @ out.o_l11;
                  let line =
                    vb.vb_loc.Location.loc_start.Lexing.pos_lnum
                  in
                  register_module_binding t
                    {
                      s_file_mod = file_mod;
                      s_mod = mod_name;
                      s_name = Ident.name id;
                      s_file = source;
                      s_line = line;
                      s_nparams = count_params vb.vb_expr;
                      s_own = st.own;
                      s_calls = st.calls;
                      s_annotated = annotated;
                      s_self_locks = st.self_locks;
                      s_own_notes = st.notes;
                      s_esc = [];
                      s_notes = [];
                    }
                end
                else begin
                  (* module-level value: L10 judgement *)
                  let env = vb.vb_expr.exp_env in
                  match classify_type env vb.vb_pat.pat_type with
                  | Mutable why when annotated = None ->
                    out.o_l10 <-
                      record_site out.o_l10 vb.vb_loc
                        (Printf.sprintf
                           "module-level mutable value %s.%s (%s) is \
                            shared by every domain that touches this \
                            module (guard it with Mutex/Atomic, move \
                            it into Domain.DLS, or annotate it \
                            [@spine.domain_safe \"reason\"])"
                           mod_name (Ident.name id) why)
                  | _ -> ()
                end)
            vbs
        | Tstr_module mb -> (
          match structure_of_modexpr mb.mb_expr with
          | Some s ->
            let name =
              match mb.mb_id with
              | Some id -> Ident.name id
              | None -> mod_name
            in
            sweep2 name s
          | None -> ())
        | Tstr_recmodule mbs ->
          List.iter
            (fun (mb : Typedtree.module_binding) ->
              match structure_of_modexpr mb.mb_expr with
              | Some s ->
                let name =
                  match mb.mb_id with
                  | Some id -> Ident.name id
                  | None -> mod_name
                in
                sweep2 name s
              | None -> ())
            mbs
        | _ -> ())
      s.str_items
  in
  sweep2 file_mod str;
  (* a declared checked boundary waives L11 for the whole file *)
  let l11 = if !boundary = None then out.o_l11 else [] in
  (List.rev out.o_l10, List.rev l11)

(* ------------------------------------------------------------------ *)
(* Fixpoint over the call graph                                        *)

let query_surface =
  [ "contains"; "contains_codes"; "find_first"; "first_occurrence";
    "occurrences"; "end_nodes"; "end_nodes_binary"; "occurrences_batch";
    "occurrences_many"; "encode"; "matching_statistics";
    "maximal_matches"; "label_maxima"; "rib_distribution"; "edge_counts";
    "link_histogram"; "run_batch"; "cursor"; "space"; "alphabet";
    "length"; "node_count"; "profiled" ]

let resolve t c =
  match c.cl_callee with
  | Exact (m, name) ->
    (match Hashtbl.find_opt t.by_name name with
    | None -> []
    | Some r ->
      List.filter (fun s -> s.s_mod = m || s.s_file_mod = m) !r)
  | By_name name -> (
    (* devirtualisation by basename over-approximates badly when two
       unrelated functions share a name (e.g. every [create]); the
       syntactic-arity filter keeps only candidates a fully-applied
       call site could actually mean *)
    match Hashtbl.find_opt t.by_name name with
    | None -> []
    | Some r -> List.filter (fun s -> s.s_nparams = c.cl_nargs) !r)

let push_frame fr e =
  let cap l = if List.length l >= 8 then l else fr :: l in
  match e with
  | Eglobal x -> Eglobal { x with chain = cap x.chain }
  | Eparam x -> Eparam { x with chain = cap x.chain }
  | Eopaque x -> Eopaque { x with chain = cap x.chain }
  | Ecallsparam x -> Ecallsparam { x with chain = cap x.chain }

(* map a callee-relative effect through the argument roots at one call
   site; [None] means the effect dies here (hit a local) *)
let remap args fr e =
  let arg i = if i < Array.length args then Some args.(i) else None in
  match e with
  | Eglobal _ | Eopaque _ -> Some (push_frame fr e)
  | Eparam ({ index; _ } as x) -> (
    match arg index with
    | Some (Rglobal path) ->
      Some (push_frame fr (Eglobal { path; desc = x.desc; chain = x.chain }))
    | Some (Rparam j) ->
      Some (push_frame fr (Eparam { x with index = j }))
    | Some Ropaque ->
      Some (push_frame fr (Eopaque { desc = x.desc; chain = x.chain }))
    | Some Rlocal | None -> None)
  | Ecallsparam ({ index; _ } as x) -> (
    match arg index with
    | Some (Rparam j) ->
      Some (push_frame fr (Ecallsparam { x with index = j }))
    | _ -> None (* a locally defined callback was walked at its site *))

let fixpoint t =
  let changed = ref true in
  let iters = ref 0 in
  while !changed && !iters < 64 do
    changed := false;
    incr iters;
    List.iter
      (fun s ->
        if s.s_annotated <> None then begin
          let n =
            Printf.sprintf "[@spine.domain_safe] on %s.%s" s.s_file_mod
              s.s_name
          in
          if not (List.mem n s.s_notes) then begin
            s.s_notes <- n :: s.s_notes;
            changed := true
          end
        end
        else if s.s_self_locks then begin
          let n =
            Printf.sprintf "Mutex held inside %s.%s" s.s_file_mod s.s_name
          in
          if not (List.mem n s.s_notes) then begin
            s.s_notes <- n :: s.s_notes;
            changed := true
          end
        end
        else begin
          let acc = Hashtbl.create 8 in
          List.iter (fun e -> Hashtbl.replace acc (eff_key e) e) s.s_esc;
          let before = Hashtbl.length acc in
          List.iter
            (fun e ->
              if not (Hashtbl.mem acc (eff_key e)) then
                Hashtbl.replace acc (eff_key e) e)
            s.s_own;
          let notes = ref s.s_notes in
          let add_note n = if not (List.mem n !notes) then notes := n :: !notes in
          List.iter add_note s.s_own_notes;
          List.iter
            (fun c ->
              List.iter
                (fun callee ->
                  List.iter add_note callee.s_notes;
                  List.iter
                    (fun e ->
                      match remap c.cl_args c.cl_frame e with
                      | None -> ()
                      | Some e ->
                        if not (Hashtbl.mem acc (eff_key e)) then
                          Hashtbl.replace acc (eff_key e) e)
                    callee.s_esc)
                (resolve t c))
            s.s_calls;
          if
            Hashtbl.length acc <> before
            || List.length !notes <> List.length s.s_notes
          then begin
            s.s_esc <- Hashtbl.fold (fun _ e l -> e :: l) acc [];
            s.s_notes <- !notes;
            changed := true
          end
        end)
      t.summaries
  done

(* ------------------------------------------------------------------ *)
(* Findings and certification                                          *)

type l9 = {
  l9_file : string;
  l9_line : int;
  l9_col : int;
  l9_msg : string;
}

type cert_row = {
  cm_module : string;
  cm_verdict : string;
  cm_witness : string;
}

let frame_to_string fr =
  Printf.sprintf "%s (%s:%d)" fr.fr_fn fr.fr_file fr.fr_line

let chain_to_string chain =
  String.concat " -> " (List.map frame_to_string chain)

let eff_desc = function
  | Eglobal { desc; _ } -> desc
  | Eparam { index; desc; _ } ->
    Printf.sprintf "%s (mutates the shared store argument %d)" desc index
  | Eopaque { desc; _ } -> desc
  | Ecallsparam _ -> "calls a caller-supplied callback"

let eff_site e =
  match List.rev (eff_chain e) with
  | fr :: _ -> (fr.fr_file, fr.fr_line)
  | [] -> ("", 0)

let finalize t ~roots_in =
  fixpoint t;
  let roots =
    List.filter
      (fun s -> List.mem s.s_name query_surface && roots_in s.s_file)
      t.summaries
  in
  (* L9: one finding per distinct write site, first witness wins *)
  let findings = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun root ->
      List.iter
        (fun e ->
          match e with
          | Ecallsparam _ -> () (* the caller's callback, their risk *)
          | _ ->
            let file, line = eff_site e in
            let key = Printf.sprintf "%s:%d:%s" file line (eff_desc e) in
            if not (Hashtbl.mem findings key) then begin
              let msg =
                Printf.sprintf
                  "%s escapes the query surface: reachable from query \
                   root %s.%s via %s; a store shared across domains \
                   would race here (guard with Mutex/Atomic, keep the \
                   state per-domain, or annotate the binding \
                   [@spine.domain_safe \"reason\"])"
                  (eff_desc e) root.s_file_mod root.s_name
                  (chain_to_string (eff_chain e))
              in
              Hashtbl.replace findings key
                { l9_file = file; l9_line = line; l9_col = 0; l9_msg = msg };
              order := key :: !order
            end)
        root.s_esc)
    roots;
  let l9s =
    List.rev_map (fun k -> Hashtbl.find findings k) !order
  in
  (* certification table: one row per source-file module that exposes
     query-surface roots *)
  let mods = Hashtbl.create 8 in
  let mod_order = ref [] in
  List.iter
    (fun root ->
      let rs =
        match Hashtbl.find_opt mods root.s_file_mod with
        | Some rs -> rs
        | None ->
          mod_order := root.s_file_mod :: !mod_order;
          let rs = ref [] in
          Hashtbl.replace mods root.s_file_mod rs;
          rs
      in
      rs := root :: !rs)
    roots;
  let rows =
    List.rev_map
      (fun m ->
        let rs = !(Hashtbl.find mods m) in
        let escaping =
          List.concat_map
            (fun r ->
              List.filter
                (function Ecallsparam _ -> false | _ -> true)
                r.s_esc)
            rs
        in
        let notes =
          List.sort_uniq String.compare (List.concat_map (fun r -> r.s_notes) rs)
        in
        match escaping with
        | e :: _ ->
          {
            cm_module = m;
            cm_verdict = "UNSAFE";
            cm_witness =
              Printf.sprintf "%s via %s" (eff_desc e)
                (chain_to_string (eff_chain e));
          }
        | [] ->
          let ann =
            List.find_opt
              (fun n ->
                String.length n >= 6 && String.sub n 0 6 = "[@spin")
              notes
          in
          let grd =
            List.find_opt
              (fun n ->
                String.length n >= 5 && String.sub n 0 5 = "Mutex"
                || String.length n >= 5 && String.sub n 0 5 = "mutex")
              notes
          in
          match (ann, grd) with
          | Some w, _ ->
            { cm_module = m; cm_verdict = "certified (annotated)";
              cm_witness = w }
          | None, Some w ->
            { cm_module = m; cm_verdict = "certified (guarded)";
              cm_witness = w }
          | None, None ->
            { cm_module = m; cm_verdict = "certified";
              cm_witness = "all reachable writes are call-local" })
      !mod_order
  in
  (l9s, List.sort (fun a b -> String.compare a.cm_module b.cm_module) rows)
