(** Interprocedural domain-safety analysis (rules L9/L10/L11).

    Operates on the same [.cmt] typed ASTs as the per-file rules in
    {!Lint}.  {!scan_file} is called once per compiled module inside
    the driver's cmt loop: it returns the file-local findings
    (module-level mutable values for L10, unchecked [unsafe_*]
    accesses for L11) and accumulates a per-function summary of writes
    and calls into the shared {!t}.  After every file has been
    scanned, {!finalize} runs a fixpoint over the summaries and
    reports every write that escapes from the engine's query surface
    (L9), together with a per-module certification table.

    Writes through [Atomic], [Domain.DLS], under a directly-held
    [Mutex] (including closures passed to a same-file function that
    takes one, e.g. a [locked t f] helper) and inside bindings
    annotated [@spine.domain_safe "reason"] are absorbed; files
    carrying [@@@spine.checked_boundary "reason"] waive L11.

    The analysis is deliberately approximate; the approximations and
    their rationale are documented in docs/STATIC_ANALYSIS.md. *)

type mutability =
  | Immutable
  | Mutable of string  (** the mutable constituent, e.g. ["ref cell"] *)
  | Guarded of string  (** shareable by construction: Atomic/Mutex/DLS *)
  | Unknown            (** abstract type; not judged *)

val classify_type : Env.t -> Types.type_expr -> mutability
(** Type-level mutability, seen through [Envaux]-rebuilt environments:
    aliases and manifests are expanded, record/variant declarations
    are looked through (depth-limited), [mutable] fields, [ref],
    [array], [bytes], [Hashtbl.t]-likes and the repo's own mutable
    abstract types ([Xutil.Int_vec.t], ...) classify as [Mutable];
    [Atomic.t]/[Mutex.t]/[Domain.DLS.key] as [Guarded]. *)

val mutability_to_string : mutability -> string

type t
(** Accumulated function summaries across scanned files. *)

val create : unit -> t

type site = { st_line : int; st_col : int; st_msg : string }

val scan_file :
  t -> source:string -> Typedtree.structure -> site list * site list
(** [scan_file t ~source str] walks one compiled module.  Returns
    [(l10, l11)]: the module-level mutable-value sites and the
    unchecked unsafe-access sites of this file (both empty when the
    relevant waiver attribute is present).  Call under the same
    [Load_path]/[Envaux] setup as the other rules so type expansion
    can see the .cmi files this module was compiled against. *)

type l9 = {
  l9_file : string;
  l9_line : int;
  l9_col : int;
  l9_msg : string;
}

type cert_row = {
  cm_module : string;   (** source-file module exposing query roots *)
  cm_verdict : string;  (** ["certified"], ["certified (guarded)"],
                            ["certified (annotated)"] or ["UNSAFE"] *)
  cm_witness : string;  (** why: escape chain or absorption site *)
}

val finalize : t -> roots_in:(string -> bool) -> l9 list * cert_row list
(** Run the call-graph fixpoint and report.  [roots_in] selects which
    scanned files may contribute query-surface roots (the driver
    passes the [lib/spine/] prefix check, or everything for fixture
    trees).  L9 findings are deduplicated by write site; the first
    witness chain encountered is kept. *)

val query_surface : string list
(** Basenames of the read operations treated as analysis roots
    ([occurrences], [contains], [matching_statistics], ...). *)
