(** Structured query log: an opt-in, append-only JSONL record of every
    Engine request the process serves.

    Enabled by pointing [SPINE_QLOG] at a file path (or calling
    {!set_path}); with no path every {!emit} is a no-op.  Each record is
    one JSON line:

    {v
    {"qlog":1,"seq":0,"offset_ns":0,"op":"single","backend":"disk",
     "patterns":["acgt"],"pattern_len":4,"pattern_hash":"<16 hex>",
     "hits":1,"found":3,"latency_ns":48211,"costs":{...}}
    v}

    where [seq] is the per-sink sequence number, [offset_ns] the
    monotonic arrival offset from the sink's first record, [op] one of
    ["single"]/["batch"]/["cursor"], [hits] the number of patterns with
    at least one occurrence, [found] the total occurrences reported,
    [pattern_hash] the FNV-1a 64-bit hash of the patterns, and [costs]
    the {!Profile.fields} of the request's execution profile.

    The log is size-capped: when appending a record would push the file
    past the cap ([SPINE_QLOG_MAX_BYTES], default 16 MiB, or
    {!set_max_bytes}), the current file is rotated to [path ^ ".1"]
    (replacing any previous rotation) and a fresh file is started.

    The sink is process-global and mutex-guarded: concurrent domains
    interleave whole records, never bytes.  [spine replay] re-drives a
    recorded log through the workload runner ({!Replay}). *)

type record = {
  q_seq : int;
  q_offset_ns : int;       (** monotonic offset from the log's start *)
  q_op : string;           (** "single" | "batch" | "cursor" *)
  q_backend : string;
  q_patterns : string list;
  q_hits : int;            (** patterns with >= 1 occurrence *)
  q_found : int;           (** total occurrences reported *)
  q_latency_ns : int;
  q_costs : (string * int) list;  (** {!Profile.fields} of the request *)
}

val active : unit -> bool
(** Whether a sink path is configured (via [SPINE_QLOG] or
    {!set_path}). *)

val set_path : string option -> unit
(** Redirect the sink: closes any open log file, resets the sequence
    number and arrival clock, and starts logging to the new path
    ([None] disables logging).  Appends if the file exists. *)

val set_max_bytes : int -> unit
(** Override the rotation cap (bytes, must be positive; silently
    ignored otherwise). *)

val emit :
  op:string ->
  backend:string ->
  patterns:string list ->
  hits:int ->
  found:int ->
  latency_ns:int ->
  costs:Profile.t ->
  unit
(** Append one record (no-op when inactive).  Flushes per record so a
    crashed process loses at most the record being written. *)

val read_file : path:string -> (record list, string) result
(** Parse a qlog file back into records, in file order.  [Error]
    describes the first malformed line (bad JSON, wrong [qlog] version,
    missing field) with its line number; blank lines are skipped. *)
