(* Append-only JSONL query log (see qlog.mli).  One process-global,
   mutex-guarded sink: the hot path takes the lock only when a path is
   configured, and emission is one formatted line + flush — cheap
   relative to any query worth logging. *)

let c_requests = Telemetry.counter "qlog.requests"
let c_rotations = Telemetry.counter "qlog.rotations"

let default_max_bytes = 16 * 1024 * 1024

type sink = {
  mutable sk_path : string option;
  mutable sk_max_bytes : int;
  mutable sk_oc : out_channel option;
  mutable sk_bytes : int;
  mutable sk_seq : int;
  mutable sk_t0 : int option;  (* monotonic ns of the first record *)
}

let sink =
  { sk_path = Sys.getenv_opt "SPINE_QLOG";
    sk_max_bytes =
      (match Sys.getenv_opt "SPINE_QLOG_MAX_BYTES" with
      | Some s ->
        (match int_of_string_opt s with
        | Some n when n > 0 -> n
        | _ -> default_max_bytes)
      | None -> default_max_bytes);
    sk_oc = None;
    sk_bytes = 0;
    sk_seq = 0;
    sk_t0 = None }

let lock = Mutex.create ()

let active () = Mutex.protect lock (fun () -> sink.sk_path <> None)

let close_locked () =
  match sink.sk_oc with
  | None -> ()
  | Some oc ->
    sink.sk_oc <- None;
    close_out_noerr oc

let set_path p =
  Mutex.protect lock (fun () ->
      close_locked ();
      sink.sk_path <- p;
      sink.sk_bytes <- 0;
      sink.sk_seq <- 0;
      sink.sk_t0 <- None)

let set_max_bytes n =
  Mutex.protect lock (fun () -> if n > 0 then sink.sk_max_bytes <- n)

let open_locked path =
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path
  in
  sink.sk_oc <- Some oc;
  sink.sk_bytes <- out_channel_length oc;
  oc

let rotate_locked path =
  close_locked ();
  (* one rotation generation is enough for a cap, and it keeps the
     on-disk footprint bounded at 2 * max_bytes *)
  (try Sys.rename path (path ^ ".1") with Sys_error _ -> ());
  sink.sk_bytes <- 0;
  Telemetry.incr c_rotations

(* --- record rendering --- *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* FNV-1a 64-bit over the patterns (0x1f between patterns so ["ab";"c"]
   and ["a";"bc"] differ).  Int64 throughout: the offset basis exceeds
   OCaml's native 63-bit int literal range. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let hash_patterns pats =
  let h = ref fnv_offset in
  let mix byte =
    h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) fnv_prime
  in
  List.iter
    (fun s ->
      String.iter (fun c -> mix (Char.code c)) s;
      mix 0x1f)
    pats;
  Printf.sprintf "%016Lx" !h

let render ~seq ~offset_ns ~op ~backend ~patterns ~hits ~found ~latency_ns
    ~costs =
  let pats =
    String.concat ","
      (List.map (fun p -> Printf.sprintf "\"%s\"" (json_escape p)) patterns)
  in
  let pattern_len =
    List.fold_left (fun acc p -> acc + String.length p) 0 patterns
  in
  let cost_fields =
    String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\":%d" k v)
         (Profile.fields costs))
  in
  Printf.sprintf
    "{\"qlog\":1,\"seq\":%d,\"offset_ns\":%d,\"op\":\"%s\",\
     \"backend\":\"%s\",\"patterns\":[%s],\"pattern_len\":%d,\
     \"pattern_hash\":\"%s\",\"hits\":%d,\"found\":%d,\
     \"latency_ns\":%d,\"costs\":{%s}}"
    seq offset_ns (json_escape op) (json_escape backend) pats pattern_len
    (hash_patterns patterns) hits found latency_ns cost_fields

let emit ~op ~backend ~patterns ~hits ~found ~latency_ns ~costs =
  Mutex.protect lock (fun () ->
      match sink.sk_path with
      | None -> ()
      | Some path ->
        let now = Xutil.Stopwatch.now_ns () in
        let t0 =
          match sink.sk_t0 with
          | Some t0 -> t0
          | None ->
            sink.sk_t0 <- Some now;
            now
        in
        let line =
          render ~seq:sink.sk_seq ~offset_ns:(now - t0) ~op ~backend
            ~patterns ~hits ~found ~latency_ns ~costs
        in
        sink.sk_seq <- sink.sk_seq + 1;
        let len = String.length line + 1 in
        if sink.sk_oc <> None && sink.sk_bytes > 0
           && sink.sk_bytes + len > sink.sk_max_bytes
        then rotate_locked path;
        let oc =
          match sink.sk_oc with Some oc -> oc | None -> open_locked path
        in
        output_string oc line;
        output_char oc '\n';
        flush oc;
        sink.sk_bytes <- sink.sk_bytes + len;
        Telemetry.incr c_requests)

(* --- reading a log back --- *)

type record = {
  q_seq : int;
  q_offset_ns : int;
  q_op : string;
  q_backend : string;
  q_patterns : string list;
  q_hits : int;
  q_found : int;
  q_latency_ns : int;
  q_costs : (string * int) list;
}

let parse_record j =
  let module J = Bench_gate.Json in
  let int_mem k =
    match J.member k j with
    | Some (J.Num f) -> Ok (int_of_float f)
    | _ -> Error (Printf.sprintf "missing numeric field %S" k)
  in
  let str_mem k =
    match J.member k j with
    | Some (J.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "missing string field %S" k)
  in
  let ( let* ) = Result.bind in
  let* v = int_mem "qlog" in
  if v <> 1 then Error (Printf.sprintf "unsupported qlog version %d" v)
  else
    let* q_seq = int_mem "seq" in
    let* q_offset_ns = int_mem "offset_ns" in
    let* q_op = str_mem "op" in
    let* q_backend = str_mem "backend" in
    let* q_patterns =
      match J.member "patterns" j with
      | Some (J.List items) ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            match item with
            | J.Str s -> Ok (s :: acc)
            | _ -> Error "non-string pattern")
          (Ok []) items
        |> Result.map List.rev
      | _ -> Error "missing \"patterns\" array"
    in
    let* q_hits = int_mem "hits" in
    let* q_found = int_mem "found" in
    let* q_latency_ns = int_mem "latency_ns" in
    let* q_costs =
      match J.member "costs" j with
      | Some (J.Obj kvs) ->
        List.fold_left
          (fun acc (k, v) ->
            let* acc = acc in
            match v with
            | J.Num f -> Ok ((k, int_of_float f) :: acc)
            | _ -> Error (Printf.sprintf "non-numeric cost %S" k))
          (Ok []) kvs
        |> Result.map List.rev
      | _ -> Error "missing \"costs\" object"
    in
    Ok { q_seq; q_offset_ns; q_op; q_backend; q_patterns; q_hits; q_found;
         q_latency_ns; q_costs }

let read_file ~path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go lineno acc =
          match input_line ic with
          | exception End_of_file -> Ok (List.rev acc)
          | "" -> go (lineno + 1) acc
          | line -> (
            match Bench_gate.Json.parse line with
            | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
            | Ok j -> (
              match parse_record j with
              | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
              | Ok r -> go (lineno + 1) (r :: acc)))
        in
        go 1 [])
