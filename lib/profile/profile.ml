(* Per-operation cost profiles (see profile.mli).  The ambient profile
   lives in a Domain.DLS slot: a bump is one DLS read plus one mutable
   field store when a profile is active, and one DLS read plus a match
   when not — cheap enough that the search/matcher/cursor inner loops
   stay instrumented permanently, like the telemetry counters they
   mirror. *)

(* Process-global rollups of everything captured per query, so the
   Prometheus exposition carries attributed totals next to the raw
   pool.*/search.* aggregates. *)
let c_queries = Telemetry.counter "profile.queries"
let c_steps_total = Telemetry.counter "profile.steps_total"
let c_scan_nodes = Telemetry.counter "profile.scan_nodes"
let c_pool_misses = Telemetry.counter "profile.pool_misses"
let c_read_bytes = Telemetry.counter "profile.device_read_bytes"
let c_write_bytes = Telemetry.counter "profile.device_write_bytes"
let h_wall = Telemetry.histogram "profile.wall_ns"

type t = {
  mutable vertebra_steps : int;
  mutable rib_steps : int;
  mutable extrib_steps : int;
  mutable link_steps : int;
  mutable descent_depth : int;
  mutable scan_nodes : int;
  mutable found : int;
  mutable word_steps : int;
  mutable scalar_steps : int;
  mutable pool_hits : int;
  mutable pool_misses : int;
  mutable pool_evictions : int;
  mutable device_read_bytes : int;
  mutable device_write_bytes : int;
  mutable io_retries : int;
  mutable injected_delay_ns : int;
  mutable alloc_bytes : int;
  mutable wall_ns : int;
}

let make () =
  { vertebra_steps = 0; rib_steps = 0; extrib_steps = 0; link_steps = 0;
    descent_depth = 0; scan_nodes = 0; found = 0;
    word_steps = 0; scalar_steps = 0;
    pool_hits = 0; pool_misses = 0; pool_evictions = 0;
    device_read_bytes = 0; device_write_bytes = 0;
    io_retries = 0; injected_delay_ns = 0;
    alloc_bytes = 0; wall_ns = 0 }

(* The ambient profile of the calling domain; [None] outside any
   [profiled] scope. *)
let slot : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let active () = !(Domain.DLS.get slot) <> None

let step_vertebra () =
  match !(Domain.DLS.get slot) with
  | None -> ()
  | Some p -> p.vertebra_steps <- p.vertebra_steps + 1

let step_rib () =
  match !(Domain.DLS.get slot) with
  | None -> ()
  | Some p -> p.rib_steps <- p.rib_steps + 1

let step_extrib () =
  match !(Domain.DLS.get slot) with
  | None -> ()
  | Some p -> p.extrib_steps <- p.extrib_steps + 1

let step_link () =
  match !(Domain.DLS.get slot) with
  | None -> ()
  | Some p -> p.link_steps <- p.link_steps + 1

let add_descent n =
  match !(Domain.DLS.get slot) with
  | None -> ()
  | Some p -> p.descent_depth <- p.descent_depth + n

let add_scan n =
  match !(Domain.DLS.get slot) with
  | None -> ()
  | Some p -> p.scan_nodes <- p.scan_nodes + n

let add_found n =
  match !(Domain.DLS.get slot) with
  | None -> ()
  | Some p -> p.found <- p.found + n

(* Bulk adders for the word-packed scan paths: one whole-word compare
   extends the match by up to [codes_per_word] characters, so the
   vertebra count is bumped by the run length in one store and the
   word/scalar split is recorded alongside. *)
let add_vertebras n =
  match !(Domain.DLS.get slot) with
  | None -> ()
  | Some p -> p.vertebra_steps <- p.vertebra_steps + n

let add_word_steps n =
  match !(Domain.DLS.get slot) with
  | None -> ()
  | Some p -> p.word_steps <- p.word_steps + n

let add_scalar_steps n =
  match !(Domain.DLS.get slot) with
  | None -> ()
  | Some p -> p.scalar_steps <- p.scalar_steps + n

let total_steps p =
  p.vertebra_steps + p.rib_steps + p.extrib_steps + p.link_steps

let profiled f =
  let p = make () in
  let att = Pagestore.Buffer_pool.fresh_attribution () in
  let r = Domain.DLS.get slot in
  let prev = !r in
  r := Some p;
  let alloc0 = Gc.allocated_bytes () in
  let t0 = Xutil.Stopwatch.now_ns () in
  let finish () =
    p.wall_ns <- Xutil.Stopwatch.now_ns () - t0;
    p.alloc_bytes <-
      int_of_float (Float.max 0.0 (Gc.allocated_bytes () -. alloc0));
    p.pool_hits <- p.pool_hits + att.Pagestore.Buffer_pool.at_hits;
    p.pool_misses <- p.pool_misses + att.Pagestore.Buffer_pool.at_misses;
    p.pool_evictions <-
      p.pool_evictions + att.Pagestore.Buffer_pool.at_evictions;
    p.device_read_bytes <-
      p.device_read_bytes + att.Pagestore.Buffer_pool.at_read_bytes;
    p.device_write_bytes <-
      p.device_write_bytes + att.Pagestore.Buffer_pool.at_write_bytes;
    p.io_retries <- p.io_retries + att.Pagestore.Buffer_pool.at_io_retries;
    p.injected_delay_ns <-
      p.injected_delay_ns + att.Pagestore.Buffer_pool.at_injected_delay_ns;
    r := prev
  in
  match Pagestore.Buffer_pool.with_attribution att f with
  | res ->
    finish ();
    Telemetry.incr c_queries;
    Telemetry.add c_steps_total (total_steps p);
    Telemetry.add c_scan_nodes p.scan_nodes;
    Telemetry.add c_pool_misses p.pool_misses;
    Telemetry.add c_read_bytes p.device_read_bytes;
    Telemetry.add c_write_bytes p.device_write_bytes;
    Telemetry.observe h_wall p.wall_ns;
    (res, p)
  | exception e ->
    finish ();
    raise e

let absorb dst src =
  dst.vertebra_steps <- dst.vertebra_steps + src.vertebra_steps;
  dst.rib_steps <- dst.rib_steps + src.rib_steps;
  dst.extrib_steps <- dst.extrib_steps + src.extrib_steps;
  dst.link_steps <- dst.link_steps + src.link_steps;
  dst.descent_depth <- dst.descent_depth + src.descent_depth;
  dst.scan_nodes <- dst.scan_nodes + src.scan_nodes;
  dst.found <- dst.found + src.found;
  dst.word_steps <- dst.word_steps + src.word_steps;
  dst.scalar_steps <- dst.scalar_steps + src.scalar_steps;
  dst.pool_hits <- dst.pool_hits + src.pool_hits;
  dst.pool_misses <- dst.pool_misses + src.pool_misses;
  dst.pool_evictions <- dst.pool_evictions + src.pool_evictions;
  dst.device_read_bytes <- dst.device_read_bytes + src.device_read_bytes;
  dst.device_write_bytes <- dst.device_write_bytes + src.device_write_bytes;
  dst.io_retries <- dst.io_retries + src.io_retries;
  dst.injected_delay_ns <- dst.injected_delay_ns + src.injected_delay_ns;
  dst.alloc_bytes <- dst.alloc_bytes + src.alloc_bytes;
  dst.wall_ns <- dst.wall_ns + src.wall_ns

(* Field-list views: the serialization surface for the qlog record, the
   explain reports and the replay comparison.  [fields] is the schema —
   order is part of the qlog record grammar (docs/OBSERVABILITY.md). *)

let fields p =
  [ ("vertebra_steps", p.vertebra_steps);
    ("rib_steps", p.rib_steps);
    ("extrib_steps", p.extrib_steps);
    ("link_steps", p.link_steps);
    ("descent_depth", p.descent_depth);
    ("scan_nodes", p.scan_nodes);
    ("found", p.found);
    ("word_steps", p.word_steps);
    ("scalar_steps", p.scalar_steps);
    ("pool_hits", p.pool_hits);
    ("pool_misses", p.pool_misses);
    ("pool_evictions", p.pool_evictions);
    ("device_read_bytes", p.device_read_bytes);
    ("device_write_bytes", p.device_write_bytes);
    ("io_retries", p.io_retries);
    ("injected_delay_ns", p.injected_delay_ns);
    ("alloc_bytes", p.alloc_bytes);
    ("wall_ns", p.wall_ns) ]

(* The subset that is deterministic for a fixed (engine state, request
   stream) — what the replay gate compares.  Excludes alloc_bytes
   (GC-dependent), wall_ns (timing), and the resilience pair
   io_retries / injected_delay_ns (functions of the armed fault and
   latency plans, not of the request stream). *)
let deterministic_fields p =
  List.filter
    (fun (k, _) ->
      k <> "alloc_bytes" && k <> "wall_ns" && k <> "io_retries"
      && k <> "injected_delay_ns")
    (fields p)

let of_fields l =
  let g k = Option.value ~default:0 (List.assoc_opt k l) in
  { vertebra_steps = g "vertebra_steps";
    rib_steps = g "rib_steps";
    extrib_steps = g "extrib_steps";
    link_steps = g "link_steps";
    descent_depth = g "descent_depth";
    scan_nodes = g "scan_nodes";
    found = g "found";
    word_steps = g "word_steps";
    scalar_steps = g "scalar_steps";
    pool_hits = g "pool_hits";
    pool_misses = g "pool_misses";
    pool_evictions = g "pool_evictions";
    device_read_bytes = g "device_read_bytes";
    device_write_bytes = g "device_write_bytes";
    io_retries = g "io_retries";
    injected_delay_ns = g "injected_delay_ns";
    alloc_bytes = g "alloc_bytes";
    wall_ns = g "wall_ns" }
