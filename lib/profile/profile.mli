(** Per-operation execution profiles.

    Everything the observability stack measured before this module was
    a process-global aggregate: the telemetry counters can say the
    process did 40k rib steps and 900 page faults, not {e which query}
    cost what.  A {!t} is the per-query answer: the traversal work by
    edge family, the backbone descent depth and occurrence-scan length,
    the buffer-pool and device traffic the query caused (attributed
    through {!Pagestore.Buffer_pool.with_attribution}, not recovered
    from global counter diffs), plus allocation and wall time.

    The ambient profile is a {!Domain.DLS} slot.  The instrumented hot
    paths ({!Spine.Search}, {!Spine.Matcher}, {!Spine.Cursor}, the
    buffer pool) bump whatever profile is active on their domain; with
    no active profile a bump is a DLS read and a match — cheap enough
    to stay on permanently.  Scopes nest by {e shadowing}: a nested
    {!profiled} captures its own costs and the outer profile does not
    include them.

    Completed profiles also feed process-global [profile.*] telemetry
    rollups ([profile.queries], [profile.steps_total],
    [profile.scan_nodes], [profile.pool_misses],
    [profile.device_read_bytes], [profile.device_write_bytes],
    [profile.wall_ns]) so attributed totals ride the Prometheus
    exposition next to the raw aggregates. *)

type t = {
  mutable vertebra_steps : int;  (** backbone edges followed *)
  mutable rib_steps : int;       (** rib edges taken *)
  mutable extrib_steps : int;    (** extrib-chain entries chased *)
  mutable link_steps : int;      (** backward links followed *)
  mutable descent_depth : int;
      (** characters descended along valid paths (the forward walk
          depth reached, summed over walks) *)
  mutable scan_nodes : int;
      (** backbone nodes visited by the target-node-buffer scans *)
  mutable found : int;           (** occurrences reported *)
  mutable word_steps : int;
      (** whole-word packed comparisons on the scan paths (each covers
          up to [Packed_seq.codes_per_word] characters) *)
  mutable scalar_steps : int;
      (** per-character fallback comparisons (span tails, mixed-width
          rows) *)
  mutable pool_hits : int;
  mutable pool_misses : int;     (** page faults this query caused *)
  mutable pool_evictions : int;
  mutable device_read_bytes : int;
  mutable device_write_bytes : int;
  mutable io_retries : int;
      (** transient-I/O retry passes the buffer pool paid for this
          query (injected or real) *)
  mutable injected_delay_ns : int;
      (** device latency the injector ({!Pagestore.Latency_device})
          charged to this query *)
  mutable alloc_bytes : int;     (** via [Gc.allocated_bytes] deltas *)
  mutable wall_ns : int;
}

val make : unit -> t
(** An all-zero profile (not installed anywhere). *)

val profiled : (unit -> 'a) -> 'a * t
(** [profiled f] runs [f] with a fresh profile installed as the calling
    domain's ambient profile and a fresh buffer-pool attribution sink
    installed for its dynamic extent, and returns [f]'s result with the
    completed profile.  The previous ambient profile (if any) is
    restored afterwards, also on exceptions; on the exception path the
    partial profile is discarded.  {!Spine.Engine.profiled} is the
    guarded entry point queries should use. *)

val active : unit -> bool
(** Whether the calling domain currently has an ambient profile. *)

(** {2 Instrumentation bumps}

    Called by the traversal hot paths, exactly once per corresponding
    global-telemetry increment so per-query sums reconcile with the
    global deltas.  No-ops when no profile is active. *)

val step_vertebra : unit -> unit
val step_rib : unit -> unit
val step_extrib : unit -> unit
val step_link : unit -> unit
val add_descent : int -> unit
val add_scan : int -> unit
val add_found : int -> unit

val add_vertebras : int -> unit
(** Bulk vertebra bump: a word-compare run of [n] matched characters
    counts exactly as [n] single {!step_vertebra} calls, so profiles
    stay comparable across packed and scalar scan paths. *)

val add_word_steps : int -> unit
val add_scalar_steps : int -> unit

(** {2 Aggregation and (de)serialization} *)

val absorb : t -> t -> unit
(** [absorb dst src] adds every field of [src] into [dst]. *)

val total_steps : t -> int
(** Sum of the four edge-family step counts. *)

val fields : t -> (string * int) list
(** Every field as [(name, value)], in schema order — the profile
    section of the qlog record grammar and the explain JSONL report. *)

val deterministic_fields : t -> (string * int) list
(** {!fields} minus [alloc_bytes], [wall_ns], [io_retries] and
    [injected_delay_ns]: the counters that are deterministic for a
    fixed engine state and request stream (the excluded four depend on
    GC, timing, or the armed fault/latency plans), which is what the
    replay regression gate compares. *)

val of_fields : (string * int) list -> t
(** Rebuild a profile from {!fields} output; missing keys are zero. *)
