(** Table 6 — number of nodes checked while matching (in thousands).
    This is the mechanism behind Table 5: a SPINE link dispatches a
    whole set of suffixes per check, a suffix link one suffix per
    check. *)

let pairs = [ ("CEL", "ECO"); ("HC21", "ECO"); ("HC21", "CEL") ]

let paper = [ (3515, 2119); (3514, 2163); (15077, 8701) ]

let corpus name = Bioseq.Corpus.find_exn name

let run (cfg : Config.t) =
  let rows =
    List.map2
      (fun (dname, qname) (p_st, p_spine) ->
        let data = Data.load ~scale:cfg.Config.scale (corpus dname) in
        let query =
          Data.homologous_query ~scale:cfg.Config.scale
            ~data_corpus:(corpus dname) (corpus qname)
        in
        let spine_idx = Spine.Compact.of_seq data in
        let st = Suffix_tree.build data in
        let _, spine_stats =
          Spine.Compact.maximal_matches spine_idx
            ~threshold:cfg.Config.threshold query
        in
        let _, st_stats =
          Suffix_tree.maximal_matches st ~threshold:cfg.Config.threshold query
        in
        [ dname; qname;
          Report.Table.fmt_int (st_stats.Suffix_tree.nodes_checked / 1000);
          Report.Table.fmt_int (spine_stats.Spine.Compact.nodes_checked / 1000);
          Report.Table.fmt_int (st_stats.Suffix_tree.suffixes_checked / 1000);
          Report.Table.fmt_int
            (spine_stats.Spine.Compact.suffixes_checked / 1000);
          Printf.sprintf "%d/%d" p_st p_spine ])
      pairs paper
  in
  Report.Table.print
    ~title:
      (Printf.sprintf "Table 6: Nodes checked during matching, in 1000s \
                       (scale %g)" cfg.Config.scale)
    ~headers:
      [ "Data"; "Query"; "ST nodes"; "SPINE nodes"; "ST suffixes";
        "SPINE suffixes"; "Paper ST/SPINE" ]
    rows
    ~note:
      "Shape check: SPINE checks substantially fewer nodes and far \
       fewer suffix candidates (set-basis processing, Section 4.1)."
