(** Ablations of the design choices DESIGN.md calls out. *)

(* Buffering policy (Section 6.2): the paper reads Figure 8's
   top-skewed link destinations as licensing a very simple strategy —
   "retain as much as possible of the top part of the Link Table in
   memory". The fair comparison is against a buffer manager with no
   recency tracking (FIFO): static pinning of the top of the LT should
   recover most of what LRU's recency tracking buys, at no bookkeeping
   cost. Measured on SPINE construction, whose upstream link-chain
   accesses are the traffic Figure 8 characterises. *)
let buffer_policy (cfg : Config.t) =
  let data =
    Data.load ~scale:cfg.Config.disk_scale (Bioseq.Corpus.find_exn "CEL")
  in
  let n = Bioseq.Packed_seq.length data in
  (* a pool well under the Link Table footprint, so upstream accesses
     genuinely contend with the growing tail *)
  let lt_pages = max 1 ((n + 1) * 8 / 4096) in
  let frames = max 16 (lt_pages / 4) in
  let run_with ~replacement ~pin_pages =
    let config =
      { Spine.Disk.default_config with
        Spine.Disk.frames; replacement; pin_top_lt_pages = pin_pages }
    in
    let d = Spine.Disk.build ~config data in
    let pool_stats = Pagestore.Buffer_pool.stats d.Spine.Disk.pool in
    let hits = pool_stats.Pagestore.Buffer_pool.hits in
    let misses = pool_stats.Pagestore.Buffer_pool.misses in
    ( Spine.Disk.simulated_seconds d,
      float_of_int hits /. float_of_int (max 1 (hits + misses)) )
  in
  let row label replacement pin_pages =
    let secs, hit_rate = run_with ~replacement ~pin_pages in
    [ label; Report.Table.fmt_float secs; Report.Table.fmt_pct hit_rate ]
  in
  Report.Table.print
    ~title:
      (Printf.sprintf
         "Ablation: construction buffering policy (CEL, %d frames, \
          scale %g)" frames cfg.Config.disk_scale)
    ~headers:[ "Policy"; "Sim time (s)"; "Pool hit rate" ]
    [ row "FIFO" `Fifo 0
    ; row "FIFO + pin top of LT" `Fifo (frames / 4)
    ; row "LRU" `Lru 0
    ; row "LRU + pin top of LT" `Lru (frames / 4)
    ]
    ~note:
      "Paper: pinning the top of the Link Table is a sufficient simple \
       policy. Against a bookkeeping-free manager (FIFO) the pin \
       recovers most of LRU's advantage; LRU itself already exploits \
       the same Figure 8 skew dynamically."

(* Node layout (Section 5): the packed LT/RT layout vs the naive
   hashtable-of-records store, on construction time, search time, and
   space. *)
let layout (cfg : Config.t) =
  let seq = Data.load ~scale:cfg.Config.scale (Bioseq.Corpus.find_exn "ECO") in
  let query =
    Data.homologous_query ~scale:cfg.Config.scale
      ~data_corpus:(Bioseq.Corpus.find_exn "ECO")
      (Bioseq.Corpus.find_exn "CEL")
  in
  let n = Bioseq.Packed_seq.length seq in
  let fast_idx, fast_build =
    Xutil.Stopwatch.time (fun () -> Spine.Index.of_seq seq)
  in
  let compact_idx, compact_build =
    Xutil.Stopwatch.time (fun () -> Spine.Compact.of_seq seq)
  in
  let (_, _), fast_search =
    Xutil.Stopwatch.time (fun () ->
        Spine.Index.maximal_matches fast_idx ~threshold:cfg.Config.threshold
          query)
  in
  let (_, _), compact_search =
    Xutil.Stopwatch.time (fun () ->
        Spine.Compact.maximal_matches compact_idx
          ~threshold:cfg.Config.threshold query)
  in
  let fast_bpc = float_of_int (Spine.Index.model_bytes fast_idx) /. float_of_int n in
  Report.Table.print
    ~title:
      (Printf.sprintf "Ablation: node layout (ECO, scale %g)" cfg.Config.scale)
    ~headers:[ "Layout"; "Build (s)"; "Match (s)"; "Bytes/char" ]
    [ [ "hashtable store"; Report.Table.fmt_float fast_build;
        Report.Table.fmt_float fast_search;
        Report.Table.fmt_float fast_bpc ^ " (model)" ]
    ; [ "compact LT/RT (Section 5)"; Report.Table.fmt_float compact_build;
        Report.Table.fmt_float compact_search;
        Report.Table.fmt_float (Spine.Compact.bytes_per_char compact_idx) ]
    ; [ "naive record/node (Table 2)"; "-"; "-";
        Report.Table.fmt_float
          (Spine.Space.naive_node_bytes (Bioseq.Packed_seq.alphabet seq)) ]
    ]
    ~note:
      "The Section 5 layout wins on space without giving up construction \
       or search speed — the paper's 'smaller node sizes improve times \
       too' observation."

(* Occurrence resolution (Section 4): deferred single-scan batching of
   all matches vs an immediate backbone scan per match. *)
let scan (cfg : Config.t) =
  let seq = Data.load ~scale:cfg.Config.scale (Bioseq.Corpus.find_exn "ECO") in
  let query =
    Data.homologous_query ~scale:cfg.Config.scale
      ~data_corpus:(Bioseq.Corpus.find_exn "ECO")
      (Bioseq.Corpus.find_exn "CEL")
  in
  let idx = Spine.Compact.of_seq seq in
  let threshold = max 12 (cfg.Config.threshold - 6) in
  let (m1, _), deferred =
    Xutil.Stopwatch.time (fun () ->
        Spine.Compact.maximal_matches idx ~threshold query)
  in
  let (m2, _), immediate =
    Xutil.Stopwatch.time (fun () ->
        Spine.Compact.maximal_matches ~immediate:true idx ~threshold query)
  in
  assert (List.length m1 = List.length m2);
  Report.Table.print
    ~title:
      (Printf.sprintf
         "Ablation: occurrence resolution (ECO/CEL, %d matches, scale %g)"
         (List.length m1) cfg.Config.scale)
    ~headers:[ "Strategy"; "Match (s)" ]
    [ [ "deferred batched scan (paper)"; Report.Table.fmt_float deferred ]
    ; [ "immediate scan per match"; Report.Table.fmt_float immediate ]
    ]
    ~note:
      "The paper defers occurrence resolution to one final sequential \
       backbone scan shared by all matches; per-match scanning pays one \
       backbone traversal each."

let run cfg =
  buffer_policy cfg;
  layout cfg;
  scan cfg
