(** Table 7 — substring matching with disk-resident indexes.  The
    paper reports SPINE completing the matching operation in about half
    the ST time (speedups of ~50 %) thanks to smaller nodes and higher
    access locality. Both indexes run the same matching workload
    through equal buffer budgets on the synchronous device; the
    reported time is the simulated I/O latency. *)

let pairs =
  [ ("CEL", "ECO"); ("HC21", "ECO"); ("HC21", "CEL"); ("HC19", "HC21") ]

let paper = [ (0.98, 0.47); (0.97, 0.48); (4.30, 2.02); (7.92, 3.87) ]

let run (cfg : Config.t) =
  let rows =
    List.map2
      (fun (dname, qname) (p_st, p_spine) ->
        let data =
          Data.load ~scale:cfg.Config.disk_scale
            (Bioseq.Corpus.find_exn dname)
        in
        let query =
          Data.homologous_query ~scale:cfg.Config.disk_scale
            ~data_corpus:(Bioseq.Corpus.find_exn dname)
            (Bioseq.Corpus.find_exn qname)
        in
        let n = Bioseq.Packed_seq.length data in
        let config =
          { Spine.Disk.default_config with
            Spine.Disk.frames = Exp_fig7.frames_for n }
        in
        let spine = Spine.Disk.build ~config data in
        Spine.Disk.reset_io spine;
        let _ =
          Spine.Compact.maximal_matches spine.Spine.Disk.index
            ~threshold:cfg.Config.threshold query
        in
        let spine_secs = Spine.Disk.simulated_seconds spine in
        let st = Disk_util.build_st_on_disk ~config data in
        Disk_util.reset_io st;
        let _ =
          Suffix_tree.maximal_matches st.Disk_util.tree
            ~trace:st.Disk_util.trace ~threshold:cfg.Config.threshold query
        in
        let st_secs = Disk_util.simulated_seconds st.Disk_util.device in
        [ dname; qname;
          Report.Table.fmt_float st_secs;
          Report.Table.fmt_float spine_secs;
          Report.Table.fmt_pct (1.0 -. (spine_secs /. st_secs));
          Printf.sprintf "%.2f/%.2f h (%.1f%%)" p_st p_spine
            (100.0 *. (1.0 -. (p_spine /. p_st))) ])
      pairs paper
  in
  Report.Table.print
    ~title:
      (Printf.sprintf
         "Table 7: Substring matching on disk, simulated I/O time \
          (scale %g, threshold %d)"
         cfg.Config.disk_scale cfg.Config.threshold)
    ~headers:
      [ "Data"; "Query"; "ST sim(s)"; "SPINE sim(s)"; "speedup"; "Paper" ]
    rows
    ~note:
      "Shape check: SPINE at least halves the disk matching time, as in \
       the paper (~50%); our speedups run higher for the same reason as \
       Figure 7 (relatively larger ST under the same buffer budget)."
