(** Figure 8 — distribution of link destinations over the backbone.
    The paper observes that links point overwhelmingly to the top of
    the backbone, with a monotone decay — the basis for the "pin the
    top of the Link Table" buffering policy. *)

let genomes = [ "ECO"; "CEL"; "HC21" ]

let run (cfg : Config.t) =
  List.iter
    (fun name ->
      let corpus = Bioseq.Corpus.find_exn name in
      let seq = Data.load ~scale:cfg.Config.scale corpus in
      let idx = Spine.Compact.of_seq seq in
      let hist = Spine.Compact.link_histogram idx ~buckets:cfg.Config.buckets in
      let total = Array.fold_left ( + ) 0 hist in
      let series =
        Array.to_list
          (Array.mapi
             (fun b c ->
               ( Printf.sprintf "%2d-%d%%" (b * 100 / cfg.Config.buckets)
                   ((b + 1) * 100 / cfg.Config.buckets),
                 100.0 *. float_of_int c /. float_of_int total ))
             hist)
      in
      Report.Bar.print
        ~title:
          (Printf.sprintf
             "Figure 8: Link destination distribution, %s (scale %g)"
             name cfg.Config.scale)
        ~unit_label:"% of links" series;
      (* monotone-decay shape check *)
      let decays = ref true in
      for b = 1 to Array.length hist - 1 do
        if hist.(b) > hist.(b - 1) then decays := false
      done;
      Report.Say.printf "  monotone decay along the backbone: %s\n"
        (if !decays then "yes" else "no (minor local bumps)"))
    genomes
