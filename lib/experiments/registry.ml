(** The catalogue of reproducible experiments, one per table/figure of
    the paper's evaluation plus the ablations. *)

type experiment = {
  name : string;
  description : string;
  run : Config.t -> unit;
}

let all =
  [ { name = "table2";
      description = "Table 2: naive index node content (48.25 B for DNA)";
      run = Exp_table2.run }
  ; { name = "table3";
      description = "Table 3: maximum numeric label values per genome";
      run = Exp_table3.run }
  ; { name = "table4";
      description = "Table 4: rib distribution across nodes";
      run = Exp_table4.run }
  ; { name = "fig6";
      description = "Figure 6: in-memory construction times + memory budget";
      run = Exp_fig6.run }
  ; { name = "table5";
      description = "Table 5: in-memory substring matching times";
      run = Exp_table5.run }
  ; { name = "table6";
      description = "Table 6: nodes checked during matching";
      run = Exp_table6.run }
  ; { name = "fig7";
      description = "Figure 7: on-disk construction times";
      run = Exp_fig7.run }
  ; { name = "fig8";
      description = "Figure 8: link destination distribution";
      run = Exp_fig8.run }
  ; { name = "table7";
      description = "Table 7: substring matching on disk";
      run = Exp_table7.run }
  ; { name = "space";
      description = "Section 5: bytes/char across structures + compaction";
      run = Exp_space.run }
  ; { name = "proteins";
      description = "Section 5.2: protein strings";
      run = Exp_proteins.run }
  ; { name = "sensitivity";
      description = "Extension: construction across input repetitiveness";
      run = Exp_sensitivity.run }
  ; { name = "ablations";
      description = "Ablations: buffering policy, node layout, batched scan";
      run = Exp_ablation.run }
  ]

let find name = List.find_opt (fun e -> e.name = name) all

(* Run one experiment, and when telemetry is on append the metric
   deltas it produced — every table's output is then accompanied by the
   counters that explain it. *)
let run_one cfg e =
  let before = Telemetry.snapshot () in
  let _, secs = Xutil.Stopwatch.time (fun () -> e.run cfg) in
  if Telemetry.is_enabled () then
    Telemetry.print_table
      ~title:(Printf.sprintf "telemetry: %s" e.name)
      ~omit_zero:true
      (Telemetry.diff (Telemetry.snapshot ()) before);
  secs

(* Returns the (name, wall seconds) trajectory so callers can persist
   it (bench/main.ml writes it into BENCH_spine.json). *)
let run_all cfg =
  List.map
    (fun e ->
      Report.Say.printf "\n=== %s: %s ===\n%!" e.name e.description;
      (* start each experiment from a settled heap so timings are not
         polluted by garbage from the previous one *)
      Gc.compact ();
      let secs = run_one cfg e in
      Report.Say.printf "  [%s completed in %.1fs]\n%!" e.name secs;
      (e.name, secs))
    all
