(** Table 5 — in-memory substring matching times: find all maximal
    matching substrings (with repetitions) between genome pairs.
    Paper: SPINE takes ~30 % less time than ST, attributed to the
    set-basis suffix processing quantified in Table 6. *)

let pairs =
  [ ("ECO", "CEL"); ("CEL", "HC21"); ("HC21", "CEL"); ("HC21", "HC19");
    ("HC19", "HC21") ]

let paper = [ (20, 16); (45, 31); (26, 17); (83, 54); (-1, 30) ]

let corpus name =
  match Bioseq.Corpus.find name with
  | Some c -> c
  | None -> invalid_arg ("unknown corpus " ^ name)

let run (cfg : Config.t) =
  let rows =
    List.map2
      (fun (dname, qname) (p_st, p_spine) ->
        let data = Data.load ~scale:cfg.Config.scale (corpus dname) in
        let query =
          Data.homologous_query ~scale:cfg.Config.scale
            ~data_corpus:(corpus dname) (corpus qname)
        in
        let spine_idx = Spine.Compact.of_seq data in
        let st = Suffix_tree.build data in
        let threshold = cfg.Config.threshold in
        let (spine_matches, _), spine_time =
          Xutil.Stopwatch.time (fun () ->
              Spine.Compact.maximal_matches spine_idx ~threshold query)
        in
        let (st_matches, _), st_time =
          Xutil.Stopwatch.time (fun () ->
              Suffix_tree.maximal_matches st ~threshold query)
        in
        let n_spine = List.length spine_matches in
        let n_st = List.length st_matches in
        if n_spine <> n_st then
          Report.Say.printf "  WARNING: match count mismatch %d vs %d\n" n_spine n_st;
        [ dname; qname;
          Report.Table.fmt_float st_time;
          Report.Table.fmt_float spine_time;
          Report.Table.fmt_pct (1.0 -. (spine_time /. st_time));
          string_of_int n_spine;
          (if p_st < 0 then "-/" ^ string_of_int p_spine
           else Printf.sprintf "%d/%d" p_st p_spine) ])
      pairs paper
  in
  Report.Table.print
    ~title:
      (Printf.sprintf
         "Table 5: Substring matching times, in memory (scale %g, \
          threshold %d)" cfg.Config.scale cfg.Config.threshold)
    ~headers:
      [ "Data"; "Query"; "ST (s)"; "SPINE (s)"; "SPINE saves"; "matches";
        "Paper ST/SPINE (s)" ]
    rows
    ~note:
      "Shape check: SPINE beats ST on every pair, by roughly the \
       paper's ~30% margin. (Paper row '-' = ST exceeded memory.)"
