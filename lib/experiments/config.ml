(** Experiment configuration.

    The paper ran on real multi-megabase genomes on a 2004 testbed; this
    harness runs the same experiment designs on synthetic stand-ins at a
    configurable fraction of the paper's string lengths.  All
    comparisons are index-vs-index on identical inputs, so the scale
    factor cancels out of every relative result.

    Scales can be overridden with the [SPINE_SCALE] / [SPINE_DISK_SCALE]
    environment variables or the CLI flags of [bin/experiments]. *)

type t = {
  scale : float;       (** fraction of paper string length, in-memory runs *)
  disk_scale : float;  (** fraction for buffer-pool (disk) runs, which pay
                           a per-record simulation cost *)
  threshold : int;     (** minimum maximal-match length, as in MUMmer use *)
  buckets : int;       (** histogram buckets for Figure 8 *)
}

let default =
  { scale = 0.1; disk_scale = 0.02; threshold = 20; buckets = 10 }

(* malformed values fall back silently by design: the harness should
   run, not die, under a typo'd environment — but only a parse failure
   may be swallowed, not arbitrary exceptions *)
let env_float name fallback =
  match Sys.getenv_opt name with
  | Some v -> (match float_of_string_opt v with Some f -> f | None -> fallback)
  | None -> fallback

let from_env () =
  { default with
    scale = env_float "SPINE_SCALE" default.scale;
    disk_scale = env_float "SPINE_DISK_SCALE" default.disk_scale }
