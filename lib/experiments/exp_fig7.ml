(** Figure 7 — on-disk index construction times.  The paper built both
    indexes through synchronous writes and found SPINE takes about half
    the time of ST: ~30 % attributable to smaller nodes and the rest to
    better locality (append-only growth at the tail plus top-skewed
    link accesses). The simulated device reproduces exactly that
    decomposition: identical buffer budget, identical cost model, so
    the difference is purely each structure's access trace. *)

let genomes = [ "ECO"; "CEL"; "HC21" ]

(* Both indexes get the same absolute buffer budget: a quarter of the
   suffix tree's page footprint, the regime where neither structure is
   fully resident — the condition of the paper's disk experiments. *)
let frames_for n =
  max 32 (2 * n * Disk_util.st_record_bytes / 4096 / 4)

let run (cfg : Config.t) =
  let rows =
    List.map
      (fun name ->
        let corpus = Bioseq.Corpus.find_exn name in
        let seq = Data.load ~scale:cfg.Config.disk_scale corpus in
        let n = Bioseq.Packed_seq.length seq in
        let config =
          { Spine.Disk.default_config with Spine.Disk.frames = frames_for n }
        in
        let spine = Spine.Disk.build ~config seq in
        let st = Disk_util.build_st_on_disk ~config seq in
        let spine_secs = Spine.Disk.simulated_seconds spine in
        let st_secs = Disk_util.simulated_seconds st.Disk_util.device in
        let dstats d = Pagestore.Device.stats d in
        let sp = dstats spine.Spine.Disk.device in
        let stt = dstats st.Disk_util.device in
        (name, n, spine_secs, st_secs,
         sp.Pagestore.Device.reads + sp.Pagestore.Device.writes,
         stt.Pagestore.Device.reads + stt.Pagestore.Device.writes))
      genomes
  in
  Report.Bar.print_grouped
    ~title:
      (Printf.sprintf
         "Figure 7: On-disk construction, simulated I/O time (scale %g, \
          sync writes)" cfg.Config.disk_scale)
    ~unit_label:"sim s" ~group_names:("SPINE", "ST")
    (List.map (fun (name, _, sp, st, _, _) -> (name, sp, st)) rows);
  Report.Table.print
    ~headers:
      [ "Genome"; "Length"; "SPINE sim(s)"; "ST sim(s)"; "ST/SPINE";
        "SPINE I/Os"; "ST I/Os" ]
    (List.map
       (fun (name, n, sp, st, io_sp, io_st) ->
         [ name;
           Report.Table.fmt_int n;
           Report.Table.fmt_float sp;
           Report.Table.fmt_float st;
           Report.Table.fmt_float (st /. sp) ^ "x";
           Report.Table.fmt_int io_sp;
           Report.Table.fmt_int io_st ])
       rows)
    ~note:
      "Shape check: SPINE wins on disk construction. Our factor exceeds \
       the paper's ~2x because our ST model is relatively larger than \
       MUMmer's and Ukkonen's suffix-link jumps thrash the shared \
       buffer budget harder at small scale; the direction and mechanism \
       (smaller nodes + append locality) are the paper's."
