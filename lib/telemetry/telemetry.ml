(* The registry is a mutex-guarded hashtable keyed by metric name;
   metrics themselves hold [Atomic.t] cells so a hot-path update is one
   flag check plus one lock-free atomic store — no allocation, no
   lookup, and safe to race from parallel domains sharing one
   post-build index (the domain-safety contract spine-lint L9/L10
   certifies).  Registration goes through the lock, but every metric is
   registered once at module initialisation, never from the hot path. *)

let enabled =
  Atomic.make
    (match Sys.getenv_opt "SPINE_TELEMETRY" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | _ -> false)

let is_enabled () = Atomic.get enabled
let set_enabled b = Atomic.set enabled b

type counter = { c_name : string; c_value : int Atomic.t }
type gauge = { g_name : string; g_value : float Atomic.t }

(* 63 log2 buckets cover every positive OCaml int. *)
let hist_buckets = 63

type histogram = {
  h_name : string;
  h_counts : int Atomic.t array;
  h_total : int Atomic.t;
  h_sum : int Atomic.t;
}

type span = {
  s_name : string;
  s_calls : int Atomic.t;
  s_total_ns : int Atomic.t;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Span of span

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let register name make =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some existing -> existing
      | None ->
        let m = make () in
        Hashtbl.replace registry name m;
        m)

let kind_error name =
  invalid_arg
    (Printf.sprintf "Telemetry: %S already registered as another kind" name)

let counter name =
  match
    register name (fun () ->
        Counter { c_name = name; c_value = Atomic.make 0 })
  with
  | Counter c -> c
  | _ -> kind_error name

let incr c =
  if Atomic.get enabled then ignore (Atomic.fetch_and_add c.c_value 1)

let add c n =
  if Atomic.get enabled then ignore (Atomic.fetch_and_add c.c_value n)

let counter_value c = Atomic.get c.c_value

let gauge name =
  match
    register name (fun () -> Gauge { g_name = name; g_value = Atomic.make 0.0 })
  with
  | Gauge g -> g
  | _ -> kind_error name

let set g v = if Atomic.get enabled then Atomic.set g.g_value v

let histogram name =
  match
    register name (fun () ->
        Histogram
          { h_name = name;
            h_counts = Array.init hist_buckets (fun _ -> Atomic.make 0);
            h_total = Atomic.make 0;
            h_sum = Atomic.make 0 })
  with
  | Histogram h -> h
  | _ -> kind_error name

(* bucket 0 holds v <= 0; v >= 1 lands in bucket floor(log2 v) + 1 *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and x = ref v in
    while !x > 0 do
      b := !b + 1;
      x := !x lsr 1
    done;
    !b
  end

let observe h v =
  if Atomic.get enabled then begin
    let b = bucket_of v in
    ignore (Atomic.fetch_and_add h.h_counts.(b) 1);
    ignore (Atomic.fetch_and_add h.h_total 1);
    ignore (Atomic.fetch_and_add h.h_sum v)
  end

let bucket_bounds i =
  if i <= 0 then (0, 0) else (1 lsl (i - 1), (1 lsl i) - 1)

(* Interpolated quantile over log-bucket counts: find the bucket holding
   the target rank, then place the value linearly within the bucket's
   [lo, hi] range by the rank's position among that bucket's
   observations.  Exact for the single-value buckets 0 and 1; an upper
   bound (the bucket ceiling) for q = 1. *)
let quantile ~counts ~total q =
  if total <= 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = Float.max 1.0 (Float.round (q *. float_of_int total)) in
    let rec find i cum =
      if i >= Array.length counts then
        (* rank beyond the recorded counts (inconsistent total): clamp
           to the ceiling of the last occupied bucket *)
        let rec last j = if j < 0 then 0.0 else if counts.(j) > 0 then float_of_int (snd (bucket_bounds j)) else last (j - 1) in
        last (Array.length counts - 1)
      else begin
        let c = counts.(i) in
        let cum' = cum + c in
        if c > 0 && float_of_int cum' >= rank then begin
          let lo, hi = bucket_bounds i in
          let f = (rank -. float_of_int cum) /. float_of_int c in
          float_of_int lo +. (f *. float_of_int (hi - lo))
        end
        else find (i + 1) cum'
      end
    in
    find 0 0
  end

let hist_total h = Atomic.get h.h_total
let hist_sum h = Atomic.get h.h_sum

let hist_quantile h q =
  quantile ~counts:(Array.map Atomic.get h.h_counts) ~total:(Atomic.get h.h_total) q

let hist_max h =
  let rec last j =
    if j < 0 then 0
    else if Atomic.get h.h_counts.(j) > 0 then snd (bucket_bounds j)
    else last (j - 1)
  in
  last (hist_buckets - 1)

let span name =
  match
    register name (fun () ->
        Span { s_name = name; s_calls = Atomic.make 0; s_total_ns = Atomic.make 0 })
  with
  | Span s -> s
  | _ -> kind_error name

let with_span s f =
  if not (Atomic.get enabled) then f ()
  else begin
    let t0 = Xutil.Stopwatch.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        ignore (Atomic.fetch_and_add s.s_calls 1);
        ignore
          (Atomic.fetch_and_add s.s_total_ns (Xutil.Stopwatch.now_ns () - t0)))
      f
  end

(* --- snapshots --- *)

type value =
  | Count of int
  | Level of float
  | Dist of { counts : int array; total : int; sum : int }
  | Timing of { calls : int; total_ns : int }

type snapshot = (string * value) list

let snapshot () =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.fold
        (fun name m acc ->
          let v =
            match m with
            | Counter c -> Count (Atomic.get c.c_value)
            | Gauge g -> Level (Atomic.get g.g_value)
            | Histogram h ->
              Dist
                { counts = Array.map Atomic.get h.h_counts;
                  total = Atomic.get h.h_total;
                  sum = Atomic.get h.h_sum }
            | Span s ->
              Timing
                { calls = Atomic.get s.s_calls;
                  total_ns = Atomic.get s.s_total_ns }
          in
          (name, v) :: acc)
        registry [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let diff later earlier =
  List.map
    (fun (name, v) ->
      let v' =
        match (v, List.assoc_opt name earlier) with
        | Count a, Some (Count b) -> Count (a - b)
        | Dist a, Some (Dist b) ->
          Dist
            { counts = Array.mapi (fun i x -> x - b.counts.(i)) a.counts;
              total = a.total - b.total;
              sum = a.sum - b.sum }
        | Timing a, Some (Timing b) ->
          Timing { calls = a.calls - b.calls; total_ns = a.total_ns - b.total_ns }
        | _ -> v
      in
      (name, v'))
    later

let reset () =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | Counter c -> Atomic.set c.c_value 0
          | Gauge g -> Atomic.set g.g_value 0.0
          | Histogram h ->
            Array.iter (fun cell -> Atomic.set cell 0) h.h_counts;
            Atomic.set h.h_total 0;
            Atomic.set h.h_sum 0
          | Span s ->
            Atomic.set s.s_calls 0;
            Atomic.set s.s_total_ns 0)
        registry)

let find snap name = List.assoc_opt name snap

(* --- exporters --- *)

let is_zero = function
  | Count 0 -> true
  | Level 0.0 -> true
  | Dist { total = 0; _ } -> true
  | Timing { calls = 0; _ } -> true
  | _ -> false

let dist_detail counts =
  let parts = ref [] in
  for i = hist_buckets - 1 downto 0 do
    if counts.(i) > 0 then begin
      let lo, hi = bucket_bounds i in
      let range = if lo = hi then string_of_int lo else Printf.sprintf "%d-%d" lo hi in
      parts := Printf.sprintf "%s:%d" range counts.(i) :: !parts
    end
  done;
  String.concat " " !parts

let print_table ?(title = "telemetry") ?(omit_zero = false) snap =
  let rows =
    List.filter_map
      (fun (name, v) ->
        if omit_zero && is_zero v then None
        else
          Some
            (match v with
            | Count n -> [ name; "counter"; Report.Table.fmt_int n; "" ]
            | Level x -> [ name; "gauge"; Report.Table.fmt_float x; "" ]
            | Dist { counts; total; sum } ->
              [ name; "histogram"; Report.Table.fmt_int total;
                Printf.sprintf "sum=%d  %s" sum (dist_detail counts) ]
            | Timing { calls; total_ns } ->
              [ name; "span"; Report.Table.fmt_int calls;
                Printf.sprintf "%.3f ms" (float_of_int total_ns /. 1e6) ]))
      snap
  in
  if rows <> [] then
    Report.Table.print ~title ~headers:[ "metric"; "kind"; "value"; "detail" ]
      rows

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jsonl snap =
  List.map
    (fun (name, v) ->
      let name = json_escape name in
      match v with
      | Count n ->
        Printf.sprintf "{\"metric\":\"%s\",\"kind\":\"counter\",\"value\":%d}" name n
      | Level x ->
        Printf.sprintf "{\"metric\":\"%s\",\"kind\":\"gauge\",\"value\":%.17g}" name x
      | Dist { counts; total; sum } ->
        let buckets =
          let parts = ref [] in
          for i = hist_buckets - 1 downto 0 do
            if counts.(i) > 0 then begin
              let lo, hi = bucket_bounds i in
              parts := Printf.sprintf "[%d,%d,%d]" lo hi counts.(i) :: !parts
            end
          done;
          String.concat "," !parts
        in
        let qn q =
          let v = quantile ~counts ~total q in
          if Float.is_integer v && Float.abs v < 1e15 then
            Printf.sprintf "%.0f" v
          else Printf.sprintf "%.6g" v
        in
        Printf.sprintf
          "{\"metric\":\"%s\",\"kind\":\"histogram\",\"total\":%d,\"sum\":%d,\
           \"p50\":%s,\"p90\":%s,\"p99\":%s,\"max\":%s,\"buckets\":[%s]}"
          name total sum (qn 0.5) (qn 0.9) (qn 0.99) (qn 1.0) buckets
      | Timing { calls; total_ns } ->
        Printf.sprintf
          "{\"metric\":\"%s\",\"kind\":\"span\",\"calls\":%d,\"total_ns\":%d}"
          name calls total_ns)
    snap

(* Atomic exposition writes: a scraper (or the bench gate) must never
   observe a half-written metrics file, so both exporters write to a
   sibling temp file and rename it into place — rename is atomic on
   POSIX when source and destination share a filesystem, which a
   sibling path guarantees. *)
let write_atomic ~path lines =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () ->
         List.iter
           (fun line ->
             output_string oc line;
             output_char oc '\n')
           lines)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let write_jsonl ~path snap = write_atomic ~path (jsonl snap)

(* --- Prometheus text exposition --- *)

let prom_name prefix name =
  let buf = Buffer.create (String.length prefix + String.length name) in
  Buffer.add_string buf prefix;
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let prom_float v =
  if Float.is_nan v then "NaN"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

(* Every emitted family carries a # HELP line (exposition-format
   linters and some scrapers warn on TYPE-without-HELP).  The help text
   is the registry name plus what the family measures — the registry
   has no per-metric description channel, and the source name is the
   most useful thing a dashboard tooltip can show. *)
let prom_help n name what = Printf.sprintf "# HELP %s %s (%s)" n name what

let prometheus ?(prefix = "spine_") snap =
  List.concat_map
    (fun (name, v) ->
      let n = prom_name prefix name in
      match v with
      | Count c ->
        [ prom_help n name "counter";
          Printf.sprintf "# TYPE %s counter" n;
          Printf.sprintf "%s %d" n c ]
      | Level x ->
        [ prom_help n name "gauge";
          Printf.sprintf "# TYPE %s gauge" n;
          Printf.sprintf "%s %s" n (prom_float x) ]
      | Dist { counts; total; sum } ->
        (* cumulative buckets at the occupied boundaries only — any
           subset of boundaries is a valid Prometheus histogram *)
        let buckets = ref [] and cum = ref 0 in
        for i = 0 to hist_buckets - 1 do
          if counts.(i) > 0 then begin
            cum := !cum + counts.(i);
            let _, hi = bucket_bounds i in
            buckets :=
              Printf.sprintf "%s_bucket{le=\"%d\"} %d" n hi !cum :: !buckets
          end
        done;
        let q p tag =
          Printf.sprintf "%s_quantile{q=\"%s\"} %s" n tag
            (prom_float (quantile ~counts ~total p))
        in
        prom_help n name "log2-bucketed histogram"
        :: Printf.sprintf "# TYPE %s histogram" n
        :: List.rev_append !buckets
             [ Printf.sprintf "%s_bucket{le=\"+Inf\"} %d" n total;
               Printf.sprintf "%s_sum %d" n sum;
               Printf.sprintf "%s_count %d" n total;
               prom_help (n ^ "_quantile") name "interpolated quantiles";
               Printf.sprintf "# TYPE %s_quantile gauge" n;
               q 0.5 "0.5"; q 0.9 "0.9"; q 0.99 "0.99"; q 1.0 "1" ]
      | Timing { calls; total_ns } ->
        [ prom_help (n ^ "_calls") name "span call count";
          Printf.sprintf "# TYPE %s_calls counter" n;
          Printf.sprintf "%s_calls %d" n calls;
          prom_help (n ^ "_ns_total") name "span total nanoseconds";
          Printf.sprintf "# TYPE %s_ns_total counter" n;
          Printf.sprintf "%s_ns_total %d" n total_ns ])
    snap

let write_prometheus ?prefix ~path snap =
  write_atomic ~path (prometheus ?prefix snap)
