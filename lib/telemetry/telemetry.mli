(** Process-global telemetry: named counters, gauges, log-bucketed
    histograms and nestable phase spans.

    Every layer of the repro registers its metrics once at module
    initialisation and bumps them from the hot path.  Collection is
    gated on a single global flag ({!set_enabled}, or the
    [SPINE_TELEMETRY=1] environment variable): when disabled, each
    update is one flag check and no allocation, so instrumented code
    can stay instrumented in production builds.

    Measurements are scoped with snapshots: take a {!snapshot} before
    and after the region of interest and {!diff} them, or {!reset}
    everything between experiments.  Two exporters are provided — a
    human-readable table (through {!Report.Table}) and line-oriented
    JSON for machine consumption. *)

val is_enabled : unit -> bool
val set_enabled : bool -> unit
(** The global collection flag.  Initialised from the [SPINE_TELEMETRY]
    environment variable ([1]/[true]/[yes]/[on] enable). *)

(** {1 Metrics}

    Creation functions are idempotent: asking twice for the same name
    returns the same metric, so functor instantiations over different
    stores share one set of counters.
    @raise Invalid_argument if the name is already registered as a
    different metric kind. *)

type counter
val counter : string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int
(** [counter_value] reads the live value (test hook; snapshots are the
    normal way to consume metrics). *)

type gauge
val gauge : string -> gauge
val set : gauge -> float -> unit

type histogram
val histogram : string -> histogram
val observe : histogram -> int -> unit
(** Log-bucketed: value [v >= 1] lands in bucket [floor(log2 v) + 1]
    (i.e. the bucket covering [[2^(i-1), 2^i - 1]]); values [<= 0] land
    in bucket 0. *)

val hist_total : histogram -> int
val hist_sum : histogram -> int

val hist_quantile : histogram -> float -> float
(** [hist_quantile h q] is the interpolated [q]-quantile ([q] clamped to
    [[0, 1]]) of the live histogram; see {!quantile}. *)

val hist_max : histogram -> int
(** Upper bound of the highest occupied bucket (the recorded maximum is
    somewhere in that bucket); [0] when empty. *)

type span
val span : string -> span
val with_span : span -> (unit -> 'a) -> 'a
(** [with_span s f] times [f ()] against the monotonic clock
    ({!Xutil.Stopwatch.now_ns}) and accumulates into [s].  Spans nest
    freely; a parent's total includes its children.  When collection is
    disabled this is exactly [f ()]. *)

(** {1 Snapshots} *)

type value =
  | Count of int
  | Level of float
  | Dist of { counts : int array; total : int; sum : int }
      (** [counts] indexed by log bucket, see {!observe}. *)
  | Timing of { calls : int; total_ns : int }

type snapshot = (string * value) list
(** Sorted by metric name. *)

val snapshot : unit -> snapshot
val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier] subtracts counter/histogram/span values;
    gauges keep the later reading.  Metrics absent from [earlier] pass
    through unchanged. *)

val reset : unit -> unit
(** Zero every registered metric (registrations persist). *)

val find : snapshot -> string -> value option

val bucket_bounds : int -> int * int
(** [bucket_bounds i] is the inclusive [(lo, hi)] value range of
    histogram bucket [i]. *)

val quantile : counts:int array -> total:int -> float -> float
(** Interpolated quantile over log-bucket counts (a snapshot's
    [Dist.counts], or any array indexed like one): locate the bucket
    holding rank [round (q * total)] (clamped to at least 1) and place
    the value linearly within that bucket's [(lo, hi)] range.  Exact
    for the single-value buckets 0 and 1; [q = 1] returns the ceiling
    of the highest occupied bucket; [0] when [total <= 0]. *)

(** {1 Exporters} *)

val print_table : ?title:string -> ?omit_zero:bool -> snapshot -> unit
(** Render on stdout through {!Report.Table}.  [omit_zero] (default
    [false]) drops metrics whose every value is zero — the CLI uses it
    to print only what a run actually touched. *)

val jsonl : snapshot -> string list
(** One JSON object per metric, e.g.
    [{"metric":"pool.hits","kind":"counter","value":42}].  Histograms
    carry [total], [sum], interpolated [p50]/[p90]/[p99]/[max] and the
    non-empty [[lo, hi, count]] buckets. *)

val write_jsonl : path:string -> snapshot -> unit
(** Write {!jsonl} lines to [path] {e atomically}: the content goes to
    [path ^ ".tmp"] and is renamed into place, so a concurrent reader
    sees either the previous complete file or the new one, never a
    torn write. *)

val prometheus : ?prefix:string -> snapshot -> string list
(** The snapshot in the Prometheus text exposition format.  Metric
    names are [prefix] (default ["spine_"]) plus the registry name with
    every non-[[a-zA-Z0-9_]] character replaced by [_].  Counters and
    gauges map directly; a histogram becomes cumulative
    [_bucket{le="…"}] samples at its occupied bucket ceilings plus
    [_sum]/[_count], with the interpolated quantiles as a companion
    [<name>_quantile{q="…"}] gauge; a span becomes the two counters
    [<name>_calls] and [<name>_ns_total].  Every emitted family is
    preceded by its [# HELP] and [# TYPE] lines. *)

val write_prometheus : ?prefix:string -> path:string -> snapshot -> unit
(** Write {!prometheus} lines to [path] with the same write-to-temp +
    atomic-rename discipline as {!write_jsonl}. *)
