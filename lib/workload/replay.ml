(* Trace-driven replay (see replay.mli): a recorded qlog becomes a
   Workload.request stream, runs through the live driver, and the two
   runs meet in a Bench_gate comparison. *)

let ops_order = [ "single"; "batch"; "cursor" ]

let ( let* ) = Result.bind

let of_records ?(closed_loop = false) ~alphabet records =
  let enc i s =
    try
      Ok
        (Array.init (String.length s) (fun k ->
             Bioseq.Alphabet.encode alphabet s.[k]))
    with Invalid_argument _ ->
      Error
        (Printf.sprintf "record %d: pattern %S outside the engine alphabet" i
           s)
  in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | (r : Qlog.record) :: rest ->
      let* payload =
        match (r.Qlog.q_op, r.Qlog.q_patterns) with
        | "single", [ p ] ->
          let* a = enc i p in
          Ok (Workload.Single a)
        | "cursor", [ p ] ->
          let* a = enc i p in
          Ok (Workload.Cursor a)
        | "batch", ps ->
          let* arrs =
            List.fold_left
              (fun acc p ->
                let* acc = acc in
                let* a = enc i p in
                Ok (a :: acc))
              (Ok []) ps
          in
          Ok (Workload.Batch (List.rev arrs))
        | (("single" | "cursor") as op), ps ->
          Error
            (Printf.sprintf
               "record %d: op %S expects exactly one pattern, got %d" i op
               (List.length ps))
        | op, _ -> Error (Printf.sprintf "record %d: unknown op %S" i op)
      in
      let r_offset_ns =
        if closed_loop then None else Some r.Qlog.q_offset_ns
      in
      go (i + 1)
        ({ Workload.r_index = i; r_payload = payload; r_offset_ns } :: acc)
        rest
  in
  go 0 [] records

type outcome = {
  rp_requests : int;
  rp_report : Workload.report;
  rp_profiles : (string * Profile.t) list;
  rp_comparisons : Bench_gate.comparison list;
}

(* Both sides of the comparison are rendered as Bench_gate baselines:
   the recorded side from the log's latencies and cost fields, the
   replayed side from the driver's report and per-op profile sums.
   Only ops present in the log contribute entries — a log with no
   cursor requests must not make the replay report "cursor.* removed". *)

let lat_entry op q v =
  { Bench_gate.group = "latency"; name = op ^ "." ^ q; unit_ = "ns";
    value = Some v }

let cost_entries op prof =
  List.map
    (fun (k, v) ->
      { Bench_gate.group = "cost"; name = op ^ "." ^ k; unit_ = "count";
        value = Some (float_of_int v) })
    (Profile.deterministic_fields prof)

let recorded_baseline records =
  let entries =
    List.concat_map
      (fun op ->
        match
          List.filter (fun (r : Qlog.record) -> r.Qlog.q_op = op) records
        with
        | [] -> []
        | rs ->
          let p50, p90, p99 =
            Workload.latency_quantiles
              (List.map (fun (r : Qlog.record) -> r.Qlog.q_latency_ns) rs)
          in
          let prof = Profile.make () in
          List.iter
            (fun (r : Qlog.record) ->
              Profile.absorb prof (Profile.of_fields r.Qlog.q_costs))
            rs;
          [ lat_entry op "p50" p50; lat_entry op "p90" p90;
            lat_entry op "p99" p99 ]
          @ cost_entries op prof)
      ops_order
  in
  { Bench_gate.schema = "spine-replay/1"; entries }

let replayed_baseline (report : Workload.report) profiles =
  let entries =
    List.concat_map
      (fun op ->
        match
          List.find_opt
            (fun (o : Workload.op_report) ->
              o.Workload.op = op && o.Workload.count > 0)
            report.Workload.ops
        with
        | None -> []
        | Some o ->
          [ lat_entry op "p50" o.Workload.p50_ns;
            lat_entry op "p90" o.Workload.p90_ns;
            lat_entry op "p99" o.Workload.p99_ns ]
          @ cost_entries op (List.assoc op profiles))
      ops_order
  in
  { Bench_gate.schema = "spine-replay/1"; entries }

let drive_records ?clock ?sleep_ns ?(closed_loop = false) ?(tolerance = 0.25)
    ?(latency_floor_ns = 1e6) ~engine records =
  let alphabet = Spine.Engine.alphabet engine in
  let* requests = of_records ~closed_loop ~alphabet records in
  let config =
    { Workload.default_config with
      Workload.requests = List.length requests;
      rate = None;
      tick_every = 0 }
  in
  let report, profiles = Workload.drive ?clock ?sleep_ns ~config engine requests in
  let cmps =
    Bench_gate.compare_baselines
      ~floors:[ ("ns", latency_floor_ns) ]
      ~tolerance (recorded_baseline records)
      (replayed_baseline report profiles)
  in
  Ok
    { rp_requests = List.length records;
      rp_report = report;
      rp_profiles = profiles;
      rp_comparisons = cmps }

let print o =
  Workload.print o.rp_report;
  Report.Table.print ~title:"Recorded vs replayed"
    ~headers:
      [ "group"; "name"; "unit"; "recorded"; "replayed"; "ratio"; "verdict" ]
    (Bench_gate.rows o.rp_comparisons)

let jsonl o =
  let fopt = function
    | None -> "null"
    | Some v ->
      if Float.is_integer v && Float.abs v < 1e15 then
        Printf.sprintf "%.0f" v
      else Printf.sprintf "%.6g" v
  in
  Workload.jsonl o.rp_report
  @ List.map
      (fun (c : Bench_gate.comparison) ->
        Printf.sprintf
          "{\"replay_cmp\":\"%s.%s\",\"unit\":%S,\"recorded\":%s,\
           \"replayed\":%s,\"ratio\":%s,\"verdict\":%S}"
          c.Bench_gate.c_group c.Bench_gate.c_name c.Bench_gate.c_unit
          (fopt c.Bench_gate.c_old) (fopt c.Bench_gate.c_new)
          (fopt c.Bench_gate.c_ratio)
          (Bench_gate.verdict_string c.Bench_gate.c_verdict))
      o.rp_comparisons
