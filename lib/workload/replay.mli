(** Trace-driven replay: re-drive a recorded query log and gate on the
    recorded-vs-replayed delta.

    A qlog ({!Qlog}) captures what a live run actually did — every
    request's patterns, arrival offset, outcome counts, latency and
    cost profile.  Replay turns those records back into a
    {!Workload.request} stream and executes it through
    {!Workload.drive}, then compares the two runs with the
    {!Bench_gate} machinery:

    - group ["latency"]: per-op [p50]/[p90]/[p99] (unit ["ns"]),
      recorded quantiles against replayed quantiles, protected by a
      noise floor ([latency_floor_ns]) so sub-floor jitter never
      flags;
    - group ["cost"]: per-op sums of the {e deterministic} profile
      fields ({!Profile.deterministic_fields}, unit ["count"]) —
      traversal steps, scan lengths, occurrence counts, pool and
      device traffic.  Against the same engine state these are exact,
      so any drift is a real behaviour change, not noise.

    Only operations that actually appear in the log contribute
    entries, so a single-op recording never reports spuriously
    [Removed] ops. *)

type outcome = {
  rp_requests : int;                            (** records replayed *)
  rp_report : Workload.report;                  (** the replayed run *)
  rp_profiles : (string * Profile.t) list;      (** replayed per-op sums *)
  rp_comparisons : Bench_gate.comparison list;  (** recorded vs replayed *)
}

val of_records :
  ?closed_loop:bool ->
  alphabet:Bioseq.Alphabet.t ->
  Qlog.record list ->
  (Workload.request list, string) result
(** Rebuild the request stream.  ["single"] and ["cursor"] records
    need exactly one pattern, ["batch"] any number; patterns are
    re-encoded in [alphabet].  [closed_loop] (default false) discards
    the recorded arrival offsets so requests run back-to-back;
    otherwise the recorded inter-arrival gaps are honored.  [Error] on
    an unknown op, a pattern/op arity mismatch, or a character outside
    the alphabet. *)

val drive_records :
  ?clock:(unit -> int) ->
  ?sleep_ns:(int -> unit) ->
  ?closed_loop:bool ->
  ?tolerance:float ->
  ?latency_floor_ns:float ->
  engine:Spine.Engine.t ->
  Qlog.record list ->
  (outcome, string) result
(** Replay [records] against [engine] and compare.  [tolerance]
    (default [0.25]) is the relative regression budget per
    {!Bench_gate.compare_baselines}; [latency_floor_ns] (default
    [1e6], i.e. 1 ms) is the ["ns"]-unit noise floor.  The replayed
    run inherits {!Workload.drive}'s injectable [clock]/[sleep_ns].
    [Error] only on a malformed stream ({!of_records}); a regression
    is {e not} an error — inspect
    [Bench_gate.failures outcome.rp_comparisons]. *)

val print : outcome -> unit
(** Render the comparison through {!Report.Table} ([group; name; unit;
    recorded; replayed; ratio; verdict] rows) plus the replayed run's
    own report. *)

val jsonl : outcome -> string list
(** The replayed report's JSONL lines plus one
    [{"replay_cmp":...}] object per comparison row. *)
