(* Synthetic query workloads over one Engine.t.  The generator is
   deterministic (Bioseq.Rng) so a (seed, config, sequence) triple
   replays the exact same request stream on any backend; only the
   measured latencies differ. *)

type mix = { single : int; batch : int; cursor : int }

type config = {
  requests : int;
  seed : int;
  min_len : int;
  max_len : int;
  batch_size : int;
  cursor_steps : int;
  miss_fraction : float;
  mix : mix;
  rate : float option;
  slow_us : int;
  slowest : int;
  tick_every : int;
}

let default_config =
  { requests = 1000;
    seed = 42;
    min_len = 4;
    max_len = 12;
    batch_size = 16;
    cursor_steps = 24;
    miss_fraction = 0.1;
    mix = { single = 6; batch = 2; cursor = 2 };
    rate = None;
    slow_us = 1;
    slowest = 10;
    tick_every = 0 }

type op_report = {
  op : string;
  count : int;
  hits : int;
  mean_ns : float;
  p50_ns : float;
  p90_ns : float;
  p99_ns : float;
  max_ns : int;
  timeouts : int;
  shed : int;
  failed : int;
}

type slow = { s_op : string; s_request : int; s_ns : int }

type report = {
  backend : string;
  total_requests : int;
  wall_ns : int;
  achieved_rps : float;
  offered_rps : float option;
  ops : op_report list;
  slowest : slow list;
}

(* --- per-op accumulation ---------------------------------------- *)

(* Local mirror of the telemetry log-bucketing so the report is scoped
   to this run even though the global histograms accumulate across
   runs in one process. *)
let n_buckets = 64

let bucket_of v =
  if v <= 0 then 0
  else begin
    let rec log2 v acc = if v <= 1 then acc else log2 (v lsr 1) (acc + 1) in
    min (n_buckets - 1) (log2 v 0 + 1)
  end

type acc = {
  a_op : string;
  a_hist : Telemetry.histogram;  (* global: feeds the exposition formats *)
  counts : int array;            (* local: feeds this run's report *)
  mutable count : int;
  mutable hits : int;
  mutable sum_ns : int;
  mutable max_ns : int;
  (* typed rejections under a resilience policy; kept out of the
     latency buckets so sheds cannot fake a fast percentile *)
  mutable timeouts : int;
  mutable shed : int;
  mutable failed : int;
}

let acc backend op =
  { a_op = op;
    a_hist = Telemetry.histogram (Printf.sprintf "workload.%s.%s.ns" backend op);
    counts = Array.make n_buckets 0;
    count = 0; hits = 0; sum_ns = 0; max_ns = 0;
    timeouts = 0; shed = 0; failed = 0 }

let record a ~hit ns =
  Telemetry.observe a.a_hist ns;
  a.counts.(bucket_of ns) <- a.counts.(bucket_of ns) + 1;
  a.count <- a.count + 1;
  if hit then a.hits <- a.hits + 1;
  a.sum_ns <- a.sum_ns + ns;
  if ns > a.max_ns then a.max_ns <- ns

let report_of_acc a =
  let q = Telemetry.quantile ~counts:a.counts ~total:a.count in
  { op = a.a_op;
    count = a.count;
    hits = a.hits;
    mean_ns = (if a.count = 0 then 0.0 else float_of_int a.sum_ns /. float_of_int a.count);
    p50_ns = q 0.5;
    p90_ns = q 0.9;
    p99_ns = q 0.99;
    max_ns = a.max_ns;
    timeouts = a.timeouts;
    shed = a.shed;
    failed = a.failed }

(* Same bucketing applied to a bare latency list — the replay gate uses
   it to quantile the *recorded* side of a comparison with exactly the
   arithmetic the replayed report uses, so a comparison never flags a
   bucketing artifact. *)
let latency_quantiles ns_list =
  let counts = Array.make n_buckets 0 in
  let total = List.length ns_list in
  List.iter (fun v -> counts.(bucket_of v) <- counts.(bucket_of v) + 1) ns_list;
  let q p = Telemetry.quantile ~counts ~total p in
  (q 0.5, q 0.9, q 0.99)

(* --- request generation ----------------------------------------- *)

(* A pattern is either a random substring of the subject (guaranteed
   hit) or, with probability [miss_fraction], uniform random codes
   (an almost-certain miss on any non-trivial sequence). *)
let gen_pattern cfg rng seq =
  let n = Bioseq.Packed_seq.length seq in
  let sigma = Bioseq.Alphabet.size (Bioseq.Packed_seq.alphabet seq) in
  let len =
    let lo = max 1 cfg.min_len in
    let hi = max lo (min cfg.max_len (max 1 n)) in
    lo + Bioseq.Rng.int rng (hi - lo + 1)
  in
  if Bioseq.Rng.float rng 1.0 < cfg.miss_fraction || n < len then
    Array.init len (fun _ -> Bioseq.Rng.int rng sigma)
  else begin
    let pos = Bioseq.Rng.int rng (n - len + 1) in
    Array.init len (fun i -> Bioseq.Packed_seq.get seq (pos + i))
  end

let pick_op mix rng =
  let s = max 0 mix.single and b = max 0 mix.batch and c = max 0 mix.cursor in
  let total = s + b + c in
  if total = 0 then `Single
  else begin
    let r = Bioseq.Rng.int rng total in
    if r < s then `Single else if r < s + b then `Batch else `Cursor
  end

(* --- planned requests -------------------------------------------- *)

(* The generator and the driver are separate so that a request stream
   can come from somewhere other than the RNG — the replay path builds
   one from a recorded qlog and re-drives it through the exact same
   execution, measurement and logging code as a live run. *)

type payload =
  | Single of int array
  | Batch of int array list
  | Cursor of int array

type request = {
  r_index : int;
  r_payload : payload;
  r_offset_ns : int option;
}

let op_of_payload = function
  | Single _ -> `Single
  | Batch _ -> `Batch
  | Cursor _ -> `Cursor

let plan ?(config = default_config) seq =
  let cfg = config in
  let rng = Bioseq.Rng.create cfg.seed in
  let mk i =
    let op = pick_op cfg.mix rng in
    let payload =
      match op with
      | `Single -> Single (gen_pattern cfg rng seq)
      | `Batch ->
        Batch (List.init cfg.batch_size (fun _ -> gen_pattern cfg rng seq))
      | `Cursor ->
        (* a guaranteed-matching walk where possible so the cursor does
           real extension work; the driver restarts from the root on a
           mismatch *)
        let n = Bioseq.Packed_seq.length seq in
        let steps = max 1 cfg.cursor_steps in
        if n = 0 then Cursor [||]
        else begin
          let pos = Bioseq.Rng.int rng n in
          Cursor
            (Array.init steps (fun k ->
                 Bioseq.Packed_seq.get seq ((pos + k) mod n)))
        end
    in
    let r_offset_ns =
      match cfg.rate with
      | None -> None
      | Some r -> Some (int_of_float (float_of_int i /. r *. 1e9))
    in
    { r_index = i; r_payload = payload; r_offset_ns }
  in
  (* explicit ascending loop: the RNG draw order is part of the
     determinism contract, List.init's application order is not *)
  let rec build i acc =
    if i >= cfg.requests then List.rev acc else build (i + 1) (mk i :: acc)
  in
  build 0 []

(* --- the driver --------------------------------------------------- *)

let op_name = function
  | `Single -> "single"
  | `Batch -> "batch"
  | `Cursor -> "cursor"

(* Each executor returns (any_hit, patterns_with_hits, occurrences). *)

let exec_single engine pattern =
  let c = List.length (Spine.Engine.occurrences engine pattern) in
  (c > 0, (if c > 0 then 1 else 0), c)

let exec_batch engine patterns =
  let items = Spine.Engine.run_batch engine patterns in
  let hits =
    List.fold_left
      (fun a it -> if it.Spine.Engine.count > 0 then a + 1 else a)
      0 items
  in
  let found = List.fold_left (fun a it -> a + it.Spine.Engine.count) 0 items in
  (hits > 0, hits, found)

let exec_cursor engine codes =
  let cur = Spine.Engine.cursor engine in
  Array.iter
    (fun code ->
      if not (cur.Spine.Engine.advance code) then cur.Spine.Engine.reset ())
    codes;
  let hit = cur.Spine.Engine.first_occurrence () <> None in
  let h = if hit then 1 else 0 in
  (hit, h, h)

let decode_pattern alphabet codes =
  String.init (Array.length codes) (fun i ->
      Bioseq.Alphabet.decode alphabet codes.(i))

let drive ?(clock = Xutil.Stopwatch.now_ns)
    ?(sleep_ns = fun ns -> Unix.sleepf (float_of_int ns /. 1e9)) ?on_tick
    ?resilient ~config engine requests =
  let cfg = config in
  let backend = Spine.Engine.backend engine in
  let alphabet = Spine.Engine.alphabet engine in
  let total = List.length requests in
  let accs =
    [ (`Single, acc backend "single");
      (`Batch, acc backend "batch");
      (`Cursor, acc backend "cursor") ]
  in
  let profs =
    [ (`Single, Profile.make ());
      (`Batch, Profile.make ());
      (`Cursor, Profile.make ()) ]
  in
  (* Scoped observability: collection on and the slow-op threshold low
     for the duration of the run, everything restored afterwards. *)
  let telemetry_was = Telemetry.is_enabled () in
  let trace_was = Trace.is_enabled () in
  let slow_was = Trace.slow_us () in
  let slow_before = List.length (Trace.slow_ops ()) in
  Telemetry.set_enabled true;
  Trace.set_enabled true;
  Trace.set_slow_us (max 1 cfg.slow_us);
  let restore () =
    Telemetry.set_enabled telemetry_was;
    Trace.set_enabled trace_was;
    Trace.set_slow_us slow_was
  in
  let t_start = clock () in
  Fun.protect ~finally:restore (fun () ->
      List.iter
        (fun req ->
          let i = req.r_index in
          let op = op_of_payload req.r_payload in
          (* Open loop: a request carries its due offset; latency is
             measured from the scheduled start, so falling behind shows
             up as queueing delay in the histogram (the
             coordinated-omission correction).  Closed loop: due now,
             latency = service time. *)
          let due =
            match req.r_offset_ns with
            | None -> clock ()
            | Some off ->
              let due = t_start + off in
              (* Sleep until the schedule on the *injected* clock: one
                 sleep may undersleep (EINTR, an injected sleeper that
                 advances a virtual clock by less than asked), and
                 starting early would record negative latency against
                 the scheduled origin.  Loop while the clock makes
                 progress; a sleeper that cannot advance the clock at
                 all must not spin forever. *)
              let rec wait () =
                let now = clock () in
                if due > now then begin
                  sleep_ns (due - now);
                  if clock () > now then wait ()
                end
              in
              wait ();
              due
          in
          let a = List.assq op accs in
          let exec () =
            Trace.with_op
              (Printf.sprintf "workload.%s" (op_name op))
              [ Trace.Int ("request", i) ]
              (fun () ->
                Spine.Engine.profiled engine (fun () ->
                    match req.r_payload with
                    | Single p -> exec_single engine p
                    | Batch ps -> exec_batch engine ps
                    | Cursor codes -> exec_cursor engine codes))
          in
          (* Under a resilience policy, typed rejections are workload
             dispositions, not crashes: the driver records them and
             keeps offering load — exactly what a degraded-mode
             scenario measures.  Without one, errors propagate as
             before. *)
          let outcome =
            match resilient with
            | None -> `Done (exec ())
            | Some r ->
              (match Spine.Resilient.call r ~op:(op_name op)
                       (fun _engine -> exec ())
               with
               | v -> `Done v
               | exception Spine_error.Error (Spine_error.Timeout _) ->
                 `Timeout
               | exception Spine_error.Error (Spine_error.Overloaded _) ->
                 `Shed
               | exception Spine_error.Error _ -> `Failed)
          in
          (match outcome with
           | `Done ((hit, hits, found), prof) ->
             let ns = clock () - due in
             record a ~hit ns;
             Profile.absorb (List.assq op profs) prof;
             if Qlog.active () then begin
               let pats =
                 match req.r_payload with
                 | Single p -> [ decode_pattern alphabet p ]
                 | Batch ps -> List.map (decode_pattern alphabet) ps
                 | Cursor codes -> [ decode_pattern alphabet codes ]
               in
               Qlog.emit ~op:(op_name op) ~backend ~patterns:pats ~hits
                 ~found ~latency_ns:ns ~costs:prof
             end
           | `Timeout -> a.timeouts <- a.timeouts + 1
           | `Shed -> a.shed <- a.shed + 1
           | `Failed -> a.failed <- a.failed + 1);
          match on_tick with
          | Some f when cfg.tick_every > 0 && (i + 1) mod cfg.tick_every = 0 ->
            f (i + 1)
          | _ -> ())
        requests;
      let wall_ns = max 1 (clock () - t_start) in
      let request_arg args =
        List.fold_left
          (fun r a -> match a with Trace.Int ("request", v) -> v | _ -> r)
          (-1) args
      in
      let slowest =
        Trace.slow_ops ()
        |> List.filteri (fun i _ -> i >= slow_before)
        |> List.map (fun (s : Trace.slow_op) ->
               { s_op = s.Trace.so_name;
                 s_request = request_arg s.Trace.so_args;
                 s_ns = s.Trace.so_ns })
        |> List.sort (fun a b -> compare b.s_ns a.s_ns)
        |> List.filteri (fun i _ -> i < max 0 cfg.slowest)
      in
      let report =
        { backend;
          total_requests = total;
          wall_ns;
          achieved_rps = float_of_int total /. (float_of_int wall_ns /. 1e9);
          offered_rps = cfg.rate;
          ops = List.map (fun (_, a) -> report_of_acc a) accs;
          slowest }
      in
      (report, List.map (fun (k, p) -> (op_name k, p)) profs))

let run ?(config = default_config) ?clock ?sleep_ns ?on_tick engine seq =
  fst (drive ?clock ?sleep_ns ?on_tick ~config engine (plan ~config seq))

(* --- rendering ---------------------------------------------------- *)

let ns_ms ns = Printf.sprintf "%.3f" (ns /. 1e6)

let print r =
  let mode =
    match r.offered_rps with
    | None -> "closed loop"
    | Some rate -> Printf.sprintf "open loop @ %.0f req/s" rate
  in
  Report.Say.printf "workload: %d requests on %s (%s), %.0f req/s achieved\n"
    r.total_requests r.backend mode r.achieved_rps;
  Report.Table.print ~title:"Latency by operation"
    ~headers:[ "op"; "count"; "hits"; "mean ms"; "p50 ms"; "p90 ms"; "p99 ms"; "max ms" ]
    (List.map
       (fun o ->
         [ o.op; string_of_int o.count; string_of_int o.hits;
           ns_ms o.mean_ns; ns_ms o.p50_ns; ns_ms o.p90_ns; ns_ms o.p99_ns;
           ns_ms (float_of_int o.max_ns) ])
       r.ops);
  if
    List.exists
      (fun (o : op_report) -> o.timeouts + o.shed + o.failed > 0)
      r.ops
  then
    Report.Table.print ~title:"Typed rejections by operation"
      ~headers:[ "op"; "ok"; "timeouts"; "shed"; "failed" ]
      (List.map
         (fun (o : op_report) ->
           [ o.op; string_of_int o.count; string_of_int o.timeouts;
             string_of_int o.shed; string_of_int o.failed ])
         r.ops);
  if r.slowest <> [] then
    Report.Table.print ~title:"Slowest requests (trace slow-op log)"
      ~headers:[ "rank"; "op"; "request"; "ms" ]
      (List.mapi
         (fun i s ->
           [ string_of_int (i + 1); s.s_op; string_of_int s.s_request;
             ns_ms (float_of_int s.s_ns) ])
         r.slowest)

let jsonl r =
  let op_line (o : op_report) =
    (* the rejection triple is appended only when present so historical
       consumers of fault-free runs see unchanged lines *)
    let rejections =
      if o.timeouts + o.shed + o.failed = 0 then ""
      else
        Printf.sprintf ",\"timeouts\":%d,\"shed\":%d,\"failed\":%d"
          o.timeouts o.shed o.failed
    in
    Printf.sprintf
      "{\"workload_op\":%S,\"backend\":%S,\"count\":%d,\"hits\":%d,\
       \"mean_ns\":%.0f,\"p50_ns\":%.0f,\"p90_ns\":%.0f,\"p99_ns\":%.0f,\
       \"max_ns\":%d%s}"
      o.op r.backend o.count o.hits o.mean_ns o.p50_ns o.p90_ns o.p99_ns
      o.max_ns rejections
  in
  let summary =
    Printf.sprintf
      "{\"workload\":%S,\"requests\":%d,\"wall_ns\":%d,\"achieved_rps\":%.1f%s}"
      r.backend r.total_requests r.wall_ns r.achieved_rps
      (match r.offered_rps with
       | None -> ""
       | Some rate -> Printf.sprintf ",\"offered_rps\":%.1f" rate)
  in
  summary :: List.map op_line r.ops
