(** Synthetic query workloads over one {!Spine.Engine.t}.

    The runner drives an engine with a deterministic, seeded mix of
    query operations and records per-request latency three ways at
    once: into the process-global telemetry histograms
    ([workload.<backend>.<op>.ns], so the exposition formats see them),
    into a run-local accumulator (so the returned {!report} covers
    exactly this run even when the process has run workloads before),
    and through {!Trace.with_op} (so the trace slow-op log captures the
    slowest individual requests with their request ids).

    Operation kinds:
    - {e single} — one pattern, full occurrence resolution;
    - {e batch} — [batch_size] patterns through
      {!Spine.Engine.run_batch} (the Section 4 shared backbone scan);
    - {e cursor} — an incremental valid-path walk of [cursor_steps]
      character extensions.

    Patterns are random substrings of the subject sequence (guaranteed
    hits) except for a [miss_fraction] of uniform random code strings.
    Because generation is deterministic in [(seed, config, sequence)],
    the same request stream replays against every backend — the
    latency distributions are comparable across backends by
    construction. *)

type mix = { single : int; batch : int; cursor : int }
(** Relative weights; all zero degenerates to single-pattern only. *)

type config = {
  requests : int;
  seed : int;
  min_len : int;         (** pattern length range, inclusive *)
  max_len : int;
  batch_size : int;      (** patterns per batch request *)
  cursor_steps : int;    (** extensions per cursor request *)
  miss_fraction : float; (** probability of a random (miss) pattern *)
  mix : mix;
  rate : float option;
      (** [Some r]: open loop at [r] requests/second — request [i] is
          due at [start + i/r] and its latency is measured from that
          schedule, so falling behind is charged as queueing delay
          (coordinated-omission correction).  [None]: closed loop,
          back-to-back. *)
  slow_us : int;
      (** Trace slow-op threshold during the run (min 1 so the log
          catches everything measurable); restored afterwards. *)
  slowest : int;         (** how many slowest requests to report *)
  tick_every : int;      (** invoke [on_tick] every N requests; 0 = never *)
}

val default_config : config
(** 1000 requests, seed 42, lengths 4–12, batches of 16, 24-step
    cursors, 10% misses, mix 6/2/2, closed loop, slowest-10. *)

type op_report = {
  op : string;
  count : int;   (** requests that completed with a result *)
  hits : int;    (** requests that found at least one occurrence *)
  mean_ns : float;
  p50_ns : float;
  p90_ns : float;
  p99_ns : float;  (** interpolated, see {!Telemetry.quantile} *)
  max_ns : int;    (** exact (not bucketed) *)
  timeouts : int;  (** typed [Timeout] rejections (resilient runs) *)
  shed : int;      (** typed [Overloaded] rejections (breaker open) *)
  failed : int;    (** other typed failures after the retry budget *)
}
(** Rejected requests are counted but kept out of the latency
    histogram: a shed request answering in microseconds must not fake a
    fast percentile.  On a run without a resilience policy the three
    rejection counts are zero and [count] covers every request. *)

type slow = {
  s_op : string;
  s_request : int;  (** request index within the run, -1 if unknown *)
  s_ns : int;
}

type report = {
  backend : string;
  total_requests : int;
  wall_ns : int;
  achieved_rps : float;
  offered_rps : float option;  (** the configured open-loop rate *)
  ops : op_report list;
  slowest : slow list;  (** descending by duration, at most [slowest] *)
}

(** {1 Planned requests}

    Generation and execution are split: {!plan} turns a config into a
    concrete request stream, {!drive} executes any request stream.  The
    replay path ({!Replay}) builds a stream from a recorded query log
    and re-drives it through exactly the live-run execution,
    measurement and logging code. *)

type payload =
  | Single of int array       (** one pattern, full occurrence resolution *)
  | Batch of int array list   (** patterns through {!Spine.Engine.run_batch} *)
  | Cursor of int array       (** character codes to advance a cursor over *)

type request = {
  r_index : int;
  r_payload : payload;
  r_offset_ns : int option;
      (** open-loop due time relative to the run start; [None] = issue
          immediately (closed loop) *)
}

val plan : ?config:config -> Bioseq.Packed_seq.t -> request list
(** The deterministic request stream for [(config, seq)]: exactly the
    draws the historical inline generator made, in the same order. *)

val drive :
  ?clock:(unit -> int) ->
  ?sleep_ns:(int -> unit) ->
  ?on_tick:(int -> unit) ->
  ?resilient:Spine.Resilient.t ->
  config:config ->
  Spine.Engine.t ->
  request list ->
  report * (string * Profile.t) list
(** [drive ~config engine requests] executes a request stream: each
    request runs under {!Spine.Engine.profiled} and {!Trace.with_op},
    feeds the per-op latency accumulators, and — when {!Qlog.active} —
    appends a qlog record with its decoded patterns, outcome counts and
    cost profile.  Returns the run report plus the per-op sums of the
    execution profiles (ops with zero requests have all-zero profiles).

    [clock] (default {!Xutil.Stopwatch.now_ns}) and [sleep_ns] (default
    [Unix.sleepf]) exist so tests and the replay determinism gate can
    inject a fake clock and make the schedule byte-reproducible.  The
    open-loop pacer sleeps {e on the injected clock} until each
    request's scheduled start: an undersleeping (or virtual) sleeper is
    re-waited, never allowed to start a request early and record
    negative latency against the schedule.

    [resilient] routes every request through {!Spine.Resilient.call}:
    typed [Timeout]/[Overloaded]/failure rejections become workload
    dispositions in the report instead of propagating, so the driver
    keeps offering load while the engine degrades — the chaos-scenario
    measurement mode.  Rejected requests emit no qlog record. *)

val run :
  ?config:config -> ?clock:(unit -> int) -> ?sleep_ns:(int -> unit) ->
  ?on_tick:(int -> unit) -> Spine.Engine.t ->
  Bioseq.Packed_seq.t -> report
(** [run engine seq] is [drive] over [plan]: drives [engine] with
    patterns drawn from [seq].  Telemetry and tracing are force-enabled
    for the duration (prior state restored); [on_tick done] fires every
    [tick_every] completed requests — the CLI uses it to emit periodic
    metrics snapshots. *)

val latency_quantiles : int list -> float * float * float
(** [(p50, p90, p99)] of a latency sample through the same log-bucket
    mirror the per-op report uses — the replay gate quantiles the
    recorded side with this so both sides share one bucketing. *)

val print : report -> unit
(** Render through {!Report.Table}: a latency table (count, hits, mean
    and p50/p90/p99/max per operation) and the slowest-K request
    table. *)

val jsonl : report -> string list
(** One summary object plus one object per operation. *)
