(** Seeded latency injection for {!Device}.

    An injector sleeps a deterministic, SplitMix64-drawn delay before
    every device read and/or write: [base + uniform(0, jitter)]
    nanoseconds per operation, a pure function of [(seed, operation
    sequence)] — the latency analogue of {!Fault_device}'s fault plans.

    Unlike a fault plan, the injector {e chains}: {!attach} captures
    the device's currently installed hooks and delegates to them after
    sleeping, so a scenario can arm faults first and wrap latency
    around them.  Every injected delay is charged three ways: the
    [latency.injected_ops]/[latency.injected_ns] telemetry family, a
    trace instant, and the calling query's attribution sink (so
    per-query profiles report the delay they were subjected to, see
    {!Buffer_pool.note_injected_delay}).

    Sleeps cooperate with the ambient {!Deadline}: an injected delay is
    truncated at the deadline and an overrun query fails typed
    ([Timeout]) instead of sleeping on. *)

type config = {
  read_ns : int;    (** base delay per device read *)
  write_ns : int;   (** base delay per device write *)
  jitter_ns : int;  (** uniform extra in [[0, jitter_ns]] per op *)
  seed : int;
}

val default_config : config
(** All-zero delays, seed 1 — attach is then a no-op wrapper. *)

type t

val create : ?sleep_ns:(int -> unit) -> config -> t
(** [sleep_ns] (default [Unix.sleepf]) exists so tests can virtualise
    the injected time. *)

val attach : t -> Device.t -> unit
(** Capture the device's current hooks as the inner stage and install
    the injector in front of them.
    @raise Invalid_argument when [t] is already attached. *)

val detach : t -> unit
(** Restore the hooks captured by {!attach} (no-op when unattached). *)

type stats = {
  ops : int;       (** operations that actually slept *)
  total_ns : int;  (** total injected (post-truncation) delay *)
}

val stats : t -> stats
