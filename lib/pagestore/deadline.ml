(* Cooperative per-query deadlines (see deadline.mli).  The ambient
   deadline lives in a Domain.DLS slot exactly like the profile and
   attribution sinks: arming is one save/restore, a check is one DLS
   read plus a compare when armed, one DLS read when not — cheap enough
   for the paged hot paths to call unconditionally. *)

type ctx = {
  d_op : string;
  d_armed_ns : int;
  d_deadline_ns : int;  (* absolute, on d_clock's timeline *)
  d_clock : unit -> int;
}

let slot : ctx option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let armed () =
  match !(Domain.DLS.get slot) with None -> false | Some _ -> true

let remaining_ns () =
  match !(Domain.DLS.get slot) with
  | None -> None
  | Some c -> Some (c.d_deadline_ns - c.d_clock ())

(* The context is Domain.DLS state, so both the read and the stored
   clock closure are per-domain by construction: each domain arms and
   observes only its own deadline, and the clock is either the process
   wall clock or a test-owned virtual clock scoped to the same call. *)
let[@spine.domain_safe
     "deadline context and its clock closure live in a Domain.DLS slot; \
      per-domain by construction"] check () =
  match !(Domain.DLS.get slot) with
  | None -> ()
  | Some c ->
    let now = c.d_clock () in
    if now > c.d_deadline_ns then
      Spine_error.timeout ~op:c.d_op
        ~deadline_ns:(c.d_deadline_ns - c.d_armed_ns)
        ~elapsed_ns:(now - c.d_armed_ns)

let with_deadline ?(clock = Xutil.Stopwatch.now_ns) ~op ~deadline_ns f =
  let r = Domain.DLS.get slot in
  let prev = !r in
  let now = clock () in
  r :=
    Some
      { d_op = op; d_armed_ns = now; d_deadline_ns = now + deadline_ns;
        d_clock = clock };
  Fun.protect ~finally:(fun () -> r := prev) f
