(* Seeded latency injection over Device (see latency_device.mli).  The
   injector is a hook *wrapper*: it chains onto whatever hooks are
   already installed (a Fault_device plan, a test probe), sleeps a
   deterministic per-op delay, then delegates — so latency and faults
   compose in one scenario. *)

let c_ops = Telemetry.counter "latency.injected_ops"
let h_ns = Telemetry.histogram "latency.injected_ns"

type config = {
  read_ns : int;
  write_ns : int;
  jitter_ns : int;
  seed : int;
}

let default_config = { read_ns = 0; write_ns = 0; jitter_ns = 0; seed = 1 }

type t = {
  config : config;
  sleep_ns : int -> unit;
  mutable rng : int64;
  mutable inner : Device.hooks option;
  mutable attached : Device.t option;
  mutable injected_ops : int;
  mutable injected_ns : int;
}

(* SplitMix64, the same generator Fault_device and Trace use *)
let next_rand t =
  let z = Int64.add t.rng 0x9E3779B97F4A7C15L in
  t.rng <- z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.to_int
    (Int64.logand
       (Int64.logxor z (Int64.shift_right_logical z 31))
       0x3FFF_FFFF_FFFF_FFFFL)

let create ?(sleep_ns = fun ns -> Unix.sleepf (float_of_int ns /. 1e9))
    config =
  { config; sleep_ns;
    rng = Int64.of_int (if config.seed = 0 then 0x9E3779B9 else config.seed);
    inner = None; attached = None; injected_ops = 0; injected_ns = 0 }

type stats = { ops : int; total_ns : int }

let stats t = { ops = t.injected_ops; total_ns = t.injected_ns }

let delay_for t base =
  if base <= 0 && t.config.jitter_ns <= 0 then 0
  else begin
    let jitter =
      if t.config.jitter_ns <= 0 then 0
      else next_rand t mod (t.config.jitter_ns + 1)
    in
    max 0 (base + jitter)
  end

let inject t ~what ~page base =
  let ns = delay_for t base in
  if ns > 0 then begin
    (* fail fast if the query's deadline is already overrun, and never
       sleep past it by more than the truncation below *)
    Deadline.check ();
    let ns =
      match Deadline.remaining_ns () with
      | None -> ns
      | Some rem -> min ns (max 0 rem)
    in
    if ns > 0 then begin
      t.sleep_ns ns;
      t.injected_ops <- t.injected_ops + 1;
      t.injected_ns <- t.injected_ns + ns;
      Telemetry.incr c_ops;
      Telemetry.observe h_ns ns;
      Buffer_pool.note_injected_delay ns;
      if Trace.on () then
        Trace.instant "latency.inject"
          [ Trace.Str ("op", what); Trace.Int ("page", page);
            Trace.Int ("ns", ns) ]
    end
  end

let hooks t =
  { Device.on_read =
      (fun ~page ->
        inject t ~what:"read" ~page t.config.read_ns;
        match t.inner with Some h -> h.Device.on_read ~page | None -> ());
    on_write =
      (fun ~page ~phys ->
        inject t ~what:"write" ~page t.config.write_ns;
        match t.inner with
        | Some h -> h.Device.on_write ~page ~phys
        | None -> Device.Write_through) }

let attach t dev =
  (match t.attached with
   | Some _ -> invalid_arg "Latency_device.attach: already attached"
   | None -> ());
  t.inner <- Device.hooks dev;
  t.attached <- Some dev;
  Device.set_hooks dev (Some (hooks t))

let detach t =
  match t.attached with
  | None -> ()
  | Some dev ->
    Device.set_hooks dev t.inner;
    t.inner <- None;
    t.attached <- None
