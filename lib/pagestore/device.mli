(** Simulated block device.

    The paper's disk experiments (Figure 7, Table 7) were run on an IDE
    disk with synchronous writes ([O_SYNC]) precisely so that the measured
    times reflect each index's {e access locality} rather than OS caching.
    This module reproduces that methodology deterministically: a device
    is an in-memory page map plus counters and a latency cost model.  The
    "time" an experiment reports is the accumulated simulated latency,
    which depends only on the I/O trace — identical across machines and
    runs, unlike wall-clock disk timings.

    Cost model: a page read costs [cost.read_us] microseconds, a page
    write [cost.write_us]; when [sync_writes] is set every write also
    pays [cost.sync_us], mirroring the paper's [O_SYNC] setup.
    Sequential accesses (page adjacent to the previous access) cost
    [cost.sequential_us] instead of the full seek, which is what rewards
    SPINE's append-mostly, top-skewed access pattern.

    {2 Integrity}

    With [~checksums:true] every logical page is stored in a physical
    slot of [page_size + 16] bytes: the data followed by a trailer
    carrying a magic, the {e epoch} the page was written under, and a
    CRC-32C over both.  {!read} validates the trailer and raises a
    typed {!Spine_error.Error} ([Corrupt]) on any mismatch — a flipped
    bit, a torn sector, or debris from a crashed session (a page whose
    epoch exceeds the committed ceiling, see {!set_max_valid_epoch}) is
    detected instead of silently decoded.  A never-written slot reads
    as zeroes, exactly like the unchecksummed device.

    {2 Fault injection}

    {!set_hooks} installs an observer that can fail reads, and tamper
    with / tear / drop writes — {!Fault_device} builds its deterministic
    fault plans on top of this. *)

type cost = {
  read_us : float;        (** random page read *)
  write_us : float;       (** random page write *)
  sequential_us : float;  (** read or write adjacent to previous access *)
  sync_us : float;        (** extra cost per synchronous write *)
}

val default_cost : cost
(** Calibrated to an early-2000s IDE disk: 8 ms random, 0.1 ms
    sequential, 4 ms sync overhead. Absolute values only scale the
    reported times; relative results depend only on the trace. *)

type t

val create :
  ?cost:cost -> ?sync_writes:bool -> ?checksums:bool -> page_size:int ->
  unit -> t
(** Fresh in-memory device; pages are [page_size] bytes. [sync_writes]
    and [checksums] default to [false]. *)

val create_file :
  ?cost:cost -> ?sync_writes:bool -> ?checksums:bool -> page_size:int ->
  path:string -> unit -> t
(** A device backed by a real file (created if absent, reopened
    otherwise): page [p] lives at byte offset [p * slot] where [slot]
    is [page_size] plus the 16-byte trailer when [checksums] is set.
    The simulated-latency counters still run — they model the 2004
    testbed regardless of the actual storage — but the data is durable,
    which is what {!Spine.Persistent} builds on.  Page ids must stay
    below 2^40 (sparse files handle the gaps).
    @raise Spine_error.Error ([Io_failed]) if the file cannot be
    opened. *)

val close : t -> unit
(** Release the backing file descriptor (no-op for in-memory devices). *)

val page_size : t -> int

val checksums : t -> bool
val phys_size : t -> int
(** Bytes per physical slot: [page_size] plus the trailer when
    checksummed. *)

val read : t -> int -> Bytes.t
(** [read dev p] returns a copy of page [p]'s contents (zero-filled if
    never written). Counts one read.
    @raise Spine_error.Error ([Corrupt]) when checksums are enabled and
    the slot fails validation; ([Io_failed]) on an OS error or an
    injected read fault. *)

val write : t -> int -> Bytes.t -> unit
(** [write dev p data] stores a copy of [data] as page [p] (sealed with
    an epoch-stamped checksum trailer when enabled). Counts one write
    (plus sync cost when enabled).
    @raise Invalid_argument if [data] is not exactly one page.
    @raise Spine_error.Error ([Io_failed]) on an OS error or an
    injected write fault. *)

(** {2 Epochs — crash-consistency support}

    Checksummed pages are stamped with the device's current epoch.  A
    transaction layer (see {!Spine.Persistent}) commits by recording an
    epoch ceiling in its metadata and then moving the device to a fresh
    epoch.  On reopen it restores that ceiling via
    {!set_max_valid_epoch}: any page stamped {e beyond} the ceiling can
    only be debris written by a session that crashed before committing,
    and reading it raises [Corrupt] instead of returning phantom data.
    Pages stamped with the {e current} epoch (this session's own
    writes) always validate; a ceiling of [-1] disables the check. *)

val epoch : t -> int
val set_epoch : t -> int -> unit
val max_valid_epoch : t -> int
val set_max_valid_epoch : t -> int -> unit

val set_region_namer : t -> (int -> string) -> unit
(** Name the on-disk region a page belongs to ("lt", "seq", …) for
    [Corrupt] error payloads and scrub reports. Default: ["data"]. *)

(** {2 Fault hooks} *)

type write_fault =
  | Write_through        (** store the page as given *)
  | Tampered of Bytes.t  (** store these physical bytes instead *)
  | Torn of int          (** first [n] physical bytes land, the rest of
                             the slot keeps its previous content *)
  | Dropped              (** silently lose the write *)

type hooks = {
  on_read : page:int -> unit;
      (** called before the media read; may raise to fail it *)
  on_write : page:int -> phys:Bytes.t -> write_fault;
      (** called with the sealed physical image about to be stored *)
}

val set_hooks : t -> hooks option -> unit

val hooks : t -> hooks option
(** The currently installed hooks — what a {e wrapping} injector
    ({!Latency_device}) chains onto so latency and faults compose. *)

(** {2 Raw slot access — preimage-journal support}

    A transaction layer that journals preimages (see
    {!Spine.Persistent}) must copy a physical slot exactly as it sits
    on disk and later put those exact bytes back, preserving the
    original epoch stamp; and its recovery must read journal entries
    whose epochs are deliberately beyond the committed ceiling.  These
    primitives bypass sealing, trailer validation and fault hooks, but
    still pay the normal simulated latency and count in {!stats}. *)

val raw_slot : t -> int -> Bytes.t
(** The full physical slot ([phys_size] bytes: data plus trailer when
    checksummed), unvalidated; zero-filled if never written. *)

val write_raw_slot : t -> int -> Bytes.t -> unit
(** Store exact physical bytes (no sealing: the slot's trailer is
    whatever the caller provides).
    @raise Invalid_argument if the buffer is not exactly [phys_size]. *)

val read_slot_any : t -> int -> [ `Valid of Bytes.t * int | `Invalid ]
(** [`Valid (data, epoch)] when the slot's trailer checksums correctly
    — {e ignoring} the epoch ceiling, so entries written by a crashed
    session are still readable.  [`Invalid] for holes, damage, or any
    slot of an unchecksummed device. *)

(** {2 Scrub support} *)

val physical_pages : t -> int
(** Number of physical slots the backing store currently covers (file
    size / slot size; max written page + 1 for in-memory devices). *)

val verify_page :
  t -> int ->
  [ `Ok of int | `Unwritten | `Stale of int | `Damaged of string ]
(** Classify one slot without raising: valid (with its epoch), a hole,
    stamped beyond the committed ceiling, or damaged (bad magic /
    checksum mismatch / data without a trailer).  Always [`Ok 0] on an
    unchecksummed device.  Bypasses the read counters and hooks. *)

type stats = {
  reads : int;
  writes : int;
  sequential : int;   (** accesses that hit the sequential fast path *)
  elapsed_us : float; (** accumulated simulated latency *)
}

val stats : t -> stats
val reset_stats : t -> unit

val pages_allocated : t -> int
(** Number of distinct pages ever written. *)
