(* The SPINE_FAULTS grammar, parsed to a typed plan description.
   Fault_device turns a spec into a live plan; the scenario harness
   reuses the same grammar for its fault stages, so the parser lives
   here with typed errors instead of the strings it used to bake in. *)

type kind =
  | Read_error
  | Write_error
  | Bit_flip
  | Torn_write of int
  | Crash

type arm_spec = {
  s_kind : kind;
  s_pages : (int * int) option;
  s_after : int;
  s_times : int;
}

type t = {
  seed : int option;
  arms : arm_spec list;
}

type error =
  | Not_a_number of string
  | Negative of string * int
  | Unknown_kind of string
  | Malformed_option of string
  | Unknown_option of string
  | Empty_page_range of string
  | Misplaced_keep
  | Empty_item

(* These renderings are the historical Fault_device.parse messages:
   SPINE_FAULTS diagnostics are part of the CLI surface (cram-proven),
   so the typed refactor must not change a byte of them. *)
let error_to_string = function
  | Not_a_number s -> Printf.sprintf "not a number: %S" s
  | Negative (key, v) -> Printf.sprintf "negative %s=%d" key v
  | Unknown_kind k -> Printf.sprintf "unknown fault kind %S" k
  | Malformed_option o ->
    Printf.sprintf "malformed option %S (expected key=value)" o
  | Unknown_option o -> Printf.sprintf "unknown fault option %S" o
  | Empty_page_range r -> Printf.sprintf "empty page range %S" r
  | Misplaced_keep -> "keep= only applies to torn"
  | Empty_item -> "empty fault item"

let int_of s =
  match int_of_string_opt (String.trim s) with
  | Some v -> Ok v
  | None -> Error (Not_a_number s)

(* every option is a count or a byte/page position: negatives would
   reach Bytes.blit / modulo arithmetic as untyped Invalid_argument *)
let nonneg key s =
  match int_of s with
  | Ok v when v < 0 -> Error (Negative (key, v))
  | r -> r

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let parse_item item =
  match String.split_on_char ':' (String.trim item) with
  | [] -> Error Empty_item
  | kind_s :: opts ->
    let* kind =
      match kind_s with
      | "read_error" -> Ok Read_error
      | "write_error" -> Ok Write_error
      | "flip" -> Ok Bit_flip
      | "torn" -> Ok (Torn_write 0)
      | "crash" -> Ok Crash
      | other -> Error (Unknown_kind other)
    in
    let rec opts_loop kind pages after times = function
      | [] -> Ok { s_kind = kind; s_pages = pages; s_after = after; s_times = times }
      | o :: rest ->
        (match String.index_opt o '=' with
         | None -> Error (Malformed_option o)
         | Some eq ->
           let key = String.sub o 0 eq in
           let value = String.sub o (eq + 1) (String.length o - eq - 1) in
           (match key with
            | "after" ->
              let* v = nonneg "after" value in
              opts_loop kind pages v times rest
            | "times" ->
              let* v = nonneg "times" value in
              opts_loop kind pages after v rest
            | "keep" ->
              (match kind with
               | Torn_write _ ->
                 let* v = nonneg "keep" value in
                 opts_loop (Torn_write v) pages after times rest
               | _ -> Error Misplaced_keep)
            | "page" ->
              (match String.index_opt value '-' with
               | None ->
                 let* v = nonneg "page" value in
                 opts_loop kind (Some (v, v)) after times rest
               | Some dash ->
                 let* lo = nonneg "page" (String.sub value 0 dash) in
                 let* hi =
                   nonneg "page"
                     (String.sub value (dash + 1)
                        (String.length value - dash - 1))
                 in
                 if hi < lo then Error (Empty_page_range value)
                 else opts_loop kind (Some (lo, hi)) after times rest)
            | other -> Error (Unknown_option other)))
    in
    opts_loop kind None 0 1 opts

let parse spec =
  let items =
    List.filter
      (fun s -> String.length (String.trim s) > 0)
      (String.split_on_char ';' spec)
  in
  let rec go seed arms = function
    | [] -> Ok { seed; arms = List.rev arms }
    | item :: rest ->
      let trimmed = String.trim item in
      if String.length trimmed > 5
         && String.equal (String.sub trimmed 0 5) "seed="
      then
        let* v = int_of (String.sub trimmed 5 (String.length trimmed - 5)) in
        go (Some v) arms rest
      else
        let* a = parse_item trimmed in
        go seed (a :: arms) rest
  in
  go None [] items

let kind_name = function
  | Read_error -> "read_error"
  | Write_error -> "write_error"
  | Bit_flip -> "flip"
  | Torn_write _ -> "torn"
  | Crash -> "crash"

let arm_to_string a =
  let b = Buffer.create 32 in
  Buffer.add_string b (kind_name a.s_kind);
  (match a.s_kind with
   | Torn_write keep when keep <> 0 ->
     Buffer.add_string b (Printf.sprintf ":keep=%d" keep)
   | _ -> ());
  (match a.s_pages with
   | None -> ()
   | Some (lo, hi) when lo = hi ->
     Buffer.add_string b (Printf.sprintf ":page=%d" lo)
   | Some (lo, hi) -> Buffer.add_string b (Printf.sprintf ":page=%d-%d" lo hi));
  if a.s_after <> 0 then Buffer.add_string b (Printf.sprintf ":after=%d" a.s_after);
  if a.s_times <> 1 then Buffer.add_string b (Printf.sprintf ":times=%d" a.s_times);
  Buffer.contents b

let to_string t =
  let seed = match t.seed with
    | None -> []
    | Some s -> [ Printf.sprintf "seed=%d" s ]
  in
  String.concat ";" (seed @ List.map arm_to_string t.arms)
