(* Device-level telemetry: page and byte traffic aggregated across
   every device a run creates (the per-device [stats] record stays the
   scoped view). *)
let c_reads = Telemetry.counter "device.read_pages"
let c_writes = Telemetry.counter "device.write_pages"
let c_read_bytes = Telemetry.counter "device.read_bytes"
let c_write_bytes = Telemetry.counter "device.write_bytes"
let c_crc_errors = Telemetry.counter "device.crc_errors"
let c_stale_epochs = Telemetry.counter "device.stale_epochs"

type cost = {
  read_us : float;
  write_us : float;
  sequential_us : float;
  sync_us : float;
}

let default_cost =
  { read_us = 8000.0; write_us = 9000.0; sequential_us = 100.0; sync_us = 4000.0 }

type backend =
  | Mem of Bytes.t Xutil.Int_tbl.t
  | File of Unix.file_descr

(* Verdict a fault hook renders on an outgoing physical page image. *)
type write_fault =
  | Write_through
  | Tampered of Bytes.t
  | Torn of int
  | Dropped

type hooks = {
  on_read : page:int -> unit;
  on_write : page:int -> phys:Bytes.t -> write_fault;
}

(* Checksummed devices append a 16-byte trailer to every page:
     +0  u32  magic "SPCK"
     +4  u32  epoch the page was written under
     +8  u32  CRC-32C over data + magic + epoch
     +12 u32  reserved (zero)
   An all-zero trailer marks a never-written (hole) page. *)
let trailer_bytes = 16
let trailer_magic = 0x4B435053 (* "SPCK" little-endian *)

type t = {
  page_size : int;
  cost : cost;
  sync_writes : bool;
  checksums : bool;
  backend : backend;
  mutable epoch : int;            (* stamp applied to outgoing pages *)
  mutable max_valid_epoch : int;  (* committed ceiling; -1 = no check *)
  mutable region_of : int -> string;
  mutable hooks : hooks option;
  mutable allocated : int;      (* distinct pages written (file backend) *)
  written : unit Xutil.Int_tbl.t;
  mutable last_page : int;      (* previously accessed page, -2 = none *)
  mutable reads : int;
  mutable writes : int;
  mutable sequential : int;
  mutable elapsed_us : float;
}

let make ?(cost = default_cost) ?(sync_writes = false) ?(checksums = false)
    ~page_size backend =
  if page_size <= 0 then invalid_arg "Device.create: page_size must be positive";
  { page_size; cost; sync_writes; checksums; backend;
    epoch = 1; max_valid_epoch = -1;
    region_of = (fun _ -> "data");
    hooks = None;
    allocated = 0;
    written = Xutil.Int_tbl.create 1024;
    last_page = -2; reads = 0; writes = 0; sequential = 0; elapsed_us = 0.0 }

let create ?cost ?sync_writes ?checksums ~page_size () =
  make ?cost ?sync_writes ?checksums ~page_size (Mem (Xutil.Int_tbl.create 1024))

let create_file ?cost ?sync_writes ?checksums ~page_size ~path () =
  let fd =
    try Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644
    with Unix.Unix_error (err, _, _) ->
      Spine_error.io_failed ~op:Spine_error.Read "%s: %s" path
        (Unix.error_message err)
  in
  make ?cost ?sync_writes ?checksums ~page_size (File fd)

let close t =
  match t.backend with
  | Mem _ -> ()
  | File fd -> Unix.close fd

let page_size t = t.page_size
let checksums t = t.checksums
let phys_size t = if t.checksums then t.page_size + trailer_bytes else t.page_size

let epoch t = t.epoch
let set_epoch t e = t.epoch <- e
let max_valid_epoch t = t.max_valid_epoch
let set_max_valid_epoch t e = t.max_valid_epoch <- e
let set_region_namer t f = t.region_of <- f
let set_hooks t h = t.hooks <- h
let hooks t = t.hooks

let charge t page full_cost =
  let sequential = page = t.last_page || page = t.last_page + 1 in
  if sequential then begin
    t.sequential <- t.sequential + 1;
    t.elapsed_us <- t.elapsed_us +. t.cost.sequential_us
  end
  else t.elapsed_us <- t.elapsed_us +. full_cost;
  t.last_page <- page

(* raw physical-slot transfer, below checksums and fault injection *)

let read_phys t page =
  let size = phys_size t in
  match t.backend with
  | Mem pages ->
    (match Xutil.Int_tbl.find_opt pages page with
     | Some data -> Bytes.copy data
     | None -> Bytes.make size '\000')
  | File fd ->
    let buf = Bytes.make size '\000' in
    (try
       ignore (Unix.lseek fd (page * size) Unix.SEEK_SET);
       (* short reads (holes / EOF) leave the zero fill in place *)
       let rec fill off =
         if off < size then begin
           let k = Unix.read fd buf off (size - off) in
           if k > 0 then fill (off + k)
         end
       in
       fill 0
     with Unix.Unix_error (err, _, _) ->
       Spine_error.io_failed ~op:Spine_error.Read ~page "%s"
         (Unix.error_message err));
    buf

let write_phys t page data =
  let size = phys_size t in
  if not (Xutil.Int_tbl.mem t.written page) then
    Xutil.Int_tbl.replace t.written page ();
  match t.backend with
  | Mem pages -> Xutil.Int_tbl.replace pages page (Bytes.copy data)
  | File fd ->
    (try
       ignore (Unix.lseek fd (page * size) Unix.SEEK_SET);
       let rec drain off =
         if off < size then drain (off + Unix.write fd data off (size - off))
       in
       drain 0
     with Unix.Unix_error (err, _, _) ->
       Spine_error.io_failed ~op:Spine_error.Write ~page "%s"
         (Unix.error_message err))

(* trailer assembly / validation *)

let get_u32 b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let set_u32 b off v =
  Bytes.set b off (Char.chr (v land 0xFF));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xFF))

let seal t data =
  let ps = t.page_size in
  let phys = Bytes.make (ps + trailer_bytes) '\000' in
  Bytes.blit data 0 phys 0 ps;
  set_u32 phys ps trailer_magic;
  set_u32 phys (ps + 4) t.epoch;
  set_u32 phys (ps + 8) (Xutil.Crc32c.digest phys ~pos:0 ~len:(ps + 8));
  phys

let all_zero b lo hi =
  let rec go i = i >= hi || (Char.equal (Bytes.get b i) '\000' && go (i + 1)) in
  go lo

(* Classify a physical slot without raising: shared by [read] (which
   turns damage into typed errors) and the scrub walk (which reports). *)
let inspect t phys =
  let ps = t.page_size in
  if all_zero phys ps (ps + trailer_bytes) then
    if all_zero phys 0 ps then `Unwritten
    else `Damaged "nonzero data in a page with no trailer"
  else begin
    let magic = get_u32 phys ps in
    let e = get_u32 phys (ps + 4) in
    let crc = get_u32 phys (ps + 8) in
    if magic <> trailer_magic then
      `Damaged (Printf.sprintf "bad trailer magic 0x%08x" magic)
    else if Xutil.Crc32c.digest phys ~pos:0 ~len:(ps + 8) <> crc then
      `Damaged "checksum mismatch"
    else if t.max_valid_epoch >= 0 && e > t.max_valid_epoch && e <> t.epoch
    then `Stale e
    else `Ok e
  end

let unseal t page phys =
  match inspect t phys with
  | `Unwritten | `Ok _ -> Bytes.sub phys 0 t.page_size
  | `Damaged detail ->
    Telemetry.incr c_crc_errors;
    if Trace.on () then
      Trace.instant "device.crc_error" [ Trace.Int ("page", page) ];
    Spine_error.raise_error
      (Spine_error.Corrupt { region = t.region_of page; page; detail })
  | `Stale e ->
    Telemetry.incr c_stale_epochs;
    if Trace.on () then
      Trace.instant "device.stale_epoch"
        [ Trace.Int ("page", page); Trace.Int ("epoch", e) ];
    Spine_error.raise_error
      (Spine_error.Corrupt
         { region = t.region_of page; page;
           detail =
             Printf.sprintf
               "page written at epoch %d, beyond the committed ceiling %d \
                (debris from a crashed session)"
               e t.max_valid_epoch })

let read t page =
  t.reads <- t.reads + 1;
  Telemetry.incr c_reads;
  Telemetry.add c_read_bytes t.page_size;
  if Trace.on () then
    Trace.instant "device.read"
      [ Trace.Int ("page", page); Trace.Int ("bytes", t.page_size) ];
  charge t page t.cost.read_us;
  (match t.hooks with Some h -> h.on_read ~page | None -> ());
  let phys = read_phys t page in
  if t.checksums then unseal t page phys else phys

let write t page data =
  if Bytes.length data <> t.page_size then
    invalid_arg "Device.write: data is not exactly one page";
  t.writes <- t.writes + 1;
  Telemetry.incr c_writes;
  Telemetry.add c_write_bytes t.page_size;
  if Trace.on () then
    Trace.instant "device.write"
      [ Trace.Int ("page", page); Trace.Int ("bytes", t.page_size) ];
  charge t page t.cost.write_us;
  if t.sync_writes then t.elapsed_us <- t.elapsed_us +. t.cost.sync_us;
  let phys = if t.checksums then seal t data else Bytes.copy data in
  match t.hooks with
  | None -> write_phys t page phys
  | Some h ->
    (match h.on_write ~page ~phys with
     | Write_through -> write_phys t page phys
     | Tampered b -> write_phys t page b
     | Dropped -> ()
     | Torn keep ->
       (* first [keep] physical bytes land; the rest of the slot keeps
          its previous content — a torn sector write.  [keep] comes from
          user-controlled fault plans, so clamp it into the slot. *)
       let old = read_phys t page in
       let keep = min (max 0 keep) (Bytes.length old) in
       Bytes.blit phys 0 old 0 keep;
       write_phys t page old)

(* raw physical-slot access: the preimage-journal primitives.  These
   bypass sealing, validation and fault hooks — they exist so a
   transaction layer can copy a slot exactly as it is on disk and later
   put those exact bytes back (restoring the original epoch stamp), and
   so recovery can read journal entries whose epochs are deliberately
   beyond the committed ceiling.  Cost accounting still applies: a
   capture or restore pays the same simulated latency as any other
   page transfer. *)

let raw_slot t page =
  t.reads <- t.reads + 1;
  Telemetry.incr c_reads;
  Telemetry.add c_read_bytes t.page_size;
  charge t page t.cost.read_us;
  read_phys t page

let write_raw_slot t page phys =
  if Bytes.length phys <> phys_size t then
    invalid_arg "Device.write_raw_slot: not exactly one physical slot";
  t.writes <- t.writes + 1;
  Telemetry.incr c_writes;
  Telemetry.add c_write_bytes t.page_size;
  charge t page t.cost.write_us;
  if t.sync_writes then t.elapsed_us <- t.elapsed_us +. t.cost.sync_us;
  write_phys t page phys

let read_slot_any t page =
  if not t.checksums then `Invalid
  else begin
    let phys = raw_slot t page in
    match inspect t phys with
    | `Ok e | `Stale e -> `Valid (Bytes.sub phys 0 t.page_size, e)
    | `Unwritten | `Damaged _ -> `Invalid
  end

(* scrub support: raw classification of every slot, no exceptions *)

let physical_pages t =
  match t.backend with
  | Mem pages ->
    Xutil.Int_tbl.fold (fun page _ acc -> max acc (page + 1)) pages 0
  | File fd ->
    let size = Unix.lseek fd 0 Unix.SEEK_END in
    (size + phys_size t - 1) / phys_size t

let verify_page t page =
  if not t.checksums then `Ok 0
  else
    match inspect t (read_phys t page) with
    | `Unwritten -> `Unwritten
    | `Ok e -> `Ok e
    | `Stale e -> `Stale e
    | `Damaged d -> `Damaged d

let reset_stats t =
  t.reads <- 0; t.writes <- 0; t.sequential <- 0;
  t.elapsed_us <- 0.0; t.last_page <- -2

type stats = {
  reads : int;
  writes : int;
  sequential : int;
  elapsed_us : float;
}

let stats (t : t) =
  { reads = t.reads; writes = t.writes;
    sequential = t.sequential; elapsed_us = t.elapsed_us }

let pages_allocated t = Xutil.Int_tbl.length t.written
