(* Device-level telemetry: page and byte traffic aggregated across
   every device a run creates (the per-device [stats] record stays the
   scoped view). *)
let c_reads = Telemetry.counter "device.read_pages"
let c_writes = Telemetry.counter "device.write_pages"
let c_read_bytes = Telemetry.counter "device.read_bytes"
let c_write_bytes = Telemetry.counter "device.write_bytes"

type cost = {
  read_us : float;
  write_us : float;
  sequential_us : float;
  sync_us : float;
}

let default_cost =
  { read_us = 8000.0; write_us = 9000.0; sequential_us = 100.0; sync_us = 4000.0 }

type backend =
  | Mem of Bytes.t Xutil.Int_tbl.t
  | File of Unix.file_descr

type t = {
  page_size : int;
  cost : cost;
  sync_writes : bool;
  backend : backend;
  mutable allocated : int;      (* distinct pages written (file backend) *)
  written : unit Xutil.Int_tbl.t;
  mutable last_page : int;      (* previously accessed page, -2 = none *)
  mutable reads : int;
  mutable writes : int;
  mutable sequential : int;
  mutable elapsed_us : float;
}

let make ?(cost = default_cost) ?(sync_writes = false) ~page_size backend =
  if page_size <= 0 then invalid_arg "Device.create: page_size must be positive";
  { page_size; cost; sync_writes; backend;
    allocated = 0;
    written = Xutil.Int_tbl.create 1024;
    last_page = -2; reads = 0; writes = 0; sequential = 0; elapsed_us = 0.0 }

let create ?cost ?sync_writes ~page_size () =
  make ?cost ?sync_writes ~page_size (Mem (Xutil.Int_tbl.create 1024))

let create_file ?cost ?sync_writes ~page_size ~path () =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  make ?cost ?sync_writes ~page_size (File fd)

let close t =
  match t.backend with
  | Mem _ -> ()
  | File fd -> Unix.close fd

let page_size t = t.page_size

let charge t page full_cost =
  let sequential = page = t.last_page || page = t.last_page + 1 in
  if sequential then begin
    t.sequential <- t.sequential + 1;
    t.elapsed_us <- t.elapsed_us +. t.cost.sequential_us
  end
  else t.elapsed_us <- t.elapsed_us +. full_cost;
  t.last_page <- page

let read t page =
  t.reads <- t.reads + 1;
  Telemetry.incr c_reads;
  Telemetry.add c_read_bytes t.page_size;
  if Trace.on () then
    Trace.instant "device.read"
      [ Trace.Int ("page", page); Trace.Int ("bytes", t.page_size) ];
  charge t page t.cost.read_us;
  match t.backend with
  | Mem pages ->
    (match Xutil.Int_tbl.find_opt pages page with
     | Some data -> Bytes.copy data
     | None -> Bytes.make t.page_size '\000')
  | File fd ->
    let buf = Bytes.make t.page_size '\000' in
    ignore (Unix.lseek fd (page * t.page_size) Unix.SEEK_SET);
    (* short reads (holes / EOF) leave the zero fill in place *)
    let rec fill off =
      if off < t.page_size then begin
        let k = Unix.read fd buf off (t.page_size - off) in
        if k > 0 then fill (off + k)
      end
    in
    fill 0;
    buf

let write t page data =
  if Bytes.length data <> t.page_size then
    invalid_arg "Device.write: data is not exactly one page";
  t.writes <- t.writes + 1;
  Telemetry.incr c_writes;
  Telemetry.add c_write_bytes t.page_size;
  if Trace.on () then
    Trace.instant "device.write"
      [ Trace.Int ("page", page); Trace.Int ("bytes", t.page_size) ];
  charge t page t.cost.write_us;
  if t.sync_writes then t.elapsed_us <- t.elapsed_us +. t.cost.sync_us;
  if not (Xutil.Int_tbl.mem t.written page) then
    Xutil.Int_tbl.replace t.written page ();
  match t.backend with
  | Mem pages -> Xutil.Int_tbl.replace pages page (Bytes.copy data)
  | File fd ->
    ignore (Unix.lseek fd (page * t.page_size) Unix.SEEK_SET);
    let rec drain off =
      if off < t.page_size then
        drain (off + Unix.write fd data off (t.page_size - off))
    in
    drain 0

let reset_stats t =
  t.reads <- 0; t.writes <- 0; t.sequential <- 0;
  t.elapsed_us <- 0.0; t.last_page <- -2

type stats = {
  reads : int;
  writes : int;
  sequential : int;
  elapsed_us : float;
}

let stats (t : t) =
  { reads = t.reads; writes = t.writes;
    sequential = t.sequential; elapsed_us = t.elapsed_us }

let pages_allocated t = Xutil.Int_tbl.length t.written
