(** Deterministic fault injection for {!Device}.

    A fault {e plan} is a seed plus a list of {e arms}; attaching it to
    a device (via {!Device.set_hooks}) makes the device misbehave in
    precisely scripted ways:

    - [Read_error] / [Write_error]: the operation raises a {e transient}
      typed {!Spine_error.Error} ([Io_failed]) — what the buffer pool's
      retry path is for.
    - [Bit_flip]: the page is stored with one randomly chosen bit
      inverted (media corruption {e after} the checksum was computed,
      so integrity checking must catch it on read-back).
    - [Torn_write n]: only the first [n] physical bytes of the write
      land; the device then {e freezes} — a sector-granularity power
      cut.
    - [Crash]: the write (and every subsequent write) is silently
      dropped — the file image is frozen exactly as it was, simulating
      a process kill at that point.

    Every decision is a pure function of the plan (seed, arm order) and
    the device-operation sequence, so any failing trial replays from
    its plan string alone.

    Plans parse from the [SPINE_FAULTS] environment variable; see
    {!parse} for the grammar. *)

type kind = Fault_spec.kind =
  | Read_error
  | Write_error
  | Bit_flip
  | Torn_write of int  (** physical bytes that land before the cut *)
  | Crash

type arm
(** One scripted fault: a kind, an optional inclusive page range it
    applies to, [after] = number of matching operations to let through
    first, [times] = how many times it fires (consecutive operations
    for the error kinds). *)

val arm : ?pages:int * int -> ?after:int -> ?times:int -> kind -> arm
(** [after] defaults to 0, [times] to 1. *)

type t

val create : ?seed:int -> arm list -> t
(** A fresh plan ([seed] defaults to 1; it drives bit-flip placement). *)

val attach : t -> Device.t -> unit
(** Install the plan as the device's fault hooks (replacing any). *)

val detach : Device.t -> unit

val frozen : t -> bool
(** True once a [Torn_write] or [Crash] arm fired: the device image is
    fixed, all further writes are dropped. *)

val seed : t -> int

type stats = {
  read_errors : int;
  write_errors : int;
  bit_flips : int;
  torn_writes : int;
  crashes : int;
  dropped_writes : int;  (** writes swallowed after the freeze *)
}

val stats : t -> stats

(** {2 The [SPINE_FAULTS] grammar}

    The grammar and its typed parser live in {!Fault_spec}; these
    wrappers instantiate a parsed spec as a live plan. *)

val of_spec : Fault_spec.t -> t
(** Instantiate a typed spec (seed defaulting as {!create}). *)

val parse : string -> (t, string) result
(** [Fault_spec.parse] rendered through {!Fault_spec.error_to_string} —
    the historical message strings, byte for byte. *)

val env_var : string
(** ["SPINE_FAULTS"]. *)

val of_env : unit -> t option
(** Plan from [SPINE_FAULTS] ([None] when unset or empty).
    @raise Invalid_argument when the variable is set but malformed —
    a scripted fault run with a typo should fail loudly, not run
    clean. *)
