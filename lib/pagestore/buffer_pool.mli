(** Fixed-capacity buffer pool over a {!Device}.

    All disk-resident index structures route their page accesses through
    a pool of [frames] in-memory page buffers.  Replacement is LRU, with
    an optional {e pinning policy}: the paper observes (Figure 8) that
    SPINE's backward links overwhelmingly target the top of the backbone
    and concludes that "retain as much as possible of the top part of the
    Link Table in memory" is a sufficient buffering strategy.  Passing
    [pin] marks pages as preferred residents: a pinned page is only
    evicted when every frame holds a pinned page. *)

type t

type replacement = [ `Lru | `Fifo ]
(** [`Fifo] models the simplest possible buffer manager (no recency
    tracking); the pinning ablation uses it to show that the paper's
    static pin-the-top policy recovers most of what recency tracking
    buys. *)

val create :
  ?pin:(int -> bool) -> ?replacement:replacement -> frames:int ->
  Device.t -> t
(** [create ~frames dev] builds a pool of [frames] page buffers
    (default replacement [`Lru]).
    @raise Invalid_argument if [frames < 1]. *)

val device : t -> Device.t

val frames : t -> int
(** The pool's fixed frame capacity (the [frames] passed to
    {!create}); frame memory is [frames * page size] bytes. *)

val set_writeback_hook : t -> (int -> unit) option -> unit
(** Install a callback invoked with the page id {e before} every dirty
    frame is written back to the device (eviction, {!flush}, {!drop}).
    {!Spine.Persistent} uses it to journal the preimage of committed
    pages so a crash after an in-place overwrite stays recoverable.  An
    exception from the hook aborts that writeback (the frame stays
    dirty, the device page is untouched) and propagates. *)

val with_page : t -> int -> dirty:bool -> (Bytes.t -> 'a) -> 'a
(** [with_page pool p ~dirty f] pins page [p] into a frame (reading it
    from the device on a miss), applies [f] to the frame's buffer, and
    marks the frame dirty when [dirty] is true.  The buffer must not be
    retained after [f] returns. Reentrant calls on {e distinct} pages are
    allowed up to the frame count.

    Transient device errors (injected I/O faults) are retried a few
    times before propagating; permanent errors and checksum failures
    pass through as raised.
    @raise Spine_error.Error ([Pool_exhausted]) when every frame is
    latched by a live caller (after one writeback-and-rescan pass);
    ([Corrupt] / [Io_failed]) propagated from the device. *)

val flush : t -> unit
(** Write back every dirty frame. *)

val drop : t -> unit
(** Flush, then empty the pool (subsequent accesses re-read the device);
    used between experiment phases to measure cold-cache behaviour. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  pinned_evictions : int;
      (** evictions that had to sacrifice a pinned page because every
          resident frame was pinned — the failure mode of the paper's
          static pin-the-top policy under an undersized pool *)
  writebacks : int;
}

val stats : t -> stats
val reset_stats : t -> unit
(** Zero every counter (frame contents are untouched). *)

(** {2 Per-query attribution}

    The pool's telemetry counters are process-global aggregates; the
    attribution hook answers {e which query} caused the page traffic.
    Installing a sink with {!with_attribution} charges every hit, miss,
    eviction and device transfer that {e any} pool performs on the
    calling domain, for the dynamic extent of the callback, to that
    sink — the same increments the [pool.*] counters and the device
    byte counters receive, so on a single-domain fault-free run the
    per-query sinks sum exactly to the global telemetry deltas.
    [Profile.profiled] is the intended caller. *)

type attribution = {
  mutable at_hits : int;
  mutable at_misses : int;
  mutable at_evictions : int;
  mutable at_read_bytes : int;
      (** device bytes read by miss fills ([page size] per fill;
          injected-fault retries re-read but are charged once) *)
  mutable at_write_bytes : int;
      (** device bytes written by writebacks this operation forced *)
  mutable at_io_retries : int;
      (** transient-I/O retry passes this operation paid (mirrors the
          [pool.io_retries] counter) *)
  mutable at_injected_delay_ns : int;
      (** latency the injector ({!Latency_device}) charged to this
          operation's device traffic *)
}

val fresh_attribution : unit -> attribution
(** An all-zero sink. *)

val note_injected_delay : int -> unit
(** Charge [ns] of injected device latency to the calling domain's
    attribution sink (no-op without one) — {!Latency_device} calls this
    so per-query profiles carry the delay they were subjected to. *)

val with_attribution : attribution -> (unit -> 'a) -> 'a
(** [with_attribution sink f] runs [f] with [sink] installed as the
    calling domain's attribution target, restoring the previous target
    (scopes nest by shadowing) even on exceptions.  Per-domain: other
    domains' pool traffic is never charged to [sink]. *)
