(* Deterministic fault injection over Device, in the spirit of
   crash-consistency test harnesses (ALICE, LevelDB's torn-write
   checks): every fault a plan injects is a pure function of the plan's
   seed and the sequence of device operations, so a failing trial is
   replayable from its SPINE_FAULTS string alone. *)

let c_read_errors = Telemetry.counter "fault.read_errors"
let c_write_errors = Telemetry.counter "fault.write_errors"
let c_bit_flips = Telemetry.counter "fault.bit_flips"
let c_torn_writes = Telemetry.counter "fault.torn_writes"
let c_crashes = Telemetry.counter "fault.crashes"
let c_dropped = Telemetry.counter "fault.dropped_writes"

type kind = Fault_spec.kind =
  | Read_error
  | Write_error
  | Bit_flip
  | Torn_write of int
  | Crash

type arm = {
  kind : kind;
  pages : (int * int) option;
  mutable after : int;
  mutable times : int;
}

let arm ?pages ?(after = 0) ?(times = 1) kind = { kind; pages; after; times }

type stats = {
  read_errors : int;
  write_errors : int;
  bit_flips : int;
  torn_writes : int;
  crashes : int;
  dropped_writes : int;
}

type t = {
  seed : int;
  arms : arm list;
  mutable rng : int64;
  mutable frozen : bool;
  mutable read_errors : int;
  mutable write_errors : int;
  mutable bit_flips : int;
  mutable torn_writes : int;
  mutable crashes : int;
  mutable dropped_writes : int;
}

let create ?(seed = 1) arms =
  { seed; arms;
    rng = Int64.of_int (if seed = 0 then 0x9E3779B9 else seed);
    frozen = false;
    read_errors = 0; write_errors = 0; bit_flips = 0; torn_writes = 0;
    crashes = 0; dropped_writes = 0 }

let seed t = t.seed
let frozen t = t.frozen

let stats t =
  { read_errors = t.read_errors; write_errors = t.write_errors;
    bit_flips = t.bit_flips; torn_writes = t.torn_writes;
    crashes = t.crashes; dropped_writes = t.dropped_writes }

(* SplitMix64, same generator Trace uses for sampling decisions *)
let next_rand t =
  let z = Int64.add t.rng 0x9E3779B97F4A7C15L in
  t.rng <- z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  (* mask to 62 bits: Int64.to_int of anything wider wraps negative on
     64-bit OCaml, which would make rand_below return negative values *)
  Int64.to_int
    (Int64.logand
       (Int64.logxor z (Int64.shift_right_logical z 31))
       0x3FFF_FFFF_FFFF_FFFFL)

let rand_below t n = if n <= 1 then 0 else next_rand t mod n

let page_matches a page =
  match a.pages with
  | None -> true
  | Some (lo, hi) -> page >= lo && page <= hi

(* Does this armed fault fire for this operation?  [after] skips that
   many matching operations first; [times] bounds how often it fires. *)
let triggers a page =
  if a.times <= 0 || not (page_matches a page) then false
  else if a.after > 0 then begin
    a.after <- a.after - 1;
    false
  end
  else begin
    a.times <- a.times - 1;
    true
  end

let is_read_kind = function Read_error -> true | _ -> false

let on_read t ~page =
  if not t.frozen then
    List.iter
      (fun a ->
        if is_read_kind a.kind && triggers a page then begin
          t.read_errors <- t.read_errors + 1;
          Telemetry.incr c_read_errors;
          if Trace.on () then
            Trace.instant "fault.read_error" [ Trace.Int ("page", page) ];
          Spine_error.io_failed ~op:Spine_error.Read ~page ~transient:true
            "injected read error (seed %d)" t.seed
        end)
      t.arms

let flip_one_bit t phys =
  let b = Bytes.copy phys in
  (* stay clear of the trailer's 4 reserved bytes: a flip there is the
     one spot integrity checking deliberately does not cover *)
  let span = max 1 (Bytes.length b - 4) in
  let byte = rand_below t span in
  let bit = rand_below t 8 in
  Bytes.set b byte
    (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
  b

let on_write t ~page ~phys =
  if t.frozen then begin
    t.dropped_writes <- t.dropped_writes + 1;
    Telemetry.incr c_dropped;
    Device.Dropped
  end
  else begin
    let verdict = ref Device.Write_through in
    (try
       List.iter
         (fun a ->
           if not (is_read_kind a.kind) && triggers a page then begin
             (match a.kind with
              | Read_error -> ()
              | Write_error ->
                t.write_errors <- t.write_errors + 1;
                Telemetry.incr c_write_errors;
                if Trace.on () then
                  Trace.instant "fault.write_error" [ Trace.Int ("page", page) ];
                Spine_error.io_failed ~op:Spine_error.Write ~page
                  ~transient:true "injected write error (seed %d)" t.seed
              | Bit_flip ->
                t.bit_flips <- t.bit_flips + 1;
                Telemetry.incr c_bit_flips;
                if Trace.on () then
                  Trace.instant "fault.bit_flip" [ Trace.Int ("page", page) ];
                verdict := Device.Tampered (flip_one_bit t phys)
              | Torn_write keep ->
                t.torn_writes <- t.torn_writes + 1;
                Telemetry.incr c_torn_writes;
                if Trace.on () then
                  Trace.instant "fault.torn_write"
                    [ Trace.Int ("page", page); Trace.Int ("keep", keep) ];
                t.frozen <- true;
                verdict := Device.Torn keep
              | Crash ->
                t.crashes <- t.crashes + 1;
                Telemetry.incr c_crashes;
                if Trace.on () then
                  Trace.instant "fault.crash" [ Trace.Int ("page", page) ];
                t.frozen <- true;
                verdict := Device.Dropped);
             raise Exit
           end)
         t.arms
     with Exit -> ());
    !verdict
  end

let attach t dev =
  Device.set_hooks dev
    (Some
       { Device.on_read = (fun ~page -> on_read t ~page);
         on_write = (fun ~page ~phys -> on_write t ~page ~phys) })

let detach dev = Device.set_hooks dev None

(* --- SPINE_FAULTS grammar ---

   The grammar and its typed parser live in Fault_spec (the scenario
   harness embeds the same spec strings in its fault stages); this end
   only instantiates a parsed spec as a live plan. *)

let of_spec (s : Fault_spec.t) =
  create ?seed:s.Fault_spec.seed
    (List.map
       (fun (a : Fault_spec.arm_spec) ->
         { kind = a.Fault_spec.s_kind; pages = a.Fault_spec.s_pages;
           after = a.Fault_spec.s_after; times = a.Fault_spec.s_times })
       s.Fault_spec.arms)

let parse spec =
  match Fault_spec.parse spec with
  | Ok s -> Ok (of_spec s)
  | Error e -> Error (Fault_spec.error_to_string e)

let env_var = "SPINE_FAULTS"

let of_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> None
  | Some spec ->
    (match parse spec with
     | Ok t -> Some t
     | Error msg ->
       invalid_arg (Printf.sprintf "%s: %s (in %S)" env_var msg spec))
