type region = {
  structure : int;
  base_page : int;
  record_bytes : int;
}

type t = {
  pool : Buffer_pool.t;
  regions : region option array;   (* indexed by structure id *)
  page_size : int;
}

let create pool regions =
  let max_id =
    List.fold_left (fun acc r -> max acc r.structure) 0 regions
  in
  let arr = Array.make (max_id + 1) None in
  List.iter
    (fun r ->
      if Option.is_some arr.(r.structure) then
        invalid_arg "Trace_router.create: duplicate structure id";
      if r.record_bytes <= 0 then
        invalid_arg "Trace_router.create: bad record size";
      arr.(r.structure) <- Some r)
    regions;
  { pool;
    regions = arr;
    page_size = Device.page_size (Buffer_pool.device pool) }

let page_of t ~structure ~index =
  match
    if structure < Array.length t.regions then t.regions.(structure) else None
  with
  | None -> invalid_arg "Trace_router.page_of: unknown structure"
  | Some r ->
    let per_page = max 1 (t.page_size / r.record_bytes) in
    r.base_page + (index / per_page)

let route t ~structure ~index ~write =
  match
    if structure < Array.length t.regions then t.regions.(structure) else None
  with
  | None -> ()
  | Some r ->
    let per_page = max 1 (t.page_size / r.record_bytes) in
    let page = r.base_page + (index / per_page) in
    (* the attribution record: which structure's record landed on which
       page — the link between a traversal step and its page fault *)
    if Trace.on () then
      Trace.instant "router.access"
        [ Trace.Int ("structure", structure); Trace.Int ("index", index);
          Trace.Int ("page", page); Trace.Int ("write", if write then 1 else 0) ];
    Buffer_pool.with_page t.pool page ~dirty:write (fun _ -> ())

let pool t = t.pool
