(* Frames form an intrusive doubly-linked LRU list (indices into the
   frame arrays). [head] is most recently used, [tail] least. *)

(* Global telemetry mirrors of the per-pool stats: cheap aggregate
   counters experiments read across every pool a run creates. *)
let c_hits = Telemetry.counter "pool.hits"
let c_misses = Telemetry.counter "pool.misses"
let c_evictions = Telemetry.counter "pool.evictions"
let c_pinned_evictions = Telemetry.counter "pool.pinned_evictions"
let c_writebacks = Telemetry.counter "pool.writebacks"
let c_flushes = Telemetry.counter "pool.flushes"
let c_io_retries = Telemetry.counter "pool.io_retries"
let c_exhausted = Telemetry.counter "pool.exhausted"

type replacement = [ `Lru | `Fifo ]

(* --- per-query attribution ---------------------------------------- *)

(* A scoped sink for the pool work one logical operation causes.  The
   profiler installs a sink around a single query; every pool in the
   process then charges that query's hits, misses, evictions and device
   bytes to it — the same increments the global pool.*/device.* telemetry
   receives, so per-query sums reconcile exactly with the global deltas
   on a single-domain, fault-free run.  The slot is per-domain
   ([Domain.DLS]), so parallel domains profile independent queries
   without seeing each other's work. *)

type attribution = {
  mutable at_hits : int;
  mutable at_misses : int;
  mutable at_evictions : int;
  mutable at_read_bytes : int;
  mutable at_write_bytes : int;
  mutable at_io_retries : int;
  mutable at_injected_delay_ns : int;
}

let fresh_attribution () =
  { at_hits = 0; at_misses = 0; at_evictions = 0;
    at_read_bytes = 0; at_write_bytes = 0;
    at_io_retries = 0; at_injected_delay_ns = 0 }

let att_slot : attribution option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_attribution att f =
  let r = Domain.DLS.get att_slot in
  let prev = !r in
  r := Some att;
  Fun.protect ~finally:(fun () -> r := prev) f

let att_hit () =
  match !(Domain.DLS.get att_slot) with
  | None -> ()
  | Some a -> a.at_hits <- a.at_hits + 1

let att_miss () =
  match !(Domain.DLS.get att_slot) with
  | None -> ()
  | Some a -> a.at_misses <- a.at_misses + 1

let att_evict () =
  match !(Domain.DLS.get att_slot) with
  | None -> ()
  | Some a -> a.at_evictions <- a.at_evictions + 1

let att_read n =
  match !(Domain.DLS.get att_slot) with
  | None -> ()
  | Some a -> a.at_read_bytes <- a.at_read_bytes + n

let att_write n =
  match !(Domain.DLS.get att_slot) with
  | None -> ()
  | Some a -> a.at_write_bytes <- a.at_write_bytes + n

let att_retry () =
  match !(Domain.DLS.get att_slot) with
  | None -> ()
  | Some a -> a.at_io_retries <- a.at_io_retries + 1

(* Charged by the latency injector (Latency_device): the injected
   delay is pool traffic from the query's point of view, so it flows
   through the same per-domain sink as the hits and misses. *)
let note_injected_delay ns =
  match !(Domain.DLS.get att_slot) with
  | None -> ()
  | Some a -> a.at_injected_delay_ns <- a.at_injected_delay_ns + ns

type t = {
  dev : Device.t;
  pin : int -> bool;
  replacement : replacement;
  (* Every public entry point serialises on [lock], so one pool can be
     shared by parallel domains: paged reads race on the frame table,
     the LRU list and the stats, and the lock makes those writes
     domain-safe (certified by spine-lint L9).  The lock is reentrant
     per domain ([lock_owner]/[lock_depth]) because [with_page] runs
     its callback under the lock and callbacks — the writeback hook, a
     trace router — may legitimately land back in the pool. *)
  lock : Mutex.t;
  mutable lock_owner : int;     (* Domain.self of the holder, -1 = free *)
  mutable lock_depth : int;
  frames : int;
  buffers : Bytes.t array;
  page_of : int array;          (* frame -> page id, -1 = free *)
  dirty : bool array;
  in_use : int array;           (* reentrancy latch count per frame *)
  prev : int array;
  next : int array;
  mutable head : int;
  mutable tail : int;
  table : int Xutil.Int_tbl.t;  (* page id -> frame *)
  mutable on_writeback : (int -> unit) option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable pinned_evictions : int;
  mutable writebacks : int;
}

let create ?(pin = fun _ -> false) ?(replacement = `Lru) ~frames dev =
  if frames < 1 then invalid_arg "Buffer_pool.create: frames < 1";
  let page_size = Device.page_size dev in
  { dev; pin; replacement; frames;
    lock = Mutex.create (); lock_owner = -1; lock_depth = 0;
    buffers = Array.init frames (fun _ -> Bytes.make page_size '\000');
    page_of = Array.make frames (-1);
    dirty = Array.make frames false;
    in_use = Array.make frames 0;
    prev = Array.make frames (-1);
    next = Array.make frames (-1);
    head = -1; tail = -1;
    table = Xutil.Int_tbl.create (2 * frames);
    on_writeback = None;
    hits = 0; misses = 0; evictions = 0; pinned_evictions = 0;
    writebacks = 0 }

let device t = t.dev
let frames t = t.frames

(* reentrant per-domain critical section around the pool's mutable
   innards; [lock_owner] is only compared against the caller's own
   domain id, so a stale read of another domain's id cannot match *)
let locked t f =
  let me = (Domain.self () :> int) in
  if t.lock_owner = me then begin
    t.lock_depth <- t.lock_depth + 1;
    Fun.protect ~finally:(fun () -> t.lock_depth <- t.lock_depth - 1) f
  end
  else begin
    Mutex.lock t.lock;
    t.lock_owner <- me;
    t.lock_depth <- 1;
    Fun.protect
      ~finally:(fun () ->
        t.lock_depth <- 0;
        t.lock_owner <- -1;
        Mutex.unlock t.lock)
      f
  end

let set_writeback_hook t h = locked t (fun () -> t.on_writeback <- h)

(* Transient I/O errors (the kind the fault injector scripts) are
   retried a few times before propagating; anything else — permanent
   errors, corruption — passes straight through.  The "backoff" is
   simulated like every other latency in the stack: each retry re-runs
   the device operation, which charges its own cost. *)
let max_io_attempts = 4

let with_io_retries page f =
  let rec go attempt =
    try f ()
    with
    | Spine_error.Error (Spine_error.Io_failed { transient = true; _ })
      when attempt < max_io_attempts ->
      Telemetry.incr c_io_retries;
      att_retry ();
      if Trace.on () then
        Trace.instant "pool.io_retry"
          [ Trace.Int ("page", page); Trace.Int ("attempt", attempt) ];
      go (attempt + 1)
  in
  go 1

let unlink t f =
  let p = t.prev.(f) and n = t.next.(f) in
  if p >= 0 then t.next.(p) <- n else t.head <- n;
  if n >= 0 then t.prev.(n) <- p else t.tail <- p;
  t.prev.(f) <- -1;
  t.next.(f) <- -1

let push_front t f =
  t.prev.(f) <- -1;
  t.next.(f) <- t.head;
  if t.head >= 0 then t.prev.(t.head) <- f;
  t.head <- f;
  if t.tail < 0 then t.tail <- f

let touch t f =
  if t.head <> f then begin
    unlink t f;
    push_front t f
  end

let writeback t f =
  if t.dirty.(f) then begin
    let page = t.page_of.(f) in
    (* the hook runs before the device write so a transaction layer can
       journal the page's current on-disk image (see Spine.Persistent);
       if it raises, the frame stays dirty and nothing was overwritten *)
    (match t.on_writeback with Some h -> h page | None -> ());
    with_io_retries page (fun () -> Device.write t.dev page t.buffers.(f));
    att_write (Device.page_size t.dev);
    t.dirty.(f) <- false;
    t.writebacks <- t.writebacks + 1;
    Telemetry.incr c_writebacks
  end

(* Choose a victim frame: least-recently-used unpinned, falling back to
   least-recently-used pinned when everything resident is pinned. Frames
   latched by a reentrant [with_page] are never victims. *)
let find_victim t =
  let rec scan f fallback =
    if f < 0 then fallback
    else if t.in_use.(f) > 0 then scan t.prev.(f) fallback
    else if not (t.pin t.page_of.(f)) then Some f
    else
      scan t.prev.(f)
        (match fallback with None -> Some f | Some _ -> fallback)
  in
  match scan t.tail None with
  | Some f -> f
  | None ->
    (* Degrade gracefully before giving up: push dirty frames back to
       the device (a latched frame stays resident but need not stay
       dirty) and rescan in case a latch was released by the writeback
       path.  Only then raise the typed error with the evidence. *)
    for f = 0 to t.frames - 1 do
      if t.page_of.(f) >= 0 then writeback t f
    done;
    (match scan t.tail None with
     | Some f -> f
     | None ->
       let latched = ref 0 in
       for f = 0 to t.frames - 1 do
         if t.in_use.(f) > 0 then incr latched
       done;
       Telemetry.incr c_exhausted;
       Spine_error.raise_error
         (Spine_error.Pool_exhausted { frames = t.frames; latched = !latched }))

let find_free t =
  let rec go f = if f >= t.frames then -1 else if t.page_of.(f) < 0 then f else go (f + 1) in
  go 0

let frame_for t page =
  match Xutil.Int_tbl.find_opt t.table page with
  | Some f ->
    t.hits <- t.hits + 1;
    Telemetry.incr c_hits;
    att_hit ();
    (match t.replacement with `Lru -> touch t f | `Fifo -> ());
    f
  | None ->
    t.misses <- t.misses + 1;
    Telemetry.incr c_misses;
    att_miss ();
    (* the fault span covers victim selection, the eviction writeback
       and the device read — everything the miss made the caller pay *)
    let tr = Trace.on () in
    if tr then Trace.begin_span "pool.fault" [ Trace.Int ("page", page) ];
    let f =
      let free = find_free t in
      if free >= 0 then free
      else begin
        let victim = find_victim t in
        if t.pin t.page_of.(victim) then begin
          (* every resident page was pinned: the policy's fallback *)
          t.pinned_evictions <- t.pinned_evictions + 1;
          Telemetry.incr c_pinned_evictions
        end;
        if tr then
          Trace.instant "pool.evict"
            [ Trace.Int ("page", t.page_of.(victim));
              Trace.Int ("dirty", if t.dirty.(victim) then 1 else 0) ];
        writeback t victim;
        Xutil.Int_tbl.remove t.table t.page_of.(victim);
        t.evictions <- t.evictions + 1;
        Telemetry.incr c_evictions;
        att_evict ();
        unlink t victim;
        victim
      end
    in
    (match with_io_retries page (fun () -> Device.read t.dev page) with
     | data ->
       att_read (Device.page_size t.dev);
       Bytes.blit data 0 t.buffers.(f) 0 (Bytes.length data)
     | exception e ->
       (* the frame was already claimed (victim evicted / free slot
          taken); release it so a failed read cannot leak frames *)
       t.page_of.(f) <- -1;
       t.dirty.(f) <- false;
       if tr then Trace.end_span ();
       raise e);
    t.page_of.(f) <- page;
    t.dirty.(f) <- false;
    Xutil.Int_tbl.replace t.table page f;
    push_front t f;
    if tr then Trace.end_span ();
    f

let with_page t page ~dirty f =
  (* the cooperative deadline check: a paged query that overruns its
     armed budget fails typed here, before latching another frame *)
  Deadline.check ();
  locked t (fun () ->
      let frame = frame_for t page in
      t.in_use.(frame) <- t.in_use.(frame) + 1;
      let result =
        try f t.buffers.(frame)
        with e ->
          t.in_use.(frame) <- t.in_use.(frame) - 1;
          raise e
      in
      t.in_use.(frame) <- t.in_use.(frame) - 1;
      if dirty then t.dirty.(frame) <- true;
      result)

let flush t =
  locked t (fun () ->
      Telemetry.incr c_flushes;
      (* write back in page order, as any real writeback elevator would *)
      let dirty = ref [] in
      for f = 0 to t.frames - 1 do
        if t.page_of.(f) >= 0 && t.dirty.(f) then dirty := f :: !dirty
      done;
      !dirty
      |> List.sort (fun a b -> compare t.page_of.(a) t.page_of.(b))
      |> List.iter (fun f -> writeback t f))

let drop t =
  locked t (fun () ->
      flush t;
      Xutil.Int_tbl.reset t.table;
      Array.fill t.page_of 0 t.frames (-1);
      Array.fill t.dirty 0 t.frames false;
      Array.fill t.prev 0 t.frames (-1);
      Array.fill t.next 0 t.frames (-1);
      t.head <- -1;
      t.tail <- -1)

let reset_stats t =
  locked t (fun () ->
      t.hits <- 0; t.misses <- 0; t.evictions <- 0;
      t.pinned_evictions <- 0; t.writebacks <- 0)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  pinned_evictions : int;
  writebacks : int;
}

let stats (t : t) =
  locked t (fun () ->
      { hits = t.hits; misses = t.misses;
        evictions = t.evictions; pinned_evictions = t.pinned_evictions;
        writebacks = t.writebacks })
