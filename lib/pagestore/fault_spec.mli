(** The [SPINE_FAULTS] grammar, parsed to a typed plan description.

    {[ spec  := item (';' item)*
       item  := 'seed=' INT | kind (':' opt)*
       kind  := 'read_error' | 'write_error' | 'flip' | 'torn' | 'crash'
       opt   := 'page=' INT ['-' INT] | 'after=' INT | 'times=' INT
              | 'keep=' INT   (torn only) ]}

    Example: ["seed=7;flip:after=12;read_error:page=0-16:times=3"].

    {!Fault_device} instantiates a parsed spec as a live fault plan;
    the scenario harness ({!Scenario}) embeds the same grammar in its
    fault stages.  Parse failures are a typed {!error} whose
    {!error_to_string} rendering is byte-identical to the historical
    [Fault_device.parse] messages — [SPINE_FAULTS] diagnostics are part
    of the CLI surface. *)

type kind =
  | Read_error
  | Write_error
  | Bit_flip
  | Torn_write of int  (** physical bytes that land before the cut *)
  | Crash

type arm_spec = {
  s_kind : kind;
  s_pages : (int * int) option;  (** inclusive page range; [None] = all *)
  s_after : int;   (** matching operations let through first *)
  s_times : int;   (** how many times the arm fires *)
}

type t = {
  seed : int option;  (** [seed=] item, if present *)
  arms : arm_spec list;
}

type error =
  | Not_a_number of string
  | Negative of string * int     (** option key, offending value *)
  | Unknown_kind of string
  | Malformed_option of string   (** no [=] separator *)
  | Unknown_option of string
  | Empty_page_range of string   (** [page=lo-hi] with [hi < lo] *)
  | Misplaced_keep               (** [keep=] on a non-torn kind *)
  | Empty_item

val error_to_string : error -> string
(** The historical [Fault_device.parse] message for this error,
    byte for byte. *)

val parse : string -> (t, error) result

val to_string : t -> string
(** Render back into the grammar ([parse (to_string t)] is [Ok t] up to
    defaulted options). *)
