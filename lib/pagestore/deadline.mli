(** Cooperative per-query deadlines for the paged storage stack.

    A deadline is {e ambient}: {!with_deadline} arms one for the
    calling domain (saving any outer deadline), and the storage hot
    paths — the buffer pool's page entry point, the latency injector's
    sleeps — call {!check} cooperatively.  Once the armed budget is
    overrun, {!check} raises a typed {!Spine_error.Error} ([Timeout]),
    so a paged query under injected latency or a retry storm aborts
    promptly instead of hanging; the engine's resilience layer
    ([Spine.Resilient]) arms it around every guarded call.

    The slot is per-domain ([Domain.DLS]); parallel domains carry
    independent deadlines. *)

val with_deadline :
  ?clock:(unit -> int) -> op:string -> deadline_ns:int ->
  (unit -> 'a) -> 'a
(** Run [f] with an armed deadline of [deadline_ns] from now (on
    [clock], default {!Xutil.Stopwatch.now_ns}).  Restores the previous
    ambient deadline (if any) on exit.  The deadline is cooperative:
    [f] fails only when something on its path calls {!check}. *)

val check : unit -> unit
(** No-op when no deadline is armed or time remains.
    @raise Spine_error.Error ([Timeout]) when the armed deadline is
    overrun; the payload carries the arming operation name, the budget
    and the elapsed time. *)

val armed : unit -> bool

val remaining_ns : unit -> int option
(** Budget left on the ambient deadline (negative once overrun);
    [None] when unarmed.  The latency injector bounds its sleeps with
    this so an injected delay cannot overshoot the deadline by more
    than a check interval. *)
