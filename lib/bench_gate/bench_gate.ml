(* The regression gate over committed BENCH_spine.json trajectories.
   The toolchain has no JSON library, so this carries a minimal
   recursive-descent parser — complete for the JSON grammar, tuned for
   nothing beyond "parse a bench artifact a human may have edited". *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Parse_error of string

  let fail pos msg =
    raise (Parse_error (Printf.sprintf "at offset %d: %s" pos msg))

  let parse_exn s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail !pos (Printf.sprintf "expected %C" c)
    in
    let literal word value =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        value
      end
      else fail !pos (Printf.sprintf "expected %s" word)
    in
    let utf8_of_code buf c =
      (* enough for \uXXXX escapes outside the surrogate range *)
      if c < 0x80 then Buffer.add_char buf (Char.chr c)
      else if c < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (c lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xE0 lor (c lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
      end
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail !pos "unterminated string";
        let c = s.[!pos] in
        advance ();
        if c = '"' then Buffer.contents buf
        else if c = '\\' then begin
          (if !pos >= n then fail !pos "unterminated escape");
          let e = s.[!pos] in
          advance ();
          (match e with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'u' ->
             if !pos + 4 > n then fail !pos "truncated \\u escape";
             let hex = String.sub s !pos 4 in
             (match int_of_string_opt ("0x" ^ hex) with
              | Some code -> pos := !pos + 4; utf8_of_code buf code
              | None -> fail !pos "bad \\u escape")
           | _ -> fail (!pos - 1) "bad escape");
          go ()
        end
        else begin
          Buffer.add_char buf c;
          go ()
        end
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> is_num_char c | None -> false) do
        advance ()
      done;
      let text = String.sub s start (!pos - start) in
      match float_of_string_opt text with
      | Some f -> Num f
      | None -> fail start (Printf.sprintf "bad number %S" text)
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail !pos "unexpected end of input"
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((key, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((key, v) :: acc))
            | _ -> fail !pos "expected ',' or '}'"
          in
          members []
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail !pos "expected ',' or ']'"
          in
          elements []
        end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail !pos "trailing garbage";
    v

  let parse s =
    match parse_exn s with
    | v -> Ok v
    | exception Parse_error msg -> Error msg

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

(* --- the bench artifact schema ------------------------------------ *)

type entry = {
  group : string;  (** top-level array name: "experiments", "micro" *)
  name : string;
  unit_ : string;  (** the value field's key: "wall_s", "ns_per_run" *)
  value : float option;  (** [None] when the artifact recorded null *)
}

type baseline = { schema : string; entries : entry list }

let entry_of_item group item =
  match Json.member "name" item with
  | Some (Json.Str name) ->
    (* the measurement is the first non-"name" scalar field *)
    let rec first = function
      | [] -> None
      | ("name", _) :: rest -> first rest
      | (key, Json.Num v) :: _ -> Some (key, Some v)
      | (key, Json.Null) :: _ -> Some (key, None)
      | _ :: rest -> first rest
    in
    (match item with
     | Json.Obj fields ->
       (match first fields with
        | Some (unit_, value) -> Some { group; name; unit_; value }
        | None -> None)
     | _ -> None)
  | _ -> None

let of_string text =
  match Json.parse text with
  | Error msg -> Error msg
  | Ok json ->
    let schema =
      match Json.member "schema" json with
      | Some (Json.Str s) -> s
      | _ -> ""
    in
    let entries =
      match json with
      | Json.Obj fields ->
        List.concat_map
          (fun (group, v) ->
            match v with
            | Json.List items -> List.filter_map (entry_of_item group) items
            | _ -> [])
          fields
      | _ -> []
    in
    if schema = "" then Error "missing \"schema\" field"
    else Ok { schema; entries }

let load ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> of_string text
  | exception Sys_error msg -> Error msg

(* --- comparison --------------------------------------------------- *)

type verdict =
  | Ok_within     (** within tolerance (including improvements) *)
  | Regressed     (** new value exceeds old by more than tolerance *)
  | Added         (** only in the new artifact — informational *)
  | Removed       (** dropped from the new artifact — a failure: a
                      silently vanished benchmark hides a regression *)
  | Incomparable  (** null (failed fit) on either side *)

type comparison = {
  c_group : string;
  c_name : string;
  c_unit : string;
  c_old : float option;
  c_new : float option;
  c_ratio : float option;  (** new / old where both are measured *)
  c_verdict : verdict;
}

let compare_baselines ?(floors = []) ~tolerance old_b new_b =
  let key e = (e.group, e.name) in
  let in_new e = List.find_opt (fun e' -> key e' = key e) new_b.entries in
  let below_floor unit_ o n =
    match List.assoc_opt unit_ floors with
    | Some floor -> o <= floor && n <= floor
    | None -> false
  in
  let olds =
    List.map
      (fun e ->
        match in_new e with
        | None ->
          { c_group = e.group; c_name = e.name; c_unit = e.unit_;
            c_old = e.value; c_new = None; c_ratio = None;
            c_verdict = Removed }
        | Some e' ->
          let ratio, verdict =
            match e.value, e'.value with
            | Some o, Some n when o > 0.0 ->
              let r = n /. o in
              ( Some r,
                if r > 1.0 +. tolerance && not (below_floor e.unit_ o n)
                then Regressed
                else Ok_within )
            | Some _, Some _ -> (None, Incomparable)
            | _ -> (None, Incomparable)
          in
          { c_group = e.group; c_name = e.name; c_unit = e.unit_;
            c_old = e.value; c_new = e'.value; c_ratio = ratio;
            c_verdict = verdict })
      old_b.entries
  in
  let added =
    List.filter_map
      (fun e' ->
        if List.exists (fun e -> key e = key e') old_b.entries then None
        else
          Some
            { c_group = e'.group; c_name = e'.name; c_unit = e'.unit_;
              c_old = None; c_new = e'.value; c_ratio = None;
              c_verdict = Added })
      new_b.entries
  in
  olds @ added

let failures comparisons =
  List.filter
    (fun c -> match c.c_verdict with
       | Regressed | Removed -> true
       | Ok_within | Added | Incomparable -> false)
    comparisons

let verdict_string = function
  | Ok_within -> "ok"
  | Regressed -> "REGRESSED"
  | Added -> "added"
  | Removed -> "REMOVED"
  | Incomparable -> "n/a"

let fmt_value = function
  | None -> "-"
  | Some v ->
    if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
    else Printf.sprintf "%.6g" v

let rows comparisons =
  List.map
    (fun c ->
      [ c.c_group; c.c_name; c.c_unit; fmt_value c.c_old; fmt_value c.c_new;
        (match c.c_ratio with
         | None -> "-"
         | Some r -> Printf.sprintf "%.2fx" r);
        verdict_string c.c_verdict ])
    comparisons
