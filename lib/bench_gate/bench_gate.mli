(** The bench-trajectory regression gate.

    [bench/main.exe] writes a machine-readable trajectory
    ([BENCH_spine.json]: wall seconds per experiment, Bechamel
    nanoseconds-per-run per microbench) and the repository commits one
    as the baseline.  This module parses two such artifacts and
    classifies every benchmark's movement against a relative
    tolerance; [spine_cli bench-compare] turns the classification into
    an exit code so CI fails on a regression {e or} on a benchmark
    that silently disappeared.

    The container ships no JSON library, so {!Json} is a minimal but
    grammar-complete recursive-descent parser. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Parse_error of string

  val parse_exn : string -> t
  val parse : string -> (t, string) result
  val member : string -> t -> t option
  (** [member key (Obj _)] is the field's value; [None] on a missing
      key or a non-object. *)
end

(** {1 The artifact schema} *)

type entry = {
  group : string;  (** top-level array name: ["experiments"], ["micro"] *)
  name : string;
  unit_ : string;  (** the measurement field's key: ["wall_s"], ["ns_per_run"] *)
  value : float option;  (** [None] when the artifact recorded [null]
                             (a failed OLS fit) *)
}

type baseline = { schema : string; entries : entry list }

val of_string : string -> (baseline, string) result
(** Parse an artifact.  Every top-level array of [{"name": …, "<unit>":
    <number|null>}] objects contributes entries, so schema growth (a
    new group) needs no parser change.  [Error] on malformed JSON or a
    missing ["schema"] field. *)

val load : path:string -> (baseline, string) result

(** {1 Comparison} *)

type verdict =
  | Ok_within     (** within tolerance (including improvements) *)
  | Regressed     (** new value exceeds old by more than tolerance *)
  | Added         (** only in the new artifact — informational *)
  | Removed       (** dropped from the new artifact — a failure: a
                      silently vanished benchmark hides a regression *)
  | Incomparable  (** [null] (failed fit) on either side *)

type comparison = {
  c_group : string;
  c_name : string;
  c_unit : string;
  c_old : float option;
  c_new : float option;
  c_ratio : float option;  (** new / old where both are measured *)
  c_verdict : verdict;
}

val compare_baselines :
  ?floors:(string * float) list ->
  tolerance:float -> baseline -> baseline -> comparison list
(** [compare_baselines ~tolerance old new_] classifies every benchmark
    present in either artifact.  [tolerance] is relative: a benchmark
    regresses when [new > old * (1 + tolerance)].  [floors] maps a
    unit (e.g. ["wall_s"]) to an absolute noise floor: when both sides
    sit at or below the floor the ratio is meaningless timer noise and
    the verdict stays [Ok_within] — this is what lets a gate keep
    sub-millisecond benchmarks in the trajectory without flaking on
    them.  Entries are matched by [(group, name)]; old-artifact order
    is preserved, additions follow. *)

val failures : comparison list -> comparison list
(** The subset that should fail a gate: [Regressed] and [Removed]. *)

val verdict_string : verdict -> string
val rows : comparison list -> string list list
(** [[group; name; unit; old; new; ratio; verdict]] rows for
    {!Report.Table.print}. *)
