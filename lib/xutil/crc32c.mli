(** CRC-32C (Castagnoli, polynomial 0x1EDC6F41 reflected to
    0x82F63B78): the storage-grade checksum iSCSI/ext4/Btrfs use.
    Software table-driven implementation; results are standard CRC-32C
    values in the range [0, 2^32). *)

val digest : ?seed:int -> Bytes.t -> pos:int -> len:int -> int
(** [digest b ~pos ~len] checksums the given range.  [seed] (default 0)
    is a previous digest, allowing incremental computation:
    [digest ~seed:(digest a) b] = digest of [a ^ b].
    @raise Invalid_argument if the range is out of bounds. *)

val bytes : Bytes.t -> int
(** Digest of a whole buffer. *)

val string : string -> int
(** Digest of a whole string. *)
