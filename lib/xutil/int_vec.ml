(* Designated unsafe boundary (spine-lint L11): unchecked array slots
   are guarded by the [len] asserts right above them, and the backing
   array never escapes the module. *)
[@@@spine.checked_boundary
  "bounds asserted locally; backing array never escapes the module"]

type t = {
  mutable data : int array;
  mutable len : int;
}

let create ?(capacity = 16) () =
  { data = Array.make (max capacity 1) 0; len = 0 }

let make n v = { data = Array.make (max n 1) v; len = n }

let length t = t.len

let get t i =
  assert (i >= 0 && i < t.len);
  Array.unsafe_get t.data i

let set t i v =
  assert (i >= 0 && i < t.len);
  Array.unsafe_set t.data i v

let push t v =
  if t.len = Array.length t.data then begin
    let ndata = Array.make (2 * Array.length t.data) 0 in
    Array.blit t.data 0 ndata 0 t.len;
    t.data <- ndata
  end;
  Array.unsafe_set t.data t.len v;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Int_vec.pop: empty";
  t.len <- t.len - 1;
  Array.unsafe_get t.data t.len

let truncate t n =
  if n < 0 || n > t.len then invalid_arg "Int_vec.truncate";
  t.len <- n

let clear t = t.len <- 0

let blit_to_array t = Array.sub t.data 0 t.len

let iter t ~f =
  for i = 0 to t.len - 1 do f (Array.unsafe_get t.data i) done

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.len - 1 do acc := f !acc (Array.unsafe_get t.data i) done;
  !acc

let binary_search t v =
  let rec go lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let x = get t mid in
      if x = v then Some mid
      else if x < v then go (mid + 1) hi
      else go lo mid
  in
  go 0 t.len
