(* Table-driven CRC-32C (Castagnoli), reflected polynomial 0x82F63B78 —
   the checksum used by iSCSI, ext4 and Btrfs for exactly this job:
   catching bit flips and torn sectors in storage pages. *)

(* Designated unsafe boundary (spine-lint L11): the unchecked byte
   reads follow an explicit range validation at the digest entry, and
   [Bytes.unsafe_of_string] never leaks the bytes to a writer. *)
[@@@spine.checked_boundary
  "range validated at entry; converted bytes are read-only here"]

let table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 = 1 then 0x82F63B78 lxor (!c lsr 1) else !c lsr 1
      done;
      !c)

let update crc b = table.((crc lxor b) land 0xFF) lxor (crc lsr 8)

let digest ?(seed = 0) data ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length data then
    invalid_arg "Crc32c.digest: range out of bounds";
  let c = ref (seed lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := update !c (Char.code (Bytes.unsafe_get data i))
  done;
  !c lxor 0xFFFFFFFF

let bytes data = digest data ~pos:0 ~len:(Bytes.length data)

let string s = bytes (Bytes.unsafe_of_string s)
