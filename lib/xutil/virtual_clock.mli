(** A manually advanced monotonic clock for deterministic time tests.

    Everything in the stack that reads time takes an injectable
    [clock : unit -> int] (nanoseconds) and most sleepers take a
    [sleep_ns : int -> unit]; a virtual clock provides a matched pair:
    {!sleep} {e advances} the clock instead of blocking, so a workload
    run, a backoff schedule or an injected latency plan executes in
    zero wall time with byte-reproducible timestamps. *)

type t

val create : ?start:int -> unit -> t
(** A clock reading [start] (default 0) nanoseconds. *)

val now : t -> unit -> int
(** [now t] is the clock function to inject ([fun () -> current]). *)

val advance : t -> int -> unit
(** Move time forward ([ns <= 0] is a no-op — the clock is
    monotonic). *)

val sleep : t -> int -> unit
(** The sleep function to inject: advances the clock by [ns] and
    returns immediately. *)
