(* The polymorphic [Hashtbl] calls the generic [caml_hash] runtime
   primitive on every operation; for the dense int keys of the hot
   paths (node ids, page ids, rib keys) a single multiplicative hash
   is both faster and collision-free enough.  The constant is the
   SplitMix64 multiplier; taking the product's high bits keeps the
   entropy that [Hashtbl]'s low-bit bucket masking actually uses. *)
include Hashtbl.Make (struct
  type t = int

  let equal (a : int) (b : int) = a = b
  let hash x = (x * 0x2545F4914F6CDD1D) lsr 31
end)
