(* All repro timings come from one monotonic source (clock_gettime
   via bechamel's stub) so the experiment harness and the telemetry
   spans agree and neither is disturbed by NTP wall-clock jumps. *)

let now_ns () = Int64.to_int (Monotonic_clock.now ())

let time f =
  let t0 = now_ns () in
  let r = f () in
  (r, float_of_int (now_ns () - t0) /. 1e9)

let median_of k f =
  if k < 1 then invalid_arg "Stopwatch.median_of";
  let times = Array.make k 0.0 in
  let result = ref None in
  for i = 0 to k - 1 do
    let r, dt = time f in
    times.(i) <- dt;
    result := Some r
  done;
  Array.sort compare times;
  match !result with
  | Some r -> (r, times.(k / 2))
  | None -> assert false
