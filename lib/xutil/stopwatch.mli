(** Monotonic timing helpers for the experiment harness and the
    telemetry spans.  Everything reads the same monotonic clock, so the
    two kinds of timing agree and neither is prone to NTP wall-clock
    jumps. *)

val now_ns : unit -> int
(** Current monotonic clock reading in nanoseconds.  Only differences
    are meaningful. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with the elapsed
    monotonic time in seconds. *)

val median_of : int -> (unit -> 'a) -> 'a * float
(** [median_of k f] runs [f] [k] times and returns the last result with
    the median elapsed time — the aggregation the timing tables use to
    resist scheduler noise. *)
