(* A manually advanced monotonic clock (see virtual_clock.mli). *)

type t = { mutable now : int }

let create ?(start = 0) () = { now = start }
let now t () = t.now
let advance t ns = if ns > 0 then t.now <- t.now + ns
let sleep t ns = advance t ns
