(** Hashtable specialised to [int] keys.

    The polymorphic [Hashtbl] pays a call to the generic structural
    hash (and polymorphic equality) on every probe; this table hashes
    with one integer multiply and compares keys monomorphically, which
    is what the SPINE hot paths (rib lookup, target-node buffers,
    buffer-pool frame lookup, overflow labels) want.  Drop-in
    replacement for the int-keyed subset of [Hashtbl]. *)

include Hashtbl.S with type key = int
