type t = {
  name : string;
  description : string;
  alphabet : Alphabet.t;
  paper_length : int;
  seed : int;
  profile : Synthetic.repeat_profile;
}

(* Calibrated against the paper's Table 4: with these parameters the
   fraction of SPINE nodes carrying downstream edges lands in the
   reported 28-33 % band, decaying with fanout like the paper's rows,
   and the Table 3 label maxima extrapolate to the paper's order of
   magnitude at full genome length. *)
let dna_profile =
  { Synthetic.repeat_prob = 0.0005;
    mean_repeat_len = 200;
    mutation_rate = 0.03;
    order = 2;
    skew = 0.0;
    clean_copy_prob = 0.15;
    long_copy_prob = 0.03;
    long_copy_factor = 8 }

(* Human chromosomes are markedly more repetitive than bacterial
   genomes, which is what makes the paper's Table 4 percentages drop
   slightly for HC19. *)
let human_profile =
  { dna_profile with
    Synthetic.repeat_prob = 0.0008;
    mean_repeat_len = 300;
    long_copy_prob = 0.04;
    long_copy_factor = 15 }

let protein_profile =
  { Synthetic.repeat_prob = 0.002;
    mean_repeat_len = 120;
    mutation_rate = 0.05;
    order = 1;
    skew = 0.4;
    clean_copy_prob = 0.1;
    long_copy_prob = 0.02;
    long_copy_factor = 5 }

let eco =
  { name = "ECO";
    description = "E.coli genome (3.5 M characters in the paper)";
    alphabet = Alphabet.dna;
    paper_length = 3_500_000;
    seed = 101;
    profile = dna_profile }

let cel =
  { name = "CEL";
    description = "C.elegans genome (15.5 M characters)";
    alphabet = Alphabet.dna;
    paper_length = 15_500_000;
    seed = 102;
    profile = dna_profile }

let hc21 =
  { name = "HC21";
    description = "Human chromosome 21 (28.5 M characters)";
    alphabet = Alphabet.dna;
    paper_length = 28_500_000;
    seed = 103;
    profile = human_profile }

let hc19 =
  { name = "HC19";
    description = "Human chromosome 19 (57.5 M characters)";
    alphabet = Alphabet.dna;
    paper_length = 57_500_000;
    seed = 104;
    profile = human_profile }

let eco_r =
  { name = "ECO-R";
    description = "E.coli proteome (1.5 M residues)";
    alphabet = Alphabet.protein;
    paper_length = 1_500_000;
    seed = 201;
    profile = protein_profile }

let yeast_r =
  { name = "YEAST-R";
    description = "Yeast proteome (3.1 M residues)";
    alphabet = Alphabet.protein;
    paper_length = 3_100_000;
    seed = 202;
    profile = protein_profile }

let dros_r =
  { name = "DROS-R";
    description = "Drosophila proteome (7.5 M residues)";
    alphabet = Alphabet.protein;
    paper_length = 7_500_000;
    seed = 203;
    profile = protein_profile }

let dna = [ eco; cel; hc21; hc19 ]
let proteins = [ eco_r; yeast_r; dros_r ]
let all = dna @ proteins

let find name =
  let target = String.uppercase_ascii name in
  List.find_opt (fun c -> String.uppercase_ascii c.name = target) all

let find_exn name =
  match find name with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Corpus.find_exn: unknown corpus %S" name)

let scaled_length ~scale c =
  max 1000 (int_of_float (float_of_int c.paper_length *. scale))

let load ?(scale = 0.1) c =
  let n = scaled_length ~scale c in
  Synthetic.genomic ~profile:c.profile c.alphabet (Rng.create c.seed) n

let query_variant ?(scale = 0.1) ?(divergence = 0.05) c =
  let base = load ~scale c in
  Synthetic.mutate ~rate:divergence (Rng.create (c.seed + 5000)) base
