(** Bit-packed, word-addressable sequences of alphabet codes.

    A [Packed_seq.t] is the in-memory {e and} serialized representation
    of a data string: codes packed [width] bits each (2 for DNA, 4 once
    a DNA separator appears, 8 for proteins/bytes) into native 63-bit
    integer words, [62 / width] codes per word — 31 DNA characters per
    word.  The scan paths compare whole words ({!mismatch},
    {!compare_span}: XOR plus count-trailing-zeros) and fall back to
    per-code reads only at span boundaries; {!packed_bits} is a raw
    dump of the words, so snapshots and the persistent sequence region
    store the row as-is with no re-packing.

    The module is a checked unsafe boundary (spine-lint L11): {!get}
    and every span operation validate their bounds once at the edge,
    raising [Invalid_argument] on violation; the word accessors inside
    are unchecked.  The cell width adapts upward automatically: a code
    that does not fit the current width (e.g. the DNA separator, code
    4, in a 2-bit row) re-packs the whole row at the next width, at
    most twice ever (2 -> 4 -> 8). *)

type t

val create : ?capacity:int -> Alphabet.t -> t
(** Fresh empty sequence ([capacity] in codes). *)

val of_string : Alphabet.t -> string -> t
(** [of_string a s] encodes every character of [s].
    @raise Invalid_argument if a character is not in [a]. *)

val of_codes : Alphabet.t -> int array -> t
(** Build from raw codes. @raise Invalid_argument on out-of-range codes
    (the separator code is allowed). *)

val alphabet : t -> Alphabet.t
val length : t -> int

val width : t -> int
(** Current cell width in bits: 2, 4 or 8. *)

val codes_per_word : t -> int
(** Codes per backing word at the current width ([62 / width]). *)

val get : t -> int -> int
(** [get t i] is the code at position [i] (0-based).  This is the safe
    boundary accessor: @raise Invalid_argument when [i] is outside
    [0, length t). *)

val append : t -> int -> unit
(** Append one code (separator allowed), growing — and if the code
    needs a wider cell, re-packing — the row as needed. *)

val append_string : t -> string -> unit
(** Encode and append every character of the argument. *)

val sub_string : t -> pos:int -> len:int -> string
(** Decode a slice back to characters. *)

val to_string : t -> string
(** Decode the whole sequence. *)

(** {2 Word-at-a-time span comparison}

    The hot-path primitives behind the backbone descent, the
    matching-statistics extension and the cursor walk.  All three
    return [(match_len, word_steps, scalar_steps)]: the length of the
    longest common prefix of the two spans, the number of whole-word
    comparisons performed, and the number of per-code fallback
    comparisons performed (boundary tails, or every comparison when the
    two rows' cell widths differ and the packed forms are not directly
    comparable).  The step counts are deterministic for fixed inputs —
    they feed the [word_steps]/[scalar_steps] profile counters. *)

val mismatch : t -> apos:int -> t -> bpos:int -> len:int -> int * int * int
(** [mismatch a ~apos b ~bpos ~len] compares [a.[apos..apos+len)]
    against [b.[bpos..bpos+len)].
    @raise Invalid_argument if either span overruns its sequence. *)

val compare_span : t -> apos:int -> t -> bpos:int -> len:int -> bool
(** Whole-span equality via {!mismatch}. *)

(** Patterns: a query string packed once per query (at the Engine
    layer) and compared word-at-a-time against the text row.  The
    packed rendering is cached and lazily re-packed if the text's cell
    width differs; codes that cannot be packed at the text's width
    (they can never match a text code) fall back to per-code
    comparison. *)
module Pattern : sig
  type t

  val of_codes : Alphabet.t -> int array -> t
  (** Accepts any int codes (never raises): out-of-alphabet codes
      simply never match, exactly like the unpacked search path. *)

  val length : t -> int

  val get : t -> int -> int
  (** The [i]-th pattern code (safe array access). *)

  val alphabet : t -> Alphabet.t
end

val mismatch_pattern :
  t -> pos:int -> Pattern.t -> ppos:int -> len:int -> int * int * int
(** [mismatch_pattern t ~pos p ~ppos ~len] is {!mismatch} of the text
    span against the pattern span, packing (and caching) the pattern's
    row at the text's width on first use.
    @raise Invalid_argument if either span overruns. *)

(** {2 Serialized form and space accounting} *)

val packed_bits : t -> Bytes.t
(** The raw backing words of the used prefix, 8 bytes per word,
    little-endian, tail padding (zeros) included.  This {e is} the
    serialized form: {!of_packed_bits} rebuilds the row by copying the
    words back, no per-code re-packing. *)

val of_packed_bits : Alphabet.t -> len:int -> width:int -> Bytes.t -> t
(** Inverse of {!packed_bits} given the code count and cell width.
    @raise Invalid_argument on an unsupported width, a short payload,
    stray bits in the padding, or codes outside the alphabet. *)

val packed_byte_length : t -> int
(** Bytes of {!packed_bits} output: [used words * 8]. *)

val packed_bytes_per_char : t -> float
(** Space accounting: bytes per indexed code of the packed row
    (~0.258 for a 2-bit DNA row: 31 codes per 8-byte word). *)

val equal : t -> t -> bool
(** Same alphabet and same code sequence (cell widths may differ). *)

val copy : t -> t

val iteri : t -> f:(int -> int -> unit) -> unit
(** [iteri t ~f] calls [f pos code] for each position in order. *)
