(* Designated unsafe boundary (spine-lint L11): every unchecked access
   below sits behind an assert-checked bound or a caller-validated
   range, and nothing outside this module touches the raw buffer. *)
[@@@spine.checked_boundary
  "bounds asserted locally; raw buffer never escapes the module"]

open Bigarray

type buffer = (int, int8_unsigned_elt, c_layout) Array1.t

type t = {
  alphabet : Alphabet.t;
  mutable buf : buffer;
  mutable len : int;
}

let create ?(capacity = 64) alphabet =
  let capacity = max capacity 1 in
  { alphabet; buf = Array1.create int8_unsigned c_layout capacity; len = 0 }

let alphabet t = t.alphabet
let length t = t.len

let get t i =
  assert (i >= 0 && i < t.len);
  Array1.unsafe_get t.buf i

let ensure t extra =
  let needed = t.len + extra in
  if needed > Array1.dim t.buf then begin
    let cap = ref (Array1.dim t.buf) in
    while !cap < needed do cap := !cap * 2 done;
    let nbuf = Array1.create int8_unsigned c_layout !cap in
    Array1.blit (Array1.sub t.buf 0 t.len) (Array1.sub nbuf 0 t.len);
    t.buf <- nbuf
  end

let append t code =
  if code < 0 || code > Alphabet.separator t.alphabet then
    invalid_arg "Packed_seq.append: code out of range";
  ensure t 1;
  Array1.unsafe_set t.buf t.len code;
  t.len <- t.len + 1

let append_string t s =
  ensure t (String.length s);
  String.iter (fun c -> append t (Alphabet.encode t.alphabet c)) s

let of_string alphabet s =
  let t = create ~capacity:(max 1 (String.length s)) alphabet in
  append_string t s;
  t

let of_codes alphabet codes =
  let t = create ~capacity:(max 1 (Array.length codes)) alphabet in
  Array.iter (fun c -> append t c) codes;
  t

let sub_string t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.len then
    invalid_arg "Packed_seq.sub_string";
  String.init len (fun i -> Alphabet.decode t.alphabet (get t (pos + i)))

let to_string t = sub_string t ~pos:0 ~len:t.len

let packed_bits t =
  let bits = Alphabet.bits t.alphabet in
  let total_bits = t.len * bits in
  let nbytes = (total_bits + 7) / 8 in
  let out = Bytes.make nbytes '\000' in
  for i = 0 to t.len - 1 do
    let code = get t i in
    let bit0 = i * bits in
    for b = 0 to bits - 1 do
      if code land (1 lsl (bits - 1 - b)) <> 0 then begin
        let pos = bit0 + b in
        let byte = pos / 8 and off = pos mod 8 in
        Bytes.set out byte
          (Char.chr (Char.code (Bytes.get out byte) lor (0x80 lsr off)))
      end
    done
  done;
  out

let of_packed_bits alphabet ~len bytes =
  let bits = Alphabet.bits alphabet in
  let t = create ~capacity:(max 1 len) alphabet in
  for i = 0 to len - 1 do
    let bit0 = i * bits in
    let code = ref 0 in
    for b = 0 to bits - 1 do
      let pos = bit0 + b in
      let byte = pos / 8 and off = pos mod 8 in
      let set = Char.code (Bytes.get bytes byte) land (0x80 lsr off) <> 0 in
      code := (!code lsl 1) lor (if set then 1 else 0)
    done;
    append t !code
  done;
  t

let packed_bytes_per_char t =
  if t.len = 0 then 0.0 else float_of_int (Alphabet.bits t.alphabet) /. 8.0

let equal a b =
  Alphabet.equal a.alphabet b.alphabet
  && a.len = b.len
  && (let rec go i = i >= a.len || (get a i = get b i && go (i + 1)) in
      go 0)

let copy t =
  let c = create ~capacity:(max 1 t.len) t.alphabet in
  for i = 0 to t.len - 1 do
    ensure c 1;
    Array1.unsafe_set c.buf c.len (get t i);
    c.len <- c.len + 1
  done;
  c

let iteri t ~f =
  for i = 0 to t.len - 1 do f i (get t i) done
