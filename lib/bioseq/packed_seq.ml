(* Designated unsafe boundary (spine-lint L11): every unchecked access
   below sits behind a bound checked once at the module edge (the safe
   [get]/[append]/[mismatch] entry points), and the raw word buffer
   never escapes the module. *)
[@@@spine.checked_boundary
  "bounds checked once at every entry point; raw word buffer never \
   escapes the module"]

open Bigarray

(* The backing store is an array of native 63-bit OCaml ints used as
   bit-packed rows: each word holds [62 / width] codes of [width] bits
   (width is 2, 4 or 8), so every load/shift/mask below is an
   immediate-int operation — no Int64 boxing on the scan path.  Codes
   ascend from the least-significant bit.  Invariants:

   - bits past the last full code of a word are zero;
   - bits past [len] are zero (append only ORs into virgin bits);
   - at least one all-zero spare word follows the used prefix, so a
     two-word window load at any valid position stays in bounds. *)

type words = (int, int_elt, c_layout) Array1.t

type t = {
  alphabet : Alphabet.t;
  mutable words : words;
  mutable len : int;    (* codes stored *)
  mutable width : int;  (* bits per code: 2, 4 or 8 *)
}

let chars_per_word width = 62 / width

(* narrowest supported cell that can hold [code] *)
let width_for code =
  if code < 4 then 2
  else if code < 16 then 4
  else if code < 256 then 8
  else invalid_arg "Packed_seq: code does not fit a packed cell"

(* Sized for the payload codes only: the separator (Generalized's
   string boundary) is wider for DNA and triggers an in-place widen on
   first append instead of taxing every single-string index. *)
let initial_width alphabet = width_for (Alphabet.size alphabet - 1)

let zero_words n =
  let w = Array1.create Bigarray.int c_layout n in
  Array1.fill w 0;
  w

let create ?(capacity = 64) alphabet =
  let width = initial_width alphabet in
  let wcap = max 2 ((max capacity 1 / chars_per_word width) + 2) in
  { alphabet; words = zero_words wcap; len = 0; width }

let alphabet t = t.alphabet
let length t = t.len
let width t = t.width
let codes_per_word t = chars_per_word t.width

let unsafe_get t i =
  let cpw = chars_per_word t.width in
  let wi = i / cpw in
  let r = i - (wi * cpw) in
  (Array1.unsafe_get t.words wi lsr (r * t.width))
  land ((1 lsl t.width) - 1)

let get t i =
  if i < 0 || i >= t.len then
    invalid_arg "Packed_seq.get: index out of range";
  unsafe_get t i

let ensure_words t needed =
  let dim = Array1.dim t.words in
  if needed > dim then begin
    let cap = ref dim in
    while !cap < needed do cap := !cap * 2 done;
    let nbuf = zero_words !cap in
    Array1.blit t.words (Array1.sub nbuf 0 dim);
    t.words <- nbuf
  end

(* Re-pack every stored code at a wider cell; O(len), at most twice in
   a sequence's lifetime (2 -> 4 -> 8). *)
let widen t nw =
  let cpw = chars_per_word nw in
  let nwords = max 2 ((t.len + cpw - 1) / cpw + 1) in
  let nbuf = zero_words nwords in
  for i = 0 to t.len - 1 do
    let code = unsafe_get t i in
    let wi = i / cpw in
    let r = i - (wi * cpw) in
    Array1.unsafe_set nbuf wi
      (Array1.unsafe_get nbuf wi lor (code lsl (r * nw)))
  done;
  t.words <- nbuf;
  t.width <- nw

let append t code =
  if code < 0 || code > Alphabet.separator t.alphabet then
    invalid_arg "Packed_seq.append: code out of range";
  if code >= 1 lsl t.width then widen t (width_for code);
  let cpw = chars_per_word t.width in
  let wi = t.len / cpw in
  let r = t.len - (wi * cpw) in
  ensure_words t (wi + 2);
  Array1.unsafe_set t.words wi
    (Array1.unsafe_get t.words wi lor (code lsl (r * t.width)));
  t.len <- t.len + 1

let append_string t s =
  String.iter (fun c -> append t (Alphabet.encode t.alphabet c)) s

let of_string alphabet s =
  let t = create ~capacity:(max 1 (String.length s)) alphabet in
  append_string t s;
  t

let of_codes alphabet codes =
  let t = create ~capacity:(max 1 (Array.length codes)) alphabet in
  Array.iter (fun c -> append t c) codes;
  t

let sub_string t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.len then
    invalid_arg "Packed_seq.sub_string";
  String.init len (fun i -> Alphabet.decode t.alphabet (unsafe_get t (pos + i)))

let to_string t = sub_string t ~pos:0 ~len:t.len

(* --- word-at-a-time span comparison --- *)

(* [usable] bits of codes starting at code index [i] (two word loads,
   one shift-or, one mask), zero-padded past the end of the sequence.
   Precondition: 0 <= i < t.len; the spare zero word makes the second
   load safe even when [i] sits in the last used word. *)
let load_word t i =
  let width = t.width in
  let cpw = chars_per_word width in
  let u = cpw * width in
  let wi = i / cpw in
  let r = i - (wi * cpw) in
  let lo = Array1.unsafe_get t.words wi in
  if r = 0 then lo
  else
    let b = r * width in
    ((lo lsr b) lor (Array1.unsafe_get t.words (wi + 1) lsl (u - b)))
    land ((1 lsl u) - 1)

(* number of trailing zero bits; [x] must be non-zero *)
let ntz x =
  let x = x land (-x) in
  let n, x = if x land 0xFFFFFFFF = 0 then (32, x lsr 32) else (0, x) in
  let n, x = if x land 0xFFFF = 0 then (n + 16, x lsr 16) else (n, x) in
  let n, x = if x land 0xFF = 0 then (n + 8, x lsr 8) else (n, x) in
  let n, x = if x land 0xF = 0 then (n + 4, x lsr 4) else (n, x) in
  let n, x = if x land 0x3 = 0 then (n + 2, x lsr 2) else (n, x) in
  if x land 0x1 = 0 then n + 1 else n

let check_span a ~apos b ~bpos ~len =
  if
    len < 0 || apos < 0 || bpos < 0 || apos + len > a.len
    || bpos + len > b.len
  then invalid_arg "Packed_seq.mismatch: span out of range"

(* per-code tail/fallback comparison over two sequences *)
let scalar_mismatch a ~apos b ~bpos ~len ~from ~words =
  let k = ref from in
  let res = ref (-1) in
  while !res < 0 && !k < len do
    if unsafe_get a (apos + !k) = unsafe_get b (bpos + !k) then incr k
    else res := !k
  done;
  let m = if !res < 0 then len else !res in
  (m, words, m - from + (if m < len then 1 else 0))

let mismatch a ~apos b ~bpos ~len =
  check_span a ~apos b ~bpos ~len;
  if a.width <> b.width then
    (* mixed cell widths (one sequence widened past the other): the
       packed rows are not directly comparable, fall back per code *)
    scalar_mismatch a ~apos b ~bpos ~len ~from:0 ~words:0
  else begin
    let cpw = chars_per_word a.width in
    let k = ref 0 in
    let words = ref 0 in
    let res = ref (-1) in
    while !res < 0 && len - !k >= cpw do
      let x = load_word a (apos + !k) lxor load_word b (bpos + !k) in
      incr words;
      if x = 0 then k := !k + cpw else res := !k + (ntz x / a.width)
    done;
    if !res >= 0 then (!res, !words, 0)
    else scalar_mismatch a ~apos b ~bpos ~len ~from:!k ~words:!words
  end

let compare_span a ~apos b ~bpos ~len =
  let m, _, _ = mismatch a ~apos b ~bpos ~len in
  m = len

(* --- patterns: pre-packed query strings --- *)

(* build a row directly at a forced width; caller guarantees every
   code fits [width] *)
let row_of_codes alphabet ~pwidth codes =
  let cpw = chars_per_word pwidth in
  let n = Array.length codes in
  let t =
    { alphabet; width = pwidth; len = 0;
      words = zero_words (max 2 ((n + cpw - 1) / cpw + 1)) }
  in
  for i = 0 to n - 1 do
    let wi = i / cpw in
    let r = i - (wi * cpw) in
    Array1.unsafe_set t.words wi
      (Array1.unsafe_get t.words wi lor (Array.unsafe_get codes i lsl (r * pwidth)))
  done;
  t.len <- n;
  t

module Pattern = struct
  type row = t

  type t = {
    codes : int array;
    p_alphabet : Alphabet.t;
    max_code : int;  (* -1 when empty *)
    min_code : int;  (* 0 when empty *)
    mutable cached : row option;
        (* packed rendering at the width of the last text row it was
           compared against; re-packed lazily when widths change *)
  }

  let of_codes alphabet codes =
    { codes = Array.copy codes;
      p_alphabet = alphabet;
      max_code = Array.fold_left max (-1) codes;
      min_code = Array.fold_left min 0 codes;
      cached = None }

  let length p = Array.length p.codes
  let get p i = p.codes.(i)
  let alphabet p = p.p_alphabet
end

(* per-code fallback against a raw pattern (codes that cannot be
   packed at the text's width — they can never fully match, but the
   scan still needs the exact mismatch position) *)
let scalar_pattern t ~pos codes ~ppos ~len =
  let k = ref 0 in
  let res = ref (-1) in
  while !res < 0 && !k < len do
    if unsafe_get t (pos + !k) = Array.unsafe_get codes (ppos + !k) then
      incr k
    else res := !k
  done;
  let m = if !res < 0 then len else !res in
  (m, 0, m + (if m < len then 1 else 0))

let mismatch_pattern t ~pos (p : Pattern.t) ~ppos ~len =
  if
    len < 0 || pos < 0 || ppos < 0 || pos + len > t.len
    || ppos + len > Array.length p.Pattern.codes
  then invalid_arg "Packed_seq.mismatch_pattern: span out of range";
  if p.Pattern.min_code >= 0 && p.Pattern.max_code < 1 lsl t.width then begin
    let row =
      match p.Pattern.cached with
      | Some r when r.width = t.width -> r
      | _ ->
        let r = row_of_codes t.alphabet ~pwidth:t.width p.Pattern.codes in
        p.Pattern.cached <- Some r;
        r
    in
    mismatch t ~apos:pos row ~bpos:ppos ~len
  end
  else scalar_pattern t ~pos p.Pattern.codes ~ppos ~len

(* --- serialized form ---

   The packed row IS the serialized form: [used words] 64-bit
   little-endian words, each carrying [62 / width] codes in its low
   bits and zeros above (tail padding included).  No re-packing on
   snapshot or page-out. *)

let used_words t =
  let cpw = chars_per_word t.width in
  (t.len + cpw - 1) / cpw

let packed_byte_length t = used_words t * 8

let packed_bits t =
  let nw = used_words t in
  let out = Bytes.create (nw * 8) in
  for w = 0 to nw - 1 do
    let v = Array1.unsafe_get t.words w in
    for k = 0 to 7 do
      Bytes.unsafe_set out ((w * 8) + k)
        (Char.unsafe_chr ((v lsr (8 * k)) land 0xFF))
    done
  done;
  out

let of_packed_bits alphabet ~len ~width bytes =
  if width <> 2 && width <> 4 && width <> 8 then
    invalid_arg "Packed_seq.of_packed_bits: unsupported cell width";
  if len < 0 then invalid_arg "Packed_seq.of_packed_bits: negative length";
  let cpw = chars_per_word width in
  let nw = (len + cpw - 1) / cpw in
  if Bytes.length bytes < nw * 8 then
    invalid_arg "Packed_seq.of_packed_bits: payload shorter than length";
  let umask = (1 lsl (cpw * width)) - 1 in
  let t = { alphabet; width; len; words = zero_words (max 2 (nw + 1)) } in
  for w = 0 to nw - 1 do
    let v = ref 0 in
    for k = 0 to 7 do
      v := !v lor (Char.code (Bytes.get bytes ((w * 8) + k)) lsl (8 * k))
    done;
    if !v land lnot umask <> 0 then
      invalid_arg "Packed_seq.of_packed_bits: stray bits beyond the row";
    Array1.unsafe_set t.words w !v
  done;
  (* tail padding of the last word must be zero *)
  if nw > 0 then begin
    let tail = len - ((nw - 1) * cpw) in
    if Array1.unsafe_get t.words (nw - 1) lsr (tail * width) <> 0 then
      invalid_arg "Packed_seq.of_packed_bits: stray bits beyond the row"
  end;
  (* a cell wider than the alphabet can encode out-of-alphabet codes *)
  let sep = Alphabet.separator alphabet in
  if (1 lsl width) - 1 > sep then
    for i = 0 to len - 1 do
      if unsafe_get t i > sep then
        invalid_arg "Packed_seq.of_packed_bits: code outside the alphabet"
    done;
  t

let packed_bytes_per_char t =
  if t.len = 0 then 0.0
  else float_of_int (packed_byte_length t) /. float_of_int t.len

let equal a b =
  Alphabet.equal a.alphabet b.alphabet
  && a.len = b.len
  && (a.len = 0
      ||
      let m, _, _ = mismatch a ~apos:0 b ~bpos:0 ~len:a.len in
      m = a.len)

let copy t =
  let uw = used_words t + 1 in
  let nbuf = zero_words (max 2 uw) in
  Array1.blit (Array1.sub t.words 0 uw) (Array1.sub nbuf 0 uw);
  { alphabet = t.alphabet; words = nbuf; len = t.len; width = t.width }

let iteri t ~f =
  for i = 0 to t.len - 1 do f i (unsafe_get t i) done
