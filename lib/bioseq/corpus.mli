(** The paper's evaluation corpus, reproduced synthetically.

    Section 5/6 of the paper evaluates on four DNA strings — E.coli
    (3.5 Mbp), C.elegans (15.5 Mbp), Human chromosome 21 (28.5 Mbp),
    Human chromosome 19 (57.5 Mbp) — and three proteomes — E.coli residue
    (1.5 M), Yeast residue (3.1 M), Drosophila residue (7.5 M).

    Each corpus entry here is a named deterministic generator profile with
    the paper's length.  Because a pure-OCaml testbed is slower per
    character than the paper's C prototype, experiments run at a
    configurable [scale] (default 1/10 of the paper's lengths); the
    reported comparisons are index-vs-index on identical inputs, so the
    scale factor cancels out of every relative result. *)

type t = {
  name : string;            (** paper's label, e.g. "HC21" *)
  description : string;
  alphabet : Alphabet.t;
  paper_length : int;       (** characters in the paper's real string *)
  seed : int;               (** deterministic generation seed *)
  profile : Synthetic.repeat_profile;
}

(** E.coli genome, 3.5 M characters in the paper. *)
val eco : t

(** C.elegans genome, 15.5 M characters. *)
val cel : t

(** Human chromosome 21, 28.5 M characters. *)
val hc21 : t

(** Human chromosome 19, 57.5 M characters. *)
val hc19 : t

(** E.coli proteome, 1.5 M residues. *)
val eco_r : t

(** Yeast proteome, 3.1 M residues. *)
val yeast_r : t

(** Drosophila proteome, 7.5 M residues. *)
val dros_r : t

val dna : t list
(** [eco; cel; hc21; hc19], the order used by the paper's figures. *)

val proteins : t list
(** [eco_r; yeast_r; dros_r]. *)

val all : t list

val find : string -> t option
(** Case-insensitive lookup by name. *)

val find_exn : string -> t
(** Like {!find} but for corpora known to exist (the experiment
    harness's own tables).
    @raise Invalid_argument naming the missing corpus, instead of the
    anonymous [Option.get] failure. *)

val scaled_length : scale:float -> t -> int
(** [scaled_length ~scale c] is [c.paper_length] scaled and clamped to at
    least 1000 characters. *)

val load : ?scale:float -> t -> Packed_seq.t
(** Generate the synthetic stand-in string (default [scale = 0.1]).
    Deterministic: same corpus and scale always produce the same
    string. *)

val query_variant : ?scale:float -> ?divergence:float -> t -> Packed_seq.t
(** A mutated copy of the corpus string (default 5 % divergence),
    standing in for the "related genome" query side of the paper's
    cross-matching experiments when a pair like ECO/CEL is wanted at
    matched repetitiveness. Deterministic per corpus. *)
