(** Per-operation event tracing.

    Where {!Telemetry} answers "how much, over the whole run", this
    subsystem answers "where did {e this} operation spend its time":
    every instrumented layer (builder cases, per-edge-family traversal
    steps, buffer-pool faults, device transfers, structure→page
    routing) emits timestamped events into one process-global ring
    buffer, tagged with the id of the enclosing {e operation} (a build,
    a query, a matching run).  One exported trace therefore shows
    exactly which rib/extrib/link step triggered which page fault.

    Collection is off by default and costs a single flag check per
    instrumented site ({!on}); hot paths guard argument construction
    with [if Trace.on () then Trace.instant ...] so the disabled path
    allocates nothing.  When on, events go into a fixed-capacity ring
    with head-drop semantics (the newest events are always retained;
    the oldest are dropped and counted), and whole operations can be
    probabilistically sampled away with a deterministic seeded RNG.
    Operations whose wall time exceeds the slow threshold are always
    summarised in a separate slow-op log, even when sampled out of the
    event ring.

    Environment switches (read once at module initialisation; the
    setters below override them):

    - [SPINE_TRACE=1] (also [true]/[yes]/[on]) — enable collection;
    - [SPINE_TRACE_SAMPLE=0.25] — per-operation sampling probability
      in [\[0, 1\]] (default 1: trace every operation);
    - [SPINE_TRACE_SLOW_US=500] — slow-op threshold in microseconds
      (default 0: slow-op log disabled);
    - [SPINE_TRACE_CAPACITY=65536] — ring capacity in events;
    - [SPINE_TRACE_SEED=42] — sampling RNG seed.

    Malformed values fall back to the defaults; the library never
    fails to initialise.  Timestamps come from the same monotonic
    clock as {!Xutil.Stopwatch} and the telemetry spans. *)

(** {1 Events} *)

type arg =
  | Int of string * int
  | Str of string * string
      (** Typed key/value payload: node ids, edge families, page ids,
          structure ids, pattern strings. *)

type phase =
  | Begin  (** span / operation start *)
  | End    (** span / operation end *)
  | Instant  (** point event *)

type event = {
  ts_ns : int;  (** monotonic timestamp, {!Xutil.Stopwatch.now_ns} *)
  phase : phase;
  name : string;
  args : arg list;
  op : int;  (** id of the enclosing operation; 0 = outside any *)
}

(** {1 The collection switch} *)

val is_enabled : unit -> bool
val set_enabled : bool -> unit

val on : unit -> bool
(** [true] iff events are being recorded {e right now}: collection is
    enabled and the current operation was not sampled away.  Hot
    instrumentation sites test this before building their [arg] lists
    so a disabled trace costs one check and no allocation. *)

(** {1 Configuration} *)

val set_sample_rate : float -> unit
(** Clamped to [\[0, 1\]].  Sampling is per {!with_op} operation: a
    sampled-out operation records no events at all (its slow-op
    summary is still kept). *)

val set_seed : int -> unit
(** Reset the sampling RNG (SplitMix64) to a deterministic state: the
    same seed and operation sequence reproduce the same keep/drop
    pattern. *)

val set_slow_us : int -> unit
(** Slow-op threshold in microseconds; [<= 0] disables the log. *)

val slow_us : unit -> int
(** The current slow-op threshold, for save/restore around a scoped
    run (the workload runner lowers it for the duration of a run). *)

val set_capacity : int -> unit
(** Resize the ring (clamped to [>= 1]).  Discards buffered events. *)

val capacity : unit -> int

val set_clock : (unit -> int) -> unit
(** Replace the timestamp source (test hook; tests restore
    [Xutil.Stopwatch.now_ns] afterwards).  Deterministic clocks make
    the exporters' output, and slow-op detection, reproducible. *)

val reset : unit -> unit
(** Drop all buffered events, the slow-op log, the drop counter and
    the operation-id counter.  Configuration (enabled flag, rate,
    seed position, capacity, clock) is untouched. *)

(** {1 Recording} *)

val instant : string -> arg list -> unit
(** Record a point event (no-op unless {!on}). *)

val begin_span : string -> arg list -> unit
(** Open a span.  Paired with {!end_span}; the pair form exists so hot
    paths can bracket existing code without allocating a closure.
    Callers capture [Trace.on ()] once and guard both calls with it. *)

val end_span : unit -> unit
(** Close the innermost open span (no-op when none is open). *)

val span : string -> arg list -> (unit -> 'a) -> 'a
(** [span name args f] runs [f] inside a [Begin]/[End] pair
    (exception-safe).  Convenience for cold paths. *)

val with_op : string -> arg list -> (unit -> 'a) -> 'a
(** [with_op name args f] runs [f] as one traced {e operation}: a
    fresh operation id tags every event recorded inside, the sampling
    decision is drawn once for the whole operation, and the duration
    is checked against the slow threshold on the way out (slow
    operations are logged even when sampled out or when the ring has
    since wrapped).  Operations nest; a nested operation inherits a
    parent's sampled-out state. *)

(** {1 Reading back} *)

val events : unit -> event list
(** Buffered events, oldest first (at most {!capacity}). *)

val dropped : unit -> int
(** Events overwritten by head-drop since the last {!reset}. *)

type slow_op = {
  so_op : int;  (** operation id *)
  so_name : string;
  so_args : arg list;
  so_ns : int;  (** duration *)
  so_sampled : bool;  (** whether its events went to the ring *)
}

val slow_ops : unit -> slow_op list
(** Chronological.  Retained regardless of sampling and ring wrap. *)

(** {1 Exporters} *)

val chrome_json : unit -> string
(** The buffered events as one Chrome trace-event JSON object
    ([{"traceEvents":[...]}]) loadable in [chrome://tracing] and
    Perfetto.  Spans become [B]/[E] pairs, instants become [i]; each
    operation renders as its own track (its id is the [tid]), with a
    [thread_name] metadata record carrying the operation name. *)

val write_chrome : path:string -> unit

val jsonl : unit -> string list
(** One JSON object per event, e.g.
    [{"ts_ns":1042,"ph":"i","name":"step.rib","op":3,"args":{"node":7,"dest":9}}]. *)

val write_jsonl : path:string -> unit

val slow_rows : unit -> string list list
(** [[op; name; duration ms; sampled; args]] rows for
    {!Report.Table.print}-style rendering of the slow-op log. *)
