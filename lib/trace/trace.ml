(* One process-global ring of events plus a little operation state.
   The hot-path contract is the same as Telemetry's: when collection
   is off (or the current operation is sampled out) every entry point
   is one flag check — callers guard argument-list construction with
   [Trace.on ()] so nothing allocates. *)

type arg =
  | Int of string * int
  | Str of string * string

type phase = Begin | End | Instant

type event = {
  ts_ns : int;
  phase : phase;
  name : string;
  args : arg list;
  op : int;
}

type slow_op = {
  so_op : int;
  so_name : string;
  so_args : arg list;
  so_ns : int;
  so_sampled : bool;
}

(* --- environment --- *)

let env_bool name =
  match Sys.getenv_opt name with
  | Some ("1" | "true" | "yes" | "on") -> true
  | _ -> false

let env_float name fallback =
  match Sys.getenv_opt name with
  | Some v -> (match float_of_string_opt v with Some f -> f | None -> fallback)
  | None -> fallback

let env_int name fallback =
  match Sys.getenv_opt name with
  | Some v -> (match int_of_string_opt v with Some n -> n | None -> fallback)
  | None -> fallback

(* --- state --- *)

let enabled = ref (env_bool "SPINE_TRACE")
let muted = ref false           (* inside a sampled-out operation *)
let recording = ref !enabled    (* = enabled && not muted, kept in sync *)
let sample_rate = ref (min 1.0 (max 0.0 (env_float "SPINE_TRACE_SAMPLE" 1.0)))
let slow_ns = ref (env_int "SPINE_TRACE_SLOW_US" 0 * 1000)
let clock = ref Xutil.Stopwatch.now_ns

let dummy = { ts_ns = 0; phase = Instant; name = ""; args = []; op = 0 }
let ring = ref (Array.make (max 1 (env_int "SPINE_TRACE_CAPACITY" 65536)) dummy)
let start = ref 0
let len = ref 0
let dropped_count = ref 0

let op_counter = ref 0
let cur_op = ref 0
let op_names = ref []           (* (id, name), newest first; for exporters *)
let span_stack = ref []
let slow = ref []               (* newest first *)

let is_enabled () = !enabled

let set_enabled b =
  enabled := b;
  recording := b && not !muted

let on () = !recording

let set_sample_rate r = sample_rate := min 1.0 (max 0.0 r)
let set_slow_us us = slow_ns := us * 1000
let slow_us () = !slow_ns / 1000
let set_clock f = clock := f
let capacity () = Array.length !ring

let set_capacity n =
  ring := Array.make (max 1 n) dummy;
  start := 0;
  len := 0;
  dropped_count := 0

let reset () =
  start := 0;
  len := 0;
  dropped_count := 0;
  op_counter := 0;
  cur_op := 0;
  op_names := [];
  span_stack := [];
  slow := [];
  muted := false;
  recording := !enabled

(* --- sampling RNG (SplitMix64, as lib/bioseq/rng.ml) --- *)

let rng = ref (Int64.of_int (env_int "SPINE_TRACE_SEED" 0x5eed))
let set_seed s = rng := Int64.of_int s

let next64 () =
  let open Int64 in
  rng := add !rng 0x9E3779B97F4A7C15L;
  let z = !rng in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* uniform in [0, 1) from the top 53 bits *)
let draw () =
  Int64.to_float (Int64.shift_right_logical (next64 ()) 11) /. 9007199254740992.0

let sample_keeps () =
  !sample_rate >= 1.0 || (!sample_rate > 0.0 && draw () < !sample_rate)

(* --- recording --- *)

let push e =
  let cap = Array.length !ring in
  if !len < cap then begin
    !ring.((!start + !len) mod cap) <- e;
    incr len
  end
  else begin
    (* head drop: overwrite the oldest, keep the newest window *)
    !ring.(!start) <- e;
    start := (!start + 1) mod cap;
    incr dropped_count
  end

let record phase name args =
  push { ts_ns = !clock (); phase; name; args; op = !cur_op }

let instant name args = if !recording then record Instant name args

let begin_span name args =
  if !recording then begin
    span_stack := name :: !span_stack;
    record Begin name args
  end

let end_span () =
  if !recording then
    match !span_stack with
    | [] -> ()
    | name :: rest ->
      span_stack := rest;
      record End name []

let span name args f =
  if not !recording then f ()
  else begin
    record Begin name args;
    Fun.protect ~finally:(fun () -> if !recording then record End name []) f
  end

let with_op name args f =
  if not !enabled then f ()
  else begin
    let parent_op = !cur_op and parent_muted = !muted in
    incr op_counter;
    let id = !op_counter in
    (* one draw per operation, taken even under a muted parent so the
       keep/drop pattern depends only on the seed and operation order *)
    let sampled = sample_keeps () in
    cur_op := id;
    muted := parent_muted || not sampled;
    recording := !enabled && not !muted;
    if !recording then begin
      op_names := (id, name) :: !op_names;
      record Begin name args
    end;
    let t0 = !clock () in
    Fun.protect
      ~finally:(fun () ->
        let dt = !clock () - t0 in
        if !recording then record End name [];
        if !slow_ns > 0 && dt >= !slow_ns then
          slow :=
            { so_op = id; so_name = name; so_args = args; so_ns = dt;
              so_sampled = sampled && not parent_muted }
            :: !slow;
        cur_op := parent_op;
        muted := parent_muted;
        recording := !enabled && not !muted)
      f
  end

(* --- reading back --- *)

let events () =
  let cap = Array.length !ring in
  List.init !len (fun i -> !ring.((!start + i) mod cap))

let dropped () = !dropped_count
let slow_ops () = List.rev !slow

(* --- exporters --- *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_args buf args =
  Buffer.add_string buf "\"args\":{";
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char buf ',';
      match a with
      | Int (k, v) -> Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (json_escape k) v)
      | Str (k, v) ->
        Buffer.add_string buf
          (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
    args;
  Buffer.add_char buf '}'

let ph_id = function Begin -> "B" | End -> "E" | Instant -> "i"

(* Chrome trace-event format: ts is in (fractional) microseconds; each
   operation is rendered as its own thread so Perfetto shows one track
   per traced operation, named via thread_name metadata. *)
let chrome_json () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_char buf ',' in
  List.iter
    (fun (id, name) ->
      sep ();
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"%s #%d\"}}"
           id (json_escape name) id))
    (List.rev !op_names);
  List.iter
    (fun e ->
      sep ();
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"spine\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":%d"
           (json_escape e.name) (ph_id e.phase)
           (float_of_int e.ts_ns /. 1e3)
           e.op);
      if e.phase = Instant then Buffer.add_string buf ",\"s\":\"t\"";
      if e.args <> [] then begin
        Buffer.add_char buf ',';
        add_args buf e.args
      end;
      Buffer.add_char buf '}')
    (events ());
  Buffer.add_string buf "]}";
  Buffer.contents buf

let jsonl () =
  List.map
    (fun e ->
      let buf = Buffer.create 96 in
      Buffer.add_string buf
        (Printf.sprintf "{\"ts_ns\":%d,\"ph\":\"%s\",\"name\":\"%s\",\"op\":%d"
           e.ts_ns (ph_id e.phase) (json_escape e.name) e.op);
      if e.args <> [] then begin
        Buffer.add_char buf ',';
        add_args buf e.args
      end;
      Buffer.add_char buf '}';
      Buffer.contents buf)
    (events ())

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write_chrome ~path = write_file path (chrome_json ())

let write_jsonl ~path =
  write_file path
    (String.concat "" (List.map (fun line -> line ^ "\n") (jsonl ())))

let arg_to_string = function
  | Int (k, v) -> Printf.sprintf "%s=%d" k v
  | Str (k, v) -> Printf.sprintf "%s=%s" k v

let slow_rows () =
  List.map
    (fun so ->
      [ string_of_int so.so_op;
        so.so_name;
        Printf.sprintf "%.3f ms" (float_of_int so.so_ns /. 1e6);
        (if so.so_sampled then "yes" else "no");
        String.concat " " (List.map arg_to_string so.so_args) ])
    (slow_ops ())
