(* One ring of events per domain plus a little per-domain operation
   state.  The hot-path contract is the same as Telemetry's: when
   collection is off (or the current operation is sampled out) every
   entry point is one domain-local state fetch plus one flag check —
   callers guard argument-list construction with [Trace.on ()] so
   nothing allocates.

   Domain safety: everything an instrumented query path mutates (the
   ring, the span stack, the operation bookkeeping, the sampling RNG)
   lives in a [Domain.DLS] slot, so parallel domains querying one
   shared index each trace into their own ring with no shared writes —
   the contract spine-lint's L9 rule certifies.  The configuration
   cells below ([enabled], sample rate, slow threshold, clock,
   capacity, seed) are process-global and meant to be set before
   spawning domains: a fresh domain's state is initialised from them on
   first use, and the setters additionally refresh the calling domain's
   state.  Readback and the exporters see the calling domain's ring. *)

type arg =
  | Int of string * int
  | Str of string * string

type phase = Begin | End | Instant

type event = {
  ts_ns : int;
  phase : phase;
  name : string;
  args : arg list;
  op : int;
}

type slow_op = {
  so_op : int;
  so_name : string;
  so_args : arg list;
  so_ns : int;
  so_sampled : bool;
}

(* --- environment --- *)

let env_bool name =
  match Sys.getenv_opt name with
  | Some ("1" | "true" | "yes" | "on") -> true
  | _ -> false

let env_float name fallback =
  match Sys.getenv_opt name with
  | Some v -> (match float_of_string_opt v with Some f -> f | None -> fallback)
  | None -> fallback

let env_int name fallback =
  match Sys.getenv_opt name with
  | Some v -> (match int_of_string_opt v with Some n -> n | None -> fallback)
  | None -> fallback

(* --- configuration (process-global, set before spawning domains) --- *)

let enabled = ref (env_bool "SPINE_TRACE")
let sample_rate = ref (min 1.0 (max 0.0 (env_float "SPINE_TRACE_SAMPLE" 1.0)))
let slow_ns = ref (env_int "SPINE_TRACE_SLOW_US" 0 * 1000)
let clock = ref Xutil.Stopwatch.now_ns
let ring_capacity = ref (max 1 (env_int "SPINE_TRACE_CAPACITY" 65536))
let seed = ref (env_int "SPINE_TRACE_SEED" 0x5eed)

let dummy = { ts_ns = 0; phase = Instant; name = ""; args = []; op = 0 }

(* --- per-domain state --- *)

type dstate = {
  mutable muted : bool;         (* inside a sampled-out operation *)
  mutable recording : bool;     (* = !enabled && not muted, kept in sync *)
  mutable ring : event array;
  mutable start : int;
  mutable len : int;
  mutable dropped_count : int;
  mutable op_counter : int;
  mutable cur_op : int;
  mutable op_names : (int * string) list;  (* newest first; for exporters *)
  mutable span_stack : string list;
  mutable slow : slow_op list;  (* newest first *)
  mutable rng : int64;          (* sampling RNG (SplitMix64) *)
}

let state_key =
  Domain.DLS.new_key (fun () ->
      { muted = false;
        recording = !enabled;
        ring = Array.make !ring_capacity dummy;
        start = 0;
        len = 0;
        dropped_count = 0;
        op_counter = 0;
        cur_op = 0;
        op_names = [];
        span_stack = [];
        slow = [];
        rng = Int64.of_int !seed })

let ds () = Domain.DLS.get state_key

let is_enabled () = !enabled

let set_enabled b =
  enabled := b;
  let d = ds () in
  d.recording <- b && not d.muted

let on () = (ds ()).recording

let set_sample_rate r = sample_rate := min 1.0 (max 0.0 r)
let set_slow_us us = slow_ns := us * 1000
let slow_us () = !slow_ns / 1000
let set_clock f = clock := f
let capacity () = Array.length (ds ()).ring

let set_capacity n =
  ring_capacity := max 1 n;
  let d = ds () in
  d.ring <- Array.make !ring_capacity dummy;
  d.start <- 0;
  d.len <- 0;
  d.dropped_count <- 0

let reset () =
  let d = ds () in
  d.start <- 0;
  d.len <- 0;
  d.dropped_count <- 0;
  d.op_counter <- 0;
  d.cur_op <- 0;
  d.op_names <- [];
  d.span_stack <- [];
  d.slow <- [];
  d.muted <- false;
  d.recording <- !enabled

(* --- sampling RNG (SplitMix64, as lib/bioseq/rng.ml) --- *)

let set_seed s =
  seed := s;
  (ds ()).rng <- Int64.of_int s

let next64 d =
  let open Int64 in
  d.rng <- add d.rng 0x9E3779B97F4A7C15L;
  let z = d.rng in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* uniform in [0, 1) from the top 53 bits *)
let draw d =
  Int64.to_float (Int64.shift_right_logical (next64 d) 11) /. 9007199254740992.0

let sample_keeps d =
  !sample_rate >= 1.0 || (!sample_rate > 0.0 && draw d < !sample_rate)

(* --- recording --- *)

let push d e =
  let cap = Array.length d.ring in
  if d.len < cap then begin
    d.ring.((d.start + d.len) mod cap) <- e;
    d.len <- d.len + 1
  end
  else begin
    (* head drop: overwrite the oldest, keep the newest window *)
    d.ring.(d.start) <- e;
    d.start <- (d.start + 1) mod cap;
    d.dropped_count <- d.dropped_count + 1
  end

let record d phase name args =
  push d { ts_ns = !clock (); phase; name; args; op = d.cur_op }

let instant name args =
  let d = ds () in
  if d.recording then record d Instant name args

let begin_span name args =
  let d = ds () in
  if d.recording then begin
    d.span_stack <- name :: d.span_stack;
    record d Begin name args
  end

let end_span () =
  let d = ds () in
  if d.recording then
    match d.span_stack with
    | [] -> ()
    | name :: rest ->
      d.span_stack <- rest;
      record d End name []

let span name args f =
  let d = ds () in
  if not d.recording then f ()
  else begin
    record d Begin name args;
    Fun.protect ~finally:(fun () -> if d.recording then record d End name []) f
  end

let with_op name args f =
  if not !enabled then f ()
  else begin
    let d = ds () in
    let parent_op = d.cur_op and parent_muted = d.muted in
    d.op_counter <- d.op_counter + 1;
    let id = d.op_counter in
    (* one draw per operation, taken even under a muted parent so the
       keep/drop pattern depends only on the seed and operation order *)
    let sampled = sample_keeps d in
    d.cur_op <- id;
    d.muted <- parent_muted || not sampled;
    d.recording <- !enabled && not d.muted;
    if d.recording then begin
      d.op_names <- (id, name) :: d.op_names;
      record d Begin name args
    end;
    let t0 = !clock () in
    Fun.protect
      ~finally:(fun () ->
        let dt = !clock () - t0 in
        if d.recording then record d End name [];
        if !slow_ns > 0 && dt >= !slow_ns then
          d.slow <-
            { so_op = id; so_name = name; so_args = args; so_ns = dt;
              so_sampled = sampled && not parent_muted }
            :: d.slow;
        d.cur_op <- parent_op;
        d.muted <- parent_muted;
        d.recording <- !enabled && not d.muted)
      f
  end

(* --- reading back (the calling domain's ring) --- *)

let events () =
  let d = ds () in
  let cap = Array.length d.ring in
  List.init d.len (fun i -> d.ring.((d.start + i) mod cap))

let dropped () = (ds ()).dropped_count
let slow_ops () = List.rev (ds ()).slow

(* --- exporters --- *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_args buf args =
  Buffer.add_string buf "\"args\":{";
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char buf ',';
      match a with
      | Int (k, v) -> Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (json_escape k) v)
      | Str (k, v) ->
        Buffer.add_string buf
          (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
    args;
  Buffer.add_char buf '}'

let ph_id = function Begin -> "B" | End -> "E" | Instant -> "i"

(* Chrome trace-event format: ts is in (fractional) microseconds; each
   operation is rendered as its own thread so Perfetto shows one track
   per traced operation, named via thread_name metadata. *)
let chrome_json () =
  let d = ds () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_char buf ',' in
  List.iter
    (fun (id, name) ->
      sep ();
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"%s #%d\"}}"
           id (json_escape name) id))
    (List.rev d.op_names);
  List.iter
    (fun e ->
      sep ();
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"spine\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":%d"
           (json_escape e.name) (ph_id e.phase)
           (float_of_int e.ts_ns /. 1e3)
           e.op);
      if e.phase = Instant then Buffer.add_string buf ",\"s\":\"t\"";
      if e.args <> [] then begin
        Buffer.add_char buf ',';
        add_args buf e.args
      end;
      Buffer.add_char buf '}')
    (events ());
  Buffer.add_string buf "]}";
  Buffer.contents buf

let jsonl () =
  List.map
    (fun e ->
      let buf = Buffer.create 96 in
      Buffer.add_string buf
        (Printf.sprintf "{\"ts_ns\":%d,\"ph\":\"%s\",\"name\":\"%s\",\"op\":%d"
           e.ts_ns (ph_id e.phase) (json_escape e.name) e.op);
      if e.args <> [] then begin
        Buffer.add_char buf ',';
        add_args buf e.args
      end;
      Buffer.add_char buf '}';
      Buffer.contents buf)
    (events ())

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write_chrome ~path = write_file path (chrome_json ())

let write_jsonl ~path =
  write_file path
    (String.concat "" (List.map (fun line -> line ^ "\n") (jsonl ())))

let arg_to_string = function
  | Int (k, v) -> Printf.sprintf "%s=%d" k v
  | Str (k, v) -> Printf.sprintf "%s=%s" k v

let slow_rows () =
  List.map
    (fun so ->
      [ string_of_int so.so_op;
        so.so_name;
        Printf.sprintf "%.3f ms" (float_of_int so.so_ns /. 1e6);
        (if so.so_sampled then "yes" else "no");
        String.concat " " (List.map arg_to_string so.so_args) ])
    (slow_ops ())
