(** Typed errors for the storage stack.

    Every failure the disk vertical can signal — checksum mismatches,
    I/O errors (real or injected), buffer-pool exhaustion, use after
    close — is a constructor of {!t} raised as {!Error}, replacing the
    stringly [Failure] exceptions the stack used to throw.  Callers can
    match precisely: retry on transient {!Io_failed}, surface
    {!Corrupt} with its region and page, treat {!Closed} as a
    programming error.

    This library sits below both [pagestore] and [spine] so the same
    error type flows through the whole vertical. *)

type io_op = Read | Write | Sync

type t =
  | Corrupt of { region : string; page : int; detail : string }
      (** Data failed validation: bad checksum, bad magic, impossible
          structure.  [region] names the on-disk area ("meta", "lt",
          "rt0".."rt3", "seq", "snapshot", …); [page] is the page id, or
          [-1] when the payload is not page-addressed (then [detail]
          carries a byte offset where useful). *)
  | Io_failed of { op : io_op; page : int; transient : bool; detail : string }
      (** The operating system (or the fault injector) refused the
          operation.  [transient] marks errors worth retrying. *)
  | Pool_exhausted of { frames : int; latched : int }
      (** Every buffer-pool frame is latched by a live [with_page]
          caller; no victim can be chosen even after a retry pass. *)
  | Closed of string  (** Operation on a closed handle. *)
  | Timeout of { op : string; deadline_ns : int; elapsed_ns : int }
      (** The operation overran its per-query deadline (armed by the
          resilience layer, checked cooperatively in the paged hot
          paths — see [Pagestore.Deadline]).  The caller got {e no}
          partial result. *)
  | Overloaded of { op : string; state : string }
      (** Load shed: the circuit breaker is open (or still probing in
          half-open) and the request was rejected without touching the
          engine.  [state] names the breaker state that shed it. *)

exception Error of t

val to_string : t -> string
(** One-line human rendering; also installed as the [Printexc] printer
    for {!Error}. *)

val raise_error : t -> 'a

val corrupt :
  region:string -> ?page:int ->
  ('a, unit, string, 'b) format4 -> 'a
(** [corrupt ~region ~page fmt …] raises [Error (Corrupt …)] with a
    formatted detail ([page] defaults to [-1]). *)

val io_failed :
  op:io_op -> ?page:int -> ?transient:bool ->
  ('a, unit, string, 'b) format4 -> 'a
(** Raise [Error (Io_failed …)] ([page] defaults to [-1], [transient]
    to [false]). *)

val timeout : op:string -> deadline_ns:int -> elapsed_ns:int -> 'a
(** Raise [Error (Timeout …)]. *)

val overloaded : op:string -> state:string -> 'a
(** Raise [Error (Overloaded …)]. *)
