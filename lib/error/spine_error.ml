type io_op = Read | Write | Sync

type t =
  | Corrupt of { region : string; page : int; detail : string }
  | Io_failed of { op : io_op; page : int; transient : bool; detail : string }
  | Pool_exhausted of { frames : int; latched : int }
  | Closed of string
  | Timeout of { op : string; deadline_ns : int; elapsed_ns : int }
  | Overloaded of { op : string; state : string }

exception Error of t

let op_name = function Read -> "read" | Write -> "write" | Sync -> "sync"

let to_string = function
  | Corrupt { region; page; detail } ->
    if page < 0 then Printf.sprintf "corrupt %s: %s" region detail
    else Printf.sprintf "corrupt %s (page %d): %s" region page detail
  | Io_failed { op; page; transient; detail } ->
    Printf.sprintf "%s%s failed%s: %s"
      (if transient then "transient " else "")
      (op_name op)
      (if page < 0 then "" else Printf.sprintf " (page %d)" page)
      detail
  | Pool_exhausted { frames; latched } ->
    Printf.sprintf
      "buffer pool exhausted: all %d frames held (%d latched by callers)"
      frames latched
  | Closed what -> Printf.sprintf "%s is closed" what
  | Timeout { op; deadline_ns; elapsed_ns } ->
    Printf.sprintf "%s timed out: %.3f ms elapsed against a %.3f ms deadline"
      op
      (float_of_int elapsed_ns /. 1e6)
      (float_of_int deadline_ns /. 1e6)
  | Overloaded { op; state } ->
    Printf.sprintf "%s shed: circuit breaker %s" op state

let raise_error e = raise (Error e)

let timeout ~op ~deadline_ns ~elapsed_ns =
  raise (Error (Timeout { op; deadline_ns; elapsed_ns }))

let overloaded ~op ~state = raise (Error (Overloaded { op; state }))

let corrupt ~region ?(page = -1) fmt =
  Printf.ksprintf (fun detail -> raise (Error (Corrupt { region; page; detail }))) fmt

let io_failed ~op ?(page = -1) ?(transient = false) fmt =
  Printf.ksprintf
    (fun detail -> raise (Error (Io_failed { op; page; transient; detail })))
    fmt

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Spine_error.Error: " ^ to_string e)
    | _ -> None)
