let printf fmt = Printf.printf fmt
let line s = print_endline s
