(** The sanctioned stdout channel for harness prose.

    Library code must not write to stdout directly (spine-lint rule
    [stdout]): everything user-visible flows through [lib/report] so
    output stays greppable and a future sink swap (pager, file, JSONL
    mirror) is one change.  Tables and bars have {!Table} and {!Bar};
    the odd connective sentence between them uses this module. *)

val printf : ('a, out_channel, unit) format -> 'a
val line : string -> unit
