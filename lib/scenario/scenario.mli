(** Chaos scenarios: composable fault/latency/load stages with
    end-of-stage expectations, all deterministic in one seed.

    A scenario is a JSONL file (parsed with {!Bench_gate.Json}, one
    object per line, [#] comments and blank lines ignored):

    {v
    {"scenario": "storm-recovery", "version": 1, "seed": 42}
    {"stage": "build", "chars": 20000, "chunks": 4, "alphabet": "dna",
     "frames": 16, "page_size": 4096}
    {"stage": "faults", "spec": "read_error:times=6;flip:page=3-40:times=2"}
    {"stage": "latency", "read_us": 150, "write_us": 50, "jitter_us": 80}
    {"stage": "workload", "requests": 300, "rate": 2000,
     "mix": {"single": 6, "batch": 2, "cursor": 2}, "qlog": true,
     "resilience": {"deadline_ms": 1000, "max_attempts": 4}}
    {"stage": "crash", "chars": 4000, "chunks": 2, "after_writes": 30}
    {"stage": "expect", "parity": 200, "scrub": "clean",
     "p99_under": {"single": 50}, "replay": {"tolerance": 0.5},
     "breaker": "closed", "reconcile": true}
    v}

    Stage semantics (stages execute in file order and compose):

    - {e build} — create a persistent index in a scratch directory and
      append [chars] characters of the scenario's seeded synthetic
      sequence, flushing after each of [chunks] even chunks.  The
      sequence is generated once for the whole scenario (build plus
      every crash stage), so the stream is one continuous text.
    - {e faults} — arm a {!Pagestore.Fault_device} from a
      [SPINE_FAULTS]-grammar spec string ({!Pagestore.Fault_spec}).  A
      spec without [seed=] inherits the scenario seed.  An armed
      latency injector is re-wrapped around the new fault hooks.
    - {e latency} — wrap the device in a
      {!Pagestore.Latency_device}: seeded per-op injected delay
      (base + uniform jitter), charged into telemetry, traces and
      per-query profiles, truncated at an armed deadline.
    - {e workload} — drive the engine with a seeded {!Workload} mix
      (open loop when [rate] is present).  With a [resilience] object
      the requests route through a fresh {!Spine.Resilient} wrapper
      (deadline, retry/backoff, circuit breaker) and typed rejections
      become report dispositions.  [seed_offset] (default 1) decouples
      the pattern stream from the fault/latency draws.  [qlog] records
      the run for a later [replay] expectation.
    - {e crash} — kill -9: arm a [Crash] fault [after_writes] device
      writes into appending [chars] more characters, stop at the
      freeze, abandon the handle, reopen, and truncate the oracle to
      the recovered length.  Injection hooks do {e not} survive the
      reopen; re-arm with new [faults]/[latency] stages if wanted.
    - {e expect} — named checks against the current state, in key
      order: [parity] (N seeded probe patterns, engine vs in-memory
      {!Spine.Index} oracle, exact occurrence-list equality),
      [scrub] (flush then {!Spine.Persistent.verify}: zero damaged and
      zero stale pages), [p99_under] (per-op p99 bound in ms from the
      last workload report), [replay] (re-drive the last recorded qlog
      through {!Replay.drive_records} and demand a clean gate),
      [breaker] (the last wrapper's breaker state), [reconcile]
      (resilience counters explain every workload request:
      [calls = completed + timeouts + shed + failures], and the
      report's dispositions agree).

    Every random draw — sequence, faults, latency jitter, workload
    patterns, retry jitter, probe patterns — derives from the one
    scenario seed, so a run is reproducible end to end and a seed
    sweep is a different storm against the same expectations. *)

type check =
  | Parity of int
  | Scrub_clean
  | P99_under of { pu_op : string; pu_bound_ns : int }
  | Replay_gate of { rg_tolerance : float; rg_floor_ns : float }
  | Breaker_is of string
  | Reconcile

type wstage = {
  w_requests : int;
  w_mix : Workload.mix;
  w_rate : float option;
  w_min_len : int;
  w_max_len : int;
  w_batch_size : int;
  w_cursor_steps : int;
  w_miss_fraction : float;
  w_seed_offset : int;
  w_resilience : Spine.Resilient.config option;
      (** [seed = 0] in the parsed config means "inherit the scenario
          seed" (patched at run time). *)
  w_qlog : bool;
}

type bstage = {
  b_chars : int;
  b_chunks : int;
  b_alphabet : Bioseq.Alphabet.t;
  b_frames : int option;
  b_page_size : int option;
}

type cstage = { c_chars : int; c_chunks : int; c_after_writes : int }

type stage =
  | Build of bstage
  | Faults of { f_raw : string; f_spec : Pagestore.Fault_spec.t }
  | Latency of { l_read_ns : int; l_write_ns : int; l_jitter_ns : int }
  | Workload of wstage
  | Crash of cstage
  | Expect of check list

type t = { sc_name : string; sc_seed : int; sc_stages : stage list }

val parse : string -> (t, string) result
(** Parse scenario text; [Error] messages carry the 1-based line. *)

val load : path:string -> (t, string) result

(** {1 Running} *)

type check_result = { c_name : string; c_pass : bool; c_detail : string }

type run_result = {
  r_name : string;
  r_seed : int;
  r_stages : string list;  (** executed stage labels, in order *)
  r_checks : check_result list;
  r_counts : Spine.Resilient.counts option;
      (** the last workload's resilience counters, when it had a
          policy *)
  r_report : Workload.report option;  (** the last workload's report *)
}

val run : ?seed:int -> ?dir:string -> t -> (run_result, string) result
(** Execute the scenario.  [seed] overrides the header seed (the CI
    sweep); [dir] pins the scratch directory (default: a fresh temp
    directory, removed afterwards).  [Error] is a scenario-level
    execution fault — a stage that cannot run at all (workload before
    build, a crash point the workload never reaches, …) — distinct
    from an expectation failure, which lands in [r_checks].  Telemetry
    is force-enabled for the duration and restored. *)

val passed : run_result -> bool
(** Every check passed (vacuously true with no expect stage). *)

val print : run_result -> unit
(** Expectation table plus a resilience-counter line through
    {!Report.Table}. *)

val jsonl : run_result -> string list
(** One summary object, then one object per check. *)
