(* Chaos scenario runner: parse a JSONL stage list, execute the stages
   against a persistent index in a scratch directory, evaluate named
   expectations.  See the .mli for the grammar and semantics. *)

module Json = Bench_gate.Json
module P = Spine.Persistent
module FD = Pagestore.Fault_device

type check =
  | Parity of int
  | Scrub_clean
  | P99_under of { pu_op : string; pu_bound_ns : int }
  | Replay_gate of { rg_tolerance : float; rg_floor_ns : float }
  | Breaker_is of string
  | Reconcile

type wstage = {
  w_requests : int;
  w_mix : Workload.mix;
  w_rate : float option;
  w_min_len : int;
  w_max_len : int;
  w_batch_size : int;
  w_cursor_steps : int;
  w_miss_fraction : float;
  w_seed_offset : int;
  w_resilience : Spine.Resilient.config option;
  w_qlog : bool;
}

type bstage = {
  b_chars : int;
  b_chunks : int;
  b_alphabet : Bioseq.Alphabet.t;
  b_frames : int option;
  b_page_size : int option;
}

type cstage = { c_chars : int; c_chunks : int; c_after_writes : int }

type stage =
  | Build of bstage
  | Faults of { f_raw : string; f_spec : Pagestore.Fault_spec.t }
  | Latency of { l_read_ns : int; l_write_ns : int; l_jitter_ns : int }
  | Workload of wstage
  | Crash of cstage
  | Expect of check list

type t = { sc_name : string; sc_seed : int; sc_stages : stage list }

(* --- parsing --------------------------------------------------------- *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let ji ?default key obj =
  match Json.member key obj with
  | Some (Json.Num f) -> int_of_float f
  | Some _ -> bad "%S must be a number" key
  | None -> (
    match default with
    | Some d -> d
    | None -> bad "missing required key %S" key)

let jfopt key obj =
  match Json.member key obj with
  | Some (Json.Num f) -> Some f
  | Some _ -> bad "%S must be a number" key
  | None -> None

let jstr ?default key obj =
  match Json.member key obj with
  | Some (Json.Str s) -> s
  | Some _ -> bad "%S must be a string" key
  | None -> (
    match default with
    | Some d -> d
    | None -> bad "missing required key %S" key)

let jbool ?(default = false) key obj =
  match Json.member key obj with
  | Some (Json.Bool b) -> b
  | Some _ -> bad "%S must be a boolean" key
  | None -> default

let parse_alphabet name =
  match name with
  | "dna" -> Bioseq.Alphabet.dna
  | "protein" -> Bioseq.Alphabet.protein
  | "byte" -> Bioseq.Alphabet.byte
  | s -> bad "unknown alphabet %S (dna|protein|byte)" s

let parse_build obj =
  Build
    {
      b_chars = ji "chars" obj;
      b_chunks = max 1 (ji ~default:4 "chunks" obj);
      b_alphabet = parse_alphabet (jstr ~default:"dna" "alphabet" obj);
      b_frames =
        (match Json.member "frames" obj with
         | Some (Json.Num f) -> Some (int_of_float f)
         | Some _ -> bad "\"frames\" must be a number"
         | None -> None);
      b_page_size =
        (match Json.member "page_size" obj with
         | Some (Json.Num f) -> Some (int_of_float f)
         | Some _ -> bad "\"page_size\" must be a number"
         | None -> None);
    }

let parse_faults obj =
  let raw = jstr "spec" obj in
  match Pagestore.Fault_spec.parse raw with
  | Ok spec -> Faults { f_raw = raw; f_spec = spec }
  | Error e -> bad "bad fault spec: %s" (Pagestore.Fault_spec.error_to_string e)

let us_to_ns u = u * 1_000

let parse_latency obj =
  Latency
    {
      l_read_ns = us_to_ns (ji ~default:0 "read_us" obj);
      l_write_ns = us_to_ns (ji ~default:0 "write_us" obj);
      l_jitter_ns = us_to_ns (ji ~default:0 "jitter_us" obj);
    }

let parse_resilience obj =
  match Json.member "resilience" obj with
  | None -> None
  | Some (Json.Obj _ as r) ->
    let d = Spine.Resilient.default_config in
    let ms_to_ns m = m * 1_000_000 in
    Some
      {
        Spine.Resilient.deadline_ns =
          (let ms = ji ~default:(-1) "deadline_ms" r in
           if ms = 0 then None
           else if ms > 0 then Some (ms_to_ns ms)
           else d.Spine.Resilient.deadline_ns);
        max_attempts =
          ji ~default:d.Spine.Resilient.max_attempts "max_attempts" r;
        backoff_base_ns =
          (match jfopt "backoff_base_us" r with
           | Some us -> int_of_float (us *. 1e3)
           | None -> d.Spine.Resilient.backoff_base_ns);
        backoff_max_ns =
          (match jfopt "backoff_max_ms" r with
           | Some ms -> int_of_float (ms *. 1e6)
           | None -> d.Spine.Resilient.backoff_max_ns);
        breaker_failures =
          ji ~default:d.Spine.Resilient.breaker_failures "breaker_failures" r;
        breaker_cooldown_ns =
          (match jfopt "breaker_cooldown_ms" r with
           | Some ms -> int_of_float (ms *. 1e6)
           | None -> d.Spine.Resilient.breaker_cooldown_ns);
        breaker_probes =
          ji ~default:d.Spine.Resilient.breaker_probes "breaker_probes" r;
        (* 0 = inherit the scenario seed, patched at run time *)
        seed = ji ~default:0 "seed" r;
      }
  | Some _ -> bad "\"resilience\" must be an object"

let parse_workload obj =
  let d = Workload.default_config in
  let mix =
    match Json.member "mix" obj with
    | None -> d.Workload.mix
    | Some (Json.Obj _ as m) ->
      {
        Workload.single = ji ~default:0 "single" m;
        batch = ji ~default:0 "batch" m;
        cursor = ji ~default:0 "cursor" m;
      }
    | Some _ -> bad "\"mix\" must be an object"
  in
  Workload
    {
      w_requests = ji ~default:200 "requests" obj;
      w_mix = mix;
      w_rate = jfopt "rate" obj;
      w_min_len = ji ~default:d.Workload.min_len "min_len" obj;
      w_max_len = ji ~default:d.Workload.max_len "max_len" obj;
      w_batch_size = ji ~default:d.Workload.batch_size "batch_size" obj;
      w_cursor_steps = ji ~default:d.Workload.cursor_steps "cursor_steps" obj;
      w_miss_fraction =
        (match jfopt "miss_fraction" obj with
         | Some f -> f
         | None -> d.Workload.miss_fraction);
      w_seed_offset = ji ~default:1 "seed_offset" obj;
      w_resilience = parse_resilience obj;
      w_qlog = jbool "qlog" obj;
    }

let parse_crash obj =
  Crash
    {
      c_chars = ji "chars" obj;
      c_chunks = max 1 (ji ~default:2 "chunks" obj);
      c_after_writes = ji "after_writes" obj;
    }

let parse_expect obj =
  let fields = match obj with Json.Obj kvs -> kvs | _ -> [] in
  let checks =
    List.filter_map
      (fun (key, v) ->
        match (key, v) with
        | "stage", _ -> None
        | "parity", Json.Num n -> Some [ Parity (int_of_float n) ]
        | "parity", _ -> bad "\"parity\" must be a probe count"
        | "scrub", Json.Str "clean" -> Some [ Scrub_clean ]
        | "scrub", _ -> bad "\"scrub\" only supports \"clean\""
        | "p99_under", Json.Obj ops ->
          Some
            (List.map
               (fun (op, bound) ->
                 match bound with
                 | Json.Num ms ->
                   P99_under
                     { pu_op = op; pu_bound_ns = int_of_float (ms *. 1e6) }
                 | _ -> bad "p99_under %S must be a bound in ms" op)
               ops)
        | "p99_under", _ -> bad "\"p99_under\" must map op to a ms bound"
        | "replay", Json.Bool true ->
          Some [ Replay_gate { rg_tolerance = 0.5; rg_floor_ns = 1e7 } ]
        | "replay", Json.Obj _ ->
          Some
            [ Replay_gate
                {
                  rg_tolerance =
                    (match jfopt "tolerance" v with
                     | Some f -> f
                     | None -> 0.5);
                  rg_floor_ns =
                    (match jfopt "floor_ms" v with
                     | Some ms -> ms *. 1e6
                     | None -> 1e7);
                } ]
        | "replay", _ -> bad "\"replay\" must be true or an object"
        | "breaker", Json.Str s
          when s = "closed" || s = "open" || s = "half-open" ->
          Some [ Breaker_is s ]
        | "breaker", _ -> bad "\"breaker\" must be closed|open|half-open"
        | "reconcile", Json.Bool true -> Some [ Reconcile ]
        | "reconcile", Json.Bool false -> None
        | "reconcile", _ -> bad "\"reconcile\" must be a boolean"
        | k, _ -> bad "unknown expectation %S" k)
      fields
    |> List.concat
  in
  if checks = [] then bad "expect stage with no checks";
  Expect checks

let parse_stage obj =
  match jstr "stage" obj with
  | "build" -> parse_build obj
  | "faults" -> parse_faults obj
  | "latency" -> parse_latency obj
  | "workload" -> parse_workload obj
  | "crash" -> parse_crash obj
  | "expect" -> parse_expect obj
  | s -> bad "unknown stage %S" s

let parse text =
  let lines = String.split_on_char '\n' text in
  let header = ref None in
  let stages = ref [] in
  try
    List.iteri
      (fun i line ->
        let lineno = i + 1 in
        let trimmed = String.trim line in
        if trimmed <> "" && trimmed.[0] <> '#' then begin
          let obj =
            try Json.parse_exn trimmed with
            | Json.Parse_error e -> bad "line %d: %s" lineno e
          in
          match !header with
          | None ->
            (try
               let name = jstr "scenario" obj in
               (match ji ~default:1 "version" obj with
                | 1 -> ()
                | v -> bad "unsupported version %d" v);
               header := Some (name, ji ~default:42 "seed" obj)
             with Bad m -> bad "line %d: %s" lineno m)
          | Some _ ->
            (try stages := parse_stage obj :: !stages
             with Bad m -> bad "line %d: %s" lineno m)
        end)
      lines;
    match !header with
    | None -> Error "empty scenario: no header line"
    | Some (name, seed) ->
      Ok { sc_name = name; sc_seed = seed; sc_stages = List.rev !stages }
  with Bad m -> Error m

let load ~path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> parse text
  | exception Sys_error e -> Error e

(* --- running --------------------------------------------------------- *)

type check_result = { c_name : string; c_pass : bool; c_detail : string }

type run_result = {
  r_name : string;
  r_seed : int;
  r_stages : string list;
  r_checks : check_result list;
  r_counts : Spine.Resilient.counts option;
  r_report : Workload.report option;
}

(* execution faults — a stage that cannot run at all *)
exception Stuck of string

let stuck fmt = Printf.ksprintf (fun s -> raise (Stuck s)) fmt

type st = {
  seed : int;
  dir : string;
  mutable p : P.t option;
  mutable master : Bioseq.Packed_seq.t option;  (* the full seeded stream *)
  mutable pos : int;           (* characters appended so far *)
  mutable oracle_len : int;    (* committed/recovered prefix length *)
  mutable frames : int option;
  mutable fault : FD.t option;
  mutable latency : Pagestore.Latency_device.t option;
  mutable resilient : Spine.Resilient.t option;
  mutable report : Workload.report option;
  mutable qlog_records : Qlog.record list;
  mutable oracle : (int * Spine.Index.t) option;  (* cached by length *)
  mutable wl_seq : int;        (* workload stage counter (qlog names) *)
}

let persistent st =
  match st.p with Some p -> p | None -> stuck "stage before build"

let master st =
  match st.master with Some s -> s | None -> stuck "stage before build"

let engine st = P.engine (persistent st)

let append_chunks st ~chars ~chunks ~frozen =
  let p = persistent st and seq = master st in
  let chunk = chars / chunks in
  for c = 1 to chunks do
    let n = if c = chunks then chars - (chunk * (chunks - 1)) else chunk in
    for _ = 1 to n do
      if frozen () then raise Exit;
      P.append p (Bioseq.Packed_seq.get seq st.pos);
      st.pos <- st.pos + 1
    done;
    P.flush p;
    st.oracle_len <- st.pos
  done

let run_build st b =
  if st.p <> None then stuck "duplicate build stage";
  let path = Filename.concat st.dir "scenario.spine" in
  let p =
    P.create ?frames:b.b_frames ?page_size:b.b_page_size ~path b.b_alphabet
  in
  st.p <- Some p;
  st.frames <- b.b_frames;
  st.pos <- 0;
  st.oracle_len <- 0;
  (match st.master with
   | Some _ -> ()
   | None -> stuck "internal: master sequence not generated");
  append_chunks st ~chars:b.b_chars ~chunks:b.b_chunks ~frozen:(fun () ->
      false)

(* Re-wrap an armed latency injector around freshly attached fault
   hooks: faults sit closest to the device, latency outermost. *)
let recompose_hooks st f =
  let dev = P.device (persistent st) in
  (match st.latency with
   | Some l -> Pagestore.Latency_device.detach l
   | None -> ());
  f dev;
  match st.latency with
  | Some l -> Pagestore.Latency_device.attach l dev
  | None -> ()

let run_faults st (spec : Pagestore.Fault_spec.t) =
  let spec =
    if spec.Pagestore.Fault_spec.seed = None then
      { spec with Pagestore.Fault_spec.seed = Some st.seed }
    else spec
  in
  let fd = FD.of_spec spec in
  recompose_hooks st (fun dev -> FD.attach fd dev);
  st.fault <- Some fd

let run_latency st ~read_ns ~write_ns ~jitter_ns =
  let dev = P.device (persistent st) in
  (match st.latency with
   | Some old -> Pagestore.Latency_device.detach old
   | None -> ());
  let l =
    Pagestore.Latency_device.create
      { Pagestore.Latency_device.read_ns; write_ns; jitter_ns; seed = st.seed }
  in
  Pagestore.Latency_device.attach l dev;
  st.latency <- Some l

let prefix_seq st =
  let seq = master st in
  let alphabet = Bioseq.Packed_seq.alphabet seq in
  Bioseq.Packed_seq.of_codes alphabet
    (Array.init st.oracle_len (fun k -> Bioseq.Packed_seq.get seq k))

let oracle_index st =
  match st.oracle with
  | Some (len, idx) when len = st.oracle_len -> idx
  | _ ->
    let idx = Spine.Index.of_seq (prefix_seq st) in
    st.oracle <- Some (st.oracle_len, idx);
    idx

let run_workload st (w : wstage) =
  let e = engine st in
  if st.oracle_len < w.w_max_len + 1 then
    stuck "workload: sequence shorter than max pattern length";
  let config =
    {
      Workload.default_config with
      Workload.requests = w.w_requests;
      seed = st.seed + w.w_seed_offset;
      min_len = w.w_min_len;
      max_len = w.w_max_len;
      batch_size = w.w_batch_size;
      cursor_steps = w.w_cursor_steps;
      miss_fraction = w.w_miss_fraction;
      mix = w.w_mix;
      rate = w.w_rate;
      tick_every = 0;
    }
  in
  let requests = Workload.plan ~config (prefix_seq st) in
  let resilient =
    match w.w_resilience with
    | None -> None
    | Some cfg ->
      let cfg =
        if cfg.Spine.Resilient.seed = 0 then
          { cfg with Spine.Resilient.seed = st.seed }
        else cfg
      in
      Some (Spine.Resilient.create ~config:cfg e)
  in
  st.resilient <- resilient;
  st.wl_seq <- st.wl_seq + 1;
  let qlog_path =
    if w.w_qlog then
      Some (Filename.concat st.dir (Printf.sprintf "qlog-%d.jsonl" st.wl_seq))
    else None
  in
  Qlog.set_path qlog_path;
  let report, _profiles =
    Fun.protect
      ~finally:(fun () -> Qlog.set_path None)
      (fun () -> Workload.drive ?resilient ~config e requests)
  in
  st.report <- Some report;
  match qlog_path with
  | None -> ()
  | Some path -> (
    match Qlog.read_file ~path with
    | Ok records -> st.qlog_records <- records
    | Error e -> stuck "workload: unreadable qlog: %s" e)

let run_crash st c =
  let p = persistent st in
  let fd = FD.create ~seed:st.seed [ FD.arm ~after:c.c_after_writes FD.Crash ] in
  recompose_hooks st (fun dev -> FD.attach fd dev);
  st.latency <- None;
  st.fault <- None;
  (* Once the image freezes the simulated process is dead: stop at the
     first sign and abandon the handle, exactly what kill -9 leaves. *)
  (match append_chunks st ~chars:c.c_chars ~chunks:c.c_chunks
           ~frozen:(fun () -> FD.frozen fd)
   with
   | () -> ()
   | exception Exit -> ()
   | exception _ when FD.frozen fd -> ());
  if not (FD.frozen fd) then
    stuck "crash: device never froze (after_writes=%d beyond the %d appends)"
      c.c_after_writes c.c_chars;
  Pagestore.Device.close (P.device p);
  let path = P.path p in
  let reopened =
    match P.open_ ?frames:st.frames ~path () with
    | p -> p
    | exception Spine_error.Error e ->
      stuck "crash: reopen failed: %s" (Spine_error.to_string e)
  in
  st.p <- Some reopened;
  st.oracle_len <- P.length reopened

(* --- expectations ---------------------------------------------------- *)

let check_parity st n =
  let e = engine st in
  let oracle = oracle_index st in
  let seq = master st in
  let rng = Bioseq.Rng.create (st.seed + 9001) in
  let mismatches = ref 0 and first = ref "" in
  (try
     for k = 1 to n do
       let len = 3 + Bioseq.Rng.int rng 10 in
       let pos = Bioseq.Rng.int rng (max 1 (st.oracle_len - len)) in
       let pat =
         Array.init len (fun j -> Bioseq.Packed_seq.get seq (pos + j))
       in
       let want = Spine.Index.occurrences oracle pat in
       let got = Spine.Engine.occurrences e pat in
       if want <> got then begin
         incr mismatches;
         if !first = "" then
           first :=
             Printf.sprintf "probe %d at %d len %d: %d vs %d occurrences" k
               pos len (List.length want) (List.length got)
       end
     done
   with Spine_error.Error err ->
     incr mismatches;
     first := Printf.sprintf "typed failure: %s" (Spine_error.to_string err));
  if !mismatches = 0 then
    {
      c_name = "parity";
      c_pass = true;
      c_detail = Printf.sprintf "%d probes agree with the oracle" n;
    }
  else
    {
      c_name = "parity";
      c_pass = false;
      c_detail = Printf.sprintf "%d/%d probes diverge (%s)" !mismatches n !first;
    }

let check_scrub st =
  let p = persistent st in
  P.flush p;
  let r = P.verify p in
  let pass = r.P.damaged_pages = 0 && r.P.stale_pages = 0 in
  {
    c_name = "scrub-clean";
    c_pass = pass;
    c_detail =
      Printf.sprintf "%d damaged, %d stale page(s)" r.P.damaged_pages
        r.P.stale_pages;
  }

let check_p99 st ~op ~bound_ns =
  let name = Printf.sprintf "p99(%s)" op in
  match st.report with
  | None -> { c_name = name; c_pass = false; c_detail = "no workload ran" }
  | Some r -> (
    match
      List.find_opt (fun (o : Workload.op_report) -> o.Workload.op = op) r.ops
    with
    | None | Some { Workload.count = 0; _ } ->
      {
        c_name = name;
        c_pass = false;
        c_detail = Printf.sprintf "no completed %S requests" op;
      }
    | Some o ->
      let pass = o.Workload.p99_ns <= float_of_int bound_ns in
      {
        c_name = name;
        c_pass = pass;
        c_detail =
          Printf.sprintf "p99 %.2f ms %s bound %.2f ms"
            (o.Workload.p99_ns /. 1e6)
            (if pass then "within" else "over")
            (float_of_int bound_ns /. 1e6);
      })

let check_replay st ~tolerance ~floor_ns =
  let name = "replay-gate" in
  match st.qlog_records with
  | [] ->
    { c_name = name; c_pass = false; c_detail = "no qlog recorded (qlog: true)" }
  | records -> (
    match
      Replay.drive_records ~closed_loop:true ~tolerance
        ~latency_floor_ns:floor_ns ~engine:(engine st) records
    with
    | Error e ->
      { c_name = name; c_pass = false; c_detail = "malformed log: " ^ e }
    | Ok outcome ->
      let comparisons = outcome.Replay.rp_comparisons in
      (match Bench_gate.failures comparisons with
       | [] ->
         {
           c_name = name;
           c_pass = true;
           c_detail =
             Printf.sprintf "%d record(s), %d comparison(s) clean"
               outcome.Replay.rp_requests (List.length comparisons);
         }
       | f :: _ as fs ->
         {
           c_name = name;
           c_pass = false;
           c_detail =
             Printf.sprintf "%d regression(s), first %s/%s: %s"
               (List.length fs) f.Bench_gate.c_group f.Bench_gate.c_name
               (Bench_gate.verdict_string f.Bench_gate.c_verdict);
         }))

let check_breaker st expected =
  let name = Printf.sprintf "breaker=%s" expected in
  match st.resilient with
  | None ->
    { c_name = name; c_pass = false; c_detail = "no resilient workload ran" }
  | Some r ->
    let got = Spine.Resilient.state_name (Spine.Resilient.breaker_state r) in
    {
      c_name = name;
      c_pass = got = expected;
      c_detail = Printf.sprintf "breaker is %s" got;
    }

let check_reconcile st =
  let name = "resilience-reconcile" in
  match (st.resilient, st.report) with
  | None, _ | _, None ->
    { c_name = name; c_pass = false; c_detail = "no resilient workload ran" }
  | Some r, Some report ->
    let c = Spine.Resilient.counts r in
    let sum f =
      List.fold_left (fun acc o -> acc + f o) 0 report.Workload.ops
    in
    let completed = sum (fun (o : Workload.op_report) -> o.Workload.count) in
    let timeouts = sum (fun o -> o.Workload.timeouts) in
    let shed = sum (fun o -> o.Workload.shed) in
    let failed = sum (fun o -> o.Workload.failed) in
    let internal =
      c.Spine.Resilient.calls
      = c.Spine.Resilient.completed + c.Spine.Resilient.timeouts
        + c.Spine.Resilient.shed + c.Spine.Resilient.failures
    in
    let agrees =
      c.Spine.Resilient.completed = completed
      && c.Spine.Resilient.timeouts = timeouts
      && c.Spine.Resilient.shed = shed
      && c.Spine.Resilient.failures = failed
      && c.Spine.Resilient.calls = report.Workload.total_requests
    in
    {
      c_name = name;
      c_pass = internal && agrees;
      c_detail =
        Printf.sprintf
          "calls=%d completed=%d timeouts=%d shed=%d failures=%d vs report \
           %d/%d/%d/%d of %d"
          c.Spine.Resilient.calls c.Spine.Resilient.completed
          c.Spine.Resilient.timeouts c.Spine.Resilient.shed
          c.Spine.Resilient.failures completed timeouts shed failed
          report.Workload.total_requests;
    }

let run_check st = function
  | Parity n -> check_parity st n
  | Scrub_clean -> check_scrub st
  | P99_under { pu_op; pu_bound_ns } ->
    check_p99 st ~op:pu_op ~bound_ns:pu_bound_ns
  | Replay_gate { rg_tolerance; rg_floor_ns } ->
    check_replay st ~tolerance:rg_tolerance ~floor_ns:rg_floor_ns
  | Breaker_is s -> check_breaker st s
  | Reconcile -> check_reconcile st

(* --- scratch directory ----------------------------------------------- *)

let make_temp_dir () =
  let f = Filename.temp_file "spine-scenario" "" in
  Sys.remove f;
  Unix.mkdir f 0o700;
  f

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error _ -> ()

let stage_label = function
  | Build b -> Printf.sprintf "build(%d)" b.b_chars
  | Faults f -> Printf.sprintf "faults(%s)" f.f_raw
  | Latency _ -> "latency"
  | Workload w -> Printf.sprintf "workload(%d)" w.w_requests
  | Crash c -> Printf.sprintf "crash(@%d)" c.c_after_writes
  | Expect cs -> Printf.sprintf "expect(%d)" (List.length cs)

let total_chars stages =
  List.fold_left
    (fun acc -> function
      | Build b -> acc + b.b_chars
      | Crash c -> acc + c.c_chars
      | _ -> acc)
    0 stages

let build_alphabet stages =
  List.find_map
    (function Build b -> Some b.b_alphabet | _ -> None)
    stages

let run ?seed ?dir t =
  let seed = match seed with Some s -> s | None -> t.sc_seed in
  let own_dir = dir = None in
  let dir =
    match dir with
    | Some d ->
      if not (Sys.file_exists d) then Unix.mkdir d 0o700;
      d
    | None -> make_temp_dir ()
  in
  let st =
    {
      seed;
      dir;
      p = None;
      master = None;
      pos = 0;
      oracle_len = 0;
      frames = None;
      fault = None;
      latency = None;
      resilient = None;
      report = None;
      qlog_records = [];
      oracle = None;
      wl_seq = 0;
    }
  in
  (match build_alphabet t.sc_stages with
   | Some alphabet ->
     st.master <-
       Some
         (Bioseq.Synthetic.genomic alphabet (Bioseq.Rng.create seed)
            (max 1 (total_chars t.sc_stages)))
   | None -> ());
  let prev_telemetry = Telemetry.is_enabled () in
  Telemetry.set_enabled true;
  let cleanup () =
    Telemetry.set_enabled prev_telemetry;
    (match st.p with
     | Some p -> (
       (* best-effort: the store may already be closed (crash stages
          abandon the device) or the file gone with the temp dir *)
       try P.close p with
       | Spine_error.Error _ | Unix.Unix_error _ | Sys_error _ -> ())
     | None -> ());
    if own_dir then rm_rf dir
  in
  Fun.protect ~finally:cleanup (fun () ->
      let checks = ref [] and ran = ref [] in
      match
        List.iter
          (fun stage ->
            ran := stage_label stage :: !ran;
            match stage with
            | Build b -> run_build st b
            | Faults f -> run_faults st f.f_spec
            | Latency l ->
              run_latency st ~read_ns:l.l_read_ns ~write_ns:l.l_write_ns
                ~jitter_ns:l.l_jitter_ns
            | Workload w -> run_workload st w
            | Crash c -> run_crash st c
            | Expect cs ->
              List.iter (fun c -> checks := run_check st c :: !checks) cs)
          t.sc_stages
      with
      | () ->
        Ok
          {
            r_name = t.sc_name;
            r_seed = seed;
            r_stages = List.rev !ran;
            r_checks = List.rev !checks;
            r_counts = Option.map Spine.Resilient.counts st.resilient;
            r_report = st.report;
          }
      | exception Stuck m -> Error m
      | exception Spine_error.Error e ->
        Error (Printf.sprintf "typed failure: %s" (Spine_error.to_string e)))

let passed r = List.for_all (fun c -> c.c_pass) r.r_checks

(* --- rendering ------------------------------------------------------- *)

let print r =
  let rows =
    List.map
      (fun c ->
        [ c.c_name; (if c.c_pass then "pass" else "FAIL"); c.c_detail ])
      r.r_checks
  in
  let rows =
    if rows = [] then [ [ "(no expectations)"; "-"; "" ] ] else rows
  in
  Report.Table.print
    ~title:(Printf.sprintf "scenario %s (seed %d)" r.r_name r.r_seed)
    ~note:("stages: " ^ String.concat " -> " r.r_stages)
    ~headers:[ "expectation"; "verdict"; "detail" ]
    rows;
  match r.r_counts with
  | None -> ()
  | Some c ->
    Report.Say.printf
      "resilience: calls=%d completed=%d retries=%d timeouts=%d shed=%d \
       failures=%d trips=%d recoveries=%d\n"
      c.Spine.Resilient.calls c.Spine.Resilient.completed
      c.Spine.Resilient.retries c.Spine.Resilient.timeouts
      c.Spine.Resilient.shed c.Spine.Resilient.failures
      c.Spine.Resilient.breaker_trips c.Spine.Resilient.recoveries

let jsonl r =
  let failed = List.filter (fun c -> not c.c_pass) r.r_checks in
  let summary =
    Printf.sprintf
      "{\"scenario\":%S,\"seed\":%d,\"stages\":[%s],\"checks\":%d,\
       \"failed\":%d,\"pass\":%b%s}"
      r.r_name r.r_seed
      (String.concat "," (List.map (Printf.sprintf "%S") r.r_stages))
      (List.length r.r_checks) (List.length failed) (passed r)
      (match r.r_counts with
       | None -> ""
       | Some c ->
         Printf.sprintf
           ",\"resilience\":{\"calls\":%d,\"completed\":%d,\"retries\":%d,\
            \"timeouts\":%d,\"shed\":%d,\"failures\":%d,\"breaker_trips\":%d,\
            \"recoveries\":%d}"
           c.Spine.Resilient.calls c.Spine.Resilient.completed
           c.Spine.Resilient.retries c.Spine.Resilient.timeouts
           c.Spine.Resilient.shed c.Spine.Resilient.failures
           c.Spine.Resilient.breaker_trips c.Spine.Resilient.recoveries)
  in
  let check_line c =
    Printf.sprintf
      "{\"scenario\":%S,\"seed\":%d,\"check\":%S,\"pass\":%b,\"detail\":%S}"
      r.r_name r.r_seed c.c_name c.c_pass c.c_detail
  in
  summary :: List.map check_line r.r_checks
