module S = Compact_store
module B = Builder.Make (S)
module A = Engine.Api (S)

type t = S.t
type trace = S.trace

let caps_of t =
  { Engine.backend = "compact"; persistent = false; paged = false;
    traced = Option.is_some t.S.trace }

let engine t =
  Engine.pack ~caps:(caps_of t) (module S : Store_sig.S with type t = t) t

(* --- construction --- *)

let create ?capacity ?trace alphabet = S.create ?capacity ?trace alphabet
let append = B.append
let append_string = B.append_string

let of_seq ?trace seq =
  let t =
    create ~capacity:(max 16 (Bioseq.Packed_seq.length seq)) ?trace
      (Bioseq.Packed_seq.alphabet seq)
  in
  B.append_seq t seq;
  t

let of_string ?trace alphabet s =
  let t = create ~capacity:(max 16 (String.length s)) ?trace alphabet in
  append_string t s;
  t

(* --- the shared query surface, re-exported from the engine API --- *)

let alphabet = S.alphabet
let length = S.length
let node_count = A.node_count

let contains = A.contains
let contains_codes = A.contains_codes
let find_first = A.find_first
let first_occurrence = A.first_occurrence
let occurrences = A.occurrences
let end_nodes = A.end_nodes
let occurrences_batch = A.occurrences_batch
let occurrences_many = A.occurrences_many

type match_stats = Matcher.stats = {
  nodes_checked : int;
  suffixes_checked : int;
}

type mmatch = Matcher.mmatch = {
  query_end : int;
  length : int;
  data_ends : int list;
}

let matching_statistics = A.matching_statistics
let maximal_matches = A.maximal_matches

type label_maxima = Stats.label_maxima = {
  max_pt : int;
  max_lel : int;
  max_prt : int;
}

let label_maxima = A.label_maxima
let rib_distribution = A.rib_distribution
let link_histogram = A.link_histogram

module Cursor = A.C

(* --- Section 5 space accounting --- *)

type space = S.space = {
  lt_bytes : int;
  rt_bytes : int;
  rt_slack_bytes : int;
  overflow_bytes : int;
  string_bytes : int;
  migrations : int;
}

let space = S.space
let bytes_per_char = S.bytes_per_char
let live_rows = S.live_rows
let row_bytes = S.row_bytes
let overflow_count = S.overflow_count
let store t = t
