(** File-backed persistent SPINE.

    The same Section 5 Link-Table/Rib-Table layout as {!Compact}, but
    the byte tables live in pages of a real file behind a bounded
    buffer pool: the index never needs to be fully resident, survives
    process restarts, and reopens without reconstruction — the
    deployment the paper's disk-resident experiments argue SPINE is
    suited to ("due to the simple linearity of SPINE's structure, it is
    easy to develop efficient buffering policies").

    File layout (page regions, sparse): the Link Table, the four Rib
    Tables, the vertebra character codes, and a metadata blob
    (freelists, side tables, counters) written by {!close}/{!flush}.

    Construction remains online: {!append} extends the index and the
    file together.  All query operations are the shared SPINE
    algorithms instantiated over the paged storage, so every page they
    touch goes through the pool. *)

type t

val create :
  ?frames:int -> ?page_size:int -> ?pin_top_lt_pages:int ->
  path:string -> Bioseq.Alphabet.t -> t
(** Start a new index in file [path] (truncating any previous content).
    [frames] bounds the buffer pool (default 256 pages of
    [page_size] = 4096 bytes); [pin_top_lt_pages] applies the paper's
    keep-the-top-of-the-LT policy. *)

val open_ : ?frames:int -> ?pin_top_lt_pages:int -> path:string -> unit -> t
(** Reopen a previously {!close}d index.
    @raise Failure on missing/corrupt metadata. *)

val close : t -> unit
(** Flush everything (pages + metadata) and release the file. The [t]
    must not be used afterwards. *)

val flush : t -> unit
(** Durability point without closing: after [flush], {!open_} on the
    same path would see the current state. *)

val path : t -> string
val alphabet : t -> Bioseq.Alphabet.t
val length : t -> int

(** {2 Construction} *)

val append : t -> int -> unit
val append_string : t -> string -> unit
val append_seq : t -> Bioseq.Packed_seq.t -> unit

(** {2 Engine} *)

val caps : Engine.caps
(** Backend "persistent": [persistent] and [paged] set. *)

val engine : t -> Engine.t
(** Pack as a capability-aware engine.  The engine carries the
    use-after-close guard: every query through it re-checks that the
    index is still open. *)

val cursor : t -> Engine.cursor
(** An incremental valid-path cursor over the paged storage (guarded
    like {!engine}). *)

(** {2 Queries} — the shared {!Engine.Api} over the paged storage. *)

val contains : t -> string -> bool
val contains_codes : t -> int array -> bool
val find_first : t -> int array -> int option
val first_occurrence : t -> int array -> int option
val occurrences : t -> int array -> int list
val end_nodes : t -> int array -> int list

val occurrences_batch : t -> (int * int) array -> Xutil.Int_vec.t array
(** The raw deferred-scan machinery: given [(first-occurrence end node,
    length)] pairs, resolve every occurrence of all of them in one
    sequential backbone pass — one run of page faults instead of one
    per pattern. *)

val occurrences_many : t -> int array list -> int list array
(** Dictionary search with ONE shared backbone scan; see
    {!Index.occurrences_many}. *)

val matching_statistics :
  t -> Bioseq.Packed_seq.t -> int array * Engine.match_stats

val maximal_matches :
  t -> threshold:int -> Bioseq.Packed_seq.t ->
  (int * int * int list) list * Engine.match_stats
(** [(query_end, length, data_ends)] triples. *)

(** {2 Statistics and I/O} *)

val bytes_per_char : t -> float
val rib_distribution : t -> int array

val device : t -> Pagestore.Device.t
val pool : t -> Pagestore.Buffer_pool.t
