(** File-backed persistent SPINE.

    The same Section 5 Link-Table/Rib-Table layout as {!Compact}, but
    the byte tables live in pages of a real file behind a bounded
    buffer pool: the index never needs to be fully resident, survives
    process restarts, and reopens without reconstruction — the
    deployment the paper's disk-resident experiments argue SPINE is
    suited to ("due to the simple linearity of SPINE's structure, it is
    easy to develop efficient buffering policies").

    File layout (page regions, sparse): a metadata area (two shadow
    slots and an epoch-declaration page), then the Link Table, the four
    Rib Tables, the vertebra character codes and the preimage journal.

    {2 Integrity and crash consistency}

    Every page carries an epoch-stamped CRC-32C trailer (see
    {!Pagestore.Device}); reading a damaged or torn page raises a typed
    {!Spine_error.Error} instead of decoding garbage.  Metadata is
    double-buffered: generation [g] goes to shadow slot [g mod 2] under
    its own checksum, so {!flush}'s commit sequence (data pages → new
    metadata generation → epoch ceiling bump) leaves either the old or
    the new state fully intact across a crash at any point.  Data pages
    are overwritten in place, so committed pages are additionally
    protected by a {e preimage journal}: the first post-commit
    overwrite of a committed page (a buffer-pool eviction of a dirty
    tail page, a rib-row mutation, the next flush itself) copies the
    page's exact physical slot into the journal region first, and
    {!open_} rolls those preimages back before recovery.  {!open_}
    picks the newest valid generation, falls back to the other slot
    when the newest write was torn, restores the journaled preimages,
    and restores the epoch ceiling so any remaining page debris from a
    crashed session is detected lazily as [Corrupt] rather than
    returned as phantom data.  {!verify}/{!scrub} walk the file and
    report per-region damage.

    Construction remains online: {!append} extends the index and the
    file together.  All query operations are the shared SPINE
    algorithms instantiated over the paged storage, so every page they
    touch goes through the pool.

    Setting the [SPINE_FAULTS] environment variable arms a
    deterministic {!Pagestore.Fault_device} plan on the backing device
    of every index this module creates or opens. *)

type t

val create :
  ?frames:int -> ?page_size:int -> ?pin_top_lt_pages:int ->
  path:string -> Bioseq.Alphabet.t -> t
(** Start a new index in file [path] (truncating any previous content).
    [frames] bounds the buffer pool (default 256 pages of
    [page_size] = 4096 bytes); [pin_top_lt_pages] applies the paper's
    keep-the-top-of-the-LT policy. *)

val open_ : ?frames:int -> ?pin_top_lt_pages:int -> path:string -> unit -> t
(** Reopen a previously {!close}d (or crashed) index: recover the
    newest valid metadata generation.
    @raise Spine_error.Error ([Corrupt]) when neither shadow slot holds
    valid metadata, or recovery reads crash debris; ([Io_failed]) when
    the file is missing or unreadable. *)

val close : t -> unit
(** Flush everything (pages + metadata, marked as a clean shutdown) and
    release the file. The [t] must not be used afterwards. *)

val flush : t -> unit
(** Durability point without closing: commit the data pages and a new
    metadata generation, and reset the preimage-journal window.  After
    [flush], {!open_} on the same path recovers exactly this state even
    if the process dies without {!close} — later writes that land on
    committed pages are journaled first and rolled back on reopen.
    The journal holds 2^17 preimages per commit window; a workload that
    overwrites more distinct committed pages (512 MB) between flushes
    gets a typed [Io_failed] telling it to flush, never a silently
    unprotected overwrite. *)

val path : t -> string
val alphabet : t -> Bioseq.Alphabet.t
val length : t -> int

val generation : t -> int
(** Metadata generation last committed or recovered (0 for a fresh,
    never-flushed index). *)

(** {2 Construction} *)

val append : t -> int -> unit
val append_string : t -> string -> unit
val append_seq : t -> Bioseq.Packed_seq.t -> unit

(** {2 Engine} *)

val caps : Engine.caps
(** Backend "persistent": [persistent] and [paged] set. *)

val engine : t -> Engine.t
(** Pack as a capability-aware engine.  The engine carries the
    use-after-close guard: every query through it re-checks that the
    index is still open. *)

val cursor : t -> Engine.cursor
(** An incremental valid-path cursor over the paged storage (guarded
    like {!engine}). *)

(** {2 Queries} — the shared {!Engine.Api} over the paged storage. *)

val contains : t -> string -> bool
val contains_codes : t -> int array -> bool
val find_first : t -> int array -> int option
val first_occurrence : t -> int array -> int option
val occurrences : t -> int array -> int list
val end_nodes : t -> int array -> int list

val occurrences_batch : t -> (int * int) array -> Xutil.Int_vec.t array
(** The raw deferred-scan machinery: given [(first-occurrence end node,
    length)] pairs, resolve every occurrence of all of them in one
    sequential backbone pass — one run of page faults instead of one
    per pattern. *)

val occurrences_many : t -> int array list -> int list array
(** Dictionary search with ONE shared backbone scan; see
    {!Index.occurrences_many}. *)

val matching_statistics :
  t -> Bioseq.Packed_seq.t -> int array * Engine.match_stats

val maximal_matches :
  t -> threshold:int -> Bioseq.Packed_seq.t ->
  (int * int * int list) list * Engine.match_stats
(** [(query_end, length, data_ends)] triples. *)

(** {2 Statistics and I/O} *)

val bytes_per_char : t -> float
val rib_distribution : t -> int array

val sequence : t -> Bioseq.Packed_seq.t
(** The in-memory mirror of the indexed character codes (what scrub's
    deep check rebuilds an oracle from). *)

val device : t -> Pagestore.Device.t
val pool : t -> Pagestore.Buffer_pool.t

(** {2 Scrub: integrity walk and damage report} *)

type slot_state =
  | Slot_valid of { generation : int; commit_epoch : int; clean : bool }
  | Slot_invalid of string  (** why the slot cannot be recovered from *)

type region_report = {
  region : string;   (** "meta/slot-a", "lt", "rt0".."rt3", "seq", … *)
  scanned : int;
  ok : int;
  unwritten : int;
  damaged : (int * string) list;  (** page id, diagnosis *)
  stale : (int * int) list;
      (** page id, epoch beyond the committed ceiling — debris from a
          crashed session *)
}

type report = {
  report_path : string;
  report_generation : int;   (** -1 when no metadata was recoverable *)
  report_commit_epoch : int;
  report_clean : bool;       (** last commit was a clean {!close} *)
  slots : (int * slot_state) list;
  regions : region_report list;
  damaged_pages : int;
  stale_pages : int;
}

val verify : t -> report
(** Walk every written page of the open index's file and classify it
    (checksum, epoch).  Read-only and advisory: it reflects the
    on-disk image, so {!flush} first for a post-commit view. *)

val scrub : ?page_size:int -> path:string -> unit -> report
(** Offline {!verify}: open the file read-only (no pool, no recovery),
    validate both metadata slots, walk every region.  Never raises on
    damage — damage is the report's content.
    @raise Spine_error.Error ([Io_failed]) when the file is missing. *)
