module Q = Search.Make (Fast_store)
module M = Matcher.Make (Fast_store)

type t = {
  idx : Index.t;
  mutable v : int;      (* termination node of the current match *)
  mutable len : int;
}

let create idx = { idx; v = 0; len = 0 }

let reset t =
  t.v <- 0;
  t.len <- 0

let advance t code =
  let nxt = Q.step (Index.store t.idx) t.v t.len code in
  if nxt < 0 then false
  else begin
    t.v <- nxt;
    t.len <- t.len + 1;
    true
  end

let advance_char t ch =
  match Bioseq.Alphabet.encode_opt (Index.alphabet t.idx) ch with
  | None -> false
  | Some code -> advance t code

let drop_front t =
  if t.len = 0 then invalid_arg "Cursor.drop_front: empty match";
  let s = Index.store t.idx in
  t.len <- t.len - 1;
  if t.len = 0 then t.v <- 0
  else begin
    (* the k-suffix terminates at the first chain node whose LEL is
       below k *)
    while t.v <> 0 && t.len <= Fast_store.link_lel s t.v do
      Telemetry.incr Search.c_link_hops;
      let dest = Fast_store.link_dest s t.v in
      if Trace.on () then Search.trace_step "step.link" ~node:t.v ~dest;
      t.v <- dest
    done
  end

let longest_extension t code =
  (* reuse the matcher's consume step on a borrowed state *)
  let st =
    { M.t = Index.store t.idx; v = t.v; len = t.len; nodes = 0; suffixes = 0 }
  in
  M.consume st code;
  t.v <- st.M.v;
  t.len <- st.M.len

let length t = t.len
let node t = t.v

let first_occurrence t =
  if t.len = 0 then None else Some (t.v - t.len)

let occurrences t =
  if t.len = 0 then []
  else begin
    let buffers =
      Q.occurrences_batch (Index.store t.idx) [| (t.v, t.len) |]
    in
    Xutil.Int_vec.fold buffers.(0) ~init:[] ~f:(fun acc e -> (e - t.len) :: acc)
    |> List.rev
  end
