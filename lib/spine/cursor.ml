module type S = sig
  type store
  type t

  val create : store -> t
  val reset : t -> unit
  val advance : t -> int -> bool
  val advance_char : t -> char -> bool
  val advance_pattern : t -> Bioseq.Packed_seq.Pattern.t -> int
  val drop_front : t -> unit
  val longest_extension : t -> int -> unit
  val length : t -> int
  val node : t -> int
  val first_occurrence : t -> int option
  val occurrences : t -> int list
end

module Make (St : Store_sig.S) = struct
  module Q = Search.Make (St)
  module M = Matcher.Make (St)

  type store = St.t

  type t = {
    store : St.t;
    mutable v : int;      (* termination node of the current match *)
    mutable len : int;
  }

  let create store = { store; v = 0; len = 0 }

  let reset t =
    t.v <- 0;
    t.len <- 0

  let advance t code =
    let nxt = Q.step t.store t.v t.len code in
    if nxt < 0 then false
    else begin
      t.v <- nxt;
      t.len <- t.len + 1;
      true
    end

  let advance_char t ch =
    match Bioseq.Alphabet.encode_opt (St.alphabet t.store) ch with
    | None -> false
    | Some code -> advance t code

  (* Word-at-a-time advance: extend the current match by as many of the
     pattern's codes as form valid-path steps, comparing vertebra runs
     whole words at a time.  Returns the number of codes consumed
     (short of the pattern length when the walk gets stuck). *)
  let advance_pattern t p =
    let node, consumed = Q.extend t.store ~node:t.v ~pl:t.len p ~pos:0 in
    t.v <- node;
    t.len <- t.len + consumed;
    consumed

  let drop_front t =
    if t.len = 0 then invalid_arg "Cursor.drop_front: empty match";
    t.len <- t.len - 1;
    if t.len = 0 then t.v <- 0
    else
      (* the k-suffix terminates at the first chain node whose LEL is
         below k *)
      while t.v <> 0 && t.len <= St.link_lel t.store t.v do
        Telemetry.incr Search.c_link_hops;
        Profile.step_link ();
        let dest = St.link_dest t.store t.v in
        if Trace.on () then Search.trace_step "step.link" ~node:t.v ~dest;
        t.v <- dest
      done

  let longest_extension t code =
    (* reuse the matcher's consume step on a resumed state *)
    let st = M.resume t.store ~node:t.v ~len:t.len in
    M.consume st code;
    t.v <- M.node_of st;
    t.len <- M.len_of st

  let length t = t.len
  let node t = t.v

  let first_occurrence t =
    if t.len = 0 then None else Some (t.v - t.len)

  let occurrences t =
    if t.len = 0 then []
    else begin
      let buffers = Q.occurrences_batch t.store [| (t.v, t.len) |] in
      Xutil.Int_vec.fold buffers.(0) ~init:[]
        ~f:(fun acc e -> (e - t.len) :: acc)
      |> List.rev
    end
end

(* The historical module-level surface: a cursor over the in-memory
   fast store ({!Index.t} is transparently equal to {!Fast_store.t}).
   Other backends obtain cursors through {!Make} or {!Engine.cursor}. *)
include Make (Fast_store)
