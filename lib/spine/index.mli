(** The SPINE index — in-memory flavour.

    This is the primary user-facing module: online construction
    ({!create}/{!append}/{!of_seq}), substring search with first and all
    occurrences, streaming maximal-match enumeration, and the structure
    statistics the paper reports.  The query surface is the shared
    {!Engine.Api} instantiated over the hashtable-backed
    {!Fast_store}; see {!Compact} for the paper's packed
    Link-Table/Rib-Table layout, and {!engine} for the uniform
    capability-aware handle.

    Positions are 0-based; node [i] of the backbone is the end of the
    prefix of length [i], so a pattern occurrence with end node [e] and
    length [l] starts at position [e - l]. *)

type t = Fast_store.t
(** Transparently the underlying store, so modules layered on top
    ({!Cursor}, {!Serialize}, {!Align}) can operate on it directly. *)

(** {2 Engine} *)

val caps : Engine.caps
(** [{ backend = "fast"; persistent = false; paged = false;
    traced = false }]. *)

val engine : t -> Engine.t
(** Pack the index as a capability-aware engine.  Build once and reuse;
    see {!Engine.pack}. *)

(** {2 Construction} *)

val create : ?capacity:int -> Bioseq.Alphabet.t -> t
(** An empty index (just the root node). *)

val append : t -> int -> unit
(** Append one character code. The index is fully usable between
    appends — construction is online, and the index of a prefix is the
    initial fragment of the index (prefix-partitionability). *)

val append_string : t -> string -> unit

val of_seq : Bioseq.Packed_seq.t -> t
(** Index a whole sequence. *)

val of_string : Bioseq.Alphabet.t -> string -> t

(** {2 Basics} *)

val alphabet : t -> Bioseq.Alphabet.t

val length : t -> int
(** Characters indexed; the backbone has [length t + 1] nodes. *)

val sequence : t -> Bioseq.Packed_seq.t
(** The indexed string, reconstructible from the vertebra labels alone —
    the paper's "the data string is not required any more once the index
    is constructed". *)

(** {2 Search} *)

val contains : t -> string -> bool

val contains_codes : t -> int array -> bool

val find_first : t -> int array -> int option
(** End node of the pattern's first occurrence. *)

val first_occurrence : t -> int array -> int option
(** Start position of the first occurrence. *)

val occurrences : t -> int array -> int list
(** Start positions of all occurrences, ascending: one valid-path walk
    for the first occurrence plus one sequential backbone scan. *)

val end_nodes : t -> int array -> int list
(** End nodes of all occurrences (the raw target-node buffer). *)

val end_nodes_binary : t -> int array -> int list
(** Same result via the paper's exact formulation: binary search of the
    sorted target-node buffer during the backbone scan. Used by tests
    and the scan ablation; {!end_nodes} uses a hashtable instead. *)

val occurrences_batch : t -> (int * int) array -> Xutil.Int_vec.t array
(** The raw deferred-scan machinery: given [(first-occurrence end node,
    length)] pairs, resolve every occurrence of all of them in one
    sequential backbone pass, one ascending end-node buffer per
    pattern. *)

val occurrences_many : t -> int array list -> int list array
(** Dictionary search: all occurrences of every pattern, resolved with
    ONE shared backbone scan (the paper's deferred batching, Section 4).
    Result [i] holds the ascending start positions of pattern [i]
    (empty when absent). Far cheaper than one {!occurrences} call per
    pattern when the dictionary is large.  {!Engine.run_batch} is the
    backend-generic form. *)

(** {2 Streaming matching} *)

type match_stats = Matcher.stats = {
  nodes_checked : int;
  suffixes_checked : int;
}

type mmatch = Matcher.mmatch = {
  query_end : int;
  length : int;
  data_ends : int list;
}

val matching_statistics : t -> Bioseq.Packed_seq.t -> int array * match_stats
(** [ms.(i)] = length of the longest substring of the data ending at
    query position [i]. *)

val maximal_matches :
  ?immediate:bool -> t -> threshold:int -> Bioseq.Packed_seq.t ->
  mmatch list * match_stats
(** The paper's cross-string matching operation. [immediate] disables
    the deferred batched occurrence scan (ablation). *)

(** {2 Statistics & accounting} *)

type label_maxima = Stats.label_maxima = {
  max_pt : int;
  max_lel : int;
  max_prt : int;
}

type edge_counts = Stats.edge_counts = {
  vertebras : int;
  ribs : int;
  extribs : int;
  links : int;
}

val label_maxima : t -> label_maxima
val rib_distribution : t -> int array
val edge_counts : t -> edge_counts
val link_histogram : t -> buckets:int -> int array

val model_bytes : t -> int
(** Bytes a C implementation with the paper's optimised field widths
    would use (Section 5 space model). *)

val node_count : t -> int
(** Always [length t + 1] — the defining property of full horizontal
    compaction. *)

(** {2 Raw structure access}

    Exposed for the test suite (the paper's Figure 3 is checked
    edge-for-edge) and for the serializer. *)

val link : t -> int -> int * int
(** [(dest, lel)] of a node's backward link. *)

val rib : t -> int -> int -> (int * int) option
(** [(dest, pt)] of the rib leaving a node with a given code. *)

val extrib : t -> int -> (int * int * int) option
(** [(dest, pt, prt)] of the extrib anchored at a node. *)

val store : t -> Fast_store.t
(** The underlying store ([t] is transparently equal to it). *)

val of_store : Fast_store.t -> t
(** Wrap an already-populated store (used by {!Serialize}). *)
