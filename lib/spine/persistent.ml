(* Byte tables over buffer-pool pages: the BYTES instantiation that
   makes the Section 5 layout disk-resident. Multi-byte fields may
   straddle a page boundary, so they are assembled byte by byte. *)
module Paged_bytes = struct
  type t = {
    pool : Pagestore.Buffer_pool.t;
    base_page : int;
    page_size : int;
    mutable used : int;
  }

  let make ?(used = 0) pool ~base_page =
    { pool; base_page;
      page_size = Pagestore.Device.page_size (Pagestore.Buffer_pool.device pool);
      used }

  let used t = t.used

  let alloc t n =
    let off = t.used in
    t.used <- t.used + n;
    off

  let get_u8 t off =
    Pagestore.Buffer_pool.with_page t.pool (t.base_page + (off / t.page_size))
      ~dirty:false (fun b -> Char.code (Bytes.get b (off mod t.page_size)))

  let set_u8 t off v =
    Pagestore.Buffer_pool.with_page t.pool (t.base_page + (off / t.page_size))
      ~dirty:true (fun b ->
        Bytes.set b (off mod t.page_size) (Char.chr (v land 0xFF)))

  let get_u16 t off = get_u8 t off lor (get_u8 t (off + 1) lsl 8)

  let set_u16 t off v =
    set_u8 t off v;
    set_u8 t (off + 1) (v lsr 8)

  let get_u32 t off =
    get_u8 t off
    lor (get_u8 t (off + 1) lsl 8)
    lor (get_u8 t (off + 2) lsl 16)
    lor (get_u8 t (off + 3) lsl 24)

  let set_u32 t off v =
    set_u8 t off v;
    set_u8 t (off + 1) (v lsr 8);
    set_u8 t (off + 2) (v lsr 16);
    set_u8 t (off + 3) (v lsr 24)
end

module P = Compact_store.Core (Paged_bytes)
module B = Builder.Make (P)
module A = Engine.Api (P)

(* Build-phase spans over the disk-resident index lifecycle. *)
let s_build = Telemetry.span "persistent.build"
let s_flush = Telemetry.span "persistent.flush"
let s_open = Telemetry.span "persistent.open"

(* Page regions within the file. Metadata sits first (64 MB is room
   for ~8M overflow/anchor entries); each data region then gets 1 GB of
   sparse address space — enough for ~180M characters — keeping the
   file's apparent size in the single-digit gigabytes even though only
   written pages occupy disk blocks. *)
let meta_span = 1 lsl 14
let data_span = 1 lsl 18

let region_base structure = meta_span + (structure * data_span)

let lt_region = 0
let rt_region table = 1 + table
let seq_region = 5
let meta_page = 0

type t = {
  core : P.t;
  seq_tab : Paged_bytes.t;   (* vertebra codes, 1 byte per character *)
  device : Pagestore.Device.t;
  pool : Pagestore.Buffer_pool.t;
  file_path : string;
  mutable closed : bool;
}

let check_open t = if t.closed then invalid_arg "Persistent: index is closed"

let make_pool ?(frames = 256) ?(page_size = 4096) ?(pin_top_lt_pages = 0)
    ~path ~truncate () =
  if truncate && Sys.file_exists path then Sys.remove path;
  let device = Pagestore.Device.create_file ~page_size ~path () in
  let pin page =
    pin_top_lt_pages > 0
    && page >= region_base lt_region
    && page < region_base lt_region + pin_top_lt_pages
  in
  let pool = Pagestore.Buffer_pool.create ~pin ~frames device in
  (device, pool)

let create ?frames ?page_size ?pin_top_lt_pages ~path alphabet =
  let device, pool =
    make_pool ?frames ?page_size ?pin_top_lt_pages ~path ~truncate:true ()
  in
  let lo = Compact_store.layout_of alphabet in
  let core =
    P.make
      ~seq:(Bioseq.Packed_seq.create alphabet)
      ~lt:(Paged_bytes.make pool ~base_page:(region_base lt_region))
      ~rts:
        (Array.mapi
           (fun table _ ->
             Paged_bytes.make pool ~base_page:(region_base (rt_region table)))
           lo.Compact_store.row_bytes)
      alphabet
  in
  P.init_root core;
  let seq_tab = Paged_bytes.make pool ~base_page:(region_base seq_region) in
  { core; seq_tab; device; pool; file_path = path; closed = false }

(* --- metadata blob (region 6) --- *)

let blob_write pool data =
  let page_size =
    Pagestore.Device.page_size (Pagestore.Buffer_pool.device pool)
  in
  let total = Bytes.length data in
  let header = Bytes.create 4 in
  Bytes.set_int32_le header 0 (Int32.of_int total);
  let all = Bytes.cat header data in
  let pos = ref 0 in
  let page = ref (meta_page) in
  while !pos < Bytes.length all do
    let chunk = min page_size (Bytes.length all - !pos) in
    Pagestore.Buffer_pool.with_page pool !page ~dirty:true (fun b ->
        Bytes.blit all !pos b 0 chunk);
    pos := !pos + chunk;
    incr page
  done

let blob_read pool =
  let page_size =
    Pagestore.Device.page_size (Pagestore.Buffer_pool.device pool)
  in
  let first =
    Pagestore.Buffer_pool.with_page pool (meta_page)
      ~dirty:false Bytes.copy
  in
  let total = Int32.to_int (Bytes.get_int32_le first 0) in
  if total <= 0 || total > 1 lsl 30 then
    failwith "Persistent: corrupt or missing metadata";
  let out = Bytes.create total in
  let copied = min total (page_size - 4) in
  Bytes.blit first 4 out 0 copied;
  let pos = ref copied in
  let page = ref (meta_page + 1) in
  while !pos < total do
    let chunk = min page_size (total - !pos) in
    Pagestore.Buffer_pool.with_page pool !page ~dirty:false (fun b ->
        Bytes.blit b 0 out !pos chunk);
    pos := !pos + chunk;
    incr page
  done;
  out

let magic = "SPNP"
let version = 1

let metadata_bytes t =
  let buf = Buffer.create 1024 in
  let u32 v = for k = 0 to 3 do Buffer.add_char buf (Char.chr ((v lsr (8 * k)) land 0xFF)) done in
  Buffer.add_string buf magic;
  u32 version;
  let alphabet = P.alphabet t.core in
  let symbols =
    String.init (Bioseq.Alphabet.size alphabet)
      (fun c -> Bioseq.Alphabet.decode alphabet c)
  in
  u32 (String.length symbols);
  Buffer.add_string buf symbols;
  u32 (P.length t.core);
  for table = 0 to 3 do
    u32 (Paged_bytes.used t.core.P.rts.(table));
    u32 t.core.P.freelist.(table);
    u32 t.core.P.live_rows.(table)
  done;
  u32 t.core.P.migrations;
  u32 (Xutil.Int_tbl.length t.core.P.overflow);
  Xutil.Int_tbl.iter (fun k v -> u32 k; u32 v) t.core.P.overflow;
  u32 (Xutil.Int_tbl.length t.core.P.anchors);
  Xutil.Int_tbl.iter (fun k v -> u32 k; u32 v) t.core.P.anchors;
  Buffer.to_bytes buf

let flush t =
  check_open t;
  Telemetry.with_span s_flush (fun () ->
      blob_write t.pool (metadata_bytes t);
      Pagestore.Buffer_pool.flush t.pool)

let close t =
  flush t;
  t.closed <- true;
  Pagestore.Device.close t.device

let open_ ?frames ?pin_top_lt_pages ~path () =
  Telemetry.with_span s_open @@ fun () ->
  if not (Sys.file_exists path) then
    failwith (Printf.sprintf "Persistent.open_: %s does not exist" path);
  let device, pool =
    make_pool ?frames ?pin_top_lt_pages ~path ~truncate:false ()
  in
  let data =
    try blob_read pool
    with Invalid_argument _ -> failwith "Persistent: corrupt metadata"
  in
  let pos = ref 0 in
  (* a truncated blob surfaces as Bytes.sub failures below; turn them
     into the advertised Failure *)
  let u8 () =
    let v =
      try Char.code (Bytes.get data !pos)
      with Invalid_argument _ -> failwith "Persistent: corrupt metadata"
    in
    incr pos;
    v
  in
  let u32 () =
    let v = ref 0 in
    for k = 0 to 3 do v := !v lor (u8 () lsl (8 * k)) done;
    !v
  in
  let str n =
    let s =
      try Bytes.sub_string data !pos n
      with Invalid_argument _ -> failwith "Persistent: corrupt metadata"
    in
    pos := !pos + n;
    s
  in
  if str 4 <> magic then failwith "Persistent.open_: bad magic";
  if u32 () <> version then failwith "Persistent.open_: unsupported version";
  let symbols = str (u32 ()) in
  let alphabet =
    match
      List.find_opt
        (fun a ->
          String.init (Bioseq.Alphabet.size a)
            (fun c -> Bioseq.Alphabet.decode a c)
          = symbols)
        [ Bioseq.Alphabet.dna; Bioseq.Alphabet.protein; Bioseq.Alphabet.byte ]
    with
    | Some a -> a
    | None -> Bioseq.Alphabet.make symbols
  in
  let n = u32 () in
  let rt_used = Array.make 4 0 in
  let freelist = Array.make 4 0 in
  let live_rows = Array.make 4 0 in
  for table = 0 to 3 do
    rt_used.(table) <- u32 ();
    freelist.(table) <- u32 ();
    live_rows.(table) <- u32 ()
  done;
  let migrations = u32 () in
  let overflow = Xutil.Int_tbl.create 16 in
  let n_ov = u32 () in
  for _ = 1 to n_ov do
    let k = u32 () in
    Xutil.Int_tbl.replace overflow k (u32 ())
  done;
  let anchors = Xutil.Int_tbl.create 16 in
  let n_an = u32 () in
  for _ = 1 to n_an do
    let k = u32 () in
    Xutil.Int_tbl.replace anchors k (u32 ())
  done;
  (* rebuild the in-memory sequence mirror from the code region *)
  let seq_tab =
    Paged_bytes.make pool ~base_page:(region_base seq_region) ~used:n
  in
  let seq = Bioseq.Packed_seq.create ~capacity:(max 16 n) alphabet in
  for i = 0 to n - 1 do
    Bioseq.Packed_seq.append seq (Paged_bytes.get_u8 seq_tab i)
  done;
  let core =
    P.make ~freelist ~live_rows ~overflow ~anchors ~migrations ~seq
      ~lt:
        (Paged_bytes.make pool ~base_page:(region_base lt_region)
           ~used:((n + 1) * Compact_store.lt_entry_bytes))
      ~rts:
        (Array.init 4 (fun table ->
             Paged_bytes.make pool ~base_page:(region_base (rt_region table))
               ~used:rt_used.(table)))
      alphabet
  in
  { core; seq_tab; device; pool; file_path = path; closed = false }

let path t = t.file_path
let alphabet t = P.alphabet t.core
let length t = check_open t; P.length t.core

let append t code =
  check_open t;
  (* mirror the character into the on-disk code region, then extend the
     index structure *)
  let off = Paged_bytes.alloc t.seq_tab 1 in
  Paged_bytes.set_u8 t.seq_tab off code;
  B.append t.core code

let append_string t s =
  Telemetry.with_span s_build (fun () ->
      String.iter (fun ch -> append t (Bioseq.Alphabet.encode (alphabet t) ch)) s)

let append_seq t seq =
  Telemetry.with_span s_build (fun () ->
      Bioseq.Packed_seq.iteri seq ~f:(fun _ c -> append t c))

(* Queries: pure re-exports of the shared engine API over the paged
   store, behind the use-after-close guard. *)

let contains t s = check_open t; A.contains t.core s
let contains_codes t codes = check_open t; A.contains_codes t.core codes
let find_first t codes = check_open t; A.find_first t.core codes
let first_occurrence t codes = check_open t; A.first_occurrence t.core codes
let occurrences t codes = check_open t; A.occurrences t.core codes
let end_nodes t codes = check_open t; A.end_nodes t.core codes
let occurrences_batch t firsts = check_open t; A.occurrences_batch t.core firsts
let occurrences_many t patterns =
  check_open t;
  A.occurrences_many t.core patterns

let matching_statistics t q = check_open t; A.matching_statistics t.core q

let maximal_matches t ~threshold q =
  check_open t;
  let matches, stats = A.maximal_matches t.core ~threshold q in
  ( List.map
      (fun { Matcher.query_end; length; data_ends } ->
        (query_end, length, data_ends))
      matches,
    stats )

let bytes_per_char t = check_open t; P.bytes_per_char t.core
let rib_distribution t = check_open t; A.rib_distribution t.core

let caps =
  { Engine.backend = "persistent"; persistent = true; paged = true;
    traced = false }

let engine t =
  Engine.pack ~guard:(fun () -> check_open t) ~caps
    (module P : Store_sig.S with type t = P.t)
    t.core

let cursor t = Engine.cursor (engine t)

let device t = t.device
let pool t = t.pool
