(* Byte tables over buffer-pool pages: the BYTES instantiation that
   makes the Section 5 layout disk-resident. Multi-byte fields may
   straddle a page boundary, so they are assembled byte by byte. *)
module Paged_bytes = struct
  type t = {
    pool : Pagestore.Buffer_pool.t;
    base_page : int;
    page_size : int;
    mutable used : int;
  }

  let make ?(used = 0) pool ~base_page =
    { pool; base_page;
      page_size = Pagestore.Device.page_size (Pagestore.Buffer_pool.device pool);
      used }

  let used t = t.used

  let alloc t n =
    let off = t.used in
    t.used <- t.used + n;
    off

  let get_u8 t off =
    Pagestore.Buffer_pool.with_page t.pool (t.base_page + (off / t.page_size))
      ~dirty:false (fun b -> Char.code (Bytes.get b (off mod t.page_size)))

  let set_u8 t off v =
    Pagestore.Buffer_pool.with_page t.pool (t.base_page + (off / t.page_size))
      ~dirty:true (fun b ->
        Bytes.set b (off mod t.page_size) (Char.chr (v land 0xFF)))

  let get_u16 t off = get_u8 t off lor (get_u8 t (off + 1) lsl 8)

  let set_u16 t off v =
    set_u8 t off v;
    set_u8 t (off + 1) (v lsr 8)

  let get_u32 t off =
    get_u8 t off
    lor (get_u8 t (off + 1) lsl 8)
    lor (get_u8 t (off + 2) lsl 16)
    lor (get_u8 t (off + 3) lsl 24)

  let set_u32 t off v =
    set_u8 t off v;
    set_u8 t (off + 1) (v lsr 8);
    set_u8 t (off + 2) (v lsr 16);
    set_u8 t (off + 3) (v lsr 24)
end

module P = Compact_store.Core (Paged_bytes)
module B = Builder.Make (P)
module A = Engine.Api (P)

(* Build-phase spans over the disk-resident index lifecycle. *)
let s_build = Telemetry.span "persistent.build"
let s_flush = Telemetry.span "persistent.flush"
let s_open = Telemetry.span "persistent.open"
let s_scrub = Telemetry.span "persistent.scrub"

(* Page regions within the file. Metadata sits first (the two shadow
   slots and the epoch-declaration page, see below); each data region
   then gets 1 GB of sparse address space — enough for ~180M
   characters — keeping the file's apparent size in the single-digit
   gigabytes even though only written pages occupy disk blocks. *)
let meta_span = 1 lsl 14
let data_span = 1 lsl 18

let region_base structure = meta_span + (structure * data_span)

let lt_region = 0
let rt_region table = 1 + table
let seq_region = 5
let journal_region = 6

(* Metadata is double-buffered: generation [g] goes to slot [g land 1],
   so a crash while writing the new generation always leaves the
   previous one intact.  The epoch-declaration page records the epoch
   the next session of writes will use — written ahead of any data
   write of that epoch, so epochs are never reused across crashes. *)
let slot_pages = 4096
let slot_base slot = slot * slot_pages
let epoch_page = 2 * slot_pages

let region_name page =
  if page < meta_span then
    if page = epoch_page then "meta/epoch"
    else if page < slot_pages then "meta/slot-a"
    else if page < 2 * slot_pages then "meta/slot-b"
    else "meta"
  else
    match (page - meta_span) / data_span with
    | 0 -> "lt"
    | 1 -> "rt0"
    | 2 -> "rt1"
    | 3 -> "rt2"
    | 4 -> "rt3"
    | 5 -> "seq"
    | 6 -> "journal"
    | _ -> "data"

(* Preimage-journal bookkeeping (the machinery itself lives further
   down, after the device-write helpers it needs). *)
let c_journal_captures = Telemetry.counter "persistent.journal.captures"
let c_journal_restored = Telemetry.counter "persistent.journal.restored"

let journal_magic = "SPNJ"
let journal_base = region_base journal_region
let journal_entries = data_span / 2

(* pages the journal protects: everything in the data regions *)
let is_data_page page = page >= meta_span && page < journal_base

type journal = {
  j_device : Pagestore.Device.t;
  j_committed : unit Xutil.Int_tbl.t;
      (* pages whose on-disk image belongs to the committed generation *)
  j_journaled : unit Xutil.Int_tbl.t;  (* captured since the last commit *)
  mutable j_next : int;
}

let journal_make device =
  { j_device = device;
    j_committed = Xutil.Int_tbl.create 1024;
    j_journaled = Xutil.Int_tbl.create 256;
    j_next = 0 }

type t = {
  core : P.t;
  seq_tab : Paged_bytes.t;
      (* vertebra codes in the packed-row layout of [Packed_seq]:
         8-byte little-endian words, [62 / width] codes each — the
         on-disk region is byte-for-byte the row's [packed_bits] *)
  device : Pagestore.Device.t;
  pool : Pagestore.Buffer_pool.t;
  journal : journal;
  file_path : string;
  mutable disk_width : int;  (* cell width the region is written at *)
  mutable generation : int;
  mutable closed : bool;
}

let check_open t =
  if t.closed then Spine_error.raise_error (Spine_error.Closed "persistent index")

let make_pool ?(frames = 256) ?(page_size = 4096) ?(pin_top_lt_pages = 0)
    ~path ~truncate () =
  if truncate && Sys.file_exists path then Sys.remove path;
  let device =
    Pagestore.Device.create_file ~checksums:true ~page_size ~path ()
  in
  Pagestore.Device.set_region_namer device region_name;
  (match Pagestore.Fault_device.of_env () with
   | Some plan -> Pagestore.Fault_device.attach plan device
   | None -> ());
  let pin page =
    pin_top_lt_pages > 0
    && page >= region_base lt_region
    && page < region_base lt_region + pin_top_lt_pages
  in
  let pool = Pagestore.Buffer_pool.create ~pin ~frames device in
  (device, pool)

(* --- byte helpers over raw pages --- *)

let get_u32 b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let set_u32 b off v =
  Bytes.set b off (Char.chr (v land 0xFF));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xFF))

(* Direct device writes (metadata bypasses the pool); transient injected
   errors get the same bounded retry the pool applies. *)
let dev_write device page data =
  let rec go attempt =
    try Pagestore.Device.write device page data
    with
    | Spine_error.Error (Spine_error.Io_failed { transient = true; _ })
      when attempt < 4 ->
      go (attempt + 1)
  in
  go 1

(* --- preimage journal ---

   Data pages are overwritten in place, so after a commit the buffer
   pool may write a dirty tail page (or a mutated rib-table page) over
   its committed image — and a crash then leaves the committed
   generation unrecoverable.  The journal closes that hole: before the
   first post-commit overwrite of a committed page, its exact physical
   slot (data + trailer, whatever its state) is copied into the journal
   region; [open_] rolls every live entry back before recovery, so the
   last flushed state is restored byte for byte.

   Entry [i] occupies two pages at [journal_base + 2i]:

     data page  (+1): the preimage's data bytes;
     header page (+0): magic "SPNJ", u32 entry index, u64 target page,
                       the preimage's raw 16-byte trailer, and a
                       CRC-32C over the preimage data page.

   The data page is written first; the header commits the entry.  The
   header's own CRC binds header and data together: a crash between
   the two (or a journal slot holding pages from different crashed
   sessions) reads as an invalid entry, and an invalid entry's target
   was by construction never overwritten.

   Entries are sealed at the session's write epoch, which a commit
   moves past — so the commit that makes the window's overwrites
   permanent also invalidates its journal (entry epoch <= new ceiling)
   with no extra write.  Recovery applies exactly the prefix of
   entries whose epochs exceed the recovered commit epoch; every such
   entry holds a committed-generation preimage (a crashed session only
   captures pages while the disk is in committed-or-journaled state),
   so rollback is idempotent across repeated crashes. *)

(* Called by the buffer pool before every dirty writeback: first
   overwrite of a committed page in this window copies its slot into
   the journal.  Clean-path builds (no flush before close) never enter
   the branch — the committed set is empty. *)
let journal_capture j page =
  if
    is_data_page page
    && Xutil.Int_tbl.mem j.j_committed page
    && not (Xutil.Int_tbl.mem j.j_journaled page)
  then begin
    if j.j_next >= journal_entries then
      Spine_error.io_failed ~op:Spine_error.Write ~page
        "preimage journal full (%d entries since the last flush); flush to \
         commit and reset it"
        journal_entries;
    let device = j.j_device in
    let page_size = Pagestore.Device.page_size device in
    let trailer = Pagestore.Device.phys_size device - page_size in
    let phys = Pagestore.Device.raw_slot device page in
    let data = Bytes.sub phys 0 page_size in
    let hdr = Bytes.make page_size '\000' in
    Bytes.blit_string journal_magic 0 hdr 0 4;
    set_u32 hdr 4 j.j_next;
    set_u32 hdr 8 (page land 0xFFFFFFFF);
    set_u32 hdr 12 (page lsr 32);
    Bytes.blit phys page_size hdr 16 trailer;
    set_u32 hdr 32 (Xutil.Crc32c.bytes data);
    let base = journal_base + (2 * j.j_next) in
    dev_write device (base + 1) data;
    dev_write device base hdr;  (* the header commits the entry *)
    Xutil.Int_tbl.replace j.j_journaled page ();
    j.j_next <- j.j_next + 1;
    Telemetry.incr c_journal_captures
  end

(* Roll back every live journal entry (epoch beyond [ceiling], the
   recovered generation's commit epoch): put each preimage slot back
   exactly as captured, original trailer included, so the restored
   pages re-validate under the recovered ceiling.  Stops at the first
   invalid or obsolete entry — entries are written in order and each
   precedes its target's overwrite, so nothing past that point ever
   clobbered a committed page that is not also covered earlier. *)
let journal_rollback device ~ceiling =
  let page_size = Pagestore.Device.page_size device in
  let restored = ref 0 in
  (try
     for i = 0 to journal_entries - 1 do
       let base = journal_base + (2 * i) in
       match Pagestore.Device.read_slot_any device base with
       | `Valid (hdr, e)
         when e > ceiling
              && String.equal (Bytes.sub_string hdr 0 4) journal_magic
              && get_u32 hdr 4 = i -> begin
           let target = get_u32 hdr 8 lor (get_u32 hdr 12 lsl 32) in
           match Pagestore.Device.read_slot_any device (base + 1) with
           | `Valid (data, e')
             when e' > ceiling && Xutil.Crc32c.bytes data = get_u32 hdr 32 ->
             let phys =
               Bytes.make (Pagestore.Device.phys_size device) '\000'
             in
             Bytes.blit data 0 phys 0 page_size;
             Bytes.blit hdr 16 phys page_size
               (Pagestore.Device.phys_size device - page_size);
             Pagestore.Device.write_raw_slot device target phys;
             incr restored;
             Telemetry.incr c_journal_restored
           | _ -> raise Exit
         end
       | _ -> raise Exit
     done
   with Exit -> ());
  !restored

(* --- epoch-declaration page --- *)

let decl_magic = "SPNG"

let write_epoch_decl device epoch =
  let b = Bytes.make (Pagestore.Device.page_size device) '\000' in
  Bytes.blit_string decl_magic 0 b 0 4;
  set_u32 b 4 epoch;
  dev_write device epoch_page b

let read_epoch_decl device =
  match Pagestore.Device.read device epoch_page with
  | exception Spine_error.Error _ -> None
  | b ->
    if String.equal (Bytes.sub_string b 0 4) decl_magic then Some (get_u32 b 4)
    else None

(* --- metadata slots ---

   Slot layout (spanning whole pages from the slot base):
     +0   magic "SPNM"
     +4   u32 format version (2)
     +8   u32 generation
     +12  u32 commit epoch: every data page of this generation is
              stamped with an epoch <= this
     +16  u32 flags (bit 0 = written by a clean close)
     +20  u32 payload length
     +24  u32 CRC-32C of the payload
     +28  payload (symbols, length, table state, side tables)

   The payload CRC guards the blob as a whole; each page additionally
   carries the device trailer, so a torn slot write is caught either
   way and reopen falls back to the other slot. *)

let meta_magic = "SPNM"

(* version 3: the sequence region switched from one byte per character
   to the packed-row word layout, and the payload gained the cell
   width *)
let meta_version = 3
let slot_header_bytes = 28

type slot_meta = {
  sm_generation : int;
  sm_commit_epoch : int;
  sm_clean : bool;
  sm_payload : Bytes.t;
}

let write_slot device ~generation ~commit_epoch ~clean payload =
  let page_size = Pagestore.Device.page_size device in
  let total = slot_header_bytes + Bytes.length payload in
  if total > slot_pages * page_size then
    invalid_arg "Persistent: metadata exceeds slot capacity";
  let padded = (total + page_size - 1) / page_size * page_size in
  let all = Bytes.make padded '\000' in
  Bytes.blit_string meta_magic 0 all 0 4;
  set_u32 all 4 meta_version;
  set_u32 all 8 generation;
  set_u32 all 12 commit_epoch;
  set_u32 all 16 (if clean then 1 else 0);
  set_u32 all 20 (Bytes.length payload);
  set_u32 all 24 (Xutil.Crc32c.bytes payload);
  Bytes.blit payload 0 all slot_header_bytes (Bytes.length payload);
  let base = slot_base (generation land 1) in
  for k = 0 to (padded / page_size) - 1 do
    dev_write device (base + k) (Bytes.sub all (k * page_size) page_size)
  done

let read_slot device slot =
  let page_size = Pagestore.Device.page_size device in
  try
    let first = Pagestore.Device.read device (slot_base slot) in
    let magic = Bytes.sub_string first 0 4 in
    if String.equal magic "\000\000\000\000" then Error "slot never written"
    else if not (String.equal magic meta_magic) then
      Error "bad metadata magic"
    else begin
      let version = get_u32 first 4 in
      if version <> meta_version then
        Error (Printf.sprintf "unsupported metadata version %d" version)
      else begin
        let generation = get_u32 first 8 in
        let commit_epoch = get_u32 first 12 in
        let flags = get_u32 first 16 in
        let len = get_u32 first 20 in
        let crc = get_u32 first 24 in
        if len < 0 || len > (slot_pages * page_size) - slot_header_bytes then
          Error (Printf.sprintf "implausible metadata length %d" len)
        else begin
          let payload = Bytes.create len in
          let copied = min len (page_size - slot_header_bytes) in
          Bytes.blit first slot_header_bytes payload 0 copied;
          let pos = ref copied in
          let page = ref (slot_base slot + 1) in
          while !pos < len do
            let b = Pagestore.Device.read device !page in
            let chunk = min page_size (len - !pos) in
            Bytes.blit b 0 payload !pos chunk;
            pos := !pos + chunk;
            incr page
          done;
          if Xutil.Crc32c.bytes payload <> crc then
            Error "metadata payload checksum mismatch"
          else
            Ok { sm_generation = generation; sm_commit_epoch = commit_epoch;
                 sm_clean = flags land 1 = 1; sm_payload = payload }
        end
      end
    end
  with Spine_error.Error e -> Error (Spine_error.to_string e)

(* --- metadata payload --- *)

let payload_bytes t =
  let buf = Buffer.create 1024 in
  let u32 v = for k = 0 to 3 do Buffer.add_char buf (Char.chr ((v lsr (8 * k)) land 0xFF)) done in
  let alphabet = P.alphabet t.core in
  let symbols =
    String.init (Bioseq.Alphabet.size alphabet)
      (fun c -> Bioseq.Alphabet.decode alphabet c)
  in
  u32 (String.length symbols);
  Buffer.add_string buf symbols;
  u32 (P.length t.core);
  u32 t.disk_width;
  for table = 0 to 3 do
    u32 (Paged_bytes.used t.core.P.rts.(table));
    u32 t.core.P.freelist.(table);
    u32 t.core.P.live_rows.(table)
  done;
  u32 t.core.P.migrations;
  u32 (Xutil.Int_tbl.length t.core.P.overflow);
  Xutil.Int_tbl.iter (fun k v -> u32 k; u32 v) t.core.P.overflow;
  u32 (Xutil.Int_tbl.length t.core.P.anchors);
  Xutil.Int_tbl.iter (fun k v -> u32 k; u32 v) t.core.P.anchors;
  Buffer.to_bytes buf

(* Reset the capture window at a commit point (and on reopen): nothing
   is journaled yet, and the committed set becomes the used prefix of
   every data region.  Data regions are append-only byte tables whose
   rows are mutated in place, so an in-place overwrite can only ever
   target a page inside a used prefix — this set is exact. *)
let journal_commit_window t =
  let j = t.journal in
  Xutil.Int_tbl.reset j.j_journaled;
  j.j_next <- 0;
  Xutil.Int_tbl.reset j.j_committed;
  let page_size = Pagestore.Device.page_size t.device in
  let add base used =
    for k = 0 to ((used + page_size - 1) / page_size) - 1 do
      Xutil.Int_tbl.replace j.j_committed (base + k) ()
    done
  in
  let n = P.length t.core in
  add (region_base lt_region) ((n + 1) * Compact_store.lt_entry_bytes);
  for table = 0 to 3 do
    add (region_base (rt_region table)) (Paged_bytes.used t.core.P.rts.(table))
  done;
  add (region_base seq_region)
    (Bioseq.Packed_seq.packed_byte_length (P.sequence t.core))

(* A crashed session may have extended a region past the committed
   prefix.  Those pages hold no committed data (the journal only
   protects the prefix) but are stamped beyond the recovered ceiling,
   so a later append extending the table into one would fault its
   read-modify-write with a misleading [Corrupt].  Reset them to sealed
   zero pages at the session's fresh epoch.  Allocation is sequential,
   so debris forms a dense run just above the prefix: stop after
   [erase_hole_limit] consecutive holes, mirroring the scrub walk. *)
let erase_hole_limit = 64

let erase_stale_tail device ~base ~used_bytes =
  let page_size = Pagestore.Device.page_size device in
  let zero = Bytes.make page_size '\000' in
  let first = base + ((used_bytes + page_size - 1) / page_size) in
  let limit =
    min (base + data_span) (Pagestore.Device.physical_pages device)
  in
  let holes = ref 0 in
  let page = ref first in
  while !holes < erase_hole_limit && !page < limit do
    (match Pagestore.Device.verify_page device !page with
     | `Unwritten -> incr holes
     | `Ok _ -> holes := 0
     | `Stale _ | `Damaged _ ->
       holes := 0;
       Pagestore.Device.write device !page zero);
    incr page
  done

(* --- lifecycle --- *)

let create ?frames ?page_size ?pin_top_lt_pages ~path alphabet =
  let device, pool =
    make_pool ?frames ?page_size ?pin_top_lt_pages ~path ~truncate:true ()
  in
  let journal = journal_make device in
  Pagestore.Buffer_pool.set_writeback_hook pool
    (Some (journal_capture journal));
  Pagestore.Device.set_epoch device 1;
  Pagestore.Device.set_max_valid_epoch device 0;
  (* declare epoch 1 before any data write carries it *)
  write_epoch_decl device 1;
  let lo = Compact_store.layout_of alphabet in
  let core =
    P.make
      ~seq:(Bioseq.Packed_seq.create alphabet)
      ~lt:(Paged_bytes.make pool ~base_page:(region_base lt_region))
      ~rts:
        (Array.mapi
           (fun table _ ->
             Paged_bytes.make pool ~base_page:(region_base (rt_region table)))
           lo.Compact_store.row_bytes)
      alphabet
  in
  P.init_root core;
  let seq_tab = Paged_bytes.make pool ~base_page:(region_base seq_region) in
  { core; seq_tab; device; pool; journal; file_path = path;
    disk_width = Bioseq.Packed_seq.width (P.sequence core); generation = 0;
    closed = false }

(* Commit protocol: data pages first (journaling the preimage of any
   committed page they overwrite), then the new metadata generation
   into the inactive slot, then raise the committed-epoch ceiling and
   move to a fresh (pre-declared) epoch.  A crash at ANY point leaves
   either the old generation recoverable (its slot untouched, its
   ceiling unchanged, its overwritten pages restorable from the
   journal) or the new one fully written. *)
let flush_internal t ~clean =
  Telemetry.with_span s_flush (fun () ->
      Pagestore.Buffer_pool.flush t.pool;
      let e = Pagestore.Device.epoch t.device in
      let gen = t.generation + 1 in
      write_slot t.device ~generation:gen ~commit_epoch:e ~clean
        (payload_bytes t);
      (* the slot write is the commit point; bump the in-memory
         generation only once it is durable, so a failed attempt leaves
         it unchanged and a retried flush rewrites the same inactive
         slot instead of clobbering the last valid generation's *)
      t.generation <- gen;
      Pagestore.Device.set_max_valid_epoch t.device e;
      Pagestore.Device.set_epoch t.device (e + 1);
      (* moving past epoch [e] just invalidated every journal entry
         (entry epoch <= new ceiling): open a fresh capture window over
         the newly committed prefix before any further write *)
      journal_commit_window t;
      write_epoch_decl t.device (e + 1))

let flush t =
  check_open t;
  flush_internal t ~clean:false

let close t =
  check_open t;
  flush_internal t ~clean:true;
  t.closed <- true;
  Pagestore.Device.close t.device

let open_ ?frames ?pin_top_lt_pages ~path () =
  Telemetry.with_span s_open @@ fun () ->
  if not (Sys.file_exists path) then
    Spine_error.io_failed ~op:Spine_error.Read "Persistent.open_: %s does not exist"
      path;
  let device, pool =
    make_pool ?frames ?pin_top_lt_pages ~path ~truncate:false ()
  in
  let journal = journal_make device in
  Pagestore.Buffer_pool.set_writeback_hook pool
    (Some (journal_capture journal));
  try
    (* read both shadow slots and the epoch declaration while epoch
       validation is still disabled: all three may carry epochs from
       sessions later than the one we will recover to *)
    let slot_a = read_slot device 0 in
    let slot_b = read_slot device 1 in
    let candidates =
      List.filter_map (function Ok m -> Some m | Error _ -> None)
        [ slot_a; slot_b ]
    in
    let m =
      match candidates with
      | [] ->
        let reason = function Error e -> e | Ok _ -> "valid" in
        Spine_error.raise_error
          (Spine_error.Corrupt
             { region = "meta"; page = 0;
               detail =
                 Printf.sprintf "no recoverable metadata (slot A: %s; slot B: %s)"
                   (reason slot_a) (reason slot_b) })
      | first :: rest ->
        List.fold_left
          (fun best c ->
            if c.sm_generation > best.sm_generation then c else best)
          first rest
    in
    (* undo the in-place overwrites a crashed session performed on
       committed pages after its last commit: every journal entry
       stamped beyond the recovered commit epoch holds the committed
       preimage of its target, so restoring them puts the flushed
       generation back on disk byte for byte *)
    let (_restored : int) =
      journal_rollback device ~ceiling:m.sm_commit_epoch
    in
    (* every epoch any crashed session may have stamped pages with is
       bounded by what the declaration page and the slots record; +2
       clears both the recovered ceiling and a torn declaration *)
    let hints =
      (match read_epoch_decl device with Some e -> [ e ] | None -> [])
      @ List.map (fun c -> c.sm_commit_epoch) candidates
    in
    let current = List.fold_left max 0 hints + 2 in
    Pagestore.Device.set_max_valid_epoch device m.sm_commit_epoch;
    Pagestore.Device.set_epoch device current;
    write_epoch_decl device current;
    (* parse the payload *)
    let data = m.sm_payload in
    let pos = ref 0 in
    let u8 () =
      if !pos >= Bytes.length data then
        Spine_error.corrupt ~region:"meta" ~page:(slot_base (m.sm_generation land 1))
          "metadata payload truncated at byte %d" !pos;
      let v = Char.code (Bytes.get data !pos) in
      incr pos;
      v
    in
    let u32 () =
      let v = ref 0 in
      for k = 0 to 3 do v := !v lor (u8 () lsl (8 * k)) done;
      !v
    in
    let str n =
      if n < 0 || !pos + n > Bytes.length data then
        Spine_error.corrupt ~region:"meta" ~page:(slot_base (m.sm_generation land 1))
          "metadata payload truncated at byte %d" !pos;
      let s = Bytes.sub_string data !pos n in
      pos := !pos + n;
      s
    in
    let symbols = str (u32 ()) in
    let alphabet =
      match
        List.find_opt
          (fun a ->
            String.equal
              (String.init (Bioseq.Alphabet.size a)
                 (fun c -> Bioseq.Alphabet.decode a c))
              symbols)
          [ Bioseq.Alphabet.dna; Bioseq.Alphabet.protein; Bioseq.Alphabet.byte ]
      with
      | Some a -> a
      | None -> Bioseq.Alphabet.make symbols
    in
    let n = u32 () in
    let width = u32 () in
    if width <> 2 && width <> 4 && width <> 8 then
      Spine_error.corrupt ~region:"meta"
        ~page:(slot_base (m.sm_generation land 1))
        "implausible sequence cell width %d" width;
    let seq_bytes =
      let cpw = 62 / width in
      (n + cpw - 1) / cpw * 8
    in
    let rt_used = Array.make 4 0 in
    let freelist = Array.make 4 0 in
    let live_rows = Array.make 4 0 in
    for table = 0 to 3 do
      rt_used.(table) <- u32 ();
      freelist.(table) <- u32 ();
      live_rows.(table) <- u32 ()
    done;
    let migrations = u32 () in
    let overflow = Xutil.Int_tbl.create 16 in
    let n_ov = u32 () in
    for _ = 1 to n_ov do
      let k = u32 () in
      Xutil.Int_tbl.replace overflow k (u32 ())
    done;
    let anchors = Xutil.Int_tbl.create 16 in
    let n_an = u32 () in
    for _ = 1 to n_an do
      let k = u32 () in
      Xutil.Int_tbl.replace anchors k (u32 ())
    done;
    (* clear crash debris beyond each region's committed prefix so this
       session's own appends can extend the tables into those pages *)
    if Pagestore.Device.checksums device then begin
      erase_stale_tail device ~base:(region_base lt_region)
        ~used_bytes:((n + 1) * Compact_store.lt_entry_bytes);
      for table = 0 to 3 do
        erase_stale_tail device ~base:(region_base (rt_region table))
          ~used_bytes:rt_used.(table)
      done;
      erase_stale_tail device ~base:(region_base seq_region)
        ~used_bytes:seq_bytes
    end;
    (* rebuild the in-memory sequence mirror from the packed region —
       the raw words, no per-code re-decoding; with the ceiling
       restored above, any crash debris page this touches surfaces as a
       typed Corrupt instead of phantom characters *)
    let seq_tab =
      Paged_bytes.make pool ~base_page:(region_base seq_region)
        ~used:seq_bytes
    in
    let packed = Bytes.create seq_bytes in
    for off = 0 to seq_bytes - 1 do
      Bytes.set packed off (Char.chr (Paged_bytes.get_u8 seq_tab off))
    done;
    let seq =
      try Bioseq.Packed_seq.of_packed_bits alphabet ~len:n ~width packed
      with Invalid_argument _ ->
        Spine_error.corrupt ~region:"seq" ~page:(region_base seq_region)
          "packed sequence region decodes outside the alphabet"
    in
    let core =
      P.make ~freelist ~live_rows ~overflow ~anchors ~migrations ~seq
        ~lt:
          (Paged_bytes.make pool ~base_page:(region_base lt_region)
             ~used:((n + 1) * Compact_store.lt_entry_bytes))
        ~rts:
          (Array.init 4 (fun table ->
               Paged_bytes.make pool ~base_page:(region_base (rt_region table))
                 ~used:rt_used.(table)))
        alphabet
    in
    let t =
      { core; seq_tab; device; pool; journal; file_path = path;
        disk_width = width; generation = m.sm_generation; closed = false }
    in
    (* the recovered prefix is the committed state the journal must now
       protect against this session's own in-place overwrites *)
    journal_commit_window t;
    t
  with e ->
    Pagestore.Device.close device;
    raise e

let path t = t.file_path
let alphabet t = P.alphabet t.core
let length t = check_open t; P.length t.core
let generation t = t.generation

(* Re-mirror the whole packed row into the sequence region, used when
   an appended code forces a wider cell (the row re-packs in memory, so
   every on-disk byte moves).  At most twice over an index's whole
   life (2 -> 4 -> 8). *)
let rewrite_seq_region t =
  let packed = Bioseq.Packed_seq.packed_bits (P.sequence t.core) in
  for off = 0 to Bytes.length packed - 1 do
    Paged_bytes.set_u8 t.seq_tab off (Char.code (Bytes.get packed off))
  done;
  t.disk_width <- Bioseq.Packed_seq.width (P.sequence t.core)

let append t code =
  check_open t;
  let seq = P.sequence t.core in
  let i = Bioseq.Packed_seq.length seq in  (* position of the new code *)
  B.append t.core code;
  let w = Bioseq.Packed_seq.width seq in
  if w <> t.disk_width then rewrite_seq_region t
  else begin
    (* mirror the one new code into the packed on-disk region.  The
       width divides 8, so a code's bits always fall within one byte:
       read-modify-write that byte alone.  A byte whose low bits are
       free ([shift = 0]) is untouched so far — its region pages start
       zeroed — and can be written without the read. *)
    let cpw = 62 / w in
    let wi = i / cpw in
    let bit = (i - (wi * cpw)) * w in
    let off = (wi * 8) + (bit / 8) in
    let shift = bit land 7 in
    let v =
      if shift = 0 then code
      else Paged_bytes.get_u8 t.seq_tab off lor (code lsl shift)
    in
    Paged_bytes.set_u8 t.seq_tab off v
  end

let append_string t s =
  Telemetry.with_span s_build (fun () ->
      String.iter (fun ch -> append t (Bioseq.Alphabet.encode (alphabet t) ch)) s)

let append_seq t seq =
  Telemetry.with_span s_build (fun () ->
      Bioseq.Packed_seq.iteri seq ~f:(fun _ c -> append t c))

(* Queries: pure re-exports of the shared engine API over the paged
   store, behind the use-after-close guard. *)

let contains t s = check_open t; A.contains t.core s
let contains_codes t codes = check_open t; A.contains_codes t.core codes
let find_first t codes = check_open t; A.find_first t.core codes
let first_occurrence t codes = check_open t; A.first_occurrence t.core codes
let occurrences t codes = check_open t; A.occurrences t.core codes
let end_nodes t codes = check_open t; A.end_nodes t.core codes
let occurrences_batch t firsts = check_open t; A.occurrences_batch t.core firsts
let occurrences_many t patterns =
  check_open t;
  A.occurrences_many t.core patterns

let matching_statistics t q = check_open t; A.matching_statistics t.core q

let maximal_matches t ~threshold q =
  check_open t;
  let matches, stats = A.maximal_matches t.core ~threshold q in
  ( List.map
      (fun { Matcher.query_end; length; data_ends } ->
        (query_end, length, data_ends))
      matches,
    stats )

let bytes_per_char t = check_open t; P.bytes_per_char t.core
let rib_distribution t = check_open t; A.rib_distribution t.core
let sequence t = check_open t; P.sequence t.core

let caps =
  { Engine.backend = "persistent"; persistent = true; paged = true;
    traced = false }

(* The file footprint (physical slots: pages + checksum trailers) and
   the pool's frame memory; the paged byte tables themselves are
   already attributed through the store's space_components. *)
let space_extra t () =
  [ ("pagestore_pages",
     Pagestore.Device.pages_allocated t.device
     * Pagestore.Device.phys_size t.device);
    ("bufferpool_frames",
     Pagestore.Buffer_pool.frames t.pool
     * Pagestore.Device.page_size t.device) ]

let engine t =
  Engine.pack ~guard:(fun () -> check_open t) ~caps
    ~space_extra:(space_extra t)
    (module P : Store_sig.S with type t = P.t)
    t.core

let cursor t = Engine.cursor (engine t)

let device t = t.device
let pool t = t.pool

(* --- scrub: integrity walk and damage report --- *)

type slot_state =
  | Slot_valid of { generation : int; commit_epoch : int; clean : bool }
  | Slot_invalid of string

type region_report = {
  region : string;
  scanned : int;
  ok : int;
  unwritten : int;
  damaged : (int * string) list;  (* page, diagnosis *)
  stale : (int * int) list;       (* page, epoch beyond the ceiling *)
}

type report = {
  report_path : string;
  report_generation : int;   (* -1 when no metadata was recoverable *)
  report_commit_epoch : int;
  report_clean : bool;
  slots : (int * slot_state) list;
  regions : region_report list;
  damaged_pages : int;
  stale_pages : int;
}

(* Data regions are append-only byte tables, so written pages form a
   dense prefix of each region; scanning stops after a run of holes
   instead of walking a gigabyte of sparse address space per region. *)
let hole_run_limit = 64

let scan_region ?(stale_ok = false) device ~name ~base ~span =
  let cap = Pagestore.Device.physical_pages device in
  let limit = min span (max 0 (cap - base)) in
  let ok = ref 0 and unwritten = ref 0 in
  let damaged = ref [] and stale = ref [] in
  let holes = ref 0 in
  let page = ref 0 in
  while !page < limit && !holes <= hole_run_limit do
    (match Pagestore.Device.verify_page device (base + !page) with
     | `Ok _ -> incr ok; holes := 0
     | `Unwritten -> incr unwritten; incr holes
     | `Stale e ->
       holes := 0;
       (* [stale_ok] regions live beyond the ceiling BY DESIGN: the
          declaration page is one epoch ahead, and journal entries are
          only meaningful while their epoch exceeds it; everywhere else
          a beyond-ceiling epoch is debris from a crashed session *)
       if stale_ok then incr ok
       else stale := (base + !page, e) :: !stale
     | `Damaged d ->
       holes := 0;
       damaged := (base + !page, d) :: !damaged);
    incr page
  done;
  { region = name; scanned = !page; ok = !ok; unwritten = !unwritten;
    damaged = List.rev !damaged; stale = List.rev !stale }

let run_scrub ?(retune = true) device path =
  Telemetry.with_span s_scrub @@ fun () ->
  let slot_a = read_slot device 0 in
  let slot_b = read_slot device 1 in
  let state = function
    | Ok m ->
      Slot_valid
        { generation = m.sm_generation; commit_epoch = m.sm_commit_epoch;
          clean = m.sm_clean }
    | Error e -> Slot_invalid e
  in
  let candidates =
    List.filter_map (function Ok m -> Some m | Error _ -> None)
      [ slot_a; slot_b ]
  in
  let best =
    List.fold_left
      (fun acc c ->
        match acc with
        | Some b when b.sm_generation >= c.sm_generation -> acc
        | _ -> Some c)
      None candidates
  in
  (* Offline scrub tunes the epoch check from the recovered metadata; a
     live [verify] keeps the session's own settings (its uncommitted
     pages carry the current epoch and must stay valid). *)
  (if retune then
     match best with
     | Some m ->
       let hints =
         (match read_epoch_decl device with Some e -> [ e ] | None -> [])
         @ List.map (fun c -> c.sm_commit_epoch) candidates
       in
       Pagestore.Device.set_max_valid_epoch device m.sm_commit_epoch;
       (* an epoch no page can carry: pure ceiling check, nothing exempt *)
       Pagestore.Device.set_epoch device (List.fold_left max 0 hints + 2)
     | None -> ());
  let regions =
    [ scan_region device ~name:"meta/slot-a" ~base:(slot_base 0)
        ~span:slot_pages;
      scan_region device ~name:"meta/slot-b" ~base:(slot_base 1)
        ~span:slot_pages;
      scan_region ~stale_ok:true device ~name:"meta/epoch" ~base:epoch_page
        ~span:1;
      scan_region device ~name:"lt" ~base:(region_base lt_region)
        ~span:data_span;
      scan_region device ~name:"rt0" ~base:(region_base (rt_region 0))
        ~span:data_span;
      scan_region device ~name:"rt1" ~base:(region_base (rt_region 1))
        ~span:data_span;
      scan_region device ~name:"rt2" ~base:(region_base (rt_region 2))
        ~span:data_span;
      scan_region device ~name:"rt3" ~base:(region_base (rt_region 3))
        ~span:data_span;
      scan_region device ~name:"seq" ~base:(region_base seq_region)
        ~span:data_span;
      scan_region ~stale_ok:true device ~name:"journal" ~base:journal_base
        ~span:data_span ]
  in
  let damaged_pages =
    List.fold_left (fun acc r -> acc + List.length r.damaged) 0 regions
  in
  let stale_pages =
    List.fold_left (fun acc r -> acc + List.length r.stale) 0 regions
  in
  { report_path = path;
    report_generation =
      (match best with Some m -> m.sm_generation | None -> -1);
    report_commit_epoch =
      (match best with Some m -> m.sm_commit_epoch | None -> -1);
    report_clean = (match best with Some m -> m.sm_clean | None -> false);
    slots = [ (0, state slot_a); (1, state slot_b) ];
    regions; damaged_pages; stale_pages }

let verify t =
  check_open t;
  run_scrub ~retune:false t.device t.file_path

let scrub ?(page_size = 4096) ~path () =
  if not (Sys.file_exists path) then
    Spine_error.io_failed ~op:Spine_error.Read "Persistent.scrub: %s does not exist"
      path;
  let device =
    Pagestore.Device.create_file ~checksums:true ~page_size ~path ()
  in
  Pagestore.Device.set_region_namer device region_name;
  let result =
    try run_scrub device path
    with e -> Pagestore.Device.close device; raise e
  in
  Pagestore.Device.close device;
  result
