(** Streaming matching over a SPINE index (Section 4 of the paper).

    Computes matching statistics of a query against the indexed string,
    maintaining the invariant that the current state [(v, len)] is the
    {e termination node} of the current match (the end of its first
    occurrence in the data string) together with its length.  On a
    failed extension the matcher first tries shorter suffixes that
    terminate at the same node (bounded by the rib's pathlength
    thresholds), then follows the backward link — one check per {e set}
    of suffixes, which is SPINE's advantage over the suffix tree's
    one-suffix-link-per-suffix walk (Section 4.1, Table 6). *)

val c_extrib_hops : Telemetry.counter
(** = {!Search.c_extrib_hops}; alias taken before [Search] is shadowed
    inside {!Make}. *)

val c_link_hops : Telemetry.counter
(** = {!Search.c_link_hops}. *)

(** {2 Canonical result types}

    Store-independent, defined once here: every store instantiation,
    every front-end and {!Engine} share these records rather than
    re-equating a per-functor copy. *)

type stats = {
  nodes_checked : int;
  (** nodes examined during extensions, threshold retries and link
      hops — the unit of the paper's Table 6 *)
  suffixes_checked : int;
  (** backward-link traversals: each one dispatches a whole set of
      candidate suffixes at once *)
}

type mmatch = {
  query_end : int;
  length : int;
  data_ends : int list;  (** 0-based end positions, ascending *)
}

(** The matcher algorithm surface over one store type; [Make] produces
    it for any {!Store_sig.S} implementation. *)
module type S = sig
  type store

  type state
  (** The streaming accumulator: current (node, length) position plus
      work counters.  Abstract — one [state] belongs to one operation
      on one domain; the store underneath stays read-only, so sharing
      the {e store} across domains is safe while each domain makes its
      own states ({!make}/{!resume}). *)

  val make : store -> state
  (** A state for the empty match, at the root. *)

  val resume : store -> node:int -> len:int -> state
  (** A state positioned mid-match (work counters zeroed): how
      {!Cursor.S.longest_extension} borrows the streaming step for its
      own (node, len) window. *)

  val consume : state -> int -> unit
  (** Consume one query character, updating the state to the longest
      suffix of (current match + c) present in the data string. *)

  val node_of : state -> int
  (** Termination node of the current match. *)

  val len_of : state -> int
  (** Current match length. *)

  val stats_of : state -> stats
  (** Immutable snapshot of the work counters. *)

  val matching_statistics :
    store -> Bioseq.Packed_seq.t -> int array * stats
  (** [ms.(i)] is the length of the longest substring of the data
      string ending at query position [i]. *)

  val maximal_matches :
    ?immediate:bool ->
    store -> threshold:int -> Bioseq.Packed_seq.t -> mmatch list * stats
  (** The paper's complex matching operation: stream the query through
      the index recording a match at every right-maximal position of
      length at least [threshold], then resolve every occurrence of all
      reported matches in ONE deferred sequential backbone scan
      (Section 4's batched target-node-buffer strategy).
      [~immediate:true] is the ablation mode: a separate scan per
      match. *)
end

module Make (St : Store_sig.S) : S with type store = St.t
