type entry = {
  entry_name : string;
  start : int;    (* global 0-based position of the string's first char *)
  len : int;
}

type t = {
  idx : Index.t;
  mutable entries : entry array;   (* ascending by start *)
}

let create alphabet = { idx = Index.create alphabet; entries = [||] }

let count t = Array.length t.entries

let add t ?name seq =
  if not (Bioseq.Alphabet.equal
            (Bioseq.Packed_seq.alphabet seq) (Index.alphabet t.idx))
  then invalid_arg "Generalized.add: alphabet mismatch";
  let sep = Bioseq.Alphabet.separator (Index.alphabet t.idx) in
  (* separator BETWEEN strings only *)
  if count t > 0 then Index.append t.idx sep;
  let start = Index.length t.idx in
  Bioseq.Packed_seq.iteri seq ~f:(fun _ code -> Index.append t.idx code);
  let id = count t in
  let entry_name =
    match name with Some n -> n | None -> Printf.sprintf "s%d" id
  in
  t.entries <-
    Array.append t.entries
      [| { entry_name; start; len = Bioseq.Packed_seq.length seq } |];
  id

let add_string t ?name s =
  add t ?name (Bioseq.Packed_seq.of_string (Index.alphabet t.idx) s)

let name t id = t.entries.(id).entry_name
let string_length t id = t.entries.(id).len
let index t = t.idx

let engine t = Index.engine t.idx

type hit = {
  string_id : int;
  pos : int;
}

let locate t gpos =
  (* binary search for the entry containing the global position *)
  let lo = ref 0 and hi = ref (Array.length t.entries - 1) in
  if !hi < 0 then invalid_arg "Generalized.locate: empty index";
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.entries.(mid).start <= gpos then lo := mid else hi := mid - 1
  done;
  let e = t.entries.(!lo) in
  if gpos < e.start || gpos >= e.start + e.len then
    invalid_arg "Generalized.locate: position on a separator or out of range";
  { string_id = !lo; pos = gpos - e.start }

let occurrences t codes =
  Index.occurrences t.idx codes
  |> List.map (fun gpos -> locate t gpos)

let contains t s = Index.contains t.idx s
