(* The capability-aware engine layer: the entire SPINE query surface,
   written once, served by any storage backend packed as a first-class
   module.  See engine.mli for the architecture notes. *)

let c_batches = Telemetry.counter "engine.batches"
let c_batch_patterns = Telemetry.counter "engine.batch_patterns"

type caps = {
  backend : string;
  persistent : bool;
  paged : bool;
  traced : bool;
}

type match_stats = Matcher.stats = {
  nodes_checked : int;
  suffixes_checked : int;
}

type mmatch = Matcher.mmatch = {
  query_end : int;
  length : int;
  data_ends : int list;
}

type label_maxima = Stats.label_maxima = {
  max_pt : int;
  max_lel : int;
  max_prt : int;
}

type edge_counts = Stats.edge_counts = {
  vertebras : int;
  ribs : int;
  extribs : int;
  links : int;
}

module type API = sig
  type store

  module Q : Search.S with type store = store
  module M : Matcher.S with type store = store
  module St : Stats.S with type store = store
  module C : Cursor.S with type store = store

  val alphabet : store -> Bioseq.Alphabet.t
  val length : store -> int
  val node_count : store -> int
  val contains : store -> string -> bool
  val contains_codes : store -> int array -> bool
  val contains_pattern : store -> Bioseq.Packed_seq.Pattern.t -> bool
  val find_first : store -> int array -> int option
  val find_first_pattern : store -> Bioseq.Packed_seq.Pattern.t -> int option
  val end_nodes_pattern : store -> Bioseq.Packed_seq.Pattern.t -> int list
  val occurrences_pattern : store -> Bioseq.Packed_seq.Pattern.t -> int list
  val first_occurrence : store -> int array -> int option
  val occurrences : store -> int array -> int list
  val end_nodes : store -> int array -> int list
  val end_nodes_binary : store -> int array -> int list
  val occurrences_batch : store -> (int * int) array -> Xutil.Int_vec.t array
  val occurrences_many : store -> int array list -> int list array

  val matching_statistics :
    store -> Bioseq.Packed_seq.t -> int array * match_stats

  val maximal_matches :
    ?immediate:bool ->
    store -> threshold:int -> Bioseq.Packed_seq.t -> mmatch list * match_stats

  val label_maxima : store -> label_maxima
  val rib_distribution : store -> int array
  val edge_counts : store -> edge_counts
  val link_histogram : store -> buckets:int -> int array
end

module Api (S : Store_sig.S) = struct
  module Q = Search.Make (S)
  module M = Matcher.Make (S)
  module St = Stats.Make (S)
  module C = Cursor.Make (S)

  type store = S.t

  let alphabet = S.alphabet
  let length = S.length
  let node_count t = S.length t + 1
  let contains = Q.contains
  let contains_codes = Q.contains_codes
  let contains_pattern = Q.contains_pattern
  let find_first = Q.find_first
  let find_first_pattern = Q.find_first_pattern
  let end_nodes_pattern = Q.end_nodes_pattern
  let occurrences_pattern = Q.occurrences_pattern
  let first_occurrence = Q.first_occurrence
  let occurrences = Q.occurrences
  let end_nodes = Q.end_nodes
  let end_nodes_binary = Q.end_nodes_binary
  let occurrences_batch = Q.occurrences_batch
  let occurrences_many = Q.occurrences_many
  let matching_statistics = M.matching_statistics
  let maximal_matches = M.maximal_matches
  let label_maxima = St.label_maxima
  let rib_distribution = St.rib_distribution
  let edge_counts = St.edge_counts
  let link_histogram = St.link_histogram
end

module type BACKEND = sig
  module S : Store_sig.S
  module A : API with type store = S.t

  val store : S.t
  val caps : caps
  val guard : unit -> unit
  val space_extra : unit -> (string * int) list
end

type t = (module BACKEND)

let pack (type s) ?(guard = ignore) ?(space_extra = fun () -> []) ~caps
    (module S : Store_sig.S with type t = s) (store : s) : t =
  (module struct
    module S = S
    module A = Api (S)

    let store = store
    let caps = caps
    let guard = guard
    let space_extra = space_extra
  end)

(* --- the query surface, defined exactly once --- *)

let caps (module B : BACKEND) = B.caps
let backend e = (caps e).backend

let alphabet (module B : BACKEND) =
  B.guard ();
  B.A.alphabet B.store

let length (module B : BACKEND) =
  B.guard ();
  B.A.length B.store

let node_count (module B : BACKEND) =
  B.guard ();
  B.A.node_count B.store

let contains (module B : BACKEND) s =
  B.guard ();
  B.A.contains B.store s

let contains_codes (module B : BACKEND) codes =
  B.guard ();
  B.A.contains_codes B.store codes

let find_first (module B : BACKEND) codes =
  B.guard ();
  B.A.find_first B.store codes

(* Pattern-based entry points: the query is packed exactly once, here
   at the engine edge, and every downstream scan consumes the packed
   row word-at-a-time. *)

let pattern (module B : BACKEND) codes =
  B.guard ();
  Bioseq.Packed_seq.Pattern.of_codes (B.A.alphabet B.store) codes

let pattern_of_string e s =
  Option.map (pattern e) (let (module B : BACKEND) = e in B.A.Q.encode B.store s)

let contains_pattern (module B : BACKEND) p =
  B.guard ();
  B.A.contains_pattern B.store p

let find_first_pattern (module B : BACKEND) p =
  B.guard ();
  B.A.find_first_pattern B.store p

let end_nodes_pattern (module B : BACKEND) p =
  B.guard ();
  B.A.end_nodes_pattern B.store p

let occurrences_pattern (module B : BACKEND) p =
  B.guard ();
  B.A.occurrences_pattern B.store p

let first_occurrence (module B : BACKEND) codes =
  B.guard ();
  B.A.first_occurrence B.store codes

let occurrences (module B : BACKEND) codes =
  B.guard ();
  B.A.occurrences B.store codes

let end_nodes (module B : BACKEND) codes =
  B.guard ();
  B.A.end_nodes B.store codes

let occurrences_batch (module B : BACKEND) firsts =
  B.guard ();
  B.A.occurrences_batch B.store firsts

let occurrences_many (module B : BACKEND) patterns =
  B.guard ();
  B.A.occurrences_many B.store patterns

let encode (module B : BACKEND) s =
  B.guard ();
  B.A.Q.encode B.store s

let matching_statistics (module B : BACKEND) q =
  B.guard ();
  B.A.matching_statistics B.store q

let maximal_matches ?immediate (module B : BACKEND) ~threshold q =
  B.guard ();
  B.A.maximal_matches ?immediate B.store ~threshold q

let label_maxima (module B : BACKEND) =
  B.guard ();
  B.A.label_maxima B.store

let rib_distribution (module B : BACKEND) =
  B.guard ();
  B.A.rib_distribution B.store

let edge_counts (module B : BACKEND) =
  B.guard ();
  B.A.edge_counts B.store

let link_histogram (module B : BACKEND) ~buckets =
  B.guard ();
  B.A.link_histogram B.store ~buckets

let space (module B : BACKEND) =
  B.guard ();
  let report =
    Space_report.make ~backend:B.caps.backend ~chars:(B.A.length B.store)
      (B.S.space_components B.store @ B.space_extra ())
  in
  Space_report.set_gauges report;
  report

(* The guarded profiling entry point: checks backend liveness once,
   then runs [f] under a fresh ambient profile and buffer-pool
   attribution sink (see Profile.profiled).  Queries issued inside [f]
   against this engine — or any engine on the same domain — are charged
   to the returned profile. *)
let profiled (module B : BACKEND) f =
  B.guard ();
  Profile.profiled f

(* --- batched query path --- *)

type batch_item = {
  pattern : int array;
  count : int;
  positions : int list;
}

let run_batch (module B : BACKEND) patterns =
  B.guard ();
  Telemetry.incr c_batches;
  Telemetry.add c_batch_patterns (List.length patterns);
  Trace.span "engine.run_batch"
    [ Trace.Int ("patterns", List.length patterns);
      Trace.Str ("backend", B.caps.backend) ]
  @@ fun () ->
  let results = B.A.occurrences_many B.store patterns in
  List.mapi
    (fun i pattern ->
      let positions = results.(i) in
      { pattern; count = List.length positions; positions })
    patterns

(* --- cursors --- *)

type cursor = {
  advance : int -> bool;
  advance_char : char -> bool;
  advance_pattern : Bioseq.Packed_seq.Pattern.t -> int;
  drop_front : unit -> unit;
  longest_extension : int -> unit;
  reset : unit -> unit;
  length : unit -> int;
  node : unit -> int;
  first_occurrence : unit -> int option;
  occurrences : unit -> int list;
}

let cursor (module B : BACKEND) =
  B.guard ();
  let c = B.A.C.create B.store in
  let g = B.guard in
  { advance = (fun code -> g (); B.A.C.advance c code);
    advance_char = (fun ch -> g (); B.A.C.advance_char c ch);
    advance_pattern = (fun p -> g (); B.A.C.advance_pattern c p);
    drop_front = (fun () -> g (); B.A.C.drop_front c);
    longest_extension = (fun code -> g (); B.A.C.longest_extension c code);
    reset = (fun () -> B.A.C.reset c);
    length = (fun () -> B.A.C.length c);
    node = (fun () -> B.A.C.node c);
    first_occurrence = (fun () -> B.A.C.first_occurrence c);
    occurrences = (fun () -> g (); B.A.C.occurrences c) }
