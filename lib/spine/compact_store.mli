(** The paper's Section 5 node layout: Link Table + Rib Tables.

    Every node owns one 6-byte Link Table (LT) entry — exactly the
    {LD/PTR, LEL} columns of the paper's Figure 5; only nodes with
    downstream edges own a row in one of the Rib Tables (RTs),
    segregated by fanout so that space is paid per edge actually
    present.  Numeric labels are 2 bytes with an overflow side table
    for the rare values above 65534, and character labels are
    bit-packed.  See the implementation header for the exact byte
    layouts.

    The storage logic is written once, in {!Core}, over the {!BYTES}
    byte-table abstraction: this module instantiates it with in-memory
    growable byte buffers (plus the [trace] callback whose replay
    drives the disk experiments), while {!Persistent} instantiates the
    same code over buffer-pool pages of a real file. *)

type trace = structure:int -> index:int -> write:bool -> unit
(** Reports every logical record access with its structure id (0 = LT,
    1-4 = RT1..RT4, 5 = side tables) and row index. *)

(** Byte-table abstraction the layout code is written against:
    little-endian fixed-width accessors over one growable region. *)
module type BYTES = sig
  type t

  val used : t -> int
  (** Bytes allocated so far. *)

  val alloc : t -> int -> int
  (** [alloc t n] reserves [n] more bytes, returning their offset. *)

  val get_u8 : t -> int -> int
  val set_u8 : t -> int -> int -> unit
  val get_u16 : t -> int -> int
  val set_u16 : t -> int -> int -> unit
  val get_u32 : t -> int -> int
  val set_u32 : t -> int -> int -> unit
end

(** The in-memory instantiation's byte table. *)
module Btab : sig
  include BYTES

  val create : int -> t
  (** [create capacity] allocates an empty table (capacity is a size
      hint). *)
end

val lt_entry_bytes : int
val overflow_sentinel : int

(** Layout constants derived from the alphabet, shared by every
    instantiation (and by the Disk trace router). *)
type layout = {
  slot_capacity : int array;
  row_bytes : int array;
  cl_area_off : int array;
  prt_off : int array;
  cl_bits : int;
}

val layout_of : Bioseq.Alphabet.t -> layout

type space = {
  lt_bytes : int;
  rt_bytes : int;         (** live rows only *)
  rt_slack_bytes : int;   (** freelisted rows still occupying storage *)
  overflow_bytes : int;   (** overflow labels + extrib anchors *)
  string_bytes : int;     (** the bit-packed vertebra labels *)
  migrations : int;
}

(** The store logic, written once over {!BYTES}.  The state record is
    exposed so {!Persistent} can serialize the side tables and
    per-table counters; treat the fields as read-only outside this
    module and {!Persistent}. *)
module Core (B : BYTES) : sig
  type t = {
    seq : Bioseq.Packed_seq.t;
    lo : layout;
    lt : B.t;
    rts : B.t array;                 (** index 0..3 = RT1..RT4 *)
    freelist : int array;            (** per RT, head row + 1, 0 = none *)
    live_rows : int array;
    overflow : int Xutil.Int_tbl.t;  (** label-field key -> true value *)
    mutable overflow_count : int;
    anchors : int Xutil.Int_tbl.t;   (** row key -> extrib anchor *)
    mutable migrations : int;
    trace : trace option;
  }

  val make :
    ?trace:trace ->
    ?freelist:int array ->
    ?live_rows:int array ->
    ?overflow:int Xutil.Int_tbl.t ->
    ?anchors:int Xutil.Int_tbl.t ->
    ?migrations:int ->
    seq:Bioseq.Packed_seq.t ->
    lt:B.t ->
    rts:B.t array ->
    Bioseq.Alphabet.t ->
    t
  (** Wire up an instance over existing tables; restoring a persisted
      instance passes the saved side tables and counters back in. *)

  val init_root : t -> unit
  (** Allocate the root's LT entry (fresh instances only). *)

  (* the {!Store_sig.S} surface *)
  val alphabet : t -> Bioseq.Alphabet.t
  val length : t -> int
  val sequence : t -> Bioseq.Packed_seq.t
  val char_at : t -> int -> int
  val append_char : t -> int -> unit
  val link_dest : t -> int -> int
  val link_lel : t -> int -> int
  val set_link : t -> int -> dest:int -> lel:int -> unit
  val find_rib : t -> int -> int -> (int * int) option
  val add_rib : t -> int -> code:int -> dest:int -> pt:int -> unit
  val find_extrib : t -> int -> (int * int * int * int) option
  val add_extrib :
    t -> int -> dest:int -> pt:int -> prt:int -> anchor:int -> unit
  val fold_ribs :
    t -> int -> init:'a -> f:('a -> int -> int -> int -> 'a) -> 'a

  (* accounting *)
  val space : t -> space
  val bytes_per_char : t -> float
  val live_rows : t -> int -> int
  val row_bytes : t -> int -> int
  val rows_allocated : t -> int -> int
  val overflow_count : t -> int

  val space_components : t -> (string * int) list
  (** {!space} re-attributed to the shared component vocabulary
      ([vertebrae]/[links]/[ribs]/[rib_slack]/[extribs]); see
      {!Store_sig.S}. *)
end

include module type of Core (Btab)

val create : ?capacity:int -> ?trace:trace -> Bioseq.Alphabet.t -> t
