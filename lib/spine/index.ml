module S = Fast_store
module B = Builder.Make (S)
module A = Engine.Api (S)

type t = S.t

let caps =
  { Engine.backend = "fast"; persistent = false; paged = false;
    traced = false }

let engine t = Engine.pack ~caps (module S : Store_sig.S with type t = t) t

(* --- construction --- *)

let create ?capacity alphabet = S.create ?capacity alphabet

let append = B.append
let append_string = B.append_string

let of_seq seq =
  Trace.span "build" [ Trace.Int ("length", Bioseq.Packed_seq.length seq) ]
  @@ fun () ->
  let t =
    create ~capacity:(max 16 (Bioseq.Packed_seq.length seq))
      (Bioseq.Packed_seq.alphabet seq)
  in
  B.append_seq t seq;
  t

let of_string alphabet s =
  let t = create ~capacity:(max 16 (String.length s)) alphabet in
  append_string t s;
  t

(* --- the shared query surface, re-exported from the engine API --- *)

let alphabet = S.alphabet
let length = S.length
let sequence = S.sequence
let node_count = A.node_count

let contains = A.contains
let contains_codes = A.contains_codes
let find_first = A.find_first
let first_occurrence = A.first_occurrence
let occurrences = A.occurrences
let end_nodes = A.end_nodes
let end_nodes_binary = A.end_nodes_binary
let occurrences_batch = A.occurrences_batch
let occurrences_many = A.occurrences_many

type match_stats = Matcher.stats = {
  nodes_checked : int;
  suffixes_checked : int;
}

type mmatch = Matcher.mmatch = {
  query_end : int;
  length : int;
  data_ends : int list;
}

let matching_statistics = A.matching_statistics
let maximal_matches = A.maximal_matches

type label_maxima = Stats.label_maxima = {
  max_pt : int;
  max_lel : int;
  max_prt : int;
}

type edge_counts = Stats.edge_counts = {
  vertebras : int;
  ribs : int;
  extribs : int;
  links : int;
}

let label_maxima = A.label_maxima
let rib_distribution = A.rib_distribution
let edge_counts = A.edge_counts
let link_histogram = A.link_histogram

(* --- fast-store specifics --- *)

let model_bytes = S.model_bytes

let link t i = (S.link_dest t i, S.link_lel t i)
let rib t node code = S.find_rib t node code
let extrib t node =
  Option.map (fun (dest, pt, prt, _anchor) -> (dest, pt, prt))
    (S.find_extrib t node)
let store t = t
let of_store s = s
