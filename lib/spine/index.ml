module S = Fast_store
module B = Builder.Make (S)
module Q = Search.Make (S)
module M = Matcher.Make (S)
module St = Stats.Make (S)

type t = S.t

let create ?capacity alphabet = S.create ?capacity alphabet

let append = B.append
let append_string = B.append_string

let of_seq seq =
  Trace.span "build" [ Trace.Int ("length", Bioseq.Packed_seq.length seq) ]
  @@ fun () ->
  let t =
    create ~capacity:(max 16 (Bioseq.Packed_seq.length seq))
      (Bioseq.Packed_seq.alphabet seq)
  in
  B.append_seq t seq;
  t

let of_string alphabet s =
  let t = create ~capacity:(max 16 (String.length s)) alphabet in
  append_string t s;
  t

let alphabet = S.alphabet
let length = S.length
let sequence = S.sequence

let contains = Q.contains
let contains_codes = Q.contains_codes
let find_first = Q.find_first
let first_occurrence = Q.first_occurrence
let occurrences = Q.occurrences
let end_nodes = Q.end_nodes
let end_nodes_binary = Q.end_nodes_binary

let occurrences_many t patterns =
  (* find first occurrences individually, then one shared scan *)
  let firsts =
    List.map
      (fun pat ->
        match Q.find_first t pat with
        | Some e -> (e, Array.length pat)
        | None -> (-1, 0))
      patterns
  in
  let present =
    List.filteri (fun _ (e, _) -> e >= 0) firsts |> Array.of_list
  in
  let buffers = Q.occurrences_batch t present in
  let results = Array.make (List.length patterns) [] in
  let next = ref 0 in
  List.iteri
    (fun i (e, len) ->
      if e >= 0 then begin
        results.(i) <-
          Xutil.Int_vec.fold buffers.(!next) ~init:[]
            ~f:(fun acc e -> (e - len) :: acc)
          |> List.rev;
        incr next
      end)
    firsts;
  results

type match_stats = M.stats = {
  nodes_checked : int;
  suffixes_checked : int;
}

type mmatch = M.mmatch = {
  query_end : int;
  length : int;
  data_ends : int list;
}

let matching_statistics = M.matching_statistics
let maximal_matches = M.maximal_matches

type label_maxima = St.label_maxima = {
  max_pt : int;
  max_lel : int;
  max_prt : int;
}

type edge_counts = St.edge_counts = {
  vertebras : int;
  ribs : int;
  extribs : int;
  links : int;
}

let label_maxima = St.label_maxima
let rib_distribution = St.rib_distribution
let edge_counts = St.edge_counts
let link_histogram = St.link_histogram

let model_bytes = S.model_bytes
let node_count t = S.length t + 1

let link t i = (S.link_dest t i, S.link_lel t i)
let rib t node code = S.find_rib t node code
let extrib t node =
  Option.map (fun (dest, pt, prt, _anchor) -> (dest, pt, prt))
    (S.find_extrib t node)
let store t = t
let of_store s = s
