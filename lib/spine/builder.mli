(** Online SPINE construction (Section 3 of the paper).

    One {!Make.append} call per data character.  The link chain of the
    new node's parent is traversed upstream; at each visited node a rib
    is created unless a forward edge for the new character already
    exists, in which case the traversal stops and the new node's link is
    installed according to the paper's four cases (see the
    implementation for the case-by-case commentary).  The
    hand-validated construction trace for the paper's example string
    [aaccacaaca] (Figure 3) is enforced by the test suite. *)

(** Construction telemetry: CASE frequencies (Section 3), edge-creation
    counts (the paper's Table 2/space accounting inputs) and the
    upstream link-chain length per appended character.  Shared across
    every store instantiation — the registry is process-global. *)

val c_case1 : Telemetry.counter
val c_case2 : Telemetry.counter
val c_case3 : Telemetry.counter
val c_case4 : Telemetry.counter
val c_ribs : Telemetry.counter
val c_extribs : Telemetry.counter
val c_links : Telemetry.counter
val h_upstream : Telemetry.histogram

module Make (S : Store_sig.S) : sig
  val append : S.t -> int -> unit
  (** [append t c] extends the index by the alphabet code [c]:
      amortised O(1) over the whole string (Theorem 1). *)

  val append_seq : S.t -> Bioseq.Packed_seq.t -> unit

  val append_string : S.t -> string -> unit
  (** Encodes each character with the store's alphabet; raises
      [Invalid_argument] on characters outside it. *)
end
