(** Backend-agnostic index space accounting.

    Where {!Space} prices the paper's static Table 2 model, this module
    carries the {e measured} footprint of a live index, attributed to
    named components: every store reports
    {!Store_sig.S.space_components} (vertebrae, links, ribs, extribs,
    …) and paged backends add their [pagestore_pages] /
    [bufferpool_frames] overlay through {!Engine.pack}'s [space_extra].
    {!Engine.space} builds one of these for any backend; the CLI
    ([spine stats --space]) and the workload runner render it as a
    table, JSONL, or telemetry gauges. *)

type component = {
  comp : string;  (** component name, e.g. ["ribs"] *)
  bytes : int;    (** measured live bytes *)
}

type t = {
  backend : string;  (** the owning engine's backend name *)
  chars : int;       (** indexed characters *)
  components : component list;
}

val make : backend:string -> chars:int -> (string * int) list -> t

val total_bytes : t -> int
(** Sum over every component, storage overlays included. *)

val index_bytes : t -> int
(** Sum over the index components only: [pagestore_*] /
    [bufferpool_*] overlays cache or mirror bytes already attributed
    to a store component, so they are excluded from the index
    footprint proper. *)

val bytes_per_char : t -> float
(** [index_bytes / chars] — comparable to the paper's "less than 12
    bytes per indexed character" headline. *)

val attributed_fraction : t -> float
(** Fraction of {!total_bytes} attributed to a named component (i.e.
    anything but an explicit ["other"] bucket).  [1.0] for every
    report the built-in stores produce. *)

val rows : t -> string list list
(** [[component; bytes; bytes/char; share]] rows plus a total row, for
    {!Report.Table.print}-style rendering. *)

val jsonl : t -> string
(** The whole report as one JSON line. *)

val set_gauges : t -> unit
(** Publish every component as a telemetry gauge
    [space.<backend>.<component>_bytes] (plus
    [space.<backend>.total_bytes]); a no-op value-wise while telemetry
    is disabled. *)
