(* spine-lint: allow-file missing-mli — signature-only module; an .mli
   would duplicate the module type verbatim *)

(** Storage abstraction for the SPINE index.

    The SPINE algorithms (online construction, valid-path search,
    streaming matching) are written once, as functors over this
    signature.  Two stores implement it:

    - {!Fast_store}: hashtable-backed, optimised for in-memory speed;
    - {!Compact_store}: the paper's Section 5 layout — a Link Table plus
      fanout-segregated Rib Tables with 2-byte numeric labels and an
      overflow table — which also powers the space accounting and, via
      access tracing, the disk-resident experiments.

    Node/edge vocabulary follows the paper: node [i] represents the
    backbone prefix of length [i] (root is node 0); the vertebra out of
    node [i] carries character [char_at t i]; ribs carry [(dest, pt)];
    the at-most-one extrib anchored at a node carries
    [(dest, pt, prt)]; every node except the root has a backward link
    [(dest, lel)]. *)

module type S = sig
  type t

  val alphabet : t -> Bioseq.Alphabet.t

  val length : t -> int
  (** Characters appended so far; the backbone has [length t + 1]
      nodes. *)

  val char_at : t -> int -> int
  (** Character label of the vertebra from node [i] to node [i + 1],
      i.e. the [i]-th (0-based) character of the data string. *)

  val sequence : t -> Bioseq.Packed_seq.t
  (** The whole data string as its packed row.  Vertebra labels are
      contiguous text characters (node [i]'s vertebra run spells
      [text[i..]]), so the scan paths extend matches word-at-a-time
      against this row instead of one {!char_at} per step. *)

  val append_char : t -> int -> unit
  (** Extend the backbone by one character, creating the new tail node
      with an unset link. Only {!Builder} should call this. *)

  val link_dest : t -> int -> int
  val link_lel : t -> int -> int

  val set_link : t -> int -> dest:int -> lel:int -> unit

  val find_rib : t -> int -> int -> (int * int) option
  (** [find_rib t node code] is [Some (dest, pt)] if a rib labelled
      [code] leaves [node]. *)

  val add_rib : t -> int -> code:int -> dest:int -> pt:int -> unit

  val find_extrib : t -> int -> (int * int * int * int) option
  (** [(dest, pt, prt, anchor)] of the extrib stored at the node, if
      any.  [anchor] is the destination node of the extrib's parent rib:
      extrib chains from different ribs physically merge (a node stores
      at most one extrib), and when two parent ribs share a PT value the
      paper's PRT label alone cannot attribute a chain element to its
      rib — [(anchor, prt)] can, because ribs pointing at the same node
      are created in the same step with distinct PTs.  This field is a
      correction this implementation adds to the paper's scheme; see
      DESIGN.md. *)

  val add_extrib : t -> int -> dest:int -> pt:int -> prt:int -> anchor:int -> unit

  val fold_ribs : t -> int -> init:'a -> f:('a -> int -> int -> int -> 'a) -> 'a
  (** [fold_ribs t node ~init ~f] folds [f acc code dest pt] over the
      ribs leaving [node]. *)

  val space_components : t -> (string * int) list
  (** Measured live bytes of the store, attributed to named components
      (["vertebrae"], ["links"], ["ribs"], ["extribs"], …).  The sum is
      the store's whole footprint: anything the store allocates must be
      attributed to some component.  {!Engine.space} aggregates this
      into a {!Space_report.t}. *)
end
